// Command benchguard enforces the characterization-sweep performance
// budgets recorded in BENCH_baseline.json. It reads `go test -bench
// ... -benchmem` output on stdin, extracts ns/op and allocs/op for
// every budgeted benchmark, prints a benchstat-style comparison against
// the recorded current values, and exits non-zero when a budget is
// exceeded or a budgeted benchmark is missing from the input.
//
// The wall-clock budgets carry slack for slower CI machines; the
// allocs/op budgets are tight, since allocation counts are
// deterministic across hosts. Run it from the repository root:
//
//	go test -bench 'RunCharacterization/serial' -benchtime 3x -benchmem -run xxx . | go run ./tools/benchguard
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type budget struct {
	MaxNsPerOp     float64 `json:"max_ns_per_op"`
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
}

type baselineFile struct {
	Benchmarks map[string]struct {
		CurrentNsPerOp     float64 `json:"current_ns_per_op"`
		CurrentAllocsPerOp float64 `json:"current_allocs_per_op"`
	} `json:"benchmarks"`
	Budgets map[string]budget `json:"budgets"`
}

// benchLine matches `go test -bench -benchmem` result rows, tolerating
// the -GOMAXPROCS suffix the bench runner appends on multicore hosts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "budget file")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.Budgets) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has no budgets block\n", *baselinePath)
		os.Exit(2)
	}

	type measured struct{ ns, allocs float64 }
	got := map[string]measured{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs := -1.0
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		got[m[1]] = measured{ns: ns, allocs: allocs}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}

	fail := false
	fmt.Printf("%-44s %14s %14s %10s  %s\n", "benchmark", "recorded", "measured", "delta", "verdict")
	for name, b := range base.Budgets {
		g, ok := got[name]
		if !ok {
			fmt.Printf("%-44s %14s %14s %10s  MISSING from bench output\n", name, "-", "-", "-")
			fail = true
			continue
		}
		rec := base.Benchmarks[name]

		verdict := "ok"
		if b.MaxNsPerOp > 0 && g.ns > b.MaxNsPerOp {
			verdict = fmt.Sprintf("FAIL: ns/op over budget %.0f", b.MaxNsPerOp)
			fail = true
		}
		fmt.Printf("%-44s %12.1fms %12.1fms %+9.1f%%  %s\n",
			name+" ns/op", rec.CurrentNsPerOp/1e6, g.ns/1e6, delta(g.ns, rec.CurrentNsPerOp), verdict)

		if b.MaxAllocsPerOp > 0 {
			verdict = "ok"
			if g.allocs < 0 {
				verdict = "FAIL: no allocs/op in input (run with -benchmem)"
				fail = true
			} else if g.allocs > b.MaxAllocsPerOp {
				verdict = fmt.Sprintf("FAIL: allocs/op over budget %.0f", b.MaxAllocsPerOp)
				fail = true
			}
			fmt.Printf("%-44s %14.0f %14.0f %+9.1f%%  %s\n",
				name+" allocs/op", rec.CurrentAllocsPerOp, g.allocs, delta(g.allocs, rec.CurrentAllocsPerOp), verdict)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// delta returns the percent change of measured against recorded, or 0
// when there is no recorded value to compare with.
func delta(measured, recorded float64) float64 {
	if recorded <= 0 || measured < 0 {
		return 0
	}
	return (measured - recorded) / recorded * 100
}
