// Command checkdocs is the docs gate CI runs (.github/workflows/ci.yml):
//
//  1. every non-test package under internal/, ento/, and cmd/ must
//     carry a package (godoc) comment;
//  2. every relative markdown link in the repo root and docs/ must
//     resolve to an existing file;
//  3. the board-file schema documented in DESIGN.md §11 must cover
//     every JSON field of mcu.BoardFile / mcu.Arch / mcu.ModelParams,
//     so the Go structs and the docs cannot drift apart;
//  4. the failure-model guide (docs/robustness.md) must document every
//     JSON field of the export's failures block (report.JSONFailure),
//     every cell status, and the sweep failure counters by their exact
//     names;
//  5. the server guide (docs/server.md) must document every route
//     entobenchd registers (server.Routes()), every field of the
//     exported wire structs, every SSE event name, and the server and
//     sweep-cache counters — and docs/observability.md must carry
//     every canonical counter name, so a counter cannot ship without
//     its row;
//  6. the backend guide (docs/backends.md) must document every
//     trace-capture CSV column, both provenance labels, every method
//     of the harness.Backend interface, and every field of the
//     export's backends block (report.JSONBackend).
//
// It prints one line per violation and exits non-zero if any exist.
// Run it from the repository root: go run ./tools/checkdocs
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server"
)

func main() {
	var problems []string
	problems = append(problems, checkPackageComments([]string{"internal", "ento", "cmd"})...)
	problems = append(problems, checkMarkdownLinks()...)
	problems = append(problems, checkBoardSchemaDocs("DESIGN.md")...)
	problems = append(problems, checkRobustnessDocs("docs/robustness.md")...)
	problems = append(problems, checkServerDocs("docs/server.md")...)
	problems = append(problems, checkCounterDocs("docs/observability.md")...)
	problems = append(problems, checkBackendDocs("docs/backends.md")...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("checkdocs: ok")
}

// checkPackageComments walks the given roots and reports every non-test
// package with no doc comment on any of its files.
func checkPackageComments(roots []string) []string {
	var problems []string
	for _, root := range roots {
		filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || !info.IsDir() {
				return nil
			}
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				return nil
			}
			for name, pkg := range pkgs {
				if strings.HasSuffix(name, "_test") {
					continue
				}
				documented := false
				for _, f := range pkg.Files {
					if f.Doc != nil {
						documented = true
						break
					}
				}
				if !documented {
					problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", path, name))
				}
			}
			return nil
		})
	}
	return problems
}

// checkBoardSchemaDocs verifies the board-file schema documentation:
// every JSON field the decoder accepts (the tags on mcu.BoardFile,
// mcu.Arch, and mcu.ModelParams) must be named, in backticks, inside
// the "Data-driven board & kernel registries" section of DESIGN.md.
func checkBoardSchemaDocs(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	const heading = "board & kernel registries"
	start := -1
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "## ") && strings.Contains(line, heading) {
			start = i
			break
		}
	}
	if start < 0 {
		return []string{fmt.Sprintf("%s: no \"## ... %s\" section (the board-file schema must be documented)", path, heading)}
	}
	section := ""
	for _, line := range lines[start+1:] {
		if strings.HasPrefix(line, "## ") {
			break
		}
		section += line + "\n"
	}
	var problems []string
	for _, t := range []reflect.Type{
		reflect.TypeOf(mcu.BoardFile{}),
		reflect.TypeOf(mcu.Arch{}),
		reflect.TypeOf(mcu.ModelParams{}),
	} {
		for _, tag := range jsonTags(t) {
			if !strings.Contains(section, "`"+tag+"`") {
				problems = append(problems, fmt.Sprintf(
					"%s: board-schema section does not document %s field `%s`", path, t.Name(), tag))
			}
		}
	}
	return problems
}

// checkRobustnessDocs pins the failure-model guide to the code: every
// JSON field of the export's failures block, every non-zero cell
// status, and each sweep failure counter must be named, in backticks,
// somewhere in docs/robustness.md.
func checkRobustnessDocs(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the failure model must be documented)", path, err)}
	}
	doc := string(data)
	var problems []string
	missing := func(kind, name string) {
		if !strings.Contains(doc, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf("%s: does not document %s `%s`", path, kind, name))
		}
	}
	for _, tag := range jsonTags(reflect.TypeOf(report.JSONFailure{})) {
		missing("failures-block field", tag)
	}
	for _, s := range []core.CellStatus{core.CellOK, core.CellFailed, core.CellPanicked, core.CellTimedOut, core.CellSkipped} {
		missing("cell status", s.String())
	}
	for _, name := range []string{
		obs.CounterSweepCellsFailed,
		obs.CounterSweepPanicsRecovered,
		obs.CounterSweepCellsTimedOut,
		obs.CounterCellstoreGCEvicted,
		obs.CounterCellstoreDegraded,
		obs.CounterServerShedTotal,
	} {
		missing("counter", name)
	}
	// The service guarantees under resource pressure: degraded-mode
	// serving and load shedding must be part of the failure model.
	missing("healthz state", "degraded")
	missing("shed header", "Retry-After")
	return problems
}

// checkServerDocs pins the entobenchd guide to the wire surface:
// every registered route (method + pattern, in backticks, exactly as
// server.Routes() declares it), every JSON field of the exported wire
// structs, every SSE event name, the sweep-id header, and the counters
// a server operator watches must all be named in docs/server.md.
func checkServerDocs(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the wire surface must be documented)", path, err)}
	}
	doc := string(data)
	var problems []string
	missing := func(kind, name string) {
		if !strings.Contains(doc, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf("%s: does not document %s `%s`", path, kind, name))
		}
	}
	for _, r := range server.Routes() {
		missing("route", r.Method+" "+r.Pattern)
	}
	for _, t := range []reflect.Type{
		reflect.TypeOf(server.SweepRequest{}),
		reflect.TypeOf(server.SweepAccepted{}),
		reflect.TypeOf(server.SweepStatus{}),
		reflect.TypeOf(server.Kernel{}),
		reflect.TypeOf(server.ErrorBody{}),
	} {
		for _, tag := range jsonTags(t) {
			missing(t.Name()+" field", tag)
		}
	}
	for _, ev := range []string{server.SSEEventProgress, server.SSEEventDone, server.SSEEventError} {
		missing("SSE event", ev)
	}
	missing("response header", server.SweepIDHeader)
	// The overload surface: shed responses carry Retry-After, error
	// bodies carry machine-readable codes, job states include the
	// queue/shed lifecycle, and /healthz distinguishes ok from degraded.
	missing("response header", "Retry-After")
	for _, code := range []string{server.ErrCodeBadRequest, server.ErrCodeOverloaded, server.ErrCodeDeadlineExceeded} {
		missing("error code", code)
	}
	for _, st := range []string{server.StateQueued, server.StateRunning, server.StateDone, server.StateFailed, server.StateShed} {
		missing("job state", st)
	}
	missing("healthz state", "degraded")
	for _, name := range []string{
		obs.CounterServerRequests,
		obs.CounterServerSSEClients,
		obs.CounterServerShedTotal,
		obs.CounterServerQueueDepth,
		obs.CounterSweepCacheHit,
		obs.CounterSweepCacheMiss,
		obs.CounterSweepCacheCoalesced,
		obs.CounterSweepCacheEvicted,
		obs.CounterCellstoreGCEvicted,
		obs.CounterCellstoreDegraded,
	} {
		missing("counter", name)
	}
	return problems
}

// checkBackendDocs pins the measurement-backend guide to the code:
// every trace-capture CSV column, both provenance labels, every
// method of the Backend interface, and every JSON field of the
// export's backends block must be named, in backticks, in
// docs/backends.md.
func checkBackendDocs(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the backend seam must be documented)", path, err)}
	}
	doc := string(data)
	var problems []string
	missing := func(kind, name string) {
		if !strings.Contains(doc, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf("%s: does not document %s `%s`", path, kind, name))
		}
	}
	for _, col := range harness.TraceCSVHeader {
		missing("trace CSV column", col)
	}
	for _, label := range []string{harness.SourceModeled, harness.SourceMeasured} {
		missing("provenance label", label)
	}
	bt := reflect.TypeOf((*harness.Backend)(nil)).Elem()
	for i := 0; i < bt.NumMethod(); i++ {
		missing("Backend method", bt.Method(i).Name)
	}
	for _, tag := range jsonTags(reflect.TypeOf(report.JSONBackend{})) {
		missing("backends-block field", tag)
	}
	return problems
}

// checkCounterDocs requires a docs/observability.md row (backticked
// name) for every canonical counter and span — the doc half of the
// obs registry gate, enforced here so `go run ./tools/checkdocs`
// catches the drift without running the test suite.
func checkCounterDocs(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the observable surface must be documented)", path, err)}
	}
	doc := string(data)
	var problems []string
	for _, name := range obs.AllCounters {
		if !strings.Contains(doc, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf("%s: does not document counter `%s`", path, name))
		}
	}
	for _, name := range obs.AllSpans {
		if !strings.Contains(doc, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf("%s: does not document span `%s`", path, name))
		}
	}
	return problems
}

// jsonTags lists the serialized field names of a struct type, skipping
// unexported and json:"-" fields and stripping tag options.
func jsonTags(t reflect.Type) []string {
	var tags []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" {
			continue
		}
		tag := f.Tag.Get("json")
		if comma := strings.IndexByte(tag, ','); comma >= 0 {
			tag = tag[:comma]
		}
		if tag == "" || tag == "-" {
			continue
		}
		tags = append(tags, tag)
	}
	return tags
}

// mdLink matches inline markdown links/images; the destination is
// group 1. Angle-bracketed autolinks and reference-style links are out
// of scope (the repo doesn't use them for files).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that relative link targets in root-level
// and docs/ markdown files exist on disk.
func checkMarkdownLinks() []string {
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, _ := filepath.Glob(glob)
		files = append(files, m...)
	}
	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i2 := strings.IndexByte(target, '#'); i2 >= 0 {
					target = target[:i2]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", file, i+1, m[1]))
				}
			}
		}
	}
	return problems
}
