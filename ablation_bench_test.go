// Ablation benchmarks for the design decisions called out in DESIGN.md
// §5, plus the factor-graph extension kernel:
//
//	BenchmarkAblationGenericEKF — generic framework vs hand-specialized
//	    fly-ekf (the sparsity benefit a generic EKF cannot collect).
//	BenchmarkAblationMemoryTerm — cycle model with vs without the
//	    memory-class term (why FLOP-style counting misleads).
//	BenchmarkAblationTraceEnergy — analytic energy vs the full
//	    trace-synthesis + analysis pipeline.
//	BenchmarkExtensionFactorGraph — the AXLE-style chain smoother the
//	    paper lists as a planned extension.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/cnn"
	"repro/internal/dataset"
	"repro/internal/ekf"
	"repro/internal/factorgraph"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// BenchmarkAblationGenericEKF compares the generic sequential fly-ekf
// against the hand-specialized implementation that exploits the
// constant Jacobian and sparse measurement rows.
func BenchmarkAblationGenericEKF(b *testing.B) {
	type F = scalar.F32
	tof, flow, acc := F(0.5), F(0.0), F(0.0)
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		f := ekf.NewFlyEKF(F(0), ekf.Sequential, ekf.DefaultFlyEKFConfig(), 0.5)
		counts := profile.Collect(func() { _ = f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc) })
		b.ReportMetric(mcu.M4.Cycles(counts, mcu.PrecF32, true), "cycM4")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc)
		}
	})
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		f := ekf.NewFlyEKFFast(F(0), ekf.DefaultFlyEKFConfig(), 0.5)
		counts := profile.Collect(func() { f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc) })
		b.ReportMetric(mcu.M4.Cycles(counts, mcu.PrecF32, true), "cycM4")
		b.ReportMetric(float64(ekf.FlyEKFFLOPs), "claimedFLOPs")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc)
		}
	})
}

// BenchmarkAblationMemoryTerm reports the modeled cycles of a
// representative estimation kernel with the memory-class term included
// and dropped — the quantity FLOP counting silently throws away.
func BenchmarkAblationMemoryTerm(b *testing.B) {
	type F = scalar.F32
	b.ReportAllocs()
	tof, flow, acc := F(0.5), F(0.0), F(0.0)
	f := ekf.NewFlyEKF(F(0), ekf.Sequential, ekf.DefaultFlyEKFConfig(), 0.5)
	counts := profile.Collect(func() { _ = f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc) })
	noMem := counts
	noMem.M = 0
	b.ReportMetric(mcu.M4.Cycles(counts, mcu.PrecF32, true), "cycFull")
	b.ReportMetric(mcu.M4.Cycles(noMem, mcu.PrecF32, true), "cycNoMem")
	for i := 0; i < b.N; i++ {
		_ = f.Step(F(0.1), F(9.81), F(0.002), &tof, &flow, &acc)
	}
}

// BenchmarkAblationTraceEnergy runs the trace-synthesis + analyzer
// pipeline and reports the relative error against the analytic model —
// the self-consistency check of the measurement substitution.
func BenchmarkAblationTraceEnergy(b *testing.B) {
	b.ReportAllocs()
	est := mcu.M7.Estimate(profile.Counts{F: 5000, I: 3000, M: 4000, B: 1000}, mcu.PrecF32, true)
	var relErr float64
	for i := 0; i < b.N; i++ {
		tr, ev := harness.SynthesizeTrace(est, mcu.M7, true, 100, int64(i))
		m, err := harness.Analyze(tr, ev, 100)
		if err != nil {
			b.Fatal(err)
		}
		relErr = harness.RelError(m.EnergyJ, est.EnergyJ)
	}
	b.ReportMetric(relErr, "energyRelErr")
}

// BenchmarkExtensionFactorGraph measures one Gauss-Newton smoothing
// iteration over a 100-pose chain — the planned AXLE-style extension.
func BenchmarkExtensionFactorGraph(b *testing.B) {
	b.ReportAllocs()
	type F = scalar.F32
	rng := rand.New(rand.NewSource(1))
	odom := make([]factorgraph.Odometry[F], 99)
	for i := range odom {
		odom[i] = factorgraph.Odometry[F]{
			DX: F(0.1 + rng.NormFloat64()*0.01), DY: 0,
			DTheta: F(rng.NormFloat64() * 0.01),
			WX:     1e3, WY: 1e3, WTheta: 1e3,
		}
	}
	chain := factorgraph.NewChain(F(0), odom)
	counts := profile.Collect(func() { chain.Smooth(1) })
	est := mcu.M4.Estimate(counts, mcu.PrecF32, true)
	b.ReportMetric(est.LatencyUs(), "µs/M4")
	b.ReportMetric(est.EnergyUJ(), "µJ/M4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.Smooth(1)
	}
}

// BenchmarkExtensionDepthNet measures the CNN depth-proxy extension:
// int8 and float inference over a 32×32 crop, with modeled M4 metrics.
func BenchmarkExtensionDepthNet(b *testing.B) {
	net := cnn.NewDepthNet()
	g := dataset.GenImage(dataset.Midd, 32, 32, 3)
	b.Run("float32", func(b *testing.B) {
		b.ReportAllocs()
		counts := profile.Collect(func() { net.Infer(g) })
		est := mcu.M4.Estimate(counts, mcu.PrecF32, true)
		b.ReportMetric(est.LatencyUs(), "µs/M4")
		b.ReportMetric(est.EnergyUJ(), "µJ/M4")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Infer(g)
		}
	})
	b.Run("int8", func(b *testing.B) {
		b.ReportAllocs()
		counts := profile.Collect(func() { net.InferQ(g) })
		est := mcu.M4.Estimate(counts, mcu.PrecFixed, true)
		b.ReportMetric(est.LatencyUs(), "µs/M4")
		b.ReportMetric(est.EnergyUJ(), "µJ/M4")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.InferQ(g)
		}
	})
}
