package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestFlagsDocumented keeps the daemon's flag surface in sync with its
// documentation, in both directions where it matters: every flag
// newFlagSet declares must appear (as `-name`) in the usage comment of
// main.go, the README's entobenchd section, and docs/server.md's flag
// table. Adding a flag without documenting it fails here.
func TestFlagsDocumented(t *testing.T) {
	docs := map[string]string{
		"main.go":        "../../cmd/entobenchd/main.go",
		"README.md":      "../../README.md",
		"docs/server.md": "../../docs/server.md",
	}
	contents := map[string]string{}
	for name, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		contents[name] = string(data)
	}
	// README coverage is scoped to the entobenchd section so an
	// entobench flag mentioned elsewhere can't mask a missing row.
	readme := contents["README.md"]
	if i := strings.Index(readme, "## The entobenchd server"); i >= 0 {
		section := readme[i:]
		if j := strings.Index(section[1:], "\n## "); j >= 0 {
			section = section[:j+1]
		}
		contents["README.md"] = section
	} else {
		t.Fatal("README lost its entobenchd section")
	}

	var cfg config
	newFlagSet(&cfg).VisitAll(func(f *flag.Flag) {
		for name, doc := range contents {
			if !strings.Contains(doc, "-"+f.Name) {
				t.Errorf("flag -%s undocumented in %s", f.Name, name)
			}
		}
	})
}

// TestServeSweepEndToEnd boots the real daemon on an ephemeral port,
// runs one sweep through it over real HTTP, and shuts it down
// gracefully via context cancellation — the in-process version of the
// CI smoke job.
func TestServeSweepEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-j", "4"}, pw, io.Discard)
	}()

	// The readiness line carries the bound address.
	var addrLine string
	lineCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 256)
		n, _ := pr.Read(buf)
		lineCh <- string(buf[:n])
	}()
	select {
	case addrLine = <-lineCh:
	case err := <-done:
		t.Fatalf("daemon exited before readiness: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no readiness line")
	}
	base := strings.TrimSpace(strings.TrimPrefix(addrLine, "entobenchd listening on "))
	if !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected readiness line %q", addrLine)
	}

	resp, err := http.Post(base+"/v1/sweep", "application/json",
		strings.NewReader(`{"kernels":["madgwick"],"archs":"M4"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Schema     string `json:"schema"`
		Datapoints int    `json:"datapoints"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "entobench.characterization" || rep.Datapoints == 0 {
		t.Fatalf("report envelope = %+v", rep)
	}

	cancel() // graceful drain, same path as SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestUsageSynopsisListsEveryFlag pins the doc-comment synopsis: each
// flag must appear in the Usage block with its bracketed form, so the
// synopsis cannot silently lag the flag table.
func TestUsageSynopsisListsEveryFlag(t *testing.T) {
	data, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	usage := src[:strings.Index(src, "package main")]
	var cfg config
	newFlagSet(&cfg).VisitAll(func(f *flag.Flag) {
		if !strings.Contains(usage, fmt.Sprintf("[-%s ", f.Name)) {
			t.Errorf("usage synopsis missing [-%s ...]", f.Name)
		}
	})
}
