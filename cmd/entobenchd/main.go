// Command entobenchd serves characterization-as-a-service: a
// long-running HTTP daemon that answers sweep queries — the full suite
// × Table IV grid or any kernel-subset × board-set selection — to many
// concurrent clients, with singleflight coalescing of identical
// in-flight queries and an in-memory keyed result cache behind them.
// A served sweep is byte-identical to `entobench sweep -json` for the
// same query; docs/server.md is the operations guide and the complete
// wire reference.
//
// Usage:
//
//	entobenchd [-addr 127.0.0.1:8090] [-boards FILE] [-j N]
//	           [-celltimeout DUR] [-cachecap N] [-cachedir DIR]
//	           [-backend NAME] [-tracefile FILE]
//
// -boards loads user board files into the registry at startup, so the
// daemon can serve custom cores alongside the built-ins. -j and
// -celltimeout set the worker-pool size and per-cell watchdog for
// every cache-filling run (clients may override per request);
// -cachecap bounds how many completed sweep results stay in memory.
// -cachedir backs every cache-filling run with the persistent per-cell
// store, so a restarted daemon starts warm: the first query after a
// restart reloads its cells from disk instead of recomputing the grid
// (docs/server.md has the operational details). -backend sets the
// default measurement backend for every served sweep and -tracefile
// loads a trace-capture CSV into the trace backend, registering it so
// requests can also select it by name (`"backend": "trace"`); clients
// override the default per request, and `"backend": "sim"` restores
// the classic simulator path (docs/backends.md).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests get a grace period to finish, and only then does the
// process exit — a client mid-sweep sees its response, not a reset.
//
// The flag table below (newFlagSet) is the single source of truth for
// the usage text, the README entobenchd section, and docs/server.md; a
// test keeps all of them in sync.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
	"repro/internal/server"
)

// config is the daemon's flag-settable configuration.
type config struct {
	addr        string
	boards      string
	workers     int
	cellTimeout time.Duration
	cacheCap    int
	cacheDir    string
	backend     string
	traceFile   string
}

// shutdownGrace is how long in-flight requests get to finish after
// SIGINT/SIGTERM before the server gives up on them.
const shutdownGrace = 10 * time.Second

// newFlagSet declares every daemon flag. This table is what the
// README/docs sync test walks, so a flag added here without
// documentation fails the build's test step.
func newFlagSet(cfg *config) *flag.FlagSet {
	fs := flag.NewFlagSet("entobenchd", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8090", "listen address (host:port)")
	fs.StringVar(&cfg.boards, "boards", "", "comma-separated board files to load into the registry at startup")
	fs.IntVar(&cfg.workers, "j", 0, "sweep worker goroutines per cache-filling run (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.cellTimeout, "celltimeout", 0, "per-cell watchdog for served sweeps: abandon any cell that takes longer (0 = off)")
	fs.IntVar(&cfg.cacheCap, "cachecap", report.DefaultSweepCacheCapacity, "completed sweep results retained in the in-memory cache")
	fs.StringVar(&cfg.cacheDir, "cachedir", "", "persistent per-cell result cache directory (created if missing); restarts start warm")
	fs.StringVar(&cfg.backend, "backend", "", "default measurement backend for served sweeps (sim, trace, or a registered name; default sim)")
	fs.StringVar(&cfg.traceFile, "tracefile", "", "trace-capture CSV loaded into the trace backend at startup (implies -backend trace)")
	return fs
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "entobenchd:", err)
		os.Exit(1)
	}
}

// run is the daemon body: parse flags, load boards, bind the listener,
// announce readiness, serve until ctx cancels, then drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	var cfg config
	fs := newFlagSet(&cfg)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := loadBoardFiles(cfg.boards); err != nil {
		return err
	}
	report.SetSweepCacheCapacity(cfg.cacheCap)

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "entobenchd: "+format+"\n", a...)
	}
	opts := server.Options{
		Workers:     cfg.workers,
		CellTimeout: cfg.cellTimeout,
		Logf:        logf,
	}
	if cfg.cacheDir != "" {
		cc, err := report.OpenCellCache(cfg.cacheDir)
		if err != nil {
			return err
		}
		opts.CellCache = cc
		logf("persistent cell cache at %s", cc.Dir())
	}
	be, err := resolveBackend(cfg.backend, cfg.traceFile)
	if err != nil {
		return err
	}
	if be != nil {
		opts.Backend = be
		logf("default backend %s (source %s)", be.Name(), be.Source())
	}
	srv := server.New(opts)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Announce on stdout only once the listener is bound, so scripts
	// (and the CI smoke job) can wait for this line instead of polling.
	fmt.Fprintf(stdout, "entobenchd listening on http://%s\n", ln.Addr())

	// Graceful drain: context cancellation (SIGINT/SIGTERM) closes the
	// listener and gives in-flight requests shutdownGrace to finish.
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logf("shutting down, draining for up to %v", shutdownGrace)
		drainCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		drained <- httpSrv.Shutdown(drainCtx)
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logf("stopped")
	return nil
}

// resolveBackend turns -backend/-tracefile into the server's default
// measurement backend, with the same semantics as `entobench sweep`. A
// trace backend loaded from -tracefile is additionally registered in
// the process backend registry, so wire requests can select it with
// `"backend": "trace"` even when it is not the default.
func resolveBackend(name, traceFile string) (harness.Backend, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if traceFile != "" {
		if name != "" && name != "trace" {
			return nil, fmt.Errorf("-tracefile feeds the trace backend and cannot combine with -backend %s", name)
		}
		tb, err := harness.LoadTraceBackend(traceFile)
		if err != nil {
			return nil, err
		}
		if err := harness.RegisterBackend(tb); err != nil {
			return nil, err
		}
		return tb, nil
	}
	switch name {
	case "", "sim":
		return nil, nil // classic simulator path
	case "trace":
		return nil, errors.New("-backend trace needs -tracefile FILE (the captures to replay)")
	default:
		be, ok := harness.BackendByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (registered: %s)", name, strings.Join(harness.BackendNames(), ", "))
		}
		return be, nil
	}
}

// loadBoardFiles registers every board file in a comma-separated list.
func loadBoardFiles(list string) error {
	if list == "" {
		return nil
	}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if _, err := mcu.LoadFile(path); err != nil {
			return err
		}
	}
	return nil
}
