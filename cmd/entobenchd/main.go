// Command entobenchd serves characterization-as-a-service: a
// long-running HTTP daemon that answers sweep queries — the full suite
// × Table IV grid or any kernel-subset × board-set selection — to many
// concurrent clients, with singleflight coalescing of identical
// in-flight queries and an in-memory keyed result cache behind them.
// A served sweep is byte-identical to `entobench sweep -json` for the
// same query; docs/server.md is the operations guide and the complete
// wire reference.
//
// Usage:
//
//	entobenchd [-addr 127.0.0.1:8090] [-boards FILE] [-j N]
//	           [-celltimeout DUR] [-cachecap N] [-cachedir DIR]
//	           [-cachequota BYTES] [-backend NAME] [-tracefile FILE]
//	           [-maxinflight N] [-maxqueue N] [-maxdeadline DUR]
//	           [-maxjobs N] [-draintimeout DUR]
//
// -boards loads user board files into the registry at startup, so the
// daemon can serve custom cores alongside the built-ins. -j and
// -celltimeout set the worker-pool size and per-cell watchdog for
// every cache-filling run (clients may override per request);
// -cachecap bounds how many completed sweep results stay in memory.
// -cachedir backs every cache-filling run with the persistent per-cell
// store, so a restarted daemon starts warm: the first query after a
// restart reloads its cells from disk instead of recomputing the grid
// (docs/server.md has the operational details), and -cachequota bounds
// that directory's total bytes with LRU garbage collection. -backend
// sets the default measurement backend for every served sweep and
// -tracefile loads a trace-capture CSV into the trace backend,
// registering it so requests can also select it by name
// (`"backend": "trace"`); clients override the default per request,
// and `"backend": "sim"` restores the classic simulator path
// (docs/backends.md).
//
// The overload controls (docs/server.md "Overload & degraded mode"):
// -maxinflight bounds the total weight of cache-filling sweeps running
// at once, -maxqueue bounds the admitted-but-waiting async job queue
// (oldest evicted on overflow), -maxdeadline caps — and defaults — the
// per-request `deadline_ms` sweep deadline, and -maxjobs bounds how
// many finished job handles stay pollable.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests get up to -draintimeout to finish, and only then does the
// process exit — a client mid-sweep sees its response, not a reset. If
// the drain deadline expires (a stuck sweep), the daemon logs it and
// force-closes the remaining connections rather than hanging forever.
//
// The flag table below (newFlagSet) is the single source of truth for
// the usage text, the README entobenchd section, and docs/server.md; a
// test keeps all of them in sync.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
	"repro/internal/server"
)

// config is the daemon's flag-settable configuration.
type config struct {
	addr         string
	boards       string
	workers      int
	cellTimeout  time.Duration
	cacheCap     int
	cacheDir     string
	cacheQuota   int64
	backend      string
	traceFile    string
	maxInflight  int
	maxQueue     int
	maxDeadline  time.Duration
	maxJobs      int
	drainTimeout time.Duration
}

// newFlagSet declares every daemon flag. This table is what the
// README/docs sync test walks, so a flag added here without
// documentation fails the build's test step.
func newFlagSet(cfg *config) *flag.FlagSet {
	fs := flag.NewFlagSet("entobenchd", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8090", "listen address (host:port)")
	fs.StringVar(&cfg.boards, "boards", "", "comma-separated board files to load into the registry at startup")
	fs.IntVar(&cfg.workers, "j", 0, "sweep worker goroutines per cache-filling run (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.cellTimeout, "celltimeout", 0, "per-cell watchdog for served sweeps: abandon any cell that takes longer (0 = off)")
	fs.IntVar(&cfg.cacheCap, "cachecap", report.DefaultSweepCacheCapacity, "completed sweep results retained in the in-memory cache")
	fs.StringVar(&cfg.cacheDir, "cachedir", "", "persistent per-cell result cache directory (created if missing); restarts start warm")
	fs.Int64Var(&cfg.cacheQuota, "cachequota", 0, "byte bound on the -cachedir directory; past it the least-recently-used cells are garbage-collected (0 = unbounded)")
	fs.StringVar(&cfg.backend, "backend", "", "default measurement backend for served sweeps (sim, trace, or a registered name; default sim)")
	fs.StringVar(&cfg.traceFile, "tracefile", "", "trace-capture CSV loaded into the trace backend at startup (implies -backend trace)")
	fs.IntVar(&cfg.maxInflight, "maxinflight", server.DefaultMaxInflight, "admission budget: total weight (measurement cells) of cache-filling sweeps running at once; over it synchronous sweeps shed with 429")
	fs.IntVar(&cfg.maxQueue, "maxqueue", server.DefaultMaxQueue, "bound on admitted-but-waiting async sweep jobs; on overflow the oldest queued job is evicted (503 on poll); -1 disables the queue")
	fs.DurationVar(&cfg.maxDeadline, "maxdeadline", 0, "cap on the per-request deadline_ms sweep deadline, applied as the default when a request carries none (0 = uncapped)")
	fs.IntVar(&cfg.maxJobs, "maxjobs", server.DefaultMaxFinishedJobs, "finished sweep job handles retained for polling and late SSE attaches, evicted oldest-first")
	fs.DurationVar(&cfg.drainTimeout, "draintimeout", 10*time.Second, "graceful-shutdown drain deadline: how long in-flight requests get to finish after SIGINT/SIGTERM before being force-closed")
	return fs
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "entobenchd:", err)
		os.Exit(1)
	}
}

// run is the daemon body: parse flags, load boards, bind the listener,
// announce readiness, serve until ctx cancels, then drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	var cfg config
	fs := newFlagSet(&cfg)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := loadBoardFiles(cfg.boards); err != nil {
		return err
	}
	report.SetSweepCacheCapacity(cfg.cacheCap)

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "entobenchd: "+format+"\n", a...)
	}
	opts := server.Options{
		Workers:         cfg.workers,
		CellTimeout:     cfg.cellTimeout,
		MaxInflight:     cfg.maxInflight,
		MaxQueue:        cfg.maxQueue,
		MaxDeadline:     cfg.maxDeadline,
		MaxFinishedJobs: cfg.maxJobs,
		Logf:            logf,
	}
	if cfg.cacheDir != "" {
		cc, err := report.OpenCellCacheQuota(cfg.cacheDir, cfg.cacheQuota)
		if err != nil {
			return err
		}
		opts.CellCache = cc
		if cfg.cacheQuota > 0 {
			logf("persistent cell cache at %s (quota %d bytes)", cc.Dir(), cfg.cacheQuota)
		} else {
			logf("persistent cell cache at %s", cc.Dir())
		}
	}
	be, err := resolveBackend(cfg.backend, cfg.traceFile)
	if err != nil {
		return err
	}
	if be != nil {
		opts.Backend = be
		logf("default backend %s (source %s)", be.Name(), be.Source())
	}
	srv := server.New(opts)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Announce on stdout only once the listener is bound, so scripts
	// (and the CI smoke job) can wait for this line instead of polling.
	fmt.Fprintf(stdout, "entobenchd listening on http://%s\n", ln.Addr())

	// Graceful drain: context cancellation (SIGINT/SIGTERM) closes the
	// listener and gives in-flight requests -draintimeout to finish. A
	// stuck sweep cannot hang shutdown forever: when the drain deadline
	// expires the remaining connections are force-closed and the daemon
	// exits cleanly anyway — losing only the requests that were already
	// past saving.
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logf("shutting down, draining for up to %v", cfg.drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		err := httpSrv.Shutdown(drainCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			logf("drain deadline %v expired; force-closing in-flight requests", cfg.drainTimeout)
			err = httpSrv.Close()
		}
		drained <- err
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logf("stopped")
	return nil
}

// resolveBackend turns -backend/-tracefile into the server's default
// measurement backend, with the same semantics as `entobench sweep`. A
// trace backend loaded from -tracefile is additionally registered in
// the process backend registry, so wire requests can select it with
// `"backend": "trace"` even when it is not the default.
func resolveBackend(name, traceFile string) (harness.Backend, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if traceFile != "" {
		if name != "" && name != "trace" {
			return nil, fmt.Errorf("-tracefile feeds the trace backend and cannot combine with -backend %s", name)
		}
		tb, err := harness.LoadTraceBackend(traceFile)
		if err != nil {
			return nil, err
		}
		if err := harness.RegisterBackend(tb); err != nil {
			return nil, err
		}
		return tb, nil
	}
	switch name {
	case "", "sim":
		return nil, nil // classic simulator path
	case "trace":
		return nil, errors.New("-backend trace needs -tracefile FILE (the captures to replay)")
	default:
		be, ok := harness.BackendByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (registered: %s)", name, strings.Join(harness.BackendNames(), ", "))
		}
		return be, nil
	}
}

// loadBoardFiles registers every board file in a comma-separated list.
func loadBoardFiles(list string) error {
	if list == "" {
		return nil
	}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if _, err := mcu.LoadFile(path); err != nil {
			return err
		}
	}
	return nil
}
