package main

import (
	"strings"
	"testing"

	"repro/internal/mcu"
)

const exampleBoardFile = "../../examples/custom-board/m85.json"

// The -boards/-archs plumbing: files load through the registry and the
// query resolves the sweep's board selection.
func TestResolveSweepArchs(t *testing.T) {
	// No flags: nil keeps the memoized default-sweep path.
	archs, err := resolveSweepArchs("", "")
	if err != nil || archs != nil {
		t.Fatalf("resolveSweepArchs(\"\",\"\") = %v, %v; want nil (default path)", archs, err)
	}
	// -boards alone: the customs ride alongside the Table IV set.
	archs, err = resolveSweepArchs(exampleBoardFile, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(archs) != 4 || archs[3].Name != "M85" {
		t.Fatalf("sweep -boards selection = %v, want Table IV + M85", names(archs))
	}
	if !strings.Contains(archs[3].Source, "m85.json") {
		t.Errorf("loaded board source = %q, want the file path", archs[3].Source)
	}
	// -archs resolves sets (including file-declared ones) and names.
	archs, err = resolveSweepArchs("", "nextgen")
	if err != nil {
		t.Fatal(err)
	}
	if len(archs) != 2 || archs[0].Name != "M7" || archs[1].Name != "M85" {
		t.Fatalf("-archs nextgen = %v", names(archs))
	}
	archs, err = resolveSweepArchs("", "m85,M4")
	if err != nil || len(archs) != 2 {
		t.Fatalf("-archs m85,M4 = %v, %v", names(archs), err)
	}
	// Unknown tokens surface the registry's vocabulary error.
	if _, err = resolveSweepArchs("", "warp9"); err == nil || !strings.Contains(err.Error(), "unknown board") {
		t.Errorf("unknown -archs token: err = %v", err)
	}
	// A missing board file is a load error, not a silent default sweep.
	if _, err = resolveSweepArchs("no/such/file.json", ""); err == nil {
		t.Error("missing board file should fail")
	}
}

func TestLoadBoardFilesList(t *testing.T) {
	// Empty list: nothing to do.
	if archs, err := loadBoardFiles(""); err != nil || archs != nil {
		t.Fatalf("loadBoardFiles(\"\") = %v, %v", archs, err)
	}
	// Re-loading the same file collides on the board name — the registry
	// is process-global, so the second load reports the duplicate.
	if _, ok := mcu.ByName("M85"); !ok {
		if _, err := loadBoardFiles(exampleBoardFile); err != nil {
			t.Fatal(err)
		}
	}
	_, err := loadBoardFiles(exampleBoardFile)
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("re-loading a board file: err = %v, want a name collision", err)
	}
}

func names(archs []mcu.Arch) []string {
	out := make([]string, len(archs))
	for i, a := range archs {
		out[i] = a.Name
	}
	return out
}
