package main

import (
	"flag"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

func runFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("arch", "M4", "")
	fs.Bool("nocache", false, "")
	fs.String("csv", "", "")
	return fs
}

func TestReorderArgs(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want []string
	}{
		{"kernel-first", []string{"madgwick", "-arch", "M33", "-nocache"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"flags-first", []string{"-arch", "M33", "-nocache", "madgwick"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"interleaved", []string{"-arch", "M33", "madgwick", "-nocache"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"equals-form", []string{"madgwick", "-arch=M7"},
			[]string{"-arch=M7", "madgwick"}},
		{"bool-then-kernel", []string{"-nocache", "madgwick"},
			[]string{"-nocache", "madgwick"}},
		{"double-dash-stops", []string{"-nocache", "--", "-weird-name"},
			[]string{"-nocache", "-weird-name"}},
		{"bare-kernel", []string{"madgwick"}, []string{"madgwick"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := reorderArgs(runFlagSet(), c.in)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("reorderArgs(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

// End-to-end: one Parse must see both orderings identically.
func TestRunFlagOrderings(t *testing.T) {
	for _, args := range [][]string{
		{"madgwick", "-arch", "M33", "-nocache"},
		{"-arch", "M33", "-nocache", "madgwick"},
		{"-arch", "M33", "madgwick", "-nocache"},
	} {
		fs := runFlagSet()
		if err := fs.Parse(reorderArgs(fs, args)); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		if fs.NArg() != 1 || fs.Arg(0) != "madgwick" {
			t.Fatalf("args %v: positional = %v", args, fs.Args())
		}
		if fs.Lookup("arch").Value.String() != "M33" {
			t.Fatalf("args %v: arch = %s", args, fs.Lookup("arch").Value.String())
		}
		if fs.Lookup("nocache").Value.String() != "true" {
			t.Fatalf("args %v: nocache not set", args)
		}
	}
}

// TestUsageListsEveryCommand keeps the three command references in
// sync: the commands table (source of truth), the generated usage
// text, and the README "Command reference" table. Adding a command or
// flag to the table without updating the README fails here; editing
// the README without the table fails the row count.
func TestUsageListsEveryCommand(t *testing.T) {
	text := usageText()
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	// Scope to the Command reference section: other README tables use
	// the same row shape.
	section := string(readme)
	if i := strings.Index(section, "## Command reference"); i >= 0 {
		section = section[i:]
	} else {
		t.Fatal("README lost its Command reference section")
	}
	if j := strings.Index(section[1:], "\n## "); j >= 0 {
		section = section[:j+1]
	}
	lines := strings.Split(section, "\n")

	readmeRow := func(name string) (string, bool) {
		prefix := "| `" + name + "`"
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return l, true
			}
		}
		return "", false
	}

	for _, c := range commands {
		if c.run == nil {
			t.Errorf("%s: nil run func", c.name)
		}
		if got, ok := lookup(c.name); !ok || got.name != c.name {
			t.Errorf("lookup(%q) failed", c.name)
		}
		for _, a := range c.aliases {
			if got, ok := lookup(a); !ok || got.name != c.name {
				t.Errorf("alias %q does not resolve to %q", a, c.name)
			}
		}

		if !strings.Contains(text, c.name) {
			t.Errorf("usage text missing command %q", c.name)
		}
		if !strings.Contains(text, c.summary) {
			t.Errorf("usage text missing summary for %q", c.name)
		}
		if c.args != "" && !strings.Contains(text, c.args) {
			t.Errorf("usage text missing argument synopsis for %q", c.name)
		}

		row, ok := readmeRow(c.name)
		if !ok {
			t.Errorf("README command reference missing a row for %q", c.name)
			continue
		}
		if !strings.Contains(row, c.summary) {
			t.Errorf("README row for %q lost its summary:\n%s", c.name, row)
		}
		if c.args != "" && !strings.Contains(row, "`"+c.args+"`") {
			t.Errorf("README row for %q out of sync with its flags (want %q):\n%s",
				c.name, c.args, row)
		}
		for _, a := range c.aliases {
			if !strings.Contains(row, "`"+a+"`") {
				t.Errorf("README row for %q does not mention alias %q:\n%s", c.name, a, row)
			}
		}
	}

	// No stale rows: exactly one row per command.
	var rows int
	for _, l := range lines {
		if strings.HasPrefix(l, "| `") {
			rows++
		}
	}
	if rows != len(commands) {
		t.Errorf("README has %d command rows, command table has %d", rows, len(commands))
	}

	if _, ok := lookup("no-such-command"); ok {
		t.Error("lookup accepted an unknown command")
	}
}
