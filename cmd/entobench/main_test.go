package main

import (
	"flag"
	"io"
	"reflect"
	"testing"
)

func runFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("arch", "M4", "")
	fs.Bool("nocache", false, "")
	fs.String("csv", "", "")
	return fs
}

func TestReorderArgs(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want []string
	}{
		{"kernel-first", []string{"madgwick", "-arch", "M33", "-nocache"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"flags-first", []string{"-arch", "M33", "-nocache", "madgwick"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"interleaved", []string{"-arch", "M33", "madgwick", "-nocache"},
			[]string{"-arch", "M33", "-nocache", "madgwick"}},
		{"equals-form", []string{"madgwick", "-arch=M7"},
			[]string{"-arch=M7", "madgwick"}},
		{"bool-then-kernel", []string{"-nocache", "madgwick"},
			[]string{"-nocache", "madgwick"}},
		{"double-dash-stops", []string{"-nocache", "--", "-weird-name"},
			[]string{"-nocache", "-weird-name"}},
		{"bare-kernel", []string{"madgwick"}, []string{"madgwick"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := reorderArgs(runFlagSet(), c.in)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("reorderArgs(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

// End-to-end: one Parse must see both orderings identically.
func TestRunFlagOrderings(t *testing.T) {
	for _, args := range [][]string{
		{"madgwick", "-arch", "M33", "-nocache"},
		{"-arch", "M33", "-nocache", "madgwick"},
		{"-arch", "M33", "madgwick", "-nocache"},
	} {
		fs := runFlagSet()
		if err := fs.Parse(reorderArgs(fs, args)); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		if fs.NArg() != 1 || fs.Arg(0) != "madgwick" {
			t.Fatalf("args %v: positional = %v", args, fs.Args())
		}
		if fs.Lookup("arch").Value.String() != "M33" {
			t.Fatalf("args %v: arch = %s", args, fs.Lookup("arch").Value.String())
		}
		if fs.Lookup("nocache").Value.String() != "true" {
			t.Fatalf("args %v: nocache not set", args)
		}
	}
}
