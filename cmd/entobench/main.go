// Command entobench is the suite's command-line front end: list
// kernels, run individual benchmarks, and regenerate every table and
// figure of the paper from the live suite.
//
// Usage:
//
//	entobench list                 # kernels with stage/category/dataset
//	entobench archs                # Table V
//	entobench run <kernel> [-arch M4] [-nocache]
//	entobench table3 | table4 | table5 | table6 | table7 | table8
//	entobench fig3 | fig4 [-step N] | fig5 [-n N]
//	entobench sweep [-j N]         # the full >400-datapoint characterization,
//	                               # fanned across N worker goroutines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/ento"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "archs", "table5":
		ento.WriteTable5(os.Stdout)
	case "run":
		err = run(args)
	case "table3":
		err = ento.WriteTable3(os.Stdout)
	case "table4":
		err = ento.WriteTable4(os.Stdout)
	case "table6":
		err = ento.WriteTable6(os.Stdout)
	case "fig3":
		err = ento.WriteFig3(os.Stdout)
	case "table7":
		ento.WriteTable7(os.Stdout)
	case "fig4":
		fs := flag.NewFlagSet("fig4", flag.ExitOnError)
		step := fs.Int("step", 2, "fraction-bit stride of the sweep (1 = full)")
		_ = fs.Parse(args)
		ento.WriteFig4(os.Stdout, *step)
	case "table8":
		err = ento.WriteTable8(os.Stdout)
	case "fig5":
		fs := flag.NewFlagSet("fig5", flag.ExitOnError)
		n := fs.Int("n", 50, "synthetic problems per datapoint (paper: 1000)")
		_ = fs.Parse(args)
		err = ento.WriteFig5(os.Stdout, *n)
	case "sweep":
		err = sweep(args)
	case "closedloop":
		err = closedLoop()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "entobench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: entobench <command>

commands:
  list      kernels in the suite (stage, category, dataset)
  archs     modeled Cortex-M cores (Table V)
  run       run one kernel: entobench run <kernel> [-arch M4] [-nocache]
  table3    static metrics for the whole suite
  table4    dynamic metrics for the whole suite
  table6    perception energy/peak power across datasets (Case Study #1)
  fig3      perception cycle-count series (Case Study #1)
  table7    attitude filter precision/energy (Case Study #2)
  fig4      fixed-point failure-rate sweep (Case Study #2) [-step N]
  table8    FLOPs vs measured cycles/energy (Case Study #3)
  fig5      relative-pose solver panels (Case Study #4) [-n N]
  sweep     full characterization with the datapoint count [-j N]
  closedloop  Section VI-E demo: task-level metrics + compute bill`)
}

func list() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Stage\tKernel\tCategory\tDataset\tNotes")
	for _, s := range ento.Suite() {
		notes := ""
		if s.M7Only {
			notes = "M7 only (SRAM)"
		}
		if s.FLOPs > 0 {
			notes += fmt.Sprintf(" claimed FLOPs=%d", s.FLOPs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", s.Stage, s.Name, s.Category, s.Dataset, notes)
	}
	return tw.Flush()
}

// reorderArgs rewrites a subcommand argument list so every flag (with
// its value) precedes the positional arguments, letting one fs.Parse
// accept "run madgwick -arch M33 -nocache" and "run -arch M33 madgwick"
// alike. The old approach — re-parsing the FlagSet on its own leftover
// args — silently dropped positionals after the first and double-set
// already-seen flags. Boolean flags are recognized through the FlagSet
// so "-nocache madgwick" does not swallow the kernel name as a value.
func reorderArgs(fs *flag.FlagSet, args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			pos = append(pos, args[i+1:]...)
			break
		}
		if len(a) < 2 || a[0] != '-' {
			pos = append(pos, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if strings.Contains(name, "=") {
			continue // -flag=value carries its own value
		}
		f := fs.Lookup(name)
		boolFlag := false
		if f != nil {
			if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok && bf.IsBoolFlag() {
				boolFlag = true
			}
		}
		if !boolFlag && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return append(flags, pos...)
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	arch := fs.String("arch", "M4", "target core: M0+, M4, M33, M7")
	nocache := fs.Bool("nocache", false, "disable the I/D caches")
	csvPath := fs.String("csv", "", "append the measurement to a CSV log")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run needs a kernel name")
	}
	kernel := fs.Arg(0)
	res, err := ento.Run(kernel, *arch, !*nocache)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteResultsCSV(f, []harness.Result{res}); err != nil {
			return err
		}
	}
	fmt.Printf("kernel      %s\n", res.Kernel)
	fmt.Printf("core        %s (%s), cache on: %v\n", res.Arch.Name, res.Arch.Board, res.CacheOn)
	fmt.Printf("ops         F=%d I=%d M=%d B=%d\n", res.Counts.F, res.Counts.I, res.Counts.M, res.Counts.B)
	fmt.Printf("cycles      %.0f\n", res.Model.Cycles)
	fmt.Printf("latency     %.2f µs\n", res.Measured.LatencyS*1e6)
	fmt.Printf("energy      %.3f µJ\n", res.Measured.EnergyJ*1e6)
	fmt.Printf("avg power   %.1f mW\n", res.Measured.AvgPowerW*1e3)
	fmt.Printf("peak power  %.1f mW\n", res.Measured.PeakPowerW*1e3)
	fmt.Printf("reps in ROI %d\n", res.Measured.Reps)
	if res.Valid {
		fmt.Println("validation  PASS")
	} else {
		fmt.Printf("validation  FAIL: %v\n", res.ValidErr)
	}
	return nil
}

func closedLoop() error {
	fmt.Println("Closed-loop hover-square mission (Section VI-E roadmap)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Estimator\tCompleted\tPath RMS (m)\tAtt RMS (°)\tOps/step\tmJ/mission M4\tmJ M33\tduty M4")
	for _, est := range []sim.Estimator{sim.TruthState, sim.MadgwickIMU} {
		m := sim.HoverMission()
		res := sim.RunClosedLoop(est, m)
		fmt.Fprintf(tw, "%s\t%v\t%.4f\t%.2f\t%d\t%.2f\t%.2f\t%.1f%%\n",
			est, res.Completed, res.PathErrRMS, res.AttitudeErrRMS,
			res.CountsPerStep.Total(),
			res.MissionEnergyJ["M4"]*1e3, res.MissionEnergyJ["M33"]*1e3,
			res.DutyFactor["M4"]*100)
	}
	return tw.Flush()
}

func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	j := fs.Int("j", 0, "characterization worker goroutines (0 = GOMAXPROCS)")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	c, err := report.RunCharacterizationWorkers(*j)
	if err != nil {
		return err
	}
	c.WriteTable3(os.Stdout)
	fmt.Println()
	c.WriteTable4(os.Stdout)
	fmt.Printf("\nTotal measured datapoints: %d (paper: >400)\n", c.Datapoints())
	return nil
}
