// Command entobench is the suite's command-line front end: list
// kernels, run individual benchmarks, regenerate every table and figure
// of the paper from the live suite, and export the full
// characterization in machine-readable form.
//
// Usage:
//
//	entobench list                 # kernels with stage/category/dataset
//	entobench archs                # Table V
//	entobench run <kernel> [-arch M4] [-boards FILE] [-nocache] [-csv FILE]
//	entobench table3 | table4 | table5 | table6 | table7 | table8
//	entobench fig3 | fig4 [-step N] | fig5 [-n N]
//	entobench sweep [-j N] [-boards FILE] [-archs LIST] [-json]
//	                [-backend NAME] [-tracefile FILE]
//	                [-cachedir DIR] [-shard I/N]
//	                [-trace FILE] [-progress]
//	                [-cpuprofile FILE] [-memprofile FILE]
//	                               # the full >400-datapoint characterization,
//	                               # fanned across N worker goroutines;
//	                               # -boards loads user board files and
//	                               # -archs picks the cores (set name or list);
//	                               # -backend selects the measurement backend
//	                               # and -tracefile replays captured traces
//	                               # through the trace backend;
//	                               # -cachedir persists per-cell results so
//	                               # overlapping sweeps compute only the delta;
//	                               # -shard runs slice I of an N-way partition
//	                               # and emits a shard bundle (requires -json)
//	entobench trace <kernel> [-arch M4] [-boards FILE] [-o FILE]
//	                               # export a synthesized trace-capture CSV
//	entobench merge [-o FILE] <shard.json>...
//	                               # join shard bundles into the v1 JSON report
//	entobench closedloop           # Section VI-E task-level demo
//
// The command table below (var commands) is the single source of truth
// for the usage text and the README command reference; a test keeps all
// three in sync.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/ento"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

// command is one entobench subcommand: its spelling(s), the synopsis of
// its arguments and flags, a one-line summary, and the implementation.
type command struct {
	name    string
	aliases []string
	args    string // argument/flag synopsis, "" when the command takes none
	summary string
	run     func(args []string) error
}

// commands drives the dispatch switch-equivalent, the usage text, and
// the README command reference (TestUsageListsEveryCommand).
var commands = []command{
	{name: "list", summary: "kernels in the suite (stage, category, dataset)",
		run: func([]string) error { return list() }},
	{name: "archs", aliases: []string{"table5"}, summary: "modeled Cortex-M cores (Table V)",
		run: func([]string) error { ento.WriteTable5(os.Stdout); return nil }},
	{name: "run", args: "<kernel> [-arch M4] [-boards FILE] [-nocache] [-csv FILE]",
		summary: "run one kernel through the full measurement pipeline",
		run:     run},
	{name: "table3", summary: "static metrics for the whole suite",
		run: func([]string) error { return ento.WriteTable3(os.Stdout) }},
	{name: "table4", summary: "dynamic metrics for the whole suite",
		run: func([]string) error { return ento.WriteTable4(os.Stdout) }},
	{name: "table6", summary: "perception energy/peak power across datasets (Case Study #1)",
		run: func([]string) error { return ento.WriteTable6(os.Stdout) }},
	{name: "fig3", summary: "perception cycle-count series (Case Study #1)",
		run: func([]string) error { return ento.WriteFig3(os.Stdout) }},
	{name: "table7", summary: "attitude filter precision/energy (Case Study #2)",
		run: func([]string) error { ento.WriteTable7(os.Stdout); return nil }},
	{name: "fig4", args: "[-step N]", summary: "fixed-point failure-rate sweep (Case Study #2)",
		run: fig4},
	{name: "table8", summary: "FLOPs vs measured cycles/energy (Case Study #3)",
		run: func([]string) error { return ento.WriteTable8(os.Stdout) }},
	{name: "fig5", args: "[-n N]", summary: "relative-pose solver panels (Case Study #4)",
		run: fig5},
	{name: "sweep", args: "[-j N] [-boards FILE] [-archs LIST] [-json] [-backend NAME] [-tracefile FILE] [-cachedir DIR] [-shard I/N] [-trace FILE] [-progress] [-failfast] [-celltimeout DUR] [-cpuprofile FILE] [-memprofile FILE]",
		summary: "full characterization with the datapoint count",
		run:     sweep},
	{name: "trace", args: "<kernel> [-arch M4] [-boards FILE] [-o FILE]",
		summary: "export a kernel's synthesized capture as a trace CSV (cache on and off)",
		run:     traceExport},
	{name: "merge", args: "[-o FILE] <shard.json>...",
		summary: "join shard bundles into one v1 JSON report",
		run:     merge},
	{name: "closedloop", summary: "Section VI-E demo: task-level metrics + compute bill",
		run: func([]string) error { return closedLoop() }},
}

// lookup resolves a command by name or alias.
func lookup(name string) (command, bool) {
	for _, c := range commands {
		if c.name == name {
			return c, true
		}
		for _, a := range c.aliases {
			if a == name {
				return c, true
			}
		}
	}
	return command{}, false
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Fault-injection hook for end-to-end robustness smoke runs (CI,
	// docs/robustness.md): ENTOBENCH_FAULTINJECT=panic[,error,...]
	// registers deliberately broken kernels before dispatch, exactly as
	// a user's buggy kernel would arrive through ento.RegisterKernel.
	if modes := os.Getenv("ENTOBENCH_FAULTINJECT"); modes != "" {
		if err := faultinject.RegisterModes(modes); err != nil {
			fmt.Fprintln(os.Stderr, "entobench:", err)
			os.Exit(2)
		}
	}
	cmd, ok := lookup(os.Args[1])
	if !ok {
		usage()
		os.Exit(2)
	}
	if err := cmd.run(os.Args[2:]); err != nil {
		fmt.Fprintln(os.Stderr, "entobench:", err)
		os.Exit(1)
	}
}

// usageText renders the command reference from the table.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: entobench <command>\n\ncommands:\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for _, c := range commands {
		name := c.name
		if len(c.aliases) > 0 {
			name += " (" + strings.Join(c.aliases, ", ") + ")"
		}
		if c.args != "" {
			name += " " + c.args
		}
		fmt.Fprintf(tw, "  %s\t%s\n", name, c.summary)
	}
	tw.Flush()
	return b.String()
}

func usage() {
	fmt.Fprint(os.Stderr, usageText())
}

func list() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Stage\tKernel\tCategory\tDataset\tNotes")
	for _, s := range ento.Suite() {
		notes := ""
		if s.M7Only {
			notes = "M7 only (SRAM)"
		}
		if s.FLOPs > 0 {
			notes += fmt.Sprintf(" claimed FLOPs=%d", s.FLOPs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", s.Stage, s.Name, s.Category, s.Dataset, notes)
	}
	return tw.Flush()
}

// reorderArgs rewrites a subcommand argument list so every flag (with
// its value) precedes the positional arguments, letting one fs.Parse
// accept "run madgwick -arch M33 -nocache" and "run -arch M33 madgwick"
// alike. The old approach — re-parsing the FlagSet on its own leftover
// args — silently dropped positionals after the first and double-set
// already-seen flags. Boolean flags are recognized through the FlagSet
// so "-nocache madgwick" does not swallow the kernel name as a value.
func reorderArgs(fs *flag.FlagSet, args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			pos = append(pos, args[i+1:]...)
			break
		}
		if len(a) < 2 || a[0] != '-' {
			pos = append(pos, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if strings.Contains(name, "=") {
			continue // -flag=value carries its own value
		}
		f := fs.Lookup(name)
		boolFlag := false
		if f != nil {
			if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok && bf.IsBoolFlag() {
				boolFlag = true
			}
		}
		if !boolFlag && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return append(flags, pos...)
}

// loadBoardFiles registers every board file in a comma-separated list
// and returns the boards they defined, in file order.
func loadBoardFiles(list string) ([]mcu.Arch, error) {
	if list == "" {
		return nil, nil
	}
	var loaded []mcu.Arch
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		archs, err := mcu.LoadFile(path)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, archs...)
	}
	return loaded, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	arch := fs.String("arch", "M4", "target core: M0+, M4, M33, M7, or a custom board")
	boards := fs.String("boards", "", "comma-separated board files to load before resolving -arch")
	nocache := fs.Bool("nocache", false, "disable the I/D caches")
	csvPath := fs.String("csv", "", "append the measurement to a CSV log")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	if _, err := loadBoardFiles(*boards); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run needs a kernel name")
	}
	kernel := fs.Arg(0)
	res, err := ento.Run(kernel, *arch, !*nocache)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteResultsCSV(f, []harness.Result{res}); err != nil {
			return err
		}
	}
	fmt.Printf("kernel      %s\n", res.Kernel)
	fmt.Printf("core        %s (%s), cache on: %v\n", res.Arch.Name, res.Arch.Board, res.CacheOn)
	fmt.Printf("ops         F=%d I=%d M=%d B=%d\n", res.Counts.F, res.Counts.I, res.Counts.M, res.Counts.B)
	fmt.Printf("cycles      %.0f\n", res.Model.Cycles)
	fmt.Printf("latency     %.2f µs\n", res.Measured.LatencyS*1e6)
	fmt.Printf("energy      %.3f µJ\n", res.Measured.EnergyJ*1e6)
	fmt.Printf("avg power   %.1f mW\n", res.Measured.AvgPowerW*1e3)
	fmt.Printf("peak power  %.1f mW\n", res.Measured.PeakPowerW*1e3)
	fmt.Printf("reps in ROI %d\n", res.Measured.Reps)
	if res.Valid {
		fmt.Println("validation  PASS")
	} else {
		fmt.Printf("validation  FAIL: %v\n", res.ValidErr)
	}
	return nil
}

func fig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	step := fs.Int("step", 2, "fraction-bit stride of the sweep (1 = full)")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	ento.WriteFig4(os.Stdout, *step)
	return nil
}

func fig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	n := fs.Int("n", 50, "synthetic problems per datapoint (paper: 1000)")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	return ento.WriteFig5(os.Stdout, *n)
}

func closedLoop() error {
	fmt.Println("Closed-loop hover-square mission (Section VI-E roadmap)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Estimator\tCompleted\tPath RMS (m)\tAtt RMS (°)\tOps/step\tmJ/mission M4\tmJ M33\tduty M4")
	for _, est := range []sim.Estimator{sim.TruthState, sim.MadgwickIMU} {
		m := sim.HoverMission()
		res := sim.RunClosedLoop(est, m)
		fmt.Fprintf(tw, "%s\t%v\t%.4f\t%.2f\t%d\t%.2f\t%.2f\t%.1f%%\n",
			est, res.Completed, res.PathErrRMS, res.AttitudeErrRMS,
			res.CountsPerStep.Total(),
			res.MissionEnergyJ["M4"]*1e3, res.MissionEnergyJ["M33"]*1e3,
			res.DutyFactor["M4"]*100)
	}
	return tw.Flush()
}

// resolveSweepArchs loads any -boards files and resolves the -archs
// query into the sweep's board selection. A nil result means the
// default Table IV set, which keeps the memoized sweep path; with
// -boards but no -archs the loaded customs ride alongside the default
// set so a bare `sweep -boards custom.json` characterizes them too.
func resolveSweepArchs(boardFiles, query string) ([]mcu.Arch, error) {
	loaded, err := loadBoardFiles(boardFiles)
	if err != nil {
		return nil, err
	}
	if query != "" {
		return mcu.ResolveArchs(query)
	}
	if len(loaded) == 0 {
		return nil, nil
	}
	return append(mcu.TableIVSet(), loaded...), nil
}

// sweep runs the full characterization. -boards/-archs swap the default
// Table IV cores for a user-defined board selection; -json swaps the
// human tables on stdout for the versioned JSON export; -trace
// additionally writes a Chrome trace_event file of the run; -progress
// keeps a live status line on stderr (never stdout, so piped output
// stays clean).
//
// Failure handling (DESIGN.md §12): a kernel that panics, errors, or
// trips the -celltimeout watchdog costs only its own cells — the sweep
// completes, the failures are summarized on stderr, the JSON export
// carries a failures block with partial:true, and the exit code is
// non-zero. -failfast restores stop-at-first-failure. SIGINT cancels
// the sweep and still flushes the partial tables/JSON/trace.
func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	j := fs.Int("j", 0, "characterization worker goroutines (0 = GOMAXPROCS)")
	boardFiles := fs.String("boards", "", "comma-separated board files to load before the sweep")
	archsQ := fs.String("archs", "", "board selection: a set name or comma-separated board names")
	jsonOut := fs.Bool("json", false, "emit the versioned JSON export instead of tables")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON file of the sweep")
	progress := fs.Bool("progress", false, "live progress line on stderr")
	failFast := fs.Bool("failfast", false, "stop dispatching cells after the first failure (default: contain failures per cell)")
	cellTimeout := fs.Duration("celltimeout", 0, "per-cell watchdog: abandon any cell that takes longer (0 = off)")
	cacheDir := fs.String("cachedir", "", "persistent per-cell result cache directory (created if missing)")
	backendName := fs.String("backend", "", "measurement backend for the cells (sim, trace, or a registered name; default sim)")
	traceFile := fs.String("tracefile", "", "trace-capture CSV replayed by the trace backend (implies -backend trace)")
	shardSpec := fs.String("shard", "", "run slice I of an N-way grid partition (\"I/N\") and emit a shard bundle; requires -json")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to FILE")
	memProf := fs.String("memprofile", "", "write a pprof heap profile after the sweep to FILE")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	archs, err := resolveSweepArchs(*boardFiles, *archsQ)
	if err != nil {
		return err
	}
	be, err := resolveBackend(*backendName, *traceFile)
	if err != nil {
		return err
	}

	// SIGINT cancels the sweep context: in-flight cells finish (or are
	// abandoned, when the watchdog is armed), the rest are skipped, and
	// the partial result still flushes below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Host-side pprof hooks (docs/observability.md): the CPU profile
	// covers the whole sweep; the heap profile snapshots after the run,
	// post-GC, like go test's -memprofile.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", cerr)
			}
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			if merr := writeMemProfile(path); merr != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", merr)
			}
		}()
	}

	opts := core.SweepOptions{
		Workers:     *j,
		FailFast:    *failFast,
		CellTimeout: *cellTimeout,
		Context:     ctx,
		Backend:     be,
	}
	if *cacheDir != "" {
		cc, cerr := report.OpenCellCache(*cacheDir)
		if cerr != nil {
			return cerr
		}
		opts.CellCache = cc
	}
	if *shardSpec != "" {
		if !*jsonOut {
			return errors.New("-shard emits a machine-readable bundle and requires -json")
		}
		opts.ShardIndex, opts.ShardCount, err = parseShard(*shardSpec)
		if err != nil {
			return err
		}
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, "sweep")
		opts.Progress = prog.Update
	}
	if *tracePath != "" {
		obs.StartTrace()
	}
	if opts.ShardCount > 0 {
		// A shard run: straight to the engine (partial by construction,
		// so the in-memory sweep cache must not retain it), bundle to
		// stdout. Any owned-cell failure aborts with no bundle — merge
		// inputs are healthy by construction.
		sel := archs
		if sel == nil {
			sel = mcu.TableIVSet()
		}
		sr, serr := report.RunShard(core.Suite(), sel, opts)
		if prog != nil {
			prog.Done()
		}
		if *tracePath != "" {
			if terr := writeTrace(*tracePath); terr != nil && serr == nil {
				serr = terr
			}
		}
		if serr != nil {
			return serr
		}
		return report.WriteShardReport(os.Stdout, sr)
	}
	var c report.Characterization
	if archs == nil {
		c, err = report.RunCharacterizationOpts(opts)
	} else {
		c, err = report.RunCharacterizationForArchs(archs, opts)
	}
	if prog != nil {
		prog.Done()
	}
	if *tracePath != "" {
		if terr := writeTrace(*tracePath); terr != nil && err == nil {
			err = terr
		}
	}
	if err != nil && len(c.Records) == 0 {
		return err // nothing assembled — a plain failure, not a partial run
	}
	// Flush whatever the sweep assembled — the full dataset on a clean
	// run, the healthy subset on a partial one — then summarize failures.
	if *jsonOut {
		if werr := c.WriteJSON(os.Stdout); werr != nil {
			return werr
		}
	} else {
		c.WriteTable3(os.Stdout)
		fmt.Println()
		c.WriteTable4(os.Stdout)
		fmt.Printf("\nTotal measured datapoints: %d (paper: >400)\n", c.Datapoints())
	}
	if err != nil {
		return sweepFailureSummary(os.Stderr, c, err)
	}
	return nil
}

// resolveBackend turns the -backend/-tracefile pair into the sweep's
// measurement backend. No flags means the classic simulator path (nil,
// byte-identical to pre-backend sweeps); -tracefile loads its captures
// into the trace backend; any other name resolves through the registry.
// "sim" resolves too — the sweep engine normalizes it back to the
// classic path, so `-backend sim` is a spelled-out default.
func resolveBackend(name, traceFile string) (harness.Backend, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if traceFile != "" {
		if name != "" && name != "trace" {
			return nil, fmt.Errorf("-tracefile feeds the trace backend and cannot combine with -backend %s", name)
		}
		return harness.LoadTraceBackend(traceFile)
	}
	switch name {
	case "":
		return nil, nil
	case "trace":
		return nil, errors.New("-backend trace needs -tracefile FILE (the captures to replay)")
	default:
		be, ok := harness.BackendByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (registered: %s)", name, strings.Join(harness.BackendNames(), ", "))
		}
		return be, nil
	}
}

// traceExport writes one kernel's synthesized capture — cache on and
// cache off — as a trace-capture CSV, the file format the trace backend
// replays. It doubles as the reference producer for lab captures: match
// its header and per-cell meta row and `sweep -backend trace` ingests
// real measurements the same way.
func traceExport(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	arch := fs.String("arch", "M4", "target core: M0+, M4, M33, M7, or a custom board")
	boards := fs.String("boards", "", "comma-separated board files to load before resolving -arch")
	out := fs.String("o", "", "write the capture CSV to FILE instead of stdout")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	if _, err := loadBoardFiles(*boards); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("trace needs a kernel name")
	}
	captures, err := ento.SynthesizeCaptures(fs.Arg(0), *arch)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return harness.WriteTraceCSV(w, captures)
}

// sweepFailureSummary prints every failed/skipped cell to w and returns
// the compact error the exit path reports (the partial output above
// already flushed; the aggregate join with per-cell detail would drown
// the terminal).
func sweepFailureSummary(w io.Writer, c report.Characterization, err error) error {
	failures := c.Failures()
	var failed, skipped int
	for _, f := range failures {
		if f.Status == core.CellSkipped {
			skipped++
		} else {
			failed++
		}
		fmt.Fprintf(w, "entobench: cell lost: %v\n", &f)
	}
	if errors.Is(err, context.Canceled) {
		return fmt.Errorf("sweep interrupted: partial results flushed (%d cells failed, %d skipped)", failed, skipped)
	}
	return fmt.Errorf("sweep completed with %d failed and %d skipped cell(s); partial results flushed", failed, skipped)
}

// parseShard parses an "I/N" partition slot.
func parseShard(s string) (index, count int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		i, err1 := strconv.Atoi(a)
		n, err2 := strconv.Atoi(b)
		if err1 == nil && err2 == nil && 1 <= i && i <= n {
			return i, n, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -shard %q (want I/N with 1 <= I <= N)", s)
}

// merge joins shard bundles (entobench sweep -shard I/N -json) into the
// single v1 JSON report a one-process sweep of the same query would
// have produced, byte for byte. The bundles must form a complete
// partition of one sweep; anything stale, duplicated, or missing is an
// error.
func merge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "write the merged report to FILE instead of stdout")
	if err := fs.Parse(reorderArgs(fs, args)); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return errors.New("merge needs at least one shard bundle file")
	}
	shards := make([]report.ShardReport, 0, fs.NArg())
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sr, err := report.ReadShardReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		shards = append(shards, sr)
	}
	c, err := report.MergeShards(shards)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.WriteJSON(w)
}

// writeMemProfile forces a GC so the heap profile reflects live memory,
// then writes it to path.
func writeMemProfile(path string) error {
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace stops the active trace and saves it as a chrome://tracing
// loadable file.
func writeTrace(path string) error {
	tr := obs.StopTrace()
	if tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(tr.Spans), path)
	return nil
}
