// Command entoreport regenerates EXPERIMENTS.md: every table and figure
// of the paper, rendered from a live run of the suite, with the
// paper-vs-reproduced commentary blocks kept alongside.
//
// Usage:
//
//	entoreport [-o EXPERIMENTS.md] [-fig5n 50] [-fig4step 2] [-j N]
//	           [-json FILE] [-boards FILE] [-archs LIST] [-cachedir DIR]
//	           [-backend NAME] [-tracefile FILE]
//
// -json additionally saves the machine-readable characterization export
// (the same sweep the report renders as Tables III/IV) to FILE — the
// BENCH_*.json artifacts perf-trajectory tooling diffs across commits;
// see docs/observability.md for the schema. -boards loads user board
// files into the registry and -archs selects the cores Tables III/IV
// (and the JSON export) cover; the case studies keep their paper-fixed
// core sets. -cachedir backs the sweep with the persistent per-cell
// store (cells computed by any prior run load from disk) and adds a
// provenance block to the JSON export saying how many cells were
// cached versus computed. -backend selects the measurement backend for
// the characterization cells and -tracefile replays externally captured
// traces through the trace backend (docs/backends.md); covered cells
// carry source "measured" in the JSON export, the rest fall back to the
// simulator.
//
// SIGINT cancels the sweep; a partial characterization still flushes to
// the -json file (marked partial:true, with a failures block) before
// the process exits non-zero, so an interrupted overnight run is not a
// total loss (DESIGN.md §12).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ento"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	fig5n := flag.Int("fig5n", 50, "problems per Fig 5 datapoint (paper: 1000)")
	fig4step := flag.Int("fig4step", 2, "Fig 4 fraction-bit stride (1 = full sweep)")
	j := flag.Int("j", 0, "characterization worker goroutines (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "also write the characterization JSON export to this file")
	boards := flag.String("boards", "", "comma-separated board files to load before the sweep")
	archsQ := flag.String("archs", "", "board selection for Tables III/IV: a set name or comma-separated board names")
	cacheDir := flag.String("cachedir", "", "persistent per-cell result cache directory (created if missing)")
	backendName := flag.String("backend", "", "measurement backend for the cells (sim, trace, or a registered name; default sim)")
	traceFile := flag.String("tracefile", "", "trace-capture CSV replayed by the trace backend (implies -backend trace)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *report.PersistentCellCache
	if *cacheDir != "" {
		var err error
		if cache, err = report.OpenCellCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "entoreport:", err)
			os.Exit(1)
		}
	}
	be, err := resolveBackend(*backendName, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "entoreport:", err)
		os.Exit(1)
	}

	c, err := runSweep(ctx, *boards, *archsQ, *j, cache, be)
	if err != nil {
		// Partial sweep: salvage what completed. The JSON export is the
		// artifact overnight runs exist for, so flush it (partial:true)
		// before exiting non-zero; the report itself is not generated
		// from an incomplete dataset.
		if *jsonPath != "" && len(c.Records) > 0 {
			if werr := writeJSON(*jsonPath, c, cache); werr != nil {
				fmt.Fprintln(os.Stderr, "entoreport:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "entoreport: partial export (%d failed/skipped cells) written to %s\n",
					len(c.Failures()), *jsonPath)
			}
		}
		fmt.Fprintln(os.Stderr, "entoreport:", err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := generate(&buf, c, *fig5n, *fig4step); err != nil {
		fmt.Fprintln(os.Stderr, "entoreport:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, c, cache); err != nil {
			fmt.Fprintln(os.Stderr, "entoreport:", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "entoreport:", err)
		os.Exit(1)
	}
}

// runSweep resolves the board selection and runs (or reuses) the suite
// characterization: the memoized default sweep when no -boards/-archs
// were given, an uncached explicit-arch sweep otherwise. The context
// cancels the sweep; the partial characterization comes back alongside
// the error.
func runSweep(ctx context.Context, boardFiles, archsQ string, workers int, cache *report.PersistentCellCache, be harness.Backend) (report.Characterization, error) {
	for _, path := range strings.Split(boardFiles, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		if _, err := mcu.LoadFile(path); err != nil {
			return report.Characterization{}, err
		}
	}
	opts := core.SweepOptions{Workers: workers, Context: ctx, Backend: be}
	if cache != nil {
		opts.CellCache = cache
	}
	if archsQ == "" {
		return report.RunCharacterizationOpts(opts)
	}
	archs, err := mcu.ResolveArchs(archsQ)
	if err != nil {
		return report.Characterization{}, err
	}
	return report.RunCharacterizationForArchs(archs, opts)
}

// resolveBackend turns the -backend/-tracefile pair into the sweep's
// measurement backend, with the same semantics as `entobench sweep`:
// no flags → the classic simulator path, -tracefile → the trace
// backend, any other name → the process registry.
func resolveBackend(name, traceFile string) (harness.Backend, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if traceFile != "" {
		if name != "" && name != "trace" {
			return nil, fmt.Errorf("-tracefile feeds the trace backend and cannot combine with -backend %s", name)
		}
		return harness.LoadTraceBackend(traceFile)
	}
	switch name {
	case "":
		return nil, nil
	case "trace":
		return nil, fmt.Errorf("-backend trace needs -tracefile FILE (the captures to replay)")
	default:
		be, ok := harness.BackendByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (registered: %s)", name, strings.Join(harness.BackendNames(), ", "))
		}
		return be, nil
	}
}

// writeJSON saves the characterization export of the sweep the report
// already paid for. With a persistent cell cache in play the export
// carries the additive cache-provenance block (cells loaded from the
// store versus computed and persisted); without one the bytes are
// exactly the classic export.
func writeJSON(path string, c report.Characterization, cache *report.PersistentCellCache) error {
	rep := c.JSONExport()
	if cache != nil {
		prov := cache.Provenance()
		rep.Cache = &prov
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSONReport(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func generate(buf *bytes.Buffer, c report.Characterization, fig5n, fig4step int) error {
	fmt.Fprintf(buf, "# EntoBench-Go experiment log\n\nGenerated %s by cmd/entoreport.\n\n",
		time.Now().UTC().Format(time.RFC3339))
	fmt.Fprintln(buf, "```")
	ento.WriteTable5(buf)
	fmt.Fprintln(buf, "```")

	fmt.Fprintf(buf, "\nFull sweep: %d measured datapoints (paper claims >400).\n\n```\n", c.Datapoints())
	c.WriteTable3(buf)
	fmt.Fprintln(buf)
	c.WriteTable4(buf)
	fmt.Fprintln(buf, "```")

	cs1, err := report.RunCS1()
	if err != nil {
		return err
	}
	fmt.Fprintln(buf, "\n## Case Study #1\n\n```")
	cs1.WriteTable6(buf)
	fmt.Fprintln(buf)
	cs1.WriteFig3(buf)
	fmt.Fprintln(buf, "```")

	fmt.Fprintln(buf, "\n## Case Study #2\n\n```")
	report.RunCS2Table7().WriteTable7(buf)
	fmt.Fprintln(buf)
	report.RunFig4(fig4step).WriteFig4(buf)
	fmt.Fprintln(buf, "```")

	cs3, err := report.RunCS3()
	if err != nil {
		return err
	}
	fmt.Fprintln(buf, "\n## Case Study #3\n\n```")
	cs3.WriteTable8(buf)
	fmt.Fprintln(buf, "```")

	cs4, err := report.RunCS4(fig5n)
	if err != nil {
		return err
	}
	fmt.Fprintln(buf, "\n## Case Study #4\n\n```")
	cs4.WriteFig5(buf)
	fmt.Fprintln(buf, "```")
	return nil
}
