// visual-odometry: a frame-to-frame relative-pose front end of the kind
// Case Study #4 motivates. For each synthetic frame pair the pipeline
// detects FAST+BRIEF features, matches them by Hamming distance, and
// estimates the relative pose with LO-RANSAC over the upright three-
// point solver (the gravity prior comes "from the IMU"). The example
// prints per-frame accuracy and the energy bill on each core.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/mcu"
	"repro/internal/perception/feature"
	"repro/internal/pose"
	"repro/internal/profile"
	"repro/internal/scalar"
)

type F = scalar.F32

func main() {
	fmt.Println("Visual odometry front end: FAST+BRIEF → match → LO-RANSAC(u3pt)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Frame\tMatches\tInliers\tRANSAC iters\tRot err (°)\tM4 µJ\tM33 µJ\tM7 µJ")

	var total profile.Counts
	frames := 5
	for f := 0; f < frames; f++ {
		// Geometry: an upright relative-pose problem (what the robot
		// actually flies); imagery drives the 2D feature front end.
		prob := dataset.GenRelProblem(dataset.PoseGenConfig{
			N: 90, PixelNoise: 0.5, OutlierRatio: 0.2, Upright: true, Seed: int64(40 + f),
		})
		corrs := dataset.ConvertRel(F(0), prob)

		// Feature front end on the matching synthetic scene pair.
		pair := dataset.GenFlowPair(dataset.Midd, 160, 160, 3, 1, int64(80+f))
		var matches int
		counts := profile.Collect(func() {
			ra := feature.FASTBrief(pair.A, 20, 60)
			rb := feature.FASTBrief(pair.B, 20, 60)
			for _, da := range ra.Descriptors {
				best := 257
				for _, db := range rb.Descriptors {
					if d := feature.HammingDistance(da, db); d < best {
						best = d
					}
				}
				if best <= 50 {
					matches++
				}
			}
		})

		// Robust pose on the geometric correspondences.
		var est pose.Pose[F]
		var inliers []int
		var stats pose.RansacStats
		var rerr float64
		var ransacErr error
		counts2 := profile.Collect(func() {
			cfg := pose.DefaultRansacConfig()
			cfg.Seed = int64(f + 1)
			est, inliers, stats, ransacErr = pose.RelLoRansac(corrs, pose.U3PT[F], 3, cfg)
		})
		if ransacErr != nil {
			log.Fatalf("frame %d: LO-RANSAC: %v", f, ransacErr)
		}
		rerr = dataset.RotationErr(est, prob.Truth)
		counts.Add(counts2)
		total.Add(counts)

		e := func(a mcu.Arch) float64 {
			return a.Estimate(counts, mcu.PrecF32, true).EnergyJ * 1e6
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\t%.0f\t%.0f\t%.0f\n",
			f, matches, len(inliers), stats.Iterations, rerr,
			e(mcu.M4), e(mcu.M33), e(mcu.M7))
	}
	tw.Flush()

	perFrame := total.Scale(1 / float64(frames))
	fmt.Println("\nPer-frame budget at 10 Hz visual odometry:")
	for _, a := range mcu.TableIVSet() {
		est := a.Estimate(perFrame, mcu.PrecF32, true)
		fmt.Printf("  %-4s %6.1f ms/frame, %7.0f µJ/frame → %5.1f mW average VO power\n",
			a.Name, est.LatencyS*1e3, est.EnergyJ*1e6, est.EnergyJ*10*1e3)
	}
	fmt.Println(`
The gravity prior (u3pt instead of 5pt) is what keeps the RANSAC loop
affordable at the insect scale — rerun with the 5pt solver to watch the
budget explode.`)
}
