// control-loop: the closed-loop sketch of the paper's Section VI-E —
// the same plant flown by three controllers of increasing cost
// (fly-lqr, fly-tiny-mpc with input saturation, bee-mpc), logging both
// task-level performance (settling, tracking error) and the compute
// bill per control step. Kernel timing tells only part of the story;
// this example shows the other part.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/control"
	"repro/internal/mat"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/scalar"
)

type F = scalar.F32

const (
	dt    = 0.002
	steps = 2500
)

func main() {
	a, b, q, r := control.FlyModel(dt)

	lqr, err := control.NewLQR(F(0), a, b, q, r)
	if err != nil {
		log.Fatal(err)
	}
	tiny, err := control.NewTinyMPC(F(0), a, b, q, r, tightBox())
	if err != nil {
		log.Fatal(err)
	}
	bee := control.NewBeeMPC(F(0), a, b, q, r, control.DefaultBeeMPCConfig())

	type ctrl struct {
		name  string
		every int // control period in plant steps (bee-mpc runs slower)
		step  func(x mat.Vec[F]) mat.Vec[F]
	}
	xref := mat.VecFromFloats(F(0), []float64{0, 0, 0, 0})
	ctrls := []ctrl{
		{"fly-lqr", 1, func(x mat.Vec[F]) mat.Vec[F] { return lqr.Update(x, xref) }},
		{"fly-tiny-mpc", 1, func(x mat.Vec[F]) mat.Vec[F] { u, _ := tiny.Solve(x, xref); return u }},
		{"bee-mpc", 5, func(x mat.Vec[F]) mat.Vec[F] { u, _, err := bee.Solve(x, xref); must(err); return u }},
	}

	fmt.Println("Closed-loop hover recovery from a 0.3 rad pitch upset (5 s window)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Controller\tSettle (ms)\tIAE\tOps/step\tM4 µJ/step\tM4 duty @500Hz")
	for _, c := range ctrls {
		plant := control.NewLinearPlant(F(0), a, b, []float64{0.3, 0, 0.2, -0.4})
		var iae float64
		settle := -1
		var u mat.Vec[F]
		nCalls := 0
		counts := profile.Collect(func() {
			for i := 0; i < steps; i++ {
				if i%c.every == 0 {
					u = c.step(plant.X)
					nCalls++
				}
				plant.Step(u)
				e := normInf(plant.X.Floats())
				iae += e * dt
				if settle < 0 && e < 0.02 {
					settle = i
				}
			}
		})
		per := counts.Scale(1 / float64(nCalls))
		est := mcu.M4.Estimate(per, mcu.PrecF32, true)
		duty := est.LatencyS * 500 * 100 // percent of a 500 Hz period
		settleMs := float64(settle) * dt * 1e3
		if settle < 0 {
			settleMs = math.NaN()
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.4f\t%d\t%.2f\t%.1f%%\n",
			c.name, settleMs, iae, per.Total(), est.EnergyJ*1e6, duty)
	}
	tw.Flush()
	fmt.Println(`
All three fit the same M4, yet the compute bill spans orders of
magnitude while the trajectories barely differ on this benign upset —
exactly why the paper argues closed-loop, task-level benchmarks must
follow the kernel suite.`)
}

func tightBox() control.TinyMPCConfig {
	cfg := control.DefaultTinyMPCConfig()
	cfg.UMin = []float64{-1.5, -1.5}
	cfg.UMax = []float64{1.5, 1.5}
	return cfg
}

func normInf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
