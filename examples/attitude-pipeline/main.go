// attitude-pipeline: the high-rate proprioceptive loop of an
// insect-scale flyer. Simulates a RoboBee-style hover IMU stream, runs
// the Madgwick filter in float32 and in q7.24 fixed point, and converts
// the per-update costs into a mission energy budget — the decision
// Case Study #2 is about: does dropping the FPU (M0+) pay off?
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/attitude"
	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/imu"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/scalar"
)

const (
	updateRateHz = 400.0
	missionSec   = 120.0 // a two-minute sortie
)

func main() {
	recs := imu.Simulate(imu.HoverTrajectory(0.12, 0.1, 2), 4, updateRateHz, imu.DefaultNoise(), 7)

	fmt.Println("Insect-scale attitude pipeline: Madgwick @400 Hz, 2-minute mission")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Format\tCore\tµs/update\tnJ/update\tmJ/mission\tmean err (°)")

	type variant struct {
		name string
		prec mcu.Precision
		run  func() (profile.Counts, int, float64)
	}
	variants := []variant{
		{"f32", mcu.PrecF32, func() (profile.Counts, int, float64) {
			return drive(scalar.F32(0), recs)
		}},
		{"q7.24", mcu.PrecFixed, func() (profile.Counts, int, float64) {
			return drive(fixed.New(0, 24), recs)
		}},
	}
	for _, v := range variants {
		counts, updates, meanErr := v.run()
		perUpdate := counts.Scale(1 / float64(updates))
		for _, arch := range mcu.CaseStudy2Set() {
			est := arch.Estimate(perUpdate, v.prec, true)
			mission := est.EnergyJ * updateRateHz * missionSec * 1e3 // mJ
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%.2f\t%.2f\n",
				v.name, arch.Name, est.LatencyUs(), est.EnergyNJ(), mission, meanErr)
		}
	}
	tw.Flush()

	fmt.Println(`
Reading the table: the M0+ draws the least power but pays so many
soft-float (or shift-heavy fixed-point) cycles per update that its
mission energy is the worst — the race-to-idle principle. On the FPU
cores, q7.24 only adds cost. Fixed point earns its keep solely when the
design is locked to an FPU-less part.`)
}

func drive[T scalar.Real[T]](like T, recs []imu.Record) (profile.Counts, int, float64) {
	f := attitude.NewMadgwick(like, attitude.IMUOnly, 0.12)
	var errSum float64
	var errN int
	counts := profile.Collect(func() {
		for i, r := range recs {
			// Accelerometer prescaled to g units (fixed-point practice).
			for k := 0; k < 3; k++ {
				r.Accel[k] /= imu.Gravity
			}
			f.Update(imu.SampleAs(like, r))
			if i > len(recs)/2 {
				q := f.Quat()
				est := geom.QuatFromFloats(scalar.F64(0), q.W.Float(), q.X.Float(), q.Y.Float(), q.Z.Float())
				errSum += geom.QuatAngleDegrees(est, r.Truth)
				errN++
			}
		}
	})
	return counts, len(recs), errSum / float64(errN)
}
