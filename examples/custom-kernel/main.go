// custom-kernel: the artifact appendix's extensibility walkthrough. The
// paper's example benchmark is a vector-vector add that is not part of
// the curated suite; this program defines the same kernel as a Problem,
// registers nothing, and runs it through the identical measurement
// pipeline as the 31 suite kernels — the "Modular and Extensible
// Design" goal in practice.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/ento"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// vvadd is the example kernel: c = a + b over n elements.
type vvadd struct {
	n       int
	a, b, c []scalar.F32
}

func (v *vvadd) Name() string    { return "bench-example (vvadd)" }
func (v *vvadd) Dataset() string { return "synthetic" }

func (v *vvadd) Setup() error {
	v.a = make([]scalar.F32, v.n)
	v.b = make([]scalar.F32, v.n)
	v.c = make([]scalar.F32, v.n)
	for i := range v.a {
		v.a[i] = scalar.F32(i)
		v.b[i] = scalar.F32(3 * i)
	}
	return nil
}

func (v *vvadd) Solve() {
	for i := range v.a {
		v.c[i] = v.a[i].Add(v.b[i])
	}
	// Two loads and a store per element.
	profile.AddM(uint64(3 * v.n))
}

func (v *vvadd) Validate() error {
	for i := range v.c {
		if v.c[i] != scalar.F32(4*i) {
			return errors.New("vvadd: wrong sum")
		}
	}
	return nil
}

func main() {
	fmt.Println("Custom kernel through the EntoBench harness (artifact appendix example)")
	fmt.Println()
	p := &vvadd{n: 1024}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Core\tCache\tCycles\tLatency (µs)\tEnergy (µJ)\tPeak (mW)")
	for _, arch := range ento.Archs() {
		for _, cache := range []bool{true, false} {
			res, err := ento.RunProblem(p, arch.Name, ento.PrecF32, cacheCfg(cache))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Valid {
				log.Fatalf("validation failed: %v", res.ValidErr)
			}
			fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.2f\t%.3f\t%.1f\n",
				arch.Name, cache, res.Model.Cycles,
				res.Measured.LatencyS*1e6, res.Measured.EnergyJ*1e6,
				res.Measured.PeakPowerW*1e3)
		}
	}
	tw.Flush()
	fmt.Println("\nCompare with docs/expected-results in the artifact: same flow,")
	fmt.Println("same GPIO-delimited ROI, same 100 kHz trace analysis.")

	containedFailureDemo()
}

// broken is a deliberately buggy kernel — its Solve panics, the way a
// mat shape mismatch or an out-of-bounds index would in a real port.
type broken struct{}

func (broken) Name() string    { return "custom-broken (demo)" }
func (broken) Setup() error    { return nil }
func (broken) Solve()          { panic("custom-broken: out-of-bounds index (deliberate)") }
func (broken) Validate() error { return nil }

// containedFailureDemo registers the broken kernel next to vvadd and
// sweeps both on the M4: since the engine grew per-cell fault
// containment (DESIGN.md §12), the panic costs only the broken kernel's
// cells — the sweep completes, vvadd's numbers are intact, and the
// aggregate error carries one CellError per lost cell.
func containedFailureDemo() {
	fmt.Println("\nContained failure: a buggy kernel no longer aborts the sweep")
	fmt.Println()
	for _, s := range []ento.Spec{
		{Name: "custom-vvadd", Stage: ento.Control, Category: "Example", Dataset: "synthetic",
			Prec: ento.PrecF32, Factory: func() ento.Problem { return &vvadd{n: 1024} }},
		{Name: "custom-broken", Stage: ento.Control, Category: "Example", Dataset: "synthetic",
			Prec: ento.PrecF32, Factory: func() ento.Problem { return broken{} }},
	} {
		if err := ento.RegisterKernel(s); err != nil {
			log.Fatal(err)
		}
	}
	archs, err := ento.ArchSet("M4")
	if err != nil {
		log.Fatal(err)
	}
	c, err := ento.SweepOnOpts(archs, ento.SweepOptions{Workers: 2})
	if err == nil {
		log.Fatal("expected the broken kernel to surface cell errors")
	}
	for _, ce := range ento.CellErrors(err) {
		fmt.Printf("  lost cell: %v\n", ce)
	}
	fmt.Printf("\nSweep still completed: %d healthy datapoints across %d kernels\n",
		c.Datapoints(), len(c.Records))
	for _, r := range c.Records {
		if r.Spec.Name == "custom-vvadd" {
			fmt.Printf("custom-vvadd on M4 (cache on): %.2f µs, %.3f µJ — unaffected by its neighbor\n",
				r.Cells[0].Meas.LatencyS*1e6, r.Cells[0].Meas.EnergyJ*1e6)
		}
	}
}

func cacheCfg(on bool) ento.Config {
	cfg := ento.DefaultConfig()
	cfg.CacheOn = on
	return cfg
}
