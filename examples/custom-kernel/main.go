// custom-kernel: the artifact appendix's extensibility walkthrough. The
// paper's example benchmark is a vector-vector add that is not part of
// the curated suite; this program defines the same kernel as a Problem,
// registers nothing, and runs it through the identical measurement
// pipeline as the 31 suite kernels — the "Modular and Extensible
// Design" goal in practice.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/ento"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// vvadd is the example kernel: c = a + b over n elements.
type vvadd struct {
	n       int
	a, b, c []scalar.F32
}

func (v *vvadd) Name() string    { return "bench-example (vvadd)" }
func (v *vvadd) Dataset() string { return "synthetic" }

func (v *vvadd) Setup() error {
	v.a = make([]scalar.F32, v.n)
	v.b = make([]scalar.F32, v.n)
	v.c = make([]scalar.F32, v.n)
	for i := range v.a {
		v.a[i] = scalar.F32(i)
		v.b[i] = scalar.F32(3 * i)
	}
	return nil
}

func (v *vvadd) Solve() {
	for i := range v.a {
		v.c[i] = v.a[i].Add(v.b[i])
	}
	// Two loads and a store per element.
	profile.AddM(uint64(3 * v.n))
}

func (v *vvadd) Validate() error {
	for i := range v.c {
		if v.c[i] != scalar.F32(4*i) {
			return errors.New("vvadd: wrong sum")
		}
	}
	return nil
}

func main() {
	fmt.Println("Custom kernel through the EntoBench harness (artifact appendix example)")
	fmt.Println()
	p := &vvadd{n: 1024}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Core\tCache\tCycles\tLatency (µs)\tEnergy (µJ)\tPeak (mW)")
	for _, arch := range ento.Archs() {
		for _, cache := range []bool{true, false} {
			res, err := ento.RunProblem(p, arch.Name, ento.PrecF32, cacheCfg(cache))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Valid {
				log.Fatalf("validation failed: %v", res.ValidErr)
			}
			fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.2f\t%.3f\t%.1f\n",
				arch.Name, cache, res.Model.Cycles,
				res.Measured.LatencyS*1e6, res.Measured.EnergyJ*1e6,
				res.Measured.PeakPowerW*1e3)
		}
	}
	tw.Flush()
	fmt.Println("\nCompare with docs/expected-results in the artifact: same flow,")
	fmt.Println("same GPIO-delimited ROI, same 100 kHz trace analysis.")
}

func cacheCfg(on bool) ento.Config {
	cfg := ento.DefaultConfig()
	cfg.CacheOn = on
	return cfg
}
