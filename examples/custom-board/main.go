// Custom board walkthrough: define a core EntoBench has never heard of
// in a JSON file, load it at runtime, and characterize the suite on it —
// no edits to internal/ required. The same file works from the CLI:
//
//	entobench sweep -boards examples/custom-board/m85.json -archs M85
//	entobench run madgwick -boards examples/custom-board/m85.json -arch M85
//
// m85.json declares a hypothetical Cortex-M85-class part and a "nextgen"
// set pairing it with the reference M7; DESIGN.md §11 documents every
// field of the board-file schema.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/ento"
)

func main() {
	// Board files resolve relative to the caller; find ours next to this
	// source file when run as `go run ./examples/custom-board`.
	path := "examples/custom-board/m85.json"
	if _, err := os.Stat(path); err != nil {
		path = filepath.Join(".", "m85.json")
	}

	// Load: the file is validated as a whole (schema envelope, model
	// sanity, name collisions) and registers atomically.
	boards, err := ento.LoadBoards(path)
	if err != nil {
		log.Fatal(err)
	}
	m85 := boards[0]
	fmt.Printf("Registered %s (%s, %.0f MHz, %d KB SRAM) from %s\n\n",
		m85.Name, m85.ISA, m85.ClockHz/1e6, m85.SRAMKB, m85.Source)

	// The custom board now resolves everywhere a reference core does.
	res, err := ento.Run("madgwick", "m85", true) // lookups are case-insensitive
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("madgwick on %s: %.2f µs, %.4f µJ, %.1f mW peak\n\n",
		m85.Name, res.Measured.LatencyS*1e6, res.Measured.EnergyJ*1e6,
		res.Measured.PeakPowerW*1e3)

	// Sets declared in the file resolve by query, same as "tableiv" or
	// "all": here, the head-to-head "nextgen" pairing of M7 and M85.
	archs, err := ento.ArchSet("nextgen")
	if err != nil {
		log.Fatal(err)
	}

	// Characterize the full suite on that selection. With 2048 KB of
	// SRAM the M85 even fits sift, which the reference M33/M4 cannot run.
	c, err := ento.SweepOn(archs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Suite characterization over %v: %d datapoints\n\n",
		names(archs), c.Datapoints())
	c.WriteTable4(os.Stdout)

	// The JSON export carries model provenance for every board in the
	// sweep — a result file produced with a custom board names its source
	// file, so it stays self-describing.
	rep := c.JSONExport()
	fmt.Println("\nExported board provenance:")
	for _, b := range rep.Boards {
		fmt.Printf("  %-4s source=%s\n", b.Name, b.Source)
	}
}

func names(archs []ento.Arch) []string {
	out := make([]string, len(archs))
	for i, a := range archs {
		out[i] = a.Name
	}
	return out
}
