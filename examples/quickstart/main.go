// Quickstart: run one suite kernel on every modeled Cortex-M core and
// print the measurements — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/ento"
)

func main() {
	kernel := "madgwick"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}
	spec, ok := ento.Kernel(kernel)
	if !ok {
		log.Fatalf("unknown kernel %q — try `entobench list`", kernel)
	}
	fmt.Printf("EntoBench quickstart: %s (%s, %s stage, dataset %s)\n\n",
		spec.Name, spec.Category, spec.Stage, spec.Dataset)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Core\tCache\tLatency (µs)\tEnergy (µJ)\tPeak power (mW)\tValid")
	for _, arch := range ento.Archs() {
		if !spec.Fits(arch) {
			continue
		}
		for _, cache := range []bool{true, false} {
			res, err := ento.Run(kernel, arch.Name, cache)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%v\t%.2f\t%.4f\t%.1f\t%v\n",
				arch.Name, cache,
				res.Measured.LatencyS*1e6,
				res.Measured.EnergyJ*1e6,
				res.Measured.PeakPowerW*1e3,
				res.Valid)
		}
	}
	tw.Flush()

	fmt.Println("\nThe same kernel, characterized across the Table IV set:")
	rec, err := ento.Characterize(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  static mix (proxy): F=%d I=%d M=%d B=%d, flash ≈ %d B\n",
		rec.Static.F, rec.Static.I, rec.Static.M, rec.Static.B, rec.Flash)
	fmt.Printf("  dynamic mix:        F=%d I=%d M=%d B=%d\n",
		rec.Dynamic.F, rec.Dynamic.I, rec.Dynamic.M, rec.Dynamic.B)
}
