// Package ento is the public API of the EntoBench reproduction: an
// MCU-ready benchmark suite and evaluation framework for insect-scale
// robotics (Ozturk et al., IISWC 2025).
//
// The suite wraps 31 perception, state-estimation, and control kernels
// behind a uniform Problem interface and characterizes each on modeled
// Cortex-M0+/M4/M33/M7 cores, reporting latency, energy, and peak power
// with caches on and off. See DESIGN.md for how the paper's hardware
// measurement rig maps onto the simulation substrate.
//
// Quick start:
//
//	res, err := ento.Run("madgwick", "M4", true)
//	fmt.Printf("%.1f µs, %.2f µJ\n", res.Measured.LatencyS*1e6, res.Measured.EnergyJ*1e6)
package ento

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
)

// Re-exported framework types: the kernel descriptor, the per-run
// result, the full characterization record, and the core model.
type (
	// Spec describes one suite kernel (name, stage, dataset, factory).
	Spec = core.Spec
	// Record is the cross-architecture characterization of one kernel.
	Record = core.Record
	// Result is one harness run on one core.
	Result = harness.Result
	// Measurement is the trace-derived metric set.
	Measurement = harness.Measurement
	// Problem is the EntoProblem-style benchmark interface; implement
	// it to add kernels (see examples/custom-kernel).
	Problem = harness.Problem
	// Config drives harness runs (reps, warm-up, cache).
	Config = harness.Config
	// Arch is a modeled Cortex-M core.
	Arch = mcu.Arch
	// ModelParams is the serializable cost/power model a board file
	// supplies for an Arch (see DESIGN.md §11 for the schema).
	ModelParams = mcu.ModelParams
	// BoardFile is the on-disk board-definition format consumed by
	// LoadBoards and `entobench sweep -boards`.
	BoardFile = mcu.BoardFile
	// Estimate is the analytic cost-model output.
	Estimate = mcu.Estimate
	// SweepOptions configures a characterization sweep: worker count,
	// progress hook, fail-fast vs contained failures, the per-cell
	// watchdog timeout, a cancellation context (DESIGN.md §12), a
	// persistent cell cache, a measurement backend, and shard
	// partitioning.
	SweepOptions = core.SweepOptions
	// CellCache serves and persists per-cell sweep results; plug one
	// into SweepOptions.CellCache so overlapping sweeps compute only
	// their delta. OpenCellCache returns the on-disk implementation.
	CellCache = core.CellCache
	// CellError is the provenance-carrying failure of one sweep cell
	// (kernel, arch, cache, stage, status, underlying error).
	CellError = core.CellError
	// CellStatus classifies how a sweep cell ended (ok, failed,
	// panicked, timed_out, skipped).
	CellStatus = core.CellStatus
	// Backend is a measurement backend: ROI events and modeled cost in,
	// Measurement out (see docs/backends.md). The built-in "sim" backend
	// is the synthetic reference rig; TraceBackend replays externally
	// captured current/GPIO traces.
	Backend = harness.Backend
	// MeasureRequest is the resolved input of one Backend measurement.
	MeasureRequest = harness.MeasureRequest
	// TraceCapture is one externally captured cell: waveform, GPIO
	// edges, and the recorded rep count.
	TraceCapture = harness.TraceCapture
)

// Measurement provenance labels (JSONCell.Source, ArchRun.Source).
const (
	SourceModeled  = harness.SourceModeled
	SourceMeasured = harness.SourceMeasured
)

// Pipeline stages of the suite.
const (
	Perception = core.Perception
	Estimation = core.Estimation
	Control    = core.Control
)

// Suite returns every kernel in the curated benchmark suite, in the
// paper's Table III order.
func Suite() []Spec { return core.Suite() }

// Kernel finds a suite kernel by name.
func Kernel(name string) (Spec, bool) { return core.ByName(name) }

// Archs returns every registered core: the modeled references (M0+,
// M4, M33, M7) plus any boards registered or loaded in this process.
func Archs() []Arch { return mcu.All() }

// Boards is Archs under the framework's user-facing name: the full
// board registry in registration order.
func Boards() []Arch { return mcu.All() }

// ArchByName resolves a core by short name ("M4", "m33", a custom
// board's name, ...), case-insensitively.
func ArchByName(name string) (Arch, bool) { return mcu.ByName(name) }

// RegisterArch validates and registers a user-defined board. After
// registration the board resolves everywhere a reference core does:
// ArchByName, Run, ArchSet queries, and sweeps.
func RegisterArch(a Arch) error { return mcu.Register(a) }

// LoadBoards registers every board (and named set) declared in a board
// file — the library form of `entobench sweep -boards FILE`. The file
// is validated as a whole: one bad board registers nothing.
func LoadBoards(path string) ([]Arch, error) { return mcu.LoadFile(path) }

// ArchSet resolves an architecture query: a set name ("tableiv",
// "cs2", "all", or one declared in a board file) or a comma-separated
// list of board names. The empty query is the default Table IV set.
func ArchSet(query string) ([]Arch, error) { return mcu.ResolveArchs(query) }

// RegisterKernel adds an external kernel spec to the suite; it then
// appears in Suite, ByName lookups, and every sweep, after the curated
// Table III rows.
func RegisterKernel(s Spec) error { return core.Register(s) }

// RegisterBackend adds a measurement backend to the process registry —
// the third registry beside boards and kernels. A registered backend
// resolves by name in BackendByName, `entobench sweep -backend`, and
// the entobenchd wire protocol. "sim" is built in.
func RegisterBackend(be Backend) error { return harness.RegisterBackend(be) }

// BackendByName resolves a registered measurement backend
// case-insensitively.
func BackendByName(name string) (Backend, bool) { return harness.BackendByName(name) }

// Backends lists the registered backend names, sorted.
func Backends() []string { return harness.BackendNames() }

// LoadTraceBackend reads a trace-capture CSV file (docs/backends.md
// documents the schema) into a replay backend. Plug the result into
// SweepOptions.Backend — cells the file covers are measured from the
// captures, the rest fall back to the simulator — or register it for
// by-name selection.
func LoadTraceBackend(path string) (*harness.TraceBackend, error) {
	return harness.LoadTraceBackend(path)
}

// DefaultConfig returns the standard harness configuration.
func DefaultConfig() Config { return harness.DefaultConfig() }

// Run executes one suite kernel on one core through the full
// measurement pipeline (setup → ROI → trace synthesis → analysis →
// validation).
func Run(kernel, archName string, cacheOn bool) (Result, error) {
	spec, ok := core.ByName(kernel)
	if !ok {
		return Result{}, fmt.Errorf("ento: unknown kernel %q", kernel)
	}
	arch, ok := mcu.ByName(archName)
	if !ok {
		return Result{}, fmt.Errorf("ento: unknown architecture %q", archName)
	}
	if !spec.Fits(arch) {
		return Result{}, fmt.Errorf("ento: %s does not fit the %s's %d KB SRAM", kernel, arch.Name, arch.SRAMKB)
	}
	cfg := harness.DefaultConfig()
	cfg.CacheOn = cacheOn
	return harness.Run(spec.Factory(), arch, spec.Prec, cfg)
}

// SynthesizeCaptures prepares one suite kernel and synthesizes its
// trace captures — cache on and cache off — on one core: the cells
// `entobench trace` exports and the trace backend replays. The
// waveforms are exactly what a classic sweep would synthesize for the
// same cells, so replaying them reproduces the modeled measurements.
func SynthesizeCaptures(kernel, archName string) ([]TraceCapture, error) {
	spec, ok := core.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("ento: unknown kernel %q", kernel)
	}
	arch, ok := mcu.ByName(archName)
	if !ok {
		return nil, fmt.Errorf("ento: unknown architecture %q", archName)
	}
	if !spec.Fits(arch) {
		return nil, fmt.Errorf("ento: %s does not fit the %s's %d KB SRAM", kernel, arch.Name, arch.SRAMKB)
	}
	cfg := harness.DefaultConfig()
	pp, err := harness.Prepare(spec.Factory(), arch, spec.Prec, cfg)
	if err != nil {
		return nil, err
	}
	captures := make([]TraceCapture, 0, 2)
	for _, cacheOn := range []bool{true, false} {
		c := cfg
		c.CacheOn = cacheOn
		captures = append(captures, pp.SynthesizeCapture(arch, spec.Prec, c))
	}
	return captures, nil
}

// RunProblem executes a user-provided Problem (a custom kernel) exactly
// as the suite kernels run — the extensibility path of the framework.
func RunProblem(p Problem, archName string, prec mcu.Precision, cfg Config) (Result, error) {
	arch, ok := mcu.ByName(archName)
	if !ok {
		return Result{}, fmt.Errorf("ento: unknown architecture %q", archName)
	}
	return harness.Run(p, arch, prec, cfg)
}

// Characterize measures one kernel across the Table IV cores with
// caches on and off.
func Characterize(kernel string) (Record, error) {
	spec, ok := core.ByName(kernel)
	if !ok {
		return Record{}, fmt.Errorf("ento: unknown kernel %q", kernel)
	}
	return core.Characterize(spec, mcu.TableIVSet())
}

// Characterization is the full Table III + IV dataset for the suite.
type Characterization = report.Characterization

// Sweep returns the full >400-datapoint suite characterization, fanning
// the (kernel × arch × cache) cells across a worker pool of the given
// size (workers <= 0 means GOMAXPROCS). The result is served through
// the keyed sweep cache — repeated calls, the table writers below,
// concurrent identical callers (who coalesce onto one run), and every
// entobenchd client share one sweep — and is identical for every
// worker count.
func Sweep(workers int) (Characterization, error) {
	return report.RunCharacterizationWorkers(workers)
}

// InvalidateSweep empties the keyed sweep cache — every retained
// query, not just the default sweep — so the next Sweep, SweepOn, or
// table writer recomputes. Call it after mutating modeled cost
// parameters; plain kernel/board registration doesn't need it (a
// changed registry changes the cache key).
func InvalidateSweep() { report.InvalidateCharacterization() }

// SweepOn characterizes the full suite across an explicit board
// selection — e.g. the result of ArchSet or LoadBoards — through the
// same keyed cache (the selection is part of the key, so distinct
// selections never collide and identical ones share one run). Like
// Sweep, the result is identical for every worker count.
func SweepOn(archs []Arch, workers int) (Characterization, error) {
	return report.RunCharacterizationForArchs(archs, core.SweepOptions{Workers: workers})
}

// SweepOnOpts is SweepOn with full sweep options: progress reporting,
// FailFast, the per-cell watchdog, and a cancellation context. With the
// default options a registered kernel that panics or errors costs
// exactly its own cells — the sweep completes, healthy records are
// intact, and the error aggregates one CellError per failed cell
// (extract them with CellErrors).
func SweepOnOpts(archs []Arch, opts SweepOptions) (Characterization, error) {
	return report.RunCharacterizationForArchs(archs, opts)
}

// SweepOpts is Sweep (the cached default-board sweep) with full sweep
// options. A partial result — contained failures, cancellation — is
// returned to its caller but never retained in the cache, so the cache
// can only ever serve the full dataset; see Characterization.Partial.
func SweepOpts(opts SweepOptions) (Characterization, error) {
	return report.RunCharacterizationOpts(opts)
}

// OpenCellCache opens (creating if needed) the persistent per-cell
// result cache rooted at dir — the on-disk content-addressed store
// behind every -cachedir flag. Plug the result into
// SweepOptions.CellCache: cells computed by any prior sweep sharing
// the directory load instead of recomputing, byte-identically, and
// every newly computed healthy cell is persisted for the next run.
func OpenCellCache(dir string) (CellCache, error) {
	return report.OpenCellCache(dir)
}

// OpenCellCacheQuota is OpenCellCache with a byte-size bound on the
// backing directory (the implementation behind entobenchd
// -cachequota): past the quota the least-recently-used records are
// garbage-collected, and evicted cells simply recompute on their next
// miss. quota <= 0 means unbounded. The store also self-protects
// against persistent write failure — disk full flips it read-only
// (warm cells keep serving) until a probe write succeeds again; see
// docs/robustness.md.
func OpenCellCacheQuota(dir string, quota int64) (CellCache, error) {
	return report.OpenCellCacheQuota(dir, quota)
}

// CellErrors extracts the per-cell failures from a sweep's aggregate
// error, in deterministic serial sweep order. A nil error — or one that
// is pure cancellation — yields nil.
func CellErrors(err error) []*CellError { return core.CellErrors(err) }

// WriteJSON runs (or reuses) the full suite sweep and writes it as the
// versioned, schema-stable JSON export — the machine-readable
// counterpart of WriteTable3/WriteTable4, and the format cross-run perf
// tooling diffs (see docs/observability.md for the schema and its
// compatibility promise). The bytes are deterministic: identical for
// any worker count and byte-stable under an unmarshal/re-marshal round
// trip.
func WriteJSON(w io.Writer) error {
	c, err := report.RunCharacterization()
	if err != nil {
		return err
	}
	return c.WriteJSON(w)
}

// Precision selectors for RunProblem.
const (
	PrecF32   = mcu.PrecF32
	PrecF64   = mcu.PrecF64
	PrecFixed = mcu.PrecFixed
)

// The paper's tables and figures, regenerated from the live suite.

// WriteTable3 characterizes the whole suite and writes the static
// metrics (Table III).
func WriteTable3(w io.Writer) error {
	c, err := report.RunCharacterization()
	if err != nil {
		return err
	}
	c.WriteTable3(w)
	return nil
}

// WriteTable4 characterizes the whole suite and writes the dynamic
// metrics (Table IV).
func WriteTable4(w io.Writer) error {
	c, err := report.RunCharacterization()
	if err != nil {
		return err
	}
	c.WriteTable4(w)
	return nil
}

// WriteTable5 writes the architecture inventory (Table V).
func WriteTable5(w io.Writer) { report.WriteTable5(w) }

// WriteTable6 runs Case Study #1 and writes the perception
// energy/peak-power table (Table VI).
func WriteTable6(w io.Writer) error {
	r, err := report.RunCS1()
	if err != nil {
		return err
	}
	r.WriteTable6(w)
	return nil
}

// WriteFig3 runs Case Study #1 and writes the cycle-count series
// (Fig 3).
func WriteFig3(w io.Writer) error {
	r, err := report.RunCS1()
	if err != nil {
		return err
	}
	r.WriteFig3(w)
	return nil
}

// WriteTable7 runs Case Study #2 and writes the attitude-filter
// precision/energy table (Table VII).
func WriteTable7(w io.Writer) {
	report.RunCS2Table7().WriteTable7(w)
}

// WriteFig4 runs the fixed-point failure-rate sweep (Fig 4). step
// controls the fraction-bit stride (1 = the paper's full sweep).
func WriteFig4(w io.Writer, step int) {
	report.RunFig4(step).WriteFig4(w)
}

// WriteTable8 runs Case Study #3 and writes the FLOPs-vs-measured table
// (Table VIII).
func WriteTable8(w io.Writer) error {
	r, err := report.RunCS3()
	if err != nil {
		return err
	}
	r.WriteTable8(w)
	return nil
}

// WriteFig5 runs Case Study #4 and writes all relative-pose panels
// (Fig 5). problems sets the batch size per datapoint (the paper uses
// 1000).
func WriteFig5(w io.Writer, problems int) error {
	r, err := report.RunCS4(problems)
	if err != nil {
		return err
	}
	r.WriteFig5(w)
	return nil
}
