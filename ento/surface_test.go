package ento_test

import (
	"strings"
	"testing"

	"repro/ento"
)

// The user-extensibility surface: boards and kernels enter through the
// public API and behave like built-ins everywhere downstream.

func TestRegisterArchAndRun(t *testing.T) {
	base, ok := ento.ArchByName("M33")
	if !ok {
		t.Fatal("M33 missing")
	}
	custom := base
	custom.Name = "SurfBoard"
	custom.Board = "test fixture"
	custom.Source = ""
	if err := ento.RegisterArch(custom); err != nil {
		t.Fatal(err)
	}
	if err := ento.RegisterArch(custom); err == nil {
		t.Error("re-registering the same name should fail")
	}
	got, ok := ento.ArchByName("surfboard")
	if !ok {
		t.Fatal("registered board does not resolve case-insensitively")
	}
	if got.Source == "" {
		t.Error("registry should stamp a provenance source")
	}
	res, err := ento.Run("madgwick", "SurfBoard", true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || res.Measured.LatencyS <= 0 {
		t.Errorf("custom-board run: valid=%v latency=%g", res.Valid, res.Measured.LatencyS)
	}
	// Boards() is the same registry view as Archs().
	boards := ento.Boards()
	if boards[len(boards)-1].Name != "SurfBoard" && !containsArch(boards, "SurfBoard") {
		t.Error("Boards() missing the registered board")
	}
}

func containsArch(archs []ento.Arch, name string) bool {
	for _, a := range archs {
		if a.Name == name {
			return true
		}
	}
	return false
}

func TestLoadBoardsAndArchSet(t *testing.T) {
	boards, err := ento.LoadBoards("../examples/custom-board/m85.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(boards) != 1 || boards[0].Name != "M85" {
		t.Fatalf("LoadBoards = %v, want the M85", boards)
	}
	if !strings.Contains(boards[0].Source, "m85.json") {
		t.Errorf("loaded board source %q should be the file path", boards[0].Source)
	}
	// The file's declared set resolves through ArchSet, as do names.
	set, err := ento.ArchSet("nextgen")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Name != "M7" || set[1].Name != "M85" {
		t.Errorf("ArchSet(nextgen) = %v", set)
	}
	byNames, err := ento.ArchSet("m85,M4")
	if err != nil || len(byNames) != 2 {
		t.Fatalf("ArchSet(m85,M4) = %v, %v", byNames, err)
	}
	if _, err := ento.ArchSet("not-a-thing"); err == nil {
		t.Error("unknown query should fail")
	}
	// With 2048 KB SRAM the M85 runs the SRAM-gated sift; the smaller
	// references still reject it.
	if _, err := ento.Run("sift", "M85", true); err != nil {
		t.Errorf("sift should fit the M85: %v", err)
	}
	if _, err := ento.Run("sift", "M4", true); err == nil || !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("sift on the M4 should report the SRAM gate, got %v", err)
	}
}

func TestSweepOnCustomBoard(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	arch, ok := ento.ArchByName("M85")
	if !ok {
		var err error
		if _, err = ento.LoadBoards("../examples/custom-board/m85.json"); err != nil {
			t.Fatal(err)
		}
		arch, _ = ento.ArchByName("M85")
	}
	c, err := ento.SweepOn([]ento.Arch{arch}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) < 31 {
		t.Fatalf("custom-board sweep covered %d kernels, want the full suite", len(c.Records))
	}
	for _, r := range c.Records {
		if len(r.Cells) != 2 {
			t.Errorf("%s: %d cells, want 2 (the M85 fits every kernel)", r.Spec.Name, len(r.Cells))
		}
	}
	rep := c.JSONExport()
	if len(rep.Boards) != 1 || rep.Boards[0].Name != "M85" {
		t.Fatalf("provenance block = %+v, want the M85", rep.Boards)
	}
	if !strings.Contains(rep.Boards[0].Source, "m85.json") {
		t.Errorf("provenance source %q should name the board file", rep.Boards[0].Source)
	}
}

func TestRegisterKernel(t *testing.T) {
	base, ok := ento.Kernel("fly-lqr")
	if !ok {
		t.Fatal("fly-lqr missing")
	}
	s := base
	s.Name = "surf-ext-kernel"
	s.Category = "External"
	if err := ento.RegisterKernel(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := ento.Kernel("surf-ext-kernel"); !ok {
		t.Fatal("registered kernel does not resolve")
	}
	suite := ento.Suite()
	if suite[len(suite)-1].Name != "surf-ext-kernel" {
		t.Errorf("registered kernel should append after the curated suite, got %s last", suite[len(suite)-1].Name)
	}
	res, err := ento.Run("surf-ext-kernel", "M4", true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("external kernel run invalid: %v", res.ValidErr)
	}
	s.Factory = nil
	s.Name = "surf-bad-kernel"
	if err := ento.RegisterKernel(s); err == nil {
		t.Error("kernel with no factory should be rejected")
	}
}
