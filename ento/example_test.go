package ento_test

import (
	"fmt"

	"repro/ento"
)

// The minimal use: run one suite kernel on one core and read the
// measured metrics.
func ExampleRun() {
	res, err := ento.Run("fly-lqr", "M4", true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("kernel=%s core=%s valid=%v\n", res.Kernel, res.Arch.Name, res.Valid)
	fmt.Printf("ops: F=%d M=%d\n", res.Counts.F, res.Counts.M)
	// Output:
	// kernel=fly-lqr core=M4 valid=true
	// ops: F=74 M=102
}

// Enumerating the suite mirrors `entobench list`. The 31 curated Table
// III kernels always lead Suite(); kernels added via RegisterKernel
// append after them.
func ExampleSuite() {
	perStage := map[string]int{}
	for _, s := range ento.Suite()[:31] {
		perStage[string(s.Stage)]++
	}
	fmt.Printf("P=%d S=%d C=%d\n", perStage["P"], perStage["S"], perStage["C"])
	// Output:
	// P=6 S=20 C=5
}

// Characterize produces the Table III/IV record for one kernel.
func ExampleCharacterize() {
	rec, err := ento.Characterize("madgwick")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m33, _ := rec.Cell("M33", true)
	m4, _ := rec.Cell("M4", true)
	fmt.Printf("cells=%d m33-beats-m4-energy=%v\n",
		len(rec.Cells), m33.Model.EnergyJ < m4.Model.EnergyJ)
	// Output:
	// cells=6 m33-beats-m4-energy=true
}
