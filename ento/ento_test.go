package ento_test

import (
	"bytes"
	"errors"
	"repro/internal/report"
	"strings"
	"testing"

	"repro/ento"
	"repro/internal/profile"
	"repro/internal/scalar"
)

func TestSuiteAndKernelLookup(t *testing.T) {
	suite := ento.Suite()
	if len(suite) != 31 {
		t.Fatalf("suite has %d kernels, want 31", len(suite))
	}
	if _, ok := ento.Kernel("p3p"); !ok {
		t.Error("Kernel(p3p) not found")
	}
	if _, ok := ento.Kernel("bogus"); ok {
		t.Error("Kernel(bogus) should not resolve")
	}
}

func TestArchs(t *testing.T) {
	// Registry tests in this binary may add custom boards; the four
	// reference cores always lead in registration order.
	archs := ento.Archs()
	if len(archs) < 4 {
		t.Fatalf("Archs = %d, want >= 4", len(archs))
	}
	for i, want := range []string{"M0+", "M4", "M33", "M7"} {
		if archs[i].Name != want {
			t.Errorf("Archs[%d] = %s, want %s", i, archs[i].Name, want)
		}
	}
	if _, ok := ento.ArchByName("m7"); !ok {
		t.Error("ArchByName(m7) failed")
	}
}

func TestRunHappyPath(t *testing.T) {
	res, err := ento.Run("fly-lqr", "M4", true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("validation: %v", res.ValidErr)
	}
	if res.Measured.LatencyS <= 0 || res.Measured.EnergyJ <= 0 {
		t.Error("non-positive measurements")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := ento.Run("bogus", "M4", true); err == nil {
		t.Error("unknown kernel should error")
	}
	if _, err := ento.Run("fly-lqr", "M99", true); err == nil {
		t.Error("unknown arch should error")
	}
	if _, err := ento.Run("sift", "M4", true); err == nil {
		t.Error("sift on M4 should error (SRAM)")
	}
}

func TestCharacterize(t *testing.T) {
	rec, err := ento.Characterize("madgwick")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(rec.Cells))
	}
}

// sq is a minimal custom Problem: squares a vector in place.
type sq struct{ xs []scalar.F32 }

func (s *sq) Name() string { return "sq" }
func (s *sq) Setup() error {
	s.xs = make([]scalar.F32, 64)
	for i := range s.xs {
		s.xs[i] = scalar.F32(i)
	}
	return nil
}
func (s *sq) Solve() {
	for i := range s.xs {
		_ = s.xs[i].Mul(s.xs[i])
	}
	profile.AddM(uint64(len(s.xs)))
}
func (s *sq) Validate() error {
	if len(s.xs) != 64 {
		return errors.New("bad state")
	}
	return nil
}

func TestRunProblemCustomKernel(t *testing.T) {
	res, err := ento.RunProblem(&sq{}, "M33", ento.PrecF32, ento.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.F != 64 {
		t.Errorf("F = %d, want 64", res.Counts.F)
	}
	if !res.Valid {
		t.Error("custom kernel failed validation")
	}
}

func TestWriteTable5(t *testing.T) {
	var buf bytes.Buffer
	ento.WriteTable5(&buf)
	if !strings.Contains(buf.String(), "NUCLEO") {
		t.Error("Table V missing board names")
	}
}

func TestWriteTable7(t *testing.T) {
	var buf bytes.Buffer
	ento.WriteTable7(&buf)
	if !strings.Contains(buf.String(), "q7.24") {
		t.Error("Table VII missing the fixed-point rows")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ento.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := report.ReadJSONReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ento.WriteJSON output does not parse back: %v", err)
	}
	if rep.Schema != report.JSONSchema || rep.Version != report.JSONVersion {
		t.Fatalf("envelope = %s v%d", rep.Schema, rep.Version)
	}
	if len(rep.Kernels) != len(ento.Suite()) {
		t.Fatalf("exported %d kernels, suite has %d", len(rep.Kernels), len(ento.Suite()))
	}
	if rep.Datapoints == 0 {
		t.Fatal("datapoint count missing")
	}
}
