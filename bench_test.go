// Package repro's benchmark harness: one testing.B benchmark per table
// and figure of the paper. Each benchmark drives the same kernels and
// problem instances as the corresponding generator in internal/report
// and attaches the modeled MCU metrics as custom benchmark units
// (µs/op-on-M4, µJ/op-on-M4, mW-peak-M4), so `go test -bench=.`
// regenerates the paper's quantities kernel by kernel.
//
//	BenchmarkTable3   — static-mix proxy runs (reduced canonical inputs)
//	BenchmarkTable4   — every suite kernel, cache on and off, 3 cores
//	BenchmarkTable6   — perception kernels across scene datasets (CS#1)
//	BenchmarkFig3     — optical-flow kernel spectrum incl. bbof-vec
//	BenchmarkTable7   — attitude filters f32 vs q7.24 (CS#2)
//	BenchmarkFig4     — fixed-point filter updates at swept Q-formats
//	BenchmarkTable8   — FLOP-claimed kernels, measured per update (CS#3)
//	BenchmarkFig5     — relative-pose solvers and LO-RANSAC (CS#4)
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/attitude"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixed"
	"repro/internal/harness"
	"repro/internal/imu"
	"repro/internal/mcu"
	"repro/internal/pose"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/scalar"
)

// benchProblem runs p.Solve under the Go benchmark loop and reports the
// modeled metrics for arch as custom units.
func benchProblem(b *testing.B, p harness.Problem, arch mcu.Arch, prec mcu.Precision, cacheOn bool) {
	b.Helper()
	b.ReportAllocs()
	if err := p.Setup(); err != nil {
		b.Fatal(err)
	}
	p.Solve() // warm-up
	counts := profile.Collect(p.Solve)
	est := arch.Estimate(counts, prec, cacheOn)
	b.ReportMetric(est.LatencyUs(), "µs/"+arch.Name)
	b.ReportMetric(est.EnergyUJ(), "µJ/"+arch.Name)
	b.ReportMetric(est.PeakPowerMW(), "mWpeak/"+arch.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Solve()
	}
}

// BenchmarkTable3 exercises the reduced canonical problems whose
// dynamic mixes stand in for the static instruction mix.
func BenchmarkTable3(b *testing.B) {
	for _, spec := range core.Suite() {
		sf := spec.StaticFactory
		if sf == nil {
			sf = spec.Factory
		}
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			arch := mcu.M4
			if spec.M7Only {
				arch = mcu.M7
			}
			benchProblem(b, sf(), arch, spec.Prec, true)
		})
	}
}

// BenchmarkTable4 exercises every kernel at its characterization
// configuration, cache on and off, on the three Table IV cores.
func BenchmarkTable4(b *testing.B) {
	for _, spec := range core.Suite() {
		spec := spec
		for _, arch := range mcu.TableIVSet() {
			if spec.M7Only && arch.Name != "M7" {
				continue
			}
			arch := arch
			for _, cache := range []bool{true, false} {
				cache := cache
				tag := "C"
				if !cache {
					tag = "NC"
				}
				b.Run(fmt.Sprintf("%s/%s/%s", spec.Name, arch.Name, tag), func(b *testing.B) {
					benchProblem(b, spec.Factory(), arch, spec.Prec, cache)
				})
			}
		}
	}
}

// BenchmarkTable6 exercises the perception kernels across the three
// scene families plus the vectorized block-matching variant.
func BenchmarkTable6(b *testing.B) {
	kinds := []dataset.ImageKind{dataset.Midd, dataset.Lights, dataset.April}
	for _, kernel := range []string{"fastbrief", "orb"} {
		for _, kind := range kinds {
			kernel, kind := kernel, kind
			b.Run(fmt.Sprintf("%s/%s", kernel, kind), func(b *testing.B) {
				benchProblem(b, core.NewFeatureProblem(kernel, kind), mcu.M4, mcu.PrecF32, true)
			})
		}
	}
	for _, flow := range []struct {
		name string
		vec  bool
	}{{"lkof", false}, {"iiof", false}, {"bbof", false}, {"bbof-vec", true}} {
		flow := flow
		base := flow.name
		if flow.vec {
			base = "bbof"
		}
		b.Run(flow.name+"/midd", func(b *testing.B) {
			benchProblem(b, core.NewFlowProblem(base, dataset.Midd, flow.vec), mcu.M4, mcu.PrecF32, true)
		})
	}
}

// BenchmarkFig3 is the optical-flow cycle-count spectrum of Fig 3b.
func BenchmarkFig3(b *testing.B) {
	for _, flow := range []struct {
		name string
		vec  bool
	}{{"lkof", false}, {"iiof", false}, {"bbof", false}, {"bbof-vec", true}} {
		flow := flow
		base := flow.name
		if flow.vec {
			base = "bbof"
		}
		b.Run(flow.name, func(b *testing.B) {
			b.ReportAllocs()
			p := core.NewFlowProblem(base, dataset.Midd, flow.vec)
			if err := p.Setup(); err != nil {
				b.Fatal(err)
			}
			counts := profile.Collect(p.Solve)
			for _, arch := range mcu.TableIVSet() {
				b.ReportMetric(arch.Cycles(counts, mcu.PrecF32, true)/1e3, "kcyc/"+arch.Name)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Solve()
			}
		})
	}
}

// attitude bench stream, shared by Table VII and Fig 4 benches.
var benchRecs = imu.Simulate(imu.HoverTrajectory(0.12, 0.1, 2), 1, 400, imu.DefaultNoise(), 99)

func benchFilterUpdates[T scalar.Real[T]](b *testing.B, like T, prec mcu.Precision, mk func() attitude.Filter[T]) {
	b.Helper()
	b.ReportAllocs()
	f := mk()
	samples := make([]imu.Sample[T], len(benchRecs))
	for i, r := range benchRecs {
		for k := 0; k < 3; k++ {
			r.Accel[k] /= imu.Gravity
		}
		samples[i] = imu.SampleAs(like, r)
	}
	counts := profile.Collect(func() { f.Update(samples[0]) })
	for _, arch := range mcu.CaseStudy2Set() {
		est := arch.Estimate(counts, prec, true)
		b.ReportMetric(est.LatencyUs(), "µs/"+arch.Name)
		b.ReportMetric(est.EnergyNJ(), "nJ/"+arch.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(samples[i%len(samples)])
	}
}

// BenchmarkTable7 exercises the attitude filters in f32 and q7.24.
func BenchmarkTable7(b *testing.B) {
	b.Run("mahony-I/f32", func(b *testing.B) {
		benchFilterUpdates(b, scalar.F32(0), mcu.PrecF32, func() attitude.Filter[scalar.F32] {
			return attitude.NewMahony(scalar.F32(0), attitude.IMUOnly, 2.0, 0.02)
		})
	})
	b.Run("mahony-I/q7.24", func(b *testing.B) {
		like := fixed.New(0, 24)
		benchFilterUpdates(b, like, mcu.PrecFixed, func() attitude.Filter[fixed.Num] {
			return attitude.NewMahony(like, attitude.IMUOnly, 2.0, 0.02)
		})
	})
	b.Run("madgwick-I/f32", func(b *testing.B) {
		benchFilterUpdates(b, scalar.F32(0), mcu.PrecF32, func() attitude.Filter[scalar.F32] {
			return attitude.NewMadgwick(scalar.F32(0), attitude.IMUOnly, 0.12)
		})
	})
	b.Run("madgwick-I/q7.24", func(b *testing.B) {
		like := fixed.New(0, 24)
		benchFilterUpdates(b, like, mcu.PrecFixed, func() attitude.Filter[fixed.Num] {
			return attitude.NewMadgwick(like, attitude.IMUOnly, 0.12)
		})
	})
	b.Run("fourati-M/f32", func(b *testing.B) {
		benchFilterUpdates(b, scalar.F32(0), mcu.PrecF32, func() attitude.Filter[scalar.F32] {
			return attitude.NewFourati(scalar.F32(0), 0.8, 1e-3)
		})
	})
	b.Run("fourati-M/q7.24", func(b *testing.B) {
		like := fixed.New(0, 24)
		benchFilterUpdates(b, like, mcu.PrecFixed, func() attitude.Filter[fixed.Num] {
			return attitude.NewFourati(like, 0.8, 1e-3)
		})
	})
}

// BenchmarkFig4 exercises the fixed-point filter at three points of the
// Q-format sweep: a catastrophic, a viable, and a marginal format.
func BenchmarkFig4(b *testing.B) {
	for _, frac := range []uint8{4, 16, 28} {
		frac := frac
		b.Run(fmt.Sprintf("madgwick-q%d.%d", 31-int(frac), frac), func(b *testing.B) {
			like := fixed.New(0, frac)
			benchFilterUpdates(b, like, mcu.PrecFixed, func() attitude.Filter[fixed.Num] {
				return attitude.NewMadgwick(like, attitude.IMUOnly, 0.12)
			})
		})
	}
}

// BenchmarkTable8 exercises the FLOP-claimed kernels per fused update
// and reports the modeled-cycles-to-claimed-FLOPs gap.
func BenchmarkTable8(b *testing.B) {
	for _, name := range []string{"fly-ekf (seq)", "fly-ekf (trunc)", "bee-ceekf", "fly-lqr", "fly-tiny-mpc"} {
		spec, ok := core.ByName(name)
		if !ok {
			b.Fatalf("missing %s", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := spec.Factory()
			if err := p.Setup(); err != nil {
				b.Fatal(err)
			}
			p.Solve()
			counts := profile.Collect(p.Solve)
			cycles := mcu.M4.Cycles(counts, spec.Prec, true)
			b.ReportMetric(float64(spec.FLOPs), "claimedFLOPs")
			b.ReportMetric(cycles, "cycM4")
			b.ReportMetric(cycles/float64(spec.FLOPs), "cyc/FLOP")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Solve()
			}
		})
	}
}

// BenchmarkFig5 exercises the relative-pose solver spectrum (panels b/c)
// and the LO-RANSAC composition (panels d/e/f).
func BenchmarkFig5(b *testing.B) {
	type F32 = scalar.F32
	solvers := []struct {
		name    string
		sample  int
		upright bool
		planar  bool
		run     func(c []pose.RelCorrespondence[F32]) error
	}{
		{"up2pt", 2, true, true, func(c []pose.RelCorrespondence[F32]) error {
			_, err := pose.UP2PT(c[:2])
			return err
		}},
		{"up3pt", 3, true, true, func(c []pose.RelCorrespondence[F32]) error {
			_, err := pose.UP3PT(c[:3])
			return err
		}},
		{"u3pt", 3, true, false, func(c []pose.RelCorrespondence[F32]) error {
			_, err := pose.U3PT(c[:3])
			return err
		}},
		{"5pt", 5, false, false, func(c []pose.RelCorrespondence[F32]) error {
			_, err := pose.FivePoint(c[:5])
			return err
		}},
		{"8pt", 8, false, false, func(c []pose.RelCorrespondence[F32]) error {
			_, err := pose.EightPoint(c[:8])
			return err
		}},
	}
	for _, s := range solvers {
		s := s
		b.Run("solver/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			p := dataset.GenRelProblem(dataset.PoseGenConfig{
				N: 12, PixelNoise: 0.1, Upright: s.upright, Planar: s.planar, Seed: 55,
			})
			corrs := dataset.ConvertRel(F32(0), p)
			counts := profile.Collect(func() { _ = s.run(corrs) })
			for _, arch := range mcu.TableIVSet() {
				b.ReportMetric(arch.Cycles(counts, mcu.PrecF32, true)/1e3, "kcyc/"+arch.Name)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.run(corrs)
			}
		})
	}
	// LO-RANSAC composition (the 8pt inner solver is excluded, as in
	// the paper).
	for _, s := range []struct {
		name   string
		sample int
		planar bool
	}{{"up2pt", 2, true}, {"u3pt", 3, false}, {"5pt", 5, false}} {
		s := s
		b.Run("lo-ransac/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			p := dataset.GenRelProblem(dataset.PoseGenConfig{
				N: 100, PixelNoise: 0.5, OutlierRatio: 0.25,
				Upright: true, Planar: s.planar, Seed: 66,
			})
			corrs := dataset.ConvertRel(F32(0), p)
			inner := func(sample []pose.RelCorrespondence[F32]) ([]pose.Pose[F32], error) {
				switch s.name {
				case "up2pt":
					return pose.UP2PT(sample)
				case "u3pt":
					return pose.U3PT(sample)
				default:
					return pose.FivePoint(sample)
				}
			}
			cfg := pose.DefaultRansacConfig()
			run := func() {
				_, _, _, _ = pose.RelLoRansac(corrs, inner, s.sample, cfg)
			}
			counts := profile.Collect(run)
			b.ReportMetric(mcu.M4.Cycles(counts, mcu.PrecF32, true)/1e6, "McycM4")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkProfileHookOverhead prices the profiling hook on its three
// paths: no session anywhere (the gate check every scalar op pays in
// unprofiled execution), a session on another goroutine (the parallel
// sweep's warm-up/validation reps), and a session on this goroutine
// (the profiled ROI itself).
func BenchmarkProfileHookOverhead(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			profile.AddF(1)
		}
	})
	b.Run("foreign-session", func(b *testing.B) {
		b.ReportAllocs()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			profile.Collect(func() { <-stop })
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			profile.AddF(1)
		}
		b.StopTimer()
		close(stop)
		<-done
	})
	b.Run("own-session", func(b *testing.B) {
		b.ReportAllocs()
		rec := profile.Begin()
		defer profile.End()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			profile.AddF(1)
		}
		b.StopTimer()
		if rec.F == 0 {
			b.Fatal("hooks did not record")
		}
	})
}

// BenchmarkRunCharacterization times the full >400-datapoint suite
// sweep — the repo's hottest path — serially and across the worker
// pool, so the parallel speedup stays visible in the bench trajectory.
func BenchmarkRunCharacterization(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel-gomaxprocs", 0},
		{"parallel-j8", 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := report.RunCharacterizationUncached(cfg.workers)
				if err != nil {
					b.Fatal(err)
				}
				if c.Datapoints() < 400 {
					b.Fatalf("sweep produced %d datapoints", c.Datapoints())
				}
			}
		})
	}
}

// BenchmarkSweepWarm times the full suite sweep served entirely from a
// warm persistent cell cache (-cachedir): every job loads from disk,
// no kernel executes. The cold/warm ratio against
// BenchmarkRunCharacterization/serial is the headline speedup of the
// content-addressed store.
func BenchmarkSweepWarm(b *testing.B) {
	b.ReportAllocs()
	cache, err := report.OpenCellCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.SweepOptions{Workers: 1, CellCache: cache}
	// One cold sweep fills the store; the measured loop is all hits.
	if _, err := report.RunCharacterizationUncachedOpts(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := report.RunCharacterizationUncachedOpts(opts)
		if err != nil {
			b.Fatal(err)
		}
		if c.Datapoints() < 400 {
			b.Fatalf("sweep produced %d datapoints", c.Datapoints())
		}
	}
}

// BenchmarkSweepIncremental times the incremental case the cache
// exists for: the Table IV grid is warm, and each iteration sweeps it
// plus one never-seen board, so only that board's cells compute — and
// even those need no kernel execution, because the shared prepare
// rehydrates from the cached reference cells.
func BenchmarkSweepIncremental(b *testing.B) {
	b.ReportAllocs()
	cache, err := report.OpenCellCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	base := mcu.TableIVSet()
	if _, err := core.CharacterizeSuiteOpts(core.Suite(), base, core.SweepOptions{Workers: 1, CellCache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		novel := mcu.M4
		novel.Name = fmt.Sprintf("M4-inc-%d", i) // fresh content key every iteration
		extended := append(append([]mcu.Arch{}, base...), novel)
		recs, err := core.CharacterizeSuiteOpts(core.Suite(), extended, core.SweepOptions{Workers: 1, CellCache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkTraceIngest times the imported-trace path of the backend
// seam (docs/backends.md): parsing a multi-cell capture CSV and
// replaying every capture through the trace analyzer — the per-file
// cost `sweep -backend trace -tracefile FILE` pays over the cells the
// file covers, on top of the sweep itself.
func BenchmarkTraceIngest(b *testing.B) {
	b.ReportAllocs()
	arch, ok := mcu.ByName("M4")
	if !ok {
		b.Fatal("no M4 board")
	}
	cfg := harness.DefaultConfig()
	var captures []harness.TraceCapture
	for _, name := range []string{"madgwick", "mahony", "fourati"} {
		spec, ok := core.ByName(name)
		if !ok {
			b.Fatalf("no kernel %s", name)
		}
		pp, err := harness.Prepare(spec.Factory(), arch, spec.Prec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, cacheOn := range []bool{true, false} {
			c := cfg
			c.CacheOn = cacheOn
			captures = append(captures, pp.SynthesizeCapture(arch, spec.Prec, c))
		}
	}
	var buf bytes.Buffer
	if err := harness.WriteTraceCSV(&buf, captures); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caps, err := harness.ReadTraceCSV(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		tb, err := harness.NewTraceBackend(caps)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range caps {
			m, err := tb.Measure(harness.MeasureRequest{Kernel: c.Kernel, Arch: arch, CacheOn: c.CacheOn})
			if err != nil {
				b.Fatal(err)
			}
			if m.LatencyS <= 0 {
				b.Fatal("replayed capture produced no latency")
			}
		}
	}
}
