package core_test

// Suite-level differential test for mat's bulk-accounting fast paths:
// every kernel in the suite must record a byte-identical instruction
// mix and validate identically whether the specialized loops or the
// hooked generic reference loops are active. Together with
// internal/mat's per-operation differential tests this pins the
// exactness invariant end-to-end: a fast path that drifted by a single
// op would shift some kernel's F/I/M/B mix and fail here.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixed"
	"repro/internal/mat"
	"repro/internal/profile"
)

func solveOnce(t *testing.T, spec core.Spec) (profile.Counts, fixed.Status, error) {
	t.Helper()
	p := spec.Factory()
	if err := p.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	fixed.ResetStatus()
	cnt := profile.Collect(p.Solve)
	return cnt, fixed.ResetStatus(), p.Validate()
}

func TestSuiteCountsMatchReferenceKernels(t *testing.T) {
	for _, spec := range core.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			fastCnt, fastStatus, fastErr := solveOnce(t, spec)

			prev := mat.SetReferenceKernels(true)
			refCnt, refStatus, refErr := solveOnce(t, spec)
			mat.SetReferenceKernels(prev)

			if fastCnt != refCnt {
				t.Errorf("counts diverge: fast=%+v reference=%+v", fastCnt, refCnt)
			}
			if fastStatus != refStatus {
				t.Errorf("fixed-point status diverges: fast=%+v reference=%+v", fastStatus, refStatus)
			}
			if (fastErr == nil) != (refErr == nil) {
				t.Errorf("validation diverges: fast=%v reference=%v", fastErr, refErr)
			}
		})
	}
}
