package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

func TestSuiteHasAll31Kernels(t *testing.T) {
	suite := core.Suite()
	// 30 curated kernels in Table III; bbof-vec (the 31st of the
	// abstract) is exposed as a Table VI variant through
	// NewFlowProblem, not a separate row.
	if len(suite) != 24 {
		t.Logf("suite size %d", len(suite))
	}
	want := []string{ // the curated rows always lead Suite() in this order
		"fastbrief", "orb", "sift", "lkof", "iiof", "bbof",
		"mahony", "madgwick", "fourati",
		"fly-ekf (sync)", "fly-ekf (seq)", "fly-ekf (trunc)", "bee-ceekf",
		"p3p", "up2p", "dlt", "absgoldstd",
		"up2pt", "up3pt", "u3pt", "5pt", "8pt", "relgoldstd", "homography",
		"abs-lo-ransac", "rel-lo-ransac",
		"fly-tiny-mpc", "fly-lqr", "bee-mpc", "bee-geom", "bee-smac",
	}
	if len(suite) < len(want) {
		t.Fatalf("suite has %d kernels, want >= %d", len(suite), len(want))
	}
	for i, w := range want {
		if suite[i].Name != w {
			t.Errorf("suite[%d] = %q, want %q (Table III order)", i, suite[i].Name, w)
		}
	}
	// Anything beyond the curated rows must be a registered external
	// (other tests in this binary may add them).
	for _, s := range suite[len(want):] {
		t.Logf("registered external kernel: %s", s.Name)
	}
}

func TestByName(t *testing.T) {
	if _, ok := core.ByName("p3p"); !ok {
		t.Error("ByName(p3p) failed")
	}
	if _, ok := core.ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

// Every kernel must run end-to-end through the harness and validate.
func TestEveryKernelRunsAndValidates(t *testing.T) {
	for _, spec := range core.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			arch := mcu.M4
			if spec.M7Only {
				arch = mcu.M7
			}
			cfg := harness.DefaultConfig()
			res, err := harness.Run(spec.Factory(), arch, spec.Prec, cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Valid {
				t.Fatalf("validation: %v", res.ValidErr)
			}
			if res.Counts.Total() == 0 {
				t.Fatal("kernel recorded no operations")
			}
			if res.Model.LatencyS <= 0 {
				t.Fatal("non-positive modeled latency")
			}
		})
	}
}

// Characterize must populate every (arch, cache) cell and the static
// proxy, for a representative cheap kernel.
func TestCharacterize(t *testing.T) {
	spec, _ := core.ByName("mahony")
	rec, err := core.Characterize(spec, mcu.TableIVSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(rec.Cells))
	}
	if rec.Static.Total() == 0 {
		t.Error("no static mix")
	}
	if rec.Flash <= 1024 {
		t.Error("implausible flash size")
	}
	if _, ok := rec.Cell("M33", true); !ok {
		t.Error("missing M33 cache-on cell")
	}
	// Cross-arch ordering: M33 energy lowest, M7 fastest (cache on).
	m4, _ := rec.Cell("M4", true)
	m33, _ := rec.Cell("M33", true)
	m7, _ := rec.Cell("M7", true)
	if !(m33.Model.EnergyJ < m4.Model.EnergyJ && m33.Model.EnergyJ < m7.Model.EnergyJ) {
		t.Error("M33 should be the energy champion")
	}
	if !(m7.Model.LatencyS < m4.Model.LatencyS) {
		t.Error("M7 should be faster than M4")
	}
}

func TestM7OnlyKernelSkipsSmallCores(t *testing.T) {
	spec, _ := core.ByName("sift")
	if !spec.M7Only {
		t.Fatal("sift should be M7-only")
	}
}

func TestFLOPClaimsPresent(t *testing.T) {
	// Table VIII rows carry claimed FLOP counts.
	for _, name := range []string{"fly-ekf (sync)", "fly-ekf (trunc)", "bee-ceekf", "fly-lqr", "fly-tiny-mpc"} {
		spec, ok := core.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if spec.FLOPs == 0 {
			t.Errorf("%s has no claimed FLOPs", name)
		}
	}
}

// The worker pool must be invisible in the data: suite records are
// deeply identical for any worker count, and cells stay in serial
// (arch-major, cache on/off) order.
func TestCharacterizeSuiteDeterministicAcrossWorkers(t *testing.T) {
	var specs []core.Spec
	for _, name := range []string{"mahony", "madgwick", "fourati", "p3p"} {
		spec, ok := core.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		specs = append(specs, spec)
	}
	base, err := core.CharacterizeSuite(specs, mcu.TableIVSet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := core.CharacterizeSuite(specs, mcu.TableIVSet(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].Spec.Name != base[i].Spec.Name {
				t.Fatalf("workers=%d: record %d is %s, want %s", workers, i, got[i].Spec.Name, base[i].Spec.Name)
			}
			if got[i].Static != base[i].Static || got[i].Dynamic != base[i].Dynamic ||
				got[i].Flash != base[i].Flash || got[i].Valid != base[i].Valid {
				t.Errorf("workers=%d: %s record-level fields differ", workers, base[i].Spec.Name)
			}
			if len(got[i].Cells) != len(base[i].Cells) {
				t.Fatalf("workers=%d: %s cell count %d vs %d", workers, base[i].Spec.Name, len(got[i].Cells), len(base[i].Cells))
			}
			for j := range base[i].Cells {
				if got[i].Cells[j] != base[i].Cells[j] {
					t.Errorf("workers=%d: %s cell %d differs", workers, base[i].Spec.Name, j)
				}
			}
		}
	}
}

// The reference cell — first arch, cache on — supplies Dynamic/Valid,
// not whichever cell ran last.
func TestCharacterizeReferenceCell(t *testing.T) {
	spec, _ := core.ByName("mahony")
	rec, err := core.Characterize(spec, mcu.TableIVSet())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Valid {
		t.Fatalf("reference cell invalid: %v", rec.ValidE)
	}
	if rec.Dynamic.Total() == 0 {
		t.Fatal("reference cell recorded no dynamic mix")
	}
	if rec.Cells[0].Arch.Name != "M4" || !rec.Cells[0].CacheOn {
		t.Fatalf("reference cell is (%s, cache=%v), want (M4, cache on)",
			rec.Cells[0].Arch.Name, rec.Cells[0].CacheOn)
	}
}
