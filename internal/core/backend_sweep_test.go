package core_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// partialLab is a fake measured backend covering exactly one kernel on
// one board — the smallest backend that forces a sweep to mix measured
// and modeled cells. Measurements delegate to the simulator so results
// stay deterministic.
type partialLab struct {
	kernel string
	arch   string
}

func (p partialLab) Name() string        { return "labx" }
func (p partialLab) Source() string      { return harness.SourceMeasured }
func (p partialLab) Fingerprint() string { return "fp1" }
func (p partialLab) Covers(kernel, arch string, cacheOn bool) bool {
	return strings.EqualFold(kernel, p.kernel) && strings.EqualFold(arch, p.arch)
}
func (p partialLab) Measure(req harness.MeasureRequest) (harness.Measurement, error) {
	return harness.SimBackend{}.Measure(req)
}

// saltSpy is a CellCache that never hits but records every backend salt
// offered to it, proving measured and modeled cells key differently.
type saltSpy struct {
	mu    sync.Mutex
	salts map[string]string // "kernel/arch/cache" -> backend salt
}

func (s *saltSpy) LoadStatic(core.Spec) (core.StaticCellResult, bool) {
	return core.StaticCellResult{}, false
}
func (s *saltSpy) StoreStatic(core.Spec, core.StaticCellResult) {}
func (s *saltSpy) LoadCell(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string) (core.MeasuredCellResult, bool) {
	s.record(spec, arch, cacheOn, backend)
	return core.MeasuredCellResult{}, false
}
func (s *saltSpy) StoreCell(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string, _ core.MeasuredCellResult) {
	s.record(spec, arch, cacheOn, backend)
}
func (s *saltSpy) record(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := spec.Name + "/" + arch.Name + "/"
	if cacheOn {
		key += "on"
	} else {
		key += "off"
	}
	if prev, ok := s.salts[key]; ok && prev != backend {
		panic("one cell offered two different salts: " + prev + " vs " + backend)
	}
	s.salts[key] = backend
}

func backendTestSpecs(t *testing.T) []core.Spec {
	t.Helper()
	var specs []core.Spec
	for _, name := range []string{"madgwick", "mahony"} {
		spec, ok := core.ByName(name)
		if !ok {
			t.Fatalf("no %s kernel", name)
		}
		specs = append(specs, spec)
	}
	return specs
}

// TestSweepMixedBackendProvenance: a partial backend covering one
// (kernel, board) drives a sweep where exactly its cells are measured,
// every other cell falls back to the simulator as modeled, and the
// measurement values match the classic sweep bit for bit.
func TestSweepMixedBackendProvenance(t *testing.T) {
	specs := backendTestSpecs(t)
	archs := []mcu.Arch{mcu.M4, mcu.M33}
	lab := partialLab{kernel: "madgwick", arch: "M4"}

	classic, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spy := &saltSpy{salts: make(map[string]string)}
	mixed, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{
		Workers: 1, Backend: lab, CellCache: spy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != len(classic) {
		t.Fatalf("%d records, want %d", len(mixed), len(classic))
	}
	var measured, modeled int
	for ri, rec := range mixed {
		for ci, cell := range rec.Cells {
			covered := rec.Spec.Name == "madgwick" && cell.Arch.Name == "M4"
			wantBackend, wantSource, wantSalt := "sim", harness.SourceModeled, ""
			if covered {
				wantBackend, wantSource, wantSalt = "labx", harness.SourceMeasured, "labx+fp1"
			}
			if cell.Backend != wantBackend || cell.Source != wantSource {
				t.Errorf("%s/%s cache=%v provenance = %s/%s, want %s/%s",
					rec.Spec.Name, cell.Arch.Name, cell.CacheOn, cell.Backend, cell.Source, wantBackend, wantSource)
			}
			if covered {
				measured++
			} else {
				modeled++
			}
			// The classic counterpart cell: same measurement, no label.
			cc := classic[ri].Cells[ci]
			if cc.Backend != "" || cc.Source != "" {
				t.Errorf("classic cell %s/%s carries provenance %q/%q", rec.Spec.Name, cc.Arch.Name, cc.Backend, cc.Source)
			}
			if cell.Meas != cc.Meas {
				t.Errorf("%s/%s cache=%v measurement diverges from classic sweep", rec.Spec.Name, cell.Arch.Name, cell.CacheOn)
			}
			key := rec.Spec.Name + "/" + cell.Arch.Name + "/off"
			if cell.CacheOn {
				key = rec.Spec.Name + "/" + cell.Arch.Name + "/on"
			}
			if salt, ok := spy.salts[key]; !ok || salt != wantSalt {
				t.Errorf("cache salt for %s = %q (seen %v), want %q", key, salt, ok, wantSalt)
			}
		}
	}
	if measured == 0 || modeled == 0 {
		t.Fatalf("sweep is not mixed: %d measured, %d modeled cells", measured, modeled)
	}
}

// TestSweepBackendDeterminism: worker count must not change anything a
// backend-aware sweep reports — values or provenance labels.
func TestSweepBackendDeterminism(t *testing.T) {
	specs := backendTestSpecs(t)
	archs := []mcu.Arch{mcu.M4, mcu.M33}
	lab := partialLab{kernel: "madgwick", arch: "M4"}
	one, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 1, Backend: lab})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 8, Backend: lab})
	if err != nil {
		t.Fatal(err)
	}
	for ri := range one {
		for ci := range one[ri].Cells {
			a, b := one[ri].Cells[ci], eight[ri].Cells[ci]
			if a.Meas != b.Meas || a.Backend != b.Backend || a.Source != b.Source {
				t.Errorf("%s/%s cache=%v differs across worker counts", one[ri].Spec.Name, a.Arch.Name, a.CacheOn)
			}
		}
	}
}

// TestSweepSimBackendIsClassic: selecting the simulator explicitly is
// normalized to the classic path — no labels, no cache-key salt.
func TestSweepSimBackendIsClassic(t *testing.T) {
	specs := backendTestSpecs(t)[:1]
	archs := []mcu.Arch{mcu.M4}
	spy := &saltSpy{salts: make(map[string]string)}
	recs, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{
		Workers: 1, Backend: harness.SimBackend{}, CellCache: spy,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		for _, cell := range rec.Cells {
			if cell.Backend != "" || cell.Source != "" {
				t.Errorf("explicit sim left provenance %q/%q on %s/%s", cell.Backend, cell.Source, rec.Spec.Name, cell.Arch.Name)
			}
		}
	}
	for key, salt := range spy.salts {
		if salt != "" {
			t.Errorf("explicit sim salted cache key %s with %q", key, salt)
		}
	}
}
