package core

// Suite registry: the kernel table is built exactly once (sync.Once)
// from the Table III spec lists and then served from a map, so ByName
// is O(1) instead of rebuilding and scanning a slice per call. External
// kernels enter through Register with the same shape validation the
// built-ins pass, appended after the curated suite so Table III order —
// and therefore every rendered table and the JSON export byte stream —
// is unchanged by the registry's existence.

import (
	"fmt"
	"strings"
	"sync"
)

var suiteReg struct {
	once   sync.Once
	mu     sync.RWMutex
	order  []string
	byName map[string]Spec
}

// ensureSuite builds the registry from the curated spec lists once per
// process. The built-ins are code, not user input: a malformed one is a
// programming error and panics at first use.
func ensureSuite() {
	suiteReg.once.Do(func() {
		suiteReg.byName = make(map[string]Spec)
		var builtins []Spec
		builtins = append(builtins, perceptionSpecs()...)
		builtins = append(builtins, estimationSpecs()...)
		builtins = append(builtins, controlSpecs()...)
		for _, s := range builtins {
			if err := registerLocked(s); err != nil {
				panic(fmt.Sprintf("core: built-in suite: %v", err))
			}
		}
	})
}

// validateSpec is the shape check every kernel passes before admission.
func validateSpec(s Spec) error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("spec has no name")
	}
	switch s.Stage {
	case Perception, Estimation, Control:
	default:
		return fmt.Errorf("spec %q: unknown stage %q (want P, S, or C)", s.Name, s.Stage)
	}
	if s.Factory == nil {
		return fmt.Errorf("spec %q has no Factory", s.Name)
	}
	if s.FLOPs < 0 {
		return fmt.Errorf("spec %q: negative claimed FLOPs %d", s.Name, s.FLOPs)
	}
	if s.MinSRAMKB < 0 {
		return fmt.Errorf("spec %q: negative MinSRAMKB %d", s.Name, s.MinSRAMKB)
	}
	return nil
}

// registerLocked validates and admits one spec; callers hold
// suiteReg.mu or run inside the once.
func registerLocked(s Spec) error {
	if err := validateSpec(s); err != nil {
		return err
	}
	if _, dup := suiteReg.byName[s.Name]; dup {
		return fmt.Errorf("kernel %q already registered", s.Name)
	}
	suiteReg.byName[s.Name] = s
	suiteReg.order = append(suiteReg.order, s.Name)
	return nil
}

// Register adds an external kernel to the suite with the same
// validation the built-ins pass. Registered kernels appear after the
// curated Table III rows in Suite() order and characterize through the
// identical sweep path — the framework's extensibility contract.
func Register(s Spec) error {
	ensureSuite()
	suiteReg.mu.Lock()
	defer suiteReg.mu.Unlock()
	if err := registerLocked(s); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Suite returns all kernels — the curated suite in Table III order,
// then registered externals in registration order. The slice is a
// fresh copy; callers may reorder or filter it freely.
func Suite() []Spec {
	ensureSuite()
	suiteReg.mu.RLock()
	defer suiteReg.mu.RUnlock()
	out := make([]Spec, 0, len(suiteReg.order))
	for _, name := range suiteReg.order {
		out = append(out, suiteReg.byName[name])
	}
	return out
}

// ByName finds a spec — an O(1) registry lookup.
func ByName(name string) (Spec, bool) {
	ensureSuite()
	suiteReg.mu.RLock()
	defer suiteReg.mu.RUnlock()
	s, ok := suiteReg.byName[name]
	return s, ok
}
