// Package core is EntoBench's registry and characterization engine: the
// curated suite of 31 microcontroller-ready kernels (Table III), each
// wrapped as a harness.Problem with its canonical dataset and
// parameters, plus the cross-architecture characterization runs that
// regenerate the paper's tables and figures.
package core

import (
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
)

// Stage is the pipeline stage of a kernel.
type Stage string

// Pipeline stages, abbreviated as in Table III.
const (
	Perception Stage = "P"
	Estimation Stage = "S"
	Control    Stage = "C"
)

// Spec describes one suite kernel.
type Spec struct {
	Name     string
	Stage    Stage
	Category string
	Dataset  string
	Prec     mcu.Precision
	// FLOPs is the static FLOP count claimed in the source literature
	// where Case Study #3 lists one (0 otherwise).
	FLOPs int
	// M7Only marks kernels whose footprint exceeds the M4/M33 SRAM
	// (sift in the paper).
	M7Only bool
	// Factory builds the canonical benchmark problem.
	Factory func() harness.Problem
	// StaticFactory builds the reduced canonical problem whose dynamic
	// mix serves as the static-instruction-mix proxy (see DESIGN.md);
	// nil falls back to Factory.
	StaticFactory func() harness.Problem
}

// Suite returns all kernels in Table III order.
func Suite() []Spec {
	var out []Spec
	out = append(out, perceptionSpecs()...)
	out = append(out, estimationSpecs()...)
	out = append(out, controlSpecs()...)
	return out
}

// ByName finds a spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ArchRun is one (architecture, cache) characterization cell.
type ArchRun struct {
	Arch    mcu.Arch
	CacheOn bool
	Model   mcu.Estimate
	Meas    harness.Measurement
}

// Record is the full characterization of one kernel: static proxy mix,
// dynamic counts, and per-cell metrics. Dynamic, Valid, and ValidE come
// from the record's reference cell — the first (arch, cache-on) run —
// rather than from whichever cell happened to execute last.
type Record struct {
	Spec    Spec
	Static  profile.Counts // canonical reduced-input mix (per-arch adjust applies)
	Flash   int
	Dynamic profile.Counts
	Cells   []ArchRun
	Valid   bool
	ValidE  error
}

// Characterize measures a kernel across the given cores with caches on
// and off — one row of Tables III and IV. It is the single-kernel,
// single-worker form of CharacterizeSuite.
func Characterize(spec Spec, archs []mcu.Arch) (Record, error) {
	recs, err := CharacterizeSuite([]Spec{spec}, archs, 1)
	return recs[0], err
}

// compressStatic maps the reduced-input dynamic mix onto a
// static-instruction-count scale: loops re-execute the same sites, so
// the number of distinct instructions grows sublinearly with the
// dynamic count. The exponent is fit so kernels land in the paper's
// hundreds-to-tens-of-thousands instruction range while preserving both
// the class proportions and the cross-kernel ordering (a modeled proxy;
// see DESIGN.md).
func compressStatic(c profile.Counts) profile.Counts {
	comp := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		x := float64(v)
		// x^0.62 maps 1e2..1e7 onto ~2e1..2e4.
		y := pow(x, 0.62)
		if y < 1 {
			y = 1
		}
		return uint64(y)
	}
	return profile.Counts{F: comp(c.F), I: comp(c.I), M: comp(c.M), B: comp(c.B)}
}

// pow is a minimal x^p for positive x (avoids importing math here).
func pow(x, p float64) float64 {
	// exp(p·ln x) via the stdlib would be clearer; keep the import
	// surface small with a simple log/exp pair.
	return expF(p * lnF(x))
}

func lnF(x float64) float64 {
	// Reduce to [1,2) and use atanh series.
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	s := t * (1 + t2*(1.0/3+t2*(1.0/5+t2*(1.0/7+t2/9))))
	return 2*s + float64(k)*0.6931471805599453
}

func expF(x float64) float64 {
	// exp via squaring of (1+x/1024)^1024.
	v := 1 + x/1024
	for i := 0; i < 10; i++ {
		v *= v
	}
	return v
}

// Cell finds the (arch, cache) entry in a record.
func (r Record) Cell(archName string, cacheOn bool) (ArchRun, bool) {
	for _, c := range r.Cells {
		if c.Arch.Name == archName && c.CacheOn == cacheOn {
			return c, true
		}
	}
	return ArchRun{}, false
}
