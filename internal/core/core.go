// Package core is EntoBench's registry and characterization engine: the
// curated suite of 31 microcontroller-ready kernels (Table III), each
// wrapped as a harness.Problem with its canonical dataset and
// parameters, plus the cross-architecture characterization runs that
// regenerate the paper's tables and figures.
package core

import (
	"fmt"
	"math"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
)

// Stage is the pipeline stage of a kernel.
type Stage string

// Pipeline stages, abbreviated as in Table III.
const (
	Perception Stage = "P"
	Estimation Stage = "S"
	Control    Stage = "C"
)

// Spec describes one suite kernel.
type Spec struct {
	Name     string
	Stage    Stage
	Category string
	Dataset  string
	Prec     mcu.Precision
	// FLOPs is the static FLOP count claimed in the source literature
	// where Case Study #3 lists one (0 otherwise).
	FLOPs int
	// M7Only marks kernels whose footprint exceeds the M4/M33 SRAM
	// (sift in the paper).
	M7Only bool
	// MinSRAMKB, when set, is the smallest SRAM (KB) the kernel's
	// dataset fits in — the data-driven form of M7Only that also admits
	// user boards with enough memory. Zero means no constraint beyond
	// M7Only.
	MinSRAMKB int
	// Factory builds the canonical benchmark problem.
	Factory func() harness.Problem
	// StaticFactory builds the reduced canonical problem whose dynamic
	// mix serves as the static-instruction-mix proxy (see DESIGN.md);
	// nil falls back to Factory.
	StaticFactory func() harness.Problem
}

// Fits reports whether the kernel's dataset fits on the given core.
// A MinSRAMKB bound compares against the board's SRAM, so a custom
// board with enough memory runs even the big kernels; the legacy
// M7Only flag alone restricts to the reference M7.
func (s Spec) Fits(a mcu.Arch) bool {
	if s.MinSRAMKB > 0 {
		return a.SRAMKB >= s.MinSRAMKB
	}
	if s.M7Only {
		return a.Name == "M7"
	}
	return true
}

// CellStatus classifies how one sweep job ended. The zero value is
// CellOK, so records built by hand (fixtures, single runs) read as
// healthy without saying so.
type CellStatus uint8

// Cell outcomes, in escalating order of surprise.
const (
	// CellOK: the job ran and produced a measurement.
	CellOK CellStatus = iota
	// CellFailed: the job returned an error (setup, harness, analysis).
	CellFailed
	// CellPanicked: the kernel panicked; the sweep recovered it.
	CellPanicked
	// CellTimedOut: the per-cell watchdog (SweepOptions.CellTimeout)
	// fired before the job produced a result.
	CellTimedOut
	// CellSkipped: the job never ran — an earlier failure tripped
	// FailFast, or the sweep context was canceled first.
	CellSkipped
)

// String renders the status the way the JSON export spells it.
func (s CellStatus) String() string {
	switch s {
	case CellOK:
		return "ok"
	case CellFailed:
		return "failed"
	case CellPanicked:
		return "panicked"
	case CellTimedOut:
		return "timed_out"
	case CellSkipped:
		return "skipped"
	}
	return fmt.Sprintf("cellstatus(%d)", uint8(s))
}

// ArchRun is one (architecture, cache) characterization cell. A cell
// that did not complete carries its Status and Err with Arch/CacheOn
// still identifying it; its measurement fields are zero and must not be
// read as data (tables render such cells as "—", the JSON export moves
// them to the failures block).
type ArchRun struct {
	Arch    mcu.Arch
	CacheOn bool
	Model   mcu.Estimate
	Meas    harness.Measurement
	// Backend and Source record which measurement backend produced Meas
	// and its provenance label ("modeled" / "measured"). Both are empty
	// on the classic simulated path — a sweep with no explicit backend —
	// and set on every cell of a backend-aware sweep, including the
	// simulator-fallback cells of a partial backend.
	Backend string
	Source  string
	Status  CellStatus
	Err     error
}

// Record is the full characterization of one kernel: static proxy mix,
// dynamic counts, and per-cell metrics. Dynamic, Valid, and ValidE come
// from the record's reference cell — the first (arch, cache-on) run —
// rather than from whichever cell happened to execute last.
//
// StaticStatus/StaticErr report the static-proxy job the same way a
// cell's Status/Err do; when the reference cell did not complete,
// Dynamic/Valid/ValidE stay zero and the cell's own Status says why.
type Record struct {
	Spec         Spec
	Static       profile.Counts // canonical reduced-input mix (per-arch adjust applies)
	Flash        int
	Dynamic      profile.Counts
	Cells        []ArchRun
	Valid        bool
	ValidE       error
	StaticStatus CellStatus
	StaticErr    error
}

// Characterize measures a kernel across the given cores with caches on
// and off — one row of Tables III and IV. It is the single-kernel,
// single-worker form of CharacterizeSuite.
func Characterize(spec Spec, archs []mcu.Arch) (Record, error) {
	recs, err := CharacterizeSuite([]Spec{spec}, archs, 1)
	return recs[0], err
}

// compressStatic maps the reduced-input dynamic mix onto a
// static-instruction-count scale: loops re-execute the same sites, so
// the number of distinct instructions grows sublinearly with the
// dynamic count. The exponent is fit so kernels land in the paper's
// hundreds-to-tens-of-thousands instruction range while preserving both
// the class proportions and the cross-kernel ordering (a modeled proxy;
// see DESIGN.md).
func compressStatic(c profile.Counts) profile.Counts {
	comp := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		x := float64(v)
		// x^0.62 maps 1e2..1e7 onto ~2e1..2e4.
		y := math.Pow(x, 0.62)
		if y < 1 {
			y = 1
		}
		return uint64(y)
	}
	return profile.Counts{F: comp(c.F), I: comp(c.I), M: comp(c.M), B: comp(c.B)}
}

// Cell finds the (arch, cache) entry in a record.
func (r Record) Cell(archName string, cacheOn bool) (ArchRun, bool) {
	for _, c := range r.Cells {
		if c.Arch.Name == archName && c.CacheOn == cacheOn {
			return c, true
		}
	}
	return ArchRun{}, false
}
