package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/harness"
	img "repro/internal/image"
	"repro/internal/mcu"
	"repro/internal/perception/feature"
	"repro/internal/perception/flow"
)

// Image sizes of the characterization: feature detection on 160×160 and
// optical flow on 80×80, chosen so the M4's SRAM suffices (Section V).
const (
	featureImgSize = 160
	flowImgSize    = 80
	staticImgSize  = 48
)

func perceptionSpecs() []Spec {
	return []Spec{
		{
			Name: "fastbrief", Stage: Perception, Category: "Feat. Extr.", Dataset: "midd-stereo",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newFeatureProblem("fastbrief", featureImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFeatureProblem("fastbrief", staticImgSize, dataset.Midd)
			},
		},
		{
			Name: "orb", Stage: Perception, Category: "Feat. Extr.", Dataset: "midd-stereo",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newFeatureProblem("orb", featureImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFeatureProblem("orb", staticImgSize, dataset.Midd)
			},
		},
		{
			Name: "sift", Stage: Perception, Category: "Feat. Extr.", Dataset: "midd-stereo",
			// Scale-space pyramids exceed the M4/M33 SRAM; of the
			// reference cores only the M7 (1432 KB) qualifies, but any
			// user board with >= 1400 KB runs it too.
			Prec: mcu.PrecF32, M7Only: true, MinSRAMKB: 1400,
			Factory: func() harness.Problem { return newFeatureProblem("sift", featureImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFeatureProblem("sift", staticImgSize, dataset.Midd)
			},
		},
		{
			Name: "lkof", Stage: Perception, Category: "Opt. Flow", Dataset: "midd-flow",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newFlowProblem("lkof", flowImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFlowProblem("lkof", 32, dataset.Midd)
			},
		},
		{
			Name: "iiof", Stage: Perception, Category: "Opt. Flow", Dataset: "midd-flow",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newFlowProblem("iiof", flowImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFlowProblem("iiof", 64, dataset.Midd)
			},
		},
		{
			Name: "bbof", Stage: Perception, Category: "Opt. Flow", Dataset: "midd-flow",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newFlowProblem("bbof", flowImgSize, dataset.Midd) },
			StaticFactory: func() harness.Problem {
				return newFlowProblem("bbof", 32, dataset.Midd)
			},
		},
	}
}

// featureProblem wraps the feature-extraction kernels.
type featureProblem struct {
	kernel string
	size   int
	kind   dataset.ImageKind
	img    *img.Gray
	found  int
}

func newFeatureProblem(kernel string, size int, kind dataset.ImageKind) *featureProblem {
	return &featureProblem{kernel: kernel, size: size, kind: kind}
}

// NewFeatureProblem exposes the wrapper for the case studies (Table VI
// sweeps the dataset kind).
func NewFeatureProblem(kernel string, kind dataset.ImageKind) harness.Problem {
	return newFeatureProblem(kernel, featureImgSize, kind)
}

func (p *featureProblem) Name() string    { return p.kernel }
func (p *featureProblem) Dataset() string { return p.kind.String() }

func (p *featureProblem) Setup() error {
	p.img = dataset.GenImage(p.kind, p.size, p.size, 101)
	return nil
}

func (p *featureProblem) Solve() {
	switch p.kernel {
	case "fastbrief":
		r := feature.FASTBrief(p.img, 20, 100)
		p.found = len(r.Keypoints)
	case "orb":
		r := feature.ORB(p.img, 20, 100)
		p.found = len(r.Keypoints)
	default: // sift
		cfg := feature.DefaultSIFTConfig()
		cfg.MaxFeatures = 150
		r := feature.SIFT(p.img, cfg)
		p.found = len(r.Keypoints)
	}
}

func (p *featureProblem) Validate() error {
	// The sparse lights dataset legitimately yields few features; the
	// textured datasets must yield a healthy set.
	min := 5
	if p.kind == dataset.Lights {
		min = 1
	}
	if p.found < min {
		return fmt.Errorf("%s found only %d features", p.kernel, p.found)
	}
	return nil
}

// flowProblem wraps the optical-flow kernels. Each Solve estimates the
// displacement of a grid of tracked features, as the onboard pipeline
// does per frame.
type flowProblem struct {
	kernel string
	size   int
	kind   dataset.ImageKind
	pair   dataset.FlowPair
	worst  float64
	valid  bool
	vec    bool // bbof-vec variant
}

func newFlowProblem(kernel string, size int, kind dataset.ImageKind) *flowProblem {
	return &flowProblem{kernel: kernel, size: size, kind: kind}
}

// NewFlowProblem exposes the wrapper for the case studies; vec selects
// the USADA8-modeled bbof-vec variant.
func NewFlowProblem(kernel string, kind dataset.ImageKind, vec bool) harness.Problem {
	p := newFlowProblem(kernel, flowImgSize, kind)
	p.vec = vec
	return p
}

func (p *flowProblem) Name() string {
	if p.vec {
		return p.kernel + "-vec"
	}
	return p.kernel
}
func (p *flowProblem) Dataset() string { return p.kind.String() }

func (p *flowProblem) Setup() error {
	p.pair = dataset.GenFlowPair(p.kind, p.size, p.size, 2, -1, 202)
	return nil
}

// trackPoints is the feature grid each flow invocation tracks, placed
// with enough margin for the widest kernel window (iiof's ±20 analysis
// window plus its ±2 reference shift).
func (p *flowProblem) trackPoints() [][2]int {
	c := p.size / 2
	o := p.size / 8
	return [][2]int{{c, c}, {c + o, c - o}, {c - o, c + o}, {c - o, c - o}, {c + o, c + o}}
}

func (p *flowProblem) Solve() {
	p.worst = 0
	p.valid = true
	for _, pt := range p.trackPoints() {
		var r flow.Result
		switch p.kernel {
		case "lkof":
			r = flow.LucasKanade(p.pair.A, p.pair.B, float64(pt[0]), float64(pt[1]), flow.DefaultLKConfig())
		case "iiof":
			r = flow.ImageInterpolation(p.pair.A, p.pair.B, pt[0], pt[1], flow.DefaultIIConfig())
		default: // bbof
			if p.vec {
				r = flow.BlockMatchVec(p.pair.A, p.pair.B, pt[0], pt[1], flow.DefaultBBConfig())
			} else {
				r = flow.BlockMatch(p.pair.A, p.pair.B, pt[0], pt[1], flow.DefaultBBConfig())
			}
		}
		if !r.Valid {
			p.valid = false
			continue
		}
		ex := abs(r.DX - p.pair.DX)
		ey := abs(r.DY - p.pair.DY)
		if ex > p.worst {
			p.worst = ex
		}
		if ey > p.worst {
			p.worst = ey
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (p *flowProblem) Validate() error {
	if !p.valid {
		return errors.New("flow kernel returned invalid results")
	}
	if p.worst > 1.5 {
		return fmt.Errorf("flow error %.2f px exceeds tolerance", p.worst)
	}
	return nil
}
