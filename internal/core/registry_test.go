package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mcu"
)

// extSpec clones a cheap built-in kernel under a new name — the shape a
// user's external registration has.
func extSpec(t *testing.T, name string) core.Spec {
	t.Helper()
	base, ok := core.ByName("fly-lqr")
	if !ok {
		t.Fatal("fly-lqr missing from suite")
	}
	s := base
	s.Name = name
	s.Category = "External"
	return s
}

func TestRegisterExternalKernel(t *testing.T) {
	s := extSpec(t, "ext-lqr-clone")
	if err := core.Register(s); err != nil {
		t.Fatal(err)
	}
	got, ok := core.ByName("ext-lqr-clone")
	if !ok {
		t.Fatal("registered kernel does not resolve")
	}
	if got.Category != "External" {
		t.Errorf("ByName returned %+v", got)
	}
	suite := core.Suite()
	found := false
	for _, k := range suite {
		if k.Name == "ext-lqr-clone" {
			found = true
		}
	}
	if !found {
		t.Error("registered kernel missing from Suite()")
	}
	// It characterizes through the identical sweep path.
	rec, err := core.Characterize(got, []mcu.Arch{mcu.M4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Cells) != 2 || !rec.Valid {
		t.Errorf("external kernel characterization: %d cells, valid=%v", len(rec.Cells), rec.Valid)
	}
}

func TestRegisterKernelValidation(t *testing.T) {
	cases := []struct {
		mutate func(*core.Spec)
		want   string
	}{
		{func(s *core.Spec) { s.Name = " " }, "no name"},
		{func(s *core.Spec) { s.Stage = "X" }, "unknown stage"},
		{func(s *core.Spec) { s.Factory = nil }, "no Factory"},
		{func(s *core.Spec) { s.FLOPs = -5 }, "negative claimed FLOPs"},
		{func(s *core.Spec) { s.MinSRAMKB = -1 }, "negative MinSRAMKB"},
	}
	for i, c := range cases {
		s := extSpec(t, "ext-never-admitted")
		c.mutate(&s)
		err := core.Register(s)
		if err == nil {
			t.Fatalf("case %d: Register admitted an invalid spec", i)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
	if _, ok := core.ByName("ext-never-admitted"); ok {
		t.Error("an invalid spec reached the registry")
	}
	if err := core.Register(extSpec(t, "p3p")); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate of a built-in: err = %v", err)
	}
}

// Fits is the data-driven kernel/board gate: an SRAM floor when the
// spec declares one, the legacy M7 name match otherwise.
func TestSpecFits(t *testing.T) {
	sift, ok := core.ByName("sift")
	if !ok {
		t.Fatal("sift missing")
	}
	if sift.MinSRAMKB == 0 {
		t.Fatal("sift should declare an SRAM floor")
	}
	if !sift.Fits(mcu.M7) {
		t.Error("sift must fit the M7 (1432 KB)")
	}
	for _, a := range []mcu.Arch{mcu.M4, mcu.M33, mcu.M0Plus} {
		if sift.Fits(a) {
			t.Errorf("sift should not fit the %s (%d KB)", a.Name, a.SRAMKB)
		}
	}
	// A custom board with enough SRAM fits, whatever its name.
	big := mcu.M4
	big.Name = "FitsBigSRAM"
	big.SRAMKB = 2048
	if !sift.Fits(big) {
		t.Error("sift should fit any board with >= its SRAM floor")
	}
	// Legacy shape: M7Only with no floor matches by name only.
	legacy := core.Spec{M7Only: true}
	if legacy.Fits(big) || !legacy.Fits(mcu.M7) {
		t.Error("M7Only without an SRAM floor should match the M7 by name")
	}
	// Unconstrained kernels fit everything.
	if lqr, _ := core.ByName("fly-lqr"); !lqr.Fits(mcu.M0Plus) {
		t.Error("unconstrained kernel should fit the smallest core")
	}
}

// A sweep over a registered custom board covers every kernel the board
// fits, including the SRAM-gated ones when the board is big enough.
func TestSweepOverCustomBoard(t *testing.T) {
	big := mcu.M7
	big.Name = "SweepBig"
	big.Board = "test fixture"
	big.SRAMKB = 4096
	big.Source = ""
	if err := mcu.Register(big); err != nil {
		t.Fatal(err)
	}
	reg, _ := mcu.ByName("sweepbig")
	recs, err := core.CharacterizeSuite(core.Suite(), []mcu.Arch{reg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Spec.Name == "ext-lqr-clone" {
			continue // may or may not be registered depending on test order
		}
		if len(r.Cells) != 2 {
			t.Errorf("%s: %d cells on the custom board, want 2 (it fits everything)", r.Spec.Name, len(r.Cells))
		}
	}
}
