package core

import (
	"errors"
	"fmt"

	"repro/internal/control"
	"repro/internal/harness"
	"repro/internal/mat"
	"repro/internal/mcu"
)

func controlSpecs() []Spec {
	return []Spec{
		{
			Name: "fly-tiny-mpc", Stage: Control, Category: "Opt. Ctrl.", Dataset: "fly-traj",
			Prec: mcu.PrecF32, FLOPs: control.TinyMPCFLOPs,
			Factory: func() harness.Problem { return newTinyMPCProblem() },
		},
		{
			Name: "fly-lqr", Stage: Control, Category: "Opt. Ctrl.", Dataset: "fly-traj",
			Prec: mcu.PrecF32, FLOPs: control.FlyLQRFLOPs,
			Factory: func() harness.Problem { return newLQRProblem() },
		},
		{
			Name: "bee-mpc", Stage: Control, Category: "Opt. Ctrl.", Dataset: "bee-synth",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newBeeMPCProblem() },
		},
		{
			Name: "bee-geom", Stage: Control, Category: "Geom. Ctrl.", Dataset: "bee-synth",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newGeomProblem() },
		},
		{
			Name: "bee-smac", Stage: Control, Category: "Adapt. Ctrl.", Dataset: "bee-traj",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newSMACProblem() },
		},
	}
}

const ctrlDt = 0.002

// --- fly-lqr ---

type lqrProblem struct {
	ctrl  *control.LQR[F32]
	plant *control.LinearPlant[F32]
	xref  mat.Vec[F32]
	steps int
}

func newLQRProblem() *lqrProblem { return &lqrProblem{} }

// NewLQRProblem exposes the wrapper for the case studies.
func NewLQRProblem() harness.Problem { return newLQRProblem() }

func (p *lqrProblem) Name() string    { return "fly-lqr" }
func (p *lqrProblem) Dataset() string { return "fly-traj" }

func (p *lqrProblem) Setup() error {
	a, b, q, r := control.FlyModel(ctrlDt)
	ctrl, err := control.NewLQR(F32(0), a, b, q, r)
	if err != nil {
		return err
	}
	p.ctrl = ctrl
	p.plant = control.NewLinearPlant(F32(0), a, b, []float64{0.25, 0, 0.15, -0.3})
	p.xref = mat.VecFromFloats(F32(0), []float64{0, 0, 0, 0})
	p.steps = 0
	return nil
}

// Solve is one closed-loop control update — the measured kernel is the
// gain multiply only; the plant step happens outside a real MCU too,
// but its cost here is negligible and kept for closed-loop validation.
func (p *lqrProblem) Solve() {
	u := p.ctrl.Update(p.plant.X, p.xref)
	p.plant.Step(u)
	p.steps++
}

func (p *lqrProblem) Validate() error {
	if p.steps < 2000 {
		return nil
	}
	if n := normInf(p.plant.X.Floats()); n > 0.05 {
		return fmt.Errorf("fly-lqr state norm %.3f after %d steps", n, p.steps)
	}
	return nil
}

func normInf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := abs(x); a > m {
			m = a
		}
	}
	return m
}

// --- fly-tiny-mpc ---

type tinyMPCProblem struct {
	ctrl  *control.TinyMPC[F32]
	plant *control.LinearPlant[F32]
	xref  mat.Vec[F32]
	steps int
}

func newTinyMPCProblem() *tinyMPCProblem { return &tinyMPCProblem{} }

// NewTinyMPCProblem exposes the wrapper for the case studies.
func NewTinyMPCProblem() harness.Problem { return newTinyMPCProblem() }

func (p *tinyMPCProblem) Name() string    { return "fly-tiny-mpc" }
func (p *tinyMPCProblem) Dataset() string { return "fly-traj" }

func (p *tinyMPCProblem) Setup() error {
	a, b, q, r := control.FlyModel(ctrlDt)
	ctrl, err := control.NewTinyMPC(F32(0), a, b, q, r, control.DefaultTinyMPCConfig())
	if err != nil {
		return err
	}
	p.ctrl = ctrl
	p.plant = control.NewLinearPlant(F32(0), a, b, []float64{0.25, 0, 0.15, -0.3})
	p.xref = mat.VecFromFloats(F32(0), []float64{0, 0, 0, 0})
	p.steps = 0
	return nil
}

func (p *tinyMPCProblem) Solve() {
	u, _ := p.ctrl.Solve(p.plant.X, p.xref)
	p.plant.Step(u)
	p.steps++
}

func (p *tinyMPCProblem) Validate() error {
	if p.steps < 2000 {
		return nil
	}
	if n := normInf(p.plant.X.Floats()); n > 0.05 {
		return fmt.Errorf("fly-tiny-mpc state norm %.3f", n)
	}
	return nil
}

// --- bee-mpc ---

type beeMPCProblem struct {
	ctrl  *control.BeeMPC[F32]
	plant *control.LinearPlant[F32]
	xref  mat.Vec[F32]
	errS  error
}

func newBeeMPCProblem() *beeMPCProblem { return &beeMPCProblem{} }

// NewBeeMPCProblem exposes the wrapper for the case studies.
func NewBeeMPCProblem() harness.Problem { return newBeeMPCProblem() }

func (p *beeMPCProblem) Name() string    { return "bee-mpc" }
func (p *beeMPCProblem) Dataset() string { return "bee-synth" }

func (p *beeMPCProblem) Setup() error {
	a, b, q, r := control.FlyModel(ctrlDt)
	p.ctrl = control.NewBeeMPC(F32(0), a, b, q, r, control.DefaultBeeMPCConfig())
	p.plant = control.NewLinearPlant(F32(0), a, b, []float64{0.25, 0, 0.15, -0.3})
	p.xref = mat.VecFromFloats(F32(0), []float64{0, 0, 0, 0})
	return nil
}

func (p *beeMPCProblem) Solve() {
	u, _, err := p.ctrl.Solve(p.plant.X, p.xref)
	if err != nil {
		p.errS = err
		return
	}
	p.plant.Step(u)
}

func (p *beeMPCProblem) Validate() error { return p.errS }

// --- bee-geom ---

type geomProblem struct {
	ctrl *control.GeomCtrl[F32]
	body *control.RigidBody[F32]
	ref  control.GeomRef[F32]
}

func newGeomProblem() *geomProblem { return &geomProblem{} }

// NewGeomProblem exposes the wrapper for the case studies.
func NewGeomProblem() harness.Problem { return newGeomProblem() }

func (p *geomProblem) Name() string    { return "bee-geom" }
func (p *geomProblem) Dataset() string { return "bee-synth" }

func (p *geomProblem) Setup() error {
	mass := 0.0008
	inertia := [3]float64{1.5e-9, 1.5e-9, 0.5e-9}
	p.ctrl = control.NewGeomCtrl(F32(0), mass, inertia)
	p.body = control.NewRigidBody(F32(0), mass, inertia)
	p.body.P = mat.VecFromFloats(F32(0), []float64{0.03, -0.02, 0.01})
	zero := F32(0)
	p.ref = control.GeomRef[F32]{
		P:   mat.Vec[F32]{zero, zero, zero},
		V:   mat.Vec[F32]{zero, zero, zero},
		A:   mat.Vec[F32]{zero, zero, zero},
		Yaw: zero,
	}
	return nil
}

func (p *geomProblem) Solve() {
	thrust, moment := p.ctrl.Update(p.body.State(), p.ref)
	p.body.Step(thrust, moment, F32(0.0005))
}

func (p *geomProblem) Validate() error {
	if d := p.body.P.Norm().Float(); d > 0.2 {
		return fmt.Errorf("bee-geom diverged to %.3f m", d)
	}
	return nil
}

// --- bee-smac ---

type smacProblem struct {
	ctrl   *control.SMAC[F32]
	z, vz  float64
	roll   float64
	rolld  float64
	steps  int
	errMax float64
}

func newSMACProblem() *smacProblem { return &smacProblem{} }

// NewSMACProblem exposes the wrapper for the case studies.
func NewSMACProblem() harness.Problem { return newSMACProblem() }

func (p *smacProblem) Name() string    { return "bee-smac" }
func (p *smacProblem) Dataset() string { return "bee-traj" }

func (p *smacProblem) Setup() error {
	p.ctrl = control.NewSMAC(F32(0), 0.0008)
	p.z, p.vz = 0.1, 0
	p.roll, p.rolld = 0.1, 0
	p.steps = 0
	p.errMax = 0
	return nil
}

func (p *smacProblem) Solve() {
	st := control.SMACState[F32]{
		Z: F32(p.z), VZ: F32(p.vz),
		Roll: F32(p.roll), RollD: F32(p.rolld),
	}
	out := p.ctrl.Update(st, control.SMACRef[F32]{}, F32(ctrlDt))
	// Plant: normalized vertical axis with an unknown lift deficit, and
	// a first-order roll axis.
	uz := out.Thrust.Float()/0.0008 - 9.80665
	p.vz += (uz - 0.6) * ctrlDt
	p.z += p.vz * ctrlDt
	ur := out.RollMoment.Float()
	p.rolld += ur * ctrlDt * 40
	p.roll += p.rolld * ctrlDt
	p.steps++
	if p.steps > 2000 {
		if a := abs(p.z); a > p.errMax {
			p.errMax = a
		}
	}
}

func (p *smacProblem) Validate() error {
	if p.steps < 3000 {
		return nil
	}
	if p.errMax > 0.08 {
		return errors.New("bee-smac failed to adapt out the lift deficit")
	}
	return nil
}
