package core_test

// Allocation regression test for the batched sweep's per-cell path.
// After the same-kernel batching, each grid cell beyond the first costs
// one MeasureOn call: pure arithmetic (Estimate, trace synthesis,
// analysis) over the shared Prepared state, with no kernel execution
// and no dataset regeneration. This pins its allocation count so a
// change that quietly reintroduces per-cell problem builds or buffer
// churn fails here instead of only showing up in the benchmarks.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

func TestMeasureOnAllocBudget(t *testing.T) {
	spec, ok := core.ByName("fly-lqr")
	if !ok {
		t.Fatal("fly-lqr missing from suite")
	}
	cfg := harness.DefaultConfig()
	pp, err := harness.Prepare(spec.Factory(), mcu.M4, spec.Prec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []mcu.Arch{mcu.M4, mcu.M7} {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			if _, err := pp.MeasureOn(arch, spec.Prec, cfg); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := pp.MeasureOn(arch, spec.Prec, cfg); err != nil {
					t.Fatal(err)
				}
			})
			// Measured at 2 allocs/cell when written (the trace and
			// event buffers); the budget leaves headroom for modest
			// pipeline growth while staying far below the thousands a
			// per-cell problem rebuild would add.
			const budget = 8
			if allocs > budget {
				t.Fatalf("MeasureOn allocates %.0f times per cell, budget is %d", allocs, budget)
			}
		})
	}
}
