package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Parallel, fault-tolerant characterization engine. The (kernel × arch
// × cache) cells of the Table III/IV sweep are independent — every job
// builds its own problem instance from the spec factory, all dataset
// generators seed local RNGs, and the profiler records into
// goroutine-scoped sessions — so the sweep fans out across a bounded
// worker pool. Each *cell* stays a single goroutine (a simulated MCU is
// single-core; its ROI must not be split), so the parallelism is across
// cells only.
//
// Same-kernel cells are batched: the kernel execution itself — problem
// build, warm-up, the profiled ROI invocation, validation — runs once
// per spec (kernelPrep), and every (arch, cache) cell derives its
// measurement from the shared counts with pure arithmetic
// (harness.Prepared.MeasureOn). Counts and validity are
// arch-independent, so batching changes no assembled byte; the job
// graph, progress accounting, spans, and per-cell fault containment are
// exactly those of the unbatched engine.
//
// Failure model (DESIGN.md §12): a cell that panics, errors, or trips
// the watchdog costs exactly its own slot. Panics are recovered with
// the stack captured (PanicError), the cell is marked with a CellStatus
// and its error, and the sweep keeps going; the aggregate error is a
// deterministic serial-order errors.Join of one CellError per failed
// job. SweepOptions.FailFast restores the historical
// stop-at-first-failure behavior, with abandoned jobs explicitly marked
// CellSkipped instead of left as zero-valued cells. A context
// (SweepOptions.Context) cancels the sweep between jobs — and mid-job
// when the watchdog is armed — which is how the CLIs turn SIGINT into a
// flushed partial result.
//
// Determinism: every job writes into a pre-assigned slot of the
// pre-sized records slice, so the assembled output is identical — byte
// for byte once rendered — for any worker count, including 1. With the
// watchdog armed the job computes on a child goroutine and only the
// worker commits the result, so an abandoned (timed-out) computation
// can never race the assembly.
//
// Observability: when a trace is active (obs.StartTrace) every executed
// job emits an obs span — sweep.static or sweep.cell — on its worker's
// lane with the kernel/arch/cache identity and its queue wait (time
// between sweep start, when all jobs are ready, and job pickup); the
// whole call emits one sweep span on lane 0. Tracing off costs one
// atomic load per job. SweepOptions.Progress, when set, is invoked
// after every finished or skipped job; the failure-mode counters
// sweep.cells_failed, sweep.panics_recovered, and sweep.cells_timed_out
// are always on. docs/observability.md is the reference for the span
// and counter vocabulary.

// Sweep failure-mode counters (docs/observability.md).
var (
	// ctrCellsFailed counts jobs that ended in any error: plain
	// failures, recovered panics, and watchdog timeouts (skips excluded).
	ctrCellsFailed = obs.NewCounter(obs.CounterSweepCellsFailed)
	// ctrPanicsRecovered counts kernel panics the sweep converted into
	// per-cell errors.
	ctrPanicsRecovered = obs.NewCounter(obs.CounterSweepPanicsRecovered)
	// ctrCellsTimedOut counts jobs abandoned by the per-cell watchdog.
	ctrCellsTimedOut = obs.NewCounter(obs.CounterSweepCellsTimedOut)
	// ctrCellsCached counts jobs served from SweepOptions.CellCache
	// instead of being executed.
	ctrCellsCached = obs.NewCounter(obs.CounterSweepCellsCached)
	// ctrCellsComputed counts jobs the engine actually executed —
	// everything not cache-served and not skipped, including failures.
	ctrCellsComputed = obs.NewCounter(obs.CounterSweepCellsComputed)
)

// StaticCellResult is the cacheable outcome of one kernel's
// static-proxy job: the compressed op counts of the static solver plus
// the modeled flash footprint.
type StaticCellResult struct {
	Static profile.Counts `json:"static"`
	Flash  int            `json:"flash"`
}

// MeasuredCellResult is the cacheable outcome of one (arch, cache)
// measurement cell. It carries everything the record assembly needs:
// the cell's own model and measurement, plus the arch-independent
// dynamic mix and validation verdict (so a cached reference cell can
// rehydrate the record-level fields). ValidErr is the rendered
// validation error — the export only ever prints it, so a string
// round-trips byte-identically where an error value would not. Name is
// the prepared problem's name: its length seeds trace synthesis, so
// carrying it lets an incremental sweep rehydrate the kernel's shared
// prepare from any cached cell (harness.RehydratePrepared) and measure
// fresh (arch, cache) cells without re-executing the kernel, still
// byte-identically.
type MeasuredCellResult struct {
	Model    mcu.Estimate        `json:"model"`
	Meas     harness.Measurement `json:"meas"`
	Counts   profile.Counts      `json:"counts"`
	Name     string              `json:"name"`
	Valid    bool                `json:"valid"`
	ValidErr string              `json:"valid_err,omitempty"`
}

// CellCache serves and persists per-cell sweep results. The engine
// consults it before executing a job and offers back every cell that
// completed CellOK — failed, panicked, timed-out, and skipped jobs are
// never stored, so a cache can only ever replay a healthy computation.
// Implementations must be safe for concurrent use by pool workers; a
// lookup miss must be cheap. The backend string is the measurement
// backend's cache-key salt (harness.BackendSalt): empty on the classic
// simulated path, non-empty for externally measured cells, so modeled
// and measured results never collide under one key. The canonical
// implementation is report.PersistentCellCache over internal/cellstore.
type CellCache interface {
	// LoadStatic returns the cached static-proxy result of spec, if any.
	LoadStatic(spec Spec) (StaticCellResult, bool)
	// StoreStatic persists a healthy static-proxy result.
	StoreStatic(spec Spec, res StaticCellResult)
	// LoadCell returns the cached (arch, cacheOn) cell of spec measured
	// by the salted backend, if any.
	LoadCell(spec Spec, arch mcu.Arch, cacheOn bool, backend string) (MeasuredCellResult, bool)
	// StoreCell persists a healthy measurement cell under its backend.
	StoreCell(spec Spec, arch mcu.Arch, cacheOn bool, backend string, res MeasuredCellResult)
}

// cellBackend is the resolved measurement backend of one sweep cell:
// the rig that measures it (nil = the reference simulator), the
// provenance labels the record carries, and the cache-key salt. It is
// computed deterministically from the sweep-level backend and the cell
// identity — never persisted — so a cached cell always re-derives the
// same labels it would earn when computed fresh.
type cellBackend struct {
	be     harness.Backend // nil means the simulator
	name   string          // registry name; "" on the classic path
	source string          // harness.SourceModeled / SourceMeasured; "" classic
	salt   string          // harness.BackendSalt contribution to cache keys
}

// resolveCellBackend maps the sweep-level backend selection onto one
// (kernel, arch, cache) cell. A nil sweep backend is the classic path:
// unlabeled, unsalted. A partial backend that doesn't cover the cell
// falls back to the simulator — the cell is labeled "sim"/modeled (the
// sweep was explicitly backend-aware, so every cell states its
// provenance) but keeps the classic empty salt, sharing cached cells
// with classic sweeps byte-identically.
func resolveCellBackend(be harness.Backend, kernel, archName string, cacheOn bool) cellBackend {
	if be == nil {
		return cellBackend{}
	}
	if pb, ok := be.(harness.PartialBackend); ok && !pb.Covers(kernel, archName, cacheOn) {
		return cellBackend{name: "sim", source: harness.SourceModeled}
	}
	return cellBackend{be: be, name: be.Name(), source: be.Source(), salt: harness.BackendSalt(be)}
}

// jobStatic marks a job as the per-kernel static-proxy run rather than
// an (arch, cache) measurement cell.
const jobStatic = -1

// kernelPrep is the lazily-computed shared half of one kernel's
// measurement cells: problem build, warm-up, the profiled ROI
// invocation, and validation run once per kernel (harness.Prepare), and
// every (arch, cache) cell derives its measurement from the shared
// result with pure arithmetic (harness.MeasureOn). Counts and validity
// are arch-independent — see the reference-cell comment in commit — so
// sharing changes no assembled byte.
//
// The first cell job of a kernel to reach get pays for the prepare;
// concurrent same-kernel cells block in the Once until it lands.
// Fault containment is preserved per cell: a panic or error inside the
// shared prepare is captured here and re-surfaced to every cell job
// that asks, so each affected cell is classified, counted, and reported
// individually, exactly as when every cell ran the kernel itself. Under
// a watchdog (SweepOptions.CellTimeout) a hung prepare strands its
// waiters in the Once; each waiter's own watchdog abandons it
// individually, and a late-finishing prepare only ever publishes
// through this struct — never into sweep state directly.
type kernelPrep struct {
	once sync.Once
	ref  mcu.Arch // first fitting arch: the reference cell's core
	pp   *harness.Prepared
	err  error
}

// get returns the kernel's shared prepared state, computing it on the
// first call. A recovered panic is stored as a PanicError so every
// sharing cell sees the same failure.
//
// When a cell cache is in play the prepare is rehydrated from the
// kernel's cached reference cell when one exists: the prepared state is
// only {name, counts, verdict}, all stored in every cached cell, and
// MeasureOn is a pure function of them — so an incremental sweep (one
// new board against a warm cache) measures the new cells without
// executing the kernel at all, byte-identically.
func (kp *kernelPrep) get(ctx context.Context, spec Spec, cc CellCache, be harness.Backend) (*harness.Prepared, error) {
	kp.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				kp.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		if cc != nil {
			// The reference cell is (ref arch, cache on); its cache key
			// carries whatever backend salt that cell earns this sweep.
			// The rehydrated fields (name, counts, verdict) are backend-
			// independent, so any healthy cached copy serves.
			refCB := resolveCellBackend(be, spec.Name, kp.ref.Name, true)
			if mr, ok := cc.LoadCell(spec, kp.ref, true, refCB.salt); ok && mr.Name != "" {
				var validE error
				if mr.ValidErr != "" {
					validE = errors.New(mr.ValidErr)
				}
				kp.pp = harness.RehydratePrepared(mr.Name, mr.Counts, mr.Valid, validE)
				return
			}
		}
		// The reference cell's schedule: first fitting arch, cache on
		// (cells are ordered arch-major, cache on/off), so the validation
		// reps match what cell 0 executed when it ran the kernel itself.
		kp.pp, kp.err = harness.PrepareContext(ctx, spec.Factory(), kp.ref, spec.Prec, harness.DefaultConfig())
	})
	return kp.pp, kp.err
}

// job is one unit of sweep work: either the static-proxy run of a
// kernel (cell == jobStatic) or one (arch, cache) measurement cell.
type job struct {
	spec  int // index into the records slice
	cell  int // index into Records[spec].Cells, or jobStatic
	arch  mcu.Arch
	cache bool
	err   error // a *CellError after a failed run, nil otherwise
}

// SweepOptions configures a characterization sweep beyond the specs and
// architectures themselves. The zero value is the default sweep:
// GOMAXPROCS workers, contained failures, no watchdog, no cancellation.
type SweepOptions struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0). The
	// worker count never changes the assembled records.
	Workers int
	// Progress, when non-nil, is called after every job that finishes
	// or is skipped, with the executed count, the skipped count, and
	// the total; done+skipped reaches total exactly when the sweep
	// drains. It is invoked concurrently from pool workers and must be
	// goroutine-safe ((*obs.Progress).Update qualifies).
	Progress func(done, skipped, total int)
	// FailFast stops dispatching after the first failed job, the
	// historical behavior. Jobs already running finish; jobs not yet
	// started are marked CellSkipped (and reported as skipped to
	// Progress, not silently counted as done). The default — FailFast
	// false — contains each failure to its own cell and runs the sweep
	// to completion.
	FailFast bool
	// CellTimeout, when positive, arms a per-job watchdog: a job that
	// produces no result within the window is abandoned and its cell
	// marked CellTimedOut, so a hung Solve loses its cell, not the
	// sweep. The abandoned computation's goroutine is left to finish
	// (or block) on its own — Go cannot kill it — but it computes on
	// private state and its late result is discarded, never committed.
	// Zero disables the watchdog (jobs run inline on the worker).
	CellTimeout time.Duration
	// Context, when non-nil, cancels the sweep: jobs not yet started
	// are marked CellSkipped, and with CellTimeout armed a running job
	// is abandoned mid-flight. The aggregate error then includes
	// ctx.Err(), so callers can distinguish cancellation from kernel
	// failures. Nil means context.Background().
	Context context.Context
	// CellCache, when non-nil, serves jobs whose content-identical
	// result a prior run persisted (loaded cells are byte-identical to
	// recomputation) and persists every newly computed CellOK job.
	// Failed, panicked, timed-out, and skipped jobs are never stored.
	// Nil — the default — changes nothing on the hot path.
	CellCache CellCache
	// Backend selects the measurement backend cells run through
	// (harness.Backend). Nil — and the canonical simulator, to which
	// nil is normalized — is the classic synthetic path, byte-identical
	// to every sweep before the seam existed. A non-nil backend labels
	// every cell with its provenance (ArchRun.Backend/Source): cells a
	// partial backend covers are measured by it, the rest fall back to
	// the simulator, which is how one report mixes measured and modeled
	// cells. The backend's identity salts cell-cache keys so modeled
	// and measured results never collide.
	Backend harness.Backend
	// ShardIndex/ShardCount partition the job grid deterministically
	// across processes: with ShardCount = N > 0 and ShardIndex = i in
	// 1..N, the sweep executes only jobs whose serial index ≡ i-1
	// (mod N) and marks every foreign job CellSkipped (with no error),
	// so N shard runs cover each job exactly once and report.MergeShards
	// reassembles the single-process bytes. ShardCount 0 disables
	// sharding.
	ShardIndex int
	ShardCount int
}

// ownsJob reports whether this sweep's shard executes serial job index
// j. With sharding off every job is owned.
func (o SweepOptions) ownsJob(j int) bool {
	return o.ShardCount <= 0 || j%o.ShardCount == o.ShardIndex-1
}

// PanicError is a recovered kernel panic: the panic value plus the
// stack captured at recovery, preserved for post-mortems while keeping
// Error() a single line (the stack would drown an errors.Join).
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value without the stack.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// CellError is the provenance-carrying failure of one sweep job: which
// kernel, on which core and cache setting (zero Arch/Cache for the
// static-proxy job), how it failed, and the underlying error.
type CellError struct {
	Kernel string
	Arch   string // empty for the static-proxy job
	Cache  bool
	Stage  string // "static" or "cell"
	Status CellStatus
	Err    error
}

// Error identifies the cell and the failure on one line.
func (e *CellError) Error() string {
	if e.Stage == StageStatic {
		return fmt.Sprintf("%s [static]: %s: %v", e.Kernel, e.Status, e.Err)
	}
	cache := "nocache"
	if e.Cache {
		cache = "cache"
	}
	return fmt.Sprintf("%s [%s %s]: %s: %v", e.Kernel, e.Arch, cache, e.Status, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *CellError) Unwrap() error { return e.Err }

// CellError stages.
const (
	// StageStatic is the per-kernel static-proxy job.
	StageStatic = "static"
	// StageCell is an (arch, cache) measurement job.
	StageCell = "cell"
)

// CellErrors extracts every CellError from a sweep's aggregate error,
// walking errors.Join trees and single wraps. A nil error or one
// carrying no cell failures (for example bare cancellation) yields nil.
func CellErrors(err error) []*CellError {
	var out []*CellError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if ce, ok := e.(*CellError); ok {
			out = append(out, ce)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// CharacterizeSuite characterizes specs across archs using a bounded
// worker pool and returns one Record per spec, in specs order, with
// cells in the serial (arch-major, cache on/off) order. workers <= 0
// means runtime.GOMAXPROCS(0). Output is identical for every worker
// count.
//
// Failures are contained per cell: every healthy record is returned in
// full, failed cells carry their CellStatus, and the error aggregates
// one CellError per failed job in serial order (see
// CharacterizeSuiteOpts for fail-fast and watchdog variants).
func CharacterizeSuite(specs []Spec, archs []mcu.Arch, workers int) ([]Record, error) {
	return CharacterizeSuiteOpts(specs, archs, SweepOptions{Workers: workers})
}

// CharacterizeSuiteOpts is CharacterizeSuite with full sweep options.
func CharacterizeSuiteOpts(specs []Spec, archs []mcu.Arch, opts SweepOptions) ([]Record, error) {
	if opts.ShardCount > 0 && (opts.ShardIndex < 1 || opts.ShardIndex > opts.ShardCount) {
		return nil, fmt.Errorf("core: shard index %d out of range 1..%d", opts.ShardIndex, opts.ShardCount)
	}
	// Selecting the simulator explicitly is the classic path: normalize
	// it to nil so keys, labels, and bytes are identical either way.
	if _, isSim := opts.Backend.(harness.SimBackend); isSim {
		opts.Backend = nil
	}
	sweepStart := time.Now()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	records := make([]Record, len(specs))
	preps := make([]kernelPrep, len(specs))
	var jobs []job
	for i, spec := range specs {
		records[i] = Record{Spec: spec}
		jobs = append(jobs, job{spec: i, cell: jobStatic})
		n := 0
		for _, arch := range archs {
			if !spec.Fits(arch) {
				continue
			}
			if n == 0 {
				preps[i].ref = arch
			}
			for _, cache := range []bool{true, false} {
				jobs = append(jobs, job{spec: i, cell: n, arch: arch, cache: cache})
				n++
			}
		}
		records[i].Cells = make([]ArchRun, n)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var failed atomic.Bool
	var done, skipped atomic.Int64
	total := len(jobs)
	progress := func() {
		if opts.Progress != nil {
			opts.Progress(int(done.Load()), int(skipped.Load()), total)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for j := range idx {
				if !opts.ownsJob(j) {
					// A foreign shard's job: skipped with no error, so
					// this shard's bundle carries exactly its own cells
					// and a healthy shard run exits clean.
					commitSkip(records, &jobs[j], nil)
					skipped.Add(1)
					progress()
					continue
				}
				if (opts.FailFast && failed.Load()) || ctx.Err() != nil {
					commitSkip(records, &jobs[j], ctx.Err())
					skipped.Add(1)
					progress()
					continue
				}
				spec := records[jobs[j].spec].Spec
				var cb cellBackend
				if jobs[j].cell != jobStatic {
					cb = resolveCellBackend(opts.Backend, spec.Name, jobs[j].arch.Name, jobs[j].cache)
				}
				if opts.CellCache != nil {
					if res, hit := loadCachedJob(opts.CellCache, spec, &jobs[j], cb); hit {
						commit(records, &jobs[j], res, CellOK, nil)
						ctrCellsCached.Inc()
						done.Add(1)
						progress()
						continue
					}
				}
				traced := obs.TraceEnabled()
				start := time.Now()
				res, status, err := executeJob(ctx, spec, &jobs[j], &preps[jobs[j].spec], opts.CellTimeout, opts.CellCache, opts.Backend)
				if traced {
					recordJobSpan(&jobs[j], records, start, sweepStart, lane, status)
				}
				if status != CellSkipped {
					ctrCellsComputed.Inc()
				}
				if status == CellOK && opts.CellCache != nil {
					storeCachedJob(opts.CellCache, spec, &jobs[j], cb, res)
				}
				commit(records, &jobs[j], res, status, err)
				if status == CellSkipped {
					// Canceled mid-job: the result (if any ever comes)
					// is discarded; account it with the other skips.
					skipped.Add(1)
					progress()
					continue
				}
				if err != nil {
					jobs[j].err = cellError(spec, &jobs[j], status, err)
					ctrCellsFailed.Inc()
					failed.Store(true)
				}
				done.Add(1)
				progress()
			}
		}(w + 1)
	}
	for j := range jobs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	if obs.TraceEnabled() {
		obs.RecordSpan(obs.SpanSweep, sweepStart, time.Now(), 0,
			obs.Arg{Key: "kernels", Val: fmt.Sprint(len(specs))},
			obs.Arg{Key: "jobs", Val: fmt.Sprint(total)},
			obs.Arg{Key: "workers", Val: fmt.Sprint(workers)},
			obs.Arg{Key: "failed", Val: fmt.Sprint(countFailedJobs(jobs))},
			obs.Arg{Key: "skipped", Val: fmt.Sprint(skipped.Load())})
	}

	// Aggregate every distinct failure once, in serial job order, so the
	// error a caller sees does not depend on worker scheduling; a
	// canceled sweep also carries ctx.Err() so errors.Is(err,
	// context.Canceled) holds.
	var errs []error
	for _, j := range jobs {
		if j.err != nil {
			errs = append(errs, j.err)
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		errs = append(errs, cerr)
	}
	return records, errors.Join(errs...)
}

// countFailedJobs counts jobs that recorded a failure.
func countFailedJobs(jobs []job) int {
	n := 0
	for _, j := range jobs {
		if j.err != nil {
			n++
		}
	}
	return n
}

// cellError wraps a job failure with its full provenance.
func cellError(spec Spec, j *job, status CellStatus, err error) *CellError {
	ce := &CellError{Kernel: spec.Name, Stage: StageCell, Status: status, Err: err}
	if j.cell == jobStatic {
		ce.Stage = StageStatic
	} else {
		ce.Arch = j.arch.Name
		ce.Cache = j.cache
	}
	return ce
}

// jobResult is the computed output of one job, built entirely on the
// goroutine that ran the kernel and committed to the records slice only
// by the worker that owns the job — never by a (possibly abandoned)
// watchdog child — so a timed-out computation cannot race the assembly.
type jobResult struct {
	static   profile.Counts
	flash    int
	run      ArchRun
	counts   profile.Counts // reference-cell dynamic mix
	valid    bool
	validE   error
	prepName string // the prepared problem's name (trace-synthesis seed)
}

// executeJob runs one job with panic isolation and, when timeout > 0,
// a watchdog: the computation moves to a child goroutine and the worker
// waits for its result, the deadline, or cancellation — whichever is
// first. The returned status classifies the outcome; err is nil exactly
// when status is CellOK.
func executeJob(ctx context.Context, spec Spec, j *job, prep *kernelPrep, timeout time.Duration, cc CellCache, be harness.Backend) (jobResult, CellStatus, error) {
	if timeout <= 0 {
		res, err := computeJob(ctx, spec, j, prep, cc, be)
		return classify(ctx, res, err)
	}
	type outcome struct {
		res jobResult
		err error
	}
	// Buffered so an abandoned computation's send never blocks: the
	// child exits (or keeps hanging in the kernel) without holding the
	// channel, and its late result is garbage-collected with it.
	ch := make(chan outcome, 1)
	go func() {
		res, err := computeJob(ctx, spec, j, prep, cc, be)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return classify(ctx, o.res, o.err)
	case <-timer.C:
		ctrCellsTimedOut.Inc()
		return jobResult{}, CellTimedOut, fmt.Errorf("core: watchdog: no result after %v", timeout)
	case <-ctx.Done():
		return jobResult{}, CellSkipped, ctx.Err()
	}
}

// classify maps a computation's error to its cell status, bumping the
// panic counter for recovered panics. A job the harness abandoned
// because the sweep context was canceled is a skip, not a kernel
// failure — but only when the context really is canceled, so a kernel
// error that merely wraps context.Canceled still counts as its own.
func classify(ctx context.Context, res jobResult, err error) (jobResult, CellStatus, error) {
	switch {
	case err == nil:
		return res, CellOK, nil
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		return res, CellSkipped, err
	case isPanic(err):
		ctrPanicsRecovered.Inc()
		return res, CellPanicked, err
	default:
		return res, CellFailed, err
	}
}

// isPanic reports whether err carries a recovered panic.
func isPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// computeJob executes one sweep job and returns its result without
// touching shared state. A panicking kernel — a mat shape mismatch, a
// buggy user kernel registered via core.Register — is recovered here
// (or inside the shared prepare) and converted into a PanicError
// carrying the captured stack. Cell jobs share one kernel execution
// through prep and only run the arch-specific modeling themselves.
func computeJob(ctx context.Context, spec Spec, j *job, prep *kernelPrep, cc CellCache, be harness.Backend) (res jobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if j.cell == jobStatic {
		sf := spec.StaticFactory
		if sf == nil {
			sf = spec.Factory
		}
		sp := sf()
		if err := sp.Setup(); err != nil {
			return res, fmt.Errorf("core: static setup %s: %w", spec.Name, err)
		}
		res.static = compressStatic(profile.Collect(sp.Solve))
		res.flash = mcu.FlashBytes(res.static)
		return res, nil
	}
	pp, err := prep.get(ctx, spec, cc, be)
	if err != nil {
		return res, fmt.Errorf("core: run %s on %s: %w", spec.Name, j.arch.Name, err)
	}
	cfg := harness.DefaultConfig()
	cfg.CacheOn = j.cache
	cb := resolveCellBackend(be, spec.Name, j.arch.Name, j.cache)
	r, err := pp.MeasureOnBackend(j.arch, spec.Prec, cfg, cb.be)
	if err != nil {
		return res, fmt.Errorf("core: run %s on %s: %w", spec.Name, j.arch.Name, err)
	}
	res.run = ArchRun{Arch: j.arch, CacheOn: j.cache, Model: r.Model, Meas: r.Measured,
		Backend: cb.name, Source: cb.source}
	res.counts, res.valid, res.validE = r.Counts, r.Valid, r.ValidErr
	res.prepName = r.Kernel
	return res, nil
}

// loadCachedJob consults the cell cache for one job and, on a hit,
// rebuilds the exact jobResult the execution would have produced —
// including the arch-independent dynamic mix and validation verdict, so
// a cached reference cell still populates the record-level fields. The
// provenance labels come from the cell's resolved backend, never from
// the cached payload: a cell cached by a classic sweep and loaded by a
// backend-aware one (or vice versa) re-derives the labels this sweep
// would assign.
func loadCachedJob(cc CellCache, spec Spec, j *job, cb cellBackend) (jobResult, bool) {
	var res jobResult
	if j.cell == jobStatic {
		sr, ok := cc.LoadStatic(spec)
		if !ok {
			return res, false
		}
		res.static, res.flash = sr.Static, sr.Flash
		return res, true
	}
	mr, ok := cc.LoadCell(spec, j.arch, j.cache, cb.salt)
	if !ok {
		return res, false
	}
	res.run = ArchRun{Arch: j.arch, CacheOn: j.cache, Model: mr.Model, Meas: mr.Meas,
		Backend: cb.name, Source: cb.source}
	res.counts, res.valid = mr.Counts, mr.Valid
	if mr.ValidErr != "" {
		res.validE = errors.New(mr.ValidErr)
	}
	return res, true
}

// storeCachedJob offers one healthy (CellOK) job result to the cell
// cache under the cell's backend salt. Only healthy results reach here,
// so the cache never learns a partial or failed cell.
func storeCachedJob(cc CellCache, spec Spec, j *job, cb cellBackend, res jobResult) {
	if j.cell == jobStatic {
		cc.StoreStatic(spec, StaticCellResult{Static: res.static, Flash: res.flash})
		return
	}
	mr := MeasuredCellResult{Model: res.run.Model, Meas: res.run.Meas, Counts: res.counts, Name: res.prepName, Valid: res.valid}
	if res.validE != nil {
		mr.ValidErr = res.validE.Error()
	}
	cc.StoreCell(spec, j.arch, j.cache, cb.salt, mr)
}

// commit writes a job's outcome into its pre-assigned record slot. Only
// pool workers call it, one per job, so slots are written exactly once.
func commit(records []Record, j *job, res jobResult, status CellStatus, err error) {
	rec := &records[j.spec]
	if j.cell == jobStatic {
		rec.StaticStatus = status
		if status == CellOK {
			rec.Static, rec.Flash = res.static, res.flash
		} else {
			rec.StaticErr = err
		}
		return
	}
	if status != CellOK {
		rec.Cells[j.cell] = ArchRun{Arch: j.arch, CacheOn: j.cache, Status: status, Err: err}
		return
	}
	rec.Cells[j.cell] = res.run
	if j.cell == 0 {
		// Reference cell: the first (arch, cache-on) run supplies the
		// record-level dynamic mix and validation verdict. Counts and
		// validity are arch-independent (the profiler counts the same
		// deterministic Solve), so any cell would agree; designating one
		// removes the historical last-write-wins ambiguity.
		rec.Dynamic, rec.Valid, rec.ValidE = res.counts, res.valid, res.validE
	}
}

// commitSkip marks a never-started job's slot as skipped; cause is the
// context error when cancellation (rather than fail-fast) skipped it.
func commitSkip(records []Record, j *job, cause error) {
	rec := &records[j.spec]
	if j.cell == jobStatic {
		rec.StaticStatus = CellSkipped
		rec.StaticErr = cause
		return
	}
	rec.Cells[j.cell] = ArchRun{Arch: j.arch, CacheOn: j.cache, Status: CellSkipped, Err: cause}
}

// recordJobSpan emits the sweep.static / sweep.cell span of one
// executed job on the given worker lane. Queue wait is the time the job
// sat ready before pickup: all jobs exist when the sweep starts, so it
// is measured from the sweep start to the job's execution start.
func recordJobSpan(j *job, records []Record, start, sweepStart time.Time, lane int, status CellStatus) {
	end := time.Now()
	queueUS := fmt.Sprintf("%.1f", float64(start.Sub(sweepStart).Microseconds()))
	kernel := records[j.spec].Spec.Name
	args := []obs.Arg{
		{Key: "kernel", Val: kernel},
	}
	if j.cell != jobStatic {
		cache := "off"
		if j.cache {
			cache = "on"
		}
		args = append(args,
			obs.Arg{Key: "arch", Val: j.arch.Name},
			obs.Arg{Key: "cache", Val: cache})
	}
	args = append(args, obs.Arg{Key: "queue_wait_us", Val: queueUS})
	if status != CellOK {
		args = append(args, obs.Arg{Key: "status", Val: status.String()})
	}
	name := obs.SpanSweepCell
	if j.cell == jobStatic {
		name = obs.SpanSweepStatic
	}
	obs.RecordSpan(name, start, end, lane, args...)
}
