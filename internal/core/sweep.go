package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Parallel characterization engine. The (kernel × arch × cache) cells
// of the Table III/IV sweep are independent — every job builds its own
// problem instance from the spec factory, all dataset generators seed
// local RNGs, and the profiler records into goroutine-scoped sessions —
// so the sweep fans out across a bounded worker pool. Each *cell* stays
// a single goroutine (a simulated MCU is single-core; its ROI must not
// be split), so the parallelism is across cells only.
//
// Determinism: every job writes into a pre-assigned slot of the
// pre-sized records slice, so the assembled output is identical — byte
// for byte once rendered — for any worker count, including 1.
//
// Observability: when a trace is active (obs.StartTrace) every job
// emits an obs span — sweep.static or sweep.cell — on its worker's lane
// with the kernel/arch/cache identity and its queue wait (time between
// sweep start, when all jobs are ready, and job pickup); the whole call
// emits one sweep span on lane 0. Tracing off costs one atomic load per
// job. SweepOptions.Progress, when set, is invoked after every finished
// job; docs/observability.md is the reference for the span vocabulary.

// jobStatic marks a job as the per-kernel static-proxy run rather than
// an (arch, cache) measurement cell.
const jobStatic = -1

// job is one unit of sweep work: either the static-proxy run of a
// kernel (cell == jobStatic) or one (arch, cache) measurement cell.
type job struct {
	spec  int // index into the records slice
	cell  int // index into Records[spec].Cells, or jobStatic
	arch  mcu.Arch
	cache bool
	err   error
}

// SweepOptions configures a characterization sweep beyond the specs and
// architectures themselves. The zero value is the default sweep.
type SweepOptions struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0). The
	// worker count never changes the assembled records.
	Workers int
	// Progress, when non-nil, is called after every finished job with
	// the number of completed jobs and the total. It is invoked
	// concurrently from pool workers and must be goroutine-safe
	// ((*obs.Progress).Update qualifies).
	Progress func(done, total int)
}

// CharacterizeSuite characterizes specs across archs using a bounded
// worker pool and returns one Record per spec, in specs order, with
// cells in the serial (arch-major, cache on/off) order. workers <= 0
// means runtime.GOMAXPROCS(0). Output is identical for every worker
// count.
//
// On failure the records are returned as far as they were assembled,
// alongside the error of the earliest job (in serial execution order)
// that failed; remaining jobs are abandoned best-effort.
func CharacterizeSuite(specs []Spec, archs []mcu.Arch, workers int) ([]Record, error) {
	return CharacterizeSuiteOpts(specs, archs, SweepOptions{Workers: workers})
}

// CharacterizeSuiteOpts is CharacterizeSuite with full sweep options.
func CharacterizeSuiteOpts(specs []Spec, archs []mcu.Arch, opts SweepOptions) ([]Record, error) {
	sweepStart := time.Now()
	records := make([]Record, len(specs))
	var jobs []job
	for i, spec := range specs {
		records[i] = Record{Spec: spec}
		jobs = append(jobs, job{spec: i, cell: jobStatic})
		n := 0
		for _, arch := range archs {
			if !spec.Fits(arch) {
				continue
			}
			for _, cache := range []bool{true, false} {
				jobs = append(jobs, job{spec: i, cell: n, arch: arch, cache: cache})
				n++
			}
		}
		records[i].Cells = make([]ArchRun, n)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var failed atomic.Bool
	var done atomic.Int64
	total := len(jobs)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for j := range idx {
				if failed.Load() {
					continue // fail fast; abandoned jobs keep err == nil
				}
				if obs.TraceEnabled() {
					start := time.Now()
					err := runJob(records, &jobs[j])
					recordJobSpan(&jobs[j], records, start, sweepStart, lane)
					if err != nil {
						jobs[j].err = err
						failed.Store(true)
					}
				} else if err := runJob(records, &jobs[j]); err != nil {
					jobs[j].err = err
					failed.Store(true)
				}
				if opts.Progress != nil {
					opts.Progress(int(done.Add(1)), total)
				} else {
					done.Add(1)
				}
			}
		}(w + 1)
	}
	for j := range jobs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	if obs.TraceEnabled() {
		obs.RecordSpan(obs.SpanSweep, sweepStart, time.Now(), 0,
			obs.Arg{Key: "kernels", Val: fmt.Sprint(len(specs))},
			obs.Arg{Key: "jobs", Val: fmt.Sprint(total)},
			obs.Arg{Key: "workers", Val: fmt.Sprint(workers)})
	}

	// Report the earliest failure in serial job order so the error a
	// caller sees does not depend on worker scheduling.
	for _, j := range jobs {
		if j.err != nil {
			return records, j.err
		}
	}
	return records, nil
}

// recordJobSpan emits the sweep.static / sweep.cell span of one
// executed job on the given worker lane. Queue wait is the time the job
// sat ready before pickup: all jobs exist when the sweep starts, so it
// is measured from the sweep start to the job's execution start.
func recordJobSpan(j *job, records []Record, start, sweepStart time.Time, lane int) {
	end := time.Now()
	queueUS := fmt.Sprintf("%.1f", float64(start.Sub(sweepStart).Microseconds()))
	kernel := records[j.spec].Spec.Name
	if j.cell == jobStatic {
		obs.RecordSpan(obs.SpanSweepStatic, start, end, lane,
			obs.Arg{Key: "kernel", Val: kernel},
			obs.Arg{Key: "queue_wait_us", Val: queueUS})
		return
	}
	cache := "off"
	if j.cache {
		cache = "on"
	}
	obs.RecordSpan(obs.SpanSweepCell, start, end, lane,
		obs.Arg{Key: "kernel", Val: kernel},
		obs.Arg{Key: "arch", Val: j.arch.Name},
		obs.Arg{Key: "cache", Val: cache},
		obs.Arg{Key: "queue_wait_us", Val: queueUS})
}

// runJob executes one sweep job and writes its pre-assigned slot.
func runJob(records []Record, j *job) error {
	rec := &records[j.spec]
	spec := rec.Spec
	if j.cell == jobStatic {
		sf := spec.StaticFactory
		if sf == nil {
			sf = spec.Factory
		}
		sp := sf()
		if err := sp.Setup(); err != nil {
			return fmt.Errorf("core: static setup %s: %w", spec.Name, err)
		}
		rec.Static = compressStatic(profile.Collect(sp.Solve))
		rec.Flash = mcu.FlashBytes(rec.Static)
		return nil
	}
	cfg := harness.DefaultConfig()
	cfg.CacheOn = j.cache
	res, err := harness.Run(spec.Factory(), j.arch, spec.Prec, cfg)
	if err != nil {
		return fmt.Errorf("core: run %s on %s: %w", spec.Name, j.arch.Name, err)
	}
	rec.Cells[j.cell] = ArchRun{Arch: j.arch, CacheOn: j.cache, Model: res.Model, Meas: res.Measured}
	if j.cell == 0 {
		// Reference cell: the first (arch, cache-on) run supplies the
		// record-level dynamic mix and validation verdict. Counts and
		// validity are arch-independent (the profiler counts the same
		// deterministic Solve), so any cell would agree; designating one
		// removes the historical last-write-wins ambiguity.
		rec.Dynamic = res.Counts
		rec.Valid = res.Valid
		rec.ValidE = res.ValidErr
	}
	return nil
}
