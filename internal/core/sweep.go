package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
)

// Parallel characterization engine. The (kernel × arch × cache) cells
// of the Table III/IV sweep are independent — every job builds its own
// problem instance from the spec factory, all dataset generators seed
// local RNGs, and the profiler records into goroutine-scoped sessions —
// so the sweep fans out across a bounded worker pool. Each *cell* stays
// a single goroutine (a simulated MCU is single-core; its ROI must not
// be split), so the parallelism is across cells only.
//
// Determinism: every job writes into a pre-assigned slot of the
// pre-sized records slice, so the assembled output is identical — byte
// for byte once rendered — for any worker count, including 1.

// jobStatic marks a job as the per-kernel static-proxy run rather than
// an (arch, cache) measurement cell.
const jobStatic = -1

// job is one unit of sweep work: either the static-proxy run of a
// kernel (cell == jobStatic) or one (arch, cache) measurement cell.
type job struct {
	spec  int // index into the records slice
	cell  int // index into Records[spec].Cells, or jobStatic
	arch  mcu.Arch
	cache bool
	err   error
}

// CharacterizeSuite characterizes specs across archs using a bounded
// worker pool and returns one Record per spec, in specs order, with
// cells in the serial (arch-major, cache on/off) order. workers <= 0
// means runtime.GOMAXPROCS(0). Output is identical for every worker
// count.
//
// On failure the records are returned as far as they were assembled,
// alongside the error of the earliest job (in serial execution order)
// that failed; remaining jobs are abandoned best-effort.
func CharacterizeSuite(specs []Spec, archs []mcu.Arch, workers int) ([]Record, error) {
	records := make([]Record, len(specs))
	var jobs []job
	for i, spec := range specs {
		records[i] = Record{Spec: spec}
		jobs = append(jobs, job{spec: i, cell: jobStatic})
		n := 0
		for _, arch := range archs {
			if spec.M7Only && arch.Name != "M7" {
				continue
			}
			for _, cache := range []bool{true, false} {
				jobs = append(jobs, job{spec: i, cell: n, arch: arch, cache: cache})
				n++
			}
		}
		records[i].Cells = make([]ArchRun, n)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				if failed.Load() {
					continue // fail fast; abandoned jobs keep err == nil
				}
				if err := runJob(records, &jobs[j]); err != nil {
					jobs[j].err = err
					failed.Store(true)
				}
			}
		}()
	}
	for j := range jobs {
		idx <- j
	}
	close(idx)
	wg.Wait()

	// Report the earliest failure in serial job order so the error a
	// caller sees does not depend on worker scheduling.
	for _, j := range jobs {
		if j.err != nil {
			return records, j.err
		}
	}
	return records, nil
}

// runJob executes one sweep job and writes its pre-assigned slot.
func runJob(records []Record, j *job) error {
	rec := &records[j.spec]
	spec := rec.Spec
	if j.cell == jobStatic {
		sf := spec.StaticFactory
		if sf == nil {
			sf = spec.Factory
		}
		sp := sf()
		if err := sp.Setup(); err != nil {
			return fmt.Errorf("core: static setup %s: %w", spec.Name, err)
		}
		rec.Static = compressStatic(profile.Collect(sp.Solve))
		rec.Flash = mcu.FlashBytes(rec.Static)
		return nil
	}
	cfg := harness.DefaultConfig()
	cfg.CacheOn = j.cache
	res, err := harness.Run(spec.Factory(), j.arch, spec.Prec, cfg)
	if err != nil {
		return fmt.Errorf("core: run %s on %s: %w", spec.Name, j.arch.Name, err)
	}
	rec.Cells[j.cell] = ArchRun{Arch: j.arch, CacheOn: j.cache, Model: res.Model, Meas: res.Measured}
	if j.cell == 0 {
		// Reference cell: the first (arch, cache-on) run supplies the
		// record-level dynamic mix and validation verdict. Counts and
		// validity are arch-independent (the profiler counts the same
		// deterministic Solve), so any cell would agree; designating one
		// removes the historical last-write-wins ambiguity.
		rec.Dynamic = res.Counts
		rec.Valid = res.Valid
		rec.ValidE = res.ValidErr
	}
	return nil
}
