package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/obs"
)

// One kernel across the Table IV set: 1 static job + 3 archs × 2 cache
// settings = 7 jobs. The sweep must report progress for every job and,
// under an active trace, emit one span per job plus the enclosing sweep
// span, each carrying its identity args.
func TestSweepProgressAndSpans(t *testing.T) {
	spec, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("madgwick missing from suite")
	}

	var mu sync.Mutex
	var dones []int
	gotTotal := 0
	obs.StartTrace()
	_, err := core.CharacterizeSuiteOpts([]core.Spec{spec}, mcu.TableIVSet(), core.SweepOptions{
		Workers: 2,
		Progress: func(done, skipped, total int) {
			mu.Lock()
			dones = append(dones, done)
			gotTotal = total
			if skipped != 0 {
				t.Errorf("clean sweep reported %d skipped jobs", skipped)
			}
			mu.Unlock()
		},
	})
	tr := obs.StopTrace()
	if err != nil {
		t.Fatal(err)
	}

	const wantJobs = 1 + 3*2
	if len(dones) != wantJobs || gotTotal != wantJobs {
		t.Fatalf("progress: %d calls, total %d; want %d and %d", len(dones), gotTotal, wantJobs, wantJobs)
	}
	max := 0
	for _, d := range dones {
		if d > max {
			max = d
		}
	}
	if max != wantJobs {
		t.Fatalf("progress never reached %d/%d (max %d)", wantJobs, wantJobs, max)
	}

	counts := map[string]int{}
	for _, s := range tr.Spans {
		counts[s.Name]++
		args := map[string]string{}
		for _, a := range s.Args {
			args[a.Key] = a.Val
		}
		switch s.Name {
		case obs.SpanSweepCell:
			if args["kernel"] != "madgwick" {
				t.Errorf("cell kernel = %q", args["kernel"])
			}
			if args["arch"] == "" || (args["cache"] != "on" && args["cache"] != "off") {
				t.Errorf("cell args incomplete: %v", args)
			}
			if args["queue_wait_us"] == "" {
				t.Errorf("cell missing queue_wait_us: %v", args)
			}
			if s.TID < 1 || s.TID > 2 {
				t.Errorf("cell on lane %d, want a worker lane 1..2", s.TID)
			}
		case obs.SpanSweepStatic:
			if args["kernel"] != "madgwick" || args["queue_wait_us"] == "" {
				t.Errorf("static args incomplete: %v", args)
			}
		case obs.SpanSweep:
			if args["jobs"] != "7" || args["workers"] != "2" || args["kernels"] != "1" {
				t.Errorf("sweep args = %v", args)
			}
			if s.TID != 0 {
				t.Errorf("sweep span on lane %d, want 0", s.TID)
			}
		}
	}
	if counts[obs.SpanSweep] != 1 || counts[obs.SpanSweepStatic] != 1 || counts[obs.SpanSweepCell] != 6 {
		t.Fatalf("span counts = %v, want 1 sweep, 1 static, 6 cells", counts)
	}
}

// Tracing off must not change results — the instrumented paths are
// gated, and this pins that a plain sweep still works with a progress
// hook alone.
func TestSweepProgressWithoutTrace(t *testing.T) {
	spec, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("madgwick missing from suite")
	}
	calls := 0
	recs, err := core.CharacterizeSuiteOpts([]core.Spec{spec}, mcu.TableIVSet(), core.SweepOptions{
		Workers:  1,
		Progress: func(done, skipped, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("progress calls = %d, want 7", calls)
	}
	if len(recs) != 1 || !recs[0].Valid {
		t.Fatalf("record invalid: %+v", recs[0].ValidE)
	}
}
