package core

import (
	"testing"

	"repro/internal/profile"
)

// compressStatic feeds Table III and the flash proxy, so its outputs
// are pinned: a change here silently shifts every static metric in the
// report. The values are math.Pow(x, 0.62) truncated, per class.
func TestCompressStaticPinned(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{2, 1}, // sub-1 results clamp to 1 for any nonzero input
		{100, 17},
		{12345, 344},
		{1000000, 5248},
		{98765432, 90501},
		{1 << 40, 29210829},
	}
	for _, c := range cases {
		in := profile.Counts{F: c.in, I: c.in, M: c.in, B: c.in}
		got := compressStatic(in)
		want := profile.Counts{F: c.want, I: c.want, M: c.want, B: c.want}
		if got != want {
			t.Errorf("compressStatic(%d) = %+v, want %d per class", c.in, got, c.want)
		}
	}
	// Classes compress independently.
	mixed := compressStatic(profile.Counts{F: 100, I: 12345, M: 0, B: 1000000})
	if (mixed != profile.Counts{F: 17, I: 344, M: 0, B: 5248}) {
		t.Errorf("mixed compressStatic = %+v", mixed)
	}
	// Monotone in the input: the cross-kernel size ordering survives.
	if compressStatic(profile.Counts{F: 500}).F >= compressStatic(profile.Counts{F: 50000}).F {
		t.Error("compressStatic not monotone")
	}
}
