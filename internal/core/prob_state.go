package core

import (
	"errors"
	"fmt"

	"repro/internal/attitude"
	"repro/internal/dataset"
	"repro/internal/ekf"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/imu"
	"repro/internal/mat"
	"repro/internal/mcu"
	"repro/internal/pose"
	"repro/internal/scalar"
)

// F32 is the canonical build precision of the suite.
type F32 = scalar.F32

func estimationSpecs() []Spec {
	specs := []Spec{
		{
			Name: "mahony", Stage: Estimation, Category: "Att. Est.", Dataset: "bee-synth",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newAttitudeProblem("mahony", attitude.IMUOnly) },
		},
		{
			Name: "madgwick", Stage: Estimation, Category: "Att. Est.", Dataset: "bee-synth",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newAttitudeProblem("madgwick", attitude.IMUOnly) },
		},
		{
			Name: "fourati", Stage: Estimation, Category: "Att. Est.", Dataset: "bee-synth",
			Prec:    mcu.PrecF32,
			Factory: func() harness.Problem { return newAttitudeProblem("fourati", attitude.MARG) },
		},
		{
			Name: "fly-ekf (sync)", Stage: Estimation, Category: "Kalman Filt.", Dataset: "fly-synth",
			Prec: mcu.PrecF32, FLOPs: ekf.FlyEKFFLOPs,
			Factory: func() harness.Problem { return newFlyEKFProblem(ekf.Sync) },
		},
		{
			Name: "fly-ekf (seq)", Stage: Estimation, Category: "Kalman Filt.", Dataset: "fly-synth",
			Prec: mcu.PrecF32, FLOPs: ekf.FlyEKFFLOPs,
			Factory: func() harness.Problem { return newFlyEKFProblem(ekf.Sequential) },
		},
		{
			Name: "fly-ekf (trunc)", Stage: Estimation, Category: "Kalman Filt.", Dataset: "fly-synth",
			Prec: mcu.PrecF32, FLOPs: ekf.FlyEKFTruncFLOPs,
			Factory: func() harness.Problem { return newFlyEKFProblem(ekf.Truncated) },
		},
		{
			Name: "bee-ceekf", Stage: Estimation, Category: "Kalman Filt.", Dataset: "bee-hil",
			Prec: mcu.PrecF32, FLOPs: ekf.BeeCEEKFFLOPs,
			Factory: func() harness.Problem { return newBeeEKFProblem() },
		},
	}
	specs = append(specs, poseSpecs()...)
	return specs
}

func poseSpecs() []Spec {
	abs := func(name, cat, ds string, solve func(*posedProblem)) Spec {
		return Spec{
			Name: name, Stage: Estimation, Category: cat, Dataset: ds, Prec: mcu.PrecF32,
			Factory: func() harness.Problem { return newPoseProblem(name, solve) },
		}
	}
	return []Spec{
		abs("p3p", "Abs. Pose", "abs-synth", solveP3P),
		abs("up2p", "Abs. Pose", "up-abs-synth", solveUP2P),
		abs("dlt", "Abs. Pose", "abs-synth", solveDLT),
		abs("absgoldstd", "Abs. Pose", "abs-synth", solveAbsGold),
		abs("up2pt", "Rel. Pose", "str-rel-synth", solveUP2PT),
		abs("up3pt", "Rel. Pose", "str-rel-synth", solveUP3PT),
		abs("u3pt", "Rel. Pose", "upr-rel-synth", solveU3PT),
		abs("5pt", "Rel. Pose", "rel-synth", solve5pt),
		abs("8pt", "Rel. Pose", "rel-synth", solve8pt),
		abs("relgoldstd", "Rel. Pose", "rel-synth", solveRelGold),
		abs("homography", "Abs./Rel. Pose", "homog-synth", solveHomog),
		abs("abs-lo-ransac", "Robust Pose", "rob-abs-synth", solveAbsRansac),
		abs("rel-lo-ransac", "Robust Pose", "rob-rel-synth", solveRelRansac),
	}
}

// --- attitude ---

type attitudeProblem struct {
	kernel string
	mode   attitude.Mode
	recs   []imu.Record
	filter attitude.Filter[F32]
	idx    int
}

func newAttitudeProblem(kernel string, mode attitude.Mode) *attitudeProblem {
	return &attitudeProblem{kernel: kernel, mode: mode}
}

// NewAttitudeProblem exposes the wrapper for the case studies.
func NewAttitudeProblem(kernel string, mode attitude.Mode) harness.Problem {
	return newAttitudeProblem(kernel, mode)
}

func (p *attitudeProblem) Name() string    { return p.kernel }
func (p *attitudeProblem) Dataset() string { return "bee-synth" }

func (p *attitudeProblem) Setup() error {
	p.recs = imu.Simulate(imu.HoverTrajectory(0.12, 0.1, 2), 2.0, 400, imu.DefaultNoise(), 303)
	switch p.kernel {
	case "mahony":
		p.filter = attitude.NewMahony(F32(0), p.mode, 2.0, 0.02)
	case "madgwick":
		p.filter = attitude.NewMadgwick(F32(0), p.mode, 0.12)
	default:
		p.filter = attitude.NewFourati(F32(0), 0.8, 1e-3)
	}
	p.idx = 0
	return nil
}

// Solve is one filter update — the high-rate proprioceptive kernel.
func (p *attitudeProblem) Solve() {
	r := p.recs[p.idx%len(p.recs)]
	p.idx++
	p.filter.Update(imu.SampleAs(F32(0), r))
}

func (p *attitudeProblem) Validate() error {
	if p.idx < 10 {
		return nil // too few updates to judge convergence
	}
	r := p.recs[(p.idx-1)%len(p.recs)]
	q := p.filter.Quat()
	est := geom.QuatFromFloats(scalar.F64(0), q.W.Float(), q.X.Float(), q.Y.Float(), q.Z.Float())
	if e := geom.QuatAngleDegrees(est, r.Truth); e > 15 {
		return fmt.Errorf("%s attitude error %.1f°", p.kernel, e)
	}
	return nil
}

// --- EKFs ---

type flyEKFProblem struct {
	strategy ekf.Strategy
	filter   *ekf.FlyEKF[F32]
	idx      int
	// Prerecorded sensor stream.
	omega, az, tof, flowv, acc []float32
	truthZ                     []float64
}

func newFlyEKFProblem(s ekf.Strategy) *flyEKFProblem { return &flyEKFProblem{strategy: s} }

// NewFlyEKFProblem exposes the wrapper for the case studies.
func NewFlyEKFProblem(s ekf.Strategy) harness.Problem { return newFlyEKFProblem(s) }

func (p *flyEKFProblem) Name() string    { return "fly-ekf (" + p.strategy.String() + ")" }
func (p *flyEKFProblem) Dataset() string { return "fly-synth" }

func (p *flyEKFProblem) Setup() error {
	p.filter = ekf.NewFlyEKF(F32(0), p.strategy, ekf.DefaultFlyEKFConfig(), 0.5)
	// Deterministic hover-bob stream (mirrors the ekf tests' simulator).
	n := 512
	p.omega = make([]float32, n)
	p.az = make([]float32, n)
	p.tof = make([]float32, n)
	p.flowv = make([]float32, n)
	p.acc = make([]float32, n)
	p.truthZ = make([]float64, n)
	theta, vx, z, vz := 0.0, 0.0, 0.5, 0.0
	dt := 0.002
	rng := int64(12345)
	noise := func(s float64) float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (float64(uint64(rng)>>11)/float64(1<<53) - 0.5) * 2 * s
	}
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		om := 0.4 * cosApprox(2*3.14159265*1.5*t)
		azv := 9.80665 + 0.3*sinApprox(2*3.14159265*0.8*t)
		theta += om * dt
		vx += (9.80665*theta - 0.5*vx) * dt
		z += vz * dt
		vz += (azv - 9.80665) * dt
		p.omega[i] = float32(om + noise(0.002))
		p.az[i] = float32(azv + noise(0.05))
		p.tof[i] = float32(z/cosApprox(theta) + noise(0.005))
		p.flowv[i] = float32(vx/z + noise(0.02))
		p.acc[i] = float32(9.80665*theta + noise(0.1))
		p.truthZ[i] = z
	}
	p.idx = 0
	return nil
}

func sinApprox(x float64) float64 { return scalar.Sin(scalar.F64(x)).Float() }
func cosApprox(x float64) float64 { return scalar.Cos(scalar.F64(x)).Float() }

// Solve is one fully fused epoch: predict plus all three sensor
// updates, matching Table VIII's "per update" accounting (the claimed
// FLOP counts are for the fused update).
func (p *flyEKFProblem) Solve() {
	i := p.idx % len(p.omega)
	p.idx++
	tof := F32(p.tof[i])
	flowv := F32(p.flowv[i])
	acc := F32(p.acc[i])
	_ = p.filter.Step(F32(p.omega[i]), F32(p.az[i]), F32(0.002), &tof, &flowv, &acc)
}

func (p *flyEKFProblem) Validate() error {
	if p.idx < 50 {
		return nil
	}
	i := (p.idx - 1) % len(p.omega)
	_, _, z, _ := p.filter.State()
	if e := abs(z - p.truthZ[i]); e > 0.1 {
		return fmt.Errorf("fly-ekf altitude error %.3f m", e)
	}
	return nil
}

type beeEKFProblem struct {
	filter *ekf.BeeCEEKF[F32]
	idx    int
	az     []float32
	tof    []float32
	truthZ []float64
}

func newBeeEKFProblem() *beeEKFProblem { return &beeEKFProblem{} }

// NewBeeEKFProblem exposes the wrapper for the case studies.
func NewBeeEKFProblem() harness.Problem { return newBeeEKFProblem() }

func (p *beeEKFProblem) Name() string    { return "bee-ceekf" }
func (p *beeEKFProblem) Dataset() string { return "bee-hil" }

func (p *beeEKFProblem) Setup() error {
	p.filter = ekf.NewBeeCEEKF(F32(0), ekf.Sync, ekf.DefaultBeeCEEKFConfig())
	n := 512
	p.az = make([]float32, n)
	p.tof = make([]float32, n)
	p.truthZ = make([]float64, n)
	z, vz := 0.0, 0.0
	dt := 0.004
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		azv := 9.80665 + 0.5*sinApprox(2*3.14159265*0.7*t)
		vz += (azv - 9.80665) * dt
		z += vz * dt
		p.az[i] = float32(azv)
		p.tof[i] = float32(z)
		p.truthZ[i] = z
	}
	p.idx = 0
	return nil
}

func (p *beeEKFProblem) Solve() {
	i := p.idx % len(p.az)
	p.idx++
	zero := F32(0)
	accel := mat.Vec[F32]{zero, zero, F32(p.az[i])}
	gyro := mat.Vec[F32]{zero, zero, zero}
	attRef := mat.Vec[F32]{zero, zero}
	tof := F32(p.tof[i])
	_ = p.filter.Step(accel, gyro, F32(0.004), &tof, attRef)
}

func (p *beeEKFProblem) Validate() error {
	if p.idx < 100 {
		return nil
	}
	i := (p.idx - 1) % len(p.az)
	if e := abs(p.filter.Position()[2] - p.truthZ[i]); e > 0.1 {
		return fmt.Errorf("bee-ceekf altitude error %.3f m", e)
	}
	return nil
}

// --- pose ---

// posedProblem carries both problem families; each solver closure reads
// what it needs.
type posedProblem struct {
	name   string
	absP   dataset.AbsProblem
	relP   dataset.RelProblem
	absC   []pose.AbsCorrespondence[F32]
	relC   []pose.RelCorrespondence[F32]
	homogP dataset.RelProblem
	homogC []pose.RelCorrespondence[F32]

	solve  func(*posedProblem)
	rotErr float64
	solved bool
	failed bool
}

func newPoseProblem(name string, solve func(*posedProblem)) *posedProblem {
	return &posedProblem{name: name, solve: solve}
}

// NewPoseKernelProblem exposes a pose kernel wrapper by suite name for
// the case studies.
func NewPoseKernelProblem(name string) (harness.Problem, error) {
	for _, s := range poseSpecs() {
		if s.Name == name {
			return s.Factory(), nil
		}
	}
	return nil, errors.New("core: unknown pose kernel " + name)
}

func (p *posedProblem) Name() string { return p.name }

func (p *posedProblem) Setup() error {
	// Canonical problem instances at the paper's standalone-solver
	// benchmark noise (0.1 px, Fig 5b-c); the robust kernels below use
	// 0.5 px plus 25% outliers (Case Study #4).
	p.absP = dataset.GenAbsProblem(dataset.PoseGenConfig{
		N: 16, PixelNoise: 0.1, Upright: true, Seed: 404,
	})
	p.absC = dataset.ConvertAbs(F32(0), p.absP)
	upright := p.name == "up2pt" || p.name == "up3pt" || p.name == "u3pt"
	planar := p.name == "up2pt" || p.name == "up3pt"
	p.relP = dataset.GenRelProblem(dataset.PoseGenConfig{
		N: 16, PixelNoise: 0.1, Upright: upright, Planar: planar, Seed: 405,
	})
	p.relC = dataset.ConvertRel(F32(0), p.relP)
	// Robust problems carry outliers (Case Study #4's configuration).
	if p.name == "abs-lo-ransac" {
		p.absP = dataset.GenAbsProblem(dataset.PoseGenConfig{
			N: 100, PixelNoise: 0.5, OutlierRatio: 0.25, Upright: true, Seed: 406,
		})
		p.absC = dataset.ConvertAbs(F32(0), p.absP)
	}
	if p.name == "rel-lo-ransac" {
		p.relP = dataset.GenRelProblem(dataset.PoseGenConfig{
			N: 100, PixelNoise: 0.5, OutlierRatio: 0.25, Upright: true, Seed: 407,
		})
		p.relC = dataset.ConvertRel(F32(0), p.relP)
	}
	p.rotErr = 0
	p.solved = false
	p.failed = false
	return nil
}

func (p *posedProblem) Solve() { p.solve(p) }

func (p *posedProblem) Validate() error {
	if !p.solved {
		return errors.New("pose kernel did not run")
	}
	if p.failed {
		return fmt.Errorf("%s failed to produce a pose", p.name)
	}
	tol := 3.0
	if p.name == "8pt" || p.name == "dlt" || p.name == "homography" {
		tol = 5.0
	}
	if p.rotErr > tol {
		return fmt.Errorf("%s rotation error %.2f°", p.name, p.rotErr)
	}
	return nil
}

func (p *posedProblem) recordAbs(cands []pose.Pose[F32], err error) {
	p.solved = true
	if err != nil {
		p.failed = true
		return
	}
	best, ok := pose.BestAbsPose(cands, p.absC)
	if !ok {
		p.failed = true
		return
	}
	p.rotErr = dataset.RotationErr(best, p.absP.Truth)
}

func (p *posedProblem) recordRel(cands []pose.Pose[F32], err error) {
	p.solved = true
	if err != nil {
		p.failed = true
		return
	}
	best, ok := pose.BestRelPose(cands, p.relC)
	if !ok {
		p.failed = true
		return
	}
	p.rotErr = dataset.RotationErr(best, p.relP.Truth)
}

func solveP3P(p *posedProblem) {
	cands, err := pose.P3P(p.absC[:3])
	p.recordAbs(cands, err)
}

func solveUP2P(p *posedProblem) {
	cands, err := pose.UP2P(p.absC[:2])
	p.recordAbs(cands, err)
}

func solveDLT(p *posedProblem) {
	est, err := pose.DLT(p.absC)
	p.recordAbs([]pose.Pose[F32]{est}, err)
}

func solveAbsGold(p *posedProblem) {
	est, err := pose.AbsGoldStandard(p.absC)
	p.recordAbs([]pose.Pose[F32]{est}, err)
}

func solveUP2PT(p *posedProblem) {
	cands, err := pose.UP2PT(p.relC[:2])
	p.recordRel(cands, err)
}

func solveUP3PT(p *posedProblem) {
	cands, err := pose.UP3PT(p.relC)
	p.recordRel(cands, err)
}

func solveU3PT(p *posedProblem) {
	cands, err := pose.U3PT(p.relC[:3])
	p.recordRel(cands, err)
}

func solve5pt(p *posedProblem) {
	cands, err := pose.FivePoint(p.relC[:5])
	p.recordRel(cands, err)
}

func solve8pt(p *posedProblem) {
	est, err := pose.EightPoint(p.relC)
	p.recordRel([]pose.Pose[F32]{est}, err)
}

func solveRelGold(p *posedProblem) {
	est, err := pose.RelGoldStandard(p.relC)
	p.recordRel([]pose.Pose[F32]{est}, err)
}

func solveHomog(p *posedProblem) {
	h, err := pose.Homography(p.relC[:8])
	p.solved = true
	if err != nil {
		p.failed = true
		return
	}
	// Transfer error over the sample as the quality metric.
	var worst float64
	for _, c := range p.relC[:8] {
		if e := pose.HomographyTransferErr(h, c).Float(); e > worst {
			worst = e
		}
	}
	p.rotErr = worst * dataset.FocalPx / 10 // scaled into the ° tolerance band
}

func solveAbsRansac(p *posedProblem) {
	cfg := pose.DefaultRansacConfig()
	est, _, _, err := pose.AbsLoRansac(p.absC, pose.P3P[F32], 3, cfg)
	p.recordAbs([]pose.Pose[F32]{est}, err)
}

func solveRelRansac(p *posedProblem) {
	cfg := pose.DefaultRansacConfig()
	est, _, _, err := pose.RelLoRansac(p.relC, pose.U3PT[F32], 3, cfg)
	p.recordRel([]pose.Pose[F32]{est}, err)
}
