package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cellstore"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
	"repro/internal/server"
)

// The chaos soak: hostile conditions against the real serving stack,
// asserting the service guarantees of docs/server.md and
// docs/robustness.md hold — run under -race (the CI chaos-smoke job is
// `go test -race -short ./internal/chaos/`). -short scales the storm
// down, it never changes what is asserted.

var (
	sharedTransport = &http.Transport{MaxIdleConnsPerHost: 256}
	sharedClient    = &http.Client{Transport: sharedTransport}
)

// post issues one sweep POST and returns status and body.
func post(t *testing.T, baseURL, body string) (int, []byte) {
	t.Helper()
	resp, err := sharedClient.Post(baseURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// mustPost is post asserting 200.
func mustPost(t *testing.T, baseURL, body string) []byte {
	t.Helper()
	status, payload := post(t, baseURL, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", body, status, payload)
	}
	return payload
}

// healthz fetches the liveness probe body.
func healthz(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := sharedClient.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(payload)
}

// TestChaosSoak drives the full overload-and-recovery arc against one
// server: a client storm past the admission budget (every response a
// report or a well-formed shed), an injected disk-full flipping the
// cell store into degraded read-only mode surfaced on /healthz, warm
// serving while degraded, recovery on the first successful write, and
// — the payoff — a post-recovery export byte-identical to the
// clean-path golden captured before any fault was injected.
func TestChaosSoak(t *testing.T) {
	clients, perClient := 16, 24
	if testing.Short() {
		clients, perClient = 8, 8
	}

	report.InvalidateCharacterization()
	defer report.InvalidateCharacterization()
	for i := 0; i < 4; i++ {
		spec := faultinject.SlowSpec(fmt.Sprintf("chaos-slow-%d", i), 20*time.Millisecond)
		if err := core.Register(spec); err != nil {
			t.Fatal(err)
		}
	}

	cc, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := cc.Backing()
	store.SetProbeInterval(0) // recovery probes on every Put: the soak must not wait out the default interval

	ts := httptest.NewServer(server.New(server.Options{
		Workers:     2,
		CellTimeout: 5 * time.Second,
		CellCache:   cc,
		MaxInflight: 2,
		MaxQueue:    2,
	}).Handler())
	defer ts.Close()

	// Golden: the clean-path export before any fault exists.
	const goldenQ = `{"kernels":["madgwick","chaos-slow-0"],"archs":"M4"}`
	golden := mustPost(t, ts.URL, goldenQ)
	base := runtime.NumGoroutine()

	// Phase 1 — overload storm. Bodies mix the warm golden query (free
	// admission), coalescible duplicates, and distinct cold slow sweeps
	// that blow through MaxInflight 2; with weight 3 per single-kernel
	// cold query the admission controller must shed.
	stats, err := chaos.Storm(context.Background(), ts.URL, chaos.StormOptions{
		Clients:           clients,
		RequestsPerClient: perClient,
		Client:            sharedClient,
		Bodies: []string{
			goldenQ,
			`{"kernels":["chaos-slow-0","chaos-slow-1"],"archs":"M4"}`,
			`{"kernels":["chaos-slow-1","chaos-slow-2"],"archs":"M4"}`,
			`{"kernels":["chaos-slow-2","chaos-slow-3"],"archs":"M4"}`,
			`{"kernels":["chaos-slow-3","chaos-slow-0"],"archs":"M4"}`,
		},
	})
	if err != nil {
		t.Fatalf("storm hit a contract violation: %v (stats %+v)", err, stats)
	}
	if stats.OK == 0 {
		t.Fatalf("storm produced no successful responses: %+v", stats)
	}
	if stats.ShedSync+stats.ShedBusy == 0 {
		t.Fatalf("storm past the admission budget shed nothing: %+v", stats)
	}
	t.Logf("storm: %+v", stats)

	// Phase 2 — disk full. The next cold sweep persists cells, every
	// write fails ENOSPC, and the store must degrade while the sweep
	// itself still answers 200 (a cache that cannot persist degrades to
	// computing, never to failing).
	store.SetFaultHook(chaos.DiskFullHook())
	mustPost(t, ts.URL, `{"kernels":["mahony"],"archs":"M4"}`)
	if h := healthz(t, ts.URL); !strings.Contains(h, "degraded") || !strings.Contains(h, "reason: ") {
		t.Fatalf("healthz after ENOSPC = %q, want degraded with reasons", h)
	}

	// Degraded is read-only, not down: the warm golden query still
	// serves (sweep cache and loaded cells are untouched).
	if status, payload := post(t, ts.URL, goldenQ); status != http.StatusOK {
		t.Fatalf("warm query while degraded: status %d: %s", status, payload)
	}

	// Phase 3 — heal. With the fault gone, the first Put doubles as the
	// recovery probe and the store exits degraded mode on its own.
	store.SetFaultHook(nil)
	mustPost(t, ts.URL, `{"kernels":["fourati"],"archs":"M4"}`)
	if h := healthz(t, ts.URL); h != "ok\n" {
		t.Fatalf("healthz after recovery = %q, want ok", h)
	}

	// Phase 4 — the clean path survived the excursion: re-running the
	// golden query cold (memory cache invalidated, cells now loading
	// from the recovered store) must reproduce the golden bytes.
	report.InvalidateCharacterization()
	if again := mustPost(t, ts.URL, goldenQ); !bytes.Equal(golden, again) {
		t.Fatalf("post-recovery export differs from clean-path golden:\n%s\n---\n%s", golden, again)
	}

	// Phase 5 — no goroutine leaks: once idle connections close, the
	// process returns to its pre-storm baseline.
	sharedTransport.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — storm or recovery leaked", base, runtime.NumGoroutine())
}

// TestFlakyBackendContainment: an injected measurement failure costs
// exactly its own cell — the sweep completes, carries failures, and
// keeps every other cell.
func TestFlakyBackendContainment(t *testing.T) {
	report.InvalidateCharacterization()
	defer report.InvalidateCharacterization()

	var specs []core.Spec
	for _, sp := range core.Suite() {
		if sp.Name == "madgwick" || sp.Name == "mahony" {
			specs = append(specs, sp)
		}
	}
	if len(specs) != 2 {
		t.Fatalf("suite lookup found %d of 2 kernels", len(specs))
	}
	arch, ok := mcu.ByName("M4")
	if !ok {
		t.Fatal("arch M4 not registered")
	}

	flaky := &chaos.FlakyBackend{Inner: harness.SimBackend{}, EveryN: 2}
	c, err := report.RunSweepQuery(specs, []mcu.Arch{arch}, core.SweepOptions{Backend: flaky})
	if err == nil {
		t.Fatal("sweep over a flaky backend reported no cell failures")
	}
	if len(c.Records) != 2 {
		t.Fatalf("flaky sweep lost records: got %d, want 2", len(c.Records))
	}
	if !c.Partial() {
		t.Fatal("flaky sweep not marked partial")
	}
}

// TestIntermittentFaultRetryAbsorbs: a transiently flaky disk is the
// retry loop's job — every Put lands, nothing degrades, and every
// record reads back.
func TestIntermittentFaultRetryAbsorbs(t *testing.T) {
	st, err := cellstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaultHook(chaos.IntermittentHook("put", 2, syscall.EIO))
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("cell-%02d", i)
		if err := st.Put(key, []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatalf("Put %s through intermittent faults: %v", key, err)
		}
	}
	if degraded, reason := st.Degraded(); degraded {
		t.Fatalf("intermittent faults degraded the store: %s", reason)
	}
	st.SetFaultHook(nil)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("cell-%02d", i)
		if _, ok := st.Get(key); !ok {
			t.Fatalf("record %s lost", key)
		}
	}
}
