// Package chaos is the fault-injection and overload harness capping the
// robustness work (docs/robustness.md): deliberately hostile conditions
// — full disks, flaky measurement hardware, client storms past the
// admission budget — driven against the real serving stack to prove the
// service guarantees docs/server.md makes. Like internal/faultinject it
// is test infrastructure shipped as a package: the soak test
// (go test -race ./internal/chaos/) and the CI chaos-smoke job are its
// consumers, and the seams it drives (cellstore.SetFaultHook,
// report.PersistentCellCache.Backing, harness.Backend) are public so
// operators can rehearse the same failures against their own builds.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/harness"
	"repro/internal/server"
)

// DiskFullHook is a cellstore fault hook failing every write with
// ENOSPC — the canonical persistent failure that must flip the store
// into read-only degraded mode immediately. Reads pass through, so a
// degraded store keeps serving warm cells.
func DiskFullHook() func(op, key string) error {
	return func(op, key string) error {
		if op == "put" {
			return fmt.Errorf("chaos: injected disk full writing %s: %w", key, syscall.ENOSPC)
		}
		return nil
	}
}

// IntermittentHook is a cellstore fault hook failing every nth
// operation of the given kind ("put" or "get") with err — transient
// flakiness the store's bounded retry must absorb without degrading.
func IntermittentHook(op string, n int64, err error) func(string, string) error {
	var calls atomic.Int64
	return func(gotOp, key string) error {
		if gotOp != op || n <= 0 {
			return nil
		}
		if calls.Add(1)%n == 0 {
			return fmt.Errorf("chaos: injected %s fault on %s: %w", op, key, err)
		}
		return nil
	}
}

// FlakyBackend wraps a measurement backend and fails every Nth Measure
// call — the flaky-probe analogue. The sweep engine must charge each
// injected failure to its own cell and leave every other cell intact.
// The fingerprint is salted so flaky-run cells can never pollute a
// cache entry the clean backend would serve.
type FlakyBackend struct {
	// Inner is the wrapped backend.
	Inner harness.Backend
	// EveryN fails every Nth Measure call; <= 0 injects nothing.
	EveryN int64

	calls atomic.Int64
}

// Name implements harness.Backend.
func (f *FlakyBackend) Name() string { return "chaos-flaky" }

// Source implements harness.Backend: provenance follows the inner
// backend — chaos changes failure behavior, not measurement identity.
func (f *FlakyBackend) Source() string { return f.Inner.Source() }

// Fingerprint implements harness.Backend, salting the inner
// fingerprint so flaky cells get their own cache keys.
func (f *FlakyBackend) Fingerprint() string {
	return "chaos-flaky:" + f.Inner.Fingerprint()
}

// Measure implements harness.Backend.
func (f *FlakyBackend) Measure(req harness.MeasureRequest) (harness.Measurement, error) {
	if n := f.calls.Add(1); f.EveryN > 0 && n%f.EveryN == 0 {
		return harness.Measurement{}, fmt.Errorf("chaos: injected measure failure (call %d)", n)
	}
	return f.Inner.Measure(req)
}

// StormOptions configures a client storm.
type StormOptions struct {
	// Clients is the number of concurrent clients.
	Clients int
	// RequestsPerClient is how many sweep POSTs each client issues.
	RequestsPerClient int
	// Bodies are the request bodies, dealt round-robin across the
	// storm; mixing warm, coalescible, and cold queries is what drives
	// the admission controller through every verdict.
	Bodies []string
	// Client optionally supplies the HTTP client (and its connection
	// pool); nil builds one and closes its idle connections when the
	// storm ends.
	Client *http.Client
}

// StormStats tallies a storm's responses by verdict.
type StormStats struct {
	Requests int64 // POSTs issued
	OK       int64 // 200: served a report
	ShedSync int64 // 429: synchronous admission refusal
	ShedBusy int64 // 503: async refusal or queue eviction
	Deadline int64 // 504: deadline_exceeded
}

// Storm hammers baseURL's POST /v1/sweep with Clients concurrent
// clients and classifies every response. It returns an error — with
// the stats gathered so far — on the first response that violates the
// wire contract: a status outside {200, 429, 503, 504}, or a shed
// missing its Retry-After header or machine-readable overloaded body.
// A storm that returns nil error is the load-shedding guarantee
// demonstrated: every client got either a report or a well-formed,
// retryable refusal.
func Storm(ctx context.Context, baseURL string, o StormOptions) (StormStats, error) {
	client := o.Client
	if client == nil {
		tr := &http.Transport{MaxIdleConnsPerHost: 256}
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	var stats StormStats
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	count := func(n *int64) {
		mu.Lock()
		*n++
		mu.Unlock()
	}

	var seq atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < o.RequestsPerClient; r++ {
				if ctx.Err() != nil {
					return
				}
				body := o.Bodies[int(seq.Add(1))%len(o.Bodies)]
				count(&stats.Requests)
				if err := stormPost(ctx, client, baseURL, body, &stats, count); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return stats, firstErr
}

// stormPost issues one sweep POST and classifies the response.
func stormPost(ctx context.Context, client *http.Client, baseURL, body string, stats *StormStats, count func(*int64)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil // storm canceled, not a contract violation
		}
		return fmt.Errorf("chaos storm: transport error: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("chaos storm: reading response body: %w", err)
	}

	switch resp.StatusCode {
	case http.StatusOK:
		count(&stats.OK)
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if err := checkShed(resp, payload); err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			count(&stats.ShedSync)
		} else {
			count(&stats.ShedBusy)
		}
		return nil
	case http.StatusGatewayTimeout:
		var eb server.ErrorBody
		if err := json.Unmarshal(payload, &eb); err != nil || eb.Code != server.ErrCodeDeadlineExceeded {
			return fmt.Errorf("chaos storm: malformed 504 body %q", payload)
		}
		count(&stats.Deadline)
		return nil
	default:
		return fmt.Errorf("chaos storm: unexpected status %d: %s", resp.StatusCode, payload)
	}
}

// checkShed verifies one shed response against the wire contract:
// Retry-After in whole seconds >= 1, and an ErrorBody with code
// "overloaded", a non-empty message, and a mirrored retry_after_ms.
func checkShed(resp *http.Response, payload []byte) error {
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		return fmt.Errorf("chaos storm: shed %d with bad Retry-After %q", resp.StatusCode, ra)
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(payload, &eb); err != nil {
		return fmt.Errorf("chaos storm: shed %d body not JSON: %s", resp.StatusCode, payload)
	}
	if eb.Code != server.ErrCodeOverloaded || eb.Error == "" || eb.RetryAfterMS < 1000 {
		return fmt.Errorf("chaos storm: shed %d body violates contract: %s", resp.StatusCode, payload)
	}
	return nil
}
