package cnn_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cnn"
	"repro/internal/dataset"
	img "repro/internal/image"
	"repro/internal/mcu"
	"repro/internal/profile"
)

func TestQuantizeRoundTrip(t *testing.T) {
	in := cnn.NewTensor(1, 4, 4)
	vals := []float32{0, 0.5, -0.5, 1, -1, 0.25, 0.75, -0.75, 0.1, -0.1, 0.9, -0.9, 0.3, -0.3, 0.6, -0.6}
	copy(in.Data, vals)
	back := cnn.Quantize(in).Dequantize()
	for i := range vals {
		if math.Abs(float64(back.Data[i]-vals[i])) > 1.0/127+1e-6 {
			t.Fatalf("element %d: %g -> %g", i, vals[i], back.Data[i])
		}
	}
}

func TestConvShapeAndReLU(t *testing.T) {
	l := cnn.NewConv2D(1, 2, 7)
	in := cnn.NewTensor(1, 8, 8)
	for i := range in.Data {
		in.Data[i] = float32(i%5) / 5
	}
	out := l.Forward(in)
	if out.C != 2 || out.H != 6 || out.W != 6 {
		t.Fatalf("output shape %dx%dx%d", out.C, out.H, out.W)
	}
	for _, v := range out.Data {
		if v < 0 {
			t.Fatal("ReLU leaked a negative activation")
		}
	}
}

func TestSetWeightsValidation(t *testing.T) {
	l := cnn.NewConv2D(1, 2, 7)
	if err := l.SetWeights(make([]float32, 5), make([]float32, 2)); err == nil {
		t.Fatal("wrong weight shape accepted")
	}
}

// The int8 path must track the float path closely — the TinyML
// quantization contract.
func TestQuantizedInferenceTracksFloat(t *testing.T) {
	net := cnn.NewDepthNet()
	for _, kind := range []dataset.ImageKind{dataset.Midd, dataset.April} {
		g := dataset.GenImage(kind, 32, 32, 5)
		f := cnn.MeanActivation(net.Infer(g))
		q := cnn.MeanActivationQ(net.InferQ(g))
		if f <= 0 {
			t.Fatalf("%v: zero float response on textured input", kind)
		}
		rel := math.Abs(q-f) / f
		if rel > 0.15 {
			t.Fatalf("%v: quantized response off by %.1f%% (float %.4f, int8 %.4f)",
				kind, rel*100, f, q)
		}
	}
}

// The nearness proxy must respond to texture density: a sharp textured
// patch scores above a blurred (farther/defocused) copy of itself.
func TestNearnessRespondsToTexture(t *testing.T) {
	net := cnn.NewDepthNet()
	sharp := dataset.GenImage(dataset.Midd, 32, 32, 9)
	blurred := sharp.GaussianBlur(2.5)
	sSharp := cnn.MeanActivation(net.Infer(sharp))
	sBlur := cnn.MeanActivation(net.Infer(blurred))
	if sSharp <= sBlur {
		t.Fatalf("sharp %.4f <= blurred %.4f; gradient-energy cue broken", sSharp, sBlur)
	}
}

func TestFlatImageScoresNearZero(t *testing.T) {
	net := cnn.NewDepthNet()
	g := img.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	if s := cnn.MeanActivation(net.Infer(g)); s > 1e-3 {
		t.Fatalf("flat image scored %.5f", s)
	}
}

// The int8 path must be integer-dominated and cheaper in modeled cycles
// than the float path on the DSP-extension cores.
func TestQuantizedPathIsCheaper(t *testing.T) {
	net := cnn.NewDepthNet()
	g := dataset.GenImage(dataset.Midd, 32, 32, 3)
	cF := profile.Collect(func() { net.Infer(g) })
	cQ := profile.Collect(func() { net.InferQ(g) })
	if cQ.F > cF.F/10 {
		t.Fatalf("int8 path recorded %d float ops", cQ.F)
	}
	cycF := mcu.M4.Cycles(cF, mcu.PrecF32, true)
	cycQ := mcu.M4.Cycles(cQ, mcu.PrecFixed, true)
	if cycQ >= cycF {
		t.Fatalf("int8 inference %0.f cycles >= float %0.f", cycQ, cycF)
	}
}

// Inference must fit an MCU frame budget at QQVGA-crop scale.
func TestInferenceBudget(t *testing.T) {
	net := cnn.NewDepthNet()
	g := dataset.GenImage(dataset.Midd, 32, 32, 3)
	c := profile.Collect(func() { net.InferQ(g) })
	est := mcu.M4.Estimate(c, mcu.PrecFixed, true)
	if est.LatencyS > 10e-3 {
		t.Fatalf("32x32 int8 inference %.1f ms on M4", est.LatencyS*1e3)
	}
}

// Property: quantization never inverts orderings badly — brighter-
// activation inputs stay at least comparable through the int8 path.
func TestPropQuantMonotoneOnScale(t *testing.T) {
	net := cnn.NewDepthNet()
	f := func(seed int64) bool {
		g := dataset.GenImage(dataset.Midd, 32, 32, seed%100)
		fv := cnn.MeanActivation(net.Infer(g))
		qv := cnn.MeanActivationQ(net.InferQ(g))
		if fv == 0 {
			return qv < 1e-3
		}
		return math.Abs(qv-fv)/fv < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
