// Package cnn implements the paper's second planned suite extension:
// CNN-based monocular depth estimation for obstacle avoidance [72],
// at the only scale an insect-scale MCU can host — a few int8-quantized
// convolution layers, MLPerf-Tiny style.
//
// The package provides the *compute pattern* of tiny CNN inference (im2col-
// free direct convolution, ReLU, max-pooling, a dense head), with both an
// int8-quantized path (what ships on the MCU) and a float32 reference path
// (what the quantization is checked against). Weights come from a
// deterministic generator: benchmark kernels characterize compute, not
// trained accuracy, exactly as MLPerf Tiny's closed division fixes the
// model. A small hand-constructed gradient-energy network doubles as a
// plausible "nearness" proxy so validation has something physical to
// check.
package cnn

import (
	"errors"
	"math/rand"

	img "repro/internal/image"
	"repro/internal/profile"
)

// Tensor is a CHW float32 activation tensor.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zeroed tensor.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set writes element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// QTensor is the int8-quantized twin with a per-tensor scale.
type QTensor struct {
	C, H, W int
	Scale   float32 // real = int8 * Scale
	Data    []int8
}

// Quantize converts a float tensor to int8 with a symmetric per-tensor
// scale.
func Quantize(t *Tensor) *QTensor {
	var maxAbs float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	scale := maxAbs / 127
	q := &QTensor{C: t.C, H: t.H, W: t.W, Scale: scale, Data: make([]int8, len(t.Data))}
	for i, v := range t.Data {
		r := v / scale
		switch {
		case r > 127:
			r = 127
		case r < -127:
			r = -127
		}
		if r >= 0 {
			q.Data[i] = int8(r + 0.5)
		} else {
			q.Data[i] = int8(r - 0.5)
		}
	}
	return q
}

// Dequantize converts back to float.
func (q *QTensor) Dequantize() *Tensor {
	t := NewTensor(q.C, q.H, q.W)
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// Conv2D is a 3×3 stride-1 valid convolution layer.
type Conv2D struct {
	InC, OutC int
	// W[o][i][ky][kx], flattened; B[o].
	W []float32
	B []float32
	// Quantized weights (per-layer scale).
	qw     []int8
	wScale float32
}

// NewConv2D builds a layer with deterministic pseudo-random weights
// (He-style magnitude), then quantizes them.
func NewConv2D(inC, outC int, seed int64) *Conv2D {
	rng := rand.New(rand.NewSource(seed))
	n := outC * inC * 9
	l := &Conv2D{InC: inC, OutC: outC, W: make([]float32, n), B: make([]float32, outC)}
	std := 0.8 / float32(inC*3)
	for i := range l.W {
		l.W[i] = float32(rng.NormFloat64()) * std
	}
	l.quantizeWeights()
	return l
}

// SetWeights installs explicit weights (used by the hand-constructed
// gradient-energy network) and requantizes.
func (l *Conv2D) SetWeights(w []float32, b []float32) error {
	if len(w) != l.OutC*l.InC*9 || len(b) != l.OutC {
		return errors.New("cnn: weight shape mismatch")
	}
	copy(l.W, w)
	copy(l.B, b)
	l.quantizeWeights()
	return nil
}

func (l *Conv2D) quantizeWeights() {
	var maxAbs float32
	for _, v := range l.W {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	l.wScale = maxAbs / 127
	l.qw = make([]int8, len(l.W))
	for i, v := range l.W {
		r := v / l.wScale
		switch {
		case r > 127:
			r = 127
		case r < -127:
			r = -127
		}
		if r >= 0 {
			l.qw[i] = int8(r + 0.5)
		} else {
			l.qw[i] = int8(r - 0.5)
		}
	}
}

// Forward runs the float reference path with fused ReLU.
func (l *Conv2D) Forward(in *Tensor) *Tensor {
	oh, ow := in.H-2, in.W-2
	out := NewTensor(l.OutC, oh, ow)
	for o := 0; o < l.OutC; o++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				acc := l.B[o]
				for i := 0; i < l.InC; i++ {
					for ky := 0; ky < 3; ky++ {
						for kx := 0; kx < 3; kx++ {
							acc += l.W[((o*l.InC+i)*3+ky)*3+kx] * in.At(i, y+ky, x+kx)
						}
					}
				}
				if acc < 0 {
					acc = 0 // ReLU
				}
				out.Set(o, y, x, acc)
			}
		}
	}
	profile.AddF(uint64(2 * l.OutC * oh * ow * l.InC * 9))
	profile.AddM(uint64(2 * l.OutC * oh * ow * l.InC * 9))
	return out
}

// ForwardQ runs the int8 path: int32 accumulators, SMLAD-style dual-MAC
// accounting, requantization to the output scale.
func (l *Conv2D) ForwardQ(in *QTensor) *QTensor {
	oh, ow := in.H-2, in.W-2
	accScale := in.Scale * l.wScale
	// First pass: integer accumulate; track max for the output scale.
	acc32 := make([]int32, l.OutC*oh*ow)
	var maxAcc int32 = 1
	for o := 0; o < l.OutC; o++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var acc int32
				for i := 0; i < l.InC; i++ {
					for ky := 0; ky < 3; ky++ {
						for kx := 0; kx < 3; kx++ {
							w := int32(l.qw[((o*l.InC+i)*3+ky)*3+kx])
							v := int32(in.Data[(i*in.H+y+ky)*in.W+x+kx])
							acc += w * v
						}
					}
				}
				// Bias in accumulator units, then ReLU.
				acc += int32(l.B[o]/accScale + 0.5)
				if acc < 0 {
					acc = 0
				}
				acc32[(o*oh+y)*ow+x] = acc
				if acc > maxAcc {
					maxAcc = acc
				}
			}
		}
	}
	// The DSP extension retires two int8 MACs per SMLAD issue: charge
	// half the MAC count as integer ops (cf. bbof-vec's USADA8 model).
	macs := uint64(l.OutC * oh * ow * l.InC * 9)
	profile.AddI(macs)
	profile.AddM(macs / 2)
	// Requantize to int8: the full accumulator range maps onto [0, 127].
	out := &QTensor{C: l.OutC, H: oh, W: ow, Scale: accScale * float32(maxAcc) / 127}
	out.Data = make([]int8, len(acc32))
	for i, a := range acc32 {
		q := int64(a) * 127 / int64(maxAcc)
		out.Data[i] = int8(q)
	}
	profile.AddI(uint64(2 * len(acc32)))
	return out
}

// MaxPool2 halves spatial resolution with 2×2 max pooling.
func MaxPool2(in *Tensor) *Tensor {
	oh, ow := in.H/2, in.W/2
	out := NewTensor(in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				m := in.At(c, 2*y, 2*x)
				for _, v := range []float32{in.At(c, 2*y+1, 2*x), in.At(c, 2*y, 2*x+1), in.At(c, 2*y+1, 2*x+1)} {
					if v > m {
						m = v
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	profile.AddM(uint64(5 * in.C * oh * ow))
	profile.AddB(uint64(3 * in.C * oh * ow))
	return out
}

// MaxPool2Q is the int8 pooling twin.
func MaxPool2Q(in *QTensor) *QTensor {
	oh, ow := in.H/2, in.W/2
	out := &QTensor{C: in.C, H: oh, W: ow, Scale: in.Scale, Data: make([]int8, in.C*oh*ow)}
	at := func(c, y, x int) int8 { return in.Data[(c*in.H+y)*in.W+x] }
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				m := at(c, 2*y, 2*x)
				for _, v := range []int8{at(c, 2*y+1, 2*x), at(c, 2*y, 2*x+1), at(c, 2*y+1, 2*x+1)} {
					if v > m {
						m = v
					}
				}
				out.Data[(c*oh+y)*ow+x] = m
			}
		}
	}
	profile.AddM(uint64(5 * in.C * oh * ow))
	profile.AddB(uint64(3 * in.C * oh * ow))
	return out
}

// FromImage converts an 8-bit image into a 1-channel tensor in [0, 1].
func FromImage(g *img.Gray) *Tensor {
	t := NewTensor(1, g.H, g.W)
	for i, p := range g.Pix {
		t.Data[i] = float32(p) / 255
	}
	profile.AddM(uint64(2 * len(g.Pix)))
	profile.AddI(uint64(len(g.Pix)))
	return t
}
