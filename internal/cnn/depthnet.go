package cnn

import (
	img "repro/internal/image"
)

// DepthNet is the monocular depth-proxy network: two 3×3 conv layers
// with pooling that turn a grayscale patch into a coarse "nearness" map.
// Layer 1 is hand-constructed as oriented gradient filters (texture
// density rises as surfaces approach — the depth-from-texture cue small
// flyers actually use); layer 2 mixes the gradient channels. The network
// is the planned suite extension's compute pattern at MCU-feasible size.
type DepthNet struct {
	L1 *Conv2D // 1 -> 4 channels
	L2 *Conv2D // 4 -> 1 channel
}

// NewDepthNet constructs the network.
func NewDepthNet() *DepthNet {
	n := &DepthNet{
		L1: NewConv2D(1, 4, 31),
		L2: NewConv2D(4, 1, 32),
	}
	// Layer 1: ±Sobel-x and ±Sobel-y (ReLU needs both signs to keep
	// gradient energy).
	sobelX := []float32{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	sobelY := []float32{-1, -2, -1, 0, 0, 0, 1, 2, 1}
	w1 := make([]float32, 4*1*9)
	for k := 0; k < 9; k++ {
		w1[0*9+k] = sobelX[k] / 4
		w1[1*9+k] = -sobelX[k] / 4
		w1[2*9+k] = sobelY[k] / 4
		w1[3*9+k] = -sobelY[k] / 4
	}
	_ = n.L1.SetWeights(w1, make([]float32, 4))
	// Layer 2: average the four rectified gradient channels with a
	// center-weighted 3×3 smoothing kernel.
	w2 := make([]float32, 1*4*9)
	smooth := []float32{1, 2, 1, 2, 4, 2, 1, 2, 1}
	for i := 0; i < 4; i++ {
		for k := 0; k < 9; k++ {
			w2[i*9+k] = smooth[k] / (16 * 4)
		}
	}
	_ = n.L2.SetWeights(w2, make([]float32, 1))
	return n
}

// Infer runs the float reference path: conv → pool → conv → pool,
// returning the coarse nearness map.
func (n *DepthNet) Infer(g *img.Gray) *Tensor {
	t := FromImage(g)
	t = n.L1.Forward(t)
	t = MaxPool2(t)
	t = n.L2.Forward(t)
	return MaxPool2(t)
}

// InferQ runs the int8 path the MCU would ship.
func (n *DepthNet) InferQ(g *img.Gray) *QTensor {
	q := Quantize(FromImage(g))
	q = n.L1.ForwardQ(q)
	q = MaxPool2Q(q)
	q = n.L2.ForwardQ(q)
	return MaxPool2Q(q)
}

// MeanActivation averages a tensor — the scalar nearness score used by
// validation.
func MeanActivation(t *Tensor) float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s / float64(len(t.Data))
}

// MeanActivationQ is the quantized twin, dequantized.
func MeanActivationQ(q *QTensor) float64 {
	var s float64
	for _, v := range q.Data {
		s += float64(v) * float64(q.Scale)
	}
	return s / float64(len(q.Data))
}
