package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
)

// Sweep submission and retrieval. Every POST /v1/sweep creates a job —
// a server-side handle with an id, live progress, and (when done) the
// rendered v1 JSON report. Jobs are handles, not computations: the
// computation itself lives in the keyed sweep cache, so ten jobs for
// identical queries share one characterization and each still streams
// its own progress to its own SSE clients.

// SweepRequest is the POST /v1/sweep body. The zero value (or an empty
// body) requests the canonical full-suite default-board sweep — the
// exact query `entobench sweep -json` runs, with byte-identical output.
type SweepRequest struct {
	// Kernels names the kernels to characterize; empty means the full
	// suite in Table III order. Unknown names are a 400.
	Kernels []string `json:"kernels,omitempty"`
	// Archs is a board-selection query resolved exactly like the CLI's
	// -archs flag: comma-separated set names and board names, resolved
	// case-insensitively. Empty means the default Table IV set.
	Archs string `json:"archs,omitempty"`
	// Workers overrides the server's sweep worker-pool size for a
	// cache-filling run; 0 keeps the server default. Never changes
	// result bytes.
	Workers int `json:"workers,omitempty"`
	// CellTimeoutMS overrides the server's per-cell watchdog in
	// milliseconds; 0 keeps the server default.
	CellTimeoutMS int `json:"cell_timeout_ms,omitempty"`
	// Backend selects the measurement backend for this sweep by
	// registry name; empty keeps the server default (classic simulator
	// unless the daemon was started with -backend/-tracefile). "sim"
	// explicitly restores the classic path; unknown names are a 400.
	// Cells a partial backend covers carry source "measured" in the
	// report, the rest fall back to the simulator (docs/backends.md).
	Backend string `json:"backend,omitempty"`
	// Async, when true, returns 202 with the job id immediately
	// instead of blocking; poll /v1/sweep/{id} or stream
	// /v1/sweep/{id}/events.
	Async bool `json:"async,omitempty"`
}

// SweepAccepted is the 202 response to an async submission.
type SweepAccepted struct {
	ID     string `json:"id"`
	Result string `json:"result"`
	Events string `json:"events"`
}

// SweepStatus is the GET /v1/sweep/{id} body while the sweep is still
// running (202) or after it failed outright (500).
type SweepStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Skipped int    `json:"skipped"`
	Total   int    `json:"total"`
	Error   string `json:"error,omitempty"`
}

// Job states.
const (
	StateRunning = "running"
	StateDone    = "done"   // report available; may carry a failures block
	StateFailed  = "failed" // no report assembled at all
)

// SweepIDHeader carries the job id on synchronous sweep responses, so
// a client that POSTed synchronously can still attach an SSE watcher
// from another connection or correlate server logs.
const SweepIDHeader = "Ento-Sweep-Id"

// progressEvent is one progress observation, SSE-rendered as the
// `progress` event data.
type progressEvent struct {
	Done    int `json:"done"`
	Skipped int `json:"skipped"`
	Total   int `json:"total"`
}

// job is one submitted sweep: identity, monotone progress, fanout
// subscriptions, and the outcome.
type job struct {
	id string

	mu      sync.Mutex
	state   string
	prog    progressEvent
	subs    map[int]chan progressEvent
	nextSub int

	doneCh     chan struct{} // closed on completion (done or failed)
	body       []byte        // rendered v1 JSON report (StateDone)
	errMsg     string        // failure message (StateFailed)
	partial    bool
	datapoints int
}

// update is the job's SweepOptions.Progress hook. The sweep engine
// reports from pool workers concurrently, so observations can arrive
// out of order; update keeps the stream monotone (an SSE client never
// sees progress go backwards) and fans the event out without blocking
// the sweep — a slow SSE client just misses intermediate events.
func (j *job) update(done, skipped, total int) {
	ev := progressEvent{Done: done, Skipped: skipped, Total: total}
	j.mu.Lock()
	if ev.Done+ev.Skipped < j.prog.Done+j.prog.Skipped {
		j.mu.Unlock()
		return
	}
	j.prog = ev
	chans := make([]chan progressEvent, 0, len(j.subs))
	for _, ch := range j.subs {
		chans = append(chans, ch)
	}
	j.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
		default: // subscriber lagging; it will catch up on a later event
		}
	}
}

// subscribe registers an SSE watcher and returns its id, its event
// channel, and the progress snapshot at attach time.
func (j *job) subscribe() (int, chan progressEvent, progressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	ch := make(chan progressEvent, 32)
	j.subs[id] = ch
	return id, ch, j.prog
}

// unsubscribe drops an SSE watcher.
func (j *job) unsubscribe(id int) {
	j.mu.Lock()
	delete(j.subs, id)
	j.mu.Unlock()
}

// finish publishes the outcome and wakes every waiter. A sweep that
// assembled records — even partially — is StateDone with the rendered
// report; only a sweep with nothing to report (bad request raced a
// registry change, cancellation before any cell) is StateFailed.
func (j *job) finish(body []byte, datapoints int, partial bool, errMsg string) {
	j.mu.Lock()
	if errMsg != "" && body == nil {
		j.state = StateFailed
		j.errMsg = errMsg
	} else {
		j.state = StateDone
		j.body = body
		j.datapoints = datapoints
		j.partial = partial
	}
	j.mu.Unlock()
	close(j.doneCh)
}

// status snapshots the job for the status body.
func (j *job) status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return SweepStatus{
		ID: j.id, State: j.state,
		Done: j.prog.Done, Skipped: j.prog.Skipped, Total: j.prog.Total,
		Error: j.errMsg,
	}
}

// jobTable is the id → job registry. Finished jobs are retained (for
// result polling and late SSE attaches) up to maxFinishedJobs, then
// evicted oldest-first; running jobs are never evicted.
type jobTable struct {
	mu       sync.Mutex
	m        map[string]*job
	finished []string
	next     int
}

// maxFinishedJobs bounds how many completed job handles the table
// keeps. The handles hold rendered reports, so this bound (together
// with the sweep cache capacity) is what keeps a long-running server's
// memory flat.
const maxFinishedJobs = 128

func (t *jobTable) init() { t.m = make(map[string]*job) }

// create mints a new running job.
func (t *jobTable) create() *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	j := &job{
		id:     fmt.Sprintf("s%d", t.next),
		state:  StateRunning,
		subs:   make(map[int]chan progressEvent),
		doneCh: make(chan struct{}),
	}
	t.m[j.id] = j
	return j
}

// lookup resolves a job id.
func (t *jobTable) lookup(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.m[id]
	return j, ok
}

// retire records a finished job for bounded retention.
func (t *jobTable) retire(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = append(t.finished, id)
	for len(t.finished) > maxFinishedJobs {
		victim := t.finished[0]
		t.finished = t.finished[1:]
		delete(t.m, victim)
	}
}

// resolveSweep turns a request into the kernel and board selections,
// reporting the first unresolvable name.
func resolveSweep(req SweepRequest) ([]core.Spec, []mcu.Arch, error) {
	var specs []core.Spec
	if len(req.Kernels) == 0 {
		specs = core.Suite()
	} else {
		for _, name := range req.Kernels {
			sp, ok := core.ByName(name)
			if !ok {
				return nil, nil, fmt.Errorf("unknown kernel %q", name)
			}
			specs = append(specs, sp)
		}
	}
	if req.Archs == "" {
		return specs, mcu.TableIVSet(), nil
	}
	archs, err := mcu.ResolveArchs(req.Archs)
	if err != nil {
		return nil, nil, err
	}
	return specs, archs, nil
}

// handleSweep is POST /v1/sweep: decode, resolve, run through the
// keyed cache, respond. Synchronous requests block until the report is
// ready and stream nothing; async requests return 202 immediately and
// are watched via /v1/sweep/{id} and its /events stream.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "parse sweep request: %v", err)
		return
	}
	specs, archs, err := resolveSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := core.SweepOptions{Workers: s.opts.Workers, CellTimeout: s.opts.CellTimeout, CellCache: s.opts.CellCache, Backend: s.opts.Backend}
	if req.Workers > 0 {
		opts.Workers = req.Workers
	}
	if req.CellTimeoutMS > 0 {
		opts.CellTimeout = time.Duration(req.CellTimeoutMS) * time.Millisecond
	}
	if req.Backend != "" {
		be, ok := harness.BackendByName(req.Backend)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown backend %q (registered: %s)",
				req.Backend, strings.Join(harness.BackendNames(), ", "))
			return
		}
		opts.Backend = be
	}

	j := s.jobs.create()
	if req.Async {
		// Async jobs are owned by the server, not the submitting
		// connection: they run on a background context and complete
		// whether or not the submitter sticks around to watch.
		go s.runJob(context.Background(), j, specs, archs, opts)
		writeJSON(w, http.StatusAccepted, SweepAccepted{
			ID:     j.id,
			Result: "/v1/sweep/" + j.id,
			Events: "/v1/sweep/" + j.id + "/events",
		})
		return
	}
	// Synchronous: the request context rides the cancellation plumbing.
	// A disconnected client drops this job's cache subscription; the
	// underlying run cancels only if no other client shares it.
	s.runJob(r.Context(), j, specs, archs, opts)
	st := j.status()
	if st.State == StateFailed {
		writeError(w, http.StatusInternalServerError, "sweep %s: %s", j.id, st.Error)
		return
	}
	w.Header().Set(SweepIDHeader, j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.body)
}

// runJob executes one job through the keyed sweep cache and publishes
// its outcome. A partial sweep — contained kernel failures, watchdog
// timeouts — still renders: the report carries the failures block and
// the job completes as done (HTTP 200), because a characterization
// with explicit gaps is a result, not a server error.
func (s *Server) runJob(ctx context.Context, j *job, specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions) {
	opts.Context = ctx
	opts.Progress = j.update
	start := time.Now()
	c, err := report.RunSweepQuery(specs, archs, opts)
	if err != nil && len(c.Records) == 0 {
		s.logf("sweep %s: failed after %v: %v", j.id, time.Since(start).Round(time.Millisecond), err)
		j.finish(nil, 0, false, err.Error())
		s.jobs.retire(j.id)
		return
	}
	var buf bytes.Buffer
	if werr := c.WriteJSON(&buf); werr != nil {
		j.finish(nil, 0, false, werr.Error())
		s.jobs.retire(j.id)
		return
	}
	s.logf("sweep %s: %d datapoints in %v (partial=%v)",
		j.id, c.Datapoints(), time.Since(start).Round(time.Millisecond), c.Partial())
	j.finish(buf.Bytes(), c.Datapoints(), c.Partial(), "")
	s.jobs.retire(j.id)
}

// handleSweepResult is GET /v1/sweep/{id}: the rendered report once
// done (200), the live status while running (202), the failure after a
// total loss (500), or 404 for an unknown id.
func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep id %q", r.PathValue("id"))
		return
	}
	st := j.status()
	switch st.State {
	case StateDone:
		w.Header().Set(SweepIDHeader, j.id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		j.mu.Lock()
		body := j.body
		j.mu.Unlock()
		_, _ = w.Write(body)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}
