package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
)

// Sweep submission and retrieval. Every POST /v1/sweep creates a job —
// a server-side handle with an id, live progress, and (when done) the
// rendered v1 JSON report. Jobs are handles, not computations: the
// computation itself lives in the keyed sweep cache, so ten jobs for
// identical queries share one characterization and each still streams
// its own progress to its own SSE clients.

// SweepRequest is the POST /v1/sweep body. The zero value (or an empty
// body) requests the canonical full-suite default-board sweep — the
// exact query `entobench sweep -json` runs, with byte-identical output.
type SweepRequest struct {
	// Kernels names the kernels to characterize; empty means the full
	// suite in Table III order. Unknown names are a 400.
	Kernels []string `json:"kernels,omitempty"`
	// Archs is a board-selection query resolved exactly like the CLI's
	// -archs flag: comma-separated set names and board names, resolved
	// case-insensitively. Empty means the default Table IV set.
	Archs string `json:"archs,omitempty"`
	// Workers overrides the server's sweep worker-pool size for a
	// cache-filling run; 0 keeps the server default. Never changes
	// result bytes.
	Workers int `json:"workers,omitempty"`
	// CellTimeoutMS overrides the server's per-cell watchdog in
	// milliseconds; 0 keeps the server default.
	CellTimeoutMS int `json:"cell_timeout_ms,omitempty"`
	// DeadlineMS bounds the whole sweep in milliseconds: the request's
	// context expires after this long, canceling any cells still
	// unfinished (the PR 5 cancellation plumbing), and a sweep that
	// produced nothing by then answers 504. 0 means no client deadline;
	// the server's -maxdeadline caps the value and applies as the
	// default when it is set.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Backend selects the measurement backend for this sweep by
	// registry name; empty keeps the server default (classic simulator
	// unless the daemon was started with -backend/-tracefile). "sim"
	// explicitly restores the classic path; unknown names are a 400.
	// Cells a partial backend covers carry source "measured" in the
	// report, the rest fall back to the simulator (docs/backends.md).
	Backend string `json:"backend,omitempty"`
	// Async, when true, returns 202 with the job id immediately
	// instead of blocking; poll /v1/sweep/{id} or stream
	// /v1/sweep/{id}/events.
	Async bool `json:"async,omitempty"`
}

// SweepAccepted is the 202 response to an async submission.
type SweepAccepted struct {
	ID     string `json:"id"`
	Result string `json:"result"`
	Events string `json:"events"`
}

// SweepStatus is the GET /v1/sweep/{id} body while the sweep is still
// running (202) or after it failed outright (500).
type SweepStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Skipped int    `json:"skipped"`
	Total   int    `json:"total"`
	Error   string `json:"error,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued" // async job admitted but waiting for capacity
	StateRunning = "running"
	StateDone    = "done"   // report available; may carry a failures block
	StateFailed  = "failed" // no report assembled at all
	StateShed    = "shed"   // async job evicted from the admission queue under load
)

// SweepIDHeader carries the job id on synchronous sweep responses, so
// a client that POSTed synchronously can still attach an SSE watcher
// from another connection or correlate server logs.
const SweepIDHeader = "Ento-Sweep-Id"

// progressEvent is one progress observation, SSE-rendered as the
// `progress` event data.
type progressEvent struct {
	Done    int `json:"done"`
	Skipped int `json:"skipped"`
	Total   int `json:"total"`
}

// subscriber is one SSE watcher attached to a job's progress fanout.
// missed counts consecutive events dropped because its channel was
// full; a watcher that misses stallKickAfter in a row is presumed
// stalled (a client that stopped reading but never disconnected) and
// kicked, so its handler goroutine can never outlive the job by much
// and the fanout never carries dead weight.
type subscriber struct {
	ch       chan progressEvent
	kicked   chan struct{}
	missed   int
	kickSent bool // kicked already closed; never close twice
}

// stallKickAfter is how many consecutive missed events (on top of a
// full 32-event buffer) mark a subscriber as stalled.
const stallKickAfter = 64

// job is one submitted sweep: identity, monotone progress, fanout
// subscriptions, and the outcome.
type job struct {
	id string

	mu      sync.Mutex
	state   string
	prog    progressEvent
	subs    map[int]*subscriber
	nextSub int

	doneCh      chan struct{} // closed on completion (done, failed, or shed)
	body        []byte        // rendered v1 JSON report (StateDone)
	errMsg      string        // failure message (StateFailed / StateShed)
	partial     bool
	datapoints  int
	deadlineHit bool // sweep died of deadline_ms with nothing to report
}

// update is the job's SweepOptions.Progress hook. The sweep engine
// reports from pool workers concurrently, so observations can arrive
// out of order; update keeps the stream monotone (an SSE client never
// sees progress go backwards) and fans the event out without blocking
// the sweep — a slow SSE client just misses intermediate events, and a
// persistently stalled one is kicked (see subscriber).
func (j *job) update(done, skipped, total int) {
	ev := progressEvent{Done: done, Skipped: skipped, Total: total}
	j.mu.Lock()
	if ev.Done+ev.Skipped < j.prog.Done+j.prog.Skipped {
		j.mu.Unlock()
		return
	}
	j.prog = ev
	var kicks []chan struct{}
	for _, sub := range j.subs {
		select {
		case sub.ch <- ev:
			sub.missed = 0
		default: // subscriber lagging; it will catch up on a later event
			sub.missed++
			if sub.missed >= stallKickAfter && !sub.kickSent {
				sub.kickSent = true
				kicks = append(kicks, sub.kicked)
			}
		}
	}
	j.mu.Unlock()
	for _, k := range kicks {
		close(k)
	}
}

// subscribe registers an SSE watcher and returns its id, the
// subscriber handle, and the progress snapshot at attach time.
func (j *job) subscribe() (int, *subscriber, progressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	sub := &subscriber{
		ch:     make(chan progressEvent, 32),
		kicked: make(chan struct{}),
	}
	j.subs[id] = sub
	return id, sub, j.prog
}

// unsubscribe drops an SSE watcher.
func (j *job) unsubscribe(id int) {
	j.mu.Lock()
	delete(j.subs, id)
	j.mu.Unlock()
}

// setState transitions the job (queued → running on dispatch).
func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// wasDeadline reports whether the job failed because its deadline
// elapsed before any result was assembled.
func (j *job) wasDeadline() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadlineHit
}

// finish publishes the outcome and wakes every waiter. A sweep that
// assembled records — even partially — is StateDone with the rendered
// report; only a sweep with nothing to report (bad request raced a
// registry change, cancellation before any cell) is StateFailed.
func (j *job) finish(body []byte, datapoints int, partial bool, errMsg string) {
	j.mu.Lock()
	if errMsg != "" && body == nil {
		j.state = StateFailed
		j.errMsg = errMsg
	} else {
		j.state = StateDone
		j.body = body
		j.datapoints = datapoints
		j.partial = partial
	}
	j.mu.Unlock()
	close(j.doneCh)
}

// finishShed terminates a queued job evicted by the admission
// controller: it never ran, and polls answer 503 with Retry-After.
func (j *job) finishShed() {
	j.mu.Lock()
	j.state = StateShed
	j.errMsg = "evicted from the admission queue under load"
	j.mu.Unlock()
	close(j.doneCh)
}

// status snapshots the job for the status body.
func (j *job) status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return SweepStatus{
		ID: j.id, State: j.state,
		Done: j.prog.Done, Skipped: j.prog.Skipped, Total: j.prog.Total,
		Error: j.errMsg,
	}
}

// jobTable is the id → job registry. Finished jobs are retained (for
// result polling and late SSE attaches) up to the configured cap, then
// evicted oldest-first; running jobs are never evicted. Retention is a
// fixed-size ring buffer, so retiring a job is O(1) however large the
// cap — the old slice-shift implementation cost O(n) per eviction.
type jobTable struct {
	mu    sync.Mutex
	m     map[string]*job
	ring  []string // circular buffer of finished ids, oldest at head
	head  int      // next write position
	count int      // occupied slots
	next  int
}

// DefaultMaxFinishedJobs is the default bound on completed job handles
// the table keeps (entobenchd -maxjobs). The handles hold rendered
// reports, so this bound (together with the sweep cache capacity) is
// what keeps a long-running server's memory flat.
const DefaultMaxFinishedJobs = 128

func (t *jobTable) init(maxFinished int) {
	if maxFinished <= 0 {
		maxFinished = DefaultMaxFinishedJobs
	}
	t.m = make(map[string]*job)
	t.ring = make([]string, maxFinished)
}

// create mints a new job in the given initial state (StateRunning for
// sync submissions, StateQueued for async ones awaiting dispatch).
func (t *jobTable) create(state string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	j := &job{
		id:     fmt.Sprintf("s%d", t.next),
		state:  state,
		subs:   make(map[int]*subscriber),
		doneCh: make(chan struct{}),
	}
	t.m[j.id] = j
	return j
}

// lookup resolves a job id.
func (t *jobTable) lookup(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.m[id]
	return j, ok
}

// drop removes a job outright — only for handles whose id was never
// disclosed to any client (an async submission refused at admission).
func (t *jobTable) drop(id string) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}

// retire records a finished job for bounded retention: the ring slot
// it claims evicts whatever finished job held it before.
func (t *jobTable) retire(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == len(t.ring) {
		delete(t.m, t.ring[t.head])
	} else {
		t.count++
	}
	t.ring[t.head] = id
	t.head = (t.head + 1) % len(t.ring)
}

// resolveSweep turns a request into the kernel and board selections,
// reporting the first unresolvable name.
func resolveSweep(req SweepRequest) ([]core.Spec, []mcu.Arch, error) {
	var specs []core.Spec
	if len(req.Kernels) == 0 {
		specs = core.Suite()
	} else {
		for _, name := range req.Kernels {
			sp, ok := core.ByName(name)
			if !ok {
				return nil, nil, fmt.Errorf("unknown kernel %q", name)
			}
			specs = append(specs, sp)
		}
	}
	if req.Archs == "" {
		return specs, mcu.TableIVSet(), nil
	}
	archs, err := mcu.ResolveArchs(req.Archs)
	if err != nil {
		return nil, nil, err
	}
	return specs, archs, nil
}

// validateSweep rejects out-of-range numeric wire fields with a
// field-naming 400 body. 0 is indistinguishable from absent on
// omitempty fields, so 0 keeps the server default and only negative
// values are refused.
func validateSweep(w http.ResponseWriter, req SweepRequest) bool {
	switch {
	case req.Workers < 0:
		writeFieldError(w, "workers", "workers must be positive (got %d); omit it to keep the server default", req.Workers)
	case req.CellTimeoutMS < 0:
		writeFieldError(w, "cell_timeout_ms", "cell_timeout_ms must be positive (got %d); omit it to keep the server default", req.CellTimeoutMS)
	case req.DeadlineMS < 0:
		writeFieldError(w, "deadline_ms", "deadline_ms must be positive (got %d); omit it for no client deadline", req.DeadlineMS)
	default:
		return true
	}
	return false
}

// sweepDeadline resolves the effective deadline: the request's
// deadline_ms capped by -maxdeadline, which also applies as the
// default when the request carries none. 0 means unbounded.
func (s *Server) sweepDeadline(req SweepRequest) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if s.opts.MaxDeadline > 0 && (d == 0 || d > s.opts.MaxDeadline) {
		d = s.opts.MaxDeadline
	}
	return d
}

// handleSweep is POST /v1/sweep: decode, validate, resolve, pass
// admission, run through the keyed cache, respond. Synchronous
// requests block until the report is ready and stream nothing; async
// requests return 202 immediately and are watched via /v1/sweep/{id}
// and its /events stream. Requests whose query is already warm or in
// flight in the sweep cache bypass admission — only work that would
// start a fresh sweep consumes the in-flight budget.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "parse sweep request: %v", err)
		return
	}
	if !validateSweep(w, req) {
		return
	}
	specs, archs, err := resolveSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := core.SweepOptions{Workers: s.opts.Workers, CellTimeout: s.opts.CellTimeout, CellCache: s.opts.CellCache, Backend: s.opts.Backend}
	if req.Workers > 0 {
		opts.Workers = req.Workers
	}
	if req.CellTimeoutMS > 0 {
		opts.CellTimeout = time.Duration(req.CellTimeoutMS) * time.Millisecond
	}
	if req.Backend != "" {
		be, ok := harness.BackendByName(req.Backend)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown backend %q (registered: %s)",
				req.Backend, strings.Join(harness.BackendNames(), ", "))
			return
		}
		opts.Backend = be
	}
	deadline := s.sweepDeadline(req)
	weight := sweepWeight(specs, archs)
	// Admission-exempt when the cache already holds the query (warm hit
	// or coalescing join): serving it is nearly free, shedding it would
	// discard paid-for work. The check is advisory — an entry evicted
	// between check and run just makes this one unadmitted miss.
	free := report.SweepQueryPresent(specs, archs, opts.Backend)

	if req.Async {
		s.handleSweepAsync(w, specs, archs, opts, deadline, weight, free)
		return
	}
	if !free && !s.adm.tryAcquire(weight) {
		ctrShed.Inc()
		s.writeShed(w, http.StatusTooManyRequests,
			"server at capacity: sweep weight %d exceeds the available in-flight budget", weight)
		return
	}
	// Synchronous: the request context rides the cancellation plumbing.
	// A disconnected client drops this job's cache subscription; the
	// underlying run cancels only if no other client shares it. The
	// resolved deadline bounds the whole request.
	j := s.jobs.create(StateRunning)
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	start := time.Now()
	s.runJob(ctx, j, specs, archs, opts)
	cancel()
	if !free {
		s.adm.release(weight, time.Since(start))
	}
	st := j.status()
	if st.State == StateFailed {
		if j.wasDeadline() {
			writeJSON(w, http.StatusGatewayTimeout, ErrorBody{
				Error: fmt.Sprintf("sweep %s: deadline of %v elapsed before any result", j.id, deadline),
				Code:  ErrCodeDeadlineExceeded,
			})
			return
		}
		writeError(w, http.StatusInternalServerError, "sweep %s: %s", j.id, st.Error)
		return
	}
	w.Header().Set(SweepIDHeader, j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.body)
}

// handleSweepAsync admits, queues, or sheds an async submission. Async
// jobs are owned by the server, not the submitting connection: once
// dispatched they run on a background context (bounded only by the
// resolved deadline) and complete whether or not the submitter sticks
// around to watch.
func (s *Server) handleSweepAsync(w http.ResponseWriter, specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions, deadline time.Duration, weight int, free bool) {
	j := s.jobs.create(StateQueued)
	startJob := func() {
		j.setState(StateRunning)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		start := time.Now()
		s.runJob(ctx, j, specs, archs, opts)
		cancel()
		if !free {
			s.adm.release(weight, time.Since(start))
		}
	}
	accepted := SweepAccepted{
		ID:     j.id,
		Result: "/v1/sweep/" + j.id,
		Events: "/v1/sweep/" + j.id + "/events",
	}
	if free {
		go startJob()
		writeJSON(w, http.StatusAccepted, accepted)
		return
	}
	q := &queuedSweep{
		weight: weight,
		start:  startJob,
		shed: func() {
			ctrShed.Inc()
			j.finishShed()
			s.jobs.retire(j.id)
			s.logf("sweep %s: shed (evicted from admission queue)", j.id)
		},
	}
	if !s.adm.submitAsync(q) {
		// No queue configured and no capacity: refuse outright. The job
		// id was never disclosed, so drop the handle entirely.
		s.jobs.drop(j.id)
		ctrShed.Inc()
		s.writeShed(w, http.StatusServiceUnavailable,
			"server at capacity and async queue disabled: sweep weight %d refused", weight)
		return
	}
	writeJSON(w, http.StatusAccepted, accepted)
}

// runJob executes one job through the keyed sweep cache and publishes
// its outcome. A partial sweep — contained kernel failures, watchdog
// timeouts — still renders: the report carries the failures block and
// the job completes as done (HTTP 200), because a characterization
// with explicit gaps is a result, not a server error.
func (s *Server) runJob(ctx context.Context, j *job, specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions) {
	opts.Context = ctx
	opts.Progress = j.update
	start := time.Now()
	c, err := report.RunSweepQuery(specs, archs, opts)
	if err != nil && len(c.Records) == 0 {
		// The sweep's own error wraps the run context's cancellation
		// (context.Canceled when this request's departure canceled it),
		// so the request context is what tells a deadline death apart
		// from a disconnect.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			j.mu.Lock()
			j.deadlineHit = true
			j.mu.Unlock()
		}
		s.logf("sweep %s: failed after %v: %v", j.id, time.Since(start).Round(time.Millisecond), err)
		j.finish(nil, 0, false, err.Error())
		s.jobs.retire(j.id)
		return
	}
	var buf bytes.Buffer
	if werr := c.WriteJSON(&buf); werr != nil {
		j.finish(nil, 0, false, werr.Error())
		s.jobs.retire(j.id)
		return
	}
	s.logf("sweep %s: %d datapoints in %v (partial=%v)",
		j.id, c.Datapoints(), time.Since(start).Round(time.Millisecond), c.Partial())
	j.finish(buf.Bytes(), c.Datapoints(), c.Partial(), "")
	s.jobs.retire(j.id)
}

// handleSweepResult is GET /v1/sweep/{id}: the rendered report once
// done (200), the live status while queued or running (202), the
// failure after a total loss (500), a shed notice with Retry-After for
// a job evicted from the admission queue (503), or 404 for an unknown
// id.
func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep id %q", r.PathValue("id"))
		return
	}
	st := j.status()
	switch st.State {
	case StateShed:
		s.writeShed(w, http.StatusServiceUnavailable, "sweep %s: %s", j.id, st.Error)
	case StateDone:
		w.Header().Set(SweepIDHeader, j.id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		j.mu.Lock()
		body := j.body
		j.mu.Unlock()
		_, _ = w.Write(body)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}
