package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
)

// GET /metrics: the obs counter registry in Prometheus text exposition
// format, so a scraper pointed at entobenchd sees cache effectiveness
// (hits vs misses vs coalesced joins), fault containment
// (cells_failed, panics_recovered, cells_timed_out), and server load
// (requests, sse_clients) without any new instrumentation layer.

// MetricsPrefix namespaces every exported counter. A dotted obs name
// maps to the metric MetricsPrefix + name with dots replaced by
// underscores: sweep.cache.hit -> entobench_sweep_cache_hit.
const MetricsPrefix = "entobench_"

// metricName converts a canonical obs counter name to its Prometheus
// metric name.
func metricName(counter string) string {
	return MetricsPrefix + strings.ReplaceAll(counter, ".", "_")
}

// gaugeCounters are the obs names whose value is a current level, not
// a cumulative total; they export with TYPE gauge.
var gaugeCounters = map[string]bool{
	obs.CounterServerQueueDepth: true,
}

// handleMetrics renders every registered counter, sorted by metric
// name for a stable scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	counters := obs.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, name := range names {
		m := metricName(name)
		typ := "counter"
		if gaugeCounters[name] {
			typ = "gauge"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m, typ, m, counters[name])
	}
}
