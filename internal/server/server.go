// Package server implements characterization-as-a-service: the HTTP
// handler behind cmd/entobenchd. It serves the full suite sweep — and
// arbitrary kernel-subset × board-set queries — to many concurrent
// clients over a small, fully documented wire surface (docs/server.md):
//
//	POST /v1/sweep                  run (or join, or serve cached) a sweep; v1 JSON report out
//	GET  /v1/sweep/{id}             result / status of a submitted sweep
//	GET  /v1/sweep/{id}/events      SSE progress stream of a sweep
//	GET  /v1/boards                 board registry introspection
//	GET  /v1/kernels                kernel registry introspection
//	GET  /healthz                   liveness probe
//	GET  /metrics                   obs counters, Prometheus text format
//
// The server is a thin shell over the same machinery the CLIs use: a
// sweep request resolves through the registries (internal/mcu,
// internal/core), runs through the keyed sharded cache
// (report.RunSweepQuery) — so identical in-flight queries coalesce via
// singleflight and repeated queries are served from memory — and
// renders through the deterministic v1 JSON encoder, which is what
// makes a served sweep byte-identical to `entobench sweep -json` for
// the same query. Per-request contexts ride the sweep engine's
// cancellation plumbing: a disconnected client drops its cache
// subscription, and only when the last client of a run is gone does
// the run itself cancel — one bad or abandoned query can never take
// down cells another client is waiting on, which is the PR 5 fault
// containment cashed in as a service guarantee.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
)

// Server counters (docs/observability.md, docs/server.md).
var (
	ctrRequests   = obs.NewCounter(obs.CounterServerRequests)
	ctrSSEClients = obs.NewCounter(obs.CounterServerSSEClients)
)

// Options configures a Server. The zero value serves with GOMAXPROCS
// sweep workers and no per-cell watchdog.
type Options struct {
	// Workers is the sweep worker-pool size used for cache-filling
	// runs; <= 0 means GOMAXPROCS. The count never changes result
	// bytes.
	Workers int
	// CellTimeout, when positive, arms the per-cell watchdog on every
	// served sweep (core.SweepOptions.CellTimeout), so a hung custom
	// kernel costs its own cells, not the server.
	CellTimeout time.Duration
	// CellCache, when non-nil, backs every cache-filling run with the
	// persistent per-cell store (entobenchd -cachedir): cells computed
	// by any prior run — this process or an earlier one — load from
	// disk, so a restarted daemon answers its first query warm. Served
	// bytes are unchanged (loaded cells are byte-identical to
	// recomputation).
	CellCache core.CellCache
	// Backend, when non-nil, is the default measurement backend for
	// every served sweep (entobenchd -backend/-tracefile); nil serves
	// the classic simulator path. Requests override it with the
	// `backend` field — "sim" restores the classic path, any other name
	// resolves through the process backend registry.
	Backend harness.Backend
	// MaxInflight bounds the total weight (measurement cells) of
	// cache-filling sweeps running at once — the admission budget
	// (entobenchd -maxinflight); <= 0 means DefaultMaxInflight.
	// Requests whose query is already cached or in flight bypass the
	// budget; synchronous requests over it are shed with 429.
	MaxInflight int
	// MaxQueue bounds the admitted-but-waiting async job queue
	// (entobenchd -maxqueue); 0 means DefaultMaxQueue, negative means
	// no queue (over-budget async submissions are refused outright).
	// When the queue is full the oldest queued job is evicted and
	// answers 503 on poll.
	MaxQueue int
	// MaxDeadline caps — and, when a request carries no deadline_ms,
	// supplies — the per-request sweep deadline (entobenchd
	// -maxdeadline); 0 means no cap and no default.
	MaxDeadline time.Duration
	// MaxFinishedJobs bounds retained finished job handles (entobenchd
	// -maxjobs); <= 0 means DefaultMaxFinishedJobs.
	MaxFinishedJobs int
	// Logf, when non-nil, receives one line per completed sweep job
	// (Printf-style). Nil disables logging.
	Logf func(format string, args ...any)
}

// healthReporter is what a cell cache exposes to surface degraded mode
// on /healthz (report.PersistentCellCache implements it).
type healthReporter interface {
	Health() (ok bool, reasons []string)
}

// Server is the entobenchd HTTP handler state: the route mux, the
// sweep job table, and the admission controller.
type Server struct {
	opts Options
	mux  *http.ServeMux
	jobs jobTable
	adm  *admission
}

// New builds a Server and registers its routes.
func New(opts Options) *Server {
	if opts.MaxQueue == 0 {
		opts.MaxQueue = DefaultMaxQueue
	} else if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	s := &Server{opts: opts, mux: http.NewServeMux(), adm: newAdmission(opts.MaxInflight, opts.MaxQueue)}
	s.jobs.init(opts.MaxFinishedJobs)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/boards", s.handleBoards)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweep/{id}", s.handleSweepResult)
	s.mux.HandleFunc("GET /v1/sweep/{id}/events", s.handleSweepEvents)
	return s
}

// Handler returns the root handler: the route mux wrapped with the
// request counter.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctrRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

// logf logs one line when logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Route describes one wire endpoint — the metadata tools/checkdocs
// pins docs/server.md against.
type Route struct {
	Method  string
	Pattern string
	Summary string
}

// Routes lists every endpoint the server registers, in docs order.
// Adding a route here without documenting it in docs/server.md fails
// the checkdocs gate (and vice versa: New must register exactly these).
func Routes() []Route {
	return []Route{
		{"POST", "/v1/sweep", "run, join, or serve from cache a characterization sweep; v1 JSON report out"},
		{"GET", "/v1/sweep/{id}", "result (done) or status (running) of a submitted sweep"},
		{"GET", "/v1/sweep/{id}/events", "SSE progress stream of a sweep"},
		{"GET", "/v1/boards", "board registry: every registered core with provenance and model"},
		{"GET", "/v1/kernels", "kernel registry: every suite kernel with stage/category/dataset"},
		{"GET", "/healthz", "liveness probe"},
		{"GET", "/metrics", "obs counters in Prometheus text exposition format"},
	}
}

// ErrorBody is the JSON error envelope of every non-2xx response. The
// optional fields make refusals machine-readable: code classifies the
// refusal, field names the offending wire field on a validation 400,
// and retry_after_ms mirrors the Retry-After header on a shed.
type ErrorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	Field        string `json:"field,omitempty"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

// Error codes carried by ErrorBody.Code.
const (
	// ErrCodeBadRequest marks a validation refusal; ErrorBody.Field
	// names the offending wire field.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeOverloaded marks a load shed (429 synchronous refusal or
	// 503 evicted async job); Retry-After is always present.
	ErrCodeOverloaded = "overloaded"
	// ErrCodeDeadlineExceeded marks a sweep whose deadline_ms elapsed
	// before any cell completed (504).
	ErrCodeDeadlineExceeded = "deadline_exceeded"
)

// writeError sends the JSON error envelope with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// writeFieldError sends a validation 400 naming the offending field.
func writeFieldError(w http.ResponseWriter, field, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, ErrorBody{
		Error: fmt.Sprintf(format, args...),
		Code:  ErrCodeBadRequest,
		Field: field,
	})
}

// writeShed answers a shed request: Retry-After header plus the
// machine-readable body. Callers count server.shed_total at the moment
// of the shed decision, not here — a client polling an already-shed
// job repeats this response without being a new shed.
func (s *Server) writeShed(w http.ResponseWriter, status int, format string, args ...any) {
	ra := s.adm.retryAfter()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int((ra+time.Second-1)/time.Second)))
	writeJSON(w, status, ErrorBody{
		Error:        fmt.Sprintf(format, args...),
		Code:         ErrCodeOverloaded,
		RetryAfterMS: int(ra / time.Millisecond),
	})
}

// writeJSON sends v as indented JSON (the house encoding: deterministic
// struct-driven fields, two-space indent, trailing newline).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleHealthz is the liveness probe. A fully operational process
// answers exactly "ok"; a process serving in degraded mode (read-only
// cell store after persistent I/O failure) answers "degraded" followed
// by one "reason: ..." line per cause. Both are 200: a degraded daemon
// is alive and still serving — restarting it would only lose the warm
// cells it can still answer from.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if hr, ok := s.opts.CellCache.(healthReporter); ok {
		if healthy, reasons := hr.Health(); !healthy {
			fmt.Fprintln(w, "degraded")
			for _, reason := range reasons {
				fmt.Fprintln(w, "reason:", reason)
			}
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// Kernel is one row of the kernel-registry introspection response.
type Kernel struct {
	Name      string `json:"name"`
	Stage     string `json:"stage"`
	Category  string `json:"category"`
	Dataset   string `json:"dataset"`
	Precision string `json:"precision"`
	MinSRAMKB int    `json:"min_sram_kb,omitempty"`
	M7Only    bool   `json:"m7_only,omitempty"`
}

// handleKernels serves the suite registry: every kernel (curated plus
// registered), in Table III order.
func (s *Server) handleKernels(w http.ResponseWriter, _ *http.Request) {
	suite := core.Suite()
	out := struct {
		Kernels []Kernel `json:"kernels"`
	}{Kernels: make([]Kernel, 0, len(suite))}
	for _, sp := range suite {
		out.Kernels = append(out.Kernels, Kernel{
			Name:      sp.Name,
			Stage:     string(sp.Stage),
			Category:  sp.Category,
			Dataset:   sp.Dataset,
			Precision: sp.Prec.String(),
			MinSRAMKB: sp.MinSRAMKB,
			M7Only:    sp.M7Only,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBoards serves the board registry in registration order, in the
// same shape as the JSON export's provenance block (report.JSONBoard).
func (s *Server) handleBoards(w http.ResponseWriter, _ *http.Request) {
	boards := mcu.All()
	out := struct {
		Boards []report.JSONBoard `json:"boards"`
	}{Boards: make([]report.JSONBoard, 0, len(boards))}
	for _, a := range boards {
		out.Boards = append(out.Boards, report.JSONBoard{
			Name:     a.Name,
			Board:    a.Board,
			ISA:      a.ISA,
			ClockMHz: a.ClockHz / 1e6,
			FPU:      a.FPU.String(),
			SRAMKB:   a.SRAMKB,
			HasCache: a.HasCache,
			Source:   a.Source,
			Model:    a.Model,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
