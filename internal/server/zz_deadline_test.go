package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/report"
	"repro/internal/server"
)

// Request-deadline enforcement (deadline_ms, docs/server.md). These
// tests register a hanging kernel, which is process-permanent and would
// wedge any later full-suite sweep in this package, so the file is
// zz-named to run after every other server_test.go test (the same
// convention as TestZZFaultInjectedSweepIs200Partial).

// TestZZDeadlineEnforcement: a sweep that produced nothing by its
// deadline is an explicit 504 with code deadline_exceeded; one that
// produced some cells still answers 200 with the partial report — the
// deadline reclaims the stuck workers either way.
func TestZZDeadlineEnforcement(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // drain the abandoned hang goroutines
	if err := core.Register(faultinject.HangerSpec("zz-deadline-hang", release)); err != nil {
		t.Fatal(err)
	}
	report.InvalidateCharacterization()
	defer report.InvalidateCharacterization()
	h := server.New(server.Options{Workers: 4}).Handler()

	t.Run("504-when-nothing-completes", func(t *testing.T) {
		rec := postSweep(t, h, `{"kernels":["zz-deadline-hang"],"archs":"M4","deadline_ms":150}`)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
		}
		var eb server.ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatal(err)
		}
		if eb.Code != server.ErrCodeDeadlineExceeded {
			t.Fatalf("code = %q, want %q", eb.Code, server.ErrCodeDeadlineExceeded)
		}
		if eb.Error == "" {
			t.Fatal("504 body lost its error message")
		}
	})

	// The partial case uses slow kernels, not the hanger: a kernel hung
	// with no watchdog wedges its worker inline, so the canceled sweep
	// could never return a partial. Slow kernels always finish their
	// current job, which is exactly the shape deadline_ms cuts between
	// jobs — the fast kernel's cells survive, the undispatched slow
	// cells become skipped failures.
	t.Run("200-partial-when-some-cells-complete", func(t *testing.T) {
		report.InvalidateCharacterization()
		slow := make([]string, 4)
		for i := range slow {
			slow[i] = fmt.Sprintf("zz-deadline-slow-%d", i)
			if err := core.Register(faultinject.SlowSpec(slow[i], 120*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		body := fmt.Sprintf(
			`{"kernels":["madgwick","%s","%s","%s","%s"],"archs":"M4","workers":2,"deadline_ms":250}`,
			slow[0], slow[1], slow[2], slow[3])
		rec := postSweep(t, h, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, want 200 (partial report): %s", rec.Code, rec.Body.String())
		}
		var rep report.JSONReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if !rep.Partial {
			t.Fatal("deadline-cut report not marked partial")
		}
		if len(rep.Failures) == 0 {
			t.Fatal("deadline-cut report lost its failures block")
		}
		for _, f := range rep.Failures {
			if f.Kernel == "madgwick" {
				t.Fatalf("fast kernel charged with a deadline failure: %+v", f)
			}
		}
		found := false
		for _, k := range rep.Kernels {
			if k.Name == "madgwick" {
				found = true
				if len(k.Cells) == 0 {
					t.Fatal("fast kernel lost its cells to the deadline")
				}
			}
		}
		if !found {
			t.Fatal("fast kernel missing from the partial report")
		}
	})
}
