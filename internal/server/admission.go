package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/obs"
)

// Weighted admission control for the sweep path (docs/server.md
// "Overload & degraded mode"). Every request that would start a fresh
// cache-filling sweep carries a weight — its measurement-cell count, a
// direct proxy for the compute it will pin — and must acquire that
// weight from a global in-flight budget before running. Requests whose
// query is already warm or in flight in the keyed sweep cache bypass
// admission entirely: hits and coalescing joins are nearly free, so
// shedding them would only throw away work the server has already paid
// for. Synchronous submissions that do not fit are refused on the spot
// with 429; asynchronous submissions park in a bounded FIFO queue and
// the oldest queued job is evicted (answered 503 on poll) when the
// queue overflows. Both sheds carry Retry-After and a machine-readable
// error body, and both count on server.shed_total.

// Admission counters (docs/observability.md): sheds are monotone,
// queue depth is gauge-valued (see obs.Counter.Dec).
var (
	ctrShed       = obs.NewCounter(obs.CounterServerShedTotal)
	ctrQueueDepth = obs.NewCounter(obs.CounterServerQueueDepth)
)

// DefaultMaxInflight is the default in-flight sweep budget in weight
// units (measurement cells). The full-suite default-board sweep weighs
// a few hundred units, so the default admits a handful of distinct
// full-grid sweeps — or many small ones — before shedding.
const DefaultMaxInflight = 2048

// DefaultMaxQueue is the default bound on admitted-but-waiting async
// sweep jobs.
const DefaultMaxQueue = 64

// retryAfterMin/Max clamp the Retry-After estimate.
const (
	retryAfterMin = 1 * time.Second
	retryAfterMax = 60 * time.Second
)

// sweepWeight is a request's admission weight: one unit per static job
// plus two per fitting (kernel, arch) pair — the cache-on and
// cache-off measurement cells — which is exactly the sweep engine's
// job count for the query.
func sweepWeight(specs []core.Spec, archs []mcu.Arch) int {
	w := 0
	for _, sp := range specs {
		w++
		for _, a := range archs {
			if sp.Fits(a) {
				w += 2
			}
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// queuedSweep is one async job parked in the admission queue: its
// weight, the closure that runs it once dispatched, and the closure
// that sheds it if it is evicted first.
type queuedSweep struct {
	weight int
	start  func()
	shed   func()
}

// admission is the global controller: an in-flight weight budget plus
// the bounded async queue, one per Server.
type admission struct {
	mu       sync.Mutex
	capacity int
	maxQueue int
	inflight int
	queue    []*queuedSweep

	// ewma tracks recent sweep wall time (nanoseconds) to size
	// Retry-After: a shed client should come back roughly when the work
	// ahead of it has drained.
	ewma atomic.Int64
}

func newAdmission(capacity, maxQueue int) *admission {
	if capacity <= 0 {
		capacity = DefaultMaxInflight
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// fitsLocked reports whether weight can start now. An idle controller
// always admits — a single query heavier than the whole budget must
// run eventually, not be refused forever.
func (a *admission) fitsLocked(weight int) bool {
	return a.inflight == 0 || a.inflight+weight <= a.capacity
}

// tryAcquire claims weight for a synchronous sweep; the caller must
// release() it when the sweep returns.
func (a *admission) tryAcquire(weight int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.fitsLocked(weight) {
		return false
	}
	a.inflight += weight
	return true
}

// submitAsync admits, queues, or refuses an async sweep. Admitted jobs
// start on their own goroutine immediately; queued jobs start when
// release makes room, oldest first; when the queue is full the oldest
// queued job is evicted (shed) to make room for the newcomer, and with
// no queue at all the newcomer itself is refused (ok=false).
func (a *admission) submitAsync(q *queuedSweep) (ok bool) {
	var evicted *queuedSweep
	a.mu.Lock()
	if a.fitsLocked(q.weight) {
		a.inflight += q.weight
		a.mu.Unlock()
		go q.start()
		return true
	}
	if a.maxQueue == 0 {
		a.mu.Unlock()
		return false
	}
	if len(a.queue) >= a.maxQueue {
		evicted = a.queue[0]
		a.queue = a.queue[1:]
		ctrQueueDepth.Dec()
	}
	a.queue = append(a.queue, q)
	ctrQueueDepth.Inc()
	a.mu.Unlock()
	if evicted != nil {
		evicted.shed()
	}
	return true
}

// release returns weight to the budget, records the sweep's wall time
// for Retry-After sizing, and dispatches queued jobs that now fit.
func (a *admission) release(weight int, took time.Duration) {
	a.observe(took)
	var starts []*queuedSweep
	a.mu.Lock()
	a.inflight -= weight
	if a.inflight < 0 {
		a.inflight = 0
	}
	for len(a.queue) > 0 && a.fitsLocked(a.queue[0].weight) {
		q := a.queue[0]
		a.queue = a.queue[1:]
		a.inflight += q.weight
		ctrQueueDepth.Dec()
		starts = append(starts, q)
	}
	a.mu.Unlock()
	for _, q := range starts {
		go q.start()
	}
}

// observe folds one sweep duration into the EWMA (α = 1/4).
func (a *admission) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := a.ewma.Load()
		next := int64(d)
		if old > 0 {
			next = (3*old + int64(d)) / 4
		}
		if a.ewma.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates when a shed client should come back: the recent
// sweep wall time, clamped to [1s, 60s].
func (a *admission) retryAfter() time.Duration {
	d := time.Duration(a.ewma.Load())
	if d < retryAfterMin {
		return retryAfterMin
	}
	if d > retryAfterMax {
		return retryAfterMax
	}
	return d
}

// queueLen is the current number of parked async jobs (tests, logs).
func (a *admission) queueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}
