package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// SSE progress streaming for GET /v1/sweep/{id}/events. The stream
// speaks plain Server-Sent Events (text/event-stream): zero client
// dependencies beyond curl -N or a browser EventSource.

// SSE event names (docs/server.md documents each).
const (
	// SSEEventProgress carries a progressEvent snapshot:
	// {"done":D,"skipped":S,"total":T}. Progress is monotone — the
	// stream never goes backwards even though sweep workers report
	// concurrently — but not gap-free: a slow client skips intermediate
	// snapshots rather than stalling the sweep.
	SSEEventProgress = "progress"
	// SSEEventDone terminates the stream of a sweep that produced a
	// report: {"id":...,"datapoints":N,"partial":bool}. partial=true
	// means the report carries a failures block.
	SSEEventDone = "done"
	// SSEEventError terminates the stream of a sweep that produced no
	// report at all: {"id":...,"error":"..."}.
	SSEEventError = "error"
)

// sseDone is the SSEEventDone payload.
type sseDone struct {
	ID         string `json:"id"`
	Datapoints int    `json:"datapoints"`
	Partial    bool   `json:"partial"`
}

// sseError is the SSEEventError payload.
type sseError struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// writeSSE emits one event frame and flushes it to the client.
func writeSSE(w http.ResponseWriter, flusher http.Flusher, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}

// handleSweepEvents is GET /v1/sweep/{id}/events: subscribe to the
// job's progress fanout, replay the current snapshot so a late client
// starts from truth rather than zero, stream monotone progress frames,
// and close with a terminal done/error frame. Attaching to an already
// finished job replays the final progress snapshot and terminates
// immediately.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep id %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	ctrSSEClients.Inc()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: a client attaching to a job that has not
	// reported progress yet must still see the stream open immediately
	// instead of blocking until the first event happens to be written.
	flusher.Flush()

	id, sub, snapshot := j.subscribe()
	defer j.unsubscribe(id)
	if snapshot.Total > 0 {
		writeSSE(w, flusher, SSEEventProgress, snapshot)
	}
	for {
		select {
		case ev := <-sub.ch:
			writeSSE(w, flusher, SSEEventProgress, ev)
		case <-sub.kicked:
			// The fanout marked this subscriber stalled (its buffer
			// stayed full across many events — a client that stopped
			// reading without disconnecting). Drop it; the fanout never
			// blocked on it and its goroutine ends here.
			return
		case <-j.doneCh:
			// Drain any progress frames that raced completion so the
			// last progress a client sees is the final count.
			for {
				select {
				case ev := <-sub.ch:
					writeSSE(w, flusher, SSEEventProgress, ev)
					continue
				default:
				}
				break
			}
			st := j.status()
			switch st.State {
			case StateFailed, StateShed:
				writeSSE(w, flusher, SSEEventError, sseError{ID: j.id, Error: st.Error})
			default:
				j.mu.Lock()
				done := sseDone{ID: j.id, Datapoints: j.datapoints, Partial: j.partial}
				j.mu.Unlock()
				writeSSE(w, flusher, SSEEventDone, done)
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}
