package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// Stalled-SSE-client containment (docs/server.md, docs/robustness.md
// "slow clients cost themselves only"): the progress fanout never
// blocks on a subscriber, and a subscriber that stays full across many
// consecutive events is kicked so its handler goroutine cannot outlive
// the job.

// TestStalledSubscriberKicked: a subscriber that never drains is kicked
// after its buffer plus stallKickAfter consecutive misses, exactly
// once — further fanout events must not close the kick channel again.
func TestStalledSubscriberKicked(t *testing.T) {
	var tbl jobTable
	tbl.init(4)
	j := tbl.create(StateRunning)
	_, sub, _ := j.subscribe()

	total := cap(sub.ch) + stallKickAfter
	for i := 1; i <= total; i++ {
		j.update(i, 0, 1<<20)
	}
	select {
	case <-sub.kicked:
	default:
		t.Fatalf("subscriber not kicked after %d undrained events", total)
	}
	// A second close would panic; these must be no-ops on the kick path.
	for i := total + 1; i <= total+16; i++ {
		j.update(i, 0, 1<<20)
	}
}

// TestFreshSubscriberNotKicked: a subscriber that keeps draining is
// never kicked however many events flow.
func TestFreshSubscriberNotKicked(t *testing.T) {
	var tbl jobTable
	tbl.init(4)
	j := tbl.create(StateRunning)
	_, sub, _ := j.subscribe()
	for i := 1; i <= 10*stallKickAfter; i++ {
		j.update(i, 0, 1<<20)
		select {
		case <-sub.ch:
		default:
		}
	}
	select {
	case <-sub.kicked:
		t.Fatal("draining subscriber was kicked")
	default:
	}
}

// TestStalledSSEClientDropped: end to end over a real listener — a
// client that opens the events stream and stops reading fills the
// socket, stalls its handler, and is kicked; the fanout (driven here
// directly via j.update) never blocks, the stream terminates once the
// client drains, and the server returns to its goroutine baseline.
func TestStalledSSEClientDropped(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	j := s.jobs.create(StateRunning)

	base := runtime.NumGoroutine()
	resp, err := http.Get(ts.URL + "/v1/sweep/" + j.id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// Capture the handler's subscriber once it attaches. The kicked
	// handler unsubscribes on its way out, so the handle must be taken
	// before pumping rather than looked up afterwards.
	var sub *subscriber
	for start := time.Now(); sub == nil; {
		j.mu.Lock()
		for _, candidate := range j.subs {
			sub = candidate
		}
		j.mu.Unlock()
		if sub == nil {
			if time.Since(start) > 5*time.Second {
				t.Fatal("handler never subscribed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Pump progress far faster than the unreading client's handler can
	// flush it. The subscriber channel stays full across consecutive
	// events, the fanout kicks it, and the pump itself never blocks —
	// that is the guarantee under test.
	deadline := time.Now().Add(30 * time.Second)
pump:
	for i := 1; ; i++ {
		select {
		case <-sub.kicked:
			break pump
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("fanout never kicked the stalled client")
		}
		j.update(i, 0, 1<<30)
	}

	// Drain: the handler finishes its blocked write, sees the kick, and
	// ends the stream — the client reads through to EOF, no terminal
	// done/error frame required.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("draining the kicked stream: %v", err)
	}
	resp.Body.Close()

	waitUntil := time.Now().Add(5 * time.Second)
	for time.Now().Before(waitUntil) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — kicked SSE handler leaked",
		base, runtime.NumGoroutine())
}
