package server_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// srvLab is a measured backend covering madgwick on M4, registered once
// for the wire tests. Registration is process-global, like the kernels
// other tests register.
type srvLab struct{}

func (srvLab) Name() string        { return "srv-lab" }
func (srvLab) Source() string      { return harness.SourceMeasured }
func (srvLab) Fingerprint() string { return "wire-test" }
func (srvLab) Covers(kernel, arch string, cacheOn bool) bool {
	return strings.EqualFold(kernel, "madgwick") && strings.EqualFold(arch, "M4")
}
func (srvLab) Measure(req harness.MeasureRequest) (harness.Measurement, error) {
	return harness.SimBackend{}.Measure(req)
}

// TestSweepBackendField: the request's backend field selects a
// registered backend (provenance shows up in the served JSON), "sim"
// keeps the classic unlabeled bytes, and an unknown name is a 400 that
// lists the vocabulary — never a 500.
func TestSweepBackendField(t *testing.T) {
	if err := harness.RegisterBackend(srvLab{}); err != nil {
		t.Fatal(err)
	}
	h := newTestServer()

	classic := postSweep(t, h, smallSweepBody)
	if classic.Code != 200 {
		t.Fatalf("classic sweep: %d: %s", classic.Code, classic.Body)
	}
	if strings.Contains(classic.Body.String(), `"backends"`) {
		t.Error("classic served sweep carries a backends block")
	}

	viaSim := postSweep(t, h, `{"kernels":["madgwick"],"archs":"M4","backend":"sim"}`)
	if viaSim.Code != 200 {
		t.Fatalf("backend=sim sweep: %d: %s", viaSim.Code, viaSim.Body)
	}
	if viaSim.Body.String() != classic.Body.String() {
		t.Error("backend=sim diverges from the classic bytes")
	}

	viaLab := postSweep(t, h, `{"kernels":["madgwick"],"archs":"M4","backend":"srv-lab"}`)
	if viaLab.Code != 200 {
		t.Fatalf("backend=srv-lab sweep: %d: %s", viaLab.Code, viaLab.Body)
	}
	body := viaLab.Body.String()
	for _, want := range []string{`"source": "measured"`, `"name": "srv-lab"`, `"backends"`} {
		if !strings.Contains(body, want) {
			t.Errorf("srv-lab sweep missing %s", want)
		}
	}
	if body == classic.Body.String() {
		t.Error("backend selection did not change the served report")
	}

	bad := postSweep(t, h, `{"kernels":["madgwick"],"archs":"M4","backend":"nope"}`)
	if bad.Code != 400 {
		t.Fatalf("unknown backend: %d, want 400: %s", bad.Code, bad.Body)
	}
	for _, want := range []string{"unknown backend", "nope", "sim"} {
		if !strings.Contains(bad.Body.String(), want) {
			t.Errorf("400 body %q missing %q", bad.Body, want)
		}
	}
}
