package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/report"
	"repro/internal/server"
)

// BenchmarkServerSweepLoad is the server-path load test: hundreds of
// concurrent sweep requests through the full HTTP stack (real
// listener, real client), measuring steady-state request latency once
// the cache is warm. ns/op is the mean wall-clock per served request —
// the inverse of throughput — under SetParallelism(32)·GOMAXPROCS
// in-flight clients.
//
// "identical" hammers one hot query (every request a cache hit);
// "mixed" spreads requests across four distinct warmed queries plus
// the hot one, exercising shard spread and LRU promotion under load.
// The recorded numbers and budgets live in BENCH_server_baseline.json,
// enforced by tools/benchguard in CI next to BENCH_baseline.json.
func BenchmarkServerSweepLoad(b *testing.B) {
	report.InvalidateCharacterization()
	ts := httptest.NewServer(server.New(server.Options{Workers: 4}).Handler())
	defer ts.Close()

	queries := []string{
		`{"kernels":["madgwick"],"archs":"M4"}`,
		`{"kernels":["mahony"],"archs":"M4"}`,
		`{"kernels":["fourati"],"archs":"M4"}`,
		`{"kernels":["p3p"],"archs":"M4"}`,
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512}}
	post := func(q string) error {
		resp, err := client.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(q))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm every distinct query: the load phase measures the serving
	// path (routing, cache hit, response streaming), not sweep compute.
	for _, q := range queries {
		if err := post(q); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("identical", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(32)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := post(queries[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("mixed", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(32)
		var n atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[n.Add(1)%uint64(len(queries))]
				if err := post(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkAdmissionUncontended prices the admission control added in
// front of /v1/sweep on the path that matters: an uncontended server
// serving a warm query. Every request walks the full decision —
// request parsing, sweep-weight computation, the warm-path exemption
// probe, acquire/release — and must stay within noise of the
// pre-admission serving cost. Serial and in-process (no listener, no
// client) so ns/op isolates the handler, not the network stack; the
// budget lives in BENCH_server_baseline.json.
func BenchmarkAdmissionUncontended(b *testing.B) {
	report.InvalidateCharacterization()
	h := server.New(server.Options{Workers: 4}).Handler()
	const q = `{"kernels":["madgwick"],"archs":"M4"}`
	warm := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(q))
	h.ServeHTTP(warm, req)
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up status %d: %s", warm.Code, warm.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(q))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
