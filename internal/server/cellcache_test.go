package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server"
)

// The warm-restart contract of `entobenchd -cachedir`: a second daemon
// pointed at the directory a first daemon populated serves the same
// query byte-identically without recomputing a single cell — the
// in-memory sweep cache died with the "process", the persistent cell
// cache did not.
func TestServerWarmRestartFromCellCache(t *testing.T) {
	dir := t.TempDir()
	newServer := func() http.Handler {
		cc, err := report.OpenCellCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		return server.New(server.Options{Workers: 2, CellCache: cc}).Handler()
	}

	body := `{"kernels":["madgwick","mahony"],"archs":"M4,M33"}`
	post := func(h http.Handler) string {
		req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}

	first := post(newServer())

	// "Restart": a fresh server over the same directory, with the
	// process-wide in-memory sweep cache emptied so the only warmth
	// left is the on-disk one.
	report.InvalidateCharacterization()
	restarted := newServer()
	before := obs.Counters()
	second := post(restarted)
	after := obs.Counters()

	if first != second {
		t.Fatal("restarted server served different bytes")
	}
	if d := after[obs.CounterSweepCellsComputed] - before[obs.CounterSweepCellsComputed]; d != 0 {
		t.Fatalf("warm restart computed %d cells, want 0", d)
	}
	// 2 kernels × (1 static + 2 archs × 2 cache settings) jobs.
	if d := after[obs.CounterSweepCellsCached] - before[obs.CounterSweepCellsCached]; d != 10 {
		t.Fatalf("warm restart loaded %d cells, want 10", d)
	}
	if d := after[obs.CounterSweepCacheMiss] - before[obs.CounterSweepCacheMiss]; d != 1 {
		t.Fatalf("warm restart had %d in-memory misses, want 1 (the run must really have happened)", d)
	}
}
