package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server"
)

// The wire-surface contract: every route answers what docs/server.md
// promises, a served sweep is byte-identical to the CLI export,
// identical concurrent queries coalesce onto one characterization, and
// a fault-injected kernel degrades the report (failures block, 200) —
// never the server (500). The fault-injection test registers a kernel
// into the process-global suite, which is permanent, so it is
// ZZ-named to run last in the file.

// newTestServer builds a handler-under-test around a small worker pool.
func newTestServer() http.Handler {
	return server.New(server.Options{Workers: 4}).Handler()
}

// smallSweepBody is the cheap query most tests use: one kernel on one
// core, ~10 ms instead of the multi-second full grid.
const smallSweepBody = `{"kernels":["madgwick"],"archs":"M4"}`

// postSweep fires one synchronous POST /v1/sweep against h.
func postSweep(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	h := newTestServer()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 \"ok\\n\"", rec.Code, rec.Body.String())
	}
}

// TestIntrospection: /v1/kernels and /v1/boards mirror the live
// registries — same cardinality, same names, same order.
func TestIntrospection(t *testing.T) {
	h := newTestServer()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/kernels", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("kernels status = %d", rec.Code)
	}
	var kr struct {
		Kernels []server.Kernel `json:"kernels"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &kr); err != nil {
		t.Fatal(err)
	}
	suite := core.Suite()
	if len(kr.Kernels) != len(suite) {
		t.Fatalf("kernels = %d, suite = %d", len(kr.Kernels), len(suite))
	}
	for i, sp := range suite {
		if kr.Kernels[i].Name != sp.Name {
			t.Fatalf("kernel[%d] = %q, want %q", i, kr.Kernels[i].Name, sp.Name)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boards", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("boards status = %d", rec.Code)
	}
	var br struct {
		Boards []report.JSONBoard `json:"boards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	all := mcu.All()
	if len(br.Boards) != len(all) {
		t.Fatalf("boards = %d, registry = %d", len(br.Boards), len(all))
	}
	for i, a := range all {
		if br.Boards[i].Name != a.Name {
			t.Fatalf("board[%d] = %q, want %q", i, br.Boards[i].Name, a.Name)
		}
	}
}

// TestMetrics: the Prometheus endpoint exports every registered obs
// counter under the entobench_ prefix, and the request counter moves.
func TestMetrics(t *testing.T) {
	h := newTestServer()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range []string{
		"entobench_server_requests",
		"entobench_sweep_cache_hit",
		"entobench_sweep_cache_coalesced",
	} {
		if !strings.Contains(body, "# TYPE "+name+" counter\n") {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestSweepBadRequests: resolution and parse failures are 400s with
// the JSON error envelope — never 500s, never empty bodies.
func TestSweepBadRequests(t *testing.T) {
	h := newTestServer()
	cases := []struct {
		name, body string
	}{
		{"unknown-kernel", `{"kernels":["no-such-kernel"]}`},
		{"unknown-arch", `{"archs":"no-such-core"}`},
		{"malformed-json", `{"kernels":`},
		{"unknown-field", `{"kernelz":["madgwick"]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postSweep(t, h, c.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
			}
			var eb server.ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Fatalf("error envelope missing: %q (%v)", rec.Body.String(), err)
			}
		})
	}
}

func TestSweepResultUnknownID(t *testing.T) {
	h := newTestServer()
	for _, path := range []string{"/v1/sweep/s999", "/v1/sweep/s999/events"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, rec.Code)
		}
	}
}

// TestSweepByteIdenticalToCLI: the served report for a query is
// byte-for-byte what `entobench sweep -json` emits for the same query
// (both sides render report.Characterization.WriteJSON over the same
// cached records).
func TestSweepByteIdenticalToCLI(t *testing.T) {
	report.InvalidateCharacterization()
	h := newTestServer()
	rec := postSweep(t, h, smallSweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(server.SweepIDHeader) == "" {
		t.Error("response lost its " + server.SweepIDHeader + " header")
	}

	sp, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("madgwick left the suite")
	}
	archs, err := mcu.ResolveArchs("M4")
	if err != nil {
		t.Fatal(err)
	}
	c, err := report.RunSweepQuery([]core.Spec{sp}, archs, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := c.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatalf("served sweep differs from the CLI export:\nserved %d bytes\ndirect %d bytes",
			rec.Body.Len(), want.Len())
	}
}

// TestSweepCoalesces: N identical concurrent requests perform exactly
// one characterization — one cache miss, N-1 coalesced joins or hits —
// and every client gets identical bytes.
func TestSweepCoalesces(t *testing.T) {
	report.InvalidateCharacterization()
	obs.ResetCounters()
	h := newTestServer()

	const n = 8
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postSweep(t, h, smallSweepBody)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: bytes differ from request 0", i)
		}
	}
	ctrs := obs.Counters()
	if misses := ctrs[obs.CounterSweepCacheMiss]; misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 for %d identical requests", misses, n)
	}
	if joined := ctrs[obs.CounterSweepCacheCoalesced] + ctrs[obs.CounterSweepCacheHit]; joined != n-1 {
		t.Fatalf("coalesced+hit = %d, want %d", joined, n-1)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data string
}

// readSSE parses an SSE stream into frames.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestSweepAsyncAndSSE: an async submission is accepted immediately,
// its SSE stream delivers monotone progress frames terminated by one
// done frame, and the result endpoint then serves the full report.
func TestSweepAsyncAndSSE(t *testing.T) {
	report.InvalidateCharacterization()
	ts := httptest.NewServer(newTestServer())
	defer ts.Close()

	// Async submit a fresh (non-cached) query so there is progress to
	// stream: two kernels on two cores.
	body := `{"kernels":["madgwick","mahony"],"archs":"M4,M33","async":true}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc server.SweepAccepted
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || acc.ID == "" {
		t.Fatalf("accepted = %d %+v", resp.StatusCode, acc)
	}

	// Stream events until the server closes the stream at completion.
	es, err := http.Get(ts.URL + acc.Events)
	if err != nil {
		t.Fatal(err)
	}
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	events := readSSE(t, es.Body)
	es.Body.Close()

	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.name != server.SSEEventDone {
		t.Fatalf("terminal event = %q (%s), want %q", last.name, last.data, server.SSEEventDone)
	}
	var done struct {
		ID         string `json:"id"`
		Datapoints int    `json:"datapoints"`
		Partial    bool   `json:"partial"`
	}
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatal(err)
	}
	if done.ID != acc.ID || done.Datapoints == 0 || done.Partial {
		t.Fatalf("done frame = %+v", done)
	}
	// Progress frames are monotone in done+skipped.
	prev := -1
	for _, ev := range events[:len(events)-1] {
		if ev.name != server.SSEEventProgress {
			t.Fatalf("mid-stream event %q, want only progress", ev.name)
		}
		var p struct{ Done, Skipped, Total int }
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatal(err)
		}
		if p.Done+p.Skipped < prev {
			t.Fatalf("progress went backwards: %d after %d", p.Done+p.Skipped, prev)
		}
		prev = p.Done + p.Skipped
	}

	// The result endpoint now serves the report.
	rr, err := http.Get(ts.URL + acc.Result)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", rr.StatusCode, rb)
	}
	var rep report.JSONReport
	if err := json.Unmarshal(rb, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Datapoints != done.Datapoints {
		t.Fatalf("report datapoints %d != done frame %d", rep.Datapoints, done.Datapoints)
	}

	// A late SSE attach to the finished job replays the final progress
	// snapshot and terminates immediately.
	es2, err := http.Get(ts.URL + acc.Events)
	if err != nil {
		t.Fatal(err)
	}
	late := readSSE(t, es2.Body)
	es2.Body.Close()
	if len(late) != 2 || late[0].name != server.SSEEventProgress || late[1].name != server.SSEEventDone {
		t.Fatalf("late attach events = %+v, want final progress snapshot + done frame", late)
	}
}

// TestSweepCancellationNoGoroutineLeak: a client that disconnects
// mid-sweep takes down its own run (it was the only subscriber) and
// the server returns to its goroutine baseline — no abandoned workers,
// no stuck SSE fanout.
func TestSweepCancellationNoGoroutineLeak(t *testing.T) {
	report.InvalidateCharacterization()
	ts := httptest.NewServer(newTestServer())
	defer ts.Close()

	base := runtime.NumGoroutine()

	// A full-suite sweep is slow enough to cancel mid-flight.
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 30 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Skip("sweep finished before the client timeout; nothing to cancel")
	}

	// The run had one subscriber (the canceled request), so the sweep
	// context cancels and every worker drains.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			report.InvalidateCharacterization()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — canceled sweep leaked workers",
		base, runtime.NumGoroutine())
}

// TestZZFaultInjectedSweepIs200Partial: a request whose kernel set
// includes a panicking kernel still gets a 200 and a well-formed
// report — the healthy kernel's cells intact, partial:true, and one
// failures entry per lost job. Kernel registration is process-
// permanent, hence the ZZ prefix (this must run after every test that
// depends on the unmodified suite).
func TestZZFaultInjectedSweepIs200Partial(t *testing.T) {
	if err := core.Register(faultinject.PanickerSpec("zz-server-panic")); err != nil {
		t.Fatal(err)
	}
	report.InvalidateCharacterization()
	h := newTestServer()

	rec := postSweep(t, h, `{"kernels":["madgwick","zz-server-panic"],"archs":"M4"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (faults degrade the report, not the server): %s",
			rec.Code, rec.Body.String())
	}
	var rep report.JSONReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("report not marked partial")
	}
	if len(rep.Failures) == 0 {
		t.Fatal("report lost its failures block")
	}
	for _, f := range rep.Failures {
		if f.Kernel != "zz-server-panic" {
			t.Fatalf("healthy kernel charged with a failure: %+v", f)
		}
	}
	found := false
	for _, k := range rep.Kernels {
		if k.Name == "madgwick" {
			found = true
			if len(k.Cells) == 0 {
				t.Fatal("healthy kernel lost its cells")
			}
		}
	}
	if !found {
		t.Fatal("healthy kernel missing from the partial report")
	}
	report.InvalidateCharacterization()
}
