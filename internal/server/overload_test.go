package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
)

// White-box coverage of the overload surface (docs/server.md "Overload
// & degraded mode"): the admission controller's budget/queue mechanics,
// the shed wire shape (429/503 + Retry-After + machine-readable body),
// request validation, deadline resolution, bounded job retention, and
// the degraded /healthz report. These tests hold the admission budget
// directly (s.adm.tryAcquire) instead of racing slow sweeps, so every
// shed is deterministic. This file runs in the internal test package,
// before every server_test.go test, and registers no kernels.

// overloadBody is a cheap fresh query; tests that need a cache miss
// call report.InvalidateCharacterization() first.
const overloadBody = `{"kernels":["madgwick"],"archs":"M4"}`

// post drives one request through the handler without a listener.
func post(h http.Handler, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body)))
	return rec
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body not JSON: %q (%v)", rec.Body.String(), err)
	}
	return eb
}

// checkShed asserts the full shed wire contract: the status, the
// Retry-After header, and the machine-readable body mirroring it.
func checkShed(t *testing.T, rec *httptest.ResponseRecorder, status int) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d: %s", rec.Code, status, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	secs, err := time.ParseDuration(ra + "s")
	if err != nil || secs < time.Second {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	eb := decodeError(t, rec)
	if eb.Code != ErrCodeOverloaded {
		t.Fatalf("code = %q, want %q", eb.Code, ErrCodeOverloaded)
	}
	if eb.RetryAfterMS < 1000 {
		t.Fatalf("retry_after_ms = %d, want >= 1000", eb.RetryAfterMS)
	}
	if eb.Error == "" {
		t.Fatal("shed body lost its error message")
	}
}

// TestSweepWeight: a request's weight is the sweep engine's job count —
// one static job per kernel plus two cells per fitting board — and
// never below one.
func TestSweepWeight(t *testing.T) {
	sp, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("madgwick left the suite")
	}
	archs, err := mcu.ResolveArchs("M4")
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for _, a := range archs {
		if sp.Fits(a) {
			want += 2
		}
	}
	if got := sweepWeight([]core.Spec{sp}, archs); got != want {
		t.Fatalf("weight = %d, want %d", got, want)
	}
	if got := sweepWeight(nil, nil); got != 1 {
		t.Fatalf("empty weight = %d, want floor of 1", got)
	}
}

// TestAdmissionBudget: an idle controller admits anything (even a query
// heavier than the whole budget), a busy one refuses what does not fit,
// and release restores capacity.
func TestAdmissionBudget(t *testing.T) {
	a := newAdmission(10, 0)
	if !a.tryAcquire(100) {
		t.Fatal("idle controller refused an oversized query")
	}
	if a.tryAcquire(1) {
		t.Fatal("over-budget controller admitted more work")
	}
	a.release(100, time.Millisecond)
	if !a.tryAcquire(1) {
		t.Fatal("released budget not reusable")
	}
}

// TestAdmissionQueueFIFOAndEviction: queued async jobs dispatch oldest
// first when capacity frees, a full queue evicts (sheds) its oldest
// entry for the newcomer, and with no queue the newcomer is refused.
func TestAdmissionQueueFIFOAndEviction(t *testing.T) {
	a := newAdmission(10, 2)
	if !a.tryAcquire(10) {
		t.Fatal("could not fill the budget")
	}
	starts := make(chan string, 3)
	sheds := make(chan string, 3)
	// Weight 6 on a capacity of 10: only one queued job fits at a time,
	// so dispatch order is observable (concurrently dispatched jobs that
	// all fit would race their start goroutines).
	mk := func(id string) *queuedSweep {
		return &queuedSweep{
			weight: 6,
			start:  func() { starts <- id },
			shed:   func() { sheds <- id },
		}
	}
	for _, id := range []string{"q1", "q2", "q3"} {
		if !a.submitAsync(mk(id)) {
			t.Fatalf("%s refused with queue space available", id)
		}
	}
	select {
	case id := <-sheds:
		if id != "q1" {
			t.Fatalf("evicted %s, want the oldest (q1)", id)
		}
	default:
		t.Fatal("overflowing the queue evicted nothing")
	}
	if n := a.queueLen(); n != 2 {
		t.Fatalf("queue length = %d, want 2", n)
	}
	a.release(10, time.Millisecond) // idle: dispatches q2 (6), q3 (6) does not fit
	select {
	case id := <-starts:
		if id != "q2" {
			t.Fatalf("dispatched %s, want q2 (FIFO)", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("q2 never dispatched after release")
	}
	select {
	case id := <-starts:
		t.Fatalf("%s dispatched without capacity", id)
	default:
	}
	a.release(6, time.Millisecond) // q2's share back: q3 dispatches
	select {
	case id := <-starts:
		if id != "q3" {
			t.Fatalf("dispatched %s, want q3", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("q3 never dispatched after release")
	}
	if n := a.queueLen(); n != 0 {
		t.Fatalf("queue length after dispatch = %d, want 0", n)
	}

	b := newAdmission(5, 0)
	b.tryAcquire(5)
	if b.submitAsync(mk("q4")) {
		t.Fatal("queueless controller parked a job instead of refusing")
	}
}

// TestRetryAfterClamp: the Retry-After estimate tracks recent sweep
// wall time but never leaves [1s, 60s].
func TestRetryAfterClamp(t *testing.T) {
	a := newAdmission(0, 0)
	if got := a.retryAfter(); got != retryAfterMin {
		t.Fatalf("fresh retryAfter = %v, want min %v", got, retryAfterMin)
	}
	a.observe(10 * time.Millisecond)
	if got := a.retryAfter(); got != retryAfterMin {
		t.Fatalf("fast-sweep retryAfter = %v, want min clamp %v", got, retryAfterMin)
	}
	for i := 0; i < 50; i++ {
		a.observe(10 * time.Minute)
	}
	if got := a.retryAfter(); got != retryAfterMax {
		t.Fatalf("slow-sweep retryAfter = %v, want max clamp %v", got, retryAfterMax)
	}
}

// TestValidationNegativeFields: each out-of-range numeric wire field is
// a 400 naming itself in the machine-readable body.
func TestValidationNegativeFields(t *testing.T) {
	h := New(Options{Workers: 2}).Handler()
	cases := []struct {
		field, body string
	}{
		{"workers", `{"workers":-1}`},
		{"cell_timeout_ms", `{"cell_timeout_ms":-5}`},
		{"deadline_ms", `{"deadline_ms":-100}`},
	}
	for _, c := range cases {
		t.Run(c.field, func(t *testing.T) {
			rec := post(h, c.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
			}
			eb := decodeError(t, rec)
			if eb.Code != ErrCodeBadRequest {
				t.Fatalf("code = %q, want %q", eb.Code, ErrCodeBadRequest)
			}
			if eb.Field != c.field {
				t.Fatalf("field = %q, want %q", eb.Field, c.field)
			}
		})
	}
}

// TestSyncShedAndRecovery: a synchronous request that does not fit the
// in-flight budget sheds with the full 429 contract and counts on
// server.shed_total; the same request succeeds once capacity frees; and
// once its query is warm it bypasses admission entirely, succeeding
// even with the budget exhausted.
func TestSyncShedAndRecovery(t *testing.T) {
	report.InvalidateCharacterization()
	obs.ResetCounters()
	s := New(Options{Workers: 2, MaxInflight: 1})
	h := s.Handler()

	if !s.adm.tryAcquire(1) {
		t.Fatal("could not fill the budget")
	}
	checkShed(t, post(h, overloadBody), http.StatusTooManyRequests)
	if n := obs.Counters()[obs.CounterServerShedTotal]; n != 1 {
		t.Fatalf("shed_total = %d, want 1", n)
	}

	s.adm.release(1, time.Millisecond)
	if rec := post(h, overloadBody); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200: %s", rec.Code, rec.Body.String())
	}

	// Warm-path bypass: the query is now cached, so it is admission-
	// exempt — shedding it would discard work already paid for.
	if !s.adm.tryAcquire(1) {
		t.Fatal("could not re-fill the budget")
	}
	if rec := post(h, overloadBody); rec.Code != http.StatusOK {
		t.Fatalf("warm query shed despite cache: %d %s", rec.Code, rec.Body.String())
	}
	if n := obs.Counters()[obs.CounterServerShedTotal]; n != 1 {
		t.Fatalf("shed_total after warm bypass = %d, want still 1", n)
	}
	s.adm.release(1, time.Millisecond)
	report.InvalidateCharacterization()
}

// TestAsyncEvictionShed: with the budget held and a one-slot queue, a
// second async submission evicts the first; the evicted job polls 503
// with the shed contract, its SSE stream terminates with an error
// frame, and the survivor runs to completion once capacity frees.
func TestAsyncEvictionShed(t *testing.T) {
	report.InvalidateCharacterization()
	obs.ResetCounters()
	s := New(Options{Workers: 2, MaxInflight: 1, MaxQueue: 1})
	h := s.Handler()
	if !s.adm.tryAcquire(1) {
		t.Fatal("could not fill the budget")
	}

	submit := func(body string) SweepAccepted {
		rec := post(h, body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("async submit = %d, want 202: %s", rec.Code, rec.Body.String())
		}
		var acc SweepAccepted
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		return acc
	}
	evicted := submit(`{"kernels":["madgwick"],"archs":"M4","async":true}`)
	survivor := submit(`{"kernels":["mahony"],"archs":"M4","async":true}`)

	checkShed(t, get(h, evicted.Result), http.StatusServiceUnavailable)
	// Polling the shed job again repeats the response without counting
	// a second shed.
	checkShed(t, get(h, evicted.Result), http.StatusServiceUnavailable)
	if n := obs.Counters()[obs.CounterServerShedTotal]; n != 1 {
		t.Fatalf("shed_total = %d, want 1 (polls never recount)", n)
	}

	// The shed job's SSE stream terminates immediately with an error
	// frame carrying the eviction message.
	ev := get(h, evicted.Events)
	if ev.Code != http.StatusOK || !strings.Contains(ev.Body.String(), "event: "+SSEEventError) {
		t.Fatalf("shed SSE = %d %q, want an %s frame", ev.Code, ev.Body.String(), SSEEventError)
	}

	s.adm.release(1, time.Millisecond)
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := get(h, survivor.Result)
		if rec.Code == http.StatusOK {
			break
		}
		if rec.Code != http.StatusAccepted {
			t.Fatalf("survivor poll = %d: %s", rec.Code, rec.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never completed after release")
		}
		time.Sleep(10 * time.Millisecond)
	}
	report.InvalidateCharacterization()
}

// TestAsyncRefusedWithoutQueue: MaxQueue < 0 disables queueing, so an
// over-budget async submission is refused outright with 503 — and the
// never-disclosed job handle does not linger in the table.
func TestAsyncRefusedWithoutQueue(t *testing.T) {
	report.InvalidateCharacterization()
	s := New(Options{Workers: 2, MaxInflight: 1, MaxQueue: -1})
	h := s.Handler()
	if !s.adm.tryAcquire(1) {
		t.Fatal("could not fill the budget")
	}
	checkShed(t, post(h, `{"kernels":["madgwick"],"archs":"M4","async":true}`), http.StatusServiceUnavailable)
	s.jobs.mu.Lock()
	n := len(s.jobs.m)
	s.jobs.mu.Unlock()
	if n != 0 {
		t.Fatalf("refused submission left %d job handles behind", n)
	}
	s.adm.release(1, time.Millisecond)
}

// TestSweepDeadlineResolution: -maxdeadline caps the request value and
// applies as the default when the request carries none.
func TestSweepDeadlineResolution(t *testing.T) {
	cases := []struct {
		max   time.Duration
		reqMS int
		want  time.Duration
	}{
		{0, 0, 0},
		{0, 100, 100 * time.Millisecond},
		{50 * time.Millisecond, 0, 50 * time.Millisecond},
		{50 * time.Millisecond, 100, 50 * time.Millisecond},
		{time.Second, 100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		s := New(Options{MaxDeadline: c.max})
		req := SweepRequest{DeadlineMS: c.reqMS}
		if got := s.sweepDeadline(req); got != c.want {
			t.Fatalf("sweepDeadline(max=%v, req=%dms) = %v, want %v", c.max, c.reqMS, got, c.want)
		}
	}
}

// TestJobRingRetention: the finished-job ring keeps exactly the
// configured number of handles, evicting oldest first in O(1).
func TestJobRingRetention(t *testing.T) {
	var tbl jobTable
	tbl.init(2)
	a, b, c := tbl.create(StateRunning), tbl.create(StateRunning), tbl.create(StateRunning)
	for _, j := range []*job{a, b, c} {
		tbl.retire(j.id)
	}
	if _, ok := tbl.lookup(a.id); ok {
		t.Fatal("oldest finished job survived past the retention cap")
	}
	for _, j := range []*job{b, c} {
		if _, ok := tbl.lookup(j.id); !ok {
			t.Fatalf("job %s evicted while within the retention cap", j.id)
		}
	}
}

// TestJobRetentionOverHTTP: with -maxjobs 1, finishing a second sweep
// forgets the first — its id answers 404 while the newest stays
// servable.
func TestJobRetentionOverHTTP(t *testing.T) {
	report.InvalidateCharacterization()
	h := New(Options{Workers: 2, MaxFinishedJobs: 1}).Handler()
	first := post(h, `{"kernels":["madgwick"],"archs":"M4"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first sweep = %d: %s", first.Code, first.Body.String())
	}
	firstID := first.Header().Get(SweepIDHeader)
	second := post(h, `{"kernels":["mahony"],"archs":"M4"}`)
	if second.Code != http.StatusOK {
		t.Fatalf("second sweep = %d: %s", second.Code, second.Body.String())
	}
	secondID := second.Header().Get(SweepIDHeader)

	if rec := get(h, "/v1/sweep/"+firstID); rec.Code != http.StatusNotFound {
		t.Fatalf("evicted job poll = %d, want 404", rec.Code)
	}
	if rec := get(h, "/v1/sweep/"+secondID); rec.Code != http.StatusOK {
		t.Fatalf("retained job poll = %d, want 200", rec.Code)
	}
	report.InvalidateCharacterization()
}

// TestHealthzDegradedAndBack: a persistent cell store flipped read-only
// by disk-full surfaces on /healthz as "degraded" with a reason — still
// 200, the process is alive — and the first successful write probe
// restores "ok".
func TestHealthzDegradedAndBack(t *testing.T) {
	cc, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := New(Options{CellCache: cc}).Handler()

	if rec := get(h, "/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthy healthz = %d %q, want 200 \"ok\\n\"", rec.Code, rec.Body.String())
	}

	cc.Backing().SetProbeInterval(0) // probe on every Put (test speed)
	cc.Backing().SetFaultHook(func(op, key string) error { return syscall.ENOSPC })
	if err := cc.Backing().Put("zz-probe", []byte(`{"v":1}`)); err == nil {
		t.Fatal("disk-full Put succeeded")
	}
	rec := get(h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200 (alive, just read-only)", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if lines[0] != "degraded" || len(lines) < 2 || !strings.HasPrefix(lines[1], "reason: ") {
		t.Fatalf("degraded healthz body = %q, want \"degraded\" + reason lines", rec.Body.String())
	}

	cc.Backing().SetFaultHook(nil)
	if err := cc.Backing().Put("zz-probe", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("recovery probe Put: %v", err)
	}
	if rec := get(h, "/healthz"); rec.Body.String() != "ok\n" {
		t.Fatalf("post-recovery healthz = %q, want \"ok\\n\"", rec.Body.String())
	}
}
