// Package feature implements the feature-extraction kernels of the
// suite: fastbrief (FAST-9 corners + BRIEF-256 descriptors), orb
// (oriented FAST + rotated BRIEF with Harris ranking), and sift (full
// DoG scale space with 128-float descriptors). fastbrief and orb are
// integer-only apart from Gaussian smoothing, exactly as the paper
// notes; sift is the memory-hungry outlier that only fits the M7.
package feature

import (
	img "repro/internal/image"
	"repro/internal/profile"
)

// Keypoint is a detected interest point.
type Keypoint struct {
	X, Y   int
	Score  int     // detector response (FAST arc score or Harris proxy)
	Angle  float64 // orientation in radians (orb, sift)
	Octave int     // pyramid level (sift)
	Size   float64 // scale (sift)
}

// circleOffsets is the 16-pixel Bresenham circle of radius 3 used by the
// FAST segment test, in clockwise order.
var circleOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// fastMargin is the border the circle requires.
const fastMargin = 3

// DetectFAST runs the FAST-9 segment test over the image and returns
// corners after 3×3 non-maximum suppression on the arc score.
//
// The segment test touches every interior pixel five to twenty-one
// times, so it accounts in bulk through a profile.Region: pixels are
// read straight from g.Pix, and the exact per-pixel mix the hooked
// loop charged — one center load, four compass loads, four integer
// compares and branches, plus the full 16-ring cost for the pixels
// that survive the compass reject — is tallied analytically.
func DetectFAST(g *img.Gray, threshold int) []Keypoint {
	reg := profile.Region()
	defer reg.Close()
	scores := make([]int, g.W*g.H)
	var ring [16]int
	candidates := uint64(0)
	for y := fastMargin; y < g.H-fastMargin; y++ {
		row := y * g.W
		for x := fastMargin; x < g.W-fastMargin; x++ {
			p := int(g.Pix[row+x])
			hi := p + threshold
			lo := p - threshold
			// High-speed reject on the four compass points.
			n, s := int(g.Pix[row-3*g.W+x]), int(g.Pix[row+3*g.W+x])
			e, w := int(g.Pix[row+x+3]), int(g.Pix[row+x-3])
			// Any contiguous 9-arc of the 16-ring covers at least two of
			// the four compass points, so fewer than two passing compass
			// points rules a FAST-9 corner out.
			bright := b2i(n > hi) + b2i(s > hi) + b2i(e > hi) + b2i(w > hi)
			dark := b2i(n < lo) + b2i(s < lo) + b2i(e < lo) + b2i(w < lo)
			if bright < 2 && dark < 2 {
				continue
			}
			// Full segment test.
			candidates++
			for i, off := range circleOffsets {
				ring[i] = int(g.Pix[(y+off[1])*g.W+x+off[0]])
			}
			if sc := segmentScore(ring[:], p, threshold); sc > 0 {
				scores[row+x] = sc
			}
		}
	}
	// Every interior pixel paid 5 loads + 4 compares; candidates paid
	// 16 ring loads plus the 32-compare arc-walk setup on top.
	interior := uint64(g.H-2*fastMargin) * uint64(g.W-2*fastMargin)
	reg.AddCounts(profile.Counts{
		M: 5*interior + 16*candidates,
		I: 4*interior + 32*candidates,
		B: 4*interior + 32*candidates,
	})
	// 3×3 non-maximum suppression.
	var out []Keypoint
	scored := uint64(0)
	for y := fastMargin; y < g.H-fastMargin; y++ {
		for x := fastMargin; x < g.W-fastMargin; x++ {
			sc := scores[y*g.W+x]
			if sc == 0 {
				continue
			}
			scored++
			isMax := true
			for dy := -1; dy <= 1 && isMax; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if scores[(y+dy)*g.W+x+dx] > sc {
						isMax = false
						break
					}
				}
			}
			if isMax {
				out = append(out, Keypoint{X: x, Y: y, Score: sc})
			}
		}
	}
	reg.AddCounts(profile.Counts{M: 9 * scored, B: 8 * scored})
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// segmentScore returns the FAST-9 corner score: the maximal sum of
// absolute differences over a contiguous arc of >= 9 pixels that are all
// brighter or all darker than center±threshold; 0 if not a corner.
func segmentScore(ring []int, p, threshold int) int {
	hi := p + threshold
	lo := p - threshold
	best := 0
	for _, darkMode := range []bool{false, true} {
		run := 0
		sum := 0
		// Walk the ring twice to handle wraparound arcs.
		for i := 0; i < 32; i++ {
			v := ring[i%16]
			pass := v > hi
			d := v - p
			if darkMode {
				pass = v < lo
				d = p - v
			}
			if pass {
				run++
				sum += d
				if run >= 9 && sum > best {
					best = sum
				}
				if run >= 16 {
					break
				}
			} else {
				run = 0
				sum = 0
			}
		}
	}
	profile.AddI(48)
	profile.AddB(32)
	return best
}
