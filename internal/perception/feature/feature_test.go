package feature_test

import (
	"testing"

	"repro/internal/dataset"
	img "repro/internal/image"
	"repro/internal/perception/feature"
	"repro/internal/profile"
)

func texImage(seed int64) *img.Gray { return dataset.GenImage(dataset.Midd, 160, 160, seed) }

func TestFASTDetectsCornersOnSquare(t *testing.T) {
	// A bright square on black has corners at its vertices.
	g := img.NewGray(64, 64)
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			g.Set(x, y, 220)
		}
	}
	kps := feature.DetectFAST(g, 20)
	if len(kps) == 0 {
		t.Fatal("no corners on a high-contrast square")
	}
	// Every detection must be near a vertex of the square.
	for _, kp := range kps {
		nearVertex := false
		for _, v := range [][2]int{{20, 20}, {43, 20}, {20, 43}, {43, 43}} {
			dx, dy := kp.X-v[0], kp.Y-v[1]
			if dx*dx+dy*dy <= 16 {
				nearVertex = true
			}
		}
		if !nearVertex {
			t.Fatalf("corner at (%d,%d) not near any vertex", kp.X, kp.Y)
		}
	}
}

func TestFASTFindsNothingOnFlat(t *testing.T) {
	g := img.NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	if kps := feature.DetectFAST(g, 20); len(kps) != 0 {
		t.Fatalf("flat image produced %d corners", len(kps))
	}
}

func TestFASTBriefOnTexture(t *testing.T) {
	res := feature.FASTBrief(texImage(1), 20, 100)
	if len(res.Keypoints) < 10 {
		t.Fatalf("only %d keypoints on textured image", len(res.Keypoints))
	}
	if len(res.Keypoints) != len(res.Descriptors) {
		t.Fatal("keypoint/descriptor count mismatch")
	}
	if len(res.Keypoints) > 100 {
		t.Fatalf("maxFeatures not honored: %d", len(res.Keypoints))
	}
}

func TestBRIEFMatchingAcrossShift(t *testing.T) {
	// The same physical corners in two shifted frames must match by
	// Hamming distance.
	p := dataset.GenFlowPair(dataset.Midd, 160, 160, 5, 0, 3)
	ra := feature.FASTBrief(p.A, 20, 60)
	rb := feature.FASTBrief(p.B, 20, 60)
	if len(ra.Keypoints) < 10 || len(rb.Keypoints) < 10 {
		t.Fatalf("too few keypoints: %d / %d", len(ra.Keypoints), len(rb.Keypoints))
	}
	good := 0
	for i, da := range ra.Descriptors {
		bestJ, bestD := -1, 257
		for j, db := range rb.Descriptors {
			if d := feature.HammingDistance(da, db); d < bestD {
				bestD, bestJ = d, j
			}
		}
		if bestJ < 0 || bestD > 50 {
			continue
		}
		// Geometric check: matched keypoint should be ~5 px to the right.
		dx := rb.Keypoints[bestJ].X - ra.Keypoints[i].X
		dy := rb.Keypoints[bestJ].Y - ra.Keypoints[i].Y
		if dx >= 3 && dx <= 7 && dy >= -2 && dy <= 2 {
			good++
		}
	}
	if good < len(ra.Descriptors)/3 {
		t.Fatalf("only %d/%d descriptors matched consistently", good, len(ra.Descriptors))
	}
}

func TestORBProducesOrientedKeypoints(t *testing.T) {
	res := feature.ORB(texImage(5), 20, 80)
	if len(res.Keypoints) < 10 {
		t.Fatalf("only %d ORB keypoints", len(res.Keypoints))
	}
	// At least some orientations should be nonzero and varied.
	distinct := map[int]bool{}
	for _, kp := range res.Keypoints {
		distinct[int(kp.Angle*10)] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("orientation assignment degenerate: %d distinct angles", len(distinct))
	}
}

// ORB must cost 1.5-2.5x fastbrief (Case Study #1's headline ratio).
func TestORBCostRatio(t *testing.T) {
	g := texImage(7)
	cf := profile.Collect(func() { feature.FASTBrief(g, 20, 80) })
	co := profile.Collect(func() { feature.ORB(g, 20, 80) })
	ratio := float64(co.Total()) / float64(cf.Total())
	if ratio < 1.2 || ratio > 4 {
		t.Fatalf("orb/fastbrief op ratio %.2f, paper reports 1.5-2.5x", ratio)
	}
}

// The sparse lights dataset must be cheaper than the textured one
// (Case Study #1: all algorithms run faster on sparse scenes).
func TestLightsCheaperThanMidd(t *testing.T) {
	midd := dataset.GenImage(dataset.Midd, 160, 160, 9)
	lights := dataset.GenImage(dataset.Lights, 160, 160, 9)
	cm := profile.Collect(func() { feature.FASTBrief(midd, 20, 0) })
	cl := profile.Collect(func() { feature.FASTBrief(lights, 20, 0) })
	if cl.Total() >= cm.Total() {
		t.Fatalf("lights ops %d >= midd ops %d", cl.Total(), cm.Total())
	}
}

func TestHammingDistance(t *testing.T) {
	var a, b feature.Descriptor
	if feature.HammingDistance(a, b) != 0 {
		t.Error("identical descriptors should have distance 0")
	}
	b[0] = 0xFF
	if feature.HammingDistance(a, b) != 8 {
		t.Error("one full byte should differ by 8 bits")
	}
	for i := range b {
		a[i] = 0x00
		b[i] = 0xFF
	}
	if feature.HammingDistance(a, b) != 256 {
		t.Error("full complement should differ by 256 bits")
	}
}

func TestSIFTOnTexture(t *testing.T) {
	res := feature.SIFT(texImage(11), feature.DefaultSIFTConfig())
	if len(res.Keypoints) < 5 {
		t.Fatalf("only %d SIFT keypoints", len(res.Keypoints))
	}
	if len(res.Keypoints) != len(res.Descriptors) {
		t.Fatal("keypoint/descriptor mismatch")
	}
	// Descriptors are normalized: unit-ish norm.
	for i, d := range res.Descriptors {
		var s float64
		for _, v := range d {
			s += float64(v) * float64(v)
		}
		if s < 0.5 || s > 1.5 {
			t.Fatalf("descriptor %d norm² = %g", i, s)
		}
	}
}

func TestSIFTMatchingAcrossShift(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 160, 160, 4, 0, 13)
	cfg := feature.DefaultSIFTConfig()
	cfg.MaxFeatures = 60
	ra := feature.SIFT(p.A, cfg)
	rb := feature.SIFT(p.B, cfg)
	if len(ra.Keypoints) < 8 || len(rb.Keypoints) < 8 {
		t.Skipf("too few keypoints (%d/%d) for matching check", len(ra.Keypoints), len(rb.Keypoints))
	}
	good := 0
	for i, da := range ra.Descriptors {
		bestJ := -1
		bestD := 1e18
		for j, db := range rb.Descriptors {
			if d := feature.SIFTDistance(da, db); d < bestD {
				bestD, bestJ = d, j
			}
		}
		dx := rb.Keypoints[bestJ].X - ra.Keypoints[i].X
		dy := rb.Keypoints[bestJ].Y - ra.Keypoints[i].Y
		if dx >= 2 && dx <= 6 && dy >= -2 && dy <= 2 {
			good++
		}
	}
	if good < len(ra.Descriptors)/4 {
		t.Fatalf("only %d/%d SIFT matches consistent", good, len(ra.Descriptors))
	}
}

// SIFT must dominate the cost spectrum (Table IV: ~100x orb).
func TestSIFTCostDominates(t *testing.T) {
	g := texImage(17)
	co := profile.Collect(func() { feature.ORB(g, 20, 80) })
	cs := profile.Collect(func() { feature.SIFT(g, feature.DefaultSIFTConfig()) })
	if cs.Total() < 5*co.Total() {
		t.Fatalf("SIFT ops %d < 5x ORB ops %d", cs.Total(), co.Total())
	}
}
