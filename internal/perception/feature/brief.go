package feature

import (
	"math"
	"math/rand"

	img "repro/internal/image"
	"repro/internal/profile"
)

// Descriptor is a 256-bit binary descriptor (BRIEF / rBRIEF).
type Descriptor [32]byte

// HammingDistance counts differing bits between two descriptors.
func HammingDistance(a, b Descriptor) int {
	profile.AddI(32)
	d := 0
	for i := range a {
		d += popcount(a[i] ^ b[i])
	}
	return d
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

// briefPattern is the fixed pseudo-random point-pair test pattern within
// a 31×31 patch, generated once with a fixed seed (the classic BRIEF
// isotropic Gaussian sampling, clamped to the patch).
var briefPattern = func() [256][4]int {
	rng := rand.New(rand.NewSource(0x5EED))
	var pat [256][4]int
	sample := func() int {
		v := int(rng.NormFloat64() * 31.0 / 5.0)
		if v > 15 {
			v = 15
		}
		if v < -15 {
			v = -15
		}
		return v
	}
	for i := range pat {
		pat[i] = [4]int{sample(), sample(), sample(), sample()}
	}
	return pat
}()

// briefMargin is the patch half-size plus rotation slack.
const briefMargin = 17

// computeBRIEF evaluates the 256 point-pair tests at keypoint (x, y) on
// the (pre-smoothed) image. With steer set, the pattern is rotated by
// angle — ORB's rBRIEF.
func computeBRIEF(sm *img.Gray, x, y int, angle float64, steer bool) Descriptor {
	var d Descriptor
	var ca, sa float64
	if steer {
		ca, sa = math.Cos(angle), math.Sin(angle)
		profile.AddF(40) // the two libm calls
	}
	for i, p := range briefPattern {
		x1, y1, x2, y2 := p[0], p[1], p[2], p[3]
		if steer {
			// Integer-rotated offsets (fixed-point rotation on MCU).
			rx1 := int(math.Round(ca*float64(x1) - sa*float64(y1)))
			ry1 := int(math.Round(sa*float64(x1) + ca*float64(y1)))
			rx2 := int(math.Round(ca*float64(x2) - sa*float64(y2)))
			ry2 := int(math.Round(sa*float64(x2) + ca*float64(y2)))
			x1, y1, x2, y2 = rx1, ry1, rx2, ry2
			profile.AddI(8)
		}
		profile.AddI(1)
		profile.AddB(1)
		if sm.AtClamped(x+x1, y+y1) < sm.AtClamped(x+x2, y+y2) {
			d[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return d
}

// FASTBriefResult bundles keypoints with their descriptors.
type FASTBriefResult struct {
	Keypoints   []Keypoint
	Descriptors []Descriptor
}

// FASTBrief is the fastbrief kernel: FAST-9 detection on the raw image,
// BRIEF-256 description on a lightly smoothed copy. Integer-only except
// for the Gaussian blur, as characterized in the paper.
func FASTBrief(g *img.Gray, threshold, maxFeatures int) FASTBriefResult {
	kps := DetectFAST(g, threshold)
	kps = topKByScore(kps, maxFeatures)
	sm := g.GaussianBlur(1.2)
	out := FASTBriefResult{}
	for _, kp := range kps {
		if !g.InBounds(kp.X, kp.Y, briefMargin) {
			continue
		}
		out.Keypoints = append(out.Keypoints, kp)
		out.Descriptors = append(out.Descriptors, computeBRIEF(sm, kp.X, kp.Y, 0, false))
	}
	return out
}

// topKByScore keeps the k best keypoints by detector response
// (selection by partial sorting, as an MCU implementation would).
func topKByScore(kps []Keypoint, k int) []Keypoint {
	if k <= 0 || len(kps) <= k {
		return kps
	}
	// Simple selection: repeatedly pick the max (k is small).
	out := make([]Keypoint, 0, k)
	used := make([]bool, len(kps))
	for n := 0; n < k; n++ {
		best := -1
		for i, kp := range kps {
			profile.AddB(1)
			if used[i] {
				continue
			}
			if best < 0 || kp.Score > kps[best].Score {
				best = i
			}
		}
		used[best] = true
		out = append(out, kps[best])
	}
	return out
}

// ORBResult bundles oriented keypoints with rotated-BRIEF descriptors.
type ORBResult struct {
	Keypoints   []Keypoint
	Descriptors []Descriptor
}

// orbLevels is the detection pyramid depth — real ORB detects across
// scales, the main reason it costs 1.5-2.5x fastbrief in the paper's
// characterization.
const orbLevels = 3

// ORB is the orb kernel: pyramidal FAST detection, Harris-style ranking,
// intensity-centroid orientation, and rotation-steered BRIEF.
func ORB(g *img.Gray, threshold, maxFeatures int) ORBResult {
	pyr := g.Pyramid(orbLevels)
	out := ORBResult{}
	var all []Keypoint
	for lvl, lg := range pyr {
		kps := DetectFAST(lg, threshold)
		for _, kp := range kps {
			// Harris window plus gradient stencil needs a 5-px margin.
			if !lg.InBounds(kp.X, kp.Y, 5) {
				continue
			}
			kp.Score = harrisScore(lg, kp.X, kp.Y)
			kp.Octave = lvl
			all = append(all, kp)
		}
	}
	all = topKByScore(all, maxFeatures)
	// Smooth each level once for description.
	smoothed := make([]*img.Gray, len(pyr))
	for i, lg := range pyr {
		smoothed[i] = lg.GaussianBlur(1.2)
	}
	for _, kp := range all {
		lg := pyr[kp.Octave]
		if !lg.InBounds(kp.X, kp.Y, briefMargin) {
			continue
		}
		kp.Angle = intensityCentroidAngle(lg, kp.X, kp.Y)
		desc := computeBRIEF(smoothed[kp.Octave], kp.X, kp.Y, kp.Angle, true)
		// Report keypoints in level-0 coordinates.
		kp.X <<= uint(kp.Octave)
		kp.Y <<= uint(kp.Octave)
		out.Keypoints = append(out.Keypoints, kp)
		out.Descriptors = append(out.Descriptors, desc)
	}
	return out
}

// harrisScore computes an integer Harris corner response over a 7×7
// window (scaled down to avoid overflow), used by ORB to rank FAST
// corners.
func harrisScore(g *img.Gray, x, y int) int {
	var sxx, syy, sxy int64
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			gx, gy := g.GradientAt(x+dx, y+dy)
			sxx += int64(gx * gx)
			syy += int64(gy * gy)
			sxy += int64(gx * gy)
		}
	}
	profile.AddI(49 * 5)
	// det - k·trace² with k = 0.04 ≈ 1/25, integer arithmetic.
	det := sxx*syy - sxy*sxy
	tr := sxx + syy
	score := det - tr*tr/25
	// Rescale into int range.
	score >>= 16
	if score > math.MaxInt32 {
		score = math.MaxInt32
	}
	if score < 0 {
		score = 0
	}
	return int(score)
}

// intensityCentroidAngle returns the patch orientation from first-order
// moments over a radius-7 disc (Rosin's intensity centroid, as in ORB).
func intensityCentroidAngle(g *img.Gray, x, y int) float64 {
	var m10, m01 int
	for dy := -7; dy <= 7; dy++ {
		for dx := -7; dx <= 7; dx++ {
			if dx*dx+dy*dy > 49 {
				continue
			}
			v := int(g.AtClamped(x+dx, y+dy))
			m10 += dx * v
			m01 += dy * v
		}
	}
	profile.AddI(225 * 4)
	profile.AddF(20) // atan2
	return math.Atan2(float64(m01), float64(m10))
}
