package feature

import (
	"math"

	img "repro/internal/image"
	"repro/internal/profile"
)

// SIFTDescriptor is the classic 128-dimensional gradient histogram.
type SIFTDescriptor [128]float32

// SIFTResult bundles scale-space keypoints with their descriptors.
type SIFTResult struct {
	Keypoints   []Keypoint
	Descriptors []SIFTDescriptor
}

// SIFTConfig exposes the scale-space parameters.
type SIFTConfig struct {
	Octaves          int     // pyramid octaves (0 = derive from size)
	ScalesPerOctave  int     // DoG intervals per octave
	ContrastThresh   float64 // DoG extremum rejection threshold
	EdgeThresh       float64 // principal-curvature ratio rejection
	MaxFeatures      int
	InitialSigma     float64
	DescriptorSigma  float64
	OrientationBins  int
	PeakRatio        float64 // secondary orientation peak acceptance
	DescWindowRadius int
}

// DefaultSIFTConfig matches Lowe's canonical parameters at the reduced
// image sizes the benchmark uses.
func DefaultSIFTConfig() SIFTConfig {
	return SIFTConfig{
		Octaves:          4,
		ScalesPerOctave:  3,
		ContrastThresh:   0.03,
		EdgeThresh:       10,
		MaxFeatures:      200,
		InitialSigma:     1.6,
		DescriptorSigma:  1.5,
		OrientationBins:  36,
		PeakRatio:        0.8,
		DescWindowRadius: 8,
	}
}

// SIFT is the sift kernel: a full difference-of-Gaussians scale space
// with orientation assignment and 128-float descriptors. It is by far
// the most memory- and compute-hungry perception kernel — the paper
// reports it only fits the Cortex-M7 even with incremental pyramid
// construction.
func SIFT(g *img.Gray, cfg SIFTConfig) SIFTResult {
	if cfg.Octaves == 0 {
		cfg = DefaultSIFTConfig()
	}
	res := SIFTResult{}
	base := g
	for oct := 0; oct < cfg.Octaves && base.W >= 16 && base.H >= 16; oct++ {
		// Gaussian stack for this octave (incremental blurs).
		nScales := cfg.ScalesPerOctave + 3
		gauss := make([]*img.Gray, nScales)
		gauss[0] = base.GaussianBlur(cfg.InitialSigma)
		k := math.Pow(2, 1/float64(cfg.ScalesPerOctave))
		sigma := cfg.InitialSigma
		for s := 1; s < nScales; s++ {
			step := sigma * math.Sqrt(k*k-1)
			gauss[s] = gauss[s-1].GaussianBlur(step)
			sigma *= k
		}
		// DoG stack.
		dog := make([][]int16, nScales-1)
		for s := 0; s < nScales-1; s++ {
			d := make([]int16, base.W*base.H)
			for i := range d {
				d[i] = int16(gauss[s+1].Pix[i]) - int16(gauss[s].Pix[i])
			}
			profile.AddI(uint64(len(d)))
			profile.AddM(uint64(2 * len(d)))
			dog[s] = d
		}
		// Extrema detection over 26 neighbors in scale space.
		w, h := base.W, base.H
		contrast := int16(cfg.ContrastThresh * 255)
		for s := 1; s < len(dog)-1; s++ {
			for y := 1; y < h-1; y++ {
				for x := 1; x < w-1; x++ {
					v := dog[s][y*w+x]
					profile.AddB(2)
					if v < contrast && v > -contrast {
						continue
					}
					if !isExtremum(dog, s, x, y, w) {
						continue
					}
					if edgeLike(dog[s], x, y, w, cfg.EdgeThresh) {
						continue
					}
					scale := cfg.InitialSigma * math.Pow(k, float64(s)) * float64(int(1)<<oct)
					for _, angle := range orientationPeaks(gauss[s], x, y, cfg) {
						kp := Keypoint{
							X: x << oct, Y: y << oct,
							Score:  int(absInt16(v)),
							Angle:  angle,
							Octave: oct,
							Size:   scale,
						}
						desc := siftDescriptor(gauss[s], x, y, angle, cfg)
						res.Keypoints = append(res.Keypoints, kp)
						res.Descriptors = append(res.Descriptors, desc)
						if cfg.MaxFeatures > 0 && len(res.Keypoints) >= cfg.MaxFeatures {
							return res
						}
					}
				}
			}
		}
		base = base.Downsample2x()
	}
	return res
}

func absInt16(v int16) int16 {
	if v < 0 {
		return -v
	}
	return v
}

// isExtremum tests whether the DoG sample is a strict max or min of its
// 26 scale-space neighbors.
func isExtremum(dog [][]int16, s, x, y, w int) bool {
	v := dog[s][y*w+x]
	profile.AddM(26)
	profile.AddB(26)
	isMax, isMin := true, true
	for ds := -1; ds <= 1; ds++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if ds == 0 && dy == 0 && dx == 0 {
					continue
				}
				n := dog[s+ds][(y+dy)*w+x+dx]
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

// edgeLike rejects extrema on edges via the Hessian trace²/det ratio.
func edgeLike(d []int16, x, y, w int, edgeThresh float64) bool {
	dxx := float64(d[y*w+x+1]) + float64(d[y*w+x-1]) - 2*float64(d[y*w+x])
	dyy := float64(d[(y+1)*w+x]) + float64(d[(y-1)*w+x]) - 2*float64(d[y*w+x])
	dxy := (float64(d[(y+1)*w+x+1]) - float64(d[(y+1)*w+x-1]) -
		float64(d[(y-1)*w+x+1]) + float64(d[(y-1)*w+x-1])) / 4
	profile.AddF(12)
	profile.AddM(9)
	tr := dxx + dyy
	det := dxx*dyy - dxy*dxy
	if det <= 0 {
		return true
	}
	r := edgeThresh
	return tr*tr/det >= (r+1)*(r+1)/r
}

// orientationPeaks builds the 36-bin gradient orientation histogram in a
// Gaussian-weighted window and returns the dominant angle plus any
// secondary peaks above the configured ratio.
func orientationPeaks(g *img.Gray, x, y int, cfg SIFTConfig) []float64 {
	bins := cfg.OrientationBins
	hist := make([]float64, bins)
	radius := 8
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 1 || py < 1 || px >= g.W-1 || py >= g.H-1 {
				continue
			}
			gx, gy := g.GradientAt(px, py)
			mag := math.Sqrt(float64(gx*gx + gy*gy))
			angle := math.Atan2(float64(gy), float64(gx))
			weight := math.Exp(-float64(dx*dx+dy*dy) / (2 * 16))
			bin := int((angle + math.Pi) / (2 * math.Pi) * float64(bins))
			if bin >= bins {
				bin = bins - 1
			}
			hist[bin] += mag * weight
			profile.AddF(45)
		}
	}
	// Peak extraction.
	maxV := 0.0
	for _, v := range hist {
		if v > maxV {
			maxV = v
		}
	}
	profile.AddB(uint64(2 * bins))
	var out []float64
	for i, v := range hist {
		if v >= cfg.PeakRatio*maxV && v > 0 {
			l := hist[(i+bins-1)%bins]
			r := hist[(i+1)%bins]
			if v < l || v < r {
				continue
			}
			// Parabolic interpolation of the peak.
			denom := l - 2*v + r
			offset := 0.0
			if denom != 0 {
				offset = 0.5 * (l - r) / denom
			}
			out = append(out, (float64(i)+0.5+offset)/float64(bins)*2*math.Pi-math.Pi)
			if len(out) >= 2 {
				break
			}
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// siftDescriptor computes the 4×4×8 gradient histogram descriptor in a
// rotated 16×16 window, trilinear-binned, normalized, clamped at 0.2,
// and renormalized — Lowe's full recipe.
func siftDescriptor(g *img.Gray, x, y int, angle float64, cfg SIFTConfig) SIFTDescriptor {
	var desc SIFTDescriptor
	ca, sa := math.Cos(angle), math.Sin(angle)
	radius := cfg.DescWindowRadius
	for dy := -radius; dy < radius; dy++ {
		for dx := -radius; dx < radius; dx++ {
			// Rotate the sample offset into the keypoint frame.
			rx := ca*float64(dx) + sa*float64(dy)
			ry := -sa*float64(dx) + ca*float64(dy)
			px, py := x+dx, y+dy
			if px < 1 || py < 1 || px >= g.W-1 || py >= g.H-1 {
				continue
			}
			gx, gy := g.GradientAt(px, py)
			mag := math.Sqrt(float64(gx*gx + gy*gy))
			theta := math.Atan2(float64(gy), float64(gx)) - angle
			for theta < 0 {
				theta += 2 * math.Pi
			}
			// Cell coordinates in [0, 4).
			cx := (rx + float64(radius)) / float64(2*radius) * 4
			cy := (ry + float64(radius)) / float64(2*radius) * 4
			ci, cj := int(cx), int(cy)
			if ci < 0 || ci > 3 || cj < 0 || cj > 3 {
				continue
			}
			ob := int(theta / (2 * math.Pi) * 8)
			if ob > 7 {
				ob = 7
			}
			weight := math.Exp(-(rx*rx + ry*ry) / (2 * float64(radius*radius)))
			desc[(cj*4+ci)*8+ob] += float32(mag * weight)
			profile.AddF(50)
		}
	}
	// Normalize, clamp, renormalize.
	normalizeDesc(&desc)
	for i := range desc {
		if desc[i] > 0.2 {
			desc[i] = 0.2
		}
	}
	normalizeDesc(&desc)
	profile.AddF(3 * 128)
	return desc
}

func normalizeDesc(d *SIFTDescriptor) {
	var s float64
	for _, v := range d {
		s += float64(v) * float64(v)
	}
	n := math.Sqrt(s)
	if n == 0 {
		return
	}
	for i := range d {
		d[i] = float32(float64(d[i]) / n)
	}
}

// SIFTDistance is the Euclidean distance between descriptors.
func SIFTDistance(a, b SIFTDescriptor) float64 {
	profile.AddF(3 * 128)
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}
