package flow_test

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/perception/flow"
	"repro/internal/profile"
)

func TestBlockMatchRecoversIntegerShift(t *testing.T) {
	for _, d := range [][2]float64{{3, 0}, {0, -2}, {3, 3}, {-3, 2}} {
		p := dataset.GenFlowPair(dataset.Midd, 80, 80, d[0], d[1], 11)
		r := flow.BlockMatch(p.A, p.B, 40, 40, flow.DefaultBBConfig())
		if !r.Valid {
			t.Fatalf("shift %v: invalid", d)
		}
		if math.Abs(r.DX-d[0]) > 1 || math.Abs(r.DY-d[1]) > 1 {
			t.Fatalf("shift %v: estimated (%g, %g)", d, r.DX, r.DY)
		}
	}
}

func TestBlockMatchVecAgreesWithScalar(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 3, -2, 5)
	a := flow.BlockMatch(p.A, p.B, 40, 40, flow.DefaultBBConfig())
	b := flow.BlockMatchVec(p.A, p.B, 40, 40, flow.DefaultBBConfig())
	if a.DX != b.DX || a.DY != b.DY {
		t.Fatalf("scalar (%g,%g) vs vec (%g,%g)", a.DX, a.DY, b.DX, b.DY)
	}
}

// The vectorized variant must report roughly 4x fewer inner-loop ops —
// Table VI shows a near-4x energy gain from USADA8.
func TestVectorizationSavesOps(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 2, 1, 5)
	cs := profile.Collect(func() { flow.BlockMatch(p.A, p.B, 40, 40, flow.DefaultBBConfig()) })
	cv := profile.Collect(func() { flow.BlockMatchVec(p.A, p.B, 40, 40, flow.DefaultBBConfig()) })
	ratio := float64(cs.Total()) / float64(cv.Total())
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("scalar/vec op ratio %.2f, expected ~4x", ratio)
	}
}

func TestLucasKanadeSubpixel(t *testing.T) {
	for _, d := range [][2]float64{{1.5, 0.5}, {-2.25, 1.75}, {0.3, -0.8}} {
		p := dataset.GenFlowPair(dataset.Midd, 80, 80, d[0], d[1], 21)
		r := flow.LucasKanade(p.A, p.B, 40, 40, flow.DefaultLKConfig())
		if !r.Valid {
			t.Fatalf("shift %v: invalid", d)
		}
		if math.Abs(r.DX-d[0]) > 0.35 || math.Abs(r.DY-d[1]) > 0.35 {
			t.Fatalf("shift %v: estimated (%.3f, %.3f)", d, r.DX, r.DY)
		}
	}
}

func TestLucasKanadeLargerMotionViaPyramid(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 6, -5, 31)
	r := flow.LucasKanade(p.A, p.B, 40, 40, flow.DefaultLKConfig())
	if !r.Valid || math.Abs(r.DX-6) > 1 || math.Abs(r.DY+5) > 1 {
		t.Fatalf("estimated (%.2f, %.2f), want (6, -5)", r.DX, r.DY)
	}
}

func TestImageInterpolationSmallShift(t *testing.T) {
	for _, d := range [][2]float64{{1, 0}, {0, 1}, {-1, 0.5}, {0.8, -0.6}} {
		p := dataset.GenFlowPair(dataset.Midd, 80, 80, d[0], d[1], 41)
		r := flow.ImageInterpolation(p.A, p.B, 40, 40, flow.DefaultIIConfig())
		if !r.Valid {
			t.Fatalf("shift %v: invalid", d)
		}
		if math.Abs(r.DX-d[0]) > 0.5 || math.Abs(r.DY-d[1]) > 0.5 {
			t.Fatalf("shift %v: estimated (%.3f, %.3f)", d, r.DX, r.DY)
		}
	}
}

func TestFlowBoundaryHandling(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 1, 1, 51)
	// Centers too close to the border must return invalid, not panic.
	if r := flow.BlockMatch(p.A, p.B, 2, 2, flow.DefaultBBConfig()); r.Valid {
		t.Error("BlockMatch near border should be invalid")
	}
	if r := flow.ImageInterpolation(p.A, p.B, 3, 3, flow.DefaultIIConfig()); r.Valid {
		t.Error("ImageInterpolation near border should be invalid")
	}
}

func TestFlowOnFlatImageFailsGracefully(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 1, 0, 61)
	for i := range p.A.Pix {
		p.A.Pix[i] = 100
		p.B.Pix[i] = 100
	}
	r := flow.LucasKanade(p.A, p.B, 40, 40, flow.DefaultLKConfig())
	if r.Valid {
		t.Error("LK on textureless input should be invalid (singular gradient matrix)")
	}
}

// lkof must be roughly an order of magnitude more expensive than bbof
// (Fig 3b / Table IV).
func TestLKCostsFarMoreThanBB(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 2, 1, 71)
	clk := profile.Collect(func() { flow.LucasKanade(p.A, p.B, 40, 40, flow.DefaultLKConfig()) })
	cbb := profile.Collect(func() { flow.BlockMatch(p.A, p.B, 40, 40, flow.DefaultBBConfig()) })
	if clk.Total() < 3*cbb.Total() {
		t.Fatalf("LK ops %d < 3x BB ops %d", clk.Total(), cbb.Total())
	}
}

// Cost scales with the window/patch size, the parameterization claim of
// Section V.
func TestFlowScalesWithPatchSize(t *testing.T) {
	p := dataset.GenFlowPair(dataset.Midd, 80, 80, 2, 1, 81)
	small := flow.BBConfig{Block: 2, Search: 4}
	large := flow.BBConfig{Block: 6, Search: 4}
	cs := profile.Collect(func() { flow.BlockMatch(p.A, p.B, 40, 40, small) })
	cl := profile.Collect(func() { flow.BlockMatch(p.A, p.B, 40, 40, large) })
	if cl.Total() <= cs.Total() {
		t.Fatal("larger block should cost more")
	}
}
