// Package flow implements the optical-flow kernels of the suite: lkof
// (iterative pyramidal Lucas-Kanade), iiof (Srinivasan's image
// interpolation method), bbof (brute-force block matching with
// sum-of-absolute-differences), and its SIMD-modeled variant bbof-vec
// whose inner loop maps onto the Cortex-M USADA8 instruction.
//
// All kernels estimate the displacement of a patch centered on a tracked
// feature between two frames, and all scale with the patch size — the
// scaling knob Table II exposes.
package flow

import (
	img "repro/internal/image"
	"repro/internal/profile"
)

// Result is an estimated 2D displacement of frame B relative to frame A.
type Result struct {
	DX, DY float64
	Valid  bool
}

// LKConfig parameterizes the pyramidal Lucas-Kanade tracker.
type LKConfig struct {
	Window     int // half-size of the tracking window
	Levels     int // pyramid levels
	Iterations int // Newton iterations per level
	Epsilon    float64
}

// DefaultLKConfig matches the suite's 80×80 flow configuration.
func DefaultLKConfig() LKConfig {
	return LKConfig{Window: 7, Levels: 3, Iterations: 10, Epsilon: 0.01}
}

// LucasKanade is the lkof kernel: pyramid construction plus iterative
// gradient-descent alignment at each level — the most computationally
// demanding flow kernel (pyramids, spatial and temporal gradients).
func LucasKanade(a, b *img.Gray, x, y float64, cfg LKConfig) Result {
	pyrA := a.Pyramid(cfg.Levels)
	pyrB := b.Pyramid(cfg.Levels)
	levels := len(pyrA)
	if len(pyrB) < levels {
		levels = len(pyrB)
	}

	scale := float64(int(1) << (levels - 1))
	gx := x / scale
	gy := y / scale
	var dx, dy float64

	for l := levels - 1; l >= 0; l-- {
		la, lb := pyrA[l], pyrB[l]
		r := cfg.Window
		// Spatial gradient matrix over the window on A.
		var gxx, gxy, gyy float64
		type grad struct{ gx, gy float64 }
		grads := make([]grad, 0, (2*r+1)*(2*r+1))
		for wy := -r; wy <= r; wy++ {
			for wx := -r; wx <= r; wx++ {
				px := gx + float64(wx)
				py := gy + float64(wy)
				ix1 := la.Bilinear(px+1, py)
				ix0 := la.Bilinear(px-1, py)
				iy1 := la.Bilinear(px, py+1)
				iy0 := la.Bilinear(px, py-1)
				ggx := (ix1 - ix0) / 2
				ggy := (iy1 - iy0) / 2
				gxx += ggx * ggx
				gxy += ggx * ggy
				gyy += ggy * ggy
				grads = append(grads, grad{ggx, ggy})
				profile.AddF(8)
			}
		}
		det := gxx*gyy - gxy*gxy
		profile.AddF(4)
		if det < 1e-6 {
			return Result{}
		}
		inv00 := gyy / det
		inv01 := -gxy / det
		inv11 := gxx / det

		for it := 0; it < cfg.Iterations; it++ {
			var bx, by float64
			gi := 0
			for wy := -r; wy <= r; wy++ {
				for wx := -r; wx <= r; wx++ {
					px := gx + float64(wx)
					py := gy + float64(wy)
					diff := lb.Bilinear(px+dx, py+dy) - la.Bilinear(px, py)
					g := grads[gi]
					gi++
					bx += diff * g.gx
					by += diff * g.gy
					profile.AddF(5)
				}
			}
			sx := -(inv00*bx + inv01*by)
			sy := -(inv01*bx + inv11*by)
			dx += sx
			dy += sy
			profile.AddF(10)
			profile.AddB(1)
			if sx*sx+sy*sy < cfg.Epsilon*cfg.Epsilon {
				break
			}
		}
		if l > 0 {
			gx *= 2
			gy *= 2
			dx *= 2
			dy *= 2
		}
	}
	return Result{DX: dx, DY: dy, Valid: true}
}

// IIConfig parameterizes the image-interpolation kernel.
type IIConfig struct {
	Window int // half-size of the analysis window
	Shift  int // reference shift Δ in pixels
}

// DefaultIIConfig matches the suite's flow configuration: a generous
// analysis window — the method needs one, and it puts iiof between lkof
// and bbof on the cost spectrum, as in Fig 3b.
func DefaultIIConfig() IIConfig { return IIConfig{Window: 20, Shift: 2} }

// ImageInterpolation is the iiof kernel (Srinivasan [63]): the second
// frame is modeled as a linear interpolation between ±Δ-shifted copies
// of the first, and the two interpolation weights — the flow — come from
// one 2×2 least-squares solve. Integer accumulation, one small solve:
// the cheap middle ground of the flow spectrum.
func ImageInterpolation(a, b *img.Gray, cx, cy int, cfg IIConfig) Result {
	r := cfg.Window
	d := cfg.Shift
	if cx-r-d < 0 || cy-r-d < 0 || cx+r+d >= a.W || cy+r+d >= a.H {
		return Result{}
	}
	// Accumulate normal equations for I2-I0 = u·fx + v·fy with
	// fx = (I0(x-Δ) - I0(x+Δ))/(2Δ), fy likewise vertically.
	var a11, a12, a22, b1, b2 float64
	for wy := -r; wy <= r; wy++ {
		for wx := -r; wx <= r; wx++ {
			x, y := cx+wx, cy+wy
			fx := (float64(a.At(x-d, y)) - float64(a.At(x+d, y))) / float64(2*d)
			fy := (float64(a.At(x, y-d)) - float64(a.At(x, y+d))) / float64(2*d)
			dt := float64(b.At(x, y)) - float64(a.At(x, y))
			a11 += fx * fx
			a12 += fx * fy
			a22 += fy * fy
			b1 += fx * dt
			b2 += fy * dt
			profile.AddI(12)
		}
	}
	det := a11*a22 - a12*a12
	profile.AddF(10)
	if det < 1e-9 {
		return Result{}
	}
	u := (a22*b1 - a12*b2) / det
	v := (a11*b2 - a12*b1) / det
	// The interpolation weights directly estimate the displacement:
	// B(x) ≈ A(x) + u·(A(x−Δ)−A(x+Δ))/(2Δ) ≈ A(x−u), i.e. A's content
	// appears at x+u in B.
	return Result{DX: u, DY: v, Valid: true}
}

// BBConfig parameterizes block matching.
type BBConfig struct {
	Block  int // half-size of the matching block
	Search int // search radius in pixels
}

// DefaultBBConfig matches the suite's flow configuration: a compact 7×7
// block and ±3 search — block matching sits at the cheap end of the flow
// spectrum (Fig 3b).
func DefaultBBConfig() BBConfig { return BBConfig{Block: 3, Search: 3} }

// BlockMatch is the bbof kernel: exhaustive sum-of-absolute-differences
// search over a ±Search window — pure 8-bit integer work.
func BlockMatch(a, b *img.Gray, cx, cy int, cfg BBConfig) Result {
	return blockMatch(a, b, cx, cy, cfg, false)
}

// BlockMatchVec is the bbof-vec variant of Table VI: the same search
// with the inner SAD row modeled on the 4-lane USADA8 instruction, which
// cuts the per-pixel integer and memory op count by ~4x.
func BlockMatchVec(a, b *img.Gray, cx, cy int, cfg BBConfig) Result {
	return blockMatch(a, b, cx, cy, cfg, true)
}

func blockMatch(a, b *img.Gray, cx, cy int, cfg BBConfig, vectorized bool) Result {
	r := cfg.Block
	s := cfg.Search
	if cx-r-s < 0 || cy-r-s < 0 || cx+r+s >= a.W || cy+r+s >= a.H {
		return Result{}
	}
	best := int(^uint(0) >> 1)
	bx, by := 0, 0
	for dy := -s; dy <= s; dy++ {
		for dx := -s; dx <= s; dx++ {
			sad := 0
			for wy := -r; wy <= r; wy++ {
				rowSum := 0
				for wx := -r; wx <= r; wx++ {
					pa := int(a.Pix[(cy+wy)*a.W+cx+wx])
					pb := int(b.Pix[(cy+wy+dy)*b.W+cx+wx+dx])
					d := pa - pb
					if d < 0 {
						d = -d
					}
					rowSum += d
				}
				sad += rowSum
				w := uint64(2*r + 1)
				if vectorized {
					// USADA8 handles four byte lanes per instruction:
					// one load pair + one accumulate per 4 pixels.
					profile.AddI((w + 3) / 4)
					profile.AddM((w + 3) / 4 * 2)
				} else {
					profile.AddI(3 * w)
					profile.AddM(2 * w)
				}
			}
			profile.AddB(1)
			if sad < best {
				best = sad
				bx, by = dx, dy
			}
		}
	}
	return Result{DX: float64(bx), DY: float64(by), Valid: true}
}
