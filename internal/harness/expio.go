package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ExperimentIO is the measurement-log half of the paper's ExperimentIO
// abstraction (the paper moves data host↔MCU over semihosting and saves
// results to reduce host interaction; here the "measurement logs" output
// of the artifact is a CSV stream).

// csvHeader is the measurement-log column set.
var csvHeader = []string{
	"kernel", "arch", "precision", "cache",
	"ops_f", "ops_i", "ops_m", "ops_b",
	"cycles", "latency_us", "energy_uj", "avg_power_mw", "peak_power_mw",
	"reps", "valid",
}

// WriteResultsCSV streams harness results as a measurement log.
func WriteResultsCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Kernel,
			r.Arch.Name,
			r.Precision.String(),
			strconv.FormatBool(r.CacheOn),
			strconv.FormatUint(r.Counts.F, 10),
			strconv.FormatUint(r.Counts.I, 10),
			strconv.FormatUint(r.Counts.M, 10),
			strconv.FormatUint(r.Counts.B, 10),
			fmt.Sprintf("%.0f", r.Model.Cycles),
			fmt.Sprintf("%.4f", r.Measured.LatencyS*1e6),
			fmt.Sprintf("%.6f", r.Measured.EnergyJ*1e6),
			fmt.Sprintf("%.3f", r.Measured.AvgPowerW*1e3),
			fmt.Sprintf("%.3f", r.Measured.PeakPowerW*1e3),
			strconv.Itoa(r.Measured.Reps),
			strconv.FormatBool(r.Valid),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MeasurementRow is one parsed measurement-log record.
type MeasurementRow struct {
	Kernel      string
	Arch        string
	Precision   string
	CacheOn     bool
	Cycles      float64
	LatencyUs   float64
	EnergyUJ    float64
	AvgPowerMW  float64
	PeakPowerMW float64
	Reps        int
	Valid       bool
}

// ReadResultsCSV parses a measurement log written by WriteResultsCSV —
// or hand-exported from a real capture tool, which is messier. The
// reader tolerates what tolerance is safe for (CRLF line endings,
// blank lines, `#` comment lines) and reports everything else as a
// clear per-line error naming the offending field: a malformed value
// silently parsed as zero would poison a calibration downstream.
func ReadResultsCSV(r io.Reader) ([]MeasurementRow, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // length checked per row for better errors

	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("harness: empty measurement log")
	}
	if err != nil {
		return nil, fmt.Errorf("harness: measurement-log header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != "kernel" {
		return nil, fmt.Errorf("harness: unrecognized measurement-log header")
	}
	var out []MeasurementRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("harness: measurement log: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(rec) != len(csvHeader) {
			return nil, fmt.Errorf("harness: measurement log line %d: %d fields, want %d",
				line, len(rec), len(csvHeader))
		}
		fieldErr := func(col int, err error) error {
			return fmt.Errorf("harness: measurement log line %d: %s %q: %w",
				line, csvHeader[col], rec[col], err)
		}
		var row MeasurementRow
		row.Kernel = rec[0]
		row.Arch = rec[1]
		row.Precision = rec[2]
		if row.CacheOn, err = strconv.ParseBool(rec[3]); err != nil {
			return nil, fieldErr(3, err)
		}
		if row.Cycles, err = strconv.ParseFloat(rec[8], 64); err != nil {
			return nil, fieldErr(8, err)
		}
		if row.LatencyUs, err = strconv.ParseFloat(rec[9], 64); err != nil {
			return nil, fieldErr(9, err)
		}
		if row.EnergyUJ, err = strconv.ParseFloat(rec[10], 64); err != nil {
			return nil, fieldErr(10, err)
		}
		if row.AvgPowerMW, err = strconv.ParseFloat(rec[11], 64); err != nil {
			return nil, fieldErr(11, err)
		}
		if row.PeakPowerMW, err = strconv.ParseFloat(rec[12], 64); err != nil {
			return nil, fieldErr(12, err)
		}
		if row.Reps, err = strconv.Atoi(rec[13]); err != nil {
			return nil, fieldErr(13, err)
		}
		if row.Valid, err = strconv.ParseBool(rec[14]); err != nil {
			return nil, fieldErr(14, err)
		}
		out = append(out, row)
	}
	if out == nil {
		out = []MeasurementRow{}
	}
	return out, nil
}
