package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ExperimentIO is the measurement-log half of the paper's ExperimentIO
// abstraction (the paper moves data host↔MCU over semihosting and saves
// results to reduce host interaction; here the "measurement logs" output
// of the artifact is a CSV stream).

// csvHeader is the measurement-log column set.
var csvHeader = []string{
	"kernel", "arch", "precision", "cache",
	"ops_f", "ops_i", "ops_m", "ops_b",
	"cycles", "latency_us", "energy_uj", "avg_power_mw", "peak_power_mw",
	"reps", "valid",
}

// WriteResultsCSV streams harness results as a measurement log.
func WriteResultsCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Kernel,
			r.Arch.Name,
			r.Precision.String(),
			strconv.FormatBool(r.CacheOn),
			strconv.FormatUint(r.Counts.F, 10),
			strconv.FormatUint(r.Counts.I, 10),
			strconv.FormatUint(r.Counts.M, 10),
			strconv.FormatUint(r.Counts.B, 10),
			fmt.Sprintf("%.0f", r.Model.Cycles),
			fmt.Sprintf("%.4f", r.Measured.LatencyS*1e6),
			fmt.Sprintf("%.6f", r.Measured.EnergyJ*1e6),
			fmt.Sprintf("%.3f", r.Measured.AvgPowerW*1e3),
			fmt.Sprintf("%.3f", r.Measured.PeakPowerW*1e3),
			strconv.Itoa(r.Measured.Reps),
			strconv.FormatBool(r.Valid),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MeasurementRow is one parsed measurement-log record.
type MeasurementRow struct {
	Kernel      string
	Arch        string
	Precision   string
	CacheOn     bool
	Cycles      float64
	LatencyUs   float64
	EnergyUJ    float64
	AvgPowerMW  float64
	PeakPowerMW float64
	Reps        int
	Valid       bool
}

// ReadResultsCSV parses a measurement log written by WriteResultsCSV.
func ReadResultsCSV(r io.Reader) ([]MeasurementRow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("harness: empty measurement log")
	}
	if len(records[0]) != len(csvHeader) || records[0][0] != "kernel" {
		return nil, fmt.Errorf("harness: unrecognized measurement-log header")
	}
	out := make([]MeasurementRow, 0, len(records)-1)
	for _, rec := range records[1:] {
		var row MeasurementRow
		row.Kernel = rec[0]
		row.Arch = rec[1]
		row.Precision = rec[2]
		row.CacheOn, _ = strconv.ParseBool(rec[3])
		row.Cycles, _ = strconv.ParseFloat(rec[8], 64)
		row.LatencyUs, _ = strconv.ParseFloat(rec[9], 64)
		row.EnergyUJ, _ = strconv.ParseFloat(rec[10], 64)
		row.AvgPowerMW, _ = strconv.ParseFloat(rec[11], 64)
		row.PeakPowerMW, _ = strconv.ParseFloat(rec[12], 64)
		row.Reps, _ = strconv.Atoi(rec[13])
		row.Valid, _ = strconv.ParseBool(rec[14])
		out = append(out, row)
	}
	return out, nil
}
