package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// BuildConfig mirrors the paper's JSON benchmark configuration: "All
// benchmarks can be configured via JSON files that our build system uses
// for build-time parameters such as Reps, Verbosity, and TotalRuns."
type BuildConfig struct {
	Reps      int  `json:"Reps"`
	Warmup    int  `json:"Warmup"`
	CacheOn   bool `json:"CacheOn"`
	Verbosity int  `json:"Verbosity"`
	TotalRuns int  `json:"TotalRuns"`
	// MinROIUs is the auto-rep ROI target in microseconds (0 = default).
	MinROIUs float64 `json:"MinROIUs"`
}

// DefaultBuildConfig mirrors the artifact's shipped JSON defaults.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{Reps: 0, Warmup: 1, CacheOn: true, Verbosity: 0, TotalRuns: 1}
}

// Config converts the build parameters into a harness Config.
func (b BuildConfig) Config() Config {
	cfg := DefaultConfig()
	cfg.Reps = b.Reps
	cfg.Warmup = b.Warmup
	cfg.CacheOn = b.CacheOn
	cfg.Verbosity = b.Verbosity
	if b.MinROIUs > 0 {
		cfg.MinROITimeS = b.MinROIUs * 1e-6
	}
	return cfg
}

// LoadBuildConfig reads a JSON benchmark configuration file. Missing
// fields keep their defaults; unknown fields are rejected so typos in
// experiment configs fail loudly.
func LoadBuildConfig(path string) (BuildConfig, error) {
	out := DefaultBuildConfig()
	data, err := os.ReadFile(path)
	if err != nil {
		return out, fmt.Errorf("harness: read config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return out, fmt.Errorf("harness: parse config %s: %w", path, err)
	}
	if out.TotalRuns < 1 {
		out.TotalRuns = 1
	}
	return out, nil
}
