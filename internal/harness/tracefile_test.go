package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// synthCaptures renders vvadd's cache-on and cache-off cells as
// captures — the same export path `entobench trace` uses.
func synthCaptures(t *testing.T) (*harness.Prepared, []harness.TraceCapture) {
	t.Helper()
	cfg := harness.DefaultConfig()
	pp, err := harness.Prepare(&vvadd{n: 256}, mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var captures []harness.TraceCapture
	for _, cacheOn := range []bool{true, false} {
		c := cfg
		c.CacheOn = cacheOn
		captures = append(captures, pp.SynthesizeCapture(mcu.M4, mcu.PrecF32, c))
	}
	return pp, captures
}

func TestTraceCSVRoundTrip(t *testing.T) {
	_, captures := synthCaptures(t)
	var buf bytes.Buffer
	if err := harness.WriteTraceCSV(&buf, captures); err != nil {
		t.Fatal(err)
	}
	got, err := harness.ReadTraceCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(captures) {
		t.Fatalf("round trip returned %d captures, want %d", len(got), len(captures))
	}
	for i, want := range captures {
		g := got[i]
		if g.Kernel != want.Kernel || g.Arch != want.Arch || g.CacheOn != want.CacheOn || g.Reps != want.Reps {
			t.Errorf("capture %d identity mismatch: %+v", i, g)
		}
		if g.Trace.SampleHz != want.Trace.SampleHz || g.Trace.StartS != want.Trace.StartS {
			t.Errorf("capture %d trace meta mismatch", i)
		}
		if len(g.Trace.Power) != len(want.Trace.Power) {
			t.Fatalf("capture %d: %d samples, want %d", i, len(g.Trace.Power), len(want.Trace.Power))
		}
		for j := range g.Trace.Power {
			if g.Trace.Power[j] != want.Trace.Power[j] {
				t.Fatalf("capture %d sample %d not bit-exact: %g vs %g", i, j, g.Trace.Power[j], want.Trace.Power[j])
			}
		}
		if len(g.Events) != len(want.Events) {
			t.Fatalf("capture %d: %d events, want %d", i, len(g.Events), len(want.Events))
		}
		for j := range g.Events {
			if g.Events[j] != want.Events[j] {
				t.Errorf("capture %d event %d = %+v, want %+v", i, j, g.Events[j], want.Events[j])
			}
		}
	}
}

// TestTraceBackendReplayMatchesSim is the seam's round-trip guarantee:
// replaying a synthesized capture through the trace backend recovers
// exactly the measurement the simulator path produces for that cell.
func TestTraceBackendReplayMatchesSim(t *testing.T) {
	pp, captures := synthCaptures(t)
	tb, err := harness.NewTraceBackend(captures)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "trace" || tb.Source() != harness.SourceMeasured {
		t.Fatalf("trace backend identity = %s/%s", tb.Name(), tb.Source())
	}
	if tb.Fingerprint() == "" {
		t.Fatal("trace backend has no fingerprint")
	}
	if !tb.Covers("VVADD", "m4", true) {
		t.Error("coverage lookup is not case-insensitive")
	}
	if tb.Covers("vvadd", "M33", true) {
		t.Error("claims coverage of an uncaptured board")
	}
	for _, cacheOn := range []bool{true, false} {
		cfg := harness.DefaultConfig()
		cfg.CacheOn = cacheOn
		sim, err := pp.MeasureOnBackend(mcu.M4, mcu.PrecF32, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := pp.MeasureOnBackend(mcu.M4, mcu.PrecF32, cfg, tb)
		if err != nil {
			t.Fatal(err)
		}
		if replayed.Measured != sim.Measured {
			t.Errorf("cache=%v replay diverges: %+v vs %+v", cacheOn, replayed.Measured, sim.Measured)
		}
		if replayed.Source != harness.SourceMeasured {
			t.Errorf("cache=%v replayed source = %q", cacheOn, replayed.Source)
		}
	}
}

// TestTraceBackendFingerprint: identical data — any file order — salts
// identically; different data salts differently.
func TestTraceBackendFingerprint(t *testing.T) {
	_, captures := synthCaptures(t)
	fwd, err := harness.NewTraceBackend(captures)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := harness.NewTraceBackend([]harness.TraceCapture{captures[1], captures[0]})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Fingerprint() != rev.Fingerprint() {
		t.Error("capture order changed the fingerprint")
	}
	only, err := harness.NewTraceBackend(captures[:1])
	if err != nil {
		t.Fatal(err)
	}
	if only.Fingerprint() == fwd.Fingerprint() {
		t.Error("different capture sets share a fingerprint")
	}
}

func TestNewTraceBackendRejects(t *testing.T) {
	if _, err := harness.NewTraceBackend(nil); err == nil {
		t.Error("empty capture set accepted")
	}
	_, captures := synthCaptures(t)
	if _, err := harness.NewTraceBackend([]harness.TraceCapture{captures[0], captures[0]}); err == nil {
		t.Error("duplicate cell accepted")
	}
}

// TestReadTraceCSVTolerance: real exporter output is messy — CRLF,
// comment lines, blank lines, and out-of-order samples must all parse
// to the same captures as the canonical file.
func TestReadTraceCSVTolerance(t *testing.T) {
	_, captures := synthCaptures(t)
	var buf bytes.Buffer
	if err := harness.WriteTraceCSV(&buf, captures[:1]); err != nil {
		t.Fatal(err)
	}
	want, err := harness.ReadTraceCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Scramble: move the last sample row right after the meta row, so
	// timestamps arrive out of order.
	last := lines[len(lines)-1]
	messy := append([]string{}, lines[0], "# exporter: bench rig v2", lines[1], last, "")
	messy = append(messy, lines[2:len(lines)-1]...)
	got, err := harness.ReadTraceCSV(strings.NewReader(strings.Join(messy, "\r\n") + "\r\n"))
	if err != nil {
		t.Fatalf("messy-but-legal file rejected: %v", err)
	}
	if len(got) != 1 || len(got[0].Trace.Power) != len(want[0].Trace.Power) {
		t.Fatalf("messy parse lost samples: %d vs %d", len(got[0].Trace.Power), len(want[0].Trace.Power))
	}
	for i := range got[0].Trace.Power {
		if got[0].Trace.Power[i] != want[0].Trace.Power[i] {
			t.Fatalf("sample %d not re-sorted into place", i)
		}
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	const header = "kernel,arch,cache,kind,time_s,value,detail\n"
	meta := "vvadd,M4,true,meta,0,4,100000\n"
	sample := "vvadd,M4,true,sample,0,0.05,\n"
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty trace CSV"},
		{"wrong header", "a,b,c\n", "unrecognized trace CSV header"},
		{"field count", header + "vvadd,M4,true\n", "line 2"},
		{"bad cache", header + "vvadd,M4,maybe,meta,0,4,100000\n", "cache"},
		{"bad time", header + "vvadd,M4,true,meta,soon,4,100000\n", "time_s"},
		{"bad reps", header + "vvadd,M4,true,meta,0,zero,100000\n", "reps"},
		{"bad rate", header + "vvadd,M4,true,meta,0,4,-1\n", "sample rate"},
		{"dup meta", header + meta + sample + meta, "duplicate meta"},
		{"bad power", header + meta + "vvadd,M4,true,sample,0,lots,\n", "power"},
		{"bad pin", header + meta + sample + "vvadd,M4,true,gpio,0,reset,rise\n", "pin"},
		{"bad edge", header + meta + sample + "vvadd,M4,true,gpio,0,trigger,sideways\n", "edge"},
		{"bad kind", header + meta + "vvadd,M4,true,wave,0,0.05,\n", "row kind"},
		{"no meta", header + sample, "no meta row"},
		{"no samples", header + meta, "no power samples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := harness.ReadTraceCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTraceBackendGoldenFixture replays the checked-in capture file
// (generated by `entobench trace madgwick -arch M4`) and checks the
// measured cells land within the harness's standard 5% self-check
// tolerance of the simulator path. A deliberate model change that
// moves madgwick×M4 by more than that should regenerate the fixture
// with the same command.
func TestTraceBackendGoldenFixture(t *testing.T) {
	tb, err := harness.LoadTraceBackend("testdata/madgwick_m4_trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cells() != 2 {
		t.Fatalf("fixture covers %d cells, want 2", tb.Cells())
	}
	spec, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("no madgwick kernel")
	}
	arch, ok := mcu.ByName("M4")
	if !ok {
		t.Fatal("no M4 board")
	}
	cfg := harness.DefaultConfig()
	pp, err := harness.Prepare(spec.Factory(), arch, spec.Prec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cacheOn := range []bool{true, false} {
		c := cfg
		c.CacheOn = cacheOn
		sim, err := pp.MeasureOnBackend(arch, spec.Prec, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pp.MeasureOnBackend(arch, spec.Prec, c, tb)
		if err != nil {
			t.Fatal(err)
		}
		if got.Source != harness.SourceMeasured {
			t.Errorf("cache=%v source = %q", cacheOn, got.Source)
		}
		for _, m := range []struct {
			name     string
			got, sim float64
		}{
			{"latency", got.Measured.LatencyS, sim.Measured.LatencyS},
			{"energy", got.Measured.EnergyJ, sim.Measured.EnergyJ},
			{"avg power", got.Measured.AvgPowerW, sim.Measured.AvgPowerW},
			{"peak power", got.Measured.PeakPowerW, sim.Measured.PeakPowerW},
		} {
			if e := harness.RelError(m.got, m.sim); e > 0.05 {
				t.Errorf("cache=%v %s off by %.1f%%: fixture %g vs sim %g",
					cacheOn, m.name, e*100, m.got, m.sim)
			}
		}
	}
}
