package harness

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mcu"
)

// The trace-capture CSV format: the interchange file a Saleae/STLINK
// export pipeline writes and the TraceBackend ingests. One file holds
// any number of captures, each identified by its (kernel, arch, cache)
// cell; every row restates the cell so captures can be concatenated
// from separate exports. docs/backends.md is the schema reference.

// TraceCSVHeader is the trace-capture column set: the cell identity
// (kernel, arch, cache), the row kind, and the kind-dependent payload.
var TraceCSVHeader = []string{"kernel", "arch", "cache", "kind", "time_s", "value", "detail"}

// Row kinds of the trace-capture CSV.
const (
	traceKindMeta   = "meta"   // time_s=trace start, value=reps, detail=sample rate (Hz)
	traceKindSample = "sample" // time_s=sample timestamp, value=power (W)
	traceKindGPIO   = "gpio"   // time_s=edge timestamp, value=pin name, detail=rise|fall
)

// GPIO pin names on the wire.
const (
	tracePinTrigger = "trigger"
	tracePinLatency = "latency"
)

// TraceCapture is one externally captured cell: the current waveform
// and logic-analyzer edges recorded while the named kernel ran reps
// ROI repetitions on the named board.
type TraceCapture struct {
	Kernel  string
	Arch    string
	CacheOn bool
	Reps    int
	Trace   Trace
	Events  []GPIOEvent
}

// captureKey is the cell identity a capture is filed under,
// case-insensitive in kernel and board name like the registries.
func captureKey(kernel, archName string, cacheOn bool) string {
	return strings.ToLower(kernel) + "\x00" + strings.ToLower(archName) + "\x00" + strconv.FormatBool(cacheOn)
}

// ftoa renders a float for the trace CSV: shortest form that parses
// back to the identical bits, so a write/read round trip is exact.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTraceCSV streams captures in the trace-capture CSV format: a
// header row, then per capture one meta row, the power samples, and the
// GPIO edges.
func WriteTraceCSV(w io.Writer, captures []TraceCapture) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TraceCSVHeader); err != nil {
		return err
	}
	for _, c := range captures {
		cell := []string{c.Kernel, c.Arch, strconv.FormatBool(c.CacheOn)}
		meta := append(append([]string{}, cell...),
			traceKindMeta, ftoa(c.Trace.StartS), strconv.Itoa(c.Reps), ftoa(c.Trace.SampleHz))
		if err := cw.Write(meta); err != nil {
			return err
		}
		for i, p := range c.Trace.Power {
			t := c.Trace.StartS + float64(i)/c.Trace.SampleHz
			row := append(append([]string{}, cell...), traceKindSample, ftoa(t), ftoa(p), "")
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		for _, e := range c.Events {
			pin := tracePinTrigger
			if e.Pin == PinLatency {
				pin = tracePinLatency
			}
			edge := "fall"
			if e.Rising {
				edge = "rise"
			}
			row := append(append([]string{}, cell...), traceKindGPIO, ftoa(e.TimeS), pin, edge)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// rawCapture accumulates one capture's rows before assembly.
type rawCapture struct {
	kernel, arch string
	cacheOn      bool
	hasMeta      bool
	startS       float64
	sampleHz     float64
	reps         int
	samples      []traceSample
	events       []GPIOEvent
}

type traceSample struct {
	timeS float64
	power float64
}

// ReadTraceCSV parses the trace-capture CSV format. Real exporter
// output is messy, so the reader is tolerant where tolerance is safe —
// CRLF line endings, blank lines, and `#` comment lines are accepted,
// and power samples may arrive out of timestamp order (they are sorted
// into the waveform) — and precise where it is not: every malformed
// row fails with its line number and field.
func ReadTraceCSV(r io.Reader) ([]TraceCapture, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // length checked per row for better errors

	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("harness: empty trace CSV")
	}
	if err != nil {
		return nil, fmt.Errorf("harness: trace CSV header: %w", err)
	}
	if len(header) != len(TraceCSVHeader) || header[0] != "kernel" || header[3] != "kind" {
		return nil, fmt.Errorf("harness: unrecognized trace CSV header %q", strings.Join(header, ","))
	}

	raw := map[string]*rawCapture{}
	var order []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("harness: trace CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(rec) != len(TraceCSVHeader) {
			return nil, fmt.Errorf("harness: trace CSV line %d: %d fields, want %d",
				line, len(rec), len(TraceCSVHeader))
		}
		kernel, arch := rec[0], rec[1]
		cacheOn, err := strconv.ParseBool(rec[2])
		if err != nil {
			return nil, fmt.Errorf("harness: trace CSV line %d: cache %q: %w", line, rec[2], err)
		}
		timeS, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("harness: trace CSV line %d: time_s %q: %w", line, rec[4], err)
		}
		key := captureKey(kernel, arch, cacheOn)
		rc := raw[key]
		if rc == nil {
			rc = &rawCapture{kernel: kernel, arch: arch, cacheOn: cacheOn}
			raw[key] = rc
			order = append(order, key)
		}
		switch rec[3] {
		case traceKindMeta:
			if rc.hasMeta {
				return nil, fmt.Errorf("harness: trace CSV line %d: duplicate meta row for %s/%s cache=%v",
					line, kernel, arch, cacheOn)
			}
			reps, err := strconv.Atoi(rec[5])
			if err != nil || reps < 1 {
				return nil, fmt.Errorf("harness: trace CSV line %d: reps %q must be a positive integer", line, rec[5])
			}
			hz, err := strconv.ParseFloat(rec[6], 64)
			if err != nil || hz <= 0 {
				return nil, fmt.Errorf("harness: trace CSV line %d: sample rate %q must be a positive number", line, rec[6])
			}
			rc.hasMeta, rc.startS, rc.reps, rc.sampleHz = true, timeS, reps, hz
		case traceKindSample:
			p, err := strconv.ParseFloat(rec[5], 64)
			if err != nil {
				return nil, fmt.Errorf("harness: trace CSV line %d: power %q: %w", line, rec[5], err)
			}
			rc.samples = append(rc.samples, traceSample{timeS: timeS, power: p})
		case traceKindGPIO:
			var pin int
			switch rec[5] {
			case tracePinTrigger:
				pin = PinTrigger
			case tracePinLatency:
				pin = PinLatency
			default:
				return nil, fmt.Errorf("harness: trace CSV line %d: pin %q, want %q or %q",
					line, rec[5], tracePinTrigger, tracePinLatency)
			}
			var rising bool
			switch rec[6] {
			case "rise":
				rising = true
			case "fall":
				rising = false
			default:
				return nil, fmt.Errorf("harness: trace CSV line %d: edge %q, want \"rise\" or \"fall\"", line, rec[6])
			}
			rc.events = append(rc.events, GPIOEvent{Pin: pin, Rising: rising, TimeS: timeS})
		default:
			return nil, fmt.Errorf("harness: trace CSV line %d: unknown row kind %q", line, rec[3])
		}
	}

	out := make([]TraceCapture, 0, len(order))
	for _, key := range order {
		rc := raw[key]
		if !rc.hasMeta {
			return nil, fmt.Errorf("harness: trace CSV: capture %s/%s cache=%v has no meta row",
				rc.kernel, rc.arch, rc.cacheOn)
		}
		if len(rc.samples) == 0 {
			return nil, fmt.Errorf("harness: trace CSV: capture %s/%s cache=%v has no power samples",
				rc.kernel, rc.arch, rc.cacheOn)
		}
		// Out-of-order exports are legal; the waveform is rebuilt in
		// timestamp order (a stable sort keeps duplicate-timestamp rows
		// in file order).
		sort.SliceStable(rc.samples, func(i, j int) bool { return rc.samples[i].timeS < rc.samples[j].timeS })
		sort.SliceStable(rc.events, func(i, j int) bool { return rc.events[i].TimeS < rc.events[j].TimeS })
		tr := Trace{SampleHz: rc.sampleHz, StartS: rc.startS, Power: make([]float64, len(rc.samples))}
		for i, s := range rc.samples {
			tr.Power[i] = s.power
		}
		out = append(out, TraceCapture{
			Kernel: rc.kernel, Arch: rc.arch, CacheOn: rc.cacheOn,
			Reps: rc.reps, Trace: tr, Events: rc.events,
		})
	}
	return out, nil
}

// TraceBackend replays externally captured traces through the shared
// Analyze pipeline: a Measure call looks up the request's cell among
// the loaded captures and integrates the recorded waveform inside the
// recorded ROI. It is a PartialBackend — a capture file rarely covers
// the whole grid — so uncovered cells fall back to the simulator.
type TraceBackend struct {
	captures    map[string]TraceCapture
	fingerprint string
}

// NewTraceBackend builds a backend over in-memory captures. Two
// captures of the same (kernel, arch, cache) cell are rejected: there
// is no principled way to pick one.
func NewTraceBackend(captures []TraceCapture) (*TraceBackend, error) {
	if len(captures) == 0 {
		return nil, fmt.Errorf("harness: trace backend needs at least one capture")
	}
	m := make(map[string]TraceCapture, len(captures))
	for _, c := range captures {
		key := captureKey(c.Kernel, c.Arch, c.CacheOn)
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("harness: duplicate trace capture for %s/%s cache=%v",
				c.Kernel, c.Arch, c.CacheOn)
		}
		m[key] = c
	}
	// The fingerprint digests the canonical serialization of the
	// captures in sorted cell order, so identical data loaded from
	// different files (or orderings) salts cache keys identically.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		c := m[k]
		if err := WriteTraceCSV(h, []TraceCapture{c}); err != nil {
			return nil, fmt.Errorf("harness: fingerprinting trace captures: %w", err)
		}
	}
	return &TraceBackend{captures: m, fingerprint: hex.EncodeToString(h.Sum(nil))}, nil
}

// LoadTraceBackend reads a trace-capture CSV file into a TraceBackend —
// the library form of `entobench sweep -backend trace -tracefile FILE`.
func LoadTraceBackend(path string) (*TraceBackend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: trace backend: %w", err)
	}
	defer f.Close()
	captures, err := ReadTraceCSV(f)
	if err != nil {
		return nil, fmt.Errorf("harness: trace backend: %s: %w", path, err)
	}
	return NewTraceBackend(captures)
}

// Name implements Backend.
func (tb *TraceBackend) Name() string { return "trace" }

// Source implements Backend: every replayed cell is measured.
func (tb *TraceBackend) Source() string { return SourceMeasured }

// Fingerprint implements Backend: a digest of the loaded captures.
func (tb *TraceBackend) Fingerprint() string { return tb.fingerprint }

// Covers implements PartialBackend.
func (tb *TraceBackend) Covers(kernel, archName string, cacheOn bool) bool {
	_, ok := tb.captures[captureKey(kernel, archName, cacheOn)]
	return ok
}

// Cells returns the covered (kernel, arch, cache) cell count.
func (tb *TraceBackend) Cells() int { return len(tb.captures) }

// Measure implements Backend: replay the captured waveform and edges
// through the shared analysis pipeline. The capture's recorded rep
// count is ground truth — the build configuration of the run that
// produced the trace — so the request's modeled rep count is ignored,
// exactly as the paper's synchronization script reads reps from the
// benchmark JSON rather than re-deriving them.
func (tb *TraceBackend) Measure(req MeasureRequest) (Measurement, error) {
	c, ok := tb.captures[captureKey(req.Kernel, req.Arch.Name, req.CacheOn)]
	if !ok {
		return Measurement{}, fmt.Errorf("harness: trace backend has no capture for %s/%s cache=%v",
			req.Kernel, req.Arch.Name, req.CacheOn)
	}
	return Analyze(c.Trace, c.Events, c.Reps)
}

// SynthesizeCapture renders the cell's synthetic trace as a
// TraceCapture — the export half of the round trip, used by
// `entobench trace` to produce capture files the TraceBackend (or an
// external tool) can consume. The waveform and events are exactly what
// MeasureOn would synthesize for this cell.
func (pp *Prepared) SynthesizeCapture(arch mcu.Arch, prec mcu.Precision, cfg Config) TraceCapture {
	model := arch.Estimate(pp.counts, prec, cfg.CacheOn)
	reps := autoReps(cfg, model.LatencyS)
	tr, events := SynthesizeTrace(model, arch, cfg.CacheOn, reps, int64(len(pp.name)))
	return TraceCapture{
		Kernel: pp.name, Arch: arch.Name, CacheOn: cfg.CacheOn,
		Reps: reps, Trace: tr, Events: events,
	}
}
