package harness

import (
	"errors"
	"math"

	"repro/internal/mcu"
)

// SampleHz is the current-probe sampling rate (STLINK-V3PWR at 100 kHz).
const SampleHz = 100e3

// Trace is a sampled current/power waveform, in watts at the supply.
type Trace struct {
	SampleHz float64
	Power    []float64
	StartS   float64 // timestamp of sample 0 on the logic-analyzer clock
}

// SynthesizeTrace renders the power waveform and GPIO event log of one
// harness run: lead-in idle, a trigger edge, the latency-pin ROI
// spanning all reps, then tail idle. The waveform carries the modeled
// average power with deterministic activity bursts that reach the
// modeled peak — what an inline current probe actually records. The
// outside-ROI floor is the board model's declared idle draw
// (Arch.IdlePowerW), so custom boards synthesize with their own sleep
// current instead of a hard-coded table.
func SynthesizeTrace(est mcu.Estimate, arch mcu.Arch, cacheOn bool, reps int, seed int64) (Trace, []GPIOEvent) {
	idle := arch.IdlePowerW()
	roiDur := est.LatencyS * float64(reps)
	lead := 500e-6
	tail := 500e-6
	total := lead + roiDur + tail
	n := int(total*SampleHz) + 2

	tr := Trace{SampleHz: SampleHz, Power: make([]float64, n)}
	// Deterministic small-period burst pattern: a fraction of samples
	// sit at the peak, the rest are rebalanced so the mean stays at the
	// modeled average (energy-preserving).
	const burstDuty = 0.05
	base := est.AvgPowerW
	peak := est.PeakPowerW
	low := base
	if peak > base {
		low = (base - burstDuty*peak) / (1 - burstDuty)
		if low < 0 {
			low = 0
		}
	}
	rng := seed*6364136223846793005 + 1442695040888963407
	nextRand := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(uint64(rng)>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / SampleHz
		switch {
		case t < lead || t >= lead+roiDur:
			tr.Power[i] = idle * (1 + 0.01*(nextRand()-0.5))
		default:
			if nextRand() < burstDuty {
				tr.Power[i] = peak
			} else {
				tr.Power[i] = low * (1 + 0.005*(nextRand()-0.5))
			}
		}
	}

	events := []GPIOEvent{
		{Pin: PinTrigger, Rising: true, TimeS: lead * 0.2},
		{Pin: PinLatency, Rising: true, TimeS: lead},
		{Pin: PinLatency, Rising: false, TimeS: lead + roiDur},
		{Pin: PinTrigger, Rising: false, TimeS: lead + roiDur + tail*0.5},
	}
	return tr, events
}

// Analyze recovers per-rep latency, energy, and peak power from a trace
// plus logic-analyzer events — the Go port of the paper's Python
// synchronization script. The rep count comes from the benchmark build
// configuration, exactly as the paper's script reads it from JSON.
func Analyze(tr Trace, events []GPIOEvent, reps int) (Measurement, error) {
	var roiStart, roiEnd float64
	haveStart, haveEnd := false, false
	for _, e := range events {
		if e.Pin != PinLatency {
			continue
		}
		if e.Rising && !haveStart {
			roiStart = e.TimeS
			haveStart = true
		}
		if !e.Rising && haveStart {
			roiEnd = e.TimeS
			haveEnd = true
		}
	}
	if !haveStart || !haveEnd || roiEnd <= roiStart {
		return Measurement{}, errors.New("harness: no latency-pin ROI in event log")
	}
	i0 := int((roiStart - tr.StartS) * tr.SampleHz)
	i1 := int((roiEnd - tr.StartS) * tr.SampleHz)
	if i0 < 0 {
		i0 = 0
	}
	if i1 >= len(tr.Power) {
		i1 = len(tr.Power) - 1
	}
	if i1 <= i0 {
		return Measurement{}, errors.New("harness: ROI shorter than one probe sample")
	}
	var sum, peak float64
	for i := i0; i < i1; i++ {
		sum += tr.Power[i]
		if tr.Power[i] > peak {
			peak = tr.Power[i]
		}
	}
	nSamples := float64(i1 - i0)
	avg := sum / nSamples
	roiDur := roiEnd - roiStart
	if reps < 1 {
		reps = 1
	}
	return Measurement{
		LatencyS:   roiDur / float64(reps),
		EnergyJ:    avg * roiDur / float64(reps),
		AvgPowerW:  avg,
		PeakPowerW: peak,
		Reps:       reps,
	}, nil
}

// RelError is a helper for tests and the self-check: |a-b| / max(|b|, ε).
func RelError(a, b float64) float64 {
	den := math.Abs(b)
	if den < 1e-30 {
		den = 1e-30
	}
	return math.Abs(a-b) / den
}
