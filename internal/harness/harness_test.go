package harness_test

import (
	"errors"
	"testing"

	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// vvadd is the artifact appendix's example kernel: vector-vector add.
type vvadd struct {
	n       int
	a, b, c []scalar.F32
	solved  bool
	failSet bool
}

func (v *vvadd) Name() string    { return "vvadd" }
func (v *vvadd) Dataset() string { return "synthetic" }

func (v *vvadd) Setup() error {
	if v.failSet {
		return errors.New("forced setup failure")
	}
	v.a = make([]scalar.F32, v.n)
	v.b = make([]scalar.F32, v.n)
	v.c = make([]scalar.F32, v.n)
	for i := 0; i < v.n; i++ {
		v.a[i] = scalar.F32(i)
		v.b[i] = scalar.F32(2 * i)
	}
	return nil
}

func (v *vvadd) Solve() {
	for i := 0; i < v.n; i++ {
		v.c[i] = v.a[i].Add(v.b[i])
	}
	profile.AddM(uint64(3 * v.n))
	v.solved = true
}

func (v *vvadd) Validate() error {
	if !v.solved {
		return errors.New("not solved")
	}
	for i := 0; i < v.n; i++ {
		if v.c[i] != scalar.F32(3*i) {
			return errors.New("wrong sum")
		}
	}
	return nil
}

func TestRunEndToEnd(t *testing.T) {
	p := &vvadd{n: 256}
	res, err := harness.Run(p, mcu.M4, mcu.PrecF32, harness.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("validation failed: %v", res.ValidErr)
	}
	if res.Counts.F != 256 {
		t.Errorf("F ops = %d, want 256", res.Counts.F)
	}
	if res.Counts.M < 256 {
		t.Errorf("M ops = %d, want >= 256", res.Counts.M)
	}
	if res.Model.LatencyS <= 0 || res.Model.EnergyJ <= 0 {
		t.Error("model produced non-positive metrics")
	}
}

// The trace-analysis pipeline must agree with the analytic model — the
// self-consistency ablation from DESIGN.md.
func TestTracePipelineMatchesModel(t *testing.T) {
	p := &vvadd{n: 512}
	for _, arch := range mcu.TableIVSet() {
		for _, cache := range []bool{true, false} {
			cfg := harness.DefaultConfig()
			cfg.CacheOn = cache
			res, err := harness.Run(p, arch, mcu.PrecF32, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if e := harness.RelError(res.Measured.LatencyS, res.Model.LatencyS); e > 0.05 {
				t.Errorf("%s cache=%v: latency rel err %.3f", arch.Name, cache, e)
			}
			if e := harness.RelError(res.Measured.EnergyJ, res.Model.EnergyJ); e > 0.05 {
				t.Errorf("%s cache=%v: energy rel err %.3f", arch.Name, cache, e)
			}
			if e := harness.RelError(res.Measured.PeakPowerW, res.Model.PeakPowerW); e > 0.05 {
				t.Errorf("%s cache=%v: peak rel err %.3f", arch.Name, cache, e)
			}
		}
	}
}

func TestSetupFailurePropagates(t *testing.T) {
	p := &vvadd{n: 16, failSet: true}
	if _, err := harness.Run(p, mcu.M4, mcu.PrecF32, harness.DefaultConfig()); err == nil {
		t.Fatal("expected setup error")
	}
}

func TestAnalyzeRejectsEmptyEvents(t *testing.T) {
	tr := harness.Trace{SampleHz: harness.SampleHz, Power: make([]float64, 100)}
	if _, err := harness.Analyze(tr, nil, 1); err == nil {
		t.Fatal("expected error on missing ROI")
	}
}

func TestAnalyzeRejectsSubSampleROI(t *testing.T) {
	tr := harness.Trace{SampleHz: harness.SampleHz, Power: make([]float64, 100)}
	ev := []harness.GPIOEvent{
		{Pin: harness.PinLatency, Rising: true, TimeS: 1e-4},
		{Pin: harness.PinLatency, Rising: false, TimeS: 1e-4 + 1e-6},
	}
	if _, err := harness.Analyze(tr, ev, 1); err == nil {
		t.Fatal("expected error on sub-sample ROI")
	}
}

func TestAutoRepsCoverTinyKernels(t *testing.T) {
	// A ~2 µs kernel needs thousands of reps to fill a 2 ms ROI; the
	// analyzer must still recover per-rep latency accurately.
	p := &vvadd{n: 64}
	cfg := harness.DefaultConfig()
	res, err := harness.Run(p, mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Reps < 100 {
		t.Errorf("auto reps = %d; tiny kernel should get many reps", res.Measured.Reps)
	}
	if e := harness.RelError(res.Measured.LatencyS, res.Model.LatencyS); e > 0.05 {
		t.Errorf("per-rep latency rel err %.3f", e)
	}
}

func TestFixedRepsHonored(t *testing.T) {
	p := &vvadd{n: 64}
	cfg := harness.DefaultConfig()
	cfg.Reps = 500
	res, err := harness.Run(p, mcu.M33, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Reps != 500 {
		t.Errorf("reps = %d, want 500", res.Measured.Reps)
	}
}

func TestTraceEnergyPreservingBursts(t *testing.T) {
	est := mcu.M7.Estimate(profile.Counts{F: 5000, I: 3000, M: 4000, B: 1000}, mcu.PrecF32, true)
	tr, ev := harness.SynthesizeTrace(est, mcu.M7, true, 100, 1)
	m, err := harness.Analyze(tr, ev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e := harness.RelError(m.AvgPowerW, est.AvgPowerW); e > 0.05 {
		t.Errorf("trace mean power rel err %.3f", e)
	}
	if m.PeakPowerW < est.AvgPowerW {
		t.Error("peak below average")
	}
}

// solveCounter wraps vvadd to count host-side Solve invocations.
type solveCounter struct {
	vvadd
	solves int
}

func (s *solveCounter) Solve() { s.solves++; s.vvadd.Solve() }

// MaxHostReps must bound host-executed ROI reps: warmup + the profiled
// invocation + (MaxHostReps-1) validation reps, never the full modeled
// rep count.
func TestMaxHostRepsCapsHostExecution(t *testing.T) {
	p := &solveCounter{vvadd: vvadd{n: 16}}
	cfg := harness.DefaultConfig()
	cfg.Reps = 1000
	cfg.MaxHostReps = 5
	res, err := harness.Run(p, mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The trace still models the full rep count...
	if res.Measured.Reps != 1000 {
		t.Errorf("measured reps = %d, want 1000", res.Measured.Reps)
	}
	// ...but the host only ran warmup(1) + profiled(1) + extra(4).
	if want := cfg.Warmup + cfg.MaxHostReps; p.solves != want {
		t.Errorf("host solves = %d, want %d", p.solves, want)
	}
}

// The zero value keeps the historical default cap of 3 host reps, so a
// hand-built Config{} cannot accidentally run thousands of host reps.
func TestMaxHostRepsZeroMeansDefault(t *testing.T) {
	p := &solveCounter{vvadd: vvadd{n: 16}}
	cfg := harness.Config{Reps: 1000, Warmup: 1, CacheOn: true}
	if _, err := harness.Run(p, mcu.M4, mcu.PrecF32, cfg); err != nil {
		t.Fatal(err)
	}
	if want := 1 + harness.DefaultMaxHostReps; p.solves != want {
		t.Errorf("host solves = %d, want %d", p.solves, want)
	}
}

// Negative MaxHostReps means uncapped: every modeled rep runs on the
// host, as it would on the device.
func TestMaxHostRepsNegativeUncaps(t *testing.T) {
	p := &solveCounter{vvadd: vvadd{n: 64}}
	cfg := harness.DefaultConfig()
	cfg.Reps = 500
	cfg.MaxHostReps = -1
	if _, err := harness.Run(p, mcu.M4, mcu.PrecF32, cfg); err != nil {
		t.Fatal(err)
	}
	if want := cfg.Warmup + 500; p.solves != want {
		t.Errorf("host solves = %d, want %d", p.solves, want)
	}
}

// autoReps runs a tiny vvadd with the given auto-rep cap and returns the
// rep count the MinROITimeS auto-scaler settled on.
func autoReps(t *testing.T, maxAuto int) int {
	t.Helper()
	cfg := harness.DefaultConfig()
	cfg.Reps = 0           // auto
	cfg.MinROITimeS = 0.05 // wide ROI window: uncapped demand far exceeds the ceiling
	cfg.MaxAutoReps = maxAuto
	res, err := harness.Run(&vvadd{n: 16}, mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Measured.Reps
}

// A 16-element vvadd finishes in well under a microsecond of modeled
// time, so filling the 2 ms ROI window would demand far more than the
// default ceiling — the auto-scaler must clamp to DefaultMaxAutoReps.
func TestMaxAutoRepsDefaultCap(t *testing.T) {
	if got := autoReps(t, 0); got != harness.DefaultMaxAutoReps {
		t.Errorf("auto reps = %d, want default cap %d", got, harness.DefaultMaxAutoReps)
	}
}

func TestMaxAutoRepsCustomCap(t *testing.T) {
	if got := autoReps(t, 50); got != 50 {
		t.Errorf("auto reps = %d, want custom cap 50", got)
	}
}

// Negative MaxAutoReps removes the ceiling entirely.
func TestMaxAutoRepsNegativeUncaps(t *testing.T) {
	if got := autoReps(t, -1); got <= harness.DefaultMaxAutoReps {
		t.Errorf("auto reps = %d, want above the default cap", got)
	}
}

// Explicit rep counts are a user decision; the auto-rep ceiling must not
// touch them.
func TestMaxAutoRepsIgnoredForExplicitReps(t *testing.T) {
	cfg := harness.DefaultConfig()
	cfg.Reps = 2 * harness.DefaultMaxAutoReps
	cfg.MaxAutoReps = 50
	res, err := harness.Run(&vvadd{n: 16}, mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Reps != cfg.Reps {
		t.Errorf("reps = %d, want explicit %d", res.Measured.Reps, cfg.Reps)
	}
}
