package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/mcu"
)

func TestResultsCSVRoundTrip(t *testing.T) {
	p := &vvadd{n: 128}
	var results []harness.Result
	for _, arch := range []mcu.Arch{mcu.M4, mcu.M33} {
		res, err := harness.Run(p, arch, mcu.PrecF32, harness.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	var buf bytes.Buffer
	if err := harness.WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := harness.ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Kernel != "vvadd" {
			t.Errorf("row %d kernel = %q", i, row.Kernel)
		}
		if !row.Valid {
			t.Errorf("row %d not valid", i)
		}
		if row.LatencyUs <= 0 || row.EnergyUJ <= 0 {
			t.Errorf("row %d non-positive metrics", i)
		}
	}
	if rows[0].Arch != "M4" || rows[1].Arch != "M33" {
		t.Errorf("arch columns wrong: %s, %s", rows[0].Arch, rows[1].Arch)
	}
}

func TestReadResultsCSVRejectsGarbage(t *testing.T) {
	if _, err := harness.ReadResultsCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
	if _, err := harness.ReadResultsCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("wrong header accepted")
	}
}
