package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/mcu"
)

func TestResultsCSVRoundTrip(t *testing.T) {
	p := &vvadd{n: 128}
	var results []harness.Result
	for _, arch := range []mcu.Arch{mcu.M4, mcu.M33} {
		res, err := harness.Run(p, arch, mcu.PrecF32, harness.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	var buf bytes.Buffer
	if err := harness.WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := harness.ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Kernel != "vvadd" {
			t.Errorf("row %d kernel = %q", i, row.Kernel)
		}
		if !row.Valid {
			t.Errorf("row %d not valid", i)
		}
		if row.LatencyUs <= 0 || row.EnergyUJ <= 0 {
			t.Errorf("row %d non-positive metrics", i)
		}
	}
	if rows[0].Arch != "M4" || rows[1].Arch != "M33" {
		t.Errorf("arch columns wrong: %s, %s", rows[0].Arch, rows[1].Arch)
	}
}

func TestReadResultsCSVRejectsGarbage(t *testing.T) {
	if _, err := harness.ReadResultsCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
	if _, err := harness.ReadResultsCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("wrong header accepted")
	}
}

// TestReadResultsCSVTolerance: hand-edited and exporter-mangled logs —
// CRLF endings, comment lines, blank lines — must parse to the same
// rows as the pristine file.
func TestReadResultsCSVTolerance(t *testing.T) {
	p := &vvadd{n: 128}
	res, err := harness.Run(p, mcu.M4, mcu.PrecF32, harness.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteResultsCSV(&buf, []harness.Result{res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	messy := strings.Join([]string{
		"# measurement log, rig bench-3",
		lines[0],
		"",
		lines[1],
		"# trailing note",
		"",
	}, "\r\n")
	rows, err := harness.ReadResultsCSV(strings.NewReader(messy))
	if err != nil {
		t.Fatalf("messy-but-legal log rejected: %v", err)
	}
	if len(rows) != 1 || rows[0].Kernel != "vvadd" || rows[0].Arch != "M4" {
		t.Fatalf("messy parse lost the row: %+v", rows)
	}
}

// TestReadResultsCSVEmptyLog: a header with no data rows is a valid,
// empty log — not nil, not an error.
func TestReadResultsCSVEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := harness.WriteResultsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := harness.ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rows == nil || len(rows) != 0 {
		t.Fatalf("rows = %#v, want empty non-nil slice", rows)
	}
}

// TestReadResultsCSVErrorNamesLineAndColumn: a malformed value must
// fail with the line number, the column name, and the offending value —
// the difference between a fixable log and a mystery.
func TestReadResultsCSVErrorNamesLineAndColumn(t *testing.T) {
	p := &vvadd{n: 128}
	res, err := harness.Run(p, mcu.M4, mcu.PrecF32, harness.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteResultsCSV(&buf, []harness.Result{res, res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	fields := strings.Split(lines[2], ",")
	fields[10] = "plenty" // energy_uj
	lines[2] = strings.Join(fields, ",")
	_, err = harness.ReadResultsCSV(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err == nil {
		t.Fatal("corrupt row accepted")
	}
	for _, want := range []string{"line 3", "energy_uj", "plenty"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Wrong field count, same contract.
	_, err = harness.ReadResultsCSV(strings.NewReader(lines[0] + "\nvvadd,M4,f32\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("short-row error does not carry the line: %v", err)
	}
}
