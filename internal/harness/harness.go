// Package harness is the evaluation framework around the kernels: the
// EntoProblem-style Problem interface, the driving Runner (repetitions,
// warm-up, cache configuration), the simulated GPIO region-of-interest
// pins, the synthesized inline-current trace, and the analyzer that
// recovers latency, energy, and peak power from trace + GPIO events —
// the software equivalent of the paper's Saleae Logic 2 + STLINK-V3PWR
// setup (see DESIGN.md for the substitution).
package harness

import (
	"context"
	"fmt"

	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Harness-level observability counters (docs/observability.md).
var (
	// ctrRuns counts complete measurement runs.
	ctrRuns = obs.NewCounter(obs.CounterHarnessRuns)
	// ctrHostReps counts ROI Solve invocations the host actually
	// executed — the profiled rep plus the validation reps — as opposed
	// to the analytically scaled rep count the trace reports.
	ctrHostReps = obs.NewCounter(obs.CounterHarnessHostReps)
)

// Problem mirrors the paper's EntoProblem interface: how inputs are
// synthesized or loaded, how the kernel is invoked, and how results are
// validated.
type Problem interface {
	// Name is the suite kernel name.
	Name() string
	// Setup synthesizes or loads the problem inputs (outside the ROI).
	Setup() error
	// Solve runs the kernel once — the measured region of interest.
	Solve()
	// Validate checks the most recent Solve's result.
	Validate() error
}

// DatasetProvider is the optional metadata hook of the paper's
// RequiresDataset flag.
type DatasetProvider interface {
	Dataset() string
}

// Config drives one measurement run (the harness rows of Table II).
type Config struct {
	Reps        int  // kernel invocations inside the ROI (0 = auto)
	Warmup      int  // unprofiled invocations before the ROI
	CacheOn     bool // I/D cache configuration
	Verbosity   int
	MinROITimeS float64 // auto-rep target so the 100 kHz probe sees the ROI
	// MaxHostReps caps how many ROI reps the simulation host actually
	// executes. On hardware every rep runs; here the kernels are
	// deterministic per Solve, the profiler captures one representative
	// invocation, and the trace synthesizer scales to the full rep
	// count analytically — so executing more than a handful of host
	// reps only burns wall-clock without changing any measurement. The
	// extra capped reps exist purely so Validate sees a multiply-solved
	// problem, as it would on the device. 0 means the default
	// (DefaultMaxHostReps); negative means uncapped, i.e. execute every
	// rep on the host like real hardware would.
	MaxHostReps int
	// MaxAutoReps caps the rep count the MinROITimeS auto-scaler may
	// choose (Reps <= 0). Very fast kernels on slow modeled cores would
	// otherwise demand millions of reps to fill the ROI window, which
	// distorts the modeled energy totals without improving the probe's
	// view. 0 means the default (DefaultMaxAutoReps); negative means
	// uncapped. Explicit Reps values are never clamped.
	MaxAutoReps int
}

// DefaultMaxHostReps is the default host-side ROI execution cap: the
// profiled invocation plus two validation reps.
const DefaultMaxHostReps = 3

// DefaultMaxAutoReps is the default ceiling on auto-scaled reps: enough
// for the 100 kHz probe to see hundreds of samples of even the fastest
// kernel, matching the artifact's harness limit.
const DefaultMaxAutoReps = 10000

// DefaultConfig mirrors the artifact's benchmark defaults.
func DefaultConfig() Config {
	return Config{Reps: 0, Warmup: 1, CacheOn: true, MinROITimeS: 2e-3, MaxHostReps: DefaultMaxHostReps}
}

// GPIO pin assignments, as in the measurement setup: a trigger pin
// starts the power recording, a latency pin brackets the ROI.
const (
	PinTrigger = 0
	PinLatency = 1
)

// GPIOEvent is one logic-analyzer edge.
type GPIOEvent struct {
	Pin    int
	Rising bool
	TimeS  float64
}

// Measurement is what the analyzer recovers from trace + events.
type Measurement struct {
	LatencyS   float64 // per-rep
	EnergyJ    float64 // per-rep
	AvgPowerW  float64
	PeakPowerW float64
	Reps       int
}

// Result is the complete record of one harness run.
type Result struct {
	Kernel    string
	Arch      mcu.Arch
	Precision mcu.Precision
	CacheOn   bool
	Counts    profile.Counts // per-rep operation counts
	Model     mcu.Estimate   // analytic model output
	Measured  Measurement    // measurement-backend output
	Source    string         // provenance of Measured: SourceModeled or SourceMeasured
	Valid     bool
	ValidErr  error
}

// Run executes the full measurement flow for one problem on one core:
// setup → warm-up → ROI (profiled reps) → model → trace synthesis →
// trace analysis → validation.
func Run(p Problem, arch mcu.Arch, prec mcu.Precision, cfg Config) (Result, error) {
	return RunContext(context.Background(), p, arch, prec, cfg)
}

// RunContext is Run under a context: the flow checks for cancellation
// at every phase boundary (after setup, between warm-up and validation
// Solves, before the profiled ROI) and abandons the run with ctx.Err()
// wrapped in the returned error. Cancellation is cooperative — a Solve
// that never returns must be cut off by the sweep-level watchdog
// (core.SweepOptions.CellTimeout), not by the context.
func RunContext(ctx context.Context, p Problem, arch mcu.Arch, prec mcu.Precision, cfg Config) (Result, error) {
	pp, err := PrepareContext(ctx, p, arch, prec, cfg)
	if err != nil {
		return Result{Kernel: p.Name(), Arch: arch, Precision: prec, CacheOn: cfg.CacheOn}, err
	}
	return pp.MeasureOn(arch, prec, cfg)
}

// Prepared is the kernel-execution half of a measurement, detached from
// any particular core: the per-rep operation counts captured by one
// profiled Solve plus the validation verdict. Counts and validity are
// arch-independent — the profiler counts the same deterministic Solve
// whichever core is modeled — so one Prepared serves every (arch,
// cache) cell of a kernel through MeasureOn, which is pure arithmetic.
// The characterization sweep builds on exactly this split to run each
// kernel's problem once instead of once per cell.
type Prepared struct {
	name   string
	counts profile.Counts
	valid  bool
	validE error
}

// Prepare is PrepareContext without cancellation.
func Prepare(p Problem, refArch mcu.Arch, prec mcu.Precision, cfg Config) (*Prepared, error) {
	return PrepareContext(context.Background(), p, refArch, prec, cfg)
}

// PrepareContext executes the kernel-side phases of a measurement run —
// setup, warm-up, the profiled ROI invocation, and the validation reps —
// and returns the arch-independent Prepared half. refArch and cfg shape
// only the validation-rep schedule (how many extra host Solves run
// before Validate), which mirrors what a full RunContext on refArch
// would execute; they leave counts untouched. Cancellation follows the
// RunContext contract: cooperative checks at every phase boundary.
func PrepareContext(ctx context.Context, p Problem, refArch mcu.Arch, prec mcu.Precision, cfg Config) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", p.Name(), err)
	}
	if err := p.Setup(); err != nil {
		return nil, fmt.Errorf("harness: setup %s: %w", p.Name(), err)
	}
	for i := 0; i < cfg.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", p.Name(), err)
		}
		p.Solve()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", p.Name(), err)
	}

	// One profiled invocation determines the op counts and, through the
	// core model, the per-rep latency used to auto-scale reps.
	pp := &Prepared{name: p.Name()}
	pp.counts = profile.Collect(p.Solve)

	// Execute the remaining reps for validation parity (the profiler
	// already captured a representative invocation; kernels are
	// deterministic per Solve). Config.MaxHostReps bounds the host-side
	// wall-clock cost; see its doc for why that is sound here.
	model := refArch.Estimate(pp.counts, prec, cfg.CacheOn)
	extra := hostExtra(cfg, autoReps(cfg, model.LatencyS))
	for i := 0; i < extra; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", p.Name(), err)
		}
		p.Solve()
	}
	ctrHostReps.Add(uint64(1 + extra)) // the profiled rep + validation reps

	if err := p.Validate(); err != nil {
		pp.valid = false
		pp.validE = err
	} else {
		pp.valid = true
	}
	return pp, nil
}

// RehydratePrepared reconstructs a Prepared from the arch-independent
// values a prior prepare captured: the problem name (whose length seeds
// trace synthesis, so it must be the name the original run used, not a
// descriptor alias), the profiled per-rep counts, and the validation
// verdict. MeasureOn is a pure function of exactly these, so a
// rehydrated Prepared yields byte-identical measurements on any core
// without executing a single kernel rep — how the sweep's persistent
// cell cache measures new (arch, cache) cells of an already-seen
// kernel.
func RehydratePrepared(name string, counts profile.Counts, valid bool, validE error) *Prepared {
	return &Prepared{name: name, counts: counts, valid: valid, validE: validE}
}

// Counts returns the per-rep operation mix of the profiled Solve.
func (pp *Prepared) Counts() profile.Counts { return pp.counts }

// Valid returns the validation verdict taken after the validation reps.
func (pp *Prepared) Valid() (bool, error) { return pp.valid, pp.validE }

// MeasureOn models the prepared kernel on one core: analytic estimate,
// rep auto-scaling, trace synthesis, and trace analysis. It executes no
// kernel code — everything is a pure function of the prepared counts —
// so one Prepared can be measured on any number of (arch, cache)
// configurations, concurrently if desired.
func (pp *Prepared) MeasureOn(arch mcu.Arch, prec mcu.Precision, cfg Config) (Result, error) {
	return pp.MeasureOnBackend(arch, prec, cfg, nil)
}

// MeasureOnBackend is MeasureOn with an explicit measurement backend:
// the analytic estimate and rep auto-scaling happen here, then the
// backend turns the resolved request into a Measurement. A nil backend
// means the reference simulator (byte-identical to MeasureOn), whose
// cells carry no Source label — the classic path. A non-nil backend
// stamps its provenance label on the Result.
func (pp *Prepared) MeasureOnBackend(arch mcu.Arch, prec mcu.Precision, cfg Config, be Backend) (Result, error) {
	ctrRuns.Inc()
	res := Result{Kernel: pp.name, Arch: arch, Precision: prec, CacheOn: cfg.CacheOn,
		Counts: pp.counts}
	res.Model = arch.Estimate(pp.counts, prec, cfg.CacheOn)
	reps := autoReps(cfg, res.Model.LatencyS)

	req := MeasureRequest{
		Kernel: pp.name, Arch: arch, Prec: prec, CacheOn: cfg.CacheOn,
		Reps: reps, Model: res.Model, Seed: int64(len(pp.name)),
	}
	var meas Measurement
	var err error
	if be == nil {
		meas, err = SimBackend{}.Measure(req)
	} else {
		meas, err = be.Measure(req)
		res.Source = be.Source()
	}
	if err != nil {
		return res, err
	}
	res.Measured = meas
	res.Valid, res.ValidErr = pp.valid, pp.validE
	return res, nil
}

// autoReps resolves the ROI rep count: an explicit cfg.Reps wins,
// otherwise enough reps to fill MinROITimeS at the modeled latency,
// clamped by MaxAutoReps.
func autoReps(cfg Config, latencyS float64) int {
	if cfg.Reps > 0 {
		return cfg.Reps
	}
	minT := cfg.MinROITimeS
	if minT <= 0 {
		minT = 2e-3
	}
	reps := int(minT/latencyS) + 1
	maxAuto := cfg.MaxAutoReps
	if maxAuto == 0 {
		maxAuto = DefaultMaxAutoReps
	}
	if maxAuto > 0 && reps > maxAuto {
		reps = maxAuto
	}
	return reps
}

// hostExtra resolves how many validation Solves beyond the profiled one
// the host executes for a run of reps repetitions (Config.MaxHostReps).
func hostExtra(cfg Config, reps int) int {
	maxHost := cfg.MaxHostReps
	if maxHost == 0 {
		maxHost = DefaultMaxHostReps
	}
	extra := reps - 1
	if maxHost > 0 && extra > maxHost-1 {
		extra = maxHost - 1
	}
	return extra
}
