package harness_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBuildConfig(t *testing.T) {
	path := writeTemp(t, `{"Reps": 50, "Warmup": 3, "CacheOn": false, "Verbosity": 2, "TotalRuns": 5}`)
	bc, err := harness.LoadBuildConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Reps != 50 || bc.Warmup != 3 || bc.CacheOn || bc.Verbosity != 2 || bc.TotalRuns != 5 {
		t.Fatalf("parsed %+v", bc)
	}
	cfg := bc.Config()
	if cfg.Reps != 50 || cfg.Warmup != 3 || cfg.CacheOn {
		t.Fatalf("converted %+v", cfg)
	}
}

func TestLoadBuildConfigDefaults(t *testing.T) {
	path := writeTemp(t, `{"Reps": 10}`)
	bc, err := harness.LoadBuildConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bc.CacheOn {
		t.Error("CacheOn default should be true")
	}
	if bc.TotalRuns != 1 {
		t.Errorf("TotalRuns = %d, want 1", bc.TotalRuns)
	}
}

func TestLoadBuildConfigRejectsTypos(t *testing.T) {
	path := writeTemp(t, `{"Repz": 10}`)
	if _, err := harness.LoadBuildConfig(path); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestLoadBuildConfigMissingFile(t *testing.T) {
	if _, err := harness.LoadBuildConfig("/nonexistent/bench.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMinROIOverride(t *testing.T) {
	path := writeTemp(t, `{"MinROIUs": 5000}`)
	bc, err := harness.LoadBuildConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := bc.Config().MinROITimeS; got != 5e-3 {
		t.Fatalf("MinROITimeS = %g, want 5e-3", got)
	}
}
