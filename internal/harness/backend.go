package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mcu"
)

// A Backend is one measurement rig: it turns a prepared kernel's
// modeled cost (plus the run configuration) into a Measurement the
// same way the paper swaps native, STM32, and gem5 targets behind one
// harness. The reference SimBackend synthesizes the current trace and
// GPIO events; a TraceBackend replays externally captured ones. Both
// feed the identical Analyze alignment/integration pipeline, so the
// seam changes where the waveform comes from, never how it is read.

// Provenance labels a Measurement carries through reports: a modeled
// cell came from the synthetic simulator, a measured cell from an
// externally captured trace.
const (
	SourceModeled  = "modeled"
	SourceMeasured = "measured"
)

// MeasureRequest is the complete, arch-resolved input of one backend
// measurement: everything MeasureOn knows when it hands off to the rig.
type MeasureRequest struct {
	Kernel  string        // suite kernel name
	Arch    mcu.Arch      // the core being characterized
	Prec    mcu.Precision // arithmetic precision of this run
	CacheOn bool          // I/D cache configuration
	Reps    int           // resolved ROI rep count (autoReps already applied)
	Model   mcu.Estimate  // analytic cost-model output for this cell
	Seed    int64         // deterministic trace-synthesis seed
}

// Backend produces a Measurement for one cell. Implementations must be
// safe for concurrent Measure calls: the sweep fans cells across a
// worker pool.
type Backend interface {
	// Name is the registry identity ("sim", "trace", ...).
	Name() string
	// Source is the provenance label of every cell this backend
	// measures: SourceModeled or SourceMeasured.
	Source() string
	// Fingerprint digests the backend's measurement data (e.g. the
	// loaded trace captures) so cache keys distinguish two backends of
	// the same name carrying different data. The empty fingerprint
	// means the backend is a pure function of the request — true of
	// the simulator — and contributes only its name to cache keys.
	Fingerprint() string
	// Measure turns one cell's request into a Measurement.
	Measure(req MeasureRequest) (Measurement, error)
}

// PartialBackend is a Backend that covers only some cells — a trace
// file rarely captures the whole grid. The sweep asks Covers before
// each cell and falls back to the simulator for the rest, which is how
// one report mixes measured and modeled cells.
type PartialBackend interface {
	Backend
	// Covers reports whether the backend holds measurement data for
	// the (kernel, board, cache) cell.
	Covers(kernel, archName string, cacheOn bool) bool
}

// SimBackend is the reference Backend: the synthetic measurement rig
// the repo has always used, now behind the seam. It renders the
// deterministic current trace and GPIO event log for the request and
// recovers the Measurement through Analyze — a pure function of the
// request, so its Fingerprint is empty and its cells carry no cache-key
// salt (classic sweeps stay byte- and key-identical).
type SimBackend struct{}

// Name implements Backend.
func (SimBackend) Name() string { return "sim" }

// Source implements Backend: every simulated cell is modeled.
func (SimBackend) Source() string { return SourceModeled }

// Fingerprint implements Backend: the simulator carries no data.
func (SimBackend) Fingerprint() string { return "" }

// Measure implements Backend: synthesize the trace + events, then run
// the shared analysis pipeline.
func (SimBackend) Measure(req MeasureRequest) (Measurement, error) {
	trace, events := SynthesizeTrace(req.Model, req.Arch, req.CacheOn, req.Reps, req.Seed)
	return Analyze(trace, events, req.Reps)
}

// The process-wide backend registry, mirroring the board and kernel
// registries: "sim" is built in, trace backends register at load time.
var (
	backendMu  sync.RWMutex
	backends   = map[string]Backend{"sim": SimBackend{}}
	backendOrd = []string{"sim"}
)

// RegisterBackend adds a measurement backend to the registry under its
// Name, resolved case-insensitively like boards and kernels. A nil
// backend, an empty name, an unknown Source label, or a duplicate name
// is rejected.
func RegisterBackend(be Backend) error {
	if be == nil {
		return fmt.Errorf("harness: RegisterBackend: nil backend")
	}
	name := strings.ToLower(strings.TrimSpace(be.Name()))
	if name == "" {
		return fmt.Errorf("harness: RegisterBackend: empty backend name")
	}
	if s := be.Source(); s != SourceModeled && s != SourceMeasured {
		return fmt.Errorf("harness: RegisterBackend: %s: source %q is neither %q nor %q",
			name, s, SourceModeled, SourceMeasured)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		return fmt.Errorf("harness: RegisterBackend: %q already registered", name)
	}
	backends[name] = be
	backendOrd = append(backendOrd, name)
	return nil
}

// BackendByName resolves a registered backend case-insensitively.
func BackendByName(name string) (Backend, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	be, ok := backends[strings.ToLower(strings.TrimSpace(name))]
	return be, ok
}

// BackendNames lists the registered backends, sorted, for error
// vocabulary and the CLI.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := append([]string(nil), backendOrd...)
	sort.Strings(out)
	return out
}

// BackendSalt is the cache-key contribution of a backend selection: the
// empty string for the classic path (nil, or the canonical simulator),
// otherwise the backend name plus its data fingerprint. Modeled and
// measured cells therefore never collide in the cell store or the keyed
// sweep cache, while classic keys — and every warm cache built before
// the seam existed — stay exactly as they were.
func BackendSalt(be Backend) string {
	if be == nil {
		return ""
	}
	if _, isSim := be.(SimBackend); isSim {
		return ""
	}
	if fp := be.Fingerprint(); fp != "" {
		return be.Name() + "+" + fp
	}
	return be.Name()
}
