package harness_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/mcu"
)

// fakeBackend is a minimal Backend for registry and salt tests.
type fakeBackend struct {
	name   string
	source string
	fp     string
}

func (f fakeBackend) Name() string        { return f.name }
func (f fakeBackend) Source() string      { return f.source }
func (f fakeBackend) Fingerprint() string { return f.fp }
func (f fakeBackend) Measure(req harness.MeasureRequest) (harness.Measurement, error) {
	return harness.SimBackend{}.Measure(req)
}

func TestBackendRegistry(t *testing.T) {
	be, ok := harness.BackendByName("sim")
	if !ok {
		t.Fatal("built-in sim backend not registered")
	}
	if be.Name() != "sim" || be.Source() != harness.SourceModeled {
		t.Fatalf("sim backend identity = %s/%s", be.Name(), be.Source())
	}
	if _, ok := harness.BackendByName("SIM"); !ok {
		t.Error("backend lookup is not case-insensitive")
	}
	if _, ok := harness.BackendByName("no-such-backend"); ok {
		t.Error("unknown backend resolved")
	}

	if err := harness.RegisterBackend(nil); err == nil {
		t.Error("nil backend registered")
	}
	if err := harness.RegisterBackend(fakeBackend{name: "", source: harness.SourceMeasured}); err == nil {
		t.Error("empty-name backend registered")
	}
	if err := harness.RegisterBackend(fakeBackend{name: "lab", source: "vibes"}); err == nil {
		t.Error("backend with unknown source label registered")
	}
	if err := harness.RegisterBackend(fakeBackend{name: "sim", source: harness.SourceModeled}); err == nil {
		t.Error("duplicate of the built-in sim registered")
	}

	if err := harness.RegisterBackend(fakeBackend{name: "Lab-Registry-Test", source: harness.SourceMeasured}); err != nil {
		t.Fatalf("valid backend rejected: %v", err)
	}
	if _, ok := harness.BackendByName("lab-registry-test"); !ok {
		t.Error("registered backend not resolvable by lowercase name")
	}
	if err := harness.RegisterBackend(fakeBackend{name: "lab-registry-test", source: harness.SourceMeasured}); err == nil {
		t.Error("duplicate registration accepted")
	}
	names := harness.BackendNames()
	found := false
	for i, n := range names {
		if n == "lab-registry-test" {
			found = true
		}
		if i > 0 && names[i-1] > n {
			t.Errorf("BackendNames not sorted: %v", names)
		}
	}
	if !found {
		t.Errorf("BackendNames missing registered backend: %v", names)
	}
}

func TestBackendSalt(t *testing.T) {
	if s := harness.BackendSalt(nil); s != "" {
		t.Errorf("nil backend salt = %q, want empty", s)
	}
	// The canonical sim backend IS the classic path: no salt, so
	// explicit -backend sim shares every cache entry with plain sweeps.
	if s := harness.BackendSalt(harness.SimBackend{}); s != "" {
		t.Errorf("sim backend salt = %q, want empty", s)
	}
	if s := harness.BackendSalt(fakeBackend{name: "lab", source: harness.SourceMeasured}); s != "lab" {
		t.Errorf("salt = %q, want %q", s, "lab")
	}
	if s := harness.BackendSalt(fakeBackend{name: "lab", source: harness.SourceMeasured, fp: "abc"}); s != "lab+abc" {
		t.Errorf("salt with fingerprint = %q, want %q", s, "lab+abc")
	}
}

// TestMeasureOnBackendEquivalence pins the seam's core invariant: a nil
// backend and the explicit SimBackend both produce the exact
// measurement the classic MeasureOn path produces — only the
// provenance label differs.
func TestMeasureOnBackendEquivalence(t *testing.T) {
	pp, err := harness.Prepare(&vvadd{n: 256}, mcu.M4, mcu.PrecF32, harness.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	classic, err := pp.MeasureOn(mcu.M4, mcu.PrecF32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if classic.Source != "" {
		t.Errorf("classic result carries source %q, want empty", classic.Source)
	}
	viaNil, err := pp.MeasureOnBackend(mcu.M4, mcu.PrecF32, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaNil.Measured != classic.Measured || viaNil.Source != "" {
		t.Errorf("nil-backend measurement diverges from MeasureOn: %+v vs %+v", viaNil.Measured, classic.Measured)
	}
	viaSim, err := pp.MeasureOnBackend(mcu.M4, mcu.PrecF32, cfg, harness.SimBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if viaSim.Measured != classic.Measured {
		t.Errorf("sim-backend measurement diverges from MeasureOn: %+v vs %+v", viaSim.Measured, classic.Measured)
	}
	if viaSim.Source != harness.SourceModeled {
		t.Errorf("sim-backend source = %q, want %q", viaSim.Source, harness.SourceModeled)
	}
}

func TestRegisterBackendErrorNamesTheProblem(t *testing.T) {
	err := harness.RegisterBackend(fakeBackend{name: "bad-source-probe", source: "neither"})
	if err == nil || !strings.Contains(err.Error(), "neither") {
		t.Errorf("bad-source error does not name the label: %v", err)
	}
}
