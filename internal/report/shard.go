package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
)

// Distributed sweeps: N processes each run a deterministic 1/N slice
// of the job grid (core.SweepOptions ShardIndex/ShardCount), emit a
// shard bundle, and MergeShards joins the bundles back into one
// Characterization whose v1 JSON export is byte-identical to a
// single-process sweep of the same query. The shard bundle is the wire
// format between those processes: it carries every owned cell's full
// result — including the board definition, so the merger needs no
// registry state — plus the per-kernel record-level fields owned by
// whichever shard ran the static job and the reference cell.
//
// Safety: a bundle is only ever written for a fully healthy shard
// (RunShard refuses partial runs), every bundle names the sweep's
// content key, and the merge verifies that all bundles share one key
// and that together they cover every job slot exactly once — so a
// stale, duplicated, or missing shard is a loud error, never silent
// data corruption.

// ShardSchema and ShardVersion identify the shard bundle format.
const (
	ShardSchema  = "entobench.shard"
	ShardVersion = 1
)

// ShardReport is one shard's bundle: its owned slice of the sweep.
type ShardReport struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// SweepKey is the content key of the whole query (report.SweepKey);
	// only bundles with equal keys merge.
	SweepKey string `json:"sweep_key"`
	// Shard/Of locate this bundle in the partition: shard Shard of Of,
	// 1-based.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Kernels lists every kernel of the query, in suite order — also
	// the kernels this shard owns nothing of, so the merge can verify
	// alignment structurally.
	Kernels []ShardKernel `json:"kernels"`
}

// ShardKernel is one kernel's slice of a shard: the descriptor (enough
// to rebuild the Spec for rendering; factories are irrelevant to an
// export), the grid width, and whatever this shard owns of it.
type ShardKernel struct {
	Name      string `json:"name"`
	Stage     string `json:"stage"`
	Category  string `json:"category"`
	Dataset   string `json:"dataset"`
	Precision int    `json:"precision"`
	FLOPs     int    `json:"claimed_flops,omitempty"`
	M7Only    bool   `json:"m7_only,omitempty"`
	MinSRAMKB int    `json:"min_sram_kb,omitempty"`
	// TotalCells is the kernel's full grid width (fitting archs × cache
	// settings) — identical across shards, verified by the merge.
	TotalCells int `json:"total_cells"`
	// Static is present iff this shard owned the kernel's static-proxy
	// job.
	Static *core.StaticCellResult `json:"static,omitempty"`
	// Ref is present iff this shard owned the kernel's reference cell
	// (cell 0), which supplies the record-level dynamic mix and
	// validation verdict.
	Ref *ShardRef `json:"ref,omitempty"`
	// Cells are the measurement cells this shard owns, by grid index.
	Cells []ShardCell `json:"cells"`
}

// ShardRef carries the record-level fields the reference cell owns.
type ShardRef struct {
	Counts   JSONCounts `json:"dynamic"`
	Valid    bool       `json:"valid"`
	ValidErr string     `json:"valid_err,omitempty"`
}

// profileCounts converts the wire counts back to the profiler type.
func profileCounts(c JSONCounts) profile.Counts {
	return profile.Counts{F: c.F, I: c.I, M: c.M, B: c.B}
}

// ShardCell is one owned measurement cell, self-contained: the full
// board definition rides along (with its provenance Source, which
// Arch's own JSON encoding deliberately omits) so the merger rebuilds
// the exact ArchRun without any registry lookups.
type ShardCell struct {
	Index   int      `json:"index"`
	CacheOn bool     `json:"cache_on"`
	Arch    mcu.Arch `json:"arch"`
	Source  string   `json:"source,omitempty"`
	// Backend/MeasSource carry the cell's measurement-backend provenance
	// (core.ArchRun Backend/Source). The `source` tag above is taken by
	// the board's definition provenance, hence `meas_source`. Both are
	// empty for classic sweeps, keeping pre-seam bundles byte-identical.
	Backend    string              `json:"backend,omitempty"`
	MeasSource string              `json:"meas_source,omitempty"`
	Model      mcu.Estimate        `json:"model"`
	Meas       harness.Measurement `json:"meas"`
}

// RunShard executes one shard of a sweep — opts.ShardIndex of
// opts.ShardCount — and returns its bundle. The run goes straight to
// the engine (a shard's records are partial by construction, so the
// in-memory sweep cache must not see them); a persistent cell cache in
// opts still applies. Any owned-job failure, timeout, or cancellation
// aborts the shard with an error and no bundle: merge inputs are
// healthy by construction.
func RunShard(specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions) (ShardReport, error) {
	if opts.ShardCount < 1 || opts.ShardIndex < 1 || opts.ShardIndex > opts.ShardCount {
		return ShardReport{}, fmt.Errorf("report: shard %d/%d is not a valid partition slot", opts.ShardIndex, opts.ShardCount)
	}
	recs, err := core.CharacterizeSuiteOpts(specs, archs, opts)
	if err != nil {
		return ShardReport{}, fmt.Errorf("report: shard %d/%d failed: %w", opts.ShardIndex, opts.ShardCount, err)
	}
	sr := ShardReport{
		Schema:   ShardSchema,
		Version:  ShardVersion,
		SweepKey: SweepKey(specs, archs, harness.DefaultConfig(), harness.BackendSalt(opts.Backend)),
		Shard:    opts.ShardIndex,
		Of:       opts.ShardCount,
		Kernels:  make([]ShardKernel, 0, len(recs)),
	}
	for _, r := range recs {
		k := ShardKernel{
			Name:       r.Spec.Name,
			Stage:      string(r.Spec.Stage),
			Category:   r.Spec.Category,
			Dataset:    r.Spec.Dataset,
			Precision:  int(r.Spec.Prec),
			FLOPs:      r.Spec.FLOPs,
			M7Only:     r.Spec.M7Only,
			MinSRAMKB:  r.Spec.MinSRAMKB,
			TotalCells: len(r.Cells),
			Cells:      []ShardCell{},
		}
		if r.StaticStatus == core.CellOK {
			k.Static = &core.StaticCellResult{Static: r.Static, Flash: r.Flash}
		}
		for i, cell := range r.Cells {
			if cell.Status != core.CellOK {
				continue // a foreign shard's slot (skipped, no error)
			}
			if i == 0 {
				ref := &ShardRef{
					Counts: JSONCounts{F: r.Dynamic.F, I: r.Dynamic.I, M: r.Dynamic.M, B: r.Dynamic.B},
					Valid:  r.Valid,
				}
				if r.ValidE != nil {
					ref.ValidErr = r.ValidE.Error()
				}
				k.Ref = ref
			}
			k.Cells = append(k.Cells, ShardCell{
				Index:      i,
				CacheOn:    cell.CacheOn,
				Arch:       cell.Arch,
				Source:     cell.Arch.Source,
				Backend:    cell.Backend,
				MeasSource: cell.Source,
				Model:      cell.Model,
				Meas:       cell.Meas,
			})
		}
		sr.Kernels = append(sr.Kernels, k)
	}
	return sr, nil
}

// WriteShardReport renders a shard bundle, indented, with a trailing
// newline (the same encoder discipline as the v1 export).
func WriteShardReport(w io.Writer, sr ShardReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sr)
}

// ReadShardReport parses and validates a shard bundle's envelope.
func ReadShardReport(r io.Reader) (ShardReport, error) {
	var sr ShardReport
	if err := json.NewDecoder(r).Decode(&sr); err != nil {
		return ShardReport{}, fmt.Errorf("report: parse shard bundle: %w", err)
	}
	if sr.Schema != ShardSchema {
		return ShardReport{}, fmt.Errorf("report: unknown shard schema %q (want %q)", sr.Schema, ShardSchema)
	}
	if sr.Version > ShardVersion {
		return ShardReport{}, fmt.Errorf("report: shard version %d is newer than this build supports (%d)", sr.Version, ShardVersion)
	}
	return sr, nil
}

// MergeShards joins a complete shard set back into one
// Characterization. It verifies that every bundle names the same sweep
// key, that the set is exactly shards 1..N of N, that the kernel lists
// align structurally, and that the union covers every job slot —
// static, reference, and each cell — exactly once. The rebuilt records
// render the same v1 JSON bytes as a single-process sweep of the
// query (the specs carry no factories, which the export never uses).
func MergeShards(shards []ShardReport) (Characterization, error) {
	if len(shards) == 0 {
		return Characterization{}, errors.New("report: merge: no shard bundles")
	}
	of := shards[0].Of
	key := shards[0].SweepKey
	if of != len(shards) {
		return Characterization{}, fmt.Errorf("report: merge: got %d bundles for a %d-way partition", len(shards), of)
	}
	seen := make(map[int]bool, of)
	for _, s := range shards {
		if s.SweepKey != key {
			return Characterization{}, fmt.Errorf("report: merge: shard %d/%d is from a different sweep (key %s != %s)", s.Shard, s.Of, s.SweepKey, key)
		}
		if s.Of != of {
			return Characterization{}, fmt.Errorf("report: merge: shard %d declares a %d-way partition, want %d-way", s.Shard, s.Of, of)
		}
		if s.Shard < 1 || s.Shard > of {
			return Characterization{}, fmt.Errorf("report: merge: shard index %d out of range 1..%d", s.Shard, of)
		}
		if seen[s.Shard] {
			return Characterization{}, fmt.Errorf("report: merge: shard %d/%d appears twice", s.Shard, of)
		}
		seen[s.Shard] = true
		if len(s.Kernels) != len(shards[0].Kernels) {
			return Characterization{}, fmt.Errorf("report: merge: shard %d lists %d kernels, shard %d lists %d", s.Shard, len(s.Kernels), shards[0].Shard, len(shards[0].Kernels))
		}
	}

	nk := len(shards[0].Kernels)
	recs := make([]core.Record, nk)
	cellSeen := make([][]bool, nk)
	staticSeen := make([]bool, nk)
	refSeen := make([]bool, nk)
	for i, k := range shards[0].Kernels {
		recs[i] = core.Record{
			Spec: core.Spec{
				Name:      k.Name,
				Stage:     core.Stage(k.Stage),
				Category:  k.Category,
				Dataset:   k.Dataset,
				Prec:      mcu.Precision(k.Precision),
				FLOPs:     k.FLOPs,
				M7Only:    k.M7Only,
				MinSRAMKB: k.MinSRAMKB,
			},
			Cells: make([]core.ArchRun, k.TotalCells),
		}
		cellSeen[i] = make([]bool, k.TotalCells)
	}

	for _, s := range shards {
		for i, k := range s.Kernels {
			ref := &shards[0].Kernels[i]
			if k.Name != ref.Name || k.TotalCells != ref.TotalCells {
				return Characterization{}, fmt.Errorf("report: merge: shard %d kernel %d is %q/%d cells, shard %d has %q/%d", s.Shard, i, k.Name, k.TotalCells, shards[0].Shard, ref.Name, ref.TotalCells)
			}
			rec := &recs[i]
			if k.Static != nil {
				if staticSeen[i] {
					return Characterization{}, fmt.Errorf("report: merge: kernel %s: static job owned by two shards", k.Name)
				}
				staticSeen[i] = true
				rec.Static, rec.Flash = k.Static.Static, k.Static.Flash
			}
			if k.Ref != nil {
				if refSeen[i] {
					return Characterization{}, fmt.Errorf("report: merge: kernel %s: reference cell owned by two shards", k.Name)
				}
				refSeen[i] = true
				rec.Dynamic = profileCounts(k.Ref.Counts)
				rec.Valid = k.Ref.Valid
				if k.Ref.ValidErr != "" {
					rec.ValidE = errors.New(k.Ref.ValidErr)
				}
			}
			for _, c := range k.Cells {
				if c.Index < 0 || c.Index >= k.TotalCells {
					return Characterization{}, fmt.Errorf("report: merge: kernel %s: cell index %d out of range 0..%d", k.Name, c.Index, k.TotalCells-1)
				}
				if cellSeen[i][c.Index] {
					return Characterization{}, fmt.Errorf("report: merge: kernel %s: cell %d owned by two shards", k.Name, c.Index)
				}
				cellSeen[i][c.Index] = true
				arch := c.Arch
				arch.Source = c.Source
				rec.Cells[c.Index] = core.ArchRun{
					Arch:    arch,
					CacheOn: c.CacheOn,
					Backend: c.Backend,
					Source:  c.MeasSource,
					Model:   c.Model,
					Meas:    c.Meas,
				}
			}
		}
	}

	for i, k := range shards[0].Kernels {
		if !staticSeen[i] {
			return Characterization{}, fmt.Errorf("report: merge: kernel %s: no shard owns the static job", k.Name)
		}
		if k.TotalCells > 0 && !refSeen[i] {
			return Characterization{}, fmt.Errorf("report: merge: kernel %s: no shard owns the reference cell", k.Name)
		}
		for idx, ok := range cellSeen[i] {
			if !ok {
				return Characterization{}, fmt.Errorf("report: merge: kernel %s: no shard owns cell %d", k.Name, idx)
			}
		}
	}
	return Characterization{Records: recs}, nil
}
