package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// CS3Row is one Table VIII row: the claimed static FLOP count against
// measured cycles and energy per update.
type CS3Row struct {
	Kernel     string
	FLOPs      int
	CyclesK    map[string]float64 // kcycles per arch
	EstEnergy  map[string]float64 // µJ predicted from FLOPs + datasheet power
	MeasEnergy map[string]float64 // µJ measured per update
}

// CS3Result is Case Study #3: is FLOP counting a good model?
type CS3Result struct {
	Rows []CS3Row
}

// RunCS3 measures the sensor-fusion and optimal-control kernels whose
// feasibility the literature justified with FLOP counts.
func RunCS3() (CS3Result, error) {
	kernels := []string{"fly-ekf (seq)", "fly-ekf (trunc)", "bee-ceekf", "fly-lqr", "fly-tiny-mpc"}
	var out CS3Result
	for _, name := range kernels {
		spec, ok := core.ByName(name)
		if !ok {
			return out, fmt.Errorf("report: unknown kernel %s", name)
		}
		row := CS3Row{
			Kernel: name, FLOPs: spec.FLOPs,
			CyclesK:    map[string]float64{},
			EstEnergy:  map[string]float64{},
			MeasEnergy: map[string]float64{},
		}
		for _, arch := range mcu.TableIVSet() {
			res, err := harness.Run(spec.Factory(), arch, spec.Prec, harness.DefaultConfig())
			if err != nil {
				return out, err
			}
			row.CyclesK[arch.Name] = res.Model.Cycles / 1e3
			row.MeasEnergy[arch.Name] = res.Measured.EnergyJ * 1e6
			// The FLOP-based estimate assumes one FLOP per cycle at the
			// datasheet's nominal active power — the idealized model the
			// case study interrogates. No memory traffic, no control
			// flow, no workload-dependent power.
			row.EstEnergy[arch.Name] = float64(spec.FLOPs) / arch.ClockHz * arch.NominalPowerW() * 1e6
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Row finds a kernel's record.
func (r CS3Result) Row(kernel string) (CS3Row, bool) {
	for _, row := range r.Rows {
		if row.Kernel == kernel {
			return row, true
		}
	}
	return CS3Row{}, false
}

// WriteTable8 renders the Table VIII analogue.
func (r CS3Result) WriteTable8(w io.Writer) {
	header(w, "TABLE VIII — FLOPs vs MEASURED CYCLES AND ENERGY PER UPDATE")
	tw := newTab(w)
	fmt.Fprintln(tw, "Kernel\tFLOPs\tcyc M4\tcyc M33\tcyc M7\tEst E M4\tEst E M33\tEst E M7\tMeas E M4\tMeas E M33\tMeas E M7")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%sk\t%sk\t%sk\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\n",
			row.Kernel, row.FLOPs,
			fmtSI(row.CyclesK["M4"]), fmtSI(row.CyclesK["M33"]), fmtSI(row.CyclesK["M7"]),
			row.EstEnergy["M4"], row.EstEnergy["M33"], row.EstEnergy["M7"],
			row.MeasEnergy["M4"], row.MeasEnergy["M33"], row.MeasEnergy["M7"])
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Estimated energy assumes 1 FLOP/cycle at nominal active power (datasheet")
	fmt.Fprintln(w, "method); measured energy is per fused update through the harness.")
}
