package report_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mat"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/report"
)

var updateFlag = flag.Bool("update", false, "regenerate golden files")

func updateGolden() bool { return *updateFlag }

// syntheticCharacterization builds a tiny fixed-value characterization
// that exercises every schema field: a plain kernel and one with the
// optional fields (m7_only, claimed_flops, error) populated.
func syntheticCharacterization() report.Characterization {
	arch := func(name string) mcu.Arch { return mcu.Arch{Name: name} }
	return report.Characterization{Records: []core.Record{
		{
			Spec: core.Spec{Name: "vvadd", Stage: core.Control, Category: "Example",
				Dataset: "synth-1k", Prec: mcu.PrecF32},
			Static:  profile.Counts{F: 12, I: 34, M: 56, B: 7},
			Flash:   1024,
			Dynamic: profile.Counts{F: 1200, I: 3400, M: 5600, B: 700},
			Valid:   true,
			Cells: []core.ArchRun{
				{
					Arch: arch("M4"), CacheOn: true,
					Model: mcu.Estimate{Cycles: 7014, LatencyS: 41.26e-6, EnergyJ: 5.213e-6,
						AvgPowerW: 0.1263, PeakPowerW: 0.1526},
					Meas: harness.Measurement{LatencyS: 41.26e-6, EnergyJ: 5.213e-6,
						AvgPowerW: 0.1263, PeakPowerW: 0.1526, Reps: 49},
				},
				{
					Arch: arch("M4"), CacheOn: false,
					Model: mcu.Estimate{Cycles: 7475, LatencyS: 43.97e-6, EnergyJ: 5.38e-6,
						AvgPowerW: 0.1224, PeakPowerW: 0.1464},
					Meas: harness.Measurement{LatencyS: 43.97e-6, EnergyJ: 5.38e-6,
						AvgPowerW: 0.1224, PeakPowerW: 0.1464, Reps: 46},
				},
			},
		},
		{
			Spec: core.Spec{Name: "sift", Stage: core.Perception, Category: "Feat. Extr.",
				Dataset: "midd-stereo", Prec: mcu.PrecF32, FLOPs: 250000, M7Only: true},
			Static:  profile.Counts{F: 900, I: 800, M: 700, B: 600},
			Flash:   65536,
			Dynamic: profile.Counts{F: 9e6, I: 8e6, M: 7e6, B: 6e6},
			Valid:   false,
			ValidE:  errors.New("descriptor mismatch"),
			Cells: []core.ArchRun{{
				Arch: arch("M7"), CacheOn: true,
				Model: mcu.Estimate{Cycles: 4534, LatencyS: 16.19e-6, EnergyJ: 2.574e-6,
					AvgPowerW: 0.159, PeakPowerW: 0.2154},
				Meas: harness.Measurement{LatencyS: 16.19e-6, EnergyJ: 2.574e-6,
					AvgPowerW: 0.159, PeakPowerW: 0.2154, Reps: 124},
			}},
		},
	}}
}

const goldenPath = "testdata/json_schema_v1.golden.json"

// TestJSONSchemaGolden pins the exported field set — names, order,
// omitempty behaviour — against a checked-in golden file. If this test
// fails you changed the schema: for a breaking change (rename, removal,
// unit change) bump report.JSONVersion; for an additive change keep the
// version. Either way regenerate with:
//
//	go test ./internal/report -run TestJSONSchemaGolden -update
func TestJSONSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticCharacterization().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if updateGolden() {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden regenerated: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSON schema drifted from %s.\nIf the change is breaking, bump report.JSONVersion; regenerate with -update.\ngot:\n%s\nwant:\n%s",
			goldenPath, buf.Bytes(), want)
	}
	// The version-bump rule half of the pin: the golden must carry the
	// version the code claims, so neither can change alone.
	if !bytes.Contains(want, []byte("\"version\": 1")) || report.JSONVersion != 1 {
		t.Fatalf("golden version and report.JSONVersion (%d) out of step", report.JSONVersion)
	}
}

// TestJSONRoundTrips: unmarshal → re-marshal must reproduce the bytes
// exactly, on both the synthetic fixture and the real full sweep.
func TestJSONRoundTrips(t *testing.T) {
	check := func(name string, c report.Characterization) {
		var first bytes.Buffer
		if err := c.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		rep, err := report.ReadJSONReport(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var second bytes.Buffer
		if err := report.WriteJSONReport(&second, rep); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: re-marshal changed the bytes", name)
		}
	}
	check("synthetic", syntheticCharacterization())
	full, err := report.RunCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	check("full sweep", full)
}

// TestJSONParallelByteIdentical: the export of an 8-worker sweep must
// match a serial sweep byte for byte.
func TestJSONParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two uncached full sweeps")
	}
	serial, err := report.RunCharacterizationUncached(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := report.RunCharacterizationUncached(8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("-j1 and -j8 JSON exports differ")
	}
}

// TestJSONReferenceByteIdentical: the export of the optimized sweep —
// arena-backed mat fast paths, batched same-kernel cells, memoized
// dataset masters — must match a sweep over the hooked generic
// reference kernels byte for byte. This is the end-to-end form of the
// count-exactness invariant: any fast path, scratch reuse, or shared
// Prepared state that perturbed a single recorded op or validation
// outcome would shift some exported field and fail here.
func TestJSONReferenceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two uncached full sweeps")
	}
	fast, err := report.RunCharacterizationUncached(1)
	if err != nil {
		t.Fatal(err)
	}
	prev := mat.SetReferenceKernels(true)
	ref, err := report.RunCharacterizationUncached(1)
	mat.SetReferenceKernels(prev)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := fast.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("optimized and reference-kernel JSON exports differ")
	}
}

func TestReadJSONReportRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "not json", "parse"},
		{"wrong schema", `{"schema":"other.format","version":1}`, "unknown schema"},
		{"future version", `{"schema":"entobench.characterization","version":99}`, "newer than"},
	}
	for _, c := range cases {
		_, err := report.ReadJSONReport(strings.NewReader(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.wantErr)
		}
	}
	ok := `{"schema":"entobench.characterization","version":1,"datapoints":0,"kernels":[]}`
	if _, err := report.ReadJSONReport(strings.NewReader(ok)); err != nil {
		t.Errorf("minimal valid report rejected: %v", err)
	}
}
