package report

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/obs"
)

// Keyed, sharded characterization cache. The suite sweep is the most
// expensive computation in the repo and its result is deterministic in
// its inputs, so every consumer — the table writers, the ento wrappers,
// the CLIs, and every entobenchd HTTP client — shares one cache keyed
// by a content digest of the query (SweepKey: kernel set × board
// models × harness config). Identical queries coalesce: the first
// caller leads the run, concurrent identical callers subscribe to the
// same in-flight entry (singleflight) and share its progress stream,
// and later identical callers are served the completed result without
// re-sweeping.
//
// Replacing the old single process-global memo, the cache is sharded
// (key-hashed shards, each with its own lock) so a server handling
// many distinct queries never serializes them on one mutex, and
// bounded: completed entries beyond the capacity (SetSweepCacheCapacity)
// are evicted oldest-hit-first, so a long-running entobenchd holds a
// predictable amount of result memory however many distinct queries it
// has answered.
//
// Cancellation is reference-counted per entry: every caller joined to a
// run holds a subscription, a caller whose context ends merely drops
// its subscription, and only when the last subscriber is gone does the
// entry cancel the underlying sweep (which then lands partial and is
// discarded). A disconnected client therefore cancels only its own
// cells — never a run other clients are still waiting on.
//
// Only complete, healthy sweeps are retained. A partial run — contained
// kernel failures, a watchdog timeout, cancellation — is returned to
// the callers that waited on it but never cached, so the cache can only
// ever serve the full dataset and the next identical query re-sweeps.

// Cache observability counters (docs/observability.md): how often a
// query was answered from a completed entry, how often a sweep actually
// ran, how often identical in-flight queries coalesced, and how many
// completed entries the capacity bound dropped.
var (
	ctrCacheHit       = obs.NewCounter(obs.CounterSweepCacheHit)
	ctrCacheMiss      = obs.NewCounter(obs.CounterSweepCacheMiss)
	ctrCacheCoalesced = obs.NewCounter(obs.CounterSweepCacheCoalesced)
	ctrCacheEvicted   = obs.NewCounter(obs.CounterSweepCacheEvicted)
)

// sweepShards is the shard count; keys spread by their digest bytes.
const sweepShards = 8

// DefaultSweepCacheCapacity is the default bound on retained completed
// sweeps across all shards. Each entry holds one Characterization
// (records plus cells — tens of kilobytes), so the default keeps a
// long-running server's result memory in the low megabytes.
const DefaultSweepCacheCapacity = 64

// sweepEntry is one keyed query: in flight until ready is closed, then
// a completed result. Result fields are written by the leading
// goroutine before close(ready) and read only after observing the
// close, so they need no lock.
type sweepEntry struct {
	ready chan struct{}
	c     Characterization
	err   error

	mu      sync.Mutex
	subs    map[int]func(done, skipped, total int)
	nextSub int
	done    bool
	cancel  context.CancelFunc // cancels the run when the last subscriber leaves
}

// subscribe registers a waiter (its progress hook may be nil) and
// returns its id, or -1 when the entry already completed.
func (e *sweepEntry) subscribe(progress func(done, skipped, total int)) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return -1
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = progress
	return id
}

// unsubscribe drops a waiter; when the last one leaves a still-running
// entry, the underlying sweep is canceled. Reports whether this call
// was the one that canceled the run.
func (e *sweepEntry) unsubscribe(id int) bool {
	if id < 0 {
		return false
	}
	e.mu.Lock()
	delete(e.subs, id)
	last := len(e.subs) == 0 && !e.done
	e.mu.Unlock()
	if last {
		e.cancel()
	}
	return last
}

// broadcast fans one progress update out to every subscribed waiter.
// It is the entry's SweepOptions.Progress hook, so it is called
// concurrently from pool workers; subscriber hooks must be
// goroutine-safe, exactly as SweepOptions.Progress demands.
func (e *sweepEntry) broadcast(done, skipped, total int) {
	e.mu.Lock()
	hooks := make([]func(int, int, int), 0, len(e.subs))
	for _, h := range e.subs {
		if h != nil {
			hooks = append(hooks, h)
		}
	}
	e.mu.Unlock()
	for _, h := range hooks {
		h(done, skipped, total)
	}
}

// cacheShard is one lock domain of the sweep cache. order lists the
// completed (retained) keys oldest-hit-first for eviction; in-flight
// entries live in the map but not in order.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*sweepEntry
	order   []string
}

// promoteLocked moves a hit key to the back of the eviction order.
func (sh *cacheShard) promoteLocked(key string) {
	for i, k := range sh.order {
		if k == key {
			sh.order = append(append(sh.order[:i:i], sh.order[i+1:]...), key)
			return
		}
	}
}

// keepLocked retains a completed entry and evicts the oldest retained
// keys beyond the shard's share of the capacity.
func (sh *cacheShard) keepLocked(key string, perShard int) {
	sh.order = append(sh.order, key)
	for len(sh.order) > perShard {
		victim := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.entries, victim)
		ctrCacheEvicted.Inc()
	}
}

// sweepCache is the process-wide sharded cache.
type sweepCache struct {
	shards [sweepShards]cacheShard

	capMu    sync.Mutex
	capacity int
}

var globalSweepCache = newSweepCache()

func newSweepCache() *sweepCache {
	c := &sweepCache{capacity: DefaultSweepCacheCapacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*sweepEntry)
	}
	return c
}

// shard maps a key to its shard by the digest's tail byte (keys are
// hex SHA-256 strings, so any byte is uniformly distributed).
func (c *sweepCache) shard(key string) *cacheShard {
	if len(key) == 0 {
		return &c.shards[0]
	}
	return &c.shards[int(key[len(key)-1])%sweepShards]
}

// perShardCap returns each shard's share of the configured capacity.
func (c *sweepCache) perShardCap() int {
	c.capMu.Lock()
	defer c.capMu.Unlock()
	per := (c.capacity + sweepShards - 1) / sweepShards
	if per < 1 {
		per = 1
	}
	return per
}

// runFunc computes one characterization; the cache supplies the
// options (context and progress rewired to the shared entry).
type runFunc func(core.SweepOptions) (Characterization, error)

// do serves key from the cache: a completed entry is returned
// immediately (hit), an in-flight identical query is joined
// (coalesced), and a missing key starts a run led by a cache-owned
// goroutine (miss). ctx bounds only this caller's wait — abandoning it
// drops one subscription, and the run itself is canceled only when no
// subscriber remains.
func (c *sweepCache) do(ctx context.Context, key string, opts core.SweepOptions, run runFunc) (Characterization, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		select {
		case <-e.ready: // completed, retained: a pure cache hit
			ctrCacheHit.Inc()
			sh.promoteLocked(key)
			sh.mu.Unlock()
			return e.c, e.err
		default: // identical query in flight: coalesce onto it
			ctrCacheCoalesced.Inc()
			id := e.subscribe(opts.Progress)
			sh.mu.Unlock()
			return waitEntry(ctx, e, id)
		}
	}
	ctrCacheMiss.Inc()
	runCtx, cancel := context.WithCancel(context.Background())
	e := &sweepEntry{
		ready:  make(chan struct{}),
		subs:   make(map[int]func(int, int, int)),
		cancel: cancel,
	}
	id := e.subscribe(opts.Progress) // before the leader starts: the run must not outlive zero subscribers
	sh.entries[key] = e
	sh.mu.Unlock()
	go c.lead(sh, key, e, runCtx, opts, run)
	return waitEntry(ctx, e, id)
}

// lead executes the sweep for a fresh entry and publishes the result:
// healthy complete runs are retained (evicting over capacity), partial
// or failed runs are dropped from the map so the next identical query
// re-sweeps. The caller's own cancellation context is ignored here —
// the run obeys runCtx, which ends when the last subscriber leaves.
func (c *sweepCache) lead(sh *cacheShard, key string, e *sweepEntry, runCtx context.Context, opts core.SweepOptions, run runFunc) {
	ropts := opts
	ropts.Context = runCtx
	ropts.Progress = e.broadcast
	res, err := run(ropts)
	e.mu.Lock()
	e.done = true
	e.mu.Unlock()
	e.c, e.err = res, err
	keep := err == nil && !res.Partial()
	sh.mu.Lock()
	if sh.entries[key] == e { // not invalidated mid-run
		if keep {
			sh.keepLocked(key, c.perShardCap())
		} else {
			delete(sh.entries, key)
		}
	}
	sh.mu.Unlock()
	close(e.ready)
	e.cancel() // release the context; the run has already returned
}

// waitEntry blocks until the entry completes or the caller's context
// ends, whichever is first. A caller whose departure cancels the run
// (it was the last subscriber) collects the canceled run's partial
// result instead of discarding it: the sweep returns promptly once its
// context ends, carrying every cell completed before the cutoff, which
// is what lets a deadline_ms request still render a partial report.
func waitEntry(ctx context.Context, e *sweepEntry, id int) (Characterization, error) {
	select {
	case <-e.ready:
		e.unsubscribe(id)
		return e.c, e.err
	case <-ctx.Done():
		if e.unsubscribe(id) {
			// Bounded: a healthy sweep returns within one job's tail of
			// cancellation, but a kernel hung with no watchdog armed never
			// returns — fall back to the bare context error rather than
			// wedging this caller alongside the stuck worker.
			select {
			case <-e.ready:
				return e.c, e.err
			case <-time.After(cancelCollectGrace):
			}
		}
		return Characterization{}, ctx.Err()
	}
}

// cancelCollectGrace bounds how long a departing last subscriber waits
// for its canceled run to land a partial result in waitEntry.
const cancelCollectGrace = 2 * time.Second

// invalidate empties every shard. In-flight entries are detached — the
// callers waiting on them still get their results, but the results are
// not retained.
func (c *sweepCache) invalidate() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*sweepEntry)
		sh.order = nil
		sh.mu.Unlock()
	}
}

// SetSweepCacheCapacity bounds how many completed sweeps the keyed
// cache retains across all shards (minimum one per shard). Lowering it
// takes effect as new results are retained; it never interrupts
// in-flight runs. entobenchd exposes this as -cachecap.
func SetSweepCacheCapacity(n int) {
	globalSweepCache.capMu.Lock()
	if n < 1 {
		n = 1
	}
	globalSweepCache.capacity = n
	globalSweepCache.capMu.Unlock()
}

// RunSweepQuery returns the characterization of the given kernel set
// on the given boards through the keyed cache: served from a completed
// entry when an identical query already ran, coalesced onto an
// identical in-flight run, or computed fresh. Options shape only a
// cache-filling run (the worker count never changes the result); a
// caller's Progress hook is honored for in-flight runs it leads or
// joins, and not invoked on a pure cache hit. Callers must treat the
// shared records as read-only.
func RunSweepQuery(specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions) (Characterization, error) {
	// The backend is part of the query identity: a trace-backed sweep
	// and the classic sweep of the same grid must never share an entry.
	// The classic path (nil or canonical simulator) contributes nothing,
	// preserving every pre-seam key.
	key := SweepKey(specs, archs, harness.DefaultConfig(), harness.BackendSalt(opts.Backend))
	return globalSweepCache.do(opts.Context, key, opts, func(ropts core.SweepOptions) (Characterization, error) {
		recs, err := core.CharacterizeSuiteOpts(specs, archs, ropts)
		return Characterization{Records: recs}, err
	})
}

// SweepQueryPresent reports whether the keyed cache already holds an
// entry — completed or in flight — for the given query. The server's
// admission controller uses it to let warm and coalescible requests
// through for free: only queries that would start a fresh sweep consume
// admission capacity.
func SweepQueryPresent(specs []core.Spec, archs []mcu.Arch, be harness.Backend) bool {
	key := SweepKey(specs, archs, harness.DefaultConfig(), harness.BackendSalt(be))
	sh := globalSweepCache.shard(key)
	sh.mu.Lock()
	_, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok
}

// RunCharacterization returns the full Table III/IV suite sweep,
// computing it at most once per identical suite/board state with the
// default worker count (GOMAXPROCS).
func RunCharacterization() (Characterization, error) {
	return RunCharacterizationWorkers(0)
}

// RunCharacterizationWorkers is RunCharacterization with an explicit
// worker-pool size for a cache-filling run; workers <= 0 means
// GOMAXPROCS. The worker count never changes the result (see
// core.CharacterizeSuite), so later callers share the cached sweep
// regardless of the count they ask for.
func RunCharacterizationWorkers(workers int) (Characterization, error) {
	return RunCharacterizationOpts(core.SweepOptions{Workers: workers})
}

// RunCharacterizationOpts is the cached default-board sweep with full
// options. Options only shape a cache-filling run: a cache hit returns
// the shared result without invoking opts.Progress.
//
// Only complete, healthy sweeps are retained. A partial run — contained
// kernel failures, a watchdog timeout, cancellation — is returned to
// its caller but never cached, so the cache can only ever serve the
// full dataset and the next identical query retries from scratch.
func RunCharacterizationOpts(opts core.SweepOptions) (Characterization, error) {
	return RunSweepQuery(core.Suite(), mcu.TableIVSet(), opts)
}

// RunCharacterizationForArchs sweeps the whole suite over an explicit
// board selection — user boards, a named set, any mix — through the
// same keyed cache (the selection is part of the key, so distinct
// selections never collide and identical ones share one run). Output
// is deterministic for any worker count, like every sweep.
func RunCharacterizationForArchs(archs []mcu.Arch, opts core.SweepOptions) (Characterization, error) {
	return RunSweepQuery(core.Suite(), archs, opts)
}

// RunCharacterizationUncached always recomputes the sweep, bypassing
// and leaving untouched the keyed cache. Benchmarks and determinism
// tests use it; everything else should go through RunCharacterization.
func RunCharacterizationUncached(workers int) (Characterization, error) {
	return RunCharacterizationUncachedOpts(core.SweepOptions{Workers: workers})
}

// RunCharacterizationUncachedOpts is RunCharacterizationUncached with
// full sweep options.
func RunCharacterizationUncachedOpts(opts core.SweepOptions) (Characterization, error) {
	recs, err := core.CharacterizeSuiteOpts(core.Suite(), mcu.TableIVSet(), opts)
	return Characterization{Records: recs}, err
}

// InvalidateCharacterization empties the keyed sweep cache so the next
// identical query recomputes — the explicit invalidation hook for
// tests and for callers that mutate the modeled cost parameters.
// Queries already in flight complete for their waiters but are not
// retained.
func InvalidateCharacterization() {
	globalSweepCache.invalidate()
}
