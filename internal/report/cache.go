package report

import (
	"sync"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/obs"
)

// Shared characterization cache. The full suite sweep is the most
// expensive computation in the repo and its result is deterministic, so
// every consumer in one process — table3, table4, sweep, the ento
// wrappers, the experiment writer — shares a single memoized run
// instead of re-sweeping per table. The first caller pays; concurrent
// callers block on the same run rather than duplicating it.
var sweepCache struct {
	mu   sync.Mutex
	done bool
	c    Characterization
	err  error
}

// Cache observability counters (docs/observability.md): how often the
// memo answered versus how often a sweep actually ran.
var (
	ctrCacheHit  = obs.NewCounter(obs.CounterSweepCacheHit)
	ctrCacheMiss = obs.NewCounter(obs.CounterSweepCacheMiss)
)

// RunCharacterization returns the full Table III/IV suite sweep,
// computing it at most once per process with the default worker count
// (GOMAXPROCS). Callers must treat the shared records as read-only.
func RunCharacterization() (Characterization, error) {
	return RunCharacterizationWorkers(0)
}

// RunCharacterizationWorkers is RunCharacterization with an explicit
// worker-pool size for the first (cache-filling) run; workers <= 0
// means GOMAXPROCS. The worker count never changes the result (see
// core.CharacterizeSuite), so later callers share the cached sweep
// regardless of the count they ask for.
func RunCharacterizationWorkers(workers int) (Characterization, error) {
	return RunCharacterizationOpts(core.SweepOptions{Workers: workers})
}

// RunCharacterizationOpts is the memoized sweep with full options.
// Options only shape the cache-filling run: a cache hit returns the
// shared result without invoking opts.Progress.
//
// Only complete, healthy sweeps are memoized. A partial run — contained
// kernel failures, a watchdog timeout, cancellation — is returned to
// its caller but never cached, so the memo can only ever serve the full
// dataset and the next caller retries from scratch.
func RunCharacterizationOpts(opts core.SweepOptions) (Characterization, error) {
	sweepCache.mu.Lock()
	defer sweepCache.mu.Unlock()
	if sweepCache.done {
		ctrCacheHit.Inc()
		return sweepCache.c, sweepCache.err
	}
	ctrCacheMiss.Inc()
	c, err := RunCharacterizationUncachedOpts(opts)
	if err != nil || c.Partial() {
		return c, err
	}
	sweepCache.c, sweepCache.err = c, nil
	sweepCache.done = true
	return c, nil
}

// RunCharacterizationForArchs sweeps the whole suite over an explicit
// board selection — user boards, a named set, any mix — bypassing the
// process memo, which only covers the default Table IV set. Output is
// deterministic for any worker count, like every sweep.
func RunCharacterizationForArchs(archs []mcu.Arch, opts core.SweepOptions) (Characterization, error) {
	recs, err := core.CharacterizeSuiteOpts(core.Suite(), archs, opts)
	return Characterization{Records: recs}, err
}

// RunCharacterizationUncached always recomputes the sweep, bypassing
// and leaving untouched the process cache. Benchmarks and determinism
// tests use it; everything else should go through RunCharacterization.
func RunCharacterizationUncached(workers int) (Characterization, error) {
	return RunCharacterizationUncachedOpts(core.SweepOptions{Workers: workers})
}

// RunCharacterizationUncachedOpts is RunCharacterizationUncached with
// full sweep options.
func RunCharacterizationUncachedOpts(opts core.SweepOptions) (Characterization, error) {
	recs, err := core.CharacterizeSuiteOpts(core.Suite(), mcu.TableIVSet(), opts)
	return Characterization{Records: recs}, err
}

// InvalidateCharacterization drops the cached sweep so the next
// RunCharacterization recomputes it — the explicit invalidation hook
// for tests and for callers that mutate the modeled cost parameters.
func InvalidateCharacterization() {
	sweepCache.mu.Lock()
	sweepCache.done = false
	sweepCache.c = Characterization{}
	sweepCache.err = nil
	sweepCache.mu.Unlock()
}
