package report_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/report"
)

// runShards partitions the sweep N ways, round-trips every bundle
// through its wire format (exactly what `entobench merge` reads), and
// returns the decoded bundles.
func runShards(t *testing.T, specs []core.Spec, archs []mcu.Arch, n int) []report.ShardReport {
	t.Helper()
	var shards []report.ShardReport
	for i := 1; i <= n; i++ {
		sr, err := report.RunShard(specs, archs, core.SweepOptions{
			Workers: 2, ShardIndex: i, ShardCount: n,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		var buf bytes.Buffer
		if err := report.WriteShardReport(&buf, sr); err != nil {
			t.Fatal(err)
		}
		decoded, err := report.ReadShardReport(&buf)
		if err != nil {
			t.Fatalf("shard %d/%d round trip: %v", i, n, err)
		}
		shards = append(shards, decoded)
	}
	return shards
}

// The distribution invariant: N independent shard runs, merged, produce
// v1 JSON byte-identical to one single-process sweep — for several N,
// and regardless of bundle order at merge time.
func TestShardMergeByteIdenticalToFullSweep(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1})

	for _, n := range []int{2, 3, 5} {
		shards := runShards(t, specs, archs, n)
		// Merge must not care about bundle order: reverse it.
		for i, j := 0, len(shards)-1; i < j; i, j = i+1, j-1 {
			shards[i], shards[j] = shards[j], shards[i]
		}
		c, err := report.MergeShards(shards)
		if err != nil {
			t.Fatalf("merge %d-way: %v", n, err)
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(golden, buf.Bytes()) {
			t.Fatalf("%d-way shard merge diverged from the single-process sweep", n)
		}
	}
}

// Sharding composes with the persistent cache: shard runs backed by a
// warm cache still produce the same bundles, so distribution and
// caching can be combined freely.
func TestShardRunsComposeWithCellCache(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1})

	cache, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var shards []report.ShardReport
	for i := 1; i <= 2; i++ {
		sr, err := report.RunShard(specs, archs, core.SweepOptions{
			Workers: 1, ShardIndex: i, ShardCount: 2, CellCache: cache,
		})
		if err != nil {
			t.Fatalf("shard %d/2: %v", i, err)
		}
		shards = append(shards, sr)
	}
	c, err := report.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, buf.Bytes()) {
		t.Fatal("cached shard merge diverged from the single-process sweep")
	}
}

// Merge validation: every malformed combination is rejected with a
// diagnosable error instead of assembling a silently wrong report.
func TestMergeShardsValidation(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	shards := runShards(t, specs, archs, 2)

	cases := []struct {
		name    string
		mutate  func() []report.ShardReport
		wantSub string
	}{
		{"no bundles", func() []report.ShardReport { return nil }, "no shard bundles"},
		{"missing shard", func() []report.ShardReport {
			return shards[:1]
		}, "got 1 bundles"},
		{"duplicate shard", func() []report.ShardReport {
			return []report.ShardReport{shards[0], shards[0]}
		}, "twice"},
		{"partition size mismatch", func() []report.ShardReport {
			bad := shards[1]
			bad.Of = 3
			return []report.ShardReport{shards[0], bad}
		}, "partition"},
		{"foreign sweep key", func() []report.ShardReport {
			bad := shards[1]
			bad.SweepKey = "sweep-0000"
			return []report.ShardReport{shards[0], bad}
		}, "different sweep"},
		{"shard index out of range", func() []report.ShardReport {
			bad := shards[1]
			bad.Shard = 7
			return []report.ShardReport{shards[0], bad}
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := report.MergeShards(tc.mutate())
			if err == nil {
				t.Fatal("merge accepted a malformed partition")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// A shard index outside 1..N is a sweep-options error, caught before
// any work runs.
func TestShardIndexValidated(t *testing.T) {
	specs := cacheTestSpecs(t)
	for _, idx := range []int{0, 3, -1} {
		_, err := report.RunShard(specs, mcu.TableIVSet(), core.SweepOptions{ShardIndex: idx, ShardCount: 2})
		if err == nil {
			t.Fatalf("shard %d/2 accepted", idx)
		}
	}
}
