package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mcu"
)

// Characterization is the full Table III + IV dataset: one record per
// kernel, each holding all (arch, cache) cells.
type Characterization struct {
	Records []core.Record
}

// The "more than 400 measured datapoints" sweep — every kernel × {M4,
// M33, M7} × {cache on, off} plus the static proxy runs — lives in
// cache.go: RunCharacterization memoizes it per process and fans the
// cells across a worker pool (core.CharacterizeSuite).

// Datapoints counts the measurement cells in the sweep.
func (c Characterization) Datapoints() int {
	n := 0
	for _, r := range c.Records {
		n += len(r.Cells) * 3 // latency, energy, peak power per cell
		n++                   // static proxy run
	}
	return n
}

// WriteTable3 renders the static metrics: flash size and the F/I/M/B
// static instruction-mix proxy per architecture.
func (c Characterization) WriteTable3(w io.Writer) {
	header(w, "TABLE III — BENCHMARK SUITE STATIC METRICS (modeled proxy; see DESIGN.md)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Stage\tKernel\tCategory\tDataset\tFlash\tM4 F/I/M/B\tM33 F/I/M/B\tM7 F/I/M/B")
	for _, r := range c.Records {
		m4 := mcu.M4.StaticAdjust(r.Static)
		m33 := mcu.M33.StaticAdjust(r.Static)
		m7 := mcu.M7.StaticAdjust(r.Static)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d/%d/%d/%d\t%d/%d/%d/%d\t%d/%d/%d/%d\n",
			r.Spec.Stage, r.Spec.Name, r.Spec.Category, r.Spec.Dataset, r.Flash,
			m4.F, m4.I, m4.M, m4.B,
			m33.F, m33.I, m33.M, m33.B,
			m7.F, m7.I, m7.M, m7.B)
	}
	tw.Flush()
}

// WriteTable4 renders the dynamic metrics: latency (µs), energy (µJ),
// and peak power (mW) per core with caches on (C) and off (NC).
func (c Characterization) WriteTable4(w io.Writer) {
	header(w, "TABLE IV — DYNAMIC METRICS: LATENCY, ENERGY, PEAK POWER (cache on C / off NC)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Stage\tKernel\tM4 lat C/NC\tM33 lat C/NC\tM7 lat C/NC\tM4 E C/NC\tM33 E C/NC\tM7 E C/NC\tM4 P C/NC\tM33 P C/NC\tM7 P C/NC")
	for _, r := range c.Records {
		row := fmt.Sprintf("%s\t%s", r.Spec.Stage, r.Spec.Name)
		for _, metric := range []string{"lat", "energy", "peak"} {
			for _, arch := range []string{"M4", "M33", "M7"} {
				on, okOn := r.Cell(arch, true)
				off, okOff := r.Cell(arch, false)
				if !okOn || !okOff {
					row += "\t-"
					continue
				}
				switch metric {
				case "lat":
					row += fmt.Sprintf("\t%s/%s", fmtSI(on.Meas.LatencyS*1e6), fmtSI(off.Meas.LatencyS*1e6))
				case "energy":
					row += fmt.Sprintf("\t%s/%s", fmtSI(on.Meas.EnergyJ*1e6), fmtSI(off.Meas.EnergyJ*1e6))
				default:
					row += fmt.Sprintf("\t%s/%s", fmtSI(on.Meas.PeakPowerW*1e3), fmtSI(off.Meas.PeakPowerW*1e3))
				}
			}
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

// WriteTable5 renders the architecture inventory.
func WriteTable5(w io.Writer) {
	header(w, "TABLE V — CONSIDERED CORTEX-M ARCHITECTURES")
	tw := newTab(w)
	fmt.Fprintln(tw, "Core\tBoard\tISA\tClock\tFPU\tSRAM\tCaches")
	for _, a := range mcu.All() {
		fpu := "none (soft float)"
		switch a.FPU {
		case mcu.SPOnly:
			fpu = "SP FPU"
		case mcu.SPDP:
			fpu = "SP+DP FPU"
		}
		caches := "flash accelerator"
		if a.HasCache {
			caches = "I/D caches"
		}
		if a.Name == "M0+" {
			caches = "none"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f MHz\t%s\t%d KB\t%s\n",
			a.Name, a.Board, a.ISA, a.ClockHz/1e6, fpu, a.SRAMKB, caches)
	}
	tw.Flush()
}
