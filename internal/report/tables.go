package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mcu"
)

// Characterization is the full Table III + IV dataset: one record per
// kernel, each holding all (arch, cache) cells.
type Characterization struct {
	Records []core.Record
}

// The "more than 400 measured datapoints" sweep — every kernel × {M4,
// M33, M7} × {cache on, off} plus the static proxy runs — lives in
// cache.go: RunCharacterization memoizes it per process and fans the
// cells across a worker pool (core.CharacterizeSuite).

// Datapoints counts the measurement cells in the sweep. Only healthy
// cells count: a failed, timed-out, or skipped cell produced no
// latency/energy/power triple, and a failed static job produced no
// proxy run.
func (c Characterization) Datapoints() int {
	n := 0
	for _, r := range c.Records {
		for _, cell := range r.Cells {
			if cell.Status == core.CellOK {
				n += 3 // latency, energy, peak power per cell
			}
		}
		if r.StaticStatus == core.CellOK {
			n++ // static proxy run
		}
	}
	return n
}

// Partial reports whether any sweep job failed, timed out, or was
// skipped — i.e. whether the dataset is incomplete and the JSON export
// will carry a failures block.
func (c Characterization) Partial() bool {
	for _, r := range c.Records {
		if r.StaticStatus != core.CellOK {
			return true
		}
		for _, cell := range r.Cells {
			if cell.Status != core.CellOK {
				return true
			}
		}
	}
	return false
}

// Failures lists every job that did not complete, in serial sweep order
// (records order; static before cells), with full provenance — the
// source of both the JSON failures block and the CLI failure summary.
func (c Characterization) Failures() []core.CellError {
	var out []core.CellError
	for _, r := range c.Records {
		if r.StaticStatus != core.CellOK {
			out = append(out, core.CellError{
				Kernel: r.Spec.Name, Stage: core.StageStatic,
				Status: r.StaticStatus, Err: r.StaticErr,
			})
		}
		for _, cell := range r.Cells {
			if cell.Status != core.CellOK {
				out = append(out, core.CellError{
					Kernel: r.Spec.Name, Arch: cell.Arch.Name, Cache: cell.CacheOn,
					Stage: core.StageCell, Status: cell.Status, Err: cell.Err,
				})
			}
		}
	}
	return out
}

// cellArchs lists the distinct cores appearing in the records' cells in
// first-appearance order — the column set of Tables III and IV. A
// default sweep yields M4, M33, M7; sweeps over user boards grow (or
// replace) the columns with no renderer changes.
func (c Characterization) cellArchs() []mcu.Arch {
	var archs []mcu.Arch
	seen := map[string]bool{}
	for _, r := range c.Records {
		for _, cell := range r.Cells {
			if !seen[cell.Arch.Name] {
				seen[cell.Arch.Name] = true
				archs = append(archs, cell.Arch)
			}
		}
	}
	return archs
}

// WriteTable3 renders the static metrics: flash size and the F/I/M/B
// static instruction-mix proxy per architecture in the sweep.
func (c Characterization) WriteTable3(w io.Writer) {
	header(w, "TABLE III — BENCHMARK SUITE STATIC METRICS (modeled proxy; see DESIGN.md)")
	archs := c.cellArchs()
	tw := newTab(w)
	head := "Stage\tKernel\tCategory\tDataset\tFlash"
	for _, a := range archs {
		head += "\t" + a.Name + " F/I/M/B"
	}
	fmt.Fprintln(tw, head)
	for _, r := range c.Records {
		// A failed static-proxy job has no flash size or mix to show;
		// render the gap explicitly rather than as zeros.
		if r.StaticStatus != core.CellOK {
			row := fmt.Sprintf("%s\t%s\t%s\t%s\t—",
				r.Spec.Stage, r.Spec.Name, r.Spec.Category, r.Spec.Dataset)
			for range archs {
				row += "\t—"
			}
			fmt.Fprintln(tw, row)
			continue
		}
		row := fmt.Sprintf("%s\t%s\t%s\t%s\t%d",
			r.Spec.Stage, r.Spec.Name, r.Spec.Category, r.Spec.Dataset, r.Flash)
		for _, a := range archs {
			m := a.StaticAdjust(r.Static)
			row += fmt.Sprintf("\t%d/%d/%d/%d", m.F, m.I, m.M, m.B)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

// WriteTable4 renders the dynamic metrics: latency (µs), energy (µJ),
// and peak power (mW) per core in the sweep with caches on (C) and off
// (NC).
func (c Characterization) WriteTable4(w io.Writer) {
	header(w, "TABLE IV — DYNAMIC METRICS: LATENCY, ENERGY, PEAK POWER (cache on C / off NC)")
	archs := c.cellArchs()
	tw := newTab(w)
	head := "Stage\tKernel"
	for _, label := range []string{"lat", "E", "P"} {
		for _, a := range archs {
			head += fmt.Sprintf("\t%s %s C/NC", a.Name, label)
		}
	}
	fmt.Fprintln(tw, head)
	for _, r := range c.Records {
		row := fmt.Sprintf("%s\t%s", r.Spec.Stage, r.Spec.Name)
		for _, metric := range []string{"lat", "energy", "peak"} {
			for _, a := range archs {
				on, okOn := r.Cell(a.Name, true)
				off, okOff := r.Cell(a.Name, false)
				if !okOn || !okOff {
					row += "\t-"
					continue
				}
				// A cell that failed, timed out, or was skipped has no
				// measurement; "—" marks the gap instead of a zero.
				side := func(cell core.ArchRun, v float64) string {
					if cell.Status != core.CellOK {
						return "—"
					}
					return fmtSI(v)
				}
				switch metric {
				case "lat":
					row += fmt.Sprintf("\t%s/%s", side(on, on.Meas.LatencyS*1e6), side(off, off.Meas.LatencyS*1e6))
				case "energy":
					row += fmt.Sprintf("\t%s/%s", side(on, on.Meas.EnergyJ*1e6), side(off, off.Meas.EnergyJ*1e6))
				default:
					row += fmt.Sprintf("\t%s/%s", side(on, on.Meas.PeakPowerW*1e3), side(off, off.Meas.PeakPowerW*1e3))
				}
			}
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

// WriteTable5 renders the architecture inventory.
func WriteTable5(w io.Writer) {
	header(w, "TABLE V — CONSIDERED CORTEX-M ARCHITECTURES")
	tw := newTab(w)
	fmt.Fprintln(tw, "Core\tBoard\tISA\tClock\tFPU\tSRAM\tCaches")
	for _, a := range mcu.All() {
		fpu := "none (soft float)"
		switch a.FPU {
		case mcu.SPOnly:
			fpu = "SP FPU"
		case mcu.SPDP:
			fpu = "SP+DP FPU"
		}
		caches := "flash accelerator"
		if a.HasCache {
			caches = "I/D caches"
		}
		if a.Name == "M0+" {
			caches = "none"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f MHz\t%s\t%d KB\t%s\n",
			a.Name, a.Board, a.ISA, a.ClockHz/1e6, fpu, a.SRAMKB, caches)
	}
	tw.Flush()
}
