package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// CS1Row is one Table VI row: energy and peak power per core for a
// (kernel, dataset) pair, plus the cycle counts Fig 3 plots.
type CS1Row struct {
	Kernel  string
	Data    string
	EnergyU map[string]float64 // µJ per arch
	PeakMW  map[string]float64
	CyclesK map[string]float64 // kilocycles per arch
}

// CS1Result is Case Study #1: high-resolution exteroception under tight
// energy budgets.
type CS1Result struct {
	Rows []CS1Row
}

// RunCS1 measures the perception kernels across the three scene
// families, including the USADA8-vectorized bbof-vec variant.
func RunCS1() (CS1Result, error) {
	type job struct {
		kernel string
		kinds  []dataset.ImageKind
		vec    bool
		isFeat bool
	}
	jobs := []job{
		{"fastbrief", []dataset.ImageKind{dataset.Midd, dataset.Lights, dataset.April}, false, true},
		{"orb", []dataset.ImageKind{dataset.Midd, dataset.Lights, dataset.April}, false, true},
		{"lkof", []dataset.ImageKind{dataset.Midd}, false, false},
		{"bbof", []dataset.ImageKind{dataset.Midd}, false, false},
		{"bbof-vec", []dataset.ImageKind{dataset.Midd}, true, false},
		{"iiof", []dataset.ImageKind{dataset.Midd}, false, false},
	}
	var out CS1Result
	for _, j := range jobs {
		for _, kind := range j.kinds {
			var p harness.Problem
			if j.isFeat {
				p = core.NewFeatureProblem(j.kernel, kind)
			} else {
				base := j.kernel
				if j.vec {
					base = "bbof"
				}
				p = core.NewFlowProblem(base, kind, j.vec)
			}
			row := CS1Row{
				Kernel:  j.kernel,
				Data:    kind.String(),
				EnergyU: map[string]float64{},
				PeakMW:  map[string]float64{},
				CyclesK: map[string]float64{},
			}
			for _, arch := range mcu.TableIVSet() {
				res, err := harness.Run(p, arch, mcu.PrecF32, harness.DefaultConfig())
				if err != nil {
					return out, err
				}
				row.EnergyU[arch.Name] = res.Measured.EnergyJ * 1e6
				row.PeakMW[arch.Name] = res.Measured.PeakPowerW * 1e3
				row.CyclesK[arch.Name] = res.Model.Cycles / 1e3
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Row finds a (kernel, dataset) row.
func (r CS1Result) Row(kernel, data string) (CS1Row, bool) {
	for _, row := range r.Rows {
		if row.Kernel == kernel && row.Data == data {
			return row, true
		}
	}
	return CS1Row{}, false
}

// WriteTable6 renders the Table VI analogue.
func (r CS1Result) WriteTable6(w io.Writer) {
	header(w, "TABLE VI — ENERGY (µJ) AND PEAK POWER (mW) FOR PERCEPTION KERNELS (cache on)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Kernel\tData\tE M4\tE M33\tE M7\tP M4\tP M33\tP M7")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\n",
			row.Kernel, row.Data,
			fmtSI(row.EnergyU["M4"]), fmtSI(row.EnergyU["M33"]), fmtSI(row.EnergyU["M7"]),
			row.PeakMW["M4"], row.PeakMW["M33"], row.PeakMW["M7"])
	}
	tw.Flush()
}

// WriteFig3 renders the Fig 3 series: feature-detection cycles across
// datasets (a) and the optical-flow kernel comparison (b).
func (r CS1Result) WriteFig3(w io.Writer) {
	header(w, "FIG 3a — FEATURE DETECTION CYCLE COUNTS (kcycles) ACROSS DATASETS")
	tw := newTab(w)
	fmt.Fprintln(tw, "Kernel\tData\tM4\tM33\tM7")
	for _, row := range r.Rows {
		if row.Kernel != "fastbrief" && row.Kernel != "orb" {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", row.Kernel, row.Data,
			fmtSI(row.CyclesK["M4"]), fmtSI(row.CyclesK["M33"]), fmtSI(row.CyclesK["M7"]))
	}
	tw.Flush()
	fmt.Fprintln(w)
	header(w, "FIG 3b — OPTICAL FLOW CYCLE COUNTS (kcycles, midd)")
	tw = newTab(w)
	fmt.Fprintln(tw, "Kernel\tM4\tM33\tM7")
	for _, row := range r.Rows {
		switch row.Kernel {
		case "lkof", "bbof", "bbof-vec", "iiof":
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", row.Kernel,
				fmtSI(row.CyclesK["M4"]), fmtSI(row.CyclesK["M33"]), fmtSI(row.CyclesK["M7"]))
		}
	}
	tw.Flush()
}
