package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// Content digests, at two granularities. A characterization is fully
// determined by the kernel set, the board cost models, and the harness
// configuration (which carries the cache flag for single runs; the
// sweep itself measures both cache settings per cell). SweepKey digests
// exactly those inputs for a whole query, so two queries share an
// in-memory cache entry if and only if they would produce
// byte-identical v1 JSON exports. CellKey and StaticCellKey apply the
// same digest scheme to one cell — one (kernel, board, cache setting)
// measurement, or one kernel's static-proxy run — and key the on-disk
// persistent store (internal/cellstore), so overlapping sweeps share
// every cell they have in common.
//
// Kernel identity is by name plus descriptor metadata: the suite
// registry rejects duplicate names, so within one process a name plus
// its (stage, category, dataset, precision, FLOPs, SRAM gate) tuple
// pins one Factory. Across processes sharing a -cachedir the same
// holds by convention — a user who changes a registered kernel's
// implementation without renaming it must point at a fresh cache
// directory (or delete the old one), exactly as with any
// content-by-descriptor build cache. Board identity is the full
// serialized Arch — name, clock, FPU, SRAM, cache, every ModelParams
// field, and the provenance Source (Source appears in the export's
// boards block, so two otherwise-identical boards with different
// provenance must not share bytes).

// cellSchemaVersion salts the per-cell keys with the payload schema
// generation. Bumping it (alongside cellstore.Version) orphans every
// old on-disk record into a clean miss when the cached result's
// meaning changes in a way the inputs do not capture.
const cellSchemaVersion = 1

// hashKernel writes one kernel's identity line into a digest.
func hashKernel(h hash.Hash, s core.Spec) {
	fmt.Fprintf(h, "kernel|%s|%s|%s|%s|%d|%d|%v|%d\n",
		s.Name, s.Stage, s.Category, s.Dataset, s.Prec, s.FLOPs, s.M7Only, s.MinSRAMKB)
}

// hashBoard writes one board's identity line into a digest.
func hashBoard(h hash.Hash, a mcu.Arch) {
	fmt.Fprintf(h, "board|%s|%s|%s|%g|%d|%d|%v|%s|%+v\n",
		a.Name, a.Board, a.ISA, a.ClockHz, a.FPU, a.SRAMKB, a.HasCache, a.Source, a.Model)
}

// hashHarness writes the harness configuration line into a digest.
func hashHarness(h hash.Hash, cfg harness.Config) {
	fmt.Fprintf(h, "harness|%+v\n", cfg)
}

// hashBackend writes the measurement-backend salt line into a digest —
// only when there is one. The classic simulated path contributes
// nothing, so every key minted before the backend seam existed (and
// every warm cache built from them) stays byte-identical.
func hashBackend(h hash.Hash, backend string) {
	if backend != "" {
		fmt.Fprintf(h, "backend|%s\n", backend)
	}
}

// SweepKey returns the cache key of a characterization query:
// "sweep-" plus the hex SHA-256 of the query's content digest. backend
// is the measurement backend's salt (harness.BackendSalt) — empty for
// classic sweeps.
func SweepKey(specs []core.Spec, archs []mcu.Arch, cfg harness.Config, backend string) string {
	h := sha256.New()
	hashBackend(h, backend)
	hashHarness(h, cfg)
	for _, s := range specs {
		hashKernel(h, s)
	}
	for _, a := range archs {
		hashBoard(h, a)
	}
	return "sweep-" + hex.EncodeToString(h.Sum(nil))
}

// CellKey returns the persistent-store key of one (kernel, board,
// cache setting) measurement cell: "cell-" plus the hex SHA-256 of the
// cell's content digest. The digest covers the kernel descriptor, the
// full board model, and the per-cell harness configuration (the sweep
// default with CacheOn set to the cell's setting), plus the payload
// schema version — the same identity the sweep-level key uses, applied
// to one cell. backend is the measurement backend's salt
// (harness.BackendSalt): empty for simulator cells, which therefore
// keep their pre-seam keys; non-empty for externally measured cells,
// so modeled and measured results never collide in the store.
func CellKey(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string) string {
	cfg := harness.DefaultConfig()
	cfg.CacheOn = cacheOn
	h := sha256.New()
	fmt.Fprintf(h, "cellschema|%d\n", cellSchemaVersion)
	hashBackend(h, backend)
	hashHarness(h, cfg)
	hashKernel(h, spec)
	hashBoard(h, arch)
	return "cell-" + hex.EncodeToString(h.Sum(nil))
}

// StaticCellKey returns the persistent-store key of one kernel's
// static-proxy run. The static job is board-independent (it profiles
// the reduced-input solve and models flash from the counts), so the
// digest covers only the kernel descriptor and the schema version.
func StaticCellKey(spec core.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "cellschema|%d\nstatic\n", cellSchemaVersion)
	hashKernel(h, spec)
	return "cell-" + hex.EncodeToString(h.Sum(nil))
}

// defaultSweepKey keys the canonical full-suite Table IV sweep — the
// query RunCharacterization serves and the entobenchd default.
func defaultSweepKey() string {
	return SweepKey(core.Suite(), mcu.TableIVSet(), harness.DefaultConfig(), "")
}
