package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
)

// Sweep cache keys. A characterization is fully determined by the
// kernel set, the board cost models, and the harness configuration
// (which carries the cache flag for single runs; the sweep itself
// measures both cache settings per cell). SweepKey digests exactly
// those inputs, so two queries share a cache entry if and only if they
// would produce byte-identical v1 JSON exports.
//
// Kernel identity is by name plus descriptor metadata: the suite
// registry rejects duplicate names, so within one process a name plus
// its (stage, category, dataset, precision, FLOPs, SRAM gate) tuple
// pins one Factory. Board identity is the full serialized Arch —
// name, clock, FPU, SRAM, cache, every ModelParams field, and the
// provenance Source (Source appears in the export's boards block, so
// two otherwise-identical boards with different provenance must not
// share bytes). This content digest is also the stepping stone to the
// ROADMAP's persistent content-addressed cell cache: the same key
// scheme, applied per cell instead of per sweep, keys an on-disk
// store.

// SweepKey returns the cache key of a characterization query:
// "sweep-" plus the hex SHA-256 of the query's content digest.
func SweepKey(specs []core.Spec, archs []mcu.Arch, cfg harness.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "harness|%+v\n", cfg)
	for _, s := range specs {
		fmt.Fprintf(h, "kernel|%s|%s|%s|%s|%d|%d|%v|%d\n",
			s.Name, s.Stage, s.Category, s.Dataset, s.Prec, s.FLOPs, s.M7Only, s.MinSRAMKB)
	}
	for _, a := range archs {
		fmt.Fprintf(h, "board|%s|%s|%s|%g|%d|%d|%v|%s|%+v\n",
			a.Name, a.Board, a.ISA, a.ClockHz, a.FPU, a.SRAMKB, a.HasCache, a.Source, a.Model)
	}
	return "sweep-" + hex.EncodeToString(h.Sum(nil))
}

// defaultSweepKey keys the canonical full-suite Table IV sweep — the
// query RunCharacterization serves and the entobenchd default.
func defaultSweepKey() string {
	return SweepKey(core.Suite(), mcu.TableIVSet(), harness.DefaultConfig())
}
