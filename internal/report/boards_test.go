package report_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/report"
)

// provenanceCharacterization is the boards-block counterpart of
// syntheticCharacterization: its cells carry Source-bearing archs (a
// registry builtin and a file-loaded custom), so the export grows the
// additive model-provenance block.
func provenanceCharacterization() report.Characterization {
	custom := mcu.M4
	custom.Name = "M85"
	custom.Board = "hypothetical Cortex-M85 class part"
	custom.ISA = "ARMv8.1-M"
	custom.ClockHz = 400e6
	custom.FPU = mcu.SPDP
	custom.SRAMKB = 2048
	custom.HasCache = true
	custom.Source = "examples/custom-board/m85.json"
	cell := func(a mcu.Arch, on bool) core.ArchRun {
		return core.ArchRun{
			Arch: a, CacheOn: on,
			Model: mcu.Estimate{Cycles: 1000, LatencyS: 5e-6, EnergyJ: 0.5e-6,
				AvgPowerW: 0.1, PeakPowerW: 0.12},
			Meas: harness.Measurement{LatencyS: 5e-6, EnergyJ: 0.5e-6,
				AvgPowerW: 0.1, PeakPowerW: 0.12, Reps: 10},
		}
	}
	return report.Characterization{Records: []core.Record{{
		Spec: core.Spec{Name: "vvadd", Stage: core.Control, Category: "Example",
			Dataset: "synth-1k", Prec: mcu.PrecF32},
		Static:  profile.Counts{F: 12, I: 34, M: 56, B: 7},
		Flash:   1024,
		Dynamic: profile.Counts{F: 1200, I: 3400, M: 5600, B: 700},
		Valid:   true,
		Cells: []core.ArchRun{
			cell(mcu.M4, true), cell(mcu.M4, false),
			cell(custom, true), cell(custom, false),
		},
	}}}
}

const boardsGoldenPath = "testdata/json_schema_v1_boards.golden.json"

// TestJSONBoardsGolden pins the model-provenance block: field set,
// order, and the rule that it rides schema v1 additively. Regenerate
// with:
//
//	go test ./internal/report -run TestJSONBoardsGolden -update
func TestJSONBoardsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := provenanceCharacterization().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if updateGolden() {
		if err := os.WriteFile(boardsGoldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden regenerated: %s", boardsGoldenPath)
		return
	}
	want, err := os.ReadFile(boardsGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("boards block drifted from %s; regenerate with -update if intended.\ngot:\n%s\nwant:\n%s",
			boardsGoldenPath, buf.Bytes(), want)
	}
	// Additive means same schema version as the original golden.
	if !bytes.Contains(want, []byte("\"version\": 1")) {
		t.Fatal("boards golden must stay on schema v1 (the block is additive)")
	}
}

// The boards block is strictly additive: source-less archs (synthetic
// fixtures, pre-registry data) produce no block at all, which is what
// keeps the original v1 golden byte-identical.
func TestJSONBoardsOmittedWithoutSource(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticCharacterization().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"boards"`)) {
		t.Fatal("source-less characterization should omit the boards block")
	}
	rep := provenanceCharacterization().JSONExport()
	if len(rep.Boards) != 2 {
		t.Fatalf("provenance export has %d boards, want 2 (first-appearance order, one per core)", len(rep.Boards))
	}
	if rep.Boards[0].Name != "M4" || rep.Boards[0].Source != mcu.SourceBuiltin {
		t.Errorf("boards[0] = %s/%s, want the builtin M4", rep.Boards[0].Name, rep.Boards[0].Source)
	}
	if rep.Boards[1].Name != "M85" || rep.Boards[1].Source != "examples/custom-board/m85.json" {
		t.Errorf("boards[1] = %s/%s, want the file-loaded custom", rep.Boards[1].Name, rep.Boards[1].Source)
	}
	if rep.Boards[1].FPU != "sp+dp" || rep.Boards[1].ClockMHz != 400 {
		t.Errorf("custom board identity exported wrong: %+v", rep.Boards[1])
	}
}

// Worker-count determinism must survive custom boards: a sweep over
// the default set plus a registered custom produces byte-identical
// JSON at -j1 and -j8, provenance block included.
func TestCustomBoardSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two uncached full sweeps")
	}
	big := mcu.M7
	big.Name = "DetBoard"
	big.Board = "test fixture"
	big.SRAMKB = 4096
	big.Source = ""
	if err := mcu.Register(big); err != nil {
		t.Fatal(err)
	}
	reg, _ := mcu.ByName("DetBoard")
	archs := append(mcu.TableIVSet(), reg)

	render := func(workers int) []byte {
		c, err := report.RunCharacterizationForArchs(archs, core.SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := render(1), render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("-j1 and -j8 custom-board exports differ")
	}
	// The export names all four boards with their provenance.
	doc := string(serial)
	for _, want := range []string{`"name": "M4"`, `"name": "DetBoard"`, `"source": "builtin"`, `"source": "registered"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("custom-board export missing %s", want)
		}
	}
}
