package report_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/report"
)

// cacheTestSpecs returns a small fixed kernel subset, enough to cover
// multiple kernels without paying for the whole suite per test.
func cacheTestSpecs(t *testing.T) []core.Spec {
	t.Helper()
	var specs []core.Spec
	for _, name := range []string{"madgwick", "mahony"} {
		s, ok := core.ByName(name)
		if !ok {
			t.Fatalf("%s missing from suite", name)
		}
		specs = append(specs, s)
	}
	return specs
}

// sweepJSON characterizes specs×archs with the given options and
// renders the v1 JSON export — the byte-level artifact every cache and
// shard invariant is stated against.
func sweepJSON(t *testing.T, specs []core.Spec, archs []mcu.Arch, opts core.SweepOptions) []byte {
	t.Helper()
	recs, err := core.CharacterizeSuiteOpts(specs, archs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (report.Characterization{Records: recs}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole invariant: a sweep against a cold persistent cache and a
// sweep against the warm cache both produce bytes identical to a plain
// uncached sweep — the cache is invisible in the output, at any worker
// count.
func TestPersistentCacheByteIdentical(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1})

	cache, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	if !bytes.Equal(golden, cold) {
		t.Fatal("cold cached sweep diverged from the uncached sweep")
	}

	for _, workers := range []int{1, 8} {
		before := obs.Counters()
		warm := sweepJSON(t, specs, archs, core.SweepOptions{Workers: workers, CellCache: cache})
		if !bytes.Equal(golden, warm) {
			t.Fatalf("warm cached sweep (j=%d) diverged from the uncached sweep", workers)
		}
		after := obs.Counters()
		if d := after[obs.CounterSweepCellsComputed] - before[obs.CounterSweepCellsComputed]; d != 0 {
			t.Fatalf("warm sweep (j=%d) computed %d cells, want 0", workers, d)
		}
		// 2 kernels × (1 static + 3 archs × 2 cache settings) jobs.
		if d := after[obs.CounterSweepCellsCached] - before[obs.CounterSweepCellsCached]; d != 14 {
			t.Fatalf("warm sweep (j=%d) served %d cells from cache, want 14", workers, d)
		}
	}
}

// The incremental invariant: against a cache warmed on the Table IV
// set, a sweep extended by one novel board computes exactly that
// board's cells — everything else loads, and the kernels themselves are
// never re-executed (the shared prepare rehydrates from a cached cell,
// so harness.reps.host stays flat). Bytes match the uncached sweep of
// the extended selection exactly.
func TestIncrementalSweepComputesOnlyNewCells(t *testing.T) {
	specs := cacheTestSpecs(t)
	base := mcu.TableIVSet()

	novel := mcu.M4
	novel.Name = "M4-novel"
	novel.Board = "synthetic clone for incremental test"
	extended := append(append([]mcu.Arch{}, base...), novel)

	golden := sweepJSON(t, specs, extended, core.SweepOptions{Workers: 1})

	cache, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sweepJSON(t, specs, base, core.SweepOptions{Workers: 1, CellCache: cache}) // warm the base grid

	before := obs.Counters()
	got := sweepJSON(t, specs, extended, core.SweepOptions{Workers: 1, CellCache: cache})
	after := obs.Counters()

	if !bytes.Equal(golden, got) {
		t.Fatal("incremental sweep diverged from the uncached extended sweep")
	}
	// The delta is exactly the novel board: 2 kernels × 2 cache settings.
	if d := after[obs.CounterSweepCellsComputed] - before[obs.CounterSweepCellsComputed]; d != 4 {
		t.Fatalf("incremental sweep computed %d cells, want 4 (the novel board's)", d)
	}
	if d := after[obs.CounterSweepCellsCached] - before[obs.CounterSweepCellsCached]; d != 14 {
		t.Fatalf("incremental sweep loaded %d cells, want 14 (the warm base grid)", d)
	}
	if d := after[obs.CounterHarnessHostReps] - before[obs.CounterHarnessHostReps]; d != 0 {
		t.Fatalf("incremental sweep executed %d host reps, want 0 (prepare must rehydrate from cache)", d)
	}
}

// Failed cells must never be persisted: a sweep full of hard failures
// leaves the store empty, and a later sweep over the same cache fails
// identically rather than loading a phantom healthy cell.
func TestFailedCellsNeverPersisted(t *testing.T) {
	specs := []core.Spec{
		faultinject.ErroringSpec("cc-erroring"),
		faultinject.PanickerSpec("cc-panicker"),
	}
	archs := mcu.TableIVSet()
	dir := t.TempDir()
	cache, err := report.OpenCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 2, CellCache: cache}); err == nil {
		t.Fatal("fault sweep reported no error")
	}
	store, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("store holds %d records after an all-failures sweep, want 0", n)
	}
	// Spot-check the exact keys too: no cell, no static.
	if _, ok := store.Get(report.CellKey(specs[0], archs[0], true, "")); ok {
		t.Fatal("failed cell present under its content key")
	}
	if _, ok := store.Get(report.StaticCellKey(specs[1])); ok {
		t.Fatal("failed static pass present under its content key")
	}

	recs, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 2, CellCache: cache})
	if err == nil {
		t.Fatal("second fault sweep reported no error")
	}
	for _, rec := range recs {
		for _, cell := range rec.Cells {
			if cell.Status == core.CellOK {
				t.Fatalf("%s served a healthy cell from a cache that must be empty", rec.Spec.Name)
			}
		}
	}
}

// Soft validation failures are healthy measurements: their cells are
// persisted, and the warm replay round-trips the Valid=false verdict
// and its rendered error byte-identically.
func TestInvalidKernelCellsPersistAndReplay(t *testing.T) {
	specs := []core.Spec{faultinject.InvalidSpec("cc-invalid")}
	archs := mcu.TableIVSet()
	cache, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1})
	cold := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	warm := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	if !bytes.Equal(golden, cold) || !bytes.Equal(golden, warm) {
		t.Fatal("invalid-kernel sweep bytes diverged across cache states")
	}
	if !bytes.Contains(warm, []byte("faultinject: result is NaN/Inf")) {
		t.Fatal("validation error lost in the cached replay")
	}
}

// A corrupted record heals transparently: the sweep discards it,
// recomputes the cell, and still produces identical bytes.
func TestCorruptCellHealsIntoRecompute(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	dir := t.TempDir()
	cache, err := report.OpenCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})

	// Flip bits in one cell record and truncate another.
	key := report.CellKey(specs[0], archs[0], true, "")
	path := filepath.Join(dir, key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, report.StaticCellKey(specs[1])+".json")
	sdata, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, sdata[:len(sdata)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	before := obs.Counters()
	got := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	after := obs.Counters()
	if !bytes.Equal(golden, got) {
		t.Fatal("sweep over a corrupted cache diverged")
	}
	if d := after[obs.CounterCellstoreCorruptDiscarded] - before[obs.CounterCellstoreCorruptDiscarded]; d != 2 {
		t.Fatalf("corrupt_discarded rose by %d, want 2", d)
	}
	if d := after[obs.CounterSweepCellsComputed] - before[obs.CounterSweepCellsComputed]; d != 2 {
		t.Fatalf("healing sweep computed %d cells, want exactly the 2 corrupted ones", d)
	}
	// And the heal re-persisted both: a third sweep is all-cache again.
	before = obs.Counters()
	sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	after = obs.Counters()
	if d := after[obs.CounterSweepCellsComputed] - before[obs.CounterSweepCellsComputed]; d != 0 {
		t.Fatalf("post-heal sweep computed %d cells, want 0", d)
	}
}

// Concurrent sweeps sharing one cache directory — distinct cache
// handles, like separate processes — must both succeed and both produce
// the golden bytes, whatever interleaving of puts and gets occurs.
func TestConcurrentSweepsShareOneCacheDir(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	golden := sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1})
	dir := t.TempDir()

	var wg sync.WaitGroup
	results := make([][]byte, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cache, err := report.OpenCellCache(dir)
			if err != nil {
				t.Error(err)
				return
			}
			recs, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 2, CellCache: cache})
			if err != nil {
				t.Error(err)
				return
			}
			var buf bytes.Buffer
			if err := (report.Characterization{Records: recs}).WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			results[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(golden, got) {
			t.Fatalf("concurrent sweep %d diverged from the golden bytes", i)
		}
	}
}

// The entoreport -cachedir provenance block is additive: setting
// JSONReport.Cache adds a "cache" object that survives a
// read/re-marshal round trip byte for byte, and leaving it nil emits
// exactly the classic export (so every pre-existing golden holds).
func TestCacheProvenanceBlockRoundTrips(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	recs, err := core.CharacterizeSuiteOpts(specs, archs, core.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := report.Characterization{Records: recs}

	var classic bytes.Buffer
	if err := c.WriteJSON(&classic); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(classic.Bytes(), []byte(`"cache"`)) {
		t.Fatal("classic export grew a cache block")
	}

	rep := c.JSONExport()
	rep.Cache = &report.CacheProvenance{Dir: "/tmp/cells", CellsCached: 10, CellsComputed: 4}
	var first bytes.Buffer
	if err := report.WriteJSONReport(&first, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte(`"cells_cached": 10`)) {
		t.Fatalf("provenance block missing from export:\n%s", first.String())
	}
	back, err := report.ReadJSONReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := report.WriteJSONReport(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("provenance-carrying export changed across a round trip")
	}
}

// Provenance tallies come from the live counters of the cache handle.
func TestPersistentCacheProvenanceCounts(t *testing.T) {
	specs := cacheTestSpecs(t)
	archs := mcu.TableIVSet()
	cache, err := report.OpenCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	sweepJSON(t, specs, archs, core.SweepOptions{Workers: 1, CellCache: cache})
	prov := cache.Provenance()
	if prov.Dir != cache.Dir() {
		t.Fatalf("provenance dir %q != cache dir %q", prov.Dir, cache.Dir())
	}
	// Cold sweep: 14 stores; warm sweep: 14 loads.
	if prov.CellsCached != 14 || prov.CellsComputed != 14 {
		t.Fatalf("provenance = %+v, want 14 cached / 14 computed", prov)
	}
}
