package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mcu"
)

// Machine-readable characterization export. Tables III/IV render for
// humans; this schema is the vendor-neutral result format other tooling
// consumes — regression trackers diffing BENCH_*.json across commits,
// plotting scripts, dashboards. The encoding is deliberately boring:
// structs only (no maps, so key order is fixed), units spelled out in
// field names, and a version field governed by the compatibility
// promise in docs/observability.md. Output is deterministic — the same
// suite produces byte-identical JSON at any worker count — and
// round-trips: unmarshal into JSONReport and re-marshal reproduces the
// bytes exactly.

// JSONSchema and JSONVersion identify the export format. Version bumps
// only on breaking changes (renaming/removing a field, changing a unit
// or meaning); adding fields is backwards-compatible and does not bump.
const (
	JSONSchema  = "entobench.characterization"
	JSONVersion = 1
)

// JSONReport is the top-level characterization export. Boards is the
// additive (schema v1-compatible) model-provenance block: one entry per
// core appearing in the cells, carrying where its definition came from
// and the full cost-model parameters, so a result file is
// self-describing even when produced with user board files.
//
// Partial and Failures are the additive (still v1) fault-reporting
// block: a sweep with failed, timed-out, or skipped cells marks the
// export partial and lists every gap with full provenance, so a
// BENCH_*.json produced by an interrupted or partly failed run is
// explicit about what is missing. Clean runs omit both fields, keeping
// their bytes identical to pre-fault-tolerance exports.
// Cache is the additive persistent-cell-cache provenance block: set
// only when the producer opted in (entoreport -cachedir), it records
// how many cells were served from the on-disk store versus computed.
// Producers whose output must stay byte-identical across cold and warm
// runs — entobench sweep, the entobenchd server — never set it.
//
// Backends is the additive measurement-backend provenance block (see
// docs/backends.md): present only on backend-aware sweeps, one entry
// per backend that measured at least one cell, in first-appearance
// order, with its cell count. Classic sweeps omit it, keeping their
// bytes identical to pre-seam exports.
type JSONReport struct {
	Schema     string           `json:"schema"`
	Version    int              `json:"version"`
	Datapoints int              `json:"datapoints"`
	Partial    bool             `json:"partial,omitempty"`
	Boards     []JSONBoard      `json:"boards,omitempty"`
	Backends   []JSONBackend    `json:"backends,omitempty"`
	Failures   []JSONFailure    `json:"failures,omitempty"`
	Cache      *CacheProvenance `json:"cache,omitempty"`
	Kernels    []JSONKernel     `json:"kernels"`
}

// JSONBackend is the measurement provenance of one backend in the
// export: its registry name, the source label its cells carry, and how
// many cells it measured.
type JSONBackend struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Cells  int    `json:"cells"`
}

// JSONFailure is one sweep job that produced no measurement: which
// kernel, where (arch/cache_on are omitted for the static-proxy job),
// how it ended (failed, panicked, timed_out, skipped), and the error.
// Skipped jobs may carry no error (fail-fast abandonment).
type JSONFailure struct {
	Kernel  string `json:"kernel"`
	Stage   string `json:"stage"`
	Arch    string `json:"arch,omitempty"`
	CacheOn bool   `json:"cache_on,omitempty"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
}

// JSONBoard is the model provenance of one core in the export.
type JSONBoard struct {
	Name     string          `json:"name"`
	Board    string          `json:"board,omitempty"`
	ISA      string          `json:"isa,omitempty"`
	ClockMHz float64         `json:"clock_mhz"`
	FPU      string          `json:"fpu"`
	SRAMKB   int             `json:"sram_kb"`
	HasCache bool            `json:"has_cache"`
	Source   string          `json:"source"`
	Model    mcu.ModelParams `json:"model"`
}

// JSONCounts is an F/I/M/B instruction-mix record.
type JSONCounts struct {
	F uint64 `json:"f"`
	I uint64 `json:"i"`
	M uint64 `json:"m"`
	B uint64 `json:"b"`
}

// JSONKernel is the full characterization of one suite kernel.
type JSONKernel struct {
	Name         string     `json:"name"`
	Stage        string     `json:"stage"`
	Category     string     `json:"category"`
	Dataset      string     `json:"dataset"`
	Precision    string     `json:"precision"`
	M7Only       bool       `json:"m7_only,omitempty"`
	ClaimedFLOPs int        `json:"claimed_flops,omitempty"`
	FlashBytes   int        `json:"flash_bytes"`
	Static       JSONCounts `json:"static"`
	Dynamic      JSONCounts `json:"dynamic"`
	Valid        bool       `json:"valid"`
	Error        string     `json:"error,omitempty"`
	Cells        []JSONCell `json:"cells"`
}

// JSONCell is one (arch, cache) measurement cell. Source is the
// per-cell measurement provenance — "modeled" for simulator cells,
// "measured" for externally captured ones — present exactly when the
// sweep ran with an explicit backend; classic exports omit it on every
// cell (additive, still v1).
type JSONCell struct {
	Arch     string          `json:"arch"`
	CacheOn  bool            `json:"cache_on"`
	Source   string          `json:"source,omitempty"`
	Model    JSONModel       `json:"model"`
	Measured JSONMeasurement `json:"measured"`
}

// JSONModel is the analytic cost-model estimate for a cell.
type JSONModel struct {
	Cycles      float64 `json:"cycles"`
	LatencyUS   float64 `json:"latency_us"`
	EnergyUJ    float64 `json:"energy_uj"`
	AvgPowerMW  float64 `json:"avg_power_mw"`
	PeakPowerMW float64 `json:"peak_power_mw"`
}

// JSONMeasurement is what the simulated trace pipeline recovered for a
// cell (per-rep latency and energy, as in Table IV).
type JSONMeasurement struct {
	LatencyUS   float64 `json:"latency_us"`
	EnergyUJ    float64 `json:"energy_uj"`
	AvgPowerMW  float64 `json:"avg_power_mw"`
	PeakPowerMW float64 `json:"peak_power_mw"`
	Reps        int     `json:"reps"`
}

// JSONExport builds the export structure from a characterization. The
// boards block lists every distinct core in the cells in
// first-appearance order; cores with no Source — the zero-valued Arch
// stubs synthetic fixtures use — are skipped, which keeps the original
// v1 golden byte-identical: provenance is strictly additive. Cells that
// did not complete move out of the kernels' cells arrays and into the
// failures block (with partial set), so every number in the export is a
// real measurement.
func (c Characterization) JSONExport() JSONReport {
	rep := JSONReport{
		Schema:     JSONSchema,
		Version:    JSONVersion,
		Datapoints: c.Datapoints(),
		Kernels:    make([]JSONKernel, 0, len(c.Records)),
	}
	for _, f := range c.Failures() {
		jf := JSONFailure{
			Kernel:  f.Kernel,
			Stage:   f.Stage,
			Arch:    f.Arch,
			CacheOn: f.Cache,
			Status:  f.Status.String(),
		}
		if f.Err != nil {
			jf.Error = f.Err.Error()
		}
		rep.Failures = append(rep.Failures, jf)
	}
	rep.Partial = len(rep.Failures) > 0
	seen := map[string]bool{}
	for _, r := range c.Records {
		for _, cell := range r.Cells {
			a := cell.Arch
			if a.Source == "" || seen[a.Name] {
				continue
			}
			seen[a.Name] = true
			rep.Boards = append(rep.Boards, JSONBoard{
				Name:     a.Name,
				Board:    a.Board,
				ISA:      a.ISA,
				ClockMHz: a.ClockHz / 1e6,
				FPU:      a.FPU.String(),
				SRAMKB:   a.SRAMKB,
				HasCache: a.HasCache,
				Source:   a.Source,
				Model:    a.Model,
			})
		}
	}
	// The backends block mirrors the boards block: one entry per
	// measurement backend appearing in the cells, first-appearance
	// order. Classic cells carry no backend, so classic exports skip the
	// block entirely.
	beIdx := map[string]int{}
	for _, r := range c.Records {
		for _, cell := range r.Cells {
			if cell.Status != core.CellOK || cell.Backend == "" {
				continue
			}
			i, ok := beIdx[cell.Backend]
			if !ok {
				i = len(rep.Backends)
				beIdx[cell.Backend] = i
				rep.Backends = append(rep.Backends, JSONBackend{Name: cell.Backend, Source: cell.Source})
			}
			rep.Backends[i].Cells++
		}
	}
	for _, r := range c.Records {
		k := JSONKernel{
			Name:         r.Spec.Name,
			Stage:        string(r.Spec.Stage),
			Category:     r.Spec.Category,
			Dataset:      r.Spec.Dataset,
			Precision:    r.Spec.Prec.String(),
			M7Only:       r.Spec.M7Only,
			ClaimedFLOPs: r.Spec.FLOPs,
			FlashBytes:   r.Flash,
			Static:       JSONCounts{F: r.Static.F, I: r.Static.I, M: r.Static.M, B: r.Static.B},
			Dynamic:      JSONCounts{F: r.Dynamic.F, I: r.Dynamic.I, M: r.Dynamic.M, B: r.Dynamic.B},
			Valid:        r.Valid,
			Cells:        make([]JSONCell, 0, len(r.Cells)),
		}
		if r.ValidE != nil {
			k.Error = r.ValidE.Error()
		}
		for _, cell := range r.Cells {
			if cell.Status != core.CellOK {
				continue // listed in the failures block instead
			}
			k.Cells = append(k.Cells, JSONCell{
				Arch:    cell.Arch.Name,
				CacheOn: cell.CacheOn,
				Source:  cell.Source,
				Model: JSONModel{
					Cycles:      cell.Model.Cycles,
					LatencyUS:   cell.Model.LatencyS * 1e6,
					EnergyUJ:    cell.Model.EnergyJ * 1e6,
					AvgPowerMW:  cell.Model.AvgPowerW * 1e3,
					PeakPowerMW: cell.Model.PeakPowerW * 1e3,
				},
				Measured: JSONMeasurement{
					LatencyUS:   cell.Meas.LatencyS * 1e6,
					EnergyUJ:    cell.Meas.EnergyJ * 1e6,
					AvgPowerMW:  cell.Meas.AvgPowerW * 1e3,
					PeakPowerMW: cell.Meas.PeakPowerW * 1e3,
					Reps:        cell.Meas.Reps,
				},
			})
		}
		rep.Kernels = append(rep.Kernels, k)
	}
	return rep
}

// WriteJSON writes the versioned characterization export, indented,
// with a trailing newline. The bytes are identical for any sweep worker
// count and re-marshaling a parsed report reproduces them exactly.
func (c Characterization) WriteJSON(w io.Writer) error {
	return WriteJSONReport(w, c.JSONExport())
}

// WriteJSONReport renders an already-built report — the single encoder
// both the export and the round-trip path share.
func WriteJSONReport(w io.Writer, rep JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSONReport parses a characterization export and verifies the
// schema identifier and version, the entry point for cross-run tooling
// (perf-trajectory diffs over BENCH_*.json files).
func ReadJSONReport(r io.Reader) (JSONReport, error) {
	var rep JSONReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return JSONReport{}, fmt.Errorf("report: parse JSON export: %w", err)
	}
	if rep.Schema != JSONSchema {
		return JSONReport{}, fmt.Errorf("report: unknown schema %q (want %q)", rep.Schema, JSONSchema)
	}
	if rep.Version > JSONVersion {
		return JSONReport{}, fmt.Errorf("report: schema version %d is newer than this build supports (%d)", rep.Version, JSONVersion)
	}
	return rep, nil
}
