package report_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcu"
	"repro/internal/report"
)

// TestKeysSaltedByBackend: backend identity must partition the key
// space — a measured sweep or cell can never collide with the modeled
// result of the same query, while the empty salt (the classic path)
// keys exactly as before the seam existed.
func TestKeysSaltedByBackend(t *testing.T) {
	spec, ok := core.ByName("madgwick")
	if !ok {
		t.Fatal("no madgwick kernel")
	}
	specs := []core.Spec{spec}
	archs := []mcu.Arch{mcu.M4}
	cfg := harness.DefaultConfig()

	classic := report.SweepKey(specs, archs, cfg, "")
	traced := report.SweepKey(specs, archs, cfg, "trace+fp1")
	if classic == traced {
		t.Error("SweepKey ignores the backend salt")
	}
	if report.SweepKey(specs, archs, cfg, "trace+fp1") != traced {
		t.Error("SweepKey with a fixed salt is not deterministic")
	}
	if report.SweepKey(specs, archs, cfg, "trace+fp2") == traced {
		t.Error("SweepKey ignores the backend fingerprint")
	}

	cClassic := report.CellKey(spec, mcu.M4, true, "")
	cTraced := report.CellKey(spec, mcu.M4, true, "trace+fp1")
	if cClassic == cTraced {
		t.Error("CellKey ignores the backend salt")
	}
	if report.CellKey(spec, mcu.M4, true, "trace+fp1") != cTraced {
		t.Error("CellKey with a fixed salt is not deterministic")
	}
}

// TestJSONProvenanceExport: labeled cells export their source and an
// aggregate backends block; the unlabeled fixture — the classic path —
// exports neither, which is what keeps the schema golden byte-stable.
func TestJSONProvenanceExport(t *testing.T) {
	classic := syntheticCharacterization()
	var classicBuf bytes.Buffer
	if err := classic.WriteJSON(&classicBuf); err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"backends"`, `"source": "modeled"`, `"source": "measured"`} {
		if strings.Contains(classicBuf.String(), forbidden) {
			t.Errorf("classic export contains %s", forbidden)
		}
	}

	labeled := syntheticCharacterization()
	// First kernel: one trace-measured cell, one simulator fallback —
	// the mixed sweep a partial backend produces.
	labeled.Records[0].Cells[0].Backend = "trace"
	labeled.Records[0].Cells[0].Source = harness.SourceMeasured
	labeled.Records[0].Cells[1].Backend = "sim"
	labeled.Records[0].Cells[1].Source = harness.SourceModeled
	labeled.Records[1].Cells[0].Backend = "sim"
	labeled.Records[1].Cells[0].Source = harness.SourceModeled
	rep := labeled.JSONExport()

	if got := rep.Kernels[0].Cells[0].Source; got != harness.SourceMeasured {
		t.Errorf("measured cell source = %q", got)
	}
	if got := rep.Kernels[0].Cells[1].Source; got != harness.SourceModeled {
		t.Errorf("fallback cell source = %q", got)
	}
	if len(rep.Backends) != 2 {
		t.Fatalf("backends block = %+v, want trace and sim", rep.Backends)
	}
	// First-appearance order: the measured cell leads the fixture.
	if rep.Backends[0].Name != "trace" || rep.Backends[0].Source != harness.SourceMeasured || rep.Backends[0].Cells != 1 {
		t.Errorf("trace entry = %+v", rep.Backends[0])
	}
	if rep.Backends[1].Name != "sim" || rep.Backends[1].Source != harness.SourceModeled || rep.Backends[1].Cells != 2 {
		t.Errorf("sim entry = %+v", rep.Backends[1])
	}

	// The labeled report round-trips bit-exactly like any other.
	var buf bytes.Buffer
	if err := report.WriteJSONReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := report.ReadJSONReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := report.WriteJSONReport(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("labeled report does not round-trip byte-exactly")
	}
}
