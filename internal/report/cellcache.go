package report

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/mcu"
)

// PersistentCellCache adapts the on-disk content-addressed store
// (internal/cellstore) to the sweep engine's core.CellCache interface:
// every healthy cell a sweep computes is persisted under its content
// key (CellKey / StaticCellKey), and any later sweep — in this process
// or another — that needs a content-identical cell loads it instead of
// recomputing. Loaded cells are byte-identical to recomputation, so a
// warm sweep's v1 JSON export matches a cold one's exactly.
//
// The adapter is safe for concurrent use by pool workers and by
// multiple processes sharing one directory (the store's atomic-rename
// writes and verified reads make cross-process sharing safe). Store
// errors are deliberately swallowed: a cache that cannot persist —
// disk full, read-only directory — degrades to computing every cell,
// never to failing the sweep.
type PersistentCellCache struct {
	store *cellstore.Store

	// Per-instance provenance: how many cells this cache served from
	// disk and how many it persisted after computation. entoreport
	// surfaces these in the export's cache block.
	hits   atomic.Int64
	stores atomic.Int64
}

// OpenCellCache opens (creating if needed) the persistent cell cache
// rooted at dir — the implementation behind every -cachedir flag.
func OpenCellCache(dir string) (*PersistentCellCache, error) {
	st, err := cellstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &PersistentCellCache{store: st}, nil
}

// OpenCellCacheQuota is OpenCellCache with a byte-size bound on the
// backing directory (entobenchd -cachequota): past the quota the
// least-recently-used records are garbage-collected. quota <= 0 means
// unbounded.
func OpenCellCacheQuota(dir string, quota int64) (*PersistentCellCache, error) {
	p, err := OpenCellCache(dir)
	if err != nil {
		return nil, err
	}
	p.store.SetQuota(quota)
	return p, nil
}

// Dir returns the cache's root directory.
func (p *PersistentCellCache) Dir() string { return p.store.Dir() }

// Backing exposes the underlying store — the chaos harness's seam for
// fault injection and probe tuning.
func (p *PersistentCellCache) Backing() *cellstore.Store { return p.store }

// Health reports whether the cache is fully operational and, when it is
// not, why. A degraded cache still serves warm cells; entobenchd
// surfaces the state on /healthz.
func (p *PersistentCellCache) Health() (ok bool, reasons []string) {
	if degraded, reason := p.store.Degraded(); degraded {
		return false, []string{reason}
	}
	return true, nil
}

// LoadStatic implements core.CellCache.
func (p *PersistentCellCache) LoadStatic(spec core.Spec) (core.StaticCellResult, bool) {
	var res core.StaticCellResult
	payload, ok := p.store.Get(StaticCellKey(spec))
	if !ok || json.Unmarshal(payload, &res) != nil {
		return core.StaticCellResult{}, false
	}
	p.hits.Add(1)
	return res, true
}

// StoreStatic implements core.CellCache.
func (p *PersistentCellCache) StoreStatic(spec core.Spec, res core.StaticCellResult) {
	p.put(StaticCellKey(spec), res)
}

// LoadCell implements core.CellCache. The backend salt is part of the
// content key, so a measured cell can never be served to a modeled
// query or vice versa.
func (p *PersistentCellCache) LoadCell(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string) (core.MeasuredCellResult, bool) {
	var res core.MeasuredCellResult
	payload, ok := p.store.Get(CellKey(spec, arch, cacheOn, backend))
	if !ok || json.Unmarshal(payload, &res) != nil {
		return core.MeasuredCellResult{}, false
	}
	p.hits.Add(1)
	return res, true
}

// StoreCell implements core.CellCache.
func (p *PersistentCellCache) StoreCell(spec core.Spec, arch mcu.Arch, cacheOn bool, backend string, res core.MeasuredCellResult) {
	p.put(CellKey(spec, arch, cacheOn, backend), res)
}

// put marshals and persists one payload, swallowing store errors (see
// the type comment).
func (p *PersistentCellCache) put(key string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	if p.store.Put(key, payload) == nil {
		p.stores.Add(1)
	}
}

// CacheProvenance describes how a sweep's cells were obtained when a
// persistent cell cache was in play — the additive JSON cache block
// entoreport emits with -cachedir.
type CacheProvenance struct {
	// Dir is the cache directory the run used.
	Dir string `json:"dir"`
	// CellsCached is how many cells this run loaded from the store.
	CellsCached int `json:"cells_cached"`
	// CellsComputed is how many healthy cells this run computed and
	// persisted.
	CellsComputed int `json:"cells_computed"`
}

// Provenance reports this cache instance's load/store tallies.
func (p *PersistentCellCache) Provenance() CacheProvenance {
	return CacheProvenance{
		Dir:           p.store.Dir(),
		CellsCached:   int(p.hits.Load()),
		CellsComputed: int(p.stores.Load()),
	}
}
