package report_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestTable5Renders(t *testing.T) {
	var buf bytes.Buffer
	report.WriteTable5(&buf)
	out := buf.String()
	for _, want := range []string{"M0+", "M4", "M33", "M7", "SP FPU", "soft float"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q", want)
		}
	}
}

func TestCharacterizationSweep(t *testing.T) {
	c, err := report.RunCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	// The "more than 400 measured datapoints" claim must hold for the
	// full sweep.
	if dp := c.Datapoints(); dp < 400 {
		t.Fatalf("sweep produced %d datapoints, paper claims > 400", dp)
	}
	var t3, t4 bytes.Buffer
	c.WriteTable3(&t3)
	c.WriteTable4(&t4)
	for _, kernel := range []string{"fastbrief", "sift", "mahony", "5pt", "bee-mpc"} {
		if !strings.Contains(t3.String(), kernel) {
			t.Errorf("Table III missing %s", kernel)
		}
		if !strings.Contains(t4.String(), kernel) {
			t.Errorf("Table IV missing %s", kernel)
		}
	}

	// Shape checks against the paper's headline relationships.
	for _, r := range c.Records {
		if len(r.Cells) == 0 {
			continue
		}
		m33on, ok1 := r.Cell("M33", true)
		m4on, ok2 := r.Cell("M4", true)
		m7on, ok3 := r.Cell("M7", true)
		m7off, ok4 := r.Cell("M7", false)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		if m33on.Model.EnergyJ >= m4on.Model.EnergyJ {
			t.Errorf("%s: M33 energy %.3g >= M4 %.3g", r.Spec.Name, m33on.Model.EnergyJ, m4on.Model.EnergyJ)
		}
		if m7on.Model.LatencyS >= m4on.Model.LatencyS {
			t.Errorf("%s: M7 latency %.3g >= M4 %.3g", r.Spec.Name, m7on.Model.LatencyS, m4on.Model.LatencyS)
		}
		if m7off.Model.LatencyS <= m7on.Model.LatencyS {
			t.Errorf("%s: M7 cache-off latency not worse", r.Spec.Name)
		}
	}
}

func TestCS1Shapes(t *testing.T) {
	r, err := report.RunCS1()
	if err != nil {
		t.Fatal(err)
	}
	// orb costs 1.2-4x fastbrief on every dataset (paper: 1.5-2.5x).
	for _, data := range []string{"midd", "lights", "april"} {
		fb, ok1 := r.Row("fastbrief", data)
		orb, ok2 := r.Row("orb", data)
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s", data)
		}
		ratio := orb.EnergyU["M4"] / fb.EnergyU["M4"]
		if ratio < 1.1 || ratio > 4.5 {
			t.Errorf("%s: orb/fastbrief energy ratio %.2f", data, ratio)
		}
	}
	// The sparse lights dataset is cheaper than midd and april.
	for _, kernel := range []string{"fastbrief", "orb"} {
		lights, _ := r.Row(kernel, "lights")
		midd, _ := r.Row(kernel, "midd")
		if lights.EnergyU["M4"] >= midd.EnergyU["M4"] {
			t.Errorf("%s: lights energy >= midd", kernel)
		}
	}
	// bbof-vec saves ~4x over bbof; lkof dwarfs both.
	bb, _ := r.Row("bbof", "midd")
	bv, _ := r.Row("bbof-vec", "midd")
	lk, _ := r.Row("lkof", "midd")
	vr := bb.EnergyU["M4"] / bv.EnergyU["M4"]
	if vr < 2 || vr > 6 {
		t.Errorf("bbof/bbof-vec energy ratio %.2f, want ~4", vr)
	}
	if lk.CyclesK["M4"] < 3*bb.CyclesK["M4"] {
		t.Errorf("lkof should dwarf bbof: %.0fk vs %.0fk cycles", lk.CyclesK["M4"], bb.CyclesK["M4"])
	}
	var buf bytes.Buffer
	r.WriteTable6(&buf)
	r.WriteFig3(&buf)
	if !strings.Contains(buf.String(), "bbof-vec") {
		t.Error("Table VI output missing bbof-vec")
	}
}

func TestCS2Table7Shapes(t *testing.T) {
	r := report.RunCS2Table7()
	if len(r.Rows) != 10 {
		t.Fatalf("Table VII rows = %d, want 10", len(r.Rows))
	}
	// M0+ f32: highest energy despite lowest power (race to idle).
	f32, ok := r.Row("mahony", "IMU", "f32")
	if !ok {
		t.Fatal("missing mahony IMU f32 row")
	}
	if f32.EnergyNJ["M0+"] <= f32.EnergyNJ["M4"] || f32.EnergyNJ["M0+"] <= f32.EnergyNJ["M33"] {
		t.Error("M0+ f32 energy should exceed the FPU cores")
	}
	if f32.PeakMW["M0+"] >= f32.PeakMW["M4"] {
		t.Error("M0+ peak power should be lowest")
	}
	// Fixed point is faster than soft float on the M0+, slower than
	// hardware float on the M4/M33.
	q, ok := r.Row("mahony", "IMU", "q7.24")
	if !ok {
		t.Fatal("missing q7.24 row")
	}
	if q.LatencyUs["M0+"] >= f32.LatencyUs["M0+"] {
		t.Error("fixed point should beat soft float on the M0+")
	}
	if q.LatencyUs["M4"] <= f32.LatencyUs["M4"] {
		t.Error("fixed point should lose to hardware float on the M4")
	}
	// MARG costs more than IMU-only.
	margF, _ := r.Row("mahony", "MARG", "f32")
	if margF.LatencyUs["M4"] <= f32.LatencyUs["M4"] {
		t.Error("MARG should cost more than IMU")
	}
	var buf bytes.Buffer
	r.WriteTable7(&buf)
	if !strings.Contains(buf.String(), "fourati") {
		t.Error("Table VII output missing fourati")
	}
}

func TestFig4FailureCurves(t *testing.T) {
	r := report.RunFig4(2) // even-frac sweep
	if len(r.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// Too few fraction bits: catastrophic quantization. Mid-range
	// formats: near-zero failures on the hover dataset.
	lo, ok1 := r.Rate("bee-hover", "mahony", "IMU", 2)
	mid, ok2 := r.Rate("bee-hover", "mahony", "IMU", 22)
	if !ok1 || !ok2 {
		t.Fatal("missing sweep points")
	}
	if lo < 0.3 {
		t.Errorf("q29.2 failure rate %.2f; expected catastrophic", lo)
	}
	if mid > 0.2 {
		t.Errorf("q9.22 failure rate %.2f; expected near zero", mid)
	}
	// The aggressive steering dataset must fail at formats where the
	// gentle line dataset still works (larger gyro dynamic range needs
	// more integer bits) — the Fig 4 dataset-separation effect.
	worse := 0
	for frac := 24; frac <= 30; frac += 2 {
		line, okA := r.Rate("strider-line", "madgwick", "IMU", frac)
		steer, okB := r.Rate("strider-steer", "madgwick", "IMU", frac)
		if okA && okB && steer > line+0.1 {
			worse++
		}
	}
	if worse == 0 {
		t.Error("steering dataset never failed harder than straight-line at high-frac formats")
	}
	var buf bytes.Buffer
	r.WriteFig4(&buf)
	if !strings.Contains(buf.String(), "strider-steer") {
		t.Error("Fig 4 output missing strider-steer")
	}
}

func TestCS3FLOPGap(t *testing.T) {
	r, err := report.RunCS3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("Table VIII rows = %d, want 5", len(r.Rows))
	}
	// Every kernel must measure more energy than the FLOP estimate —
	// the case study's central finding.
	for _, row := range r.Rows {
		for _, arch := range []string{"M4", "M33", "M7"} {
			if row.MeasEnergy[arch] <= row.EstEnergy[arch] {
				t.Errorf("%s on %s: measured %.3g <= estimated %.3g µJ",
					row.Kernel, arch, row.MeasEnergy[arch], row.EstEnergy[arch])
			}
		}
	}
	// TinyMPC's gap is the largest among the fly kernels (17-33x in the
	// paper).
	tiny, _ := r.Row("fly-tiny-mpc")
	gap := tiny.MeasEnergy["M4"] / tiny.EstEnergy["M4"]
	if gap < 3 {
		t.Errorf("fly-tiny-mpc energy gap %.1fx; expected a large multiple", gap)
	}
	var buf bytes.Buffer
	r.WriteTable8(&buf)
	if !strings.Contains(buf.String(), "bee-ceekf") {
		t.Error("Table VIII output missing bee-ceekf")
	}
}

func TestCS4Shapes(t *testing.T) {
	r, err := report.RunCS4(6) // small batch for test speed
	if err != nil {
		t.Fatal(err)
	}
	// (a) noise degrades accuracy.
	for _, solver := range []string{"u3pt", "8pt-8"} {
		clean, ok1 := r.APoint(solver, "f32", 0.0)
		noisy, ok2 := r.APoint(solver, "f32", 2.0)
		if !ok1 || !ok2 {
			t.Fatalf("missing accuracy points for %s", solver)
		}
		if clean.RotErrDeg >= noisy.RotErrDeg {
			t.Errorf("%s: clean error %.3f >= noisy %.3f", solver, clean.RotErrDeg, noisy.RotErrDeg)
		}
	}
	// (a) 8pt robustness improves with N.
	n8, _ := r.APoint("8pt-8", "f32", 1.0)
	n32, _ := r.APoint("8pt-32", "f32", 1.0)
	if n32.RotErrDeg >= n8.RotErrDeg {
		t.Errorf("8pt-32 error %.3f >= 8pt-8 %.3f at 1px noise", n32.RotErrDeg, n8.RotErrDeg)
	}
	// (b) minimal prior-aware solvers are far cheaper than 5pt and the
	// linear solvers.
	up, _ := r.BCPoint("up2pt", "f32", "M4")
	five, _ := r.BCPoint("5pt", "f32", "M4")
	if five.CyclesK < 5*up.CyclesK {
		t.Errorf("5pt cycles %.0fk < 5x up2pt %.0fk", five.CyclesK, up.CyclesK)
	}
	// (b) doubles cost more than floats on the SP-FPU M4.
	upD, _ := r.BCPoint("up2pt", "f64", "M4")
	if upD.CyclesK <= up.CyclesK {
		t.Error("f64 should cost more than f32 on the M4")
	}
	// (d) 5pt needs more RANSAC iterations than the 2-point solver; (e)
	// and costs far more cycles in total.
	defUp, ok1 := r.DEFPoint("up2pt", "M4")
	def5, ok2 := r.DEFPoint("5pt", "M4")
	if !ok1 || !ok2 {
		t.Fatal("missing DEF points")
	}
	if def5.Iterations <= defUp.Iterations {
		t.Errorf("5pt iterations %.1f <= up2pt %.1f", def5.Iterations, defUp.Iterations)
	}
	if def5.CyclesM <= defUp.CyclesM {
		t.Errorf("5pt RANSAC cycles %.2fM <= up2pt %.2fM", def5.CyclesM, defUp.CyclesM)
	}
	var buf bytes.Buffer
	r.WriteFig5(&buf)
	if !strings.Contains(buf.String(), "up3pt") {
		t.Error("Fig 5 output missing up3pt")
	}
}

// The parallel engine must be invisible in the output: the rendered
// tables are byte-identical for serial and parallel sweeps across
// worker counts (the issue's -j 1/2/8 matrix).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	render := func(c report.Characterization) string {
		var buf bytes.Buffer
		c.WriteTable3(&buf)
		c.WriteTable4(&buf)
		return buf.String()
	}
	base, err := report.RunCharacterizationUncached(1)
	if err != nil {
		t.Fatal(err)
	}
	want := render(base)
	for _, workers := range []int{2, 8} {
		c, err := report.RunCharacterizationUncached(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(c); got != want {
			t.Fatalf("-j %d output differs from serial sweep", workers)
		}
		if c.Datapoints() != base.Datapoints() {
			t.Fatalf("-j %d datapoints = %d, serial = %d", workers, c.Datapoints(), base.Datapoints())
		}
	}
}

// One process pays for one sweep: repeated RunCharacterization calls
// must share the memoized records until explicitly invalidated.
func TestSweepCacheMemoizes(t *testing.T) {
	a, err := report.RunCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	b, err := report.RunCharacterizationWorkers(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) == 0 || &a.Records[0] != &b.Records[0] {
		t.Fatal("second call did not reuse the cached sweep records")
	}
	report.InvalidateCharacterization()
	c, err := report.RunCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	if &c.Records[0] == &a.Records[0] {
		t.Fatal("invalidation did not force a fresh sweep")
	}
	// The fresh sweep still agrees with the old one.
	var wasBuf, nowBuf bytes.Buffer
	a.WriteTable4(&wasBuf)
	c.WriteTable4(&nowBuf)
	if wasBuf.String() != nowBuf.String() {
		t.Fatal("re-swept Table IV differs from the cached one")
	}
}
