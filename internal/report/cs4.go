package report

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/mcu"
	"repro/internal/pose"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// Fig5Solver identifies a relative-pose solver in the comparison.
type Fig5Solver struct {
	Name       string
	SampleSize int
	Minimal    bool
}

// fig5Solvers lists the comparison set: minimal prior-aware solvers,
// the 5-point solver, and the linear 8-point at several N.
func fig5Solvers() []Fig5Solver {
	return []Fig5Solver{
		{"up2pt", 2, true},
		{"up3pt", 3, true},
		{"u3pt", 3, true},
		{"5pt", 5, true},
		{"8pt-8", 8, false},
		{"8pt-16", 16, false},
		{"8pt-32", 32, false},
	}
}

// solveRelByName runs one solver on the leading sample of corrs and
// disambiguates with the full set.
func solveRelByName[T scalar.Real[T]](name string, n int, corrs []pose.RelCorrespondence[T]) (pose.Pose[T], error) {
	sample := corrs
	if len(sample) > n {
		sample = corrs[:n]
	}
	switch name {
	case "up2pt":
		cands, err := pose.UP2PT(sample)
		if err != nil {
			return pose.Pose[T]{}, err
		}
		best, _ := pose.BestRelPose(cands, corrs)
		return best, nil
	case "up3pt":
		cands, err := pose.UP3PT(sample)
		if err != nil {
			return pose.Pose[T]{}, err
		}
		best, _ := pose.BestRelPose(cands, corrs)
		return best, nil
	case "u3pt":
		cands, err := pose.U3PT(sample)
		if err != nil {
			return pose.Pose[T]{}, err
		}
		best, _ := pose.BestRelPose(cands, corrs)
		return best, nil
	case "5pt":
		cands, err := pose.FivePoint(sample)
		if err != nil {
			return pose.Pose[T]{}, err
		}
		best, _ := pose.BestRelPose(cands, corrs)
		return best, nil
	default: // 8pt-N
		return pose.EightPoint(sample)
	}
}

// genFor builds a problem matching a solver's motion priors.
func genFor(s Fig5Solver, n int, noise float64, outliers float64, seed int64) dataset.RelProblem {
	planar := s.Name == "up2pt" || s.Name == "up3pt"
	upright := planar || s.Name == "u3pt"
	return dataset.GenRelProblem(dataset.PoseGenConfig{
		N: n, PixelNoise: noise, OutlierRatio: outliers,
		Upright: upright, Planar: planar, Seed: seed,
	})
}

// Fig5APoint is one accuracy sample: solver × precision × noise →
// mean rotation error over the problem batch.
type Fig5APoint struct {
	Solver    string
	Precision string // "f32" or "f64"
	NoisePx   float64
	RotErrDeg float64
}

// Fig5BCPoint is one cost sample at 0.1 px noise: solver × arch →
// cycles and peak power.
type Fig5BCPoint struct {
	Solver    string
	Precision string
	Arch      string
	CyclesK   float64
	PeakMW    float64
}

// Fig5DEFPoint is one LO-RANSAC sample: inner solver × arch → mean
// iterations, cycles, peak power.
type Fig5DEFPoint struct {
	Solver     string
	Arch       string
	Iterations float64
	CyclesM    float64
	PeakMW     float64
}

// CS4Result is Case Study #4.
type CS4Result struct {
	A   []Fig5APoint
	BC  []Fig5BCPoint
	DEF []Fig5DEFPoint
}

// RunCS4 generates all Fig 5 panels. problems controls the batch size
// per point (the paper uses 1000; smaller values keep tests fast).
func RunCS4(problems int) (CS4Result, error) {
	var out CS4Result
	noises := []float64{0.0, 0.1, 0.5, 1.0, 2.0}

	// Panel (a): accuracy vs noise, float vs double.
	for _, s := range fig5Solvers() {
		for _, prec := range []string{"f32", "f64"} {
			for _, noise := range noises {
				var sum float64
				var n int
				for k := 0; k < problems; k++ {
					p := genFor(s, maxInt(s.SampleSize, 12), noise, 0, int64(1000+k))
					var rotErr float64
					if prec == "f32" {
						est, e := solveRelByName(s.Name, s.SampleSize, dataset.ConvertRel(scalar.F32(0), p))
						if e != nil {
							continue
						}
						rotErr = dataset.RotationErr(est, p.Truth)
					} else {
						est, e := solveRelByName(s.Name, s.SampleSize, dataset.ConvertRel(scalar.F64(0), p))
						if e != nil {
							continue
						}
						rotErr = dataset.RotationErr(est, p.Truth)
					}
					sum += rotErr
					n++
				}
				if n == 0 {
					continue
				}
				out.A = append(out.A, Fig5APoint{
					Solver: s.Name, Precision: prec, NoisePx: noise, RotErrDeg: sum / float64(n),
				})
			}
		}
	}

	// Panels (b, c): cycles and peak power at 0.1 px noise.
	for _, s := range fig5Solvers() {
		for _, prec := range []string{"f32", "f64"} {
			p := genFor(s, maxInt(s.SampleSize, 12), 0.1, 0, 77)
			var counts profile.Counts
			mprec := mcu.PrecF32
			if prec == "f32" {
				c32 := dataset.ConvertRel(scalar.F32(0), p)
				counts = profile.Collect(func() { _, _ = solveRelByName(s.Name, s.SampleSize, c32) })
			} else {
				c64 := dataset.ConvertRel(scalar.F64(0), p)
				counts = profile.Collect(func() { _, _ = solveRelByName(s.Name, s.SampleSize, c64) })
				mprec = mcu.PrecF64
			}
			for _, arch := range mcu.TableIVSet() {
				est := arch.Estimate(counts, mprec, true)
				out.BC = append(out.BC, Fig5BCPoint{
					Solver: s.Name, Precision: prec, Arch: arch.Name,
					CyclesK: est.Cycles / 1e3, PeakMW: est.PeakPowerMW(),
				})
			}
		}
	}

	// Panels (d, e, f): LO-RANSAC with 25% outliers, 0.5 px noise.
	// The 8-point inner solver is excluded, as in the paper.
	ransacSolvers := []Fig5Solver{
		{"up2pt", 2, true}, {"up3pt", 3, true}, {"u3pt", 3, true}, {"5pt", 5, true},
	}
	for _, s := range ransacSolvers {
		var iterSum float64
		var counts profile.Counts
		runs := maxInt(problems/10, 3)
		for k := 0; k < runs; k++ {
			p := genFor(s, 100, 0.5, 0.25, int64(5000+k))
			cfg := pose.DefaultRansacConfig()
			cfg.Seed = int64(k + 1)
			c32 := dataset.ConvertRel(scalar.F32(0), p)
			inner := func(sample []pose.RelCorrespondence[scalar.F32]) ([]pose.Pose[scalar.F32], error) {
				est, err := solveRelByName(s.Name, s.SampleSize, sample)
				if err != nil {
					return nil, err
				}
				return []pose.Pose[scalar.F32]{est}, nil
			}
			c := profile.Collect(func() {
				_, _, stats, err := pose.RelLoRansac(c32, inner, s.SampleSize, cfg)
				if err == nil {
					iterSum += float64(stats.Iterations)
				}
			})
			counts.Add(c)
		}
		meanCounts := counts.Scale(1 / float64(runs))
		for _, arch := range mcu.TableIVSet() {
			est := arch.Estimate(meanCounts, mcu.PrecF32, true)
			out.DEF = append(out.DEF, Fig5DEFPoint{
				Solver: s.Name, Arch: arch.Name,
				Iterations: iterSum / float64(runs),
				CyclesM:    est.Cycles / 1e6,
				PeakMW:     est.PeakPowerMW(),
			})
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// APoint finds a panel (a) sample.
func (r CS4Result) APoint(solver, prec string, noise float64) (Fig5APoint, bool) {
	for _, p := range r.A {
		if p.Solver == solver && p.Precision == prec && p.NoisePx == noise {
			return p, true
		}
	}
	return Fig5APoint{}, false
}

// BCPoint finds a panel (b/c) sample.
func (r CS4Result) BCPoint(solver, prec, arch string) (Fig5BCPoint, bool) {
	for _, p := range r.BC {
		if p.Solver == solver && p.Precision == prec && p.Arch == arch {
			return p, true
		}
	}
	return Fig5BCPoint{}, false
}

// DEFPoint finds a panel (d/e/f) sample.
func (r CS4Result) DEFPoint(solver, arch string) (Fig5DEFPoint, bool) {
	for _, p := range r.DEF {
		if p.Solver == solver && p.Arch == arch {
			return p, true
		}
	}
	return Fig5DEFPoint{}, false
}

// WriteFig5 renders all panels.
func (r CS4Result) WriteFig5(w io.Writer) {
	header(w, "FIG 5a — ROTATION ERROR (deg) vs PIXEL NOISE, float vs double")
	tw := newTab(w)
	fmt.Fprintln(tw, "Solver\tPrec\tσ=0\tσ=0.1\tσ=0.5\tσ=1\tσ=2")
	for _, s := range fig5Solvers() {
		for _, prec := range []string{"f32", "f64"} {
			row := fmt.Sprintf("%s\t%s", s.Name, prec)
			for _, noise := range []float64{0, 0.1, 0.5, 1, 2} {
				if p, ok := r.APoint(s.Name, prec, noise); ok {
					row += fmt.Sprintf("\t%.3f", p.RotErrDeg)
				} else {
					row += "\t-"
				}
			}
			fmt.Fprintln(tw, row)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)

	header(w, "FIG 5b,c — SOLVER CYCLES (kcycles) AND PEAK POWER (mW) AT 0.1 px NOISE")
	tw = newTab(w)
	fmt.Fprintln(tw, "Solver\tPrec\tcyc M4\tcyc M33\tcyc M7\tP M4\tP M33\tP M7")
	for _, s := range fig5Solvers() {
		for _, prec := range []string{"f32", "f64"} {
			m4, _ := r.BCPoint(s.Name, prec, "M4")
			m33, _ := r.BCPoint(s.Name, prec, "M33")
			m7, _ := r.BCPoint(s.Name, prec, "M7")
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\n",
				s.Name, prec, fmtSI(m4.CyclesK), fmtSI(m33.CyclesK), fmtSI(m7.CyclesK),
				m4.PeakMW, m33.PeakMW, m7.PeakMW)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)

	header(w, "FIG 5d,e,f — LO-RANSAC: ITERATIONS, CYCLES (Mcycles), PEAK POWER (25% outliers)")
	tw = newTab(w)
	fmt.Fprintln(tw, "Inner solver\tIters\tcyc M4\tcyc M33\tcyc M7\tP M4\tP M33\tP M7")
	for _, s := range []string{"up2pt", "up3pt", "u3pt", "5pt"} {
		m4, _ := r.DEFPoint(s, "M4")
		m33, _ := r.DEFPoint(s, "M33")
		m7, _ := r.DEFPoint(s, "M7")
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\t%.2f\t%.0f\t%.0f\t%.0f\n",
			s, m4.Iterations, m4.CyclesM, m33.CyclesM, m7.CyclesM,
			m4.PeakMW, m33.PeakMW, m7.PeakMW)
	}
	tw.Flush()
}
