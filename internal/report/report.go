// Package report regenerates the paper's tables and figures from the
// suite: the static metrics of Table III, the dynamic characterization
// of Table IV, the architecture inventory of Table V, and the four case
// studies (Table VI/Fig 3, Table VII/Fig 4, Table VIII, Fig 5). Each
// generator returns structured data (consumed by tests and the
// EXPERIMENTS.md writer) and can render itself as a text table.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// fmtSI renders a value the way the paper's tables do: "26K" for
// thousands, "2M" for millions, plain decimals below.
func fmtSI(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fK", v/1e3)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// newTab builds the shared table writer.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", len(title)))
}
