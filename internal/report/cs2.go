package report

import (
	"fmt"
	"io"

	"repro/internal/attitude"
	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/imu"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// CS2 datasets: the three maneuver profiles of the attitude study.
func cs2Datasets() map[string][]imu.Record {
	return map[string][]imu.Record{
		"bee-hover":     imu.Simulate(imu.HoverTrajectory(0.12, 0.1, 2), 3, 400, imu.DefaultNoise(), 21),
		"strider-line":  imu.Simulate(imu.StriderLineTrajectory(5, 0.08), 3, 400, imu.DefaultNoise(), 22),
		"strider-steer": imu.Simulate(imu.StriderSteerTrajectory(5, 0.08, 12), 3, 400, imu.DefaultNoise(), 23),
	}
}

// cs2Filters enumerates the filter/mode combinations of Fig 4.
type cs2Filter struct {
	Name string
	Mode attitude.Mode
}

func cs2IMUFilters() []cs2Filter {
	return []cs2Filter{{"mahony", attitude.IMUOnly}, {"madgwick", attitude.IMUOnly}}
}

func cs2MARGFilters() []cs2Filter {
	return []cs2Filter{{"mahony", attitude.MARG}, {"madgwick", attitude.MARG}, {"fourati", attitude.MARG}}
}

func newFilter[T scalar.Real[T]](like T, f cs2Filter) attitude.Filter[T] {
	switch f.Name {
	case "mahony":
		return attitude.NewMahony(like, f.Mode, 2.0, 0.02)
	case "madgwick":
		return attitude.NewMadgwick(like, f.Mode, 0.12)
	default:
		return attitude.NewFourati(like, 0.8, 1e-3)
	}
}

// attitudeRun drives a filter over a record stream and reports per-run
// op counts plus the Fig 4 failure statistics.
type attitudeRun struct {
	Counts      profile.Counts // total over the stream
	Updates     int
	FailureRate float64 // failing updates / total (Fig 4's metric)
	MeanErrDeg  float64
}

func runAttitude[T scalar.Real[T]](like T, f cs2Filter, recs []imu.Record) attitudeRun {
	filter := newFilter(like, f)
	fixed.ResetStatus()
	var run attitudeRun
	var prevDiag attitude.Diag
	var prevFix fixed.Status
	var errSum float64
	var errN int
	counts := profile.Collect(func() {
		for i, r := range recs {
			// Standard fixed-point practice: the accelerometer is
			// prescaled to g units before filtering (the filters use
			// only its direction), so the squared-norm computation does
			// not saturate every format at once. Gyro stays in rad/s —
			// the unbounded unit the paper singles out as the
			// dynamic-range driver.
			scaled := r
			for k := 0; k < 3; k++ {
				scaled.Accel[k] = r.Accel[k] / imu.Gravity
			}
			filter.Update(imu.SampleAs(like, scaled))
			run.Updates++
			failed := false
			// Numeric failure events this update.
			d := filter.Diagnostics()
			if d.EarlyExits > prevDiag.EarlyExits || d.NormDrift > prevDiag.NormDrift {
				failed = true
			}
			prevDiag = d
			fs := fixed.CurrentStatus()
			if fs.Overflows > prevFix.Overflows || fs.ZeroDivides > prevFix.ZeroDivides || fs.SqrtNeg > prevFix.SqrtNeg {
				failed = true
			}
			prevFix = fs
			// Attitude-error failures once past initial convergence.
			if i > len(recs)/4 {
				q := filter.Quat()
				est := geom.QuatFromFloats(scalar.F64(0), q.W.Float(), q.X.Float(), q.Y.Float(), q.Z.Float())
				e := geom.QuatAngleDegrees(est, r.Truth)
				errSum += e
				errN++
				if e > 2.5 {
					failed = true
				}
			}
			if failed {
				run.FailureRate++
			}
		}
	})
	run.Counts = counts
	run.FailureRate /= float64(run.Updates)
	if errN > 0 {
		run.MeanErrDeg = errSum / float64(errN)
	}
	return run
}

// CS2Row is one Table VII row.
type CS2Row struct {
	Filter    string
	Mode      string
	Format    string // "f32" or "q7.24"
	LatencyUs map[string]float64
	EnergyNJ  map[string]float64
	PeakMW    map[string]float64
}

// CS2Result is Case Study #2: the precision-energy frontier.
type CS2Result struct {
	Rows []CS2Row
}

// RunCS2Table7 measures the filters in f32 and q7.24 on the M0+, M4,
// and M33 (per-update metrics).
func RunCS2Table7() CS2Result {
	recs := cs2Datasets()["bee-hover"]
	var out CS2Result
	combos := []cs2Filter{
		{"mahony", attitude.IMUOnly}, {"madgwick", attitude.IMUOnly},
		{"mahony", attitude.MARG}, {"madgwick", attitude.MARG},
		{"fourati", attitude.MARG},
	}
	for _, f := range combos {
		for _, format := range []string{"f32", "q7.24"} {
			var run attitudeRun
			prec := mcu.PrecF32
			if format == "f32" {
				run = runAttitude(scalar.F32(0), f, recs)
			} else {
				run = runAttitude(fixed.New(0, 24), f, recs)
				prec = mcu.PrecFixed
			}
			perUpdate := run.Counts.Scale(1 / float64(run.Updates))
			row := CS2Row{
				Filter: f.Name, Mode: f.Mode.String(), Format: format,
				LatencyUs: map[string]float64{},
				EnergyNJ:  map[string]float64{},
				PeakMW:    map[string]float64{},
			}
			for _, arch := range mcu.CaseStudy2Set() {
				est := arch.Estimate(perUpdate, prec, true)
				row.LatencyUs[arch.Name] = est.LatencyUs()
				row.EnergyNJ[arch.Name] = est.EnergyNJ()
				row.PeakMW[arch.Name] = est.PeakPowerMW()
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Row finds a Table VII row.
func (r CS2Result) Row(filter, mode, format string) (CS2Row, bool) {
	for _, row := range r.Rows {
		if row.Filter == filter && row.Mode == mode && row.Format == format {
			return row, true
		}
	}
	return CS2Row{}, false
}

// WriteTable7 renders the Table VII analogue.
func (r CS2Result) WriteTable7(w io.Writer) {
	header(w, "TABLE VII — ATTITUDE FILTERS: LATENCY (µs), ENERGY (nJ), PEAK POWER (mW)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Filter\tFormat\tlat M0+\tlat M4\tlat M33\tE M0+\tE M4\tE M33\tP M0+\tP M4\tP M33")
	for _, row := range r.Rows {
		mode := "I"
		if row.Mode == "MARG" {
			mode = "M"
		}
		fmt.Fprintf(tw, "%s (%s)\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\n",
			row.Filter, mode, row.Format,
			fmtSI(row.LatencyUs["M0+"]), fmtSI(row.LatencyUs["M4"]), fmtSI(row.LatencyUs["M33"]),
			fmtSI(row.EnergyNJ["M0+"]), fmtSI(row.EnergyNJ["M4"]), fmtSI(row.EnergyNJ["M33"]),
			row.PeakMW["M0+"], row.PeakMW["M4"], row.PeakMW["M33"])
	}
	tw.Flush()
}

// Fig4Point is one failure-rate sample: (dataset, filter, mode,
// fraction bits) → failure rate.
type Fig4Point struct {
	Dataset  string
	Filter   string
	Mode     string
	FracBits int
	Rate     float64
}

// Fig4Result is the fixed-point failure-rate sweep.
type Fig4Result struct {
	Points []Fig4Point
}

// RunFig4 sweeps the Q-format fraction bits across filters and datasets
// and records failure rates, as in Fig 4 of the paper. The sweep covers
// every viable format q(31-n).n for n in [2, 30] stepped by 2 to bound
// run time; pass step 1 for the full-resolution sweep.
func RunFig4(step int) Fig4Result {
	if step < 1 {
		step = 2
	}
	var out Fig4Result
	for dsName, recs := range cs2Datasets() {
		sets := []struct {
			filters []cs2Filter
		}{{cs2IMUFilters()}, {cs2MARGFilters()}}
		for _, set := range sets {
			for _, f := range set.filters {
				for frac := 2; frac <= 30; frac += step {
					run := runAttitude(fixed.New(0, uint8(frac)), f, recs)
					out.Points = append(out.Points, Fig4Point{
						Dataset: dsName, Filter: f.Name, Mode: f.Mode.String(),
						FracBits: frac, Rate: run.FailureRate,
					})
				}
			}
		}
	}
	return out
}

// Rate looks up one sweep point.
func (r Fig4Result) Rate(dataset, filter, mode string, frac int) (float64, bool) {
	for _, p := range r.Points {
		if p.Dataset == dataset && p.Filter == filter && p.Mode == mode && p.FracBits == frac {
			return p.Rate, true
		}
	}
	return 0, false
}

// WriteFig4 renders the sweep as per-(dataset, filter) failure-rate
// series.
func (r Fig4Result) WriteFig4(w io.Writer) {
	header(w, "FIG 4 — FIXED-POINT FAILURE RATE vs FRACTION BITS (q(31-n).n)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Dataset\tFilter\tMode\tFrac\tFailure rate")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.3f\n", p.Dataset, p.Filter, p.Mode, p.FracBits, p.Rate)
	}
	tw.Flush()
}
