// Package fixed implements a Qm.n fixed-point real number with a
// value-carried format, mirroring EntoBench's custom fixed-point scalar
// with full linear-algebra integration.
//
// A Num stores a 32-bit two's-complement fixed-point value (kept in an
// int64 so overflow can be detected rather than silently wrapped) together
// with its fraction-bit count. Carrying the format in the value — rather
// than in the type — is what lets Case Study #2's full Q-format sweep
// (Fig 4 of the paper) run a single generic kernel body across every
// format from Q30.1 to Q1.30.
//
// All arithmetic saturates on overflow and records the event in a Status
// block, because fixed-point failure *rates* (overflow, near-zero divisors,
// quaternion norm drift) are themselves a measured quantity in the paper.
package fixed

import (
	"fmt"
	"math"

	"repro/internal/profile"
)

// WordBits is the emulated machine word width. EntoBench targets 32-bit
// Cortex-M cores, so values saturate at int32 range.
const WordBits = 31 // magnitude bits: values live in [-2^31, 2^31-1]

const (
	maxRaw = int64(math.MaxInt32)
	minRaw = int64(math.MinInt32)
)

// Status accumulates fixed-point failure events. The attitude-estimation
// case study counts these to compute per-format failure rates.
type Status struct {
	Overflows   uint64 // saturating additions/multiplications
	ZeroDivides uint64 // divisions by (near-)zero
	SqrtNeg     uint64 // square roots of negative values
}

// Any reports whether any failure event has been recorded.
func (s Status) Any() bool { return s.Overflows+s.ZeroDivides+s.SqrtNeg > 0 }

// status is package-global for the same single-core reason profile is:
// kernel execution is single-goroutine.
var status Status

// ResetStatus clears the failure counters and returns the previous values.
func ResetStatus() Status {
	prev := status
	status = Status{}
	return prev
}

// CurrentStatus returns the failure counters accumulated since the last
// ResetStatus.
func CurrentStatus() Status { return status }

// Num is a fixed-point real. The zero value is 0 in Q31.0 format; most
// code should create values with New or FromFloat so the intended format
// is attached.
type Num struct {
	raw  int64 // fixed-point payload, valid range [minRaw, maxRaw]
	frac uint8 // number of fraction bits, 0..30
}

// New returns the fixed-point representation of x in Q(31-frac).frac
// format. Out-of-range values saturate and count as overflow.
func New(x float64, frac uint8) Num {
	if frac > 30 {
		frac = 30
	}
	scaled := x * float64(int64(1)<<frac)
	return Num{raw: clamp(int64(math.RoundToEven(scaled))), frac: frac}
}

// Raw returns the underlying integer payload.
func (a Num) Raw() int64 { return a.raw }

// FracBits returns the number of fraction bits in a's format.
func (a Num) FracBits() uint8 { return a.frac }

// Format describes a's Q-format, e.g. "q7.24".
func (a Num) Format() string { return fmt.Sprintf("q%d.%d", 31-int(a.frac), a.frac) }

// String renders the value and format.
func (a Num) String() string { return fmt.Sprintf("%g(%s)", a.Float(), a.Format()) }

// Float converts back to float64.
func (a Num) Float() float64 { return float64(a.raw) / float64(int64(1)<<a.frac) }

// FromFloat constructs x in the receiver's format. This is the generic
// scalar constructor: kernels thread a formatted sample value through and
// derive all constants from it, so one kernel body serves every format.
func (a Num) FromFloat(x float64) Num { return New(x, a.frac) }

func clamp(v int64) int64 {
	if v > maxRaw {
		status.Overflows++
		return maxRaw
	}
	if v < minRaw {
		status.Overflows++
		return minRaw
	}
	return v
}

// align brings b into a's format, rounding on right shifts. If the
// receiver carries no format (zero value) the other operand's format wins,
// which keeps expressions like acc.Add(x) working when acc started life as
// a bare zero.
func (a Num) align(b Num) (x, y int64, frac uint8) {
	frac = a.frac
	if frac == 0 && b.frac != 0 {
		frac = b.frac
	}
	x = shiftTo(a.raw, a.frac, frac)
	y = shiftTo(b.raw, b.frac, frac)
	return x, y, frac
}

func shiftTo(raw int64, from, to uint8) int64 {
	switch {
	case from == to:
		return raw
	case to > from:
		return clamp(raw << (to - from))
	default:
		sh := from - to
		// Round to nearest: add half an LSB before shifting.
		return (raw + (1 << (sh - 1))) >> sh
	}
}

// Modeled instruction-mix cost of each arithmetic operation, in integer
// ops. The hooked methods charge exactly these values, and mat's bulk
// fast paths use the same constants to charge whole loops analytically,
// so the two accountings cannot drift apart.
const (
	CostAdd  = 1 // saturating add
	CostSub  = 1 // saturating subtract
	CostMul  = 2 // wide multiply + renormalizing shift
	CostDiv  = 2 // pre-shift + 64/32 divide
	CostNeg  = 1
	CostAbs  = 1
	CostSqrt = 16 // integer Newton iteration on the widened radicand
)

// Add returns a+b, saturating. Cost: one integer op.
func (a Num) Add(b Num) Num {
	profile.AddI(CostAdd)
	return a.AddQuiet(b)
}

// AddQuiet is Add without the profiler hook — identical numerics and
// Status side effects. The bulk fast paths in internal/mat run their
// inner loops on the Quiet variants and charge the aggregate mix in one
// call, using the Cost constants above.
func (a Num) AddQuiet(b Num) Num {
	x, y, f := a.align(b)
	return Num{raw: clamp(x + y), frac: f}
}

// Sub returns a-b, saturating.
func (a Num) Sub(b Num) Num {
	profile.AddI(CostSub)
	return a.SubQuiet(b)
}

// SubQuiet is Sub without the profiler hook.
func (a Num) SubQuiet(b Num) Num {
	x, y, f := a.align(b)
	return Num{raw: clamp(x - y), frac: f}
}

// Mul returns a*b. Fixed-point multiplication is a wide multiply followed
// by a renormalizing shift — the "shift back every multiply" cost the
// paper observes makes fixed point slower than hardware float on FPU
// cores. Cost: two integer ops (mul + shift).
func (a Num) Mul(b Num) Num {
	profile.AddI(CostMul)
	return a.MulQuiet(b)
}

// MulQuiet is Mul without the profiler hook.
func (a Num) MulQuiet(b Num) Num {
	x, y, f := a.align(b)
	wide := x * y // fits: both operands are 32-bit range
	if f > 0 {
		wide = (wide + (1 << (f - 1))) >> f
	}
	return Num{raw: clamp(wide), frac: f}
}

// Div returns a/b. Division by zero saturates toward the sign of a and
// records a ZeroDivides event. Cost: two integer ops (shift + divide).
func (a Num) Div(b Num) Num {
	profile.AddI(CostDiv)
	return a.DivQuiet(b)
}

// DivQuiet is Div without the profiler hook.
func (a Num) DivQuiet(b Num) Num {
	x, y, f := a.align(b)
	if y == 0 {
		status.ZeroDivides++
		if x >= 0 {
			return Num{raw: maxRaw, frac: f}
		}
		return Num{raw: minRaw, frac: f}
	}
	// Pre-shift the dividend so the quotient lands in the right format.
	// The widened dividend can exceed 32 bits; that is fine in int64 and
	// mirrors a 64/32 divide on the MCU.
	wide := x << f
	return Num{raw: clamp(wide / y), frac: f}
}

// Neg returns -a.
func (a Num) Neg() Num {
	profile.AddI(CostNeg)
	return a.NegQuiet()
}

// NegQuiet is Neg without the profiler hook.
func (a Num) NegQuiet() Num {
	return Num{raw: clamp(-a.raw), frac: a.frac}
}

// Abs returns |a|.
func (a Num) Abs() Num {
	profile.AddI(CostAbs)
	return a.AbsQuiet()
}

// AbsQuiet is Abs without the profiler hook.
func (a Num) AbsQuiet() Num {
	if a.raw < 0 {
		return Num{raw: clamp(-a.raw), frac: a.frac}
	}
	return a
}

// Sqrt returns the square root of a, computed with an integer Newton
// iteration on the widened radicand (the standard MCU idiom). Negative
// inputs record a SqrtNeg event and return 0. Cost modeled as 16 integer
// ops, approximating the iteration count of a 32-bit integer sqrt.
func (a Num) Sqrt() Num {
	profile.AddI(CostSqrt)
	return a.SqrtQuiet()
}

// SqrtQuiet is Sqrt without the profiler hook.
func (a Num) SqrtQuiet() Num {
	if a.raw < 0 {
		status.SqrtNeg++
		return Num{raw: 0, frac: a.frac}
	}
	if a.raw == 0 {
		return a
	}
	// sqrt(raw * 2^frac) gives the root already in a.frac format:
	// sqrt(v * 2^f) = sqrt(v) * 2^(f/2) * 2^(f/2) ... widened below.
	wide := uint64(a.raw) << a.frac
	r := isqrt64(wide)
	return Num{raw: clamp(int64(r)), frac: a.frac}
}

// isqrt64 is a non-restoring integer square root of a uint64.
func isqrt64(v uint64) uint64 {
	var res, bit uint64
	bit = 1 << 62
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// Less reports a < b. Cost: one branch/compare.
func (a Num) Less(b Num) bool {
	profile.AddB(1)
	return a.LessQuiet(b)
}

// LessQuiet is Less without the profiler hook.
func (a Num) LessQuiet(b Num) bool {
	x, y, _ := a.align(b)
	return x < y
}

// LessEq reports a <= b.
func (a Num) LessEq(b Num) bool {
	profile.AddB(1)
	return a.LessEqQuiet(b)
}

// LessEqQuiet is LessEq without the profiler hook.
func (a Num) LessEqQuiet(b Num) bool {
	x, y, _ := a.align(b)
	return x <= y
}

// IsZero reports whether the payload is exactly zero.
func (a Num) IsZero() bool { return a.raw == 0 }

// Eq reports exact payload equality after format alignment.
func (a Num) Eq(b Num) bool {
	x, y, _ := a.align(b)
	return x == y
}

// MaxValue returns the largest representable value in a's format.
func (a Num) MaxValue() Num { return Num{raw: maxRaw, frac: a.frac} }

// Eps returns one LSB in a's format — the quantization step.
func (a Num) Eps() Num { return Num{raw: 1, frac: a.frac} }
