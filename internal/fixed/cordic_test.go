package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/profile"
)

func TestSinCosAgainstLibm(t *testing.T) {
	for _, frac := range []uint8{16, 24, 28} {
		for x := -7.0; x <= 7.0; x += 0.1037 {
			a := New(x, frac)
			s, c := a.SinCos()
			// Quantized input: compare against sin of the quantized value.
			xq := a.Float()
			tol := 1e-5 + 4.0/float64(int64(1)<<frac)
			if math.Abs(s.Float()-math.Sin(xq)) > tol {
				t.Fatalf("frac %d: sin(%g) = %g, want %g", frac, xq, s.Float(), math.Sin(xq))
			}
			if math.Abs(c.Float()-math.Cos(xq)) > tol {
				t.Fatalf("frac %d: cos(%g) = %g, want %g", frac, xq, c.Float(), math.Cos(xq))
			}
		}
	}
}

func TestAtan2Quadrants(t *testing.T) {
	cases := [][2]float64{
		{1, 1}, {1, -1}, {-1, -1}, {-1, 1},
		{0, 1}, {1, 0}, {0, -1}, {-1, 0},
		{0.3, 2}, {-2, 0.1}, {1.5, -0.2},
	}
	for _, cse := range cases {
		y, x := cse[0], cse[1]
		got := Atan2Fixed(New(y, 24), New(x, 24)).Float()
		want := math.Atan2(y, x)
		d := math.Abs(got - want)
		// atan2(0,-1) may legitimately come back as -π instead of +π.
		if d > math.Pi {
			d = 2*math.Pi - d
		}
		if d > 1e-5 {
			t.Fatalf("atan2(%g, %g) = %g, want %g", y, x, got, want)
		}
	}
}

func TestAtan2Origin(t *testing.T) {
	if got := Atan2Fixed(New(0, 24), New(0, 24)).Float(); got != 0 {
		t.Fatalf("atan2(0,0) = %g", got)
	}
}

// Property: sin² + cos² = 1 within format precision.
func TestPropPythagorean(t *testing.T) {
	f := func(xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		x := math.Mod(xr, 6.28)
		a := New(x, 26)
		s, c := a.SinCos()
		sum := s.Float()*s.Float() + c.Float()*c.Float()
		return math.Abs(sum-1) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: atan2(sin θ, cos θ) recovers θ in (-π, π].
func TestPropAtan2Inverts(t *testing.T) {
	f := func(xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		theta := math.Mod(xr, 3.0) // stay away from the ±π seam
		a := New(theta, 26)
		s, c := a.SinCos()
		back := Atan2Fixed(s, c).Float()
		return math.Abs(back-a.Float()) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// CORDIC must be integer-only: no float ops recorded.
func TestCordicIsIntegerOnly(t *testing.T) {
	a := New(0.7, 24)
	c := profile.Collect(func() {
		_, _ = a.SinCos()
		_ = Atan2Fixed(a, a)
	})
	if c.F != 0 {
		t.Fatalf("CORDIC recorded %d float ops", c.F)
	}
	if c.I == 0 {
		t.Fatal("CORDIC recorded no integer ops")
	}
}
