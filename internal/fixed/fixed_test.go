package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndFloatRoundTrip(t *testing.T) {
	cases := []struct {
		x    float64
		frac uint8
	}{
		{0, 24}, {1, 24}, {-1, 24}, {3.25, 16}, {-7.5, 8},
		{0.0001, 30}, {100.625, 20}, {-63.99, 24},
	}
	for _, c := range cases {
		n := New(c.x, c.frac)
		eps := 1.0 / float64(int64(1)<<c.frac)
		if !approxEq(n.Float(), c.x, eps) {
			t.Errorf("New(%g, %d).Float() = %g, want within %g", c.x, c.frac, n.Float(), eps)
		}
	}
}

func TestFormatString(t *testing.T) {
	n := New(1.5, 24)
	if n.Format() != "q7.24" {
		t.Fatalf("Format = %q, want q7.24", n.Format())
	}
	if n.FracBits() != 24 {
		t.Fatalf("FracBits = %d", n.FracBits())
	}
}

func TestBasicArithmetic(t *testing.T) {
	a := New(3.5, 20)
	b := New(1.25, 20)
	if got := a.Add(b).Float(); !approxEq(got, 4.75, 1e-5) {
		t.Errorf("Add = %g", got)
	}
	if got := a.Sub(b).Float(); !approxEq(got, 2.25, 1e-5) {
		t.Errorf("Sub = %g", got)
	}
	if got := a.Mul(b).Float(); !approxEq(got, 4.375, 1e-5) {
		t.Errorf("Mul = %g", got)
	}
	if got := a.Div(b).Float(); !approxEq(got, 2.8, 1e-5) {
		t.Errorf("Div = %g", got)
	}
	if got := a.Neg().Float(); !approxEq(got, -3.5, 1e-5) {
		t.Errorf("Neg = %g", got)
	}
	if got := a.Neg().Abs().Float(); !approxEq(got, 3.5, 1e-5) {
		t.Errorf("Abs = %g", got)
	}
}

func TestSqrt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 4, 9, 10.5, 0.25, 100} {
		n := New(x, 20)
		got := n.Sqrt().Float()
		want := math.Sqrt(x)
		if !approxEq(got, want, 2e-3) {
			t.Errorf("Sqrt(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestSqrtNegativeRecordsFailure(t *testing.T) {
	ResetStatus()
	n := New(-4, 20)
	if got := n.Sqrt().Float(); got != 0 {
		t.Errorf("Sqrt(-4) = %g, want 0", got)
	}
	if s := CurrentStatus(); s.SqrtNeg != 1 {
		t.Errorf("SqrtNeg = %d, want 1", s.SqrtNeg)
	}
	ResetStatus()
}

func TestDivideByZeroSaturates(t *testing.T) {
	ResetStatus()
	a := New(5, 16)
	z := New(0, 16)
	pos := a.Div(z)
	if pos.Raw() != maxRaw {
		t.Errorf("5/0 raw = %d, want saturated max", pos.Raw())
	}
	neg := a.Neg().Div(z)
	if neg.Raw() != minRaw {
		t.Errorf("-5/0 raw = %d, want saturated min", neg.Raw())
	}
	if s := CurrentStatus(); s.ZeroDivides != 2 {
		t.Errorf("ZeroDivides = %d, want 2", s.ZeroDivides)
	}
	ResetStatus()
}

func TestOverflowSaturates(t *testing.T) {
	ResetStatus()
	// q1.30: dynamic range < 2. Multiplying large values overflows.
	big := New(1.9, 30)
	if big.Raw() != maxRaw { // 1.9 not representable in q1.30 (max ~1.99..)
		// representable; force overflow through addition instead
		r := big.Add(big)
		if r.Raw() != maxRaw {
			t.Errorf("1.9+1.9 in q1.30 raw = %d, want saturation", r.Raw())
		}
	}
	if s := CurrentStatus(); s.Overflows == 0 {
		t.Error("expected overflow events")
	}
	ResetStatus()
}

func TestFormatAlignment(t *testing.T) {
	a := New(1.5, 24)
	b := New(2.5, 16) // different format: aligned into a's
	got := a.Add(b)
	if !approxEq(got.Float(), 4.0, 1e-4) {
		t.Errorf("mixed-format add = %g", got.Float())
	}
	if got.FracBits() != 24 {
		t.Errorf("result frac = %d, want receiver's 24", got.FracBits())
	}
}

func TestZeroValueAdoptsOperandFormat(t *testing.T) {
	var acc Num // zero value, q31.0
	x := New(0.75, 24)
	acc = acc.Add(x)
	if acc.FracBits() != 24 {
		t.Fatalf("acc frac = %d, want 24", acc.FracBits())
	}
	if !approxEq(acc.Float(), 0.75, 1e-6) {
		t.Fatalf("acc = %g", acc.Float())
	}
}

func TestComparisons(t *testing.T) {
	a, b := New(1, 20), New(2, 20)
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
	if !a.LessEq(a) {
		t.Error("LessEq reflexive failed")
	}
	if !a.Eq(New(1, 16)) {
		t.Error("cross-format Eq failed")
	}
	if !New(0, 12).IsZero() {
		t.Error("IsZero failed")
	}
}

func TestFromFloatPreservesFormat(t *testing.T) {
	a := New(0, 28)
	b := a.FromFloat(3.0)
	if b.FracBits() != 28 {
		t.Fatalf("frac = %d, want 28", b.FracBits())
	}
	if !approxEq(b.Float(), 3.0, 1e-7) {
		t.Fatalf("value = %g", b.Float())
	}
}

func TestEpsAndMaxValue(t *testing.T) {
	a := New(0, 24)
	if got := a.Eps().Float(); !approxEq(got, 1.0/(1<<24), 1e-12) {
		t.Errorf("Eps = %g", got)
	}
	if got := a.MaxValue().Float(); got < 127.9 || got > 128 {
		t.Errorf("q7.24 max = %g, want ~127.99", got)
	}
}

func TestFracClamp(t *testing.T) {
	n := New(1, 40) // frac clamped to 30
	if n.FracBits() != 30 {
		t.Fatalf("frac = %d, want 30", n.FracBits())
	}
}

// --- property-based tests ---

// inRange produces a value safely representable in q15.16.
func inRange(x float64) float64 {
	return math.Mod(x, 100)
}

func TestPropAddCommutes(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		a, b := New(inRange(x), 16), New(inRange(y), 16)
		return a.Add(b).Eq(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulCommutes(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		a, b := New(inRange(x), 16), New(inRange(y), 16)
		l, r := a.Mul(b), b.Mul(a)
		// Rounding is symmetric, so the products agree exactly.
		return l.Eq(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropNegIsInvolution(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		a := New(inRange(x), 16)
		return a.Neg().Neg().Eq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropQuantizationBound(t *testing.T) {
	f := func(x float64, fr uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		frac := fr % 31
		v := math.Mod(x, 10)
		// Skip formats whose dynamic range can't hold v.
		if math.Abs(v) >= float64(maxRaw)/float64(int64(1)<<frac) {
			return true
		}
		n := New(v, frac)
		eps := 1.0 / float64(int64(1)<<frac)
		return math.Abs(n.Float()-v) <= eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSqrtSquares(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := math.Abs(math.Mod(x, 50))
		n := New(v, 20)
		r := n.Sqrt().Float()
		return math.Abs(r*r-v) <= 0.01+0.01*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
