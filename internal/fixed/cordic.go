package fixed

import (
	"math"

	"repro/internal/profile"
)

// CORDIC trigonometry: genuine integer-only sin/cos/atan2 for the
// fixed-point scalar, as an FPU-less Cortex-M0+ build would ship.
// Internally everything runs in q2.29 (range ±4 comfortably covers ±π)
// regardless of the operand's format, then converts back.

const (
	cordicIters = 24
	cordicFrac  = 29
)

// cordicAtan[i] = atan(2^-i) in q2.29.
var cordicAtan = func() [cordicIters]int64 {
	var t [cordicIters]int64
	for i := range t {
		t[i] = int64(math.Round(math.Atan(math.Pow(2, -float64(i))) * float64(int64(1)<<cordicFrac)))
	}
	return t
}()

// cordicGain is 1/K = Π cos(atan(2^-i)) in q2.29 — the starting x for
// rotation mode so the output lands at unit magnitude.
var cordicGain = func() int64 {
	k := 1.0
	for i := 0; i < cordicIters; i++ {
		k *= math.Cos(math.Atan(math.Pow(2, -float64(i))))
	}
	return int64(math.Round(k * float64(int64(1)<<cordicFrac)))
}()

var (
	cordicPi     = int64(math.Round(math.Pi * float64(int64(1)<<cordicFrac)))
	cordicHalfPi = cordicPi / 2
	cordicTwoPi  = 2 * cordicPi
)

// toCordic converts a Num's payload to q2.29 *without* saturation — the
// widened intermediate lives in int64 (|raw| ≤ 2³¹ shifted by ≤ 29 bits
// still fits), so arbitrarily large angles survive until wrapAngle
// reduces them.
func toCordic(a Num) int64 {
	if a.frac >= cordicFrac {
		sh := a.frac - cordicFrac
		return (a.raw + (1 << (sh - 1))) >> sh
	}
	return a.raw << (cordicFrac - a.frac)
}

// fromCordic converts a q2.29 payload back to the target format.
func fromCordic(v int64, frac uint8) Num {
	return Num{raw: clamp(shiftTo(v, cordicFrac, frac)), frac: frac}
}

// wrapAngle reduces a q2.29 angle into (-π, π] with one modulo (the
// 64-bit division an MCU's runtime provides) plus boundary fixes.
func wrapAngle(x int64) int64 {
	x %= cordicTwoPi
	if x > cordicPi {
		x -= cordicTwoPi
	} else if x <= -cordicPi {
		x += cordicTwoPi
	}
	return x
}

// SinCos returns sin(a) and cos(a) via CORDIC rotation mode. Cost: ~3
// integer ops per iteration plus range reduction, matching the shift/add
// loop an MCU executes.
func (a Num) SinCos() (sin, cos Num) {
	profile.AddI(3*cordicIters + 8)
	profile.AddB(cordicIters + 4)

	z := wrapAngle(toCordic(a))
	negate := false
	// Reduce to [-π/2, π/2].
	if z > cordicHalfPi {
		z -= cordicPi
		negate = true
	} else if z < -cordicHalfPi {
		z += cordicPi
		negate = true
	}

	x := cordicGain
	y := int64(0)
	for i := 0; i < cordicIters; i++ {
		var dx, dy, dz int64
		if z >= 0 {
			dx = -(y >> uint(i))
			dy = x >> uint(i)
			dz = -cordicAtan[i]
		} else {
			dx = y >> uint(i)
			dy = -(x >> uint(i))
			dz = cordicAtan[i]
		}
		x += dx
		y += dy
		z += dz
	}
	if negate {
		x, y = -x, -y
	}
	return fromCordic(y, a.frac), fromCordic(x, a.frac)
}

// Sin returns sin(a) with integer-only CORDIC.
func (a Num) Sin() Num {
	s, _ := a.SinCos()
	return s
}

// Cos returns cos(a) with integer-only CORDIC.
func (a Num) Cos() Num {
	_, c := a.SinCos()
	return c
}

// Atan2 returns atan2(y, x) via CORDIC vectoring mode, in y's format.
func Atan2Fixed(y, x Num) Num {
	profile.AddI(3*cordicIters + 10)
	profile.AddB(cordicIters + 6)

	xv := toCordic(x)
	yv := toCordic(y)
	if xv == 0 && yv == 0 {
		return Num{raw: 0, frac: y.frac}
	}
	// Pre-rotate into the right half-plane.
	var zOff int64
	if xv < 0 {
		if yv >= 0 {
			zOff = cordicPi
		} else {
			zOff = -cordicPi
		}
		xv, yv = -xv, -yv
		// After negating both, the vector sits in the right half-plane
		// and the final angle is offset by ±π.
	}
	var z int64
	for i := 0; i < cordicIters; i++ {
		var dx, dy, dz int64
		if yv > 0 {
			dx = yv >> uint(i)
			dy = -(xv >> uint(i))
			dz = cordicAtan[i]
		} else {
			dx = -(yv >> uint(i))
			dy = xv >> uint(i)
			dz = -cordicAtan[i]
		}
		xv += dx
		yv += dy
		z += dz
	}
	return fromCordic(wrapAngle(z+zOff), y.frac)
}
