package image_test

import (
	"math"
	"testing"
	"testing/quick"

	img "repro/internal/image"
	"repro/internal/profile"
)

func gradient(w, h int) *img.Gray {
	g := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Pix[y*w+x] = uint8((x * 255) / (w - 1))
		}
	}
	return g
}

func TestAtSetClamped(t *testing.T) {
	g := img.NewGray(8, 8)
	g.Set(3, 4, 200)
	if g.At(3, 4) != 200 {
		t.Fatal("At/Set broken")
	}
	g.Set(0, 0, 10)
	g.Set(7, 7, 20)
	if g.AtClamped(-5, -5) != 10 {
		t.Errorf("AtClamped(-5,-5) = %d", g.AtClamped(-5, -5))
	}
	if g.AtClamped(100, 100) != 20 {
		t.Errorf("AtClamped(100,100) = %d", g.AtClamped(100, 100))
	}
}

func TestInBounds(t *testing.T) {
	g := img.NewGray(10, 10)
	if !g.InBounds(5, 5, 3) {
		t.Error("center should be in bounds")
	}
	if g.InBounds(2, 5, 3) || g.InBounds(5, 8, 3) {
		t.Error("margin violations should be out of bounds")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := gradient(16, 16)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) == 99 {
		t.Error("Clone aliases original")
	}
}

func TestBilinearExactOnGrid(t *testing.T) {
	g := gradient(32, 32)
	for _, p := range [][2]int{{0, 0}, {5, 7}, {30, 30}} {
		want := float64(g.At(p[0], p[1]))
		got := g.Bilinear(float64(p[0]), float64(p[1]))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Bilinear(%d,%d) = %g, want %g", p[0], p[1], got, want)
		}
	}
	// Midpoint of a linear ramp interpolates linearly.
	a, b := float64(g.At(10, 10)), float64(g.At(11, 10))
	got := g.Bilinear(10.5, 10)
	if math.Abs(got-(a+b)/2) > 0.5 {
		t.Errorf("Bilinear midpoint = %g, want %g", got, (a+b)/2)
	}
}

func TestGaussianBlurPreservesFlat(t *testing.T) {
	g := img.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	b := g.GaussianBlur(1.5)
	for i, p := range b.Pix {
		if int(p) < 126 || int(p) > 130 {
			t.Fatalf("flat image blurred to %d at %d", p, i)
		}
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	// Single bright pixel spreads; center attenuates.
	g := img.NewGray(31, 31)
	g.Set(15, 15, 255)
	b := g.GaussianBlur(2)
	if b.At(15, 15) >= 200 {
		t.Errorf("center still %d after blur", b.At(15, 15))
	}
	if b.At(15, 13) == 0 {
		t.Error("blur did not spread energy")
	}
	// Energy roughly preserved (integer rounding loses a little).
	var before, after int
	for _, p := range g.Pix {
		before += int(p)
	}
	for _, p := range b.Pix {
		after += int(p)
	}
	if after < before/4 {
		t.Errorf("blur lost too much energy: %d -> %d", before, after)
	}
}

func TestDownsampleAndPyramid(t *testing.T) {
	g := gradient(64, 64)
	d := g.Downsample2x()
	if d.W != 32 || d.H != 32 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	// Mean preserved by box filtering.
	if math.Abs(g.Mean()-d.Mean()) > 2 {
		t.Errorf("means diverge: %g vs %g", g.Mean(), d.Mean())
	}
	pyr := g.Pyramid(4)
	if len(pyr) != 4 {
		t.Fatalf("pyramid has %d levels", len(pyr))
	}
	if pyr[3].W != 8 {
		t.Errorf("level 3 width %d, want 8", pyr[3].W)
	}
	// Pyramid stops before degenerate sizes.
	small := img.NewGray(20, 20)
	p2 := small.Pyramid(10)
	if len(p2) > 2 {
		t.Errorf("tiny image produced %d levels", len(p2))
	}
}

func TestGradientAt(t *testing.T) {
	g := gradient(32, 32) // horizontal ramp
	gx, gy := g.GradientAt(16, 16)
	if gx <= 0 {
		t.Errorf("gx = %d on increasing ramp", gx)
	}
	if gy != 0 {
		t.Errorf("gy = %d on horizontal ramp", gy)
	}
}

func TestIntegralImage(t *testing.T) {
	g := img.NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = 1
	}
	it := img.NewIntegral(g)
	if got := it.BoxSum(0, 0, 8, 8); got != 64 {
		t.Errorf("full box sum = %d, want 64", got)
	}
	if got := it.BoxSum(2, 2, 5, 6); got != 12 {
		t.Errorf("3x4 box sum = %d, want 12", got)
	}
	if got := it.BoxSum(3, 3, 3, 3); got != 0 {
		t.Errorf("empty box sum = %d", got)
	}
}

func TestPixelAccessIsProfiled(t *testing.T) {
	g := gradient(16, 16)
	c := profile.Collect(func() {
		_ = g.At(1, 1)
		g.Set(2, 2, 5)
		_ = g.AtClamped(-1, -1)
	})
	if c.M < 3 {
		t.Errorf("pixel accesses recorded %d M ops, want >= 3", c.M)
	}
}

// Property: integral box sums match brute-force sums.
func TestPropIntegralMatchesBruteForce(t *testing.T) {
	g := gradient(16, 12)
	it := img.NewIntegral(g)
	f := func(a, b, c, d uint8) bool {
		x0, x1 := int(a)%16, int(b)%16
		y0, y1 := int(c)%12, int(d)%12
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		var want uint32
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += uint32(g.Pix[y*g.W+x])
			}
		}
		return it.BoxSum(x0, y0, x1, y1) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bilinear sampling stays within the convex hull of pixel
// values.
func TestPropBilinearBounded(t *testing.T) {
	g := gradient(16, 16)
	f := func(xr, yr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) || math.IsNaN(yr) || math.IsInf(yr, 0) {
			return true
		}
		x := math.Mod(math.Abs(xr), 15)
		y := math.Mod(math.Abs(yr), 15)
		v := g.Bilinear(x, y)
		return v >= 0 && v <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
