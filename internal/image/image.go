// Package image provides the 8-bit grayscale image machinery the
// perception kernels run on: clamped access, separable Gaussian blur,
// image pyramids, bilinear sampling, gradients, and integral images.
//
// Everything is deliberately integer-first: on a Cortex-M the pixel
// pipeline stays in fixed-width integer arithmetic wherever possible
// (the paper notes fastbrief and orb are integer-only apart from their
// Gaussian blur), and every pixel access is charged to the profiler as a
// memory operation so the perception kernels report honest mixes.
package image

import (
	"fmt"

	"repro/internal/profile"
)

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []uint8 // row-major
}

// NewGray allocates a zeroed W×H image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y) with no bounds check, charging one
// memory op.
func (g *Gray) At(x, y int) uint8 {
	profile.AddM(1)
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y), charging one memory op.
func (g *Gray) Set(x, y int, v uint8) {
	profile.AddM(1)
	g.Pix[y*g.W+x] = v
}

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// image border — the standard MCU convolution boundary policy.
func (g *Gray) AtClamped(x, y int) uint8 {
	profile.AddM(1)
	profile.AddB(2)
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// InBounds reports whether (x, y) is inside the image with the given
// margin.
func (g *Gray) InBounds(x, y, margin int) bool {
	profile.AddB(2)
	return x >= margin && y >= margin && x < g.W-margin && y < g.H-margin
}

// Clone deep-copies the image.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	profile.AddM(uint64(2 * len(g.Pix)))
	return out
}

// Bilinear samples the image at fractional coordinates with bilinear
// interpolation, in 16.16 fixed-point arithmetic as an MCU would.
func (g *Gray) Bilinear(x, y float64) float64 {
	profile.AddM(4)
	profile.AddI(12)
	x0, y0 := int(x), int(y)
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x0 >= g.W-1 {
		x0 = g.W - 2
	}
	if y0 >= g.H-1 {
		y0 = g.H - 2
	}
	fx, fy := x-float64(x0), y-float64(y0)
	if fx < 0 {
		fx = 0
	} else if fx > 1 {
		fx = 1
	}
	if fy < 0 {
		fy = 0
	} else if fy > 1 {
		fy = 1
	}
	p00 := float64(g.Pix[y0*g.W+x0])
	p10 := float64(g.Pix[y0*g.W+x0+1])
	p01 := float64(g.Pix[(y0+1)*g.W+x0])
	p11 := float64(g.Pix[(y0+1)*g.W+x0+1])
	top := p00 + fx*(p10-p00)
	bot := p01 + fx*(p11-p01)
	return top + fy*(bot-top)
}

// atClampedRaw is AtClamped without the profiler hooks; bulk loops that
// account through a profile.Region use it and charge the aggregate mix
// themselves.
func (g *Gray) atClampedRaw(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// GaussianBlur returns a blurred copy using a separable integer kernel
// scaled to 8-bit weights, the classic embedded implementation.
//
// The convolution is the hottest per-pixel loop in the perception
// kernels, so it accounts in bulk through a profile.Region: the inner
// taps run hook-free and each pass charges the exact per-pixel mix the
// hooked loop would have — taps×(M1+B2) for the clamped loads, 2·taps
// integer MACs, and M1 for the store — in one flush.
func (g *Gray) GaussianBlur(sigma float64) *Gray {
	k := gaussKernel(sigma)
	r := len(k) / 2
	reg := profile.Region()
	defer reg.Close()
	taps := uint64(len(k))
	n := uint64(g.W) * uint64(g.H)
	perPass := profile.Counts{M: n * (taps + 1), I: n * 2 * taps, B: n * 2 * taps}
	wsum := 0
	for _, w := range k {
		wsum += w
	}
	// Horizontal pass: clamp only in the left/right borders; the
	// interior runs a branch-free tap loop. The weighted sums are
	// integer and identical either way.
	tmp := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := y * g.W
		x := 0
		for ; x < g.W && x < r; x++ {
			tmp.Pix[row+x] = g.convClampedH(k, r, wsum, x, y)
		}
		for ; x+r < g.W; x++ {
			acc := 0
			base := row + x - r
			for i, w := range k {
				acc += w * int(g.Pix[base+i])
			}
			tmp.Pix[row+x] = uint8(acc / wsum)
		}
		for ; x < g.W; x++ {
			tmp.Pix[row+x] = g.convClampedH(k, r, wsum, x, y)
		}
	}
	reg.AddCounts(perPass)
	// Vertical pass: same split across top/bottom border rows.
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := y * g.W
		if y >= r && y+r < g.H {
			for x := 0; x < g.W; x++ {
				acc := 0
				base := (y-r)*g.W + x
				for i, w := range k {
					acc += w * int(tmp.Pix[base+i*g.W])
				}
				out.Pix[row+x] = uint8(acc / wsum)
			}
		} else {
			for x := 0; x < g.W; x++ {
				out.Pix[row+x] = tmp.convClampedV(k, r, wsum, x, y)
			}
		}
	}
	reg.AddCounts(perPass)
	return out
}

// convClampedH computes one horizontally convolved pixel with border
// clamping.
func (g *Gray) convClampedH(k []int, r, wsum, x, y int) uint8 {
	acc := 0
	for i := -r; i <= r; i++ {
		acc += k[i+r] * int(g.atClampedRaw(x+i, y))
	}
	return uint8(acc / wsum)
}

// convClampedV computes one vertically convolved pixel with border
// clamping.
func (g *Gray) convClampedV(k []int, r, wsum, x, y int) uint8 {
	acc := 0
	for i := -r; i <= r; i++ {
		acc += k[i+r] * int(g.atClampedRaw(x, y+i))
	}
	return uint8(acc / wsum)
}

// gaussKernel builds an integer Gaussian kernel with radius ceil(2.5σ)
// and weights scaled so the center is 256.
func gaussKernel(sigma float64) []int {
	if sigma < 0.3 {
		sigma = 0.3
	}
	r := int(2.5*sigma + 0.5)
	if r < 1 {
		r = 1
	}
	k := make([]int, 2*r+1)
	for i := -r; i <= r; i++ {
		x := float64(i) / sigma
		w := 256.0 * gaussExp(-0.5*x*x)
		k[i+r] = int(w + 0.5)
		if k[i+r] == 0 {
			k[i+r] = 1
		}
	}
	return k
}

// gaussExp is exp(x) for x <= 0 via a short series — keeps the package
// free of math imports in its hot path and mirrors lookup-table practice.
func gaussExp(x float64) float64 {
	// exp(x) = 1/exp(-x); compute exp(-x) for -x >= 0 with a Padé-ish
	// repeated-squaring approximation.
	nx := -x
	n := 1.0 + nx/64
	n = n * n
	n = n * n
	n = n * n
	n = n * n
	n = n * n
	n = n * n
	return 1 / n
}

// Downsample2x returns the half-resolution image (2×2 box filter), the
// pyramid level construction used by SIFT and pyramidal LK.
func (g *Gray) Downsample2x() *Gray {
	out := NewGray(g.W/2, g.H/2)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			s := int(g.At(2*x, 2*y)) + int(g.At(2*x+1, 2*y)) +
				int(g.At(2*x, 2*y+1)) + int(g.At(2*x+1, 2*y+1))
			profile.AddI(4)
			out.Set(x, y, uint8(s/4))
		}
	}
	return out
}

// Pyramid builds levels-deep image pyramid; level 0 is the original.
func (g *Gray) Pyramid(levels int) []*Gray {
	pyr := make([]*Gray, 0, levels)
	cur := g
	for l := 0; l < levels; l++ {
		pyr = append(pyr, cur)
		if cur.W < 16 || cur.H < 16 {
			break
		}
		cur = cur.Downsample2x()
	}
	return pyr
}

// GradientAt returns the central-difference gradient at (x, y); callers
// guarantee a 1-pixel margin.
func (g *Gray) GradientAt(x, y int) (gx, gy int) {
	profile.AddM(4)
	profile.AddI(2)
	gx = int(g.Pix[y*g.W+x+1]) - int(g.Pix[y*g.W+x-1])
	gy = int(g.Pix[(y+1)*g.W+x]) - int(g.Pix[(y-1)*g.W+x])
	return gx, gy
}

// Integral is a summed-area table: I(x, y) = sum of pixels in [0,x)×[0,y).
type Integral struct {
	W, H int
	Sum  []uint32
}

// NewIntegral computes the integral image of g.
func NewIntegral(g *Gray) *Integral {
	w, h := g.W+1, g.H+1
	it := &Integral{W: w, H: h, Sum: make([]uint32, w*h)}
	for y := 1; y < h; y++ {
		var row uint32
		for x := 1; x < w; x++ {
			row += uint32(g.Pix[(y-1)*g.W+x-1])
			it.Sum[y*w+x] = it.Sum[(y-1)*w+x] + row
		}
	}
	profile.AddI(uint64(3 * g.W * g.H))
	profile.AddM(uint64(3 * g.W * g.H))
	return it
}

// BoxSum returns the sum of pixels in the rectangle [x0,x1)×[y0,y1).
func (it *Integral) BoxSum(x0, y0, x1, y1 int) uint32 {
	profile.AddM(4)
	profile.AddI(3)
	return it.Sum[y1*it.W+x1] - it.Sum[y0*it.W+x1] - it.Sum[y1*it.W+x0] + it.Sum[y0*it.W+x0]
}

// String describes the image dimensions.
func (g *Gray) String() string { return fmt.Sprintf("Gray(%dx%d)", g.W, g.H) }

// Mean returns the average pixel intensity.
func (g *Gray) Mean() float64 {
	var s uint64
	for _, p := range g.Pix {
		s += uint64(p)
	}
	return float64(s) / float64(len(g.Pix))
}
