package mat

import (
	"repro/internal/scalar"
)

// Poly is a dense univariate polynomial; element i is the coefficient of
// x^i. The pose solvers build these symbolically and extract real roots.
type Poly[T scalar.Real[T]] []T

// PolyFromFloats builds a polynomial in like's format.
func PolyFromFloats[T scalar.Real[T]](like T, coeffs []float64) Poly[T] {
	out := make(Poly[T], len(coeffs))
	for i, c := range coeffs {
		out[i] = like.FromFloat(c)
	}
	return out
}

// Degree returns the index of the highest nonzero coefficient.
func (p Poly[T]) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if !p[i].IsZero() {
			return i
		}
	}
	return 0
}

// Eval evaluates p at x with Horner's scheme.
func (p Poly[T]) Eval(x T) T {
	var acc T
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p[i])
	}
	return acc
}

// Derivative returns p'.
func (p Poly[T]) Derivative() Poly[T] {
	if len(p) <= 1 {
		return Poly[T]{}
	}
	out := make(Poly[T], len(p)-1)
	for i := 1; i < len(p); i++ {
		k := p[i].FromFloat(float64(i))
		out[i-1] = p[i].Mul(k)
	}
	return out
}

// MulPoly returns p·q.
func (p Poly[T]) MulPoly(q Poly[T]) Poly[T] {
	if len(p) == 0 || len(q) == 0 {
		return Poly[T]{}
	}
	out := make(Poly[T], len(p)+len(q)-1)
	for i, a := range p {
		if a.IsZero() {
			continue
		}
		for j, b := range q {
			out[i+j] = out[i+j].Add(a.Mul(b))
		}
	}
	return out
}

// AddPoly returns p+q.
func (p Poly[T]) AddPoly(q Poly[T]) Poly[T] {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly[T], n)
	for i := range out {
		var v T
		if i < len(p) {
			v = v.Add(p[i])
		}
		if i < len(q) {
			v = v.Add(q[i])
		}
		out[i] = v
	}
	return out
}

// SubPoly returns p-q.
func (p Poly[T]) SubPoly(q Poly[T]) Poly[T] {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly[T], n)
	for i := range out {
		var v T
		if i < len(p) {
			v = v.Add(p[i])
		}
		if i < len(q) {
			v = v.Sub(q[i])
		}
		out[i] = v
	}
	return out
}

// ScalePoly returns s·p.
func (p Poly[T]) ScalePoly(s T) Poly[T] {
	out := make(Poly[T], len(p))
	for i, a := range p {
		out[i] = a.Mul(s)
	}
	return out
}

// RealRoots returns the real roots of p, found as the real eigenvalues of
// the companion matrix (the standard robust method) followed by two
// Newton polishing steps. The companion matrix is already Hessenberg, so
// the shifted-QR iteration applies directly — this mirrors how production
// minimal solvers extract roots of the degree-10 polynomial in the
// five-point algorithm.
func (p Poly[T]) RealRoots() Vec[T] {
	d := p.Degree()
	if d == 0 {
		return nil
	}
	like := p[d]
	one := scalar.One(like)
	if d == 1 {
		// a1 x + a0 = 0
		return Vec[T]{p[0].Neg().Div(p[1])}
	}
	if d == 2 {
		return solveQuadratic(p[2], p[1], p[0])
	}
	// Companion matrix of the monic normalization.
	inv := one.Div(p[d])
	c := Zeros[T](d, d)
	for i := 0; i < d; i++ {
		c.Set(0, i, p[d-1-i].Neg().Mul(inv))
	}
	for i := 1; i < d; i++ {
		c.Set(i, i-1, one)
	}
	eig := HessenbergEigen(c)
	eps := EpsOf(like)
	var scale T
	for i := range eig.Re {
		scale = scalar.Max(scale, scalar.Max(eig.Re[i].Abs(), eig.Im[i].Abs()))
	}
	tol := eps.Mul(like.FromFloat(1e5)).Mul(scalar.Max(scale, one))
	dp := p.Derivative()
	var roots Vec[T]
	for i := range eig.Re {
		if !eig.Im[i].Abs().LessEq(tol) {
			continue
		}
		r := eig.Re[i]
		// Newton polish.
		for it := 0; it < 3; it++ {
			f := p.Eval(r)
			fp := dp.Eval(r)
			if fp.IsZero() {
				break
			}
			r = r.Sub(f.Div(fp))
		}
		roots = append(roots, r)
	}
	return roots
}

// solveQuadratic returns the real roots of a·x² + b·x + c.
func solveQuadratic[T scalar.Real[T]](a, b, c T) Vec[T] {
	zero := scalar.Zero(a)
	two := a.FromFloat(2)
	four := a.FromFloat(4)
	if a.IsZero() {
		if b.IsZero() {
			return nil
		}
		return Vec[T]{c.Neg().Div(b)}
	}
	disc := b.Mul(b).Sub(four.Mul(a).Mul(c))
	if disc.Less(zero) {
		return nil
	}
	sq := disc.Sqrt()
	// Numerically stable form: q = -(b + sign(b)·sqrt(disc))/2.
	var q T
	if b.Less(zero) {
		q = b.Sub(sq).Neg().Div(two)
	} else {
		q = b.Add(sq).Neg().Div(two)
	}
	if q.IsZero() {
		return Vec[T]{zero}
	}
	return Vec[T]{q.Div(a), c.Div(q)}
}

// SolveQuadratic exposes the stable quadratic solver.
func SolveQuadratic[T scalar.Real[T]](a, b, c T) Vec[T] { return solveQuadratic(a, b, c) }

// SolveCubic returns the real roots of x³ + a·x² + b·x + c via the
// companion path (degree is low enough that the QR iteration is cheap and
// the code stays branch-free across precisions).
func SolveCubic[T scalar.Real[T]](a, b, c T) Vec[T] {
	one := scalar.One(a)
	p := Poly[T]{c, b, a, one}
	return p.RealRoots()
}

// SolveQuartic returns the real roots of x⁴ + a·x³ + b·x² + c·x + d.
func SolveQuartic[T scalar.Real[T]](a, b, c, d T) Vec[T] {
	one := scalar.One(a)
	p := Poly[T]{d, c, b, a, one}
	return p.RealRoots()
}
