// Package mat provides dense linear algebra over the generic scalar
// family, replacing the Eigen dependency of the original EntoBench suite.
//
// Like Eigen in the paper's kernels, it supplies exactly the primitives
// the insect-scale pipeline needs — small dense matrices, LU/Cholesky/QR
// factorizations, Jacobi SVD, symmetric eigendecomposition, and real
// polynomial roots via companion-matrix QR iteration — and nothing more.
// Everything is generic over scalar.Real so one implementation serves
// float32, float64, and Q-format fixed point, and every element access is
// hooked into the profiler as a memory operation so kernels report honest
// F/I/M/B mixes.
//
// Matrices never allocate after construction; like the paper's kernels,
// callers preallocate and reuse, matching the no-dynamic-allocation design
// goal for resource-constrained platforms.
package mat

import (
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/scalar"
)

// Mat is a dense row-major matrix of T.
type Mat[T scalar.Real[T]] struct {
	rows, cols int
	d          []T
}

// New wraps data (row-major, length rows*cols) in a matrix. The slice is
// not copied.
func New[T scalar.Real[T]](rows, cols int, data []T) Mat[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: New(%d, %d) with %d elements", rows, cols, len(data)))
	}
	return Mat[T]{rows: rows, cols: cols, d: data}
}

// Zeros returns a rows×cols matrix of zero values. For fixed-point T the
// zeros carry no format until written; arithmetic against formatted
// operands adopts the operand's format.
func Zeros[T scalar.Real[T]](rows, cols int) Mat[T] {
	return Mat[T]{rows: rows, cols: cols, d: make([]T, rows*cols)}
}

// Identity returns the n×n identity with ones in like's format.
func Identity[T scalar.Real[T]](n int, like T) Mat[T] {
	m := Zeros[T](n, n)
	one := like.FromFloat(1)
	for i := 0; i < n; i++ {
		m.Set(i, i, one)
	}
	return m
}

// FromFloats builds a matrix from float64 rows, each value in like's
// format. All rows must have equal length.
func FromFloats[T scalar.Real[T]](like T, rows [][]float64) Mat[T] {
	r := len(rows)
	if r == 0 {
		return Mat[T]{}
	}
	c := len(rows[0])
	m := Zeros[T](r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows in FromFloats")
		}
		for j, v := range row {
			m.Set(i, j, like.FromFloat(v))
		}
	}
	return m
}

// Rows returns the row count.
func (m Mat[T]) Rows() int { return m.rows }

// Cols returns the column count.
func (m Mat[T]) Cols() int { return m.cols }

// At returns element (i, j), charging one memory op plus the index
// arithmetic a generic (non-unrolled) matrix library pays per access —
// the overhead Case Study #3 shows FLOP counting misses.
func (m Mat[T]) At(i, j int) T {
	profile.AddM(1)
	profile.AddI(1)
	return m.d[i*m.cols+j]
}

// Set writes element (i, j); cost accounting as At.
func (m Mat[T]) Set(i, j int, v T) {
	profile.AddM(1)
	profile.AddI(1)
	m.d[i*m.cols+j] = v
}

// Clone returns a deep copy.
func (m Mat[T]) Clone() Mat[T] {
	profile.AddM(uint64(len(m.d)))
	d := make([]T, len(m.d))
	copy(d, m.d)
	return Mat[T]{rows: m.rows, cols: m.cols, d: d}
}

// CopyFrom overwrites m with src's contents. Shapes must match.
func (m Mat[T]) CopyFrom(src Mat[T]) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("mat: CopyFrom shape mismatch")
	}
	profile.AddM(uint64(len(m.d)))
	copy(m.d, src.d)
}

// Transpose returns mᵀ as a new matrix.
func (m Mat[T]) Transpose() Mat[T] {
	if fastKernels() {
		return fastTranspose(m)
	}
	t := Zeros[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m+b.
func (m Mat[T]) Add(b Mat[T]) Mat[T] {
	m.checkSameShape(b)
	if fastKernels() {
		if d, ok := fastAddSlice[T](m.d, b.d); ok {
			return Mat[T]{rows: m.rows, cols: m.cols, d: d}
		}
	}
	out := Zeros[T](m.rows, m.cols)
	for i := range m.d {
		out.d[i] = m.d[i].Add(b.d[i])
	}
	profile.AddM(uint64(3 * len(m.d)))
	return out
}

// Sub returns m-b.
func (m Mat[T]) Sub(b Mat[T]) Mat[T] {
	m.checkSameShape(b)
	if fastKernels() {
		if d, ok := fastSubSlice[T](m.d, b.d); ok {
			return Mat[T]{rows: m.rows, cols: m.cols, d: d}
		}
	}
	out := Zeros[T](m.rows, m.cols)
	for i := range m.d {
		out.d[i] = m.d[i].Sub(b.d[i])
	}
	profile.AddM(uint64(3 * len(m.d)))
	return out
}

// Scale returns s·m.
func (m Mat[T]) Scale(s T) Mat[T] {
	if fastKernels() {
		if d, ok := fastScaleSlice[T](m.d, s); ok {
			return Mat[T]{rows: m.rows, cols: m.cols, d: d}
		}
	}
	out := Zeros[T](m.rows, m.cols)
	for i := range m.d {
		out.d[i] = m.d[i].Mul(s)
	}
	profile.AddM(uint64(2 * len(m.d)))
	return out
}

// Mul returns m·b.
func (m Mat[T]) Mul(b Mat[T]) Mat[T] {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if fastKernels() {
		if out, ok := fastMul(m, b); ok {
			return out
		}
	}
	out := Zeros[T](m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var acc T
			for k := 0; k < m.cols; k++ {
				acc = acc.Add(m.d[i*m.cols+k].Mul(b.d[k*b.cols+j]))
			}
			out.d[i*b.cols+j] = acc
		}
	}
	profile.AddM(uint64(2*m.rows*b.cols*m.cols + m.rows*b.cols))
	// Loop-carried index arithmetic and branch work per MAC.
	profile.AddI(uint64(m.rows * b.cols * m.cols))
	profile.AddB(uint64(m.rows * b.cols * (1 + m.cols/4)))
	return out
}

// MulVec returns m·v.
func (m Mat[T]) MulVec(v Vec[T]) Vec[T] {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	if fastKernels() {
		if out, ok := fastMulVec(m, v); ok {
			return out
		}
	}
	out := make(Vec[T], m.rows)
	for i := 0; i < m.rows; i++ {
		var acc T
		for k := 0; k < m.cols; k++ {
			acc = acc.Add(m.d[i*m.cols+k].Mul(v[k]))
		}
		out[i] = acc
	}
	profile.AddM(uint64(2*m.rows*m.cols + m.rows))
	profile.AddB(uint64(m.rows))
	return out
}

// Row returns a copy of row i as a vector.
func (m Mat[T]) Row(i int) Vec[T] {
	out := make(Vec[T], m.cols)
	profile.AddM(uint64(2 * m.cols))
	copy(out, m.d[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j as a vector.
func (m Mat[T]) Col(j int) Vec[T] {
	out := make(Vec[T], m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetRow overwrites row i with v.
func (m Mat[T]) SetRow(i int, v Vec[T]) {
	if len(v) != m.cols {
		panic("mat: SetRow length mismatch")
	}
	profile.AddM(uint64(2 * m.cols))
	copy(m.d[i*m.cols:(i+1)*m.cols], v)
}

// SetCol overwrites column j with v.
func (m Mat[T]) SetCol(j int, v Vec[T]) {
	if len(v) != m.rows {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.Set(i, j, v[i])
	}
}

// SwapRows exchanges rows i and j in place.
func (m Mat[T]) SwapRows(i, j int) {
	if i == j {
		return
	}
	profile.AddM(uint64(4 * m.cols))
	ri := m.d[i*m.cols : (i+1)*m.cols]
	rj := m.d[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Submatrix returns the rows×cols block starting at (r0, c0) as a copy.
func (m Mat[T]) Submatrix(r0, c0, rows, cols int) Mat[T] {
	out := Zeros[T](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out.Set(i, j, m.At(r0+i, c0+j))
		}
	}
	return out
}

// SetSubmatrix writes block b into m starting at (r0, c0).
func (m Mat[T]) SetSubmatrix(r0, c0 int, b Mat[T]) {
	for i := 0; i < b.rows; i++ {
		for j := 0; j < b.cols; j++ {
			m.Set(r0+i, c0+j, b.At(i, j))
		}
	}
}

// Trace returns the sum of the diagonal.
func (m Mat[T]) Trace() T {
	var acc T
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		acc = acc.Add(m.At(i, i))
	}
	return acc
}

// FrobNorm returns the Frobenius norm.
func (m Mat[T]) FrobNorm() T {
	if fastKernels() {
		if v, ok := fastFrobSlice[T](m.d); ok {
			return v
		}
	}
	var acc T
	for _, v := range m.d {
		acc = acc.Add(v.Mul(v))
	}
	profile.AddM(uint64(len(m.d)))
	return acc.Sqrt()
}

// MaxAbs returns the largest absolute element value.
func (m Mat[T]) MaxAbs() T {
	if fastKernels() {
		if v, ok := fastMaxAbsSlice[T](m.d); ok {
			return v
		}
	}
	var best T
	for _, v := range m.d {
		a := v.Abs()
		if best.Less(a) {
			best = a
		}
	}
	profile.AddM(uint64(len(m.d)))
	return best
}

// Floats renders the matrix as float64 rows, mostly for tests and reports.
func (m Mat[T]) Floats() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		row := make([]float64, m.cols)
		for j := range row {
			row[j] = m.d[i*m.cols+j].Float()
		}
		out[i] = row
	}
	return out
}

// String renders a compact matrix dump.
func (m Mat[T]) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.d[i*m.cols+j].Float())
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func (m Mat[T]) checkSameShape(b Mat[T]) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// like returns a formatted sample element for deriving constants; the
// matrix must be non-empty.
func (m Mat[T]) like() T {
	var best T
	for _, v := range m.d {
		if !v.IsZero() {
			return v
		}
	}
	return best
}

// EpsOf probes the machine epsilon of T numerically: the largest e with
// 1+e ≠ 1 halved once. It works for floats and fixed point alike, letting
// iterative algorithms choose honest convergence thresholds per precision.
func EpsOf[T scalar.Real[T]](like T) T {
	one := like.FromFloat(1)
	half := like.FromFloat(0.5)
	e := one
	for i := 0; i < 80; i++ {
		ne := e.Mul(half)
		if one.Add(ne).Sub(one).IsZero() {
			return e
		}
		e = ne
	}
	return e
}
