package mat

import (
	"errors"

	"repro/internal/scalar"
)

// QR holds a Householder QR factorization A = Q·R for an m×n matrix with
// m >= n.
type QR[T scalar.Real[T]] struct {
	qr    Mat[T] // R in upper triangle, Householder vectors below
	rdiag Vec[T]
}

// QRDecompose factors a (m >= n) with Householder reflections.
func QRDecompose[T scalar.Real[T]](a Mat[T]) (*QR[T], error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, errors.New("mat: QR requires rows >= cols")
	}
	if fastKernels() {
		if f, ok := qrDecomposeFast(a); ok {
			return f, nil
		}
	}
	qr := a.Clone()
	rdiag := make(Vec[T], n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm T
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			nrm = nrm.Add(v.Mul(v))
		}
		nrm = nrm.Sqrt()
		if nrm.IsZero() {
			rdiag[k] = nrm
			continue
		}
		// Match the sign of the diagonal for stability.
		if qr.At(k, k).Less(scalar.Zero(nrm)) {
			nrm = nrm.Neg()
		}
		invN := scalar.One(nrm).Div(nrm)
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k).Mul(invN))
		}
		qr.Set(k, k, qr.At(k, k).Add(scalar.One(nrm)))
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s T
			for i := k; i < m; i++ {
				s = s.Add(qr.At(i, k).Mul(qr.At(i, j)))
			}
			s = s.Neg().Div(qr.At(k, k))
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j).Add(s.Mul(qr.At(i, k))))
			}
		}
		rdiag[k] = nrm.Neg()
	}
	return &QR[T]{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether every diagonal element of R is nonzero.
func (f *QR[T]) FullRank() bool {
	for _, d := range f.rdiag {
		if d.IsZero() {
			return false
		}
	}
	return true
}

// R returns the n×n upper-triangular factor.
func (f *QR[T]) R() Mat[T] {
	n := f.qr.Cols()
	r := Zeros[T](n, n)
	for i := 0; i < n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the m×n thin orthonormal factor.
func (f *QR[T]) Q() Mat[T] {
	m, n := f.qr.Rows(), f.qr.Cols()
	q := Zeros[T](m, n)
	for k := n - 1; k >= 0; k-- {
		q.Set(k, k, scalar.One(f.rdiag[k]))
		if f.qr.At(k, k).IsZero() {
			continue
		}
		for j := k; j < n; j++ {
			var s T
			for i := k; i < m; i++ {
				s = s.Add(f.qr.At(i, k).Mul(q.At(i, j)))
			}
			s = s.Neg().Div(f.qr.At(k, k))
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j).Add(s.Mul(f.qr.At(i, k))))
			}
		}
	}
	return q
}

// Solve returns the least-squares solution of A·x = b.
func (f *QR[T]) Solve(b Vec[T]) (Vec[T], error) {
	if !f.FullRank() {
		return nil, ErrSingular
	}
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, errors.New("mat: QR Solve length mismatch")
	}
	if fastKernels() {
		if x, ok := qrSolveFast(f, b); ok {
			return x, nil
		}
	}
	y := b.Clone()
	// Apply Householder reflectors: y = Qᵀ·b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k).IsZero() {
			continue
		}
		var s T
		for i := k; i < m; i++ {
			s = s.Add(f.qr.At(i, k).Mul(y[i]))
		}
		s = s.Neg().Div(f.qr.At(k, k))
		for i := k; i < m; i++ {
			y[i] = y[i].Add(s.Mul(f.qr.At(i, k)))
		}
	}
	// Back substitution with R.
	x := make(Vec[T], n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			acc = acc.Sub(f.qr.At(i, j).Mul(x[j]))
		}
		x[i] = acc.Div(f.rdiag[i])
	}
	return x, nil
}

// LeastSquares is the one-shot convenience: min |A·x - b|₂.
func LeastSquares[T scalar.Real[T]](a Mat[T], b Vec[T]) (Vec[T], error) {
	f, err := QRDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
