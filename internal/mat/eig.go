package mat

import (
	"sort"

	"repro/internal/scalar"
)

// SymEigResult holds an eigendecomposition A = V·diag(W)·Vᵀ of a
// symmetric matrix, eigenvalues descending.
type SymEigResult[T scalar.Real[T]] struct {
	W Vec[T] // eigenvalues, descending
	V Mat[T] // columns are eigenvectors
}

// SymEigen computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi method.
func SymEigen[T scalar.Real[T]](a Mat[T]) SymEigResult[T] {
	n := a.Rows()
	like := a.like()
	one := scalar.One(like)
	two := like.FromFloat(2)
	eps := EpsOf(like)
	tol := eps.Mul(like.FromFloat(8))

	m := a.Clone()
	v := Identity(n, like)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal magnitude.
		var off T
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off = off.Add(m.At(i, j).Abs())
			}
		}
		scale := m.MaxAbs()
		if off.LessEq(tol.Mul(scale)) || off.IsZero() {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq.Abs().LessEq(tol.Mul(scale)) {
					continue
				}
				theta := m.At(q, q).Sub(m.At(p, p)).Div(two.Mul(apq))
				var t T
				if theta.Less(scalar.Zero(theta)) {
					t = one.Neg().Div(theta.Neg().Add(one.Add(theta.Mul(theta)).Sqrt()))
				} else {
					t = one.Div(theta.Add(one.Add(theta.Mul(theta)).Sqrt()))
				}
				c := one.Div(one.Add(t.Mul(t)).Sqrt())
				s := c.Mul(t)
				// Apply rotation: m = Jᵀ m J on rows/cols p, q.
				for k := 0; k < n; k++ {
					mkp, mkq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c.Mul(mkp).Sub(s.Mul(mkq)))
					m.Set(k, q, s.Mul(mkp).Add(c.Mul(mkq)))
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c.Mul(mpk).Sub(s.Mul(mqk)))
					m.Set(q, k, s.Mul(mpk).Add(c.Mul(mqk)))
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c.Mul(vkp).Sub(s.Mul(vkq)))
					v.Set(k, q, s.Mul(vkp).Add(c.Mul(vkq)))
				}
			}
		}
	}

	w, wh := borrowVec[T](n)
	defer wh.put()
	for i := 0; i < n; i++ {
		w[i] = m.At(i, i)
	}
	// Sort descending.
	idx, idxh := borrowSlice[int](n)
	defer idxh.put()
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return w[idx[y]].Less(w[idx[x]]) })
	ws := make(Vec[T], n)
	vs := Zeros[T](n, n)
	for newJ, oldJ := range idx {
		ws[newJ] = w[oldJ]
		for i := 0; i < n; i++ {
			vs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return SymEigResult[T]{W: ws, V: vs}
}

// Eig holds real Schur eigenvalues as (re, im) pairs.
type Eig[T scalar.Real[T]] struct {
	Re Vec[T]
	Im Vec[T]
}

// HessenbergEigen computes all eigenvalues of an upper Hessenberg matrix
// with the Francis shifted-QR iteration (the classical "hqr" algorithm).
// It is the engine behind companion-matrix polynomial root finding, which
// the 5-point relative pose solver depends on. The input is consumed.
func HessenbergEigen[T scalar.Real[T]](h Mat[T]) Eig[T] {
	n := h.Rows()
	like := h.like()
	zero := scalar.Zero(like)
	half := like.FromFloat(0.5)
	eps := EpsOf(like)

	re := make(Vec[T], n)
	im := make(Vec[T], n)

	// Overall matrix norm for deflation tests.
	var anorm T
	for i := 0; i < n; i++ {
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < n; j++ {
			anorm = anorm.Add(h.At(i, j).Abs())
		}
	}
	if anorm.IsZero() {
		return Eig[T]{Re: re, Im: im}
	}

	nn := n - 1
	t := zero
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := h.At(l-1, l-1).Abs().Add(h.At(l, l).Abs())
				if s.IsZero() {
					s = anorm
				}
				if h.At(l, l-1).Abs().LessEq(eps.Mul(s)) {
					h.Set(l, l-1, zero)
					break
				}
			}
			x := h.At(nn, nn)
			if l == nn {
				// One real root found.
				re[nn] = x.Add(t)
				im[nn] = zero
				nn--
				break
			}
			y := h.At(nn-1, nn-1)
			w := h.At(nn, nn-1).Mul(h.At(nn-1, nn))
			if l == nn-1 {
				// Two roots found (real pair or complex conjugates).
				p := half.Mul(y.Sub(x))
				q := p.Mul(p).Add(w)
				z := q.Abs().Sqrt()
				x = x.Add(t)
				if zero.LessEq(q) {
					// Real pair.
					if p.Less(zero) {
						z = z.Neg()
					}
					z = p.Add(z)
					re[nn-1] = x.Add(z)
					re[nn] = re[nn-1]
					if !z.IsZero() {
						re[nn] = x.Sub(w.Div(z))
					}
					im[nn-1] = zero
					im[nn] = zero
				} else {
					re[nn-1] = x.Add(p)
					re[nn] = x.Add(p)
					im[nn-1] = z
					im[nn] = z.Neg()
				}
				nn -= 2
				break
			}
			if its == 60 {
				// No convergence; report what we have. The remaining
				// diagonal entries are the best available estimates.
				re[nn] = x.Add(t)
				im[nn] = zero
				nn--
				break
			}
			if its == 10 || its == 20 {
				// Exceptional shift.
				t = t.Add(x)
				for i := 0; i <= nn; i++ {
					h.Set(i, i, h.At(i, i).Sub(x))
				}
				s := h.At(nn, nn-1).Abs().Add(h.At(nn-1, nn-2).Abs())
				y = like.FromFloat(0.75).Mul(s)
				x = y
				w = like.FromFloat(-0.4375).Mul(s).Mul(s)
			}
			its++
			// Form the first column of (H - aI)(H - bI).
			var m int
			var p, q, r T
			for m = nn - 2; m >= l; m-- {
				z := h.At(m, m)
				rr := x.Sub(z)
				ss := y.Sub(z)
				p = rr.Mul(ss).Sub(w).Div(h.At(m+1, m)).Add(h.At(m, m+1))
				q = h.At(m+1, m+1).Sub(z).Sub(rr).Sub(ss)
				r = h.At(m+2, m+1)
				s := p.Abs().Add(q.Abs()).Add(r.Abs())
				if !s.IsZero() {
					p = p.Div(s)
					q = q.Div(s)
					r = r.Div(s)
				}
				if m == l {
					break
				}
				u := h.At(m, m-1).Abs().Mul(q.Abs().Add(r.Abs()))
				v := p.Abs().Mul(h.At(m-1, m-1).Abs().Add(z.Abs()).Add(h.At(m+1, m+1).Abs()))
				if u.LessEq(eps.Mul(v)) {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				h.Set(i, i-2, zero)
				if i != m+2 {
					h.Set(i, i-3, zero)
				}
			}
			// Double QR step on rows l..nn, columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = h.At(k, k-1)
					q = h.At(k+1, k-1)
					r = zero
					if k != nn-1 {
						r = h.At(k+2, k-1)
					}
					x = p.Abs().Add(q.Abs()).Add(r.Abs())
					if !x.IsZero() {
						p = p.Div(x)
						q = q.Div(x)
						r = r.Div(x)
					}
				}
				s := p.Mul(p).Add(q.Mul(q)).Add(r.Mul(r)).Sqrt()
				if p.Less(zero) {
					s = s.Neg()
				}
				if s.IsZero() {
					continue
				}
				if k == m {
					if l != m {
						h.Set(k, k-1, h.At(k, k-1).Neg())
					}
				} else {
					h.Set(k, k-1, s.Neg().Mul(x))
				}
				p = p.Add(s)
				x = p.Div(s)
				y = q.Div(s)
				z := r.Div(s)
				q = q.Div(p)
				r = r.Div(p)
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := h.At(k, j).Add(q.Mul(h.At(k+1, j)))
					if k != nn-1 {
						pp = pp.Add(r.Mul(h.At(k+2, j)))
						h.Set(k+2, j, h.At(k+2, j).Sub(pp.Mul(z)))
					}
					h.Set(k+1, j, h.At(k+1, j).Sub(pp.Mul(y)))
					h.Set(k, j, h.At(k, j).Sub(pp.Mul(x)))
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				// Column modification.
				for i := l; i <= mmin; i++ {
					pp := x.Mul(h.At(i, k)).Add(y.Mul(h.At(i, k+1)))
					if k != nn-1 {
						pp = pp.Add(z.Mul(h.At(i, k+2)))
						h.Set(i, k+2, h.At(i, k+2).Sub(pp.Mul(r)))
					}
					h.Set(i, k+1, h.At(i, k+1).Sub(pp.Mul(q)))
					h.Set(i, k, h.At(i, k).Sub(pp))
				}
			}
		}
	}
	return Eig[T]{Re: re, Im: im}
}

// RealEigenvalues returns the real eigenvalues of a general square matrix
// (imaginary part below tol·scale), via Hessenberg reduction + QR.
func RealEigenvalues[T scalar.Real[T]](a Mat[T]) Vec[T] {
	h := Hessenberg(a)
	eig := HessenbergEigen(h)
	like := a.like()
	eps := EpsOf(like)
	var scale T
	for i := range eig.Re {
		scale = scalar.Max(scale, scalar.Max(eig.Re[i].Abs(), eig.Im[i].Abs()))
	}
	tol := eps.Mul(like.FromFloat(1e6)).Mul(scalar.Max(scale, scalar.One(like)))
	// Pre-sized to the worst case (every eigenvalue real), so the append
	// loop allocates exactly once.
	out := make(Vec[T], 0, len(eig.Re))
	for i := range eig.Re {
		if eig.Im[i].Abs().LessEq(tol) {
			out = append(out, eig.Re[i])
		}
	}
	return out
}

// Hessenberg reduces a to upper Hessenberg form with Gaussian elimination
// and pivoting (companion matrices pass through unchanged).
func Hessenberg[T scalar.Real[T]](a Mat[T]) Mat[T] {
	n := a.Rows()
	h := a.Clone()
	zero := scalar.Zero(a.like())
	for m := 1; m < n-1; m++ {
		// Pivot: largest magnitude in column m-1 below row m.
		var x T
		i0 := m
		for j := m; j < n; j++ {
			if x.Abs().Less(h.At(j, m-1).Abs()) {
				x = h.At(j, m-1)
				i0 = j
			}
		}
		if i0 != m {
			h.SwapRows(i0, m)
			// Swap columns too to preserve eigenvalues.
			for k := 0; k < n; k++ {
				t := h.At(k, i0)
				h.Set(k, i0, h.At(k, m))
				h.Set(k, m, t)
			}
		}
		if !x.IsZero() {
			for i := m + 1; i < n; i++ {
				y := h.At(i, m-1)
				if y.IsZero() {
					continue
				}
				y = y.Div(x)
				h.Set(i, m-1, y)
				for j := m; j < n; j++ {
					h.Set(i, j, h.At(i, j).Sub(y.Mul(h.At(m, j))))
				}
				for j := 0; j < n; j++ {
					h.Set(j, m, h.At(j, m).Add(y.Mul(h.At(j, i))))
				}
			}
		}
	}
	// Zero the sub-subdiagonal multipliers stored during elimination.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			h.Set(i, j, zero)
		}
	}
	return h
}
