package mat

import (
	"sort"

	"repro/internal/scalar"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with singular values sorted in descending order.
type SVDResult[T scalar.Real[T]] struct {
	U Mat[T] // m×n, orthonormal columns
	S Vec[T] // n singular values, descending
	V Mat[T] // n×n orthogonal
}

// SVD computes the thin SVD of an m×n matrix with m >= n using one-sided
// Jacobi rotations — the method of choice for the small, well-conditioned
// systems in pose estimation, and the one that ports cleanly to every
// scalar precision. For m < n, decompose the transpose and swap U/V.
func SVD[T scalar.Real[T]](a Mat[T]) SVDResult[T] {
	m, n := a.Rows(), a.Cols()
	if m < n {
		r := SVD(a.Transpose())
		return SVDResult[T]{U: r.V, S: r.S, V: r.U}
	}
	if fastKernels() {
		if r, ok := svdFast(a); ok {
			return r
		}
	}
	like := a.like()
	one := scalar.One(like)
	two := like.FromFloat(2)
	eps := EpsOf(like)
	tol := eps.Mul(like.FromFloat(8))

	u := a.Clone()
	v := Identity(n, like)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries over columns p and q.
				var app, aqq, apq T
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app = app.Add(up.Mul(up))
					aqq = aqq.Add(uq.Mul(uq))
					apq = apq.Add(up.Mul(uq))
				}
				// Converged for this pair if |apq| <= tol*sqrt(app*aqq).
				thresh := tol.Mul(app.Mul(aqq).Sqrt())
				if apq.Abs().LessEq(thresh) {
					continue
				}
				converged = false
				// Jacobi rotation annihilating apq.
				zeta := aqq.Sub(app).Div(two.Mul(apq))
				var t T
				if zeta.Less(scalar.Zero(zeta)) {
					t = one.Neg().Div(zeta.Neg().Add(one.Add(zeta.Mul(zeta)).Sqrt()))
				} else {
					t = one.Div(zeta.Add(one.Add(zeta.Mul(zeta)).Sqrt()))
				}
				c := one.Div(one.Add(t.Mul(t)).Sqrt())
				s := c.Mul(t)
				// Rotate columns p, q of U and V.
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c.Mul(up).Sub(s.Mul(uq)))
					u.Set(i, q, s.Mul(up).Add(c.Mul(uq)))
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c.Mul(vp).Sub(s.Mul(vq)))
					v.Set(i, q, s.Mul(vp).Add(c.Mul(vq)))
				}
			}
		}
		if converged {
			break
		}
	}

	// Singular values are the column norms of the rotated U.
	s, sh := borrowVec[T](n)
	defer sh.put()
	for j := 0; j < n; j++ {
		var acc T
		for i := 0; i < m; i++ {
			x := u.At(i, j)
			acc = acc.Add(x.Mul(x))
		}
		s[j] = acc.Sqrt()
		if !s[j].IsZero() {
			inv := one.Div(s[j])
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j).Mul(inv))
			}
		}
	}

	// Sort descending by singular value (permute U, S, V consistently).
	idx, idxh := borrowSlice[int](n)
	defer idxh.put()
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return s[idx[y]].Less(s[idx[x]]) })
	us := Zeros[T](m, n)
	vs := Zeros[T](n, n)
	ss := make(Vec[T], n)
	for newJ, oldJ := range idx {
		ss[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			us.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return SVDResult[T]{U: us, S: ss, V: vs}
}

// NullVector returns the right-singular vector with the smallest singular
// value — the standard "solve A·x ≈ 0, |x| = 1" primitive behind DLT, the
// 8-point algorithm, and homography estimation.
func NullVector[T scalar.Real[T]](a Mat[T]) Vec[T] {
	return NullSpace(a, 1)[0]
}

// NullSpace returns the k right-singular vectors with the smallest
// singular values (ascending by singular value). For wide matrices
// (rows < cols) — the minimal-solver case, where the null space is the
// whole point — it diagonalizes the n×n Gram matrix AᵀA instead, since
// the thin SVD of the transpose does not carry those directions.
func NullSpace[T scalar.Real[T]](a Mat[T], k int) []Vec[T] {
	n := a.Cols()
	out := make([]Vec[T], 0, k)
	if a.Rows() >= n {
		r := SVD(a)
		for i := 0; i < k; i++ {
			out = append(out, r.V.Col(n-1-i))
		}
		return out
	}
	gram := a.Transpose().Mul(a)
	eig := SymEigen(gram) // eigenvalues descending
	for i := 0; i < k; i++ {
		out = append(out, eig.V.Col(n-1-i))
	}
	return out
}
