package mat

// Tests for the scratch arenas behind the solver temporaries: the loan
// contract (zeroed, correctly sized, make-fallback for unpooled types),
// goroutine isolation under concurrent solves (run with -race in CI),
// and the allocations-per-solve budget the arenas exist to enforce.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/scalar"
)

func TestBorrowSliceZeroedAndSized(t *testing.T) {
	// Dirty a borrowed buffer, return it, and borrow across a range of
	// sizes: every loan must come back zeroed at exactly the requested
	// length regardless of what the pool recycled.
	for _, n := range []int{1, 3, 8, 64, 5, 200, 7} {
		s, h := borrowSlice[scalar.F64](n)
		if len(s) != n {
			t.Fatalf("borrowSlice(%d): len = %d", n, len(s))
		}
		for i := range s {
			if s[i] != 0 {
				t.Fatalf("borrowSlice(%d): element %d not zeroed: %v", n, i, s[i])
			}
			s[i] = scalar.F64(i + 1)
		}
		h.put()
	}
	// Same contract for the int pool used by sort permutations.
	a, ha := borrowSlice[int](16)
	for i := range a {
		a[i] = i * i
	}
	ha.put()
	b, hb := borrowSlice[int](4)
	defer hb.put()
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled int buffer not zeroed at %d: %d", i, v)
		}
	}
}

func TestBorrowSliceUnpooledFallback(t *testing.T) {
	// Element types outside the built-in scalar family get a plain make
	// and a no-op handle; put must not panic.
	type custom struct{ a, b float64 }
	s, h := borrowSlice[custom](9)
	if len(s) != 9 {
		t.Fatalf("fallback len = %d", len(s))
	}
	h.put()
	h.put() // zero handle stays a no-op on double put
}

// TestScratchGoroutineIsolation hammers the arena-backed solvers from
// many goroutines at once — the -j8 sweep's access pattern — while each
// goroutine checks its results against a serially computed answer. A
// shared scratch buffer would corrupt a result or trip the race
// detector (CI runs this suite under -race).
func TestScratchGoroutineIsolation(t *testing.T) {
	const n = 6
	var g lcg
	a := FromFloats(scalar.F64(0), spd(&g, n))
	bvals := make([]float64, n)
	for i := range bvals {
		bvals[i] = g.next()
	}
	rhs := VecFromFloats(scalar.F64(0), bvals)
	c, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Solve(rhs)

	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				// Each iteration exercises both arena consumers: the
				// triangular-solve intermediate and the SVD sort scratch.
				got := c.Solve(rhs)
				for i := range want {
					if got[i] != want[i] {
						errs <- "Cholesky solve diverged across goroutines"
						return
					}
				}
				r := SVD(a)
				for j := 1; j < len(r.S); j++ {
					if r.S[j-1].Less(r.S[j]) {
						errs <- "SVD singular values out of order under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSolveAllocBudget pins the allocation count of the hot solve path.
// With the scratch arena the only allocation a Cholesky solve may make
// is the returned x vector; a regression that reintroduces per-call
// temporaries fails the budget.
func TestSolveAllocBudget(t *testing.T) {
	if !fastKernels() {
		t.Skip("reference kernels active; budget pins the fast path")
	}
	const n = 8
	var g lcg
	a := FromFloats(scalar.F32(0), spd(&g, n))
	bvals := make([]float64, n)
	for i := range bvals {
		bvals[i] = g.next()
	}
	rhs := VecFromFloats(scalar.F32(0), bvals)
	c, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	c.Solve(rhs) // warm the pool before counting
	allocs := testing.AllocsPerRun(100, func() { c.Solve(rhs) })
	// 1 for the returned x; 1 of slack for a pool refill after a GC
	// that empties the arena mid-run.
	if allocs > 2 {
		t.Fatalf("Cholesky.Solve allocates %.1f times per call, budget is 2", allocs)
	}
}
