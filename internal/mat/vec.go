package mat

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/scalar"
)

// Vec is a dense vector of T.
type Vec[T scalar.Real[T]] []T

// VecFromFloats builds a vector with every element in like's format.
func VecFromFloats[T scalar.Real[T]](like T, xs []float64) Vec[T] {
	out := make(Vec[T], len(xs))
	for i, x := range xs {
		out[i] = like.FromFloat(x)
	}
	return out
}

// ZeroVec returns a zero vector of length n.
func ZeroVec[T scalar.Real[T]](n int) Vec[T] { return make(Vec[T], n) }

// Clone returns a copy of v.
func (v Vec[T]) Clone() Vec[T] {
	profile.AddM(uint64(2 * len(v)))
	out := make(Vec[T], len(v))
	copy(out, v)
	return out
}

// Add returns v+b.
func (v Vec[T]) Add(b Vec[T]) Vec[T] {
	v.checkLen(b)
	if fastKernels() {
		if d, ok := fastAddSlice[T](v, b); ok {
			return d
		}
	}
	out := make(Vec[T], len(v))
	for i := range v {
		out[i] = v[i].Add(b[i])
	}
	profile.AddM(uint64(3 * len(v)))
	return out
}

// Sub returns v-b.
func (v Vec[T]) Sub(b Vec[T]) Vec[T] {
	v.checkLen(b)
	if fastKernels() {
		if d, ok := fastSubSlice[T](v, b); ok {
			return d
		}
	}
	out := make(Vec[T], len(v))
	for i := range v {
		out[i] = v[i].Sub(b[i])
	}
	profile.AddM(uint64(3 * len(v)))
	return out
}

// Scale returns s·v.
func (v Vec[T]) Scale(s T) Vec[T] {
	if fastKernels() {
		if d, ok := fastScaleSlice[T](v, s); ok {
			return d
		}
	}
	out := make(Vec[T], len(v))
	for i := range v {
		out[i] = v[i].Mul(s)
	}
	profile.AddM(uint64(2 * len(v)))
	return out
}

// AddScaled returns v + s·b without a temporary, the workhorse of the
// iterative solvers.
func (v Vec[T]) AddScaled(s T, b Vec[T]) Vec[T] {
	v.checkLen(b)
	if fastKernels() {
		if d, ok := fastAddScaledSlice[T](v, s, b); ok {
			return d
		}
	}
	out := make(Vec[T], len(v))
	for i := range v {
		out[i] = v[i].Add(s.Mul(b[i]))
	}
	profile.AddM(uint64(3 * len(v)))
	return out
}

// Dot returns v·b.
func (v Vec[T]) Dot(b Vec[T]) T {
	v.checkLen(b)
	if fastKernels() {
		if d, ok := fastDotSlice[T](v, b); ok {
			return d
		}
	}
	var acc T
	for i := range v {
		acc = acc.Add(v[i].Mul(b[i]))
	}
	profile.AddM(uint64(2 * len(v)))
	return acc
}

// Norm returns the Euclidean norm.
func (v Vec[T]) Norm() T { return v.Dot(v).Sqrt() }

// NormSq returns the squared Euclidean norm.
func (v Vec[T]) NormSq() T { return v.Dot(v) }

// Normalized returns v/|v|. A zero vector is returned unchanged.
func (v Vec[T]) Normalized() Vec[T] {
	n := v.Norm()
	if n.IsZero() {
		return v.Clone()
	}
	inv := scalar.One(n).Div(n)
	return v.Scale(inv)
}

// Neg returns -v.
func (v Vec[T]) Neg() Vec[T] {
	if fastKernels() {
		if d, ok := fastNegSlice[T](v); ok {
			return d
		}
	}
	out := make(Vec[T], len(v))
	for i := range v {
		out[i] = v[i].Neg()
	}
	profile.AddM(uint64(2 * len(v)))
	return out
}

// MaxAbs returns the largest absolute component.
func (v Vec[T]) MaxAbs() T {
	if fastKernels() {
		if d, ok := fastMaxAbsSlice[T](v); ok {
			return d
		}
	}
	var best T
	for _, x := range v {
		a := x.Abs()
		if best.Less(a) {
			best = a
		}
	}
	profile.AddM(uint64(len(v)))
	return best
}

// Cross returns the 3-vector cross product v×b.
func (v Vec[T]) Cross(b Vec[T]) Vec[T] {
	if len(v) != 3 || len(b) != 3 {
		panic("mat: Cross requires 3-vectors")
	}
	profile.AddM(12)
	return Vec[T]{
		v[1].Mul(b[2]).Sub(v[2].Mul(b[1])),
		v[2].Mul(b[0]).Sub(v[0].Mul(b[2])),
		v[0].Mul(b[1]).Sub(v[1].Mul(b[0])),
	}
}

// Outer returns the outer product v·bᵀ.
func (v Vec[T]) Outer(b Vec[T]) Mat[T] {
	m := Zeros[T](len(v), len(b))
	for i := range v {
		for j := range b {
			m.Set(i, j, v[i].Mul(b[j]))
		}
	}
	return m
}

// Floats converts to float64.
func (v Vec[T]) Floats() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x.Float()
	}
	return out
}

func (v Vec[T]) checkLen(b Vec[T]) {
	if len(v) != len(b) {
		panic(fmt.Sprintf("mat: vector length mismatch %d vs %d", len(v), len(b)))
	}
}
