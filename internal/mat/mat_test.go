package mat_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/scalar"
)

type F = scalar.F64

func f64mat(rows [][]float64) mat.Mat[F] { return mat.FromFloats(F(0), rows) }

func matClose(t *testing.T, got mat.Mat[F], want [][]float64, tol float64) {
	t.Helper()
	g := got.Floats()
	if len(g) != len(want) {
		t.Fatalf("rows = %d, want %d", len(g), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(g[i][j]-want[i][j]) > tol {
				t.Fatalf("(%d,%d) = %g, want %g (tol %g)\n%v", i, j, g[i][j], want[i][j], tol, g)
			}
		}
	}
}

func randMat(rng *rand.Rand, r, c int) mat.Mat[F] {
	m := mat.Zeros[F](r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, F(rng.NormFloat64()))
		}
	}
	return m
}

func TestBasicOps(t *testing.T) {
	a := f64mat([][]float64{{1, 2}, {3, 4}})
	b := f64mat([][]float64{{5, 6}, {7, 8}})
	matClose(t, a.Add(b), [][]float64{{6, 8}, {10, 12}}, 0)
	matClose(t, a.Sub(b), [][]float64{{-4, -4}, {-4, -4}}, 0)
	matClose(t, a.Mul(b), [][]float64{{19, 22}, {43, 50}}, 0)
	matClose(t, a.Scale(F(2)), [][]float64{{2, 4}, {6, 8}}, 0)
	matClose(t, a.Transpose(), [][]float64{{1, 3}, {2, 4}}, 0)
	if got := a.Trace().Float(); got != 5 {
		t.Errorf("Trace = %g", got)
	}
	if got := a.FrobNorm().Float(); math.Abs(got-math.Sqrt(30)) > 1e-14 {
		t.Errorf("FrobNorm = %g", got)
	}
	if got := a.MaxAbs().Float(); got != 4 {
		t.Errorf("MaxAbs = %g", got)
	}
}

func TestMulVecAndRowsCols(t *testing.T) {
	a := f64mat([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := mat.VecFromFloats(F(0), []float64{1, 0, -1})
	got := a.MulVec(v).Floats()
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	if r := a.Row(1).Floats(); r[0] != 4 || r[2] != 6 {
		t.Errorf("Row = %v", r)
	}
	if c := a.Col(2).Floats(); c[0] != 3 || c[1] != 6 {
		t.Errorf("Col = %v", c)
	}
}

func TestSubmatrixOps(t *testing.T) {
	a := f64mat([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Submatrix(1, 1, 2, 2)
	matClose(t, s, [][]float64{{5, 6}, {8, 9}}, 0)
	a.SetSubmatrix(0, 0, f64mat([][]float64{{0, 0}, {0, 0}}))
	if a.At(0, 0).Float() != 0 || a.At(1, 1).Float() != 0 || a.At(2, 2).Float() != 9 {
		t.Errorf("SetSubmatrix wrong: %v", a.Floats())
	}
}

func TestIdentityAndClone(t *testing.T) {
	i3 := mat.Identity(3, F(0))
	matClose(t, i3.Mul(i3), [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, 0)
	c := i3.Clone()
	c.Set(0, 0, F(5))
	if i3.At(0, 0).Float() != 1 {
		t.Error("Clone aliases original")
	}
}

func TestVecOps(t *testing.T) {
	v := mat.VecFromFloats(F(0), []float64{3, 4})
	if got := v.Norm().Float(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := v.Normalized().Norm().Float(); math.Abs(got-1) > 1e-15 {
		t.Errorf("Normalized norm = %g", got)
	}
	w := mat.VecFromFloats(F(0), []float64{1, -1})
	if got := v.Dot(w).Float(); got != -1 {
		t.Errorf("Dot = %g", got)
	}
	if got := v.AddScaled(F(2), w).Floats(); got[0] != 5 || got[1] != 2 {
		t.Errorf("AddScaled = %v", got)
	}
	a := mat.VecFromFloats(F(0), []float64{1, 0, 0})
	b := mat.VecFromFloats(F(0), []float64{0, 1, 0})
	if got := a.Cross(b).Floats(); got[2] != 1 || got[0] != 0 || got[1] != 0 {
		t.Errorf("Cross = %v", got)
	}
	o := a.Outer(b)
	if o.At(0, 1).Float() != 1 || o.At(1, 0).Float() != 0 {
		t.Errorf("Outer = %v", o.Floats())
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := f64mat([][]float64{{4, 3}, {6, 3}})
	x, err := mat.Solve(a, mat.VecFromFloats(F(0), []float64{10, 12}))
	if err != nil {
		t.Fatal(err)
	}
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2
	if math.Abs(x[0].Float()-1) > 1e-12 || math.Abs(x[1].Float()-2) > 1e-12 {
		t.Fatalf("Solve = %v", x.Floats())
	}
	if got := mat.Det(a).Float(); math.Abs(got-(-6)) > 1e-12 {
		t.Errorf("Det = %g", got)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		a := randMat(rng, n, n)
		inv, err := mat.Inverse(a)
		if err != nil {
			continue // singular random matrix, astronomically unlikely
		}
		prod := a.Mul(inv).Floats()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i][j]-want) > 1e-9 {
					t.Fatalf("trial %d: A·A⁻¹ (%d,%d) = %g", trial, i, j, prod[i][j])
				}
			}
		}
	}
}

func TestSingularDetection(t *testing.T) {
	a := f64mat([][]float64{{1, 2}, {2, 4}})
	if _, err := mat.LUDecompose(a); err == nil {
		t.Error("expected singular error")
	}
	if _, err := mat.Inverse(a); err == nil {
		t.Error("Inverse of singular should fail")
	}
}

func TestDet3MatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randMat(rng, 3, 3)
		d3 := mat.Det3(a).Float()
		dl := mat.Det(a).Float()
		if math.Abs(d3-dl) > 1e-10*math.Max(1, math.Abs(dl)) {
			t.Fatalf("Det3 = %g, Det = %g", d3, dl)
		}
	}
}

func TestCholesky(t *testing.T) {
	// SPD matrix: AᵀA + I.
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 4, 4)
	spd := a.Transpose().Mul(a).Add(mat.Identity(4, F(0)))
	ch, err := mat.CholeskyDecompose(spd)
	if err != nil {
		t.Fatal(err)
	}
	recon := ch.L().Mul(ch.L().Transpose())
	matClose(t, recon, spd.Floats(), 1e-10)
	b := mat.VecFromFloats(F(0), []float64{1, 2, 3, 4})
	x := ch.Solve(b)
	res := spd.MulVec(x).Sub(b)
	if res.Norm().Float() > 1e-10 {
		t.Fatalf("Cholesky solve residual %g", res.Norm().Float())
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := f64mat([][]float64{{1, 0}, {0, -1}})
	if _, err := mat.CholeskyDecompose(a); err == nil {
		t.Error("expected not-positive-definite error")
	}
}

func TestLDLT(t *testing.T) {
	// Symmetric indefinite but strongly regularized KKT-style matrix.
	a := f64mat([][]float64{
		{4, 1, 2},
		{1, -3, 0.5},
		{2, 0.5, -5},
	})
	f, err := mat.LDLTDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	b := mat.VecFromFloats(F(0), []float64{1, -2, 3})
	x := f.Solve(b)
	res := a.MulVec(x).Sub(b)
	if res.Norm().Float() > 1e-10 {
		t.Fatalf("LDLT residual %g", res.Norm().Float())
	}
}

func TestQRDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 6, 3)
	f, err := mat.QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	q, r := f.Q(), f.R()
	// Qᵀ·Q = I.
	qtq := q.Transpose().Mul(q).Floats()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq[i][j]-want) > 1e-10 {
				t.Fatalf("QᵀQ (%d,%d) = %g", i, j, qtq[i][j])
			}
		}
	}
	// Q·R = A.
	matClose(t, q.Mul(r), a.Floats(), 1e-10)
}

func TestLeastSquares(t *testing.T) {
	// Overdetermined consistent system: x = (1, 2).
	a := f64mat([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	b := mat.VecFromFloats(F(0), []float64{1, 2, 3, 4})
	x, err := mat.LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0].Float()-1) > 1e-12 || math.Abs(x[1].Float()-2) > 1e-12 {
		t.Fatalf("LeastSquares = %v", x.Floats())
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(5)
		n := 2 + rng.Intn(4)
		a := randMat(rng, m, n)
		res := mat.SVD(a)
		// Descending order.
		for i := 1; i < len(res.S); i++ {
			if res.S[i-1].Float() < res.S[i].Float()-1e-12 {
				t.Fatalf("singular values not descending: %v", res.S.Floats())
			}
		}
		// U·S·Vᵀ = A.
		k := len(res.S)
		sm := mat.Zeros[F](k, k)
		for i := 0; i < k; i++ {
			sm.Set(i, i, res.S[i])
		}
		recon := res.U.Mul(sm).Mul(res.V.Transpose())
		matClose(t, recon, a.Floats(), 1e-9)
		// VᵀV = I.
		vtv := res.V.Transpose().Mul(res.V).Floats()
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv[i][j]-want) > 1e-9 {
					t.Fatalf("VᵀV (%d,%d) = %g", i, j, vtv[i][j])
				}
			}
		}
	}
}

func TestNullVector(t *testing.T) {
	// Rank-2 3x3 matrix with null vector (1, 1, 1)/√3.
	a := f64mat([][]float64{{1, -1, 0}, {0, 1, -1}, {1, 0, -1}})
	nv := mat.NullVector(a)
	r := a.MulVec(nv)
	if r.Norm().Float() > 1e-10 {
		t.Fatalf("A·null = %v", r.Floats())
	}
	if math.Abs(nv.Norm().Float()-1) > 1e-10 {
		t.Fatalf("null vector not unit: %g", nv.Norm().Float())
	}
}

func TestSymEigen(t *testing.T) {
	a := f64mat([][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	res := mat.SymEigen(a)
	// A·v = λ·v for each pair.
	for j := 0; j < 3; j++ {
		v := res.V.Col(j)
		av := a.MulVec(v)
		lv := v.Scale(res.W[j])
		if av.Sub(lv).Norm().Float() > 1e-9 {
			t.Fatalf("eigpair %d residual %g", j, av.Sub(lv).Norm().Float())
		}
	}
	// Eigenvalues descending; trace preserved.
	sum := 0.0
	for i, w := range res.W.Floats() {
		sum += w
		if i > 0 && res.W[i-1].Float() < w-1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
	if math.Abs(sum-7) > 1e-10 {
		t.Fatalf("eigenvalue sum = %g, want trace 7", sum)
	}
}

func TestRealEigenvalues(t *testing.T) {
	// Matrix with known eigenvalues 1, 2, 3.
	a := f64mat([][]float64{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}})
	// Similarity transform to make it dense.
	p := f64mat([][]float64{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}})
	pinv, err := mat.Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	dense := p.Mul(a).Mul(pinv)
	eigs := mat.RealEigenvalues(dense).Floats()
	if len(eigs) != 3 {
		t.Fatalf("got %d real eigenvalues: %v", len(eigs), eigs)
	}
	found := map[int]bool{}
	for _, e := range eigs {
		for _, want := range []float64{1, 2, 3} {
			if math.Abs(e-want) < 1e-8 {
				found[int(want)] = true
			}
		}
	}
	if len(found) != 3 {
		t.Fatalf("eigenvalues %v, want {1,2,3}", eigs)
	}
}

func TestPolyEvalAndDerivative(t *testing.T) {
	// p(x) = 2 + 3x + x²
	p := mat.PolyFromFloats(F(0), []float64{2, 3, 1})
	if got := p.Eval(F(2)).Float(); got != 12 {
		t.Errorf("Eval = %g", got)
	}
	d := p.Derivative()
	if got := d.Eval(F(2)).Float(); got != 7 { // 3 + 2x at x=2
		t.Errorf("Derivative Eval = %g", got)
	}
	if p.Degree() != 2 {
		t.Errorf("Degree = %d", p.Degree())
	}
}

func TestPolyArithmetic(t *testing.T) {
	p := mat.PolyFromFloats(F(0), []float64{1, 1})  // 1 + x
	q := mat.PolyFromFloats(F(0), []float64{-1, 1}) // -1 + x
	prod := p.MulPoly(q)                            // x² - 1
	if got := prod.Eval(F(3)).Float(); got != 8 {
		t.Errorf("MulPoly Eval = %g", got)
	}
	sum := p.AddPoly(q) // 2x
	if got := sum.Eval(F(5)).Float(); got != 10 {
		t.Errorf("AddPoly Eval = %g", got)
	}
	diff := p.SubPoly(q) // 2
	if got := diff.Eval(F(100)).Float(); got != 2 {
		t.Errorf("SubPoly Eval = %g", got)
	}
	sc := p.ScalePoly(F(3))
	if got := sc.Eval(F(1)).Float(); got != 6 {
		t.Errorf("ScalePoly Eval = %g", got)
	}
}

func TestQuadraticRoots(t *testing.T) {
	roots := mat.SolveQuadratic(F(1), F(-3), F(2)).Floats() // (x-1)(x-2)
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	if !(near(roots, 1) && near(roots, 2)) {
		t.Fatalf("roots = %v, want 1 and 2", roots)
	}
	if r := mat.SolveQuadratic(F(1), F(0), F(1)); len(r) != 0 {
		t.Fatalf("x²+1 has no real roots, got %v", r.Floats())
	}
}

func near(roots []float64, want float64) bool {
	for _, r := range roots {
		if math.Abs(r-want) < 1e-9 {
			return true
		}
	}
	return false
}

func TestCubicAndQuarticRoots(t *testing.T) {
	// (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
	r := mat.SolveCubic(F(-6), F(11), F(-6)).Floats()
	for _, want := range []float64{1, 2, 3} {
		if !near(r, want) {
			t.Fatalf("cubic roots = %v, missing %g", r, want)
		}
	}
	// (x²-1)(x²-4) = x⁴ - 5x² + 4
	r4 := mat.SolveQuartic(F(0), F(-5), F(0), F(4)).Floats()
	for _, want := range []float64{-2, -1, 1, 2} {
		if !near(r4, want) {
			t.Fatalf("quartic roots = %v, missing %g", r4, want)
		}
	}
}

func TestHighDegreeRoots(t *testing.T) {
	// Degree-10 polynomial with roots ±1, ±2, ±3, ±4, ±5 — the shape the
	// five-point solver produces.
	p := mat.PolyFromFloats(F(0), []float64{1})
	for _, r := range []float64{1, -1, 2, -2, 3, -3, 4, -4, 5, -5} {
		p = p.MulPoly(mat.PolyFromFloats(F(0), []float64{-r, 1}))
	}
	roots := p.RealRoots().Floats()
	if len(roots) != 10 {
		t.Fatalf("got %d roots: %v", len(roots), roots)
	}
	for _, want := range []float64{1, -1, 2, -2, 3, -3, 4, -4, 5, -5} {
		if !near(roots, want) {
			t.Fatalf("missing root %g in %v", want, roots)
		}
	}
}

func TestMemoryOpAccounting(t *testing.T) {
	a := f64mat([][]float64{{1, 2}, {3, 4}})
	c := profile.Collect(func() {
		_ = a.Mul(a)
	})
	if c.M == 0 {
		t.Error("matrix multiply recorded no memory ops")
	}
	if c.F == 0 {
		t.Error("matrix multiply recorded no float ops")
	}
}

func TestEpsOf(t *testing.T) {
	e64 := mat.EpsOf(F(0)).Float()
	if e64 > 1e-15 || e64 < 1e-17 {
		t.Errorf("float64 eps = %g", e64)
	}
	e32 := mat.EpsOf(scalar.F32(0)).Float()
	if e32 > 1e-6 || e32 < 1e-8 {
		t.Errorf("float32 eps = %g", e32)
	}
	efx := mat.EpsOf(fixed.New(0, 16)).Float()
	if efx > 1.0/(1<<14) || efx <= 0 {
		t.Errorf("q15.16 eps = %g", efx)
	}
}

func TestFixedPointMatrixMath(t *testing.T) {
	like := fixed.New(0, 20)
	a := mat.FromFloats(like, [][]float64{{2, 0}, {0, 3}})
	b := mat.FromFloats(like, [][]float64{{1, 1}, {1, 1}})
	p := a.Mul(b).Floats()
	if math.Abs(p[0][0]-2) > 1e-4 || math.Abs(p[1][1]-3) > 1e-4 {
		t.Fatalf("fixed Mul = %v", p)
	}
	x, err := mat.Solve(a, mat.VecFromFloats(like, []float64{4, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0].Float()-2) > 1e-3 || math.Abs(x[1].Float()-3) > 1e-3 {
		t.Fatalf("fixed Solve = %v", x.Floats())
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestPropTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		a := randMat(r, 3, 4)
		b := randMat(r, 4, 2)
		lhs := a.Mul(b).Transpose().Floats()
		rhs := b.Transpose().Mul(a.Transpose()).Floats()
		for i := range lhs {
			for j := range lhs[i] {
				if math.Abs(lhs[i][j]-rhs[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A·B) = det(A)·det(B) for square matrices.
func TestPropDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 3, 3)
		b := randMat(r, 3, 3)
		lhs := mat.Det(a.Mul(b)).Float()
		rhs := mat.Det(a).Float() * mat.Det(b).Float()
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(1, math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SVD singular values of an orthogonal-ish rotation are all 1.
func TestPropRotationSingularValues(t *testing.T) {
	f := func(angle float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		c, s := math.Cos(angle), math.Sin(angle)
		rot := f64mat([][]float64{{c, -s}, {s, c}})
		sv := mat.SVD(rot).S.Floats()
		return math.Abs(sv[0]-1) < 1e-10 && math.Abs(sv[1]-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: solving A·x = b then computing A·x recovers b.
func TestPropSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 4, 4).Add(mat.Identity(4, F(0)).Scale(F(5)))
		b := mat.VecFromFloats(F(0), []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()})
		x, err := mat.Solve(a, b)
		if err != nil {
			return true
		}
		return a.MulVec(x).Sub(b).Norm().Float() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
