package mat

// Scratch arenas for solver temporaries.
//
// The factorization solvers allocate short-lived working vectors — the
// forward-substitution intermediate of a triangular solve, the column
// norms and permutation of an SVD sort — on every call. Inside the
// characterization harness those calls run thousands of times per
// sweep, and the per-call make churn showed up as a double-digit
// share of sweep time in the memory profile. The pools below let both
// the native fast paths (fast_fact.go, fast_svd.go) and the hooked
// generic solvers (chol.go, qr.go, svd.go, eig.go) borrow those
// temporaries instead.
//
// Only genuinely non-escaping buffers qualify: a slice that is returned
// to the caller or retained by a factorization struct (LU pivots, QR
// rdiag, the x of a solve) must stay a plain make. Borrowed slices are
// zeroed on loan, so swapping make for borrow never changes values —
// and it never changes op counts either, because allocation is not a
// hooked operation. The differential tests against the reference
// kernels therefore pin byte-identical counts across the change.
//
// Concurrency: sync.Pool hands each Get exclusive ownership of its
// buffer until the matching put, so concurrent solvers on different
// goroutines — the -j8 sweep — never share a scratch slice. The
// goroutine-isolation test in scratch_test.go runs this under -race.

import (
	"sync"

	"repro/internal/fixed"
	"repro/internal/scalar"
)

// One pool per built-in element type; each stores *[]T handles so a
// put boxes only a pointer (no per-cycle interface allocation).
var (
	scratchF32 sync.Pool // *[]scalar.F32
	scratchF64 sync.Pool // *[]scalar.F64
	scratchFix sync.Pool // *[]fixed.Num
	scratchInt sync.Pool // *[]int
)

// scratchHandle returns a borrowed buffer to its pool. The zero value
// is a no-op, covering element types outside the pooled family.
type scratchHandle struct {
	pool *sync.Pool
	buf  any // the *[]T handle to recycle
}

// put returns the buffer; the borrowed slice must not be used after.
func (h scratchHandle) put() {
	if h.pool != nil {
		h.pool.Put(h.buf)
	}
}

// scratchPoolFor selects the pool backing element type T, or nil when T
// is outside the built-in scalar family.
func scratchPoolFor[T any]() *sync.Pool {
	var z T
	switch any(z).(type) {
	case scalar.F32:
		return &scratchF32
	case scalar.F64:
		return &scratchF64
	case fixed.Num:
		return &scratchFix
	case int:
		return &scratchInt
	}
	return nil
}

// borrowSlice loans a zeroed length-n slice of T from the type's pool,
// growing the pooled buffer when needed. Element types without a pool
// fall back to a plain make with a no-op handle, so callers are generic
// over the whole scalar family.
func borrowSlice[T any](n int) ([]T, scratchHandle) {
	pool := scratchPoolFor[T]()
	if pool == nil {
		return make([]T, n), scratchHandle{}
	}
	var hp *[]T
	if h := pool.Get(); h != nil {
		hp = h.(*[]T)
	} else {
		hp = new([]T)
	}
	if cap(*hp) < n {
		*hp = make([]T, n)
	}
	s := (*hp)[:n]
	clear(s)
	return s, scratchHandle{pool: pool, buf: hp}
}

// borrowVec is borrowSlice for Vec-typed temporaries.
func borrowVec[T scalar.Real[T]](n int) (Vec[T], scratchHandle) {
	s, h := borrowSlice[T](n)
	return Vec[T](s), h
}
