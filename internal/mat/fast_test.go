package mat

// Differential tests for the bulk-accounting fast paths: every
// specialized operation is run twice — fast and with
// SetReferenceKernels(true) — and must produce bit-identical numeric
// results, byte-identical profile.Counts, identical errors, and (for
// fixed point) identical Status side effects, across all three built-in
// scalar types and across the data-dependent control-flow paths
// (pivot swaps, singular matrices, non-positive-definite inputs, zero
// Householder columns).

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fixed"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// lcg is a tiny deterministic value source; values are multiples of
// 1/64 in roughly [-2, 2] so they are exactly representable in every
// scalar type under test.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(int64(*g>>33)%257-128) / 64
}

func (g *lcg) mat(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		row := make([]float64, cols)
		for j := range row {
			row[j] = g.next()
		}
		out[i] = row
	}
	return out
}

func (g *lcg) vec(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// spd returns a symmetric positive-definite matrix: G·Gᵀ + n·I.
func spd(g *lcg, n int) [][]float64 {
	gm := g.mat(n, n)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			var s float64
			for k := 0; k < n; k++ {
				s += gm[i][k] * gm[j][k]
			}
			if i == j {
				s += float64(n)
			}
			out[i][j] = s
		}
	}
	return out
}

// bitsOf encodes a scalar so equality means bit-identity (format
// included for fixed point).
func bitsOf[T scalar.Real[T]](v T) uint64 {
	switch x := any(v).(type) {
	case scalar.F32:
		return uint64(math.Float32bits(float32(x)))
	case scalar.F64:
		return math.Float64bits(float64(x))
	case fixed.Num:
		return uint64(x.FracBits())<<40 | uint64(uint32(int32(x.Raw())))
	}
	panic("bitsOf: unsupported scalar")
}

func fingerprint[T scalar.Real[T]](vs []T) string {
	s := ""
	for _, v := range vs {
		s += fmt.Sprintf("%x.", bitsOf(v))
	}
	return s
}

// diffRun executes op once with the fast paths and once against the
// hooked reference oracle, asserting identical counts, fixed-point
// status, and fingerprints. op returns a fingerprint of every numeric
// output (and error text) it produced.
func diffRun(t *testing.T, name string, op func() string) {
	t.Helper()
	fixed.ResetStatus()
	var fastFP string
	fastCnt := profile.Collect(func() { fastFP = op() })
	fastStatus := fixed.ResetStatus()

	prev := SetReferenceKernels(true)
	var refFP string
	refCnt := profile.Collect(func() { refFP = op() })
	SetReferenceKernels(prev)
	refStatus := fixed.ResetStatus()

	if fastCnt != refCnt {
		t.Errorf("%s: counts diverge: fast=%+v reference=%+v", name, fastCnt, refCnt)
	}
	if fastStatus != refStatus {
		t.Errorf("%s: fixed-point status diverges: fast=%+v reference=%+v", name, fastStatus, refStatus)
	}
	if fastFP != refFP {
		t.Errorf("%s: results diverge:\nfast      %s\nreference %s", name, fastFP, refFP)
	}
}

func errFP(err error) string {
	if err == nil {
		return "ok"
	}
	return "err:" + err.Error()
}

// diffSuite exercises every specialized operation for one scalar type.
func diffSuite[T scalar.Real[T]](t *testing.T, like T) {
	g := lcg(12345)
	a := FromFloats(like, g.mat(5, 5))
	b := FromFloats(like, g.mat(5, 5))
	rect := FromFloats(like, g.mat(7, 4))
	v5 := VecFromFloats(like, g.vec(5))
	w5 := VecFromFloats(like, g.vec(5))
	v7 := VecFromFloats(like, g.vec(7))
	s := like.FromFloat(g.next())

	diffRun(t, "Mat.Add", func() string { return fingerprint(a.Add(b).d) })
	diffRun(t, "Mat.Sub", func() string { return fingerprint(a.Sub(b).d) })
	diffRun(t, "Mat.Scale", func() string { return fingerprint(a.Scale(s).d) })
	diffRun(t, "Mat.Mul", func() string { return fingerprint(a.Mul(b).d) })
	diffRun(t, "Mat.Mul/rect", func() string { return fingerprint(rect.Transpose().Mul(rect).d) })
	diffRun(t, "Mat.MulVec", func() string { return fingerprint([]T(a.MulVec(v5))) })
	diffRun(t, "Mat.Transpose", func() string { return fingerprint(rect.Transpose().d) })
	diffRun(t, "Mat.FrobNorm", func() string { return fingerprint([]T{a.FrobNorm()}) })
	diffRun(t, "Mat.MaxAbs", func() string { return fingerprint([]T{a.MaxAbs()}) })

	diffRun(t, "Vec.Add", func() string { return fingerprint([]T(v5.Add(w5))) })
	diffRun(t, "Vec.Sub", func() string { return fingerprint([]T(v5.Sub(w5))) })
	diffRun(t, "Vec.Scale", func() string { return fingerprint([]T(v5.Scale(s))) })
	diffRun(t, "Vec.AddScaled", func() string { return fingerprint([]T(v5.AddScaled(s, w5))) })
	diffRun(t, "Vec.Dot", func() string { return fingerprint([]T{v5.Dot(w5)}) })
	diffRun(t, "Vec.Neg", func() string { return fingerprint([]T(v5.Neg())) })
	diffRun(t, "Vec.MaxAbs", func() string { return fingerprint([]T{v5.MaxAbs()}) })
	diffRun(t, "Vec.Norm", func() string { return fingerprint([]T{v5.Norm()}) })
	diffRun(t, "Vec.Normalized", func() string { return fingerprint([]T(v5.Normalized())) })

	// LU: the generated matrix exercises pivot swaps; assert identical
	// packed factors, pivots, and solve results.
	diffRun(t, "LU", func() string {
		f, err := LUDecompose(a)
		if err != nil {
			return errFP(err)
		}
		return fingerprint(f.lu.d) + fmt.Sprint(f.pivot, f.sign) + fingerprint([]T(f.Solve(v5)))
	})
	// A small leading pivot forces a swap on the first column.
	swapper := FromFloats(like, [][]float64{
		{0.015625, 1, 0.5},
		{2, -0.25, 1},
		{0.5, 1, -1.5},
	})
	diffRun(t, "LU/pivot-swap", func() string {
		f, err := LUDecompose(swapper)
		if err != nil {
			return errFP(err)
		}
		return fingerprint(f.lu.d) + fmt.Sprint(f.pivot, f.sign)
	})
	// Duplicate rows hit the singular early-return mid-factorization;
	// the partial charges must match too.
	singular := FromFloats(like, [][]float64{
		{1, 2, 0.5},
		{1, 2, 0.5},
		{-0.5, 1, 0.25},
	})
	diffRun(t, "LU/singular", func() string {
		_, err := LUDecompose(singular)
		return errFP(err)
	})

	posdef := FromFloats(like, spd(&g, 5))
	diffRun(t, "Cholesky", func() string {
		c, err := CholeskyDecompose(posdef)
		if err != nil {
			return errFP(err)
		}
		return fingerprint(c.l.d) + fingerprint([]T(c.Solve(v5)))
	})
	notPD := FromFloats(like, [][]float64{
		{1, 0, 0},
		{0, -1, 0},
		{0, 0, 1},
	})
	diffRun(t, "Cholesky/not-pd", func() string {
		_, err := CholeskyDecompose(notPD)
		return errFP(err)
	})

	diffRun(t, "LDLT", func() string {
		f, err := LDLTDecompose(posdef)
		if err != nil {
			return errFP(err)
		}
		return fingerprint(f.l.d) + fingerprint([]T(f.d)) + fingerprint([]T(f.Solve(v5)))
	})
	diffRun(t, "LDLT/singular", func() string {
		_, err := LDLTDecompose(FromFloats(like, [][]float64{{0, 1}, {1, 0}}))
		return errFP(err)
	})

	diffRun(t, "QR", func() string {
		f, err := QRDecompose(rect)
		if err != nil {
			return errFP(err)
		}
		x, err := f.Solve(v7)
		if err != nil {
			return errFP(err)
		}
		return fingerprint(f.qr.d) + fingerprint([]T(f.rdiag)) + fingerprint([]T(x))
	})
	// A zero column exercises the rank-deficient continue path, and the
	// sign-flip branch fires when the diagonal starts negative.
	zeroCol := g.mat(5, 3)
	for i := range zeroCol {
		zeroCol[i][1] = 0
	}
	zeroCol[0][0] = -math.Abs(zeroCol[0][0]) - 1
	b5 := VecFromFloats(like, g.vec(5))
	diffRun(t, "QR/rank-deficient", func() string {
		f, err := QRDecompose(FromFloats(like, zeroCol))
		if err != nil {
			return errFP(err)
		}
		_, serr := f.Solve(b5)
		return fingerprint(f.qr.d) + fingerprint([]T(f.rdiag)) + errFP(serr)
	})

	svdFP := func(r SVDResult[T]) string {
		return fingerprint(r.U.d) + fingerprint([]T(r.S)) + fingerprint(r.V.d)
	}
	diffRun(t, "SVD", func() string { return svdFP(SVD(rect)) })
	// The wide input takes the transpose/swap recursion; a rank-deficient
	// one exercises the zero-singular-value skip in the norm pass.
	diffRun(t, "SVD/wide", func() string { return svdFP(SVD(rect.Transpose())) })
	diffRun(t, "SVD/rank-deficient", func() string {
		return svdFP(SVD(FromFloats(like, zeroCol)))
	})
	diffRun(t, "NullVector", func() string {
		return fingerprint([]T(NullVector(rect)))
	})
}

func TestFastPathsDifferential(t *testing.T) {
	t.Run("f32", func(t *testing.T) { diffSuite(t, scalar.F32(0)) })
	t.Run("f64", func(t *testing.T) { diffSuite(t, scalar.F64(0)) })
	t.Run("q16.15", func(t *testing.T) { diffSuite(t, fixed.New(0, 15)) })
	t.Run("q8.23", func(t *testing.T) { diffSuite(t, fixed.New(0, 23)) })
}

// TestReferenceKernelsSwitch pins the oracle-switch semantics the
// differential tests depend on.
func TestReferenceKernelsSwitch(t *testing.T) {
	if ReferenceKernels() {
		t.Fatal("reference mode should be off by default")
	}
	prev := SetReferenceKernels(true)
	if prev {
		t.Fatal("SetReferenceKernels(true) reported reference mode already on")
	}
	if !ReferenceKernels() {
		t.Fatal("reference mode did not engage")
	}
	SetReferenceKernels(prev)
	if ReferenceKernels() {
		t.Fatal("reference mode did not disengage")
	}
}

// TestFastPathCustomScalarFallsBack checks that a scalar type outside
// the built-in family still works through the hooked generic path even
// with fast kernels enabled.
func TestFastPathCustomScalarFallsBack(t *testing.T) {
	a := FromFloats(customReal{}, [][]float64{{1, 2}, {3, 4}})
	b := FromFloats(customReal{}, [][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i, row := range got.Floats() {
		for j, v := range row {
			if v != want[i][j] {
				t.Fatalf("custom scalar Mul[%d][%d] = %v, want %v", i, j, v, want[i][j])
			}
		}
	}
}

// customReal wraps a float64 without belonging to the built-in scalar
// family, so every fast dispatcher must reject it.
type customReal struct{ v float64 }

func (a customReal) Add(b customReal) customReal  { return customReal{a.v + b.v} }
func (a customReal) Sub(b customReal) customReal  { return customReal{a.v - b.v} }
func (a customReal) Mul(b customReal) customReal  { return customReal{a.v * b.v} }
func (a customReal) Div(b customReal) customReal  { return customReal{a.v / b.v} }
func (a customReal) Neg() customReal              { return customReal{-a.v} }
func (a customReal) Abs() customReal              { return customReal{math.Abs(a.v)} }
func (a customReal) Sqrt() customReal             { return customReal{math.Sqrt(a.v)} }
func (a customReal) Less(b customReal) bool       { return a.v < b.v }
func (a customReal) LessEq(b customReal) bool     { return a.v <= b.v }
func (a customReal) IsZero() bool                 { return a.v == 0 }
func (a customReal) Float() float64               { return a.v }
func (customReal) FromFloat(x float64) customReal { return customReal{x} }
