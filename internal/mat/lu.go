package mat

import (
	"errors"

	"repro/internal/profile"
	"repro/internal/scalar"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: singular matrix")

// LU holds a partially pivoted LU factorization P·A = L·U packed into one
// matrix, with the unit diagonal of L implicit.
type LU[T scalar.Real[T]] struct {
	lu    Mat[T]
	pivot []int
	sign  int // determinant sign from row swaps
}

// LUDecompose factors the square matrix a with partial pivoting.
func LUDecompose[T scalar.Real[T]](a Mat[T]) (*LU[T], error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("mat: LU of non-square matrix")
	}
	if fastKernels() {
		if f, ok, err := luDecomposeFast(a); ok {
			return f, err
		}
	}
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search down column k.
		p := k
		best := lu.At(k, k).Abs()
		for i := k + 1; i < n; i++ {
			v := lu.At(i, k).Abs()
			if best.Less(v) {
				best, p = v, i
			}
		}
		profile.AddB(uint64(n - k))
		piv[k] = p
		if p != k {
			lu.SwapRows(p, k)
			sign = -sign
		}
		pv := lu.At(k, k)
		if pv.IsZero() {
			return nil, ErrSingular
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k).Div(pv)
			lu.Set(i, k, m)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j).Sub(m.Mul(lu.At(k, j))))
			}
		}
	}
	return &LU[T]{lu: lu, pivot: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU[T]) Solve(b Vec[T]) Vec[T] {
	if fastKernels() {
		if x, ok := luSolveFast(f, b); ok {
			return x
		}
	}
	n := f.lu.Rows()
	x := b.Clone()
	// Apply row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		acc := x[i]
		for j := 0; j < i; j++ {
			acc = acc.Sub(f.lu.At(i, j).Mul(x[j]))
		}
		x[i] = acc
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		acc := x[i]
		for j := i + 1; j < n; j++ {
			acc = acc.Sub(f.lu.At(i, j).Mul(x[j]))
		}
		x[i] = acc.Div(f.lu.At(i, i))
	}
	profile.AddM(uint64(4 * n))
	return x
}

// SolveMat solves A·X = B column-by-column.
func (f *LU[T]) SolveMat(b Mat[T]) Mat[T] {
	out := Zeros[T](b.Rows(), b.Cols())
	for j := 0; j < b.Cols(); j++ {
		out.SetCol(j, f.Solve(b.Col(j)))
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU[T]) Det() T {
	n := f.lu.Rows()
	var det T
	if n == 0 {
		return det
	}
	det = f.lu.At(0, 0)
	for i := 1; i < n; i++ {
		det = det.Mul(f.lu.At(i, i))
	}
	if f.sign < 0 {
		det = det.Neg()
	}
	return det
}

// Solve is the one-shot convenience: factor a and solve a·x = b.
func Solve[T scalar.Real[T]](a Mat[T], b Vec[T]) (Vec[T], error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns a⁻¹ via LU.
func Inverse[T scalar.Real[T]](a Mat[T]) (Mat[T], error) {
	f, err := LUDecompose(a)
	if err != nil {
		return Mat[T]{}, err
	}
	n := a.Rows()
	return f.SolveMat(Identity(n, a.like())), nil
}

// Det returns the determinant of a.
func Det[T scalar.Real[T]](a Mat[T]) T {
	f, err := LUDecompose(a)
	if err != nil {
		var zero T
		return zero
	}
	return f.Det()
}

// Det3 computes a 3×3 determinant directly — the common case in pose
// solvers, where the general LU path would waste cycles.
func Det3[T scalar.Real[T]](a Mat[T]) T {
	if a.Rows() != 3 || a.Cols() != 3 {
		panic("mat: Det3 requires a 3x3 matrix")
	}
	return a.At(0, 0).Mul(a.At(1, 1).Mul(a.At(2, 2)).Sub(a.At(1, 2).Mul(a.At(2, 1)))).
		Sub(a.At(0, 1).Mul(a.At(1, 0).Mul(a.At(2, 2)).Sub(a.At(1, 2).Mul(a.At(2, 0))))).
		Add(a.At(0, 2).Mul(a.At(1, 0).Mul(a.At(2, 1)).Sub(a.At(1, 1).Mul(a.At(2, 0)))))
}
