package mat

// Bulk-accounting fast paths.
//
// The generic kernels in this package charge the profiler inside their
// inner loops: every element access is a hooked At/Set and every
// arithmetic step a hooked scalar method, so a matrix-heavy Solve pays
// one goroutine-session lookup per operation — the dominant cost of the
// simulated characterization sweep. The fast paths below remove that
// cost without changing a single recorded count: they type-switch the
// element slice to its native representation (float32/float64 for
// F32/F64, hook-free Quiet arithmetic for fixed.Num), run the identical
// loop on raw values, and charge the exact aggregate F/I/M/B mix — the
// same op-by-op sum the hooked loop would have produced, priced from
// scalar.OpCosts — in a single profile.AddCounts call.
//
// Exactness is the invariant that makes this safe: Case Study #3 of the
// paper shows the F/I/M/B mix, not FLOPs alone, predicts latency and
// energy, so the counts may not drift by even one op. Differential tests
// (fast_test.go, and the suite-level test in internal/report) assert the
// fast paths produce bit-identical numeric results and byte-identical
// Counts against the hooked reference for every kernel and scalar type.
//
// The hooked generic path remains in place as the reference oracle:
// SetReferenceKernels(true) — or ENTOBENCH_REFERENCE_KERNELS=1 in the
// environment — disables every fast path. Scalar types outside the
// built-in family (custom Real implementations) always take the hooked
// path.

import (
	"math"
	"os"
	"sync/atomic"

	"repro/internal/fixed"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// refKernels forces the hooked generic loops when set; the fast paths
// check it once per matrix operation.
var refKernels atomic.Bool

func init() {
	if os.Getenv("ENTOBENCH_REFERENCE_KERNELS") == "1" {
		refKernels.Store(true)
	}
}

// SetReferenceKernels switches this package between its bulk fast paths
// (false, the default) and the hooked generic reference loops (true),
// returning the previous setting. The reference mode exists as the
// oracle the fast paths are differentially tested against; both modes
// produce identical numeric results and identical profiled counts.
func SetReferenceKernels(on bool) (prev bool) {
	return refKernels.Swap(on)
}

// ReferenceKernels reports whether the hooked generic reference loops
// are active.
func ReferenceKernels() bool { return refKernels.Load() }

// fastKernels gates every fast-path dispatch.
func fastKernels() bool { return !refKernels.Load() }

// native is the constraint for scalar types whose arithmetic compiles to
// machine float instructions (F32, F64).
type native interface{ ~float32 | ~float64 }

// --- element-wise slice kernels, float ---

func ewAddNat[F native](a, b []F) []F {
	out := make([]F, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func ewSubNat[F native](a, b []F) []F {
	out := make([]F, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func ewScaleNat[F native](a []F, s F) []F {
	out := make([]F, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

func ewAddScaledNat[F native](a []F, s F, b []F) []F {
	out := make([]F, len(a))
	for i := range a {
		out[i] = a[i] + s*b[i]
	}
	return out
}

func ewNegNat[F native](a []F) []F {
	out := make([]F, len(a))
	for i := range a {
		out[i] = -a[i]
	}
	return out
}

func dotNat[F native](a, b []F) F {
	var acc F
	for i := range a {
		acc = acc + a[i]*b[i]
	}
	return acc
}

func frobNat[F native](a []F) F {
	var acc F
	for _, v := range a {
		acc = acc + v*v
	}
	return F(math.Sqrt(float64(acc)))
}

func maxAbsNat[F native](a []F) F {
	var best F
	for _, v := range a {
		if v < 0 {
			v = -v
		}
		if best < v {
			best = v
		}
	}
	return best
}

func mulNat[F native](a, b, out []F, r, k, c int) {
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			var acc F
			for kk := 0; kk < k; kk++ {
				acc = acc + a[i*k+kk]*b[kk*c+j]
			}
			out[i*c+j] = acc
		}
	}
}

func mulVecNat[F native](a, v, out []F, r, k int) {
	for i := 0; i < r; i++ {
		var acc F
		for kk := 0; kk < k; kk++ {
			acc = acc + a[i*k+kk]*v[kk]
		}
		out[i] = acc
	}
}

// --- element-wise slice kernels, fixed point ---
//
// The Quiet methods share their implementation with the hooked ones, so
// numerics, saturation, and Status side effects are identical.

func ewAddFix(a, b []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, len(a))
	for i := range a {
		out[i] = a[i].AddQuiet(b[i])
	}
	return out
}

func ewSubFix(a, b []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, len(a))
	for i := range a {
		out[i] = a[i].SubQuiet(b[i])
	}
	return out
}

func ewScaleFix(a []fixed.Num, s fixed.Num) []fixed.Num {
	out := make([]fixed.Num, len(a))
	for i := range a {
		out[i] = a[i].MulQuiet(s)
	}
	return out
}

func ewAddScaledFix(a []fixed.Num, s fixed.Num, b []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, len(a))
	for i := range a {
		out[i] = a[i].AddQuiet(s.MulQuiet(b[i]))
	}
	return out
}

func ewNegFix(a []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, len(a))
	for i := range a {
		out[i] = a[i].NegQuiet()
	}
	return out
}

func dotFix(a, b []fixed.Num) fixed.Num {
	var acc fixed.Num
	for i := range a {
		acc = acc.AddQuiet(a[i].MulQuiet(b[i]))
	}
	return acc
}

func frobFix(a []fixed.Num) fixed.Num {
	var acc fixed.Num
	for _, v := range a {
		acc = acc.AddQuiet(v.MulQuiet(v))
	}
	return acc.SqrtQuiet()
}

func maxAbsFix(a []fixed.Num) fixed.Num {
	var best fixed.Num
	for _, v := range a {
		x := v.AbsQuiet()
		if best.LessQuiet(x) {
			best = x
		}
	}
	return best
}

func mulFix(a, b, out []fixed.Num, r, k, c int) {
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			var acc fixed.Num
			for kk := 0; kk < k; kk++ {
				acc = acc.AddQuiet(a[i*k+kk].MulQuiet(b[kk*c+j]))
			}
			out[i*c+j] = acc
		}
	}
}

func mulVecFix(a, v, out []fixed.Num, r, k int) {
	for i := 0; i < r; i++ {
		var acc fixed.Num
		for kk := 0; kk < k; kk++ {
			acc = acc.AddQuiet(a[i*k+kk].MulQuiet(v[kk]))
		}
		out[i] = acc
	}
}

// --- slice-level dispatchers, shared by Mat and Vec methods ---
//
// Each dispatcher runs the native kernel and charges the exact mix of
// the hooked loop it replaces: the scalar-op term priced from
// scalar.OpCosts times the op count, plus the explicit AddM/AddI/AddB
// charges of the generic code, in one profile.AddCounts call.

// chargeEW is the arithmetic term of one element-wise pass: every
// element pays each listed op cost once, on top of extraM memory ops.
func chargeEW(n uint64, extraM uint64, costs ...profile.Counts) {
	var cnt profile.Counts
	for _, c := range costs {
		cnt.Add(scalar.ScaleCounts(c, n))
	}
	cnt.M += extraM
	profile.AddCounts(cnt)
}

// fastAddSlice is the bulk path of Mat.Add and Vec.Add: out[i] =
// a[i]+b[i], charged as n Adds plus the 3n memory ops of the hooked
// loop.
func fastAddSlice[T scalar.Real[T]](a, b []T) ([]T, bool) {
	n := uint64(len(a))
	var d any
	switch ad := any(a).(type) {
	case []scalar.F32:
		d = ewAddNat(ad, any(b).([]scalar.F32))
	case []scalar.F64:
		d = ewAddNat(ad, any(b).([]scalar.F64))
	case []fixed.Num:
		d = ewAddFix(ad, any(b).([]fixed.Num))
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 3*n, costs.Add)
	return d.([]T), true
}

// fastSubSlice mirrors fastAddSlice for subtraction.
func fastSubSlice[T scalar.Real[T]](a, b []T) ([]T, bool) {
	n := uint64(len(a))
	var d any
	switch ad := any(a).(type) {
	case []scalar.F32:
		d = ewSubNat(ad, any(b).([]scalar.F32))
	case []scalar.F64:
		d = ewSubNat(ad, any(b).([]scalar.F64))
	case []fixed.Num:
		d = ewSubFix(ad, any(b).([]fixed.Num))
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 3*n, costs.Sub)
	return d.([]T), true
}

// fastScaleSlice: out[i] = a[i]*s, charged as n Muls plus 2n memory ops.
func fastScaleSlice[T scalar.Real[T]](a []T, s T) ([]T, bool) {
	n := uint64(len(a))
	var d any
	switch ad := any(a).(type) {
	case []scalar.F32:
		d = ewScaleNat(ad, any(s).(scalar.F32))
	case []scalar.F64:
		d = ewScaleNat(ad, any(s).(scalar.F64))
	case []fixed.Num:
		d = ewScaleFix(ad, any(s).(fixed.Num))
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 2*n, costs.Mul)
	return d.([]T), true
}

// fastAddScaledSlice: out[i] = a[i] + s*b[i], charged as n Adds + n Muls
// plus 3n memory ops.
func fastAddScaledSlice[T scalar.Real[T]](a []T, s T, b []T) ([]T, bool) {
	n := uint64(len(a))
	var d any
	switch ad := any(a).(type) {
	case []scalar.F32:
		d = ewAddScaledNat(ad, any(s).(scalar.F32), any(b).([]scalar.F32))
	case []scalar.F64:
		d = ewAddScaledNat(ad, any(s).(scalar.F64), any(b).([]scalar.F64))
	case []fixed.Num:
		d = ewAddScaledFix(ad, any(s).(fixed.Num), any(b).([]fixed.Num))
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 3*n, costs.Add, costs.Mul)
	return d.([]T), true
}

// fastNegSlice: out[i] = -a[i], charged as n Negs plus 2n memory ops.
func fastNegSlice[T scalar.Real[T]](a []T) ([]T, bool) {
	n := uint64(len(a))
	var d any
	switch ad := any(a).(type) {
	case []scalar.F32:
		d = ewNegNat(ad)
	case []scalar.F64:
		d = ewNegNat(ad)
	case []fixed.Num:
		d = ewNegFix(ad)
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 2*n, costs.Neg)
	return d.([]T), true
}

// fastDotSlice: Σ a[i]*b[i], charged as n Adds + n Muls plus 2n memory
// ops.
func fastDotSlice[T scalar.Real[T]](a, b []T) (T, bool) {
	n := uint64(len(a))
	var v any
	switch ad := any(a).(type) {
	case []scalar.F32:
		v = dotNat(ad, any(b).([]scalar.F32))
	case []scalar.F64:
		v = dotNat(ad, any(b).([]scalar.F64))
	case []fixed.Num:
		v = dotFix(ad, any(b).([]fixed.Num))
	default:
		var zero T
		return zero, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, 2*n, costs.Add, costs.Mul)
	return v.(T), true
}

// fastFrobSlice: sqrt(Σ a[i]²), charged as n Adds + n Muls + one Sqrt
// plus n memory ops.
func fastFrobSlice[T scalar.Real[T]](a []T) (T, bool) {
	n := uint64(len(a))
	var v any
	switch ad := any(a).(type) {
	case []scalar.F32:
		v = frobNat(ad)
	case []scalar.F64:
		v = frobNat(ad)
	case []fixed.Num:
		v = frobFix(ad)
	default:
		var zero T
		return zero, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	var cnt profile.Counts
	cnt.Add(scalar.ScaleCounts(costs.Add, n))
	cnt.Add(scalar.ScaleCounts(costs.Mul, n))
	cnt.Add(costs.Sqrt)
	cnt.M += n
	profile.AddCounts(cnt)
	return v.(T), true
}

// fastMaxAbsSlice: max |a[i]|, charged as n Abs + n compares plus n
// memory ops.
func fastMaxAbsSlice[T scalar.Real[T]](a []T) (T, bool) {
	n := uint64(len(a))
	var v any
	switch ad := any(a).(type) {
	case []scalar.F32:
		v = maxAbsNat(ad)
	case []scalar.F64:
		v = maxAbsNat(ad)
	case []fixed.Num:
		v = maxAbsFix(ad)
	default:
		var zero T
		return zero, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	chargeEW(n, n, costs.Abs, costs.Cmp)
	return v.(T), true
}

// fastTranspose is the bulk path of Mat.Transpose. The loop moves
// elements without touching scalar arithmetic, so one implementation
// serves every T; the charge is the hooked loop's per-element At+Set
// pair.
func fastTranspose[T scalar.Real[T]](m Mat[T]) Mat[T] {
	t := Zeros[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.d[j*m.rows+i] = m.d[i*m.cols+j]
		}
	}
	n := uint64(len(m.d))
	profile.AddCounts(profile.Counts{M: 2 * n, I: 2 * n})
	return t
}

// fastMul is the bulk path of Mat.Mul: a native r×k · k×c triple loop,
// charged as r·c·k multiply-accumulates plus the hooked loop's explicit
// memory/index/branch terms.
func fastMul[T scalar.Real[T]](m, b Mat[T]) (Mat[T], bool) {
	r, k, c := m.rows, m.cols, b.cols
	var d any
	switch md := any(m.d).(type) {
	case []scalar.F32:
		out := make([]scalar.F32, r*c)
		mulNat(md, any(b.d).([]scalar.F32), out, r, k, c)
		d = out
	case []scalar.F64:
		out := make([]scalar.F64, r*c)
		mulNat(md, any(b.d).([]scalar.F64), out, r, k, c)
		d = out
	case []fixed.Num:
		out := make([]fixed.Num, r*c)
		mulFix(md, any(b.d).([]fixed.Num), out, r, k, c)
		d = out
	default:
		return Mat[T]{}, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	mac := uint64(r) * uint64(c) * uint64(k)
	var cnt profile.Counts
	cnt.Add(scalar.ScaleCounts(costs.Add, mac))
	cnt.Add(scalar.ScaleCounts(costs.Mul, mac))
	cnt.M += 2*mac + uint64(r*c)
	cnt.I += mac
	cnt.B += uint64(r * c * (1 + k/4))
	profile.AddCounts(cnt)
	return Mat[T]{rows: r, cols: c, d: d.([]T)}, true
}

// fastMulVec is the bulk path of Mat.MulVec.
func fastMulVec[T scalar.Real[T]](m Mat[T], v Vec[T]) (Vec[T], bool) {
	r, k := m.rows, m.cols
	var d any
	switch md := any(m.d).(type) {
	case []scalar.F32:
		out := make([]scalar.F32, r)
		mulVecNat(md, any([]T(v)).([]scalar.F32), out, r, k)
		d = out
	case []scalar.F64:
		out := make([]scalar.F64, r)
		mulVecNat(md, any([]T(v)).([]scalar.F64), out, r, k)
		d = out
	case []fixed.Num:
		out := make([]fixed.Num, r)
		mulVecFix(md, any([]T(v)).([]fixed.Num), out, r, k)
		d = out
	default:
		return nil, false
	}
	costs, _ := scalar.OpCostsOf[T]()
	mac := uint64(r) * uint64(k)
	var cnt profile.Counts
	cnt.Add(scalar.ScaleCounts(costs.Add, mac))
	cnt.Add(scalar.ScaleCounts(costs.Mul, mac))
	cnt.M += 2*mac + uint64(r)
	cnt.B += uint64(r)
	profile.AddCounts(cnt)
	return Vec[T](d.([]T)), true
}
