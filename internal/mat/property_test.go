package mat_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/scalar"
)

// randPoly draws a polynomial with bounded coefficients and degree.
func randPoly(rng *rand.Rand, maxDeg int) mat.Poly[F] {
	deg := 1 + rng.Intn(maxDeg)
	out := make(mat.Poly[F], deg+1)
	for i := range out {
		out[i] = F(rng.NormFloat64())
	}
	return out
}

// Property: (p·q)(x) = p(x)·q(x).
func TestPropPolyMulEval(t *testing.T) {
	f := func(seed int64, xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		x := F(math.Mod(xr, 3))
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 4)
		q := randPoly(rng, 4)
		lhs := p.MulPoly(q).Eval(x).Float()
		rhs := p.Eval(x).Float() * q.Eval(x).Float()
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: (p+q)(x) = p(x)+q(x) and (p−q)(x) = p(x)−q(x).
func TestPropPolyAddSubEval(t *testing.T) {
	f := func(seed int64, xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		x := F(math.Mod(xr, 3))
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 5)
		q := randPoly(rng, 5)
		add := p.AddPoly(q).Eval(x).Float()
		sub := p.SubPoly(q).Eval(x).Float()
		pe, qe := p.Eval(x).Float(), q.Eval(x).Float()
		return math.Abs(add-(pe+qe)) < 1e-10*(1+math.Abs(pe+qe)) &&
			math.Abs(sub-(pe-qe)) < 1e-10*(1+math.Abs(pe-qe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every value RealRoots returns is in fact (numerically) a
// root of the polynomial.
func TestPropRealRootsAreRoots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build from known real linear factors for a guaranteed witness.
		p := mat.PolyFromFloats(F(0), []float64{1})
		deg := 2 + rng.Intn(4)
		var scalePoly float64 = 1
		for i := 0; i < deg; i++ {
			r := rng.NormFloat64() * 2
			p = p.MulPoly(mat.PolyFromFloats(F(0), []float64{-r, 1}))
			scalePoly = math.Max(scalePoly, math.Abs(r))
		}
		roots := p.RealRoots()
		if len(roots) < deg {
			return false // all roots real by construction
		}
		for _, r := range roots {
			if math.Abs(p.Eval(r).Float()) > 1e-5*math.Pow(scalePoly+1, float64(deg)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the derivative obeys (p·q)' = p'q + pq' at sampled points.
func TestPropPolyDerivativeProductRule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 3)
		q := randPoly(rng, 3)
		x := F(rng.NormFloat64())
		lhs := p.MulPoly(q).Derivative().Eval(x).Float()
		rhs := p.Derivative().Eval(x).Float()*q.Eval(x).Float() +
			p.Eval(x).Float()*q.Derivative().Eval(x).Float()
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: NullSpace vectors are orthonormal and (for rank-deficient
// matrices) annihilated by A.
func TestPropNullSpaceOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Rank-2 3×5 matrix: two random rows plus a dependent one.
		a := mat.Zeros[F](3, 5)
		for j := 0; j < 5; j++ {
			a.Set(0, j, F(rng.NormFloat64()))
			a.Set(1, j, F(rng.NormFloat64()))
			a.Set(2, j, a.At(0, j).Add(a.At(1, j)))
		}
		ns := mat.NullSpace(a, 3)
		for i, v := range ns {
			if math.Abs(v.Norm().Float()-1) > 1e-8 {
				return false
			}
			if a.MulVec(v).Norm().Float() > 1e-7 {
				return false
			}
			for j := i + 1; j < len(ns); j++ {
				if math.Abs(v.Dot(ns[j]).Float()) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky and LDLT agree with LU on SPD systems.
func TestPropFactorizationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 4, 4)
		spd := a.Transpose().Mul(a).Add(mat.Identity(4, F(0)).Scale(F(3)))
		b := mat.VecFromFloats(F(0), []float64{
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(),
		})
		xLU, err1 := mat.Solve(spd, b)
		ch, err2 := mat.CholeskyDecompose(spd)
		ld, err3 := mat.LDLTDecompose(spd)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		xCh := ch.Solve(b)
		xLd := ld.Solve(b)
		for i := 0; i < 4; i++ {
			if math.Abs(xLU[i].Float()-xCh[i].Float()) > 1e-8 {
				return false
			}
			if math.Abs(xLU[i].Float()-xLd[i].Float()) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: QR least squares matches the normal-equation solution on
// well-conditioned problems.
func TestPropLeastSquaresMatchesNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 8, 3)
		b := make(mat.Vec[F], 8)
		for i := range b {
			b[i] = F(rng.NormFloat64())
		}
		xQR, err := mat.LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient draw
		}
		at := a.Transpose()
		xNE, err := mat.Solve(at.Mul(a), at.MulVec(b))
		if err != nil {
			return true
		}
		for i := 0; i < 3; i++ {
			if math.Abs(xQR[i].Float()-xNE[i].Float()) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric eigenvalues match the singular values of an SPD
// matrix.
func TestPropEigenMatchesSVDOnSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 3, 3)
		spd := a.Transpose().Mul(a).Add(mat.Identity(3, F(0)))
		w := mat.SymEigen(spd).W.Floats()
		s := mat.SVD(spd).S.Floats()
		for i := range w {
			if math.Abs(w[i]-s[i]) > 1e-8*(1+s[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// EpsOf must behave as machine epsilon: 1 + eps != 1 but 1 + eps/4 == 1
// for the float types.
func TestEpsOfCharacterization(t *testing.T) {
	e := mat.EpsOf(scalar.F64(0))
	one := scalar.F64(1)
	if one.Add(e).Sub(one).IsZero() {
		t.Error("1 + eps collapsed to 1")
	}
	quarter := e.Mul(scalar.F64(0.25))
	if !one.Add(quarter).Sub(one).IsZero() {
		t.Error("1 + eps/4 did not collapse")
	}
}
