package mat

import (
	"errors"

	"repro/internal/scalar"
)

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky[T scalar.Real[T]] struct {
	l Mat[T]
}

// CholeskyDecompose factors a symmetric positive-definite matrix. Only
// the lower triangle of a is read. Non-positive pivots return an error —
// the EKF kernels use this to detect covariance blow-up.
func CholeskyDecompose[T scalar.Real[T]](a Mat[T]) (*Cholesky[T], error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	if fastKernels() {
		if c, ok, notPD := cholDecomposeFast(a); ok {
			if notPD {
				return nil, errors.New("mat: matrix not positive definite")
			}
			return c, nil
		}
	}
	l := Zeros[T](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			acc := a.At(i, j)
			for k := 0; k < j; k++ {
				acc = acc.Sub(l.At(i, k).Mul(l.At(j, k)))
			}
			if i == j {
				if acc.LessEq(scalar.Zero(acc)) {
					return nil, errors.New("mat: matrix not positive definite")
				}
				l.Set(i, i, acc.Sqrt())
			} else {
				l.Set(i, j, acc.Div(l.At(j, j)))
			}
		}
	}
	return &Cholesky[T]{l: l}, nil
}

// L returns the lower-triangular factor.
func (c *Cholesky[T]) L() Mat[T] { return c.l }

// Solve returns x with A·x = b using forward/back substitution.
func (c *Cholesky[T]) Solve(b Vec[T]) Vec[T] {
	if fastKernels() {
		if x, ok := cholSolveFast(c, b); ok {
			return x
		}
	}
	n := c.l.Rows()
	// L·y = b
	y, yh := borrowVec[T](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			acc = acc.Sub(c.l.At(i, j).Mul(y[j]))
		}
		y[i] = acc.Div(c.l.At(i, i))
	}
	// Lᵀ·x = y
	x := make(Vec[T], n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			acc = acc.Sub(c.l.At(j, i).Mul(x[j]))
		}
		x[i] = acc.Div(c.l.At(i, i))
	}
	return x
}

// SolveMat solves A·X = B column-by-column.
func (c *Cholesky[T]) SolveMat(b Mat[T]) Mat[T] {
	out := Zeros[T](b.Rows(), b.Cols())
	for j := 0; j < b.Cols(); j++ {
		out.SetCol(j, c.Solve(b.Col(j)))
	}
	return out
}

// LDLT holds an LDLᵀ factorization, used by the OSQP-style QP solver
// where the KKT matrix is symmetric indefinite (quasi-definite after
// regularization), so plain Cholesky does not apply.
type LDLT[T scalar.Real[T]] struct {
	l Mat[T] // unit lower triangular
	d Vec[T] // diagonal of D
}

// LDLTDecompose factors a symmetric matrix as L·D·Lᵀ without pivoting.
// It requires nonzero (not necessarily positive) pivots; the QP solver
// guarantees that through diagonal regularization, as real OSQP does.
func LDLTDecompose[T scalar.Real[T]](a Mat[T]) (*LDLT[T], error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("mat: LDLT of non-square matrix")
	}
	if fastKernels() {
		if f, ok, singular := ldltDecomposeFast(a); ok {
			if singular {
				return nil, ErrSingular
			}
			return f, nil
		}
	}
	l := Identity(n, a.like())
	d := make(Vec[T], n)
	for j := 0; j < n; j++ {
		acc := a.At(j, j)
		for k := 0; k < j; k++ {
			acc = acc.Sub(d[k].Mul(l.At(j, k)).Mul(l.At(j, k)))
		}
		if acc.IsZero() {
			return nil, ErrSingular
		}
		d[j] = acc
		for i := j + 1; i < n; i++ {
			v := a.At(i, j)
			for k := 0; k < j; k++ {
				v = v.Sub(d[k].Mul(l.At(i, k)).Mul(l.At(j, k)))
			}
			l.Set(i, j, v.Div(d[j]))
		}
	}
	return &LDLT[T]{l: l, d: d}, nil
}

// Solve returns x with A·x = b.
func (f *LDLT[T]) Solve(b Vec[T]) Vec[T] {
	if fastKernels() {
		if x, ok := ldltSolveFast(f, b); ok {
			return x
		}
	}
	n := len(f.d)
	// L·y = b
	y, yh := borrowVec[T](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			acc = acc.Sub(f.l.At(i, j).Mul(y[j]))
		}
		y[i] = acc
	}
	// D·z = y, Lᵀ·x = z
	x := make(Vec[T], n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i].Div(f.d[i])
		for j := i + 1; j < n; j++ {
			acc = acc.Sub(f.l.At(j, i).Mul(x[j]))
		}
		x[i] = acc
	}
	return x
}
