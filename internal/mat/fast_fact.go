package mat

// Specialized factorization loops (LU, Cholesky, LDLT, QR) for the
// built-in scalar family.
//
// Unlike the dense products in fast.go, elimination loops have
// data-dependent control flow — pivot swaps, singularity early-exits,
// zero-column skips, sign branches — so their op counts cannot be a
// single closed-form formula. Each implementation below is a 1:1
// transcription of its hooked generic counterpart in lu.go/chol.go/qr.go
// that replaces every hooked At/Set with a direct index plus an M+I
// tally, and every hooked scalar method with native arithmetic (or a
// fixed.Num Quiet call) plus its scalar.OpCosts tally, into one local
// profile.Counts that the dispatcher flushes in a single AddCounts. The
// charges therefore follow the exact control-flow path the reference
// would have taken — including the partial charges of an early error
// return — which the differential tests in fast_test.go verify count for
// count.
//
// Every algorithm exists twice: once generic over the native float types
// (operators compile to machine instructions and inline) and once for
// fixed.Num (Quiet methods on a concrete type, also inlinable). A shared
// generic shim would route arithmetic through dictionary-based method
// calls, putting a call back in the inner loop — the very cost this file
// exists to remove.

import (
	"math"

	"repro/internal/fixed"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// fastFamily reports whether T has specialized factorization loops.
func fastFamily[T scalar.Real[T]]() bool {
	_, ok := scalar.OpCostsOf[T]()
	return ok
}

// --- LU decomposition ---

// luNat factors d (n×n, row-major, modified in place) with partial
// pivoting. ok=false reports a singular pivot; cnt then holds the
// charges up to the point of detection, as the hooked path would have
// recorded.
func luNat[F native](cnt *profile.Counts, d []F, n int, piv []int) (sign int, ok bool) {
	sign = 1
	for k := 0; k < n; k++ {
		p := k
		cnt.M++
		cnt.I++ // At(k,k)
		cnt.F++ // Abs
		best := d[k*n+k]
		if best < 0 {
			best = -best
		}
		for i := k + 1; i < n; i++ {
			cnt.M++
			cnt.I++ // At(i,k)
			cnt.F++ // Abs
			v := d[i*n+k]
			if v < 0 {
				v = -v
			}
			cnt.B++ // Less
			if best < v {
				best, p = v, i
			}
		}
		cnt.B += uint64(n - k)
		piv[k] = p
		if p != k {
			cnt.M += uint64(4 * n) // SwapRows
			ri := d[p*n : p*n+n]
			rj := d[k*n : k*n+n]
			for t := range ri {
				ri[t], rj[t] = rj[t], ri[t]
			}
			sign = -sign
		}
		cnt.M++
		cnt.I++ // At(k,k)
		pv := d[k*n+k]
		if pv == 0 {
			return sign, false
		}
		for i := k + 1; i < n; i++ {
			cnt.M += 2
			cnt.I += 2 // At(i,k) + Set(i,k)
			cnt.F++    // Div
			m := d[i*n+k] / pv
			d[i*n+k] = m
			for j := k + 1; j < n; j++ {
				cnt.M += 3
				cnt.I += 3 // At(i,j), At(k,j), Set(i,j)
				cnt.F += 2 // Mul, Sub
				d[i*n+j] = d[i*n+j] - m*d[k*n+j]
			}
		}
	}
	return sign, true
}

// luFix is luNat for fixed.Num.
func luFix(cnt *profile.Counts, d []fixed.Num, n int, piv []int) (sign int, ok bool) {
	sign = 1
	for k := 0; k < n; k++ {
		p := k
		cnt.M++
		cnt.I++                // At(k,k)
		cnt.I += fixed.CostAbs // Abs
		best := d[k*n+k].AbsQuiet()
		for i := k + 1; i < n; i++ {
			cnt.M++
			cnt.I++                // At(i,k)
			cnt.I += fixed.CostAbs // Abs
			v := d[i*n+k].AbsQuiet()
			cnt.B++ // Less
			if best.LessQuiet(v) {
				best, p = v, i
			}
		}
		cnt.B += uint64(n - k)
		piv[k] = p
		if p != k {
			cnt.M += uint64(4 * n) // SwapRows
			ri := d[p*n : p*n+n]
			rj := d[k*n : k*n+n]
			for t := range ri {
				ri[t], rj[t] = rj[t], ri[t]
			}
			sign = -sign
		}
		cnt.M++
		cnt.I++ // At(k,k)
		pv := d[k*n+k]
		if pv.IsZero() {
			return sign, false
		}
		for i := k + 1; i < n; i++ {
			cnt.M += 2
			cnt.I += 2             // At(i,k) + Set(i,k)
			cnt.I += fixed.CostDiv // Div
			m := d[i*n+k].DivQuiet(pv)
			d[i*n+k] = m
			for j := k + 1; j < n; j++ {
				cnt.M += 3
				cnt.I += 3                             // At(i,j), At(k,j), Set(i,j)
				cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
				d[i*n+j] = d[i*n+j].SubQuiet(m.MulQuiet(d[k*n+j]))
			}
		}
	}
	return sign, true
}

// luDecomposeFast is the dispatcher behind LUDecompose. ok=false means T
// has no fast path and the caller must run the hooked loop.
func luDecomposeFast[T scalar.Real[T]](a Mat[T]) (f *LU[T], ok bool, err error) {
	if !fastFamily[T]() {
		return nil, false, nil
	}
	n := a.rows
	lu := a.Clone() // hooked: charges its M term exactly like the reference
	piv := make([]int, n)
	var cnt profile.Counts
	var sign int
	var good bool
	switch d := any(lu.d).(type) {
	case []scalar.F32:
		sign, good = luNat(&cnt, d, n, piv)
	case []scalar.F64:
		sign, good = luNat(&cnt, d, n, piv)
	case []fixed.Num:
		sign, good = luFix(&cnt, d, n, piv)
	}
	profile.AddCounts(cnt)
	if !good {
		return nil, true, ErrSingular
	}
	return &LU[T]{lu: lu, pivot: piv, sign: sign}, true, nil
}

// --- LU solve ---

func luSolveNat[F native](cnt *profile.Counts, lu []F, n int, piv []int, b []F) []F {
	cnt.M += uint64(2 * n) // b.Clone()
	x := make([]F, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for i := 1; i < n; i++ {
		acc := x[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Sub
			acc = acc - lu[i*n+j]*x[j]
		}
		x[i] = acc
	}
	for i := n - 1; i >= 0; i-- {
		acc := x[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Sub
			acc = acc - lu[i*n+j]*x[j]
		}
		cnt.M++
		cnt.I++ // At(i,i)
		cnt.F++ // Div
		x[i] = acc / lu[i*n+i]
	}
	cnt.M += uint64(4 * n)
	return x
}

func luSolveFix(cnt *profile.Counts, lu []fixed.Num, n int, piv []int, b []fixed.Num) []fixed.Num {
	cnt.M += uint64(2 * n) // b.Clone()
	x := make([]fixed.Num, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for i := 1; i < n; i++ {
		acc := x[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++                                // At(i,j)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(lu[i*n+j].MulQuiet(x[j]))
		}
		x[i] = acc
	}
	for i := n - 1; i >= 0; i-- {
		acc := x[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++                                // At(i,j)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(lu[i*n+j].MulQuiet(x[j]))
		}
		cnt.M++
		cnt.I++                // At(i,i)
		cnt.I += fixed.CostDiv // Div
		x[i] = acc.DivQuiet(lu[i*n+i])
	}
	cnt.M += uint64(4 * n)
	return x
}

// luSolveFast is the dispatcher behind LU.Solve.
func luSolveFast[T scalar.Real[T]](f *LU[T], b Vec[T]) (Vec[T], bool) {
	n := f.lu.rows
	var cnt profile.Counts
	var x any
	switch d := any(f.lu.d).(type) {
	case []scalar.F32:
		x = luSolveNat(&cnt, d, n, f.pivot, any([]T(b)).([]scalar.F32))
	case []scalar.F64:
		x = luSolveNat(&cnt, d, n, f.pivot, any([]T(b)).([]scalar.F64))
	case []fixed.Num:
		x = luSolveFix(&cnt, d, n, f.pivot, any([]T(b)).([]fixed.Num))
	default:
		return nil, false
	}
	profile.AddCounts(cnt)
	return Vec[T](x.([]T)), true
}

// --- Cholesky decomposition ---

func cholNat[F native](cnt *profile.Counts, a []F, l []F, n int) bool {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			cnt.M++
			cnt.I++ // a.At(i,j)
			acc := a[i*n+j]
			for k := 0; k < j; k++ {
				cnt.M += 2
				cnt.I += 2 // l.At(i,k), l.At(j,k)
				cnt.F += 2 // Mul, Sub
				acc = acc - l[i*n+k]*l[j*n+k]
			}
			if i == j {
				cnt.B++ // LessEq
				if acc <= 0 {
					return false
				}
				cnt.F++ // Sqrt
				cnt.M++
				cnt.I++ // Set(i,i)
				l[i*n+i] = F(math.Sqrt(float64(acc)))
			} else {
				cnt.M++
				cnt.I++ // l.At(j,j)
				cnt.F++ // Div
				cnt.M++
				cnt.I++ // Set(i,j)
				l[i*n+j] = acc / l[j*n+j]
			}
		}
	}
	return true
}

func cholFix(cnt *profile.Counts, a []fixed.Num, l []fixed.Num, n int) bool {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			cnt.M++
			cnt.I++ // a.At(i,j)
			acc := a[i*n+j]
			for k := 0; k < j; k++ {
				cnt.M += 2
				cnt.I += 2                             // l.At(i,k), l.At(j,k)
				cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
				acc = acc.SubQuiet(l[i*n+k].MulQuiet(l[j*n+k]))
			}
			if i == j {
				cnt.B++ // LessEq
				if acc.LessEqQuiet(acc.FromFloat(0)) {
					return false
				}
				cnt.I += fixed.CostSqrt // Sqrt
				cnt.M++
				cnt.I++ // Set(i,i)
				l[i*n+i] = acc.SqrtQuiet()
			} else {
				cnt.M++
				cnt.I++                // l.At(j,j)
				cnt.I += fixed.CostDiv // Div
				cnt.M++
				cnt.I++ // Set(i,j)
				l[i*n+j] = acc.DivQuiet(l[j*n+j])
			}
		}
	}
	return true
}

// cholDecomposeFast is the dispatcher behind CholeskyDecompose.
func cholDecomposeFast[T scalar.Real[T]](a Mat[T]) (c *Cholesky[T], ok bool, notPD bool) {
	if !fastFamily[T]() {
		return nil, false, false
	}
	n := a.rows
	l := Zeros[T](n, n)
	var cnt profile.Counts
	good := false
	switch d := any(a.d).(type) {
	case []scalar.F32:
		good = cholNat(&cnt, d, any(l.d).([]scalar.F32), n)
	case []scalar.F64:
		good = cholNat(&cnt, d, any(l.d).([]scalar.F64), n)
	case []fixed.Num:
		good = cholFix(&cnt, d, any(l.d).([]fixed.Num), n)
	}
	profile.AddCounts(cnt)
	if !good {
		return nil, true, true
	}
	return &Cholesky[T]{l: l}, true, false
}

// --- Cholesky solve ---

func cholSolveNat[F native](cnt *profile.Counts, l []F, n int, b []F) []F {
	y, yh := borrowSlice[F](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Sub
			acc = acc - l[i*n+j]*y[j]
		}
		cnt.M++
		cnt.I++ // At(i,i)
		cnt.F++ // Div
		y[i] = acc / l[i*n+i]
	}
	x := make([]F, n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++    // At(j,i)
			cnt.F += 2 // Mul, Sub
			acc = acc - l[j*n+i]*x[j]
		}
		cnt.M++
		cnt.I++ // At(i,i)
		cnt.F++ // Div
		x[i] = acc / l[i*n+i]
	}
	return x
}

func cholSolveFix(cnt *profile.Counts, l []fixed.Num, n int, b []fixed.Num) []fixed.Num {
	y, yh := borrowSlice[fixed.Num](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++                                // At(i,j)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(l[i*n+j].MulQuiet(y[j]))
		}
		cnt.M++
		cnt.I++                // At(i,i)
		cnt.I += fixed.CostDiv // Div
		y[i] = acc.DivQuiet(l[i*n+i])
	}
	x := make([]fixed.Num, n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++                                // At(j,i)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(l[j*n+i].MulQuiet(x[j]))
		}
		cnt.M++
		cnt.I++                // At(i,i)
		cnt.I += fixed.CostDiv // Div
		x[i] = acc.DivQuiet(l[i*n+i])
	}
	return x
}

// cholSolveFast is the dispatcher behind Cholesky.Solve.
func cholSolveFast[T scalar.Real[T]](c *Cholesky[T], b Vec[T]) (Vec[T], bool) {
	n := c.l.rows
	var cnt profile.Counts
	var x any
	switch d := any(c.l.d).(type) {
	case []scalar.F32:
		x = cholSolveNat(&cnt, d, n, any([]T(b)).([]scalar.F32))
	case []scalar.F64:
		x = cholSolveNat(&cnt, d, n, any([]T(b)).([]scalar.F64))
	case []fixed.Num:
		x = cholSolveFix(&cnt, d, n, any([]T(b)).([]fixed.Num))
	default:
		return nil, false
	}
	profile.AddCounts(cnt)
	return Vec[T](x.([]T)), true
}

// --- LDLT decomposition ---

func ldltNat[F native](cnt *profile.Counts, a []F, l []F, dd []F, n int) bool {
	for j := 0; j < n; j++ {
		cnt.M++
		cnt.I++ // a.At(j,j)
		acc := a[j*n+j]
		for k := 0; k < j; k++ {
			cnt.M += 2
			cnt.I += 2 // l.At(j,k) ×2
			cnt.F += 3 // Mul, Mul, Sub
			acc = acc - dd[k]*l[j*n+k]*l[j*n+k]
		}
		if acc == 0 {
			return false
		}
		dd[j] = acc
		for i := j + 1; i < n; i++ {
			cnt.M++
			cnt.I++ // a.At(i,j)
			v := a[i*n+j]
			for k := 0; k < j; k++ {
				cnt.M += 2
				cnt.I += 2 // l.At(i,k), l.At(j,k)
				cnt.F += 3 // Mul, Mul, Sub
				v = v - dd[k]*l[i*n+k]*l[j*n+k]
			}
			cnt.F++ // Div
			cnt.M++
			cnt.I++ // Set(i,j)
			l[i*n+j] = v / dd[j]
		}
	}
	return true
}

func ldltFix(cnt *profile.Counts, a []fixed.Num, l []fixed.Num, dd []fixed.Num, n int) bool {
	for j := 0; j < n; j++ {
		cnt.M++
		cnt.I++ // a.At(j,j)
		acc := a[j*n+j]
		for k := 0; k < j; k++ {
			cnt.M += 2
			cnt.I += 2                               // l.At(j,k) ×2
			cnt.I += 2*fixed.CostMul + fixed.CostSub // Mul, Mul, Sub
			acc = acc.SubQuiet(dd[k].MulQuiet(l[j*n+k]).MulQuiet(l[j*n+k]))
		}
		if acc.IsZero() {
			return false
		}
		dd[j] = acc
		for i := j + 1; i < n; i++ {
			cnt.M++
			cnt.I++ // a.At(i,j)
			v := a[i*n+j]
			for k := 0; k < j; k++ {
				cnt.M += 2
				cnt.I += 2                               // l.At(i,k), l.At(j,k)
				cnt.I += 2*fixed.CostMul + fixed.CostSub // Mul, Mul, Sub
				v = v.SubQuiet(dd[k].MulQuiet(l[i*n+k]).MulQuiet(l[j*n+k]))
			}
			cnt.I += fixed.CostDiv // Div
			cnt.M++
			cnt.I++ // Set(i,j)
			l[i*n+j] = v.DivQuiet(dd[j])
		}
	}
	return true
}

// ldltDecomposeFast is the dispatcher behind LDLTDecompose.
func ldltDecomposeFast[T scalar.Real[T]](a Mat[T]) (f *LDLT[T], ok bool, singular bool) {
	if !fastFamily[T]() {
		return nil, false, false
	}
	n := a.rows
	// Identity(n, a.like()): n hooked diagonal Sets.
	l := Zeros[T](n, n)
	one := a.like().FromFloat(1)
	var cnt profile.Counts
	for i := 0; i < n; i++ {
		cnt.M++
		cnt.I++
		l.d[i*n+i] = one
	}
	d := make(Vec[T], n)
	good := false
	switch ad := any(a.d).(type) {
	case []scalar.F32:
		good = ldltNat(&cnt, ad, any(l.d).([]scalar.F32), any([]T(d)).([]scalar.F32), n)
	case []scalar.F64:
		good = ldltNat(&cnt, ad, any(l.d).([]scalar.F64), any([]T(d)).([]scalar.F64), n)
	case []fixed.Num:
		good = ldltFix(&cnt, ad, any(l.d).([]fixed.Num), any([]T(d)).([]fixed.Num), n)
	}
	profile.AddCounts(cnt)
	if !good {
		return nil, true, true
	}
	return &LDLT[T]{l: l, d: d}, true, false
}

// --- LDLT solve ---

func ldltSolveNat[F native](cnt *profile.Counts, l []F, dd []F, n int, b []F) []F {
	y, yh := borrowSlice[F](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Sub
			acc = acc - l[i*n+j]*y[j]
		}
		y[i] = acc
	}
	x := make([]F, n)
	for i := n - 1; i >= 0; i-- {
		cnt.F++ // Div
		acc := y[i] / dd[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++    // At(j,i)
			cnt.F += 2 // Mul, Sub
			acc = acc - l[j*n+i]*x[j]
		}
		x[i] = acc
	}
	return x
}

func ldltSolveFix(cnt *profile.Counts, l []fixed.Num, dd []fixed.Num, n int, b []fixed.Num) []fixed.Num {
	y, yh := borrowSlice[fixed.Num](n)
	defer yh.put()
	for i := 0; i < n; i++ {
		acc := b[i]
		for j := 0; j < i; j++ {
			cnt.M++
			cnt.I++                                // At(i,j)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(l[i*n+j].MulQuiet(y[j]))
		}
		y[i] = acc
	}
	x := make([]fixed.Num, n)
	for i := n - 1; i >= 0; i-- {
		cnt.I += fixed.CostDiv // Div
		acc := y[i].DivQuiet(dd[i])
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++                                // At(j,i)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(l[j*n+i].MulQuiet(x[j]))
		}
		x[i] = acc
	}
	return x
}

// ldltSolveFast is the dispatcher behind LDLT.Solve.
func ldltSolveFast[T scalar.Real[T]](f *LDLT[T], b Vec[T]) (Vec[T], bool) {
	n := len(f.d)
	var cnt profile.Counts
	var x any
	switch ld := any(f.l.d).(type) {
	case []scalar.F32:
		x = ldltSolveNat(&cnt, ld, any([]T(f.d)).([]scalar.F32), n, any([]T(b)).([]scalar.F32))
	case []scalar.F64:
		x = ldltSolveNat(&cnt, ld, any([]T(f.d)).([]scalar.F64), n, any([]T(b)).([]scalar.F64))
	case []fixed.Num:
		x = ldltSolveFix(&cnt, ld, any([]T(f.d)).([]fixed.Num), n, any([]T(b)).([]fixed.Num))
	default:
		return nil, false
	}
	profile.AddCounts(cnt)
	return Vec[T](x.([]T)), true
}

// --- QR decomposition ---

func qrNat[F native](cnt *profile.Counts, d []F, m, n int, rdiag []F) {
	for k := 0; k < n; k++ {
		var nrm F
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++ // At(i,k)
			v := d[i*n+k]
			cnt.F += 2 // Mul, Add
			nrm = nrm + v*v
		}
		cnt.F++ // Sqrt
		nrm = F(math.Sqrt(float64(nrm)))
		if nrm == 0 {
			rdiag[k] = nrm
			continue
		}
		cnt.M++
		cnt.I++ // At(k,k)
		cnt.B++ // Less
		if d[k*n+k] < 0 {
			cnt.F++ // Neg
			nrm = -nrm
		}
		cnt.F++ // Div
		invN := 1 / nrm
		for i := k; i < m; i++ {
			cnt.M += 2
			cnt.I += 2 // At(i,k) + Set(i,k)
			cnt.F++    // Mul
			d[i*n+k] = d[i*n+k] * invN
		}
		cnt.M += 2
		cnt.I += 2 // At(k,k) + Set(k,k)
		cnt.F++    // Add
		d[k*n+k] = d[k*n+k] + 1
		for j := k + 1; j < n; j++ {
			var s F
			for i := k; i < m; i++ {
				cnt.M += 2
				cnt.I += 2 // At(i,k), At(i,j)
				cnt.F += 2 // Mul, Add
				s = s + d[i*n+k]*d[i*n+j]
			}
			cnt.F++ // Neg
			cnt.M++
			cnt.I++ // At(k,k)
			cnt.F++ // Div
			s = -s / d[k*n+k]
			for i := k; i < m; i++ {
				cnt.M += 3
				cnt.I += 3 // At(i,j), At(i,k), Set(i,j)
				cnt.F += 2 // Mul, Add
				d[i*n+j] = d[i*n+j] + s*d[i*n+k]
			}
		}
		cnt.F++ // Neg
		rdiag[k] = -nrm
	}
}

func qrFix(cnt *profile.Counts, d []fixed.Num, m, n int, rdiag []fixed.Num) {
	for k := 0; k < n; k++ {
		var nrm fixed.Num
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++ // At(i,k)
			v := d[i*n+k]
			cnt.I += fixed.CostMul + fixed.CostAdd // Mul, Add
			nrm = nrm.AddQuiet(v.MulQuiet(v))
		}
		cnt.I += fixed.CostSqrt // Sqrt
		nrm = nrm.SqrtQuiet()
		if nrm.IsZero() {
			rdiag[k] = nrm
			continue
		}
		cnt.M++
		cnt.I++ // At(k,k)
		cnt.B++ // Less
		if d[k*n+k].LessQuiet(nrm.FromFloat(0)) {
			cnt.I += fixed.CostNeg // Neg
			nrm = nrm.NegQuiet()
		}
		cnt.I += fixed.CostDiv // Div
		invN := nrm.FromFloat(1).DivQuiet(nrm)
		for i := k; i < m; i++ {
			cnt.M += 2
			cnt.I += 2             // At(i,k) + Set(i,k)
			cnt.I += fixed.CostMul // Mul
			d[i*n+k] = d[i*n+k].MulQuiet(invN)
		}
		cnt.M += 2
		cnt.I += 2             // At(k,k) + Set(k,k)
		cnt.I += fixed.CostAdd // Add
		d[k*n+k] = d[k*n+k].AddQuiet(nrm.FromFloat(1))
		for j := k + 1; j < n; j++ {
			var s fixed.Num
			for i := k; i < m; i++ {
				cnt.M += 2
				cnt.I += 2                             // At(i,k), At(i,j)
				cnt.I += fixed.CostMul + fixed.CostAdd // Mul, Add
				s = s.AddQuiet(d[i*n+k].MulQuiet(d[i*n+j]))
			}
			cnt.I += fixed.CostNeg // Neg
			cnt.M++
			cnt.I++                // At(k,k)
			cnt.I += fixed.CostDiv // Div
			s = s.NegQuiet().DivQuiet(d[k*n+k])
			for i := k; i < m; i++ {
				cnt.M += 3
				cnt.I += 3                             // At(i,j), At(i,k), Set(i,j)
				cnt.I += fixed.CostMul + fixed.CostAdd // Mul, Add
				d[i*n+j] = d[i*n+j].AddQuiet(s.MulQuiet(d[i*n+k]))
			}
		}
		cnt.I += fixed.CostNeg // Neg
		rdiag[k] = nrm.NegQuiet()
	}
}

// qrDecomposeFast is the dispatcher behind QRDecompose.
func qrDecomposeFast[T scalar.Real[T]](a Mat[T]) (f *QR[T], ok bool) {
	if !fastFamily[T]() {
		return nil, false
	}
	m, n := a.rows, a.cols
	qr := a.Clone() // hooked: charges its M term exactly like the reference
	rdiag := make(Vec[T], n)
	var cnt profile.Counts
	switch d := any(qr.d).(type) {
	case []scalar.F32:
		qrNat(&cnt, d, m, n, any([]T(rdiag)).([]scalar.F32))
	case []scalar.F64:
		qrNat(&cnt, d, m, n, any([]T(rdiag)).([]scalar.F64))
	case []fixed.Num:
		qrFix(&cnt, d, m, n, any([]T(rdiag)).([]fixed.Num))
	}
	profile.AddCounts(cnt)
	return &QR[T]{qr: qr, rdiag: rdiag}, true
}

// --- QR solve ---

func qrSolveNat[F native](cnt *profile.Counts, d []F, m, n int, rdiag []F, b []F) []F {
	cnt.M += uint64(2 * m) // b.Clone()
	y, yh := borrowSlice[F](m)
	defer yh.put()
	copy(y, b)
	for k := 0; k < n; k++ {
		cnt.M++
		cnt.I++ // At(k,k)
		if d[k*n+k] == 0 {
			continue
		}
		var s F
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++    // At(i,k)
			cnt.F += 2 // Mul, Add
			s = s + d[i*n+k]*y[i]
		}
		cnt.F++ // Neg
		cnt.M++
		cnt.I++ // At(k,k)
		cnt.F++ // Div
		s = -s / d[k*n+k]
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++    // At(i,k)
			cnt.F += 2 // Mul, Add
			y[i] = y[i] + s*d[i*n+k]
		}
	}
	x := make([]F, n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Sub
			acc = acc - d[i*n+j]*x[j]
		}
		cnt.F++ // Div
		x[i] = acc / rdiag[i]
	}
	return x
}

func qrSolveFix(cnt *profile.Counts, d []fixed.Num, m, n int, rdiag []fixed.Num, b []fixed.Num) []fixed.Num {
	cnt.M += uint64(2 * m) // b.Clone()
	y, yh := borrowSlice[fixed.Num](m)
	defer yh.put()
	copy(y, b)
	for k := 0; k < n; k++ {
		cnt.M++
		cnt.I++ // At(k,k)
		if d[k*n+k].IsZero() {
			continue
		}
		var s fixed.Num
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++                                // At(i,k)
			cnt.I += fixed.CostMul + fixed.CostAdd // Mul, Add
			s = s.AddQuiet(d[i*n+k].MulQuiet(y[i]))
		}
		cnt.I += fixed.CostNeg // Neg
		cnt.M++
		cnt.I++                // At(k,k)
		cnt.I += fixed.CostDiv // Div
		s = s.NegQuiet().DivQuiet(d[k*n+k])
		for i := k; i < m; i++ {
			cnt.M++
			cnt.I++                                // At(i,k)
			cnt.I += fixed.CostMul + fixed.CostAdd // Mul, Add
			y[i] = y[i].AddQuiet(s.MulQuiet(d[i*n+k]))
		}
	}
	x := make([]fixed.Num, n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			cnt.M++
			cnt.I++                                // At(i,j)
			cnt.I += fixed.CostMul + fixed.CostSub // Mul, Sub
			acc = acc.SubQuiet(d[i*n+j].MulQuiet(x[j]))
		}
		cnt.I += fixed.CostDiv // Div
		x[i] = acc.DivQuiet(rdiag[i])
	}
	return x
}

// qrSolveFast is the dispatcher behind QR.Solve; the caller has already
// performed the FullRank and length checks, which charge nothing.
func qrSolveFast[T scalar.Real[T]](f *QR[T], b Vec[T]) (Vec[T], bool) {
	m, n := f.qr.rows, f.qr.cols
	var cnt profile.Counts
	var x any
	switch d := any(f.qr.d).(type) {
	case []scalar.F32:
		x = qrSolveNat(&cnt, d, m, n, any([]T(f.rdiag)).([]scalar.F32), any([]T(b)).([]scalar.F32))
	case []scalar.F64:
		x = qrSolveNat(&cnt, d, m, n, any([]T(f.rdiag)).([]scalar.F64), any([]T(b)).([]scalar.F64))
	case []fixed.Num:
		x = qrSolveFix(&cnt, d, m, n, any([]T(f.rdiag)).([]fixed.Num), any([]T(b)).([]fixed.Num))
	default:
		return nil, false
	}
	profile.AddCounts(cnt)
	return Vec[T](x.([]T)), true
}
