package mat

// Specialized one-sided Jacobi SVD loops for the built-in scalar family,
// following the same 1:1 transcription discipline as fast_fact.go: every
// hooked At/Set becomes a direct index plus an M+I tally, every hooked
// scalar method native arithmetic (or a fixed.Num Quiet call) plus its
// scalar.OpCosts tally, accumulated into one local profile.Counts the
// dispatcher flushes in a single AddCounts. The Jacobi sweep is heavily
// data-dependent — pairs that pass the convergence threshold skip the
// rotation entirely, and the rotation scalar formula branches on the
// sign of zeta — so the tallies are taken along the exact control-flow
// path, which is also why the numeric results stay bit-identical: the
// fast sweep converges in precisely the same pair order as the hooked
// reference.
//
// The shared pre-loop setup (EpsOf probe, tolerance, Clone, Identity)
// still runs through the hooked helpers: it is outside the hot loops and
// reusing the real implementations keeps its charges trivially identical.

import (
	"math"
	"sort"

	"repro/internal/fixed"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// svdKernelNat runs the Jacobi sweeps, column-norm extraction, and
// descending sort/permutation on u (m×n) and v (n×n) in place, returning
// the permuted factors.
func svdKernelNat[F native](cnt *profile.Counts, u, v []F, m, n int, tol F) (us []F, ss []F, vs []F) {
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq F
				for i := 0; i < m; i++ {
					cnt.M += 2
					cnt.I += 2 // At(i,p), At(i,q)
					cnt.F += 6 // 3 Mul + 3 Add
					up, uq := u[i*n+p], u[i*n+q]
					app = app + up*up
					aqq = aqq + uq*uq
					apq = apq + up*uq
				}
				cnt.F += 3 // Mul, Sqrt, Mul
				thresh := tol * F(math.Sqrt(float64(F(app*aqq))))
				cnt.F++ // Abs
				cnt.B++ // LessEq
				aabs := apq
				if aabs < 0 {
					aabs = -aabs
				}
				if aabs <= thresh {
					continue
				}
				converged = false
				cnt.F += 3 // Sub, Mul, Div
				zeta := (aqq - app) / F(2*apq)
				// The explicit F conversions pin every intermediate to one
				// rounding step, matching the hooked method-by-method
				// evaluation even on FMA-fusing architectures.
				zz := F(zeta * zeta)
				var t F
				cnt.B++ // Less(0)
				if zeta < 0 {
					cnt.F += 7 // Neg, Mul, Add, Sqrt, Neg, Add, Div
					t = -1 / F(-zeta+F(math.Sqrt(float64(F(1+zz)))))
				} else {
					cnt.F += 5 // Mul, Add, Sqrt, Add, Div
					t = 1 / F(zeta+F(math.Sqrt(float64(F(1+zz)))))
				}
				cnt.F += 4 // Mul, Add, Sqrt, Div
				c := 1 / F(math.Sqrt(float64(F(1+F(t*t)))))
				cnt.F++ // Mul
				s := F(c * t)
				for i := 0; i < m; i++ {
					cnt.M += 4
					cnt.I += 4 // 2 At + 2 Set
					cnt.F += 6 // 4 Mul + Sub + Add
					up, uq := u[i*n+p], u[i*n+q]
					u[i*n+p] = F(c*up) - F(s*uq)
					u[i*n+q] = F(s*up) + F(c*uq)
				}
				for i := 0; i < n; i++ {
					cnt.M += 4
					cnt.I += 4
					cnt.F += 6
					vp, vq := v[i*n+p], v[i*n+q]
					v[i*n+p] = F(c*vp) - F(s*vq)
					v[i*n+q] = F(s*vp) + F(c*vq)
				}
			}
		}
		if converged {
			break
		}
	}

	sv, svh := borrowSlice[F](n)
	defer svh.put()
	for j := 0; j < n; j++ {
		var acc F
		for i := 0; i < m; i++ {
			cnt.M++
			cnt.I++    // At(i,j)
			cnt.F += 2 // Mul, Add
			x := u[i*n+j]
			acc = acc + x*x
		}
		cnt.F++ // Sqrt
		sv[j] = F(math.Sqrt(float64(acc)))
		if sv[j] != 0 {
			cnt.F++ // Div
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				cnt.M += 2
				cnt.I += 2 // At + Set
				cnt.F++    // Mul
				u[i*n+j] = u[i*n+j] * inv
			}
		}
	}

	idx, idxh := borrowSlice[int](n)
	defer idxh.put()
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		cnt.B++ // Less
		return sv[idx[y]] < sv[idx[x]]
	})
	us = make([]F, m*n)
	vs = make([]F, n*n)
	ss = make([]F, n)
	for newJ, oldJ := range idx {
		ss[newJ] = sv[oldJ]
		for i := 0; i < m; i++ {
			cnt.M += 2
			cnt.I += 2 // At + Set
			us[i*n+newJ] = u[i*n+oldJ]
		}
		for i := 0; i < n; i++ {
			cnt.M += 2
			cnt.I += 2
			vs[i*n+newJ] = v[i*n+oldJ]
		}
	}
	return us, ss, vs
}

// svdKernelFix is svdKernelNat for fixed.Num.
func svdKernelFix(cnt *profile.Counts, u, v []fixed.Num, m, n int, one, two, tol fixed.Num) (us, ss, vs []fixed.Num) {
	zero := one.FromFloat(0)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq fixed.Num
				for i := 0; i < m; i++ {
					cnt.M += 2
					cnt.I += 2 + 3*fixed.CostMul + 3*fixed.CostAdd
					up, uq := u[i*n+p], u[i*n+q]
					app = app.AddQuiet(up.MulQuiet(up))
					aqq = aqq.AddQuiet(uq.MulQuiet(uq))
					apq = apq.AddQuiet(up.MulQuiet(uq))
				}
				cnt.I += 2*fixed.CostMul + fixed.CostSqrt
				thresh := tol.MulQuiet(app.MulQuiet(aqq).SqrtQuiet())
				cnt.I += fixed.CostAbs
				cnt.B++ // LessEq
				if apq.AbsQuiet().LessEqQuiet(thresh) {
					continue
				}
				converged = false
				cnt.I += fixed.CostSub + fixed.CostMul + fixed.CostDiv
				zeta := aqq.SubQuiet(app).DivQuiet(two.MulQuiet(apq))
				var t fixed.Num
				cnt.B++ // Less(0)
				if zeta.LessQuiet(zero) {
					cnt.I += 2*fixed.CostNeg + fixed.CostMul + 2*fixed.CostAdd + fixed.CostSqrt + fixed.CostDiv
					t = one.NegQuiet().DivQuiet(zeta.NegQuiet().AddQuiet(one.AddQuiet(zeta.MulQuiet(zeta)).SqrtQuiet()))
				} else {
					cnt.I += fixed.CostMul + 2*fixed.CostAdd + fixed.CostSqrt + fixed.CostDiv
					t = one.DivQuiet(zeta.AddQuiet(one.AddQuiet(zeta.MulQuiet(zeta)).SqrtQuiet()))
				}
				cnt.I += fixed.CostMul + fixed.CostAdd + fixed.CostSqrt + fixed.CostDiv
				c := one.DivQuiet(one.AddQuiet(t.MulQuiet(t)).SqrtQuiet())
				cnt.I += fixed.CostMul
				s := c.MulQuiet(t)
				for i := 0; i < m; i++ {
					cnt.M += 4
					cnt.I += 4 + 4*fixed.CostMul + fixed.CostSub + fixed.CostAdd
					up, uq := u[i*n+p], u[i*n+q]
					u[i*n+p] = c.MulQuiet(up).SubQuiet(s.MulQuiet(uq))
					u[i*n+q] = s.MulQuiet(up).AddQuiet(c.MulQuiet(uq))
				}
				for i := 0; i < n; i++ {
					cnt.M += 4
					cnt.I += 4 + 4*fixed.CostMul + fixed.CostSub + fixed.CostAdd
					vp, vq := v[i*n+p], v[i*n+q]
					v[i*n+p] = c.MulQuiet(vp).SubQuiet(s.MulQuiet(vq))
					v[i*n+q] = s.MulQuiet(vp).AddQuiet(c.MulQuiet(vq))
				}
			}
		}
		if converged {
			break
		}
	}

	sv, svh := borrowSlice[fixed.Num](n)
	defer svh.put()
	for j := 0; j < n; j++ {
		var acc fixed.Num
		for i := 0; i < m; i++ {
			cnt.M++
			cnt.I += 1 + fixed.CostMul + fixed.CostAdd
			x := u[i*n+j]
			acc = acc.AddQuiet(x.MulQuiet(x))
		}
		cnt.I += fixed.CostSqrt
		sv[j] = acc.SqrtQuiet()
		if !sv[j].IsZero() {
			cnt.I += fixed.CostDiv
			inv := one.DivQuiet(sv[j])
			for i := 0; i < m; i++ {
				cnt.M += 2
				cnt.I += 2 + fixed.CostMul
				u[i*n+j] = u[i*n+j].MulQuiet(inv)
			}
		}
	}

	idx, idxh := borrowSlice[int](n)
	defer idxh.put()
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		cnt.B++ // Less
		return sv[idx[y]].LessQuiet(sv[idx[x]])
	})
	us = make([]fixed.Num, m*n)
	vs = make([]fixed.Num, n*n)
	ss = make([]fixed.Num, n)
	for newJ, oldJ := range idx {
		ss[newJ] = sv[oldJ]
		for i := 0; i < m; i++ {
			cnt.M += 2
			cnt.I += 2
			us[i*n+newJ] = u[i*n+oldJ]
		}
		for i := 0; i < n; i++ {
			cnt.M += 2
			cnt.I += 2
			vs[i*n+newJ] = v[i*n+oldJ]
		}
	}
	return us, ss, vs
}

// svdFast is the bulk path of SVD for m >= n inputs. The setup phase
// (epsilon probe, tolerance, Clone, Identity) runs through the same
// hooked helpers as the generic path; only the sweeps onward are
// transcribed.
func svdFast[T scalar.Real[T]](a Mat[T]) (SVDResult[T], bool) {
	if !fastFamily[T]() {
		return SVDResult[T]{}, false
	}
	m, n := a.rows, a.cols
	like := a.like()
	one := scalar.One(like)
	two := like.FromFloat(2)
	eps := EpsOf(like)
	tol := eps.Mul(like.FromFloat(8))

	u := a.Clone()
	v := Identity(n, like)

	var cnt profile.Counts
	var us, ss, vs any
	switch ud := any(u.d).(type) {
	case []scalar.F32:
		a2, b2, c2 := svdKernelNat(&cnt, ud, any(v.d).([]scalar.F32), m, n, any(tol).(scalar.F32))
		us, ss, vs = a2, b2, c2
	case []scalar.F64:
		a2, b2, c2 := svdKernelNat(&cnt, ud, any(v.d).([]scalar.F64), m, n, any(tol).(scalar.F64))
		us, ss, vs = a2, b2, c2
	case []fixed.Num:
		a2, b2, c2 := svdKernelFix(&cnt, ud, any(v.d).([]fixed.Num), m, n,
			any(one).(fixed.Num), any(two).(fixed.Num), any(tol).(fixed.Num))
		us, ss, vs = a2, b2, c2
	default:
		return SVDResult[T]{}, false
	}
	profile.AddCounts(cnt)
	return SVDResult[T]{
		U: Mat[T]{rows: m, cols: n, d: us.([]T)},
		S: Vec[T](ss.([]T)),
		V: Mat[T]{rows: n, cols: n, d: vs.([]T)},
	}, true
}
