package geom

import (
	"math"

	"repro/internal/mat"
	"repro/internal/scalar"
)

// Hat returns the skew-symmetric matrix [v]× with [v]×·w = v×w.
func Hat[T scalar.Real[T]](v mat.Vec[T]) mat.Mat[T] {
	if len(v) != 3 {
		panic("geom: Hat requires a 3-vector")
	}
	m := mat.Zeros[T](3, 3)
	m.Set(0, 1, v[2].Neg())
	m.Set(0, 2, v[1])
	m.Set(1, 0, v[2])
	m.Set(1, 2, v[0].Neg())
	m.Set(2, 0, v[1].Neg())
	m.Set(2, 1, v[0])
	return m
}

// Vee inverts Hat: extracts the 3-vector from a skew-symmetric matrix.
func Vee[T scalar.Real[T]](m mat.Mat[T]) mat.Vec[T] {
	return mat.Vec[T]{m.At(2, 1), m.At(0, 2), m.At(1, 0)}
}

// ExpSO3 is the matrix exponential of [w]× via Rodrigues' formula.
func ExpSO3[T scalar.Real[T]](w mat.Vec[T]) mat.Mat[T] {
	theta := w.Norm()
	like := theta
	one := scalar.One(like)
	id := mat.Identity(3, like.FromFloat(1))
	if theta.Float() < 1e-9 {
		return id.Add(Hat(w))
	}
	axis := w.Scale(one.Div(theta))
	k := Hat(axis)
	s := scalar.Sin(theta)
	c := scalar.Cos(theta)
	return id.Add(k.Scale(s)).Add(k.Mul(k).Scale(one.Sub(c)))
}

// LogSO3 recovers the rotation vector from a rotation matrix.
func LogSO3[T scalar.Real[T]](r mat.Mat[T]) mat.Vec[T] {
	like := r.At(0, 0)
	one := scalar.One(like)
	two := like.FromFloat(2)
	tr := r.Trace()
	cosTheta := tr.Sub(one).Div(two)
	theta := scalar.Acos(scalar.Clamp(cosTheta, one.Neg(), one))
	if theta.Float() < 1e-9 {
		return mat.Vec[T]{scalar.Zero(like), scalar.Zero(like), scalar.Zero(like)}
	}
	s := scalar.Sin(theta)
	f := theta.Div(two.Mul(s))
	return mat.Vec[T]{
		r.At(2, 1).Sub(r.At(1, 2)).Mul(f),
		r.At(0, 2).Sub(r.At(2, 0)).Mul(f),
		r.At(1, 0).Sub(r.At(0, 1)).Mul(f),
	}
}

// RotX returns the rotation of angle radians about the x axis.
func RotX[T scalar.Real[T]](angle T) mat.Mat[T] {
	c, s := scalar.Cos(angle), scalar.Sin(angle)
	one := scalar.One(angle)
	zero := scalar.Zero(angle)
	return mat.New(3, 3, []T{
		one, zero, zero,
		zero, c, s.Neg(),
		zero, s, c,
	})
}

// RotY returns the rotation of angle radians about the y axis.
func RotY[T scalar.Real[T]](angle T) mat.Mat[T] {
	c, s := scalar.Cos(angle), scalar.Sin(angle)
	one := scalar.One(angle)
	zero := scalar.Zero(angle)
	return mat.New(3, 3, []T{
		c, zero, s,
		zero, one, zero,
		s.Neg(), zero, c,
	})
}

// RotZ returns the rotation of angle radians about the z axis.
func RotZ[T scalar.Real[T]](angle T) mat.Mat[T] {
	c, s := scalar.Cos(angle), scalar.Sin(angle)
	one := scalar.One(angle)
	zero := scalar.Zero(angle)
	return mat.New(3, 3, []T{
		c, s.Neg(), zero,
		s, c, zero,
		zero, zero, one,
	})
}

// RotationAngleDeg returns the angle of rotation between two rotation
// matrices in degrees — the standard pose-error metric in Case Study #4.
func RotationAngleDeg[T scalar.Real[T]](a, b mat.Mat[T]) float64 {
	rel := a.Transpose().Mul(b)
	tr := rel.Trace().Float()
	c := (tr - 1) / 2
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c) * 180 / math.Pi
}

// ProjectToSO3 returns the closest rotation matrix to m in Frobenius norm
// via SVD (U·Vᵀ with determinant fix) — used by pose solvers to clean up
// numerically drifted rotations.
func ProjectToSO3[T scalar.Real[T]](m mat.Mat[T]) mat.Mat[T] {
	res := mat.SVD(m)
	r := res.U.Mul(res.V.Transpose())
	if mat.Det3(r).Float() < 0 {
		// Flip the last column of U.
		u := res.U.Clone()
		for i := 0; i < 3; i++ {
			u.Set(i, 2, u.At(i, 2).Neg())
		}
		r = u.Mul(res.V.Transpose())
	}
	return r
}
