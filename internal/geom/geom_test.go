package geom_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/scalar"
)

type F = scalar.F64

func vec3(x, y, z float64) mat.Vec[F] { return mat.VecFromFloats(F(0), []float64{x, y, z}) }

func randQuat(rng *rand.Rand) geom.Quat[F] {
	q := geom.Quat[F]{
		W: F(rng.NormFloat64()), X: F(rng.NormFloat64()),
		Y: F(rng.NormFloat64()), Z: F(rng.NormFloat64()),
	}
	return q.Normalized()
}

func TestIdentityQuat(t *testing.T) {
	q := geom.IdentityQuat(F(0))
	v := vec3(1, 2, 3)
	r := q.Rotate(v).Floats()
	if r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Fatalf("identity rotate = %v", r)
	}
}

func TestAxisAngleRotation(t *testing.T) {
	// 90° about z: (1,0,0) -> (0,1,0).
	q := geom.QuatFromAxisAngle(vec3(0, 0, 1), F(math.Pi/2))
	r := q.Rotate(vec3(1, 0, 0)).Floats()
	if math.Abs(r[0]) > 1e-12 || math.Abs(r[1]-1) > 1e-12 || math.Abs(r[2]) > 1e-12 {
		t.Fatalf("rotated = %v, want (0,1,0)", r)
	}
}

func TestQuatMulComposition(t *testing.T) {
	qz := geom.QuatFromAxisAngle(vec3(0, 0, 1), F(math.Pi/2))
	qx := geom.QuatFromAxisAngle(vec3(1, 0, 0), F(math.Pi/2))
	// Apply qz then qx: (1,0,0) -> (0,1,0) -> (0,0,1).
	composed := qx.Mul(qz)
	r := composed.Rotate(vec3(1, 0, 0)).Floats()
	if math.Abs(r[2]-1) > 1e-12 {
		t.Fatalf("composed rotate = %v, want (0,0,1)", r)
	}
}

func TestRotationMatrixAgreesWithQuatRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		q := randQuat(rng)
		v := vec3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		qv := q.Rotate(v).Floats()
		mv := q.RotationMatrix().MulVec(v).Floats()
		for k := 0; k < 3; k++ {
			if math.Abs(qv[k]-mv[k]) > 1e-12 {
				t.Fatalf("quat vs matrix rotate mismatch: %v vs %v", qv, mv)
			}
		}
	}
}

func TestQuatMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		q := randQuat(rng)
		back := geom.QuatFromRotationMatrix(q.RotationMatrix())
		// q and -q are the same rotation.
		if geom.QuatAngleDegrees(q, back) > 1e-5 {
			t.Fatalf("round trip angle error %g°", geom.QuatAngleDegrees(q, back))
		}
	}
}

func TestAngleTo(t *testing.T) {
	q := geom.IdentityQuat(F(0))
	r := geom.QuatFromAxisAngle(vec3(0, 1, 0), F(0.3))
	if got := q.AngleTo(r).Float(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("AngleTo = %g, want 0.3", got)
	}
}

func TestIntegrateConstantRate(t *testing.T) {
	// Integrate 1 rad/s about z for 1 s in small steps: ~1 rad rotation.
	q := geom.IdentityQuat(F(0))
	gyro := vec3(0, 0, 1)
	dt := F(0.001)
	for i := 0; i < 1000; i++ {
		q = q.Integrate(gyro, dt)
	}
	want := geom.QuatFromAxisAngle(vec3(0, 0, 1), F(1))
	if err := geom.QuatAngleDegrees(q, want); err > 0.1 {
		t.Fatalf("integration error %g°", err)
	}
}

func TestHatVee(t *testing.T) {
	v := vec3(1, 2, 3)
	h := geom.Hat(v)
	// Hat(v)·w == v×w.
	w := vec3(-1, 0.5, 2)
	hw := h.MulVec(w).Floats()
	cr := v.Cross(w).Floats()
	for i := 0; i < 3; i++ {
		if math.Abs(hw[i]-cr[i]) > 1e-14 {
			t.Fatalf("Hat·w = %v, v×w = %v", hw, cr)
		}
	}
	back := geom.Vee(h).Floats()
	if back[0] != 1 || back[1] != 2 || back[2] != 3 {
		t.Fatalf("Vee(Hat(v)) = %v", back)
	}
}

func TestExpLogSO3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		w := vec3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		// Keep |w| < π for log uniqueness.
		if w.Norm().Float() >= math.Pi {
			w = w.Scale(F(2.5 / w.Norm().Float()))
		}
		r := geom.ExpSO3(w)
		// r must be a rotation: det=1, RᵀR=I.
		if math.Abs(mat.Det3(r).Float()-1) > 1e-10 {
			t.Fatalf("det(Exp) = %g", mat.Det3(r).Float())
		}
		back := geom.LogSO3(r).Floats()
		orig := w.Floats()
		for k := 0; k < 3; k++ {
			if math.Abs(back[k]-orig[k]) > 1e-8 {
				t.Fatalf("Log(Exp(w)) = %v, want %v", back, orig)
			}
		}
	}
}

func TestRotXYZ(t *testing.T) {
	rx := geom.RotX(F(math.Pi / 2)).MulVec(vec3(0, 1, 0)).Floats()
	if math.Abs(rx[2]-1) > 1e-12 {
		t.Fatalf("RotX(π/2)·ŷ = %v, want ẑ", rx)
	}
	ry := geom.RotY(F(math.Pi / 2)).MulVec(vec3(0, 0, 1)).Floats()
	if math.Abs(ry[0]-1) > 1e-12 {
		t.Fatalf("RotY(π/2)·ẑ = %v, want x̂", ry)
	}
	rz := geom.RotZ(F(math.Pi / 2)).MulVec(vec3(1, 0, 0)).Floats()
	if math.Abs(rz[1]-1) > 1e-12 {
		t.Fatalf("RotZ(π/2)·x̂ = %v, want ŷ", rz)
	}
}

func TestRotationAngleDeg(t *testing.T) {
	a := geom.RotZ(F(0.2))
	b := geom.RotZ(F(0.5))
	if got := geom.RotationAngleDeg(a, b); math.Abs(got-0.3*180/math.Pi) > 1e-9 {
		t.Fatalf("RotationAngleDeg = %g", got)
	}
}

func TestProjectToSO3(t *testing.T) {
	// Perturb a rotation, project, verify orthogonality restored.
	r := geom.RotZ(F(0.7)).Mul(geom.RotX(F(-0.3)))
	noisy := r.Clone()
	noisy.Set(0, 0, noisy.At(0, 0).Add(F(0.01)))
	noisy.Set(1, 2, noisy.At(1, 2).Add(F(-0.02)))
	p := geom.ProjectToSO3(noisy)
	ortho := p.Transpose().Mul(p)
	id := mat.Identity(3, F(0))
	if ortho.Sub(id).FrobNorm().Float() > 1e-10 {
		t.Fatalf("projection not orthogonal: %v", ortho.Floats())
	}
	if math.Abs(mat.Det3(p).Float()-1) > 1e-10 {
		t.Fatalf("projection det = %g", mat.Det3(p).Float())
	}
	if geom.RotationAngleDeg(p, r) > 2 {
		t.Fatalf("projection strayed %g° from original", geom.RotationAngleDeg(p, r))
	}
}

func TestFixedPointQuaternion(t *testing.T) {
	like := fixed.New(0, 24)
	q := geom.QuatFromFloats(like, 1, 0, 0, 0)
	gyro := mat.VecFromFloats(like, []float64{0, 0, 0.5})
	dt := fixed.New(0.01, 24)
	for i := 0; i < 100; i++ {
		q = q.Integrate(gyro, dt)
	}
	// ~0.5 rad about z after 1 s.
	want := geom.QuatFromAxisAngle(mat.VecFromFloats(like, []float64{0, 0, 1}), fixed.New(0.5, 24))
	if err := geom.QuatAngleDegrees(q, want); err > 1 {
		t.Fatalf("fixed-point integration error %g°", err)
	}
}

// Property: rotation preserves vector norm.
func TestPropRotationPreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randQuat(rng)
		v := vec3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		return math.Abs(q.Rotate(v).Norm().Float()-v.Norm().Float()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: q·q⁻¹ = identity.
func TestPropQuatInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randQuat(rng)
		d := q.Mul(q.Conj())
		return math.Abs(d.W.Float()-1) < 1e-12 &&
			math.Abs(d.X.Float()) < 1e-12 &&
			math.Abs(d.Y.Float()) < 1e-12 &&
			math.Abs(d.Z.Float()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalization produces unit quaternions.
func TestPropNormalizedIsUnit(t *testing.T) {
	f := func(w, x, y, z float64) bool {
		if math.IsNaN(w+x+y+z) || math.IsInf(w+x+y+z, 0) {
			return true
		}
		// Keep components in a range whose squared sum stays finite,
		// mirroring the physically plausible inputs of the kernels.
		if math.Abs(w) > 1e150 || math.Abs(x) > 1e150 || math.Abs(y) > 1e150 || math.Abs(z) > 1e150 {
			return true
		}
		q := geom.Quat[F]{W: F(w), X: F(x), Y: F(y), Z: F(z)}.Normalized()
		return math.Abs(q.Norm().Float()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
