// Package geom provides the rotation machinery shared by the estimation
// and control kernels: quaternions, rotation matrices, and the so(3)
// hat/vee/exp/log maps, all generic over the scalar family so the same
// code runs in float, double, and fixed point.
package geom

import (
	"math"

	"repro/internal/mat"
	"repro/internal/scalar"
)

// Quat is a unit quaternion w + xi + yj + zk representing an attitude.
type Quat[T scalar.Real[T]] struct {
	W, X, Y, Z T
}

// IdentityQuat returns the identity rotation in like's format.
func IdentityQuat[T scalar.Real[T]](like T) Quat[T] {
	return Quat[T]{W: like.FromFloat(1), X: like.FromFloat(0), Y: like.FromFloat(0), Z: like.FromFloat(0)}
}

// QuatFromFloats builds a quaternion in like's format.
func QuatFromFloats[T scalar.Real[T]](like T, w, x, y, z float64) Quat[T] {
	return Quat[T]{W: like.FromFloat(w), X: like.FromFloat(x), Y: like.FromFloat(y), Z: like.FromFloat(z)}
}

// QuatFromAxisAngle builds the rotation of angle radians about the given
// (not necessarily unit) axis.
func QuatFromAxisAngle[T scalar.Real[T]](axis mat.Vec[T], angle T) Quat[T] {
	half := angle.Mul(angle.FromFloat(0.5))
	s := scalar.Sin(half)
	c := scalar.Cos(half)
	a := axis.Normalized()
	return Quat[T]{W: c, X: a[0].Mul(s), Y: a[1].Mul(s), Z: a[2].Mul(s)}
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat[T]) Mul(r Quat[T]) Quat[T] {
	return Quat[T]{
		W: q.W.Mul(r.W).Sub(q.X.Mul(r.X)).Sub(q.Y.Mul(r.Y)).Sub(q.Z.Mul(r.Z)),
		X: q.W.Mul(r.X).Add(q.X.Mul(r.W)).Add(q.Y.Mul(r.Z)).Sub(q.Z.Mul(r.Y)),
		Y: q.W.Mul(r.Y).Sub(q.X.Mul(r.Z)).Add(q.Y.Mul(r.W)).Add(q.Z.Mul(r.X)),
		Z: q.W.Mul(r.Z).Add(q.X.Mul(r.Y)).Sub(q.Y.Mul(r.X)).Add(q.Z.Mul(r.W)),
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat[T]) Conj() Quat[T] {
	return Quat[T]{W: q.W, X: q.X.Neg(), Y: q.Y.Neg(), Z: q.Z.Neg()}
}

// NormSq returns |q|².
func (q Quat[T]) NormSq() T {
	return q.W.Mul(q.W).Add(q.X.Mul(q.X)).Add(q.Y.Mul(q.Y)).Add(q.Z.Mul(q.Z))
}

// Norm returns |q|.
func (q Quat[T]) Norm() T { return q.NormSq().Sqrt() }

// Normalized returns q/|q|; a zero quaternion returns identity, which is
// the safe MCU fallback.
func (q Quat[T]) Normalized() Quat[T] {
	n := q.Norm()
	if n.IsZero() {
		return IdentityQuat(q.W)
	}
	inv := scalar.One(n).Div(n)
	return Quat[T]{W: q.W.Mul(inv), X: q.X.Mul(inv), Y: q.Y.Mul(inv), Z: q.Z.Mul(inv)}
}

// Scale returns s·q (not normalized).
func (q Quat[T]) Scale(s T) Quat[T] {
	return Quat[T]{W: q.W.Mul(s), X: q.X.Mul(s), Y: q.Y.Mul(s), Z: q.Z.Mul(s)}
}

// Add returns the component-wise sum (used mid-integration).
func (q Quat[T]) Add(r Quat[T]) Quat[T] {
	return Quat[T]{W: q.W.Add(r.W), X: q.X.Add(r.X), Y: q.Y.Add(r.Y), Z: q.Z.Add(r.Z)}
}

// Rotate applies the rotation to a 3-vector: q·v·q*.
func (q Quat[T]) Rotate(v mat.Vec[T]) mat.Vec[T] {
	// Optimized sandwich product: t = 2·(q_vec × v); v' = v + w·t + q_vec × t.
	two := q.W.FromFloat(2)
	qv := mat.Vec[T]{q.X, q.Y, q.Z}
	t := qv.Cross(v).Scale(two)
	return v.Add(t.Scale(q.W)).Add(qv.Cross(t))
}

// RotationMatrix returns the 3×3 rotation matrix of q.
func (q Quat[T]) RotationMatrix() mat.Mat[T] {
	one := scalar.One(q.W)
	two := q.W.FromFloat(2)
	w, x, y, z := q.W, q.X, q.Y, q.Z
	xx, yy, zz := x.Mul(x), y.Mul(y), z.Mul(z)
	xy, xz, yz := x.Mul(y), x.Mul(z), y.Mul(z)
	wx, wy, wz := w.Mul(x), w.Mul(y), w.Mul(z)
	m := mat.Zeros[T](3, 3)
	m.Set(0, 0, one.Sub(two.Mul(yy.Add(zz))))
	m.Set(0, 1, two.Mul(xy.Sub(wz)))
	m.Set(0, 2, two.Mul(xz.Add(wy)))
	m.Set(1, 0, two.Mul(xy.Add(wz)))
	m.Set(1, 1, one.Sub(two.Mul(xx.Add(zz))))
	m.Set(1, 2, two.Mul(yz.Sub(wx)))
	m.Set(2, 0, two.Mul(xz.Sub(wy)))
	m.Set(2, 1, two.Mul(yz.Add(wx)))
	m.Set(2, 2, one.Sub(two.Mul(xx.Add(yy))))
	return m
}

// QuatFromRotationMatrix recovers a quaternion from a rotation matrix
// using Shepperd's method (max-trace branch selection).
func QuatFromRotationMatrix[T scalar.Real[T]](r mat.Mat[T]) Quat[T] {
	like := r.At(0, 0)
	one := scalar.One(like)
	quarter := like.FromFloat(0.25)
	tr := r.At(0, 0).Add(r.At(1, 1)).Add(r.At(2, 2))
	zero := scalar.Zero(like)
	var q Quat[T]
	switch {
	case zero.Less(tr):
		s := one.Add(tr).Sqrt().Mul(like.FromFloat(2)) // 4w
		q.W = s.Mul(quarter)
		q.X = r.At(2, 1).Sub(r.At(1, 2)).Div(s)
		q.Y = r.At(0, 2).Sub(r.At(2, 0)).Div(s)
		q.Z = r.At(1, 0).Sub(r.At(0, 1)).Div(s)
	case r.At(1, 1).Less(r.At(0, 0)) && r.At(2, 2).Less(r.At(0, 0)):
		s := one.Add(r.At(0, 0)).Sub(r.At(1, 1)).Sub(r.At(2, 2)).Sqrt().Mul(like.FromFloat(2))
		q.W = r.At(2, 1).Sub(r.At(1, 2)).Div(s)
		q.X = s.Mul(quarter)
		q.Y = r.At(0, 1).Add(r.At(1, 0)).Div(s)
		q.Z = r.At(0, 2).Add(r.At(2, 0)).Div(s)
	case r.At(2, 2).Less(r.At(1, 1)):
		s := one.Add(r.At(1, 1)).Sub(r.At(0, 0)).Sub(r.At(2, 2)).Sqrt().Mul(like.FromFloat(2))
		q.W = r.At(0, 2).Sub(r.At(2, 0)).Div(s)
		q.X = r.At(0, 1).Add(r.At(1, 0)).Div(s)
		q.Y = s.Mul(quarter)
		q.Z = r.At(1, 2).Add(r.At(2, 1)).Div(s)
	default:
		s := one.Add(r.At(2, 2)).Sub(r.At(0, 0)).Sub(r.At(1, 1)).Sqrt().Mul(like.FromFloat(2))
		q.W = r.At(1, 0).Sub(r.At(0, 1)).Div(s)
		q.X = r.At(0, 2).Add(r.At(2, 0)).Div(s)
		q.Y = r.At(1, 2).Add(r.At(2, 1)).Div(s)
		q.Z = s.Mul(quarter)
	}
	return q.Normalized()
}

// AngleTo returns the rotation angle (radians) between q and r — the
// attitude-error metric used throughout the case studies.
func (q Quat[T]) AngleTo(r Quat[T]) T {
	d := q.Conj().Mul(r)
	w := d.W.Abs()
	return scalar.Acos(scalar.Min(w, scalar.One(w))).Mul(w.FromFloat(2))
}

// Integrate advances q by body angular rate gyro (rad/s) over dt seconds
// using the first-order quaternion derivative q̇ = ½·q⊗(0, ω), followed
// by renormalization — exactly the update inside the attitude filters.
func (q Quat[T]) Integrate(gyro mat.Vec[T], dt T) Quat[T] {
	half := dt.Mul(dt.FromFloat(0.5))
	omega := Quat[T]{W: scalar.Zero(dt), X: gyro[0], Y: gyro[1], Z: gyro[2]}
	dq := q.Mul(omega).Scale(half)
	return q.Add(dq).Normalized()
}

// Floats returns (w, x, y, z) as float64.
func (q Quat[T]) Floats() (w, x, y, z float64) {
	return q.W.Float(), q.X.Float(), q.Y.Float(), q.Z.Float()
}

// QuatAngleDegrees converts the AngleTo result to degrees as float64 for
// reporting.
func QuatAngleDegrees[T scalar.Real[T]](q, r Quat[T]) float64 {
	return q.AngleTo(r).Float() * 180 / math.Pi
}
