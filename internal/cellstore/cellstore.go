// Package cellstore is the on-disk content-addressed store behind the
// persistent per-cell sweep cache (-cachedir). It is a flat directory
// of versioned JSON records, one file per content key: the key digests
// everything that determines a cell's bytes (kernel spec, board model,
// harness config — see report.CellKey), so a record is immutable once
// written and lookups never need invalidation, only presence checks.
//
// Durability contract:
//
//   - Writes are atomic: each Put lands in a private temp file in the
//     store directory and is published with os.Rename, so a concurrent
//     reader — or another process sharing the directory — sees either
//     no file or a complete record, never a torn one.
//   - Reads are verified: every record carries a format tag, a version,
//     its own key, and the SHA-256 of its payload. A record that fails
//     any check (truncation, bit flips, a foreign or older format) is
//     discarded — best-effort unlinked and counted on
//     cellstore.corrupt_discarded — and reported as a miss, so
//     corruption always heals into a recompute, never an error.
//   - Concurrent Puts of the same key are benign: both writers produce
//     identical bytes (the key is a content digest), and rename makes
//     whichever lands last win without readers ever seeing a mix.
//
// Resource-pressure contract (docs/robustness.md):
//
//   - A byte-size quota (SetQuota) bounds the directory: when a Put
//     pushes the store past the quota, the least-recently-used records
//     (Get refreshes recency) are garbage-collected down to 90% of the
//     bound and counted on cellstore.gc_evicted. Evicted cells simply
//     recompute on their next miss.
//   - Transient write errors retry a bounded number of times with
//     jittered backoff before giving up, so one flaky fsync never
//     costs a cell its persistence.
//   - A persistent write failure — disk full (ENOSPC) immediately,
//     or repeated exhausted retries — flips the store into read-only
//     degraded mode: Puts become cheap refusals, Gets keep serving
//     every warm cell, and the transition is counted on
//     cellstore.degraded and surfaced through Degraded() (which
//     entobenchd reports on /healthz). While degraded the store
//     periodically re-probes the disk on Put and exits degraded mode
//     on the first success, so clearing the disk heals the daemon
//     without a restart.
package cellstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
)

// Format is the record envelope's format tag.
const Format = "entobench.cell"

// Version is the record envelope version. Bump it whenever the payload
// schema or the measurement semantics change in a way the key does not
// capture; old records then read as misses and recompute.
const Version = 1

// ctrCorruptDiscarded counts records discarded on read for failing an
// integrity check (docs/observability.md).
var ctrCorruptDiscarded = obs.NewCounter(obs.CounterCellstoreCorruptDiscarded)

// ctrGCEvicted counts records the quota's LRU garbage collector
// removed; ctrDegraded counts transitions into read-only degraded mode
// (docs/observability.md).
var (
	ctrGCEvicted = obs.NewCounter(obs.CounterCellstoreGCEvicted)
	ctrDegraded  = obs.NewCounter(obs.CounterCellstoreDegraded)
)

// Write-retry policy: a transient Put error (anything but disk-full)
// retries up to putRetries times with jittered exponential backoff
// starting at putBackoffBase. Disk-full never retries — a full disk
// does not heal in milliseconds — and flips the store degraded at
// once.
const (
	putRetries     = 3
	putBackoffBase = 2 * time.Millisecond
)

// degradeAfterFailures is how many consecutive retry-exhausted Puts
// (of any error kind) it takes to conclude the failure is persistent
// and enter degraded mode without an explicit disk-full signal.
const degradeAfterFailures = 3

// DefaultProbeInterval is how often a degraded store re-probes the
// disk: at most one Put per interval attempts a real write, and the
// first success exits degraded mode.
const DefaultProbeInterval = 5 * time.Second

// envelope is the on-disk record: integrity metadata around an opaque
// payload owned by the caller (report's cell result schema).
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Store is one cache directory. It is safe for concurrent use by any
// number of goroutines and processes.
type Store struct {
	dir string

	// quota, when > 0, bounds the directory's total record bytes;
	// sizing state is maintained approximately under mu and trued up by
	// every GC scan.
	mu        sync.Mutex
	quota     int64
	size      int64
	sizeKnown bool

	// Degraded-mode state. degraded flips on a persistent write
	// failure; reason carries the rendered cause for /healthz;
	// consecFails counts retry-exhausted Puts since the last success;
	// lastProbe rate-limits recovery probes to one per probeEvery.
	degraded    atomic.Bool
	reason      atomic.Value // string
	consecFails atomic.Int64
	lastProbe   atomic.Int64 // unix nanos
	probeEvery  atomic.Int64 // nanos; DefaultProbeInterval unless set

	// faultHook, when set, is consulted before every disk touch — the
	// chaos harness's injection point (internal/chaos). A non-nil error
	// from the hook is treated exactly like the real syscall failing.
	faultHook atomic.Value // func(op, key string) error

	// backoffSleep is the retry delay function; tests shorten it.
	backoffSleep func(d time.Duration)
}

// Open returns a Store rooted at dir, creating the directory (and
// parents) if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellstore: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, backoffSleep: time.Sleep}
	s.probeEvery.Store(int64(DefaultProbeInterval))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetQuota bounds the store's total record bytes; n <= 0 removes the
// bound. When a Put pushes the directory past the quota the
// least-recently-used records are collected down to 90% of it.
func (s *Store) SetQuota(n int64) {
	s.mu.Lock()
	s.quota = n
	s.sizeKnown = false // re-scan on the next accounted Put
	s.mu.Unlock()
}

// Quota returns the configured byte bound (0 = unbounded).
func (s *Store) Quota() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota
}

// SetProbeInterval sets how often a degraded store re-probes the disk
// on Put; d <= 0 probes on every Put (test and chaos-harness use).
func (s *Store) SetProbeInterval(d time.Duration) { s.probeEvery.Store(int64(d)) }

// SetFaultHook installs (or, with nil, removes) a fault-injection hook
// consulted before every disk operation with the operation name
// ("put", "get") and the record key. A non-nil return is treated as
// the real operation failing — the chaos harness's seam
// (internal/chaos); production code never sets it.
func (s *Store) SetFaultHook(h func(op, key string) error) {
	s.faultHook.Store(&h)
}

// hookErr consults the fault hook, if any.
func (s *Store) hookErr(op, key string) error {
	if p, ok := s.faultHook.Load().(*func(op, key string) error); ok && *p != nil {
		return (*p)(op, key)
	}
	return nil
}

// Degraded reports whether the store is in read-only degraded mode,
// and why. A degraded store keeps serving Gets and refuses Puts
// cheaply until a recovery probe succeeds.
func (s *Store) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	reason, _ := s.reason.Load().(string)
	return true, reason
}

// enterDegraded flips the store read-only (idempotently) and records
// the cause; each actual transition is counted.
func (s *Store) enterDegraded(cause error) {
	s.reason.Store(fmt.Sprintf("cell store read-only: %v", cause))
	s.lastProbe.Store(time.Now().UnixNano())
	if s.degraded.CompareAndSwap(false, true) {
		ctrDegraded.Inc()
	}
}

// exitDegraded returns the store to writable after a successful probe.
func (s *Store) exitDegraded() {
	s.degraded.Store(false)
	s.consecFails.Store(0)
}

// probeDue reports whether a degraded Put should attempt a real write;
// at most one Put per probe interval does.
func (s *Store) probeDue() bool {
	every := s.probeEvery.Load()
	if every <= 0 {
		return true
	}
	last := s.lastProbe.Load()
	now := time.Now().UnixNano()
	return now-last >= every && s.lastProbe.CompareAndSwap(last, now)
}

// isDiskFull recognizes the no-space family of write errors — the
// canonical persistent failure that degrades the store immediately.
func isDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// ErrDegraded is the sentinel a Put returns while the store is
// read-only and no probe is due.
var ErrDegraded = errors.New("cellstore: degraded (read-only)")

// path maps a content key to its file. Keys are digest-shaped
// ("cell-<hex>"); anything else would be a caller bug, but the key is
// sanitized anyway so a hostile key cannot escape the directory.
func (s *Store) path(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, clean+".json")
}

// Get returns the payload stored under key, or ok=false on a miss. A
// present-but-invalid record — wrong format, wrong version, key
// mismatch, checksum mismatch, or unparseable JSON — is treated as a
// miss: it is counted on cellstore.corrupt_discarded and best-effort
// removed so the healed slot rewrites cleanly.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	if s.hookErr("get", key) != nil {
		return nil, false // injected read fault: a miss, never an error
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.discard(p)
		return nil, false
	}
	if env.Format != Format || env.Version != Version || env.Key != key {
		s.discard(p)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.discard(p)
		return nil, false
	}
	if s.Quota() > 0 {
		// Refresh recency so the LRU collector evicts cold cells first.
		now := time.Now()
		_ = os.Chtimes(p, now, now)
	}
	return env.Payload, true
}

// discard removes an invalid record, tolerating races with other
// healers (the file may already be gone).
func (s *Store) discard(path string) {
	ctrCorruptDiscarded.Inc()
	os.Remove(path)
}

// Put stores payload under key, atomically. Concurrent Puts of the same
// key — even from other processes — are safe; the rename is the commit
// point. Transient errors retry with jittered backoff; disk-full (or a
// run of exhausted retries) flips the store into read-only degraded
// mode, in which Puts return ErrDegraded cheaply until a periodic
// probe write succeeds again.
func (s *Store) Put(key string, payload []byte) error {
	if s.degraded.Load() && !s.probeDue() {
		return ErrDegraded
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		Format:  Format,
		Version: Version,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	for attempt := 0; ; attempt++ {
		err = s.putOnce(key, data)
		if err == nil {
			if s.degraded.Load() {
				s.exitDegraded()
			}
			s.consecFails.Store(0)
			s.account(int64(len(data)))
			return nil
		}
		if isDiskFull(err) {
			s.enterDegraded(err)
			return fmt.Errorf("cellstore: put %s: %w", key, err)
		}
		if attempt >= putRetries {
			break
		}
		// Jittered exponential backoff: base·2^attempt plus up to 100%
		// jitter, so concurrent writers hitting one flaky disk don't
		// retry in lockstep.
		d := putBackoffBase << attempt
		s.backoffSleep(d + time.Duration(rand.Int63n(int64(d))))
	}
	if s.consecFails.Add(1) >= degradeAfterFailures {
		s.enterDegraded(err)
	}
	return fmt.Errorf("cellstore: put %s: %w", key, err)
}

// putOnce is one atomic temp-write-rename attempt.
func (s *Store) putOnce(key string, data []byte) error {
	if err := s.hookErr("put", key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// account tracks the approximate store size after a successful Put and
// triggers the LRU collector past the quota. Overwrites of an existing
// key overcount until the next GC scan trues the number up — the bound
// is operational, not exact.
func (s *Store) account(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quota <= 0 {
		return
	}
	if !s.sizeKnown {
		s.size = s.scanSizeLocked()
		s.sizeKnown = true
	} else {
		s.size += n
	}
	if s.size > s.quota {
		s.gcLocked()
	}
}

// scanSizeLocked sums the on-disk record bytes.
func (s *Store) scanSizeLocked() int64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// gcLocked evicts least-recently-used records until the store fits in
// 90% of the quota (hysteresis, so one hot Put doesn't GC every time),
// counting each eviction. Recency is file mtime, refreshed by Get.
func (s *Store) gcLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type rec struct {
		name  string
		size  int64
		mtime time.Time
	}
	var recs []rec
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime.Before(recs[j].mtime) })
	target := s.quota * 9 / 10
	for _, r := range recs {
		if total <= target {
			break
		}
		if os.Remove(filepath.Join(s.dir, r.name)) == nil {
			total -= r.size
			ctrGCEvicted.Inc()
		}
	}
	s.size = total
}

// Len counts valid-looking records currently in the store (by file
// presence only; contents are verified on Get). It exists for tests and
// ops introspection, not the hot path.
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			n++
		}
	}
	return n
}
