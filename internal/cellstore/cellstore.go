// Package cellstore is the on-disk content-addressed store behind the
// persistent per-cell sweep cache (-cachedir). It is a flat directory
// of versioned JSON records, one file per content key: the key digests
// everything that determines a cell's bytes (kernel spec, board model,
// harness config — see report.CellKey), so a record is immutable once
// written and lookups never need invalidation, only presence checks.
//
// Durability contract:
//
//   - Writes are atomic: each Put lands in a private temp file in the
//     store directory and is published with os.Rename, so a concurrent
//     reader — or another process sharing the directory — sees either
//     no file or a complete record, never a torn one.
//   - Reads are verified: every record carries a format tag, a version,
//     its own key, and the SHA-256 of its payload. A record that fails
//     any check (truncation, bit flips, a foreign or older format) is
//     discarded — best-effort unlinked and counted on
//     cellstore.corrupt_discarded — and reported as a miss, so
//     corruption always heals into a recompute, never an error.
//   - Concurrent Puts of the same key are benign: both writers produce
//     identical bytes (the key is a content digest), and rename makes
//     whichever lands last win without readers ever seeing a mix.
package cellstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
)

// Format is the record envelope's format tag.
const Format = "entobench.cell"

// Version is the record envelope version. Bump it whenever the payload
// schema or the measurement semantics change in a way the key does not
// capture; old records then read as misses and recompute.
const Version = 1

// ctrCorruptDiscarded counts records discarded on read for failing an
// integrity check (docs/observability.md).
var ctrCorruptDiscarded = obs.NewCounter(obs.CounterCellstoreCorruptDiscarded)

// envelope is the on-disk record: integrity metadata around an opaque
// payload owned by the caller (report's cell result schema).
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Store is one cache directory. It is safe for concurrent use by any
// number of goroutines and processes.
type Store struct {
	dir string
}

// Open returns a Store rooted at dir, creating the directory (and
// parents) if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellstore: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a content key to its file. Keys are digest-shaped
// ("cell-<hex>"); anything else would be a caller bug, but the key is
// sanitized anyway so a hostile key cannot escape the directory.
func (s *Store) path(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, clean+".json")
}

// Get returns the payload stored under key, or ok=false on a miss. A
// present-but-invalid record — wrong format, wrong version, key
// mismatch, checksum mismatch, or unparseable JSON — is treated as a
// miss: it is counted on cellstore.corrupt_discarded and best-effort
// removed so the healed slot rewrites cleanly.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.discard(p)
		return nil, false
	}
	if env.Format != Format || env.Version != Version || env.Key != key {
		s.discard(p)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.discard(p)
		return nil, false
	}
	return env.Payload, true
}

// discard removes an invalid record, tolerating races with other
// healers (the file may already be gone).
func (s *Store) discard(path string) {
	ctrCorruptDiscarded.Inc()
	os.Remove(path)
}

// Put stores payload under key, atomically. Concurrent Puts of the same
// key — even from other processes — are safe; the rename is the commit
// point.
func (s *Store) Put(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		Format:  Format,
		Version: Version,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cellstore: put %s: %w", key, err)
	}
	return nil
}

// Len counts valid-looking records currently in the store (by file
// presence only; contents are verified on Get). It exists for tests and
// ops introspection, not the hot path.
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			n++
		}
	}
	return n
}
