package cellstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"model":{"cycles":42}}`)
	if err := s.Put("cell-abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("cell-abc123")
	if !ok {
		t.Fatal("stored record missed")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %q, want %q", got, payload)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if _, ok := s.Get("cell-never-stored"); ok {
		t.Fatal("absent key hit")
	}
}

// Every way a record can rot on disk — truncation, bit flips in the
// payload, an envelope from a different version or format, a record
// filed under the wrong key — must read as a miss, bump
// cellstore.corrupt_discarded, and remove the file so the slot heals by
// recomputation. Never an error.
func TestCorruptRecordsDiscarded(t *testing.T) {
	payload := []byte(`{"model":{"cycles":42}}`)

	corruptions := []struct {
		name    string
		mutate  func(t *testing.T, s *Store, path string)
		discard bool // expect a counted discard (vs a plain miss)
	}{
		{"truncated", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"bit-flipped payload", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a digit inside the payload; the envelope stays
			// parseable but the checksum no longer matches.
			for i := range data {
				if data[i] == '4' {
					data[i] = '7'
					break
				}
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"wrong version", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["version"] = Version + 1 })
		}, true},
		{"wrong format", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["format"] = "somebody.else" })
		}, true},
		{"key mismatch", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["key"] = "cell-other" })
		}, true},
		{"not json at all", func(t *testing.T, s *Store, path string) {
			if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const key = "cell-deadbeef"
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), key+".json")
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("record not at expected path: %v", err)
			}
			tc.mutate(t, s, path)

			before := obs.Counters()[obs.CounterCellstoreCorruptDiscarded]
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			after := obs.Counters()[obs.CounterCellstoreCorruptDiscarded]
			if tc.discard && after != before+1 {
				t.Fatalf("corrupt_discarded went %d -> %d, want +1", before, after)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt record not removed (stat err %v)", err)
			}
			// The healed slot rewrites and serves cleanly.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != string(payload) {
				t.Fatalf("healed slot: ok=%v payload=%q", ok, got)
			}
		})
	}
}

// rewriteEnvelope re-marshals the on-disk envelope after a field edit.
// The payload checksum is left alone, so only the edited field trips
// verification.
func rewriteEnvelope(t *testing.T, path string, edit func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	edit(env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Hostile keys must not escape the store directory.
func TestKeySanitized(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("../escape", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "escape.json")); !os.IsNotExist(err) {
		t.Fatal("key escaped the store directory")
	}
	if _, ok := s.Get("../escape"); !ok {
		t.Fatal("sanitized key did not round-trip")
	}
}

// Concurrent writers and readers over one directory — the
// multi-process -cachedir sharing contract, exercised in-process where
// the race detector can see it. Same-key writers produce identical
// bytes, so every read must see either a miss or the one true payload.
func TestConcurrentSharedStore(t *testing.T) {
	dir := t.TempDir()
	const keys = 8
	payloadFor := func(k int) []byte {
		return []byte(fmt.Sprintf(`{"cell":%d}`, k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine opens its own Store handle, like a separate
			// process sharing the directory would.
			s, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				k := i % keys
				key := fmt.Sprintf("cell-%d", k)
				if err := s.Put(key, payloadFor(k)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && string(got) != string(payloadFor(k)) {
					t.Errorf("torn read: key %s payload %q", key, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
}
