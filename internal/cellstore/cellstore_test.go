package cellstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"model":{"cycles":42}}`)
	if err := s.Put("cell-abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("cell-abc123")
	if !ok {
		t.Fatal("stored record missed")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %q, want %q", got, payload)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if _, ok := s.Get("cell-never-stored"); ok {
		t.Fatal("absent key hit")
	}
}

// Every way a record can rot on disk — truncation, bit flips in the
// payload, an envelope from a different version or format, a record
// filed under the wrong key — must read as a miss, bump
// cellstore.corrupt_discarded, and remove the file so the slot heals by
// recomputation. Never an error.
func TestCorruptRecordsDiscarded(t *testing.T) {
	payload := []byte(`{"model":{"cycles":42}}`)

	corruptions := []struct {
		name    string
		mutate  func(t *testing.T, s *Store, path string)
		discard bool // expect a counted discard (vs a plain miss)
	}{
		{"truncated", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"bit-flipped payload", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a digit inside the payload; the envelope stays
			// parseable but the checksum no longer matches.
			for i := range data {
				if data[i] == '4' {
					data[i] = '7'
					break
				}
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"wrong version", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["version"] = Version + 1 })
		}, true},
		{"wrong format", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["format"] = "somebody.else" })
		}, true},
		{"key mismatch", func(t *testing.T, s *Store, path string) {
			rewriteEnvelope(t, path, func(env map[string]any) { env["key"] = "cell-other" })
		}, true},
		{"not json at all", func(t *testing.T, s *Store, path string) {
			if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const key = "cell-deadbeef"
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), key+".json")
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("record not at expected path: %v", err)
			}
			tc.mutate(t, s, path)

			before := obs.Counters()[obs.CounterCellstoreCorruptDiscarded]
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			after := obs.Counters()[obs.CounterCellstoreCorruptDiscarded]
			if tc.discard && after != before+1 {
				t.Fatalf("corrupt_discarded went %d -> %d, want +1", before, after)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt record not removed (stat err %v)", err)
			}
			// The healed slot rewrites and serves cleanly.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != string(payload) {
				t.Fatalf("healed slot: ok=%v payload=%q", ok, got)
			}
		})
	}
}

// rewriteEnvelope re-marshals the on-disk envelope after a field edit.
// The payload checksum is left alone, so only the edited field trips
// verification.
func rewriteEnvelope(t *testing.T, path string, edit func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	edit(env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Hostile keys must not escape the store directory.
func TestKeySanitized(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("../escape", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "escape.json")); !os.IsNotExist(err) {
		t.Fatal("key escaped the store directory")
	}
	if _, ok := s.Get("../escape"); !ok {
		t.Fatal("sanitized key did not round-trip")
	}
}

// Concurrent writers and readers over one directory — the
// multi-process -cachedir sharing contract, exercised in-process where
// the race detector can see it. Same-key writers produce identical
// bytes, so every read must see either a miss or the one true payload.
func TestConcurrentSharedStore(t *testing.T) {
	dir := t.TempDir()
	const keys = 8
	payloadFor := func(k int) []byte {
		return []byte(fmt.Sprintf(`{"cell":%d}`, k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine opens its own Store handle, like a separate
			// process sharing the directory would.
			s, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				k := i % keys
				key := fmt.Sprintf("cell-%d", k)
				if err := s.Put(key, payloadFor(k)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && string(got) != string(payloadFor(k)) {
					t.Errorf("torn read: key %s payload %q", key, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
}

// quotaStore opens a store with a byte quota and instant backoff so
// retry tests don't sleep for real.
func quotaStore(t *testing.T, quota int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetQuota(quota)
	s.backoffSleep = func(time.Duration) {}
	return s
}

func TestQuotaGCEvictsOldestFirst(t *testing.T) {
	obs.ResetCounters()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Size one record, then quota for ~4 of them.
	payload := []byte(fmt.Sprintf(`{"pad":%q}`, strings.Repeat("x", 256)))
	if err := s.Put("cell-size-probe", payload); err != nil {
		t.Fatal(err)
	}
	var recordSize int64
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		info, _ := e.Info()
		recordSize = info.Size()
	}
	os.Remove(filepath.Join(s.Dir(), "cell-size-probe.json"))
	s.SetQuota(4*recordSize + recordSize/2)

	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("cell-gc-%d", i)
		if err := s.Put(key, payload); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		// mtime granularity can be coarse; force distinct recency.
		p := filepath.Join(s.Dir(), key+".json")
		mt := time.Now().Add(time.Duration(i-8) * time.Second)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// One more put triggers accounting past the quota.
	if err := s.Put("cell-gc-last", payload); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n > 5 {
		t.Fatalf("store holds %d records, want <= 5 after GC under quota", n)
	}
	if got := obs.Counters()[obs.CounterCellstoreGCEvicted]; got == 0 {
		t.Fatal("cellstore.gc_evicted did not count")
	}
	// The newest record must have survived; the oldest must be gone.
	if _, ok := s.Get("cell-gc-last"); !ok {
		t.Fatal("newest record evicted — GC is not LRU")
	}
	if _, ok := s.Get("cell-gc-0"); ok {
		t.Fatal("oldest record survived a GC that evicted others")
	}
}

func TestTransientWriteErrorRetriesAndRecovers(t *testing.T) {
	s := quotaStore(t, 0)
	fails := 0
	s.SetFaultHook(func(op, key string) error {
		if op == "put" && fails < 2 {
			fails++
			return fmt.Errorf("injected transient write error %d", fails)
		}
		return nil
	})
	if err := s.Put("cell-retry", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("put failed despite retries: %v", err)
	}
	if fails != 2 {
		t.Fatalf("fault hook fired %d times, want 2 (then success)", fails)
	}
	if degraded, _ := s.Degraded(); degraded {
		t.Fatal("transient error degraded the store")
	}
	if _, ok := s.Get("cell-retry"); !ok {
		t.Fatal("retried put did not land")
	}
}

func TestDiskFullDegradesImmediatelyAndProbesBack(t *testing.T) {
	obs.ResetCounters()
	s := quotaStore(t, 0)
	s.SetProbeInterval(0) // probe on every put
	full := true
	s.SetFaultHook(func(op, key string) error {
		if op == "put" && full {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	})
	if err := s.Put("cell-full", []byte(`{"v":1}`)); err == nil {
		t.Fatal("put succeeded against a full disk")
	}
	degraded, reason := s.Degraded()
	if !degraded {
		t.Fatal("ENOSPC did not degrade the store")
	}
	if reason == "" {
		t.Fatal("degraded store carries no reason")
	}
	if got := obs.Counters()[obs.CounterCellstoreDegraded]; got != 1 {
		t.Fatalf("cellstore.degraded = %d, want 1", got)
	}
	// Degraded stores still serve warm cells: write one before
	// degradation would be cleaner, but Get has no write path — prove
	// reads work by healing the disk and probing back first.
	full = false
	if err := s.Put("cell-healed", []byte(`{"v":2}`)); err != nil {
		t.Fatalf("probe put after heal: %v", err)
	}
	if degraded, _ := s.Degraded(); degraded {
		t.Fatal("successful probe did not exit degraded mode")
	}
	if _, ok := s.Get("cell-healed"); !ok {
		t.Fatal("post-recovery put unreadable")
	}
	// Re-entering degraded mode counts again.
	full = true
	if err := s.Put("cell-full-2", []byte(`{"v":3}`)); err == nil {
		t.Fatal("put succeeded against a re-filled disk")
	}
	if got := obs.Counters()[obs.CounterCellstoreDegraded]; got != 2 {
		t.Fatalf("cellstore.degraded = %d after second transition, want 2", got)
	}
}

func TestDegradedGetStillServesWarmCells(t *testing.T) {
	s := quotaStore(t, 0)
	s.SetProbeInterval(time.Hour) // no probe during the test
	if err := s.Put("cell-warm", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(func(op, key string) error {
		if op == "put" {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	})
	if err := s.Put("cell-cold", []byte(`{"v":2}`)); err == nil {
		t.Fatal("put succeeded against a full disk")
	}
	if _, ok := s.Get("cell-warm"); !ok {
		t.Fatal("degraded store lost a warm cell")
	}
	// Cheap refusal path: no probe due, so Put returns ErrDegraded
	// without touching the hook or the disk.
	if err := s.Put("cell-cold", []byte(`{"v":2}`)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded put = %v, want ErrDegraded", err)
	}
}

func TestRepeatedExhaustedRetriesDegrade(t *testing.T) {
	s := quotaStore(t, 0)
	s.SetFaultHook(func(op, key string) error {
		if op == "put" {
			return fmt.Errorf("injected persistent (non-ENOSPC) failure")
		}
		return nil
	})
	for i := 0; i < degradeAfterFailures; i++ {
		if degraded, _ := s.Degraded(); degraded {
			t.Fatalf("degraded after only %d exhausted puts", i)
		}
		if err := s.Put(fmt.Sprintf("cell-fail-%d", i), []byte(`{}`)); err == nil {
			t.Fatal("injected failure did not surface")
		}
	}
	if degraded, _ := s.Degraded(); !degraded {
		t.Fatalf("%d consecutive exhausted puts did not degrade the store", degradeAfterFailures)
	}
}
