// Package control implements the control kernels of the suite: the
// sparse 4×4 fly-lqr regulator, its TinyMPC successor fly-tiny-mpc, the
// OSQP-style ADMM MPC bee-mpc, the SE(3) geometric tracking controller
// bee-geom, and the sliding-mode adaptive controller bee-smac.
// Benchmarks cover high-level reference computation only; actuator
// mapping (piezo drive waveforms) is out of scope, as in the paper.
package control

import (
	"errors"

	"repro/internal/mat"
	"repro/internal/scalar"
)

// LQR is an infinite-horizon discrete-time linear quadratic regulator:
// the online kernel is just u = -K·(x - xref), with K solved offline
// from the DARE at construction. The paper's fly-lqr observation — that
// the sparsity of the 4×4 gain cannot be exploited by a generic dense
// implementation — holds here by construction: Update performs the full
// dense m×n multiply.
type LQR[T scalar.Real[T]] struct {
	K mat.Mat[T] // m×n feedback gain
	A mat.Mat[T] // n×n dynamics (kept for simulation/benchmarks)
	B mat.Mat[T] // n×m input map
}

// solveDARE iterates the discrete algebraic Riccati equation to a fixed
// point in float64 and returns the gain K and cost-to-go P∞.
func solveDARE(a, b, q, r [][]float64) (k, p mat.Mat[scalar.F64], err error) {
	type F = scalar.F64
	fa := mat.FromFloats(F(0), a)
	fb := mat.FromFloats(F(0), b)
	fq := mat.FromFloats(F(0), q)
	fr := mat.FromFloats(F(0), r)

	p = fq.Clone()
	for it := 0; it < 2000; it++ {
		// K = (R + Bᵀ·P·B)⁻¹·Bᵀ·P·A
		btp := fb.Transpose().Mul(p)
		s := btp.Mul(fb).Add(fr)
		sinv, invErr := mat.Inverse(s)
		if invErr != nil {
			return k, p, errors.New("control: DARE iteration hit singular R + BᵀPB")
		}
		k = sinv.Mul(btp).Mul(fa)
		// P' = Q + Aᵀ·P·(A - B·K)
		pNew := fq.Add(fa.Transpose().Mul(p).Mul(fa.Sub(fb.Mul(k))))
		diff := pNew.Sub(p).MaxAbs().Float()
		p = pNew
		if diff < 1e-12 {
			break
		}
	}
	return k, p, nil
}

// NewLQR solves the discrete algebraic Riccati equation by fixed-point
// iteration (offline, float64) and returns the regulator with gains in
// like's scalar format.
func NewLQR[T scalar.Real[T]](like T, a, b, q, r [][]float64) (*LQR[T], error) {
	k, _, err := solveDARE(a, b, q, r)
	if err != nil {
		return nil, err
	}
	out := &LQR[T]{
		K: mat.FromFloats(like, k.Floats()),
		A: mat.FromFloats(like, a),
		B: mat.FromFloats(like, b),
	}
	return out, nil
}

// Update computes the control u = -K·(x - xref) — the measured kernel.
func (l *LQR[T]) Update(x, xref mat.Vec[T]) mat.Vec[T] {
	return l.K.MulVec(x.Sub(xref)).Neg()
}

// FlyLQRFLOPs is the static FLOP count claimed for the fly-lqr update in
// the supplemental material the paper re-examines (Table VIII).
const FlyLQRFLOPs = 30

// TinyMPCFLOPs is the per-solve FLOP estimate for the 10-step-horizon
// TinyMPC configuration in the same comparison.
const TinyMPCFLOPs = 1000

// FlyModel returns the linearized planar flapping-wing model of Dhingra
// et al. [19]: state x = [θ (pitch), θ̇, v (lateral velocity), p
// (lateral position)], inputs u = [pitch moment, thrust tilt],
// discretized at dt.
func FlyModel(dt float64) (a, b, q, r [][]float64) {
	g := 9.80665
	// Continuous dynamics: θ̇ = ω; ω̇ = u1 (moment); v̇ = g·θ - c·v + u2;
	// ṗ = v, with lateral drag c.
	c := 1.5
	a = [][]float64{
		{1, dt, 0, 0},
		{0, 1, 0, 0},
		{g * dt, 0, 1 - c*dt, 0},
		{0, 0, dt, 1},
	}
	b = [][]float64{
		{0, 0},
		{dt, 0},
		{0, dt},
		{0, 0},
	}
	q = [][]float64{
		{10, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 2, 0},
		{0, 0, 0, 5},
	}
	r = [][]float64{
		{1, 0},
		{0, 1},
	}
	return a, b, q, r
}
