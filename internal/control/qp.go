package control

import (
	"errors"

	"repro/internal/mat"
	"repro/internal/scalar"
)

// QP is the OSQP-style ADMM solver behind bee-mpc:
//
//	minimize    ½·zᵀPz + qᵀz
//	subject to  l ≤ A·z ≤ u
//
// solved by the operator-splitting iteration of Stellato et al. with a
// quasi-definite KKT system factored once (LDLᵀ) and reused every
// iteration — the only control kernel with a general iterative
// optimizer, visible in its instruction mix in the paper.
type QP[T scalar.Real[T]] struct {
	P mat.Mat[T]
	Q mat.Vec[T]
	A mat.Mat[T]
	L mat.Vec[T]
	U mat.Vec[T]

	Sigma   float64
	Rho     float64
	Alpha   float64
	MaxIter int
	EpsAbs  float64
	// WarmX optionally seeds the primal iterate (MPC warm start).
	WarmX mat.Vec[T]
}

// QPResult reports the solution and solver effort.
type QPResult[T scalar.Real[T]] struct {
	Z          mat.Vec[T]
	Iterations int
	PrimalRes  float64
	DualRes    float64
}

// NewQP builds a solver with OSQP's default parameters.
func NewQP[T scalar.Real[T]](p mat.Mat[T], q mat.Vec[T], a mat.Mat[T], l, u mat.Vec[T]) *QP[T] {
	return &QP[T]{
		P: p, Q: q, A: a, L: l, U: u,
		Sigma: 1e-6, Rho: 0.1, Alpha: 1.6, MaxIter: 200, EpsAbs: 1e-5,
	}
}

// Solve runs the ADMM iteration.
func (s *QP[T]) Solve() (QPResult[T], error) {
	n := s.P.Rows()
	m := s.A.Rows()
	like := s.Q[0].FromFloat(1)
	sigma := like.FromFloat(s.Sigma)
	alpha := like.FromFloat(s.Alpha)
	oneMinusAlpha := like.FromFloat(1 - s.Alpha)

	// Per-row step sizes: OSQP boosts ρ by 10³ on equality rows
	// (l == u), which is what makes the stacked-MPC dynamics
	// constraints converge.
	rho := make(mat.Vec[T], m)
	rhoInv := make(mat.Vec[T], m)
	rhoF := make([]float64, m)
	for i := 0; i < m; i++ {
		r := s.Rho
		if s.L[i].Sub(s.U[i]).Abs().Float() < 1e-12 {
			r = s.Rho * 1e3
		}
		rhoF[i] = r
		rho[i] = like.FromFloat(r)
		rhoInv[i] = like.FromFloat(1 / r)
	}

	// KKT matrix: [[P+σI, Aᵀ], [A, −diag(1/ρ)]] — factor once.
	kkt := mat.Zeros[T](n+m, n+m)
	kkt.SetSubmatrix(0, 0, s.P)
	for i := 0; i < n; i++ {
		kkt.Set(i, i, kkt.At(i, i).Add(sigma))
	}
	kkt.SetSubmatrix(0, n, s.A.Transpose())
	kkt.SetSubmatrix(n, 0, s.A)
	for i := 0; i < m; i++ {
		kkt.Set(n+i, n+i, rhoInv[i].Neg())
	}
	ldlt, err := mat.LDLTDecompose(kkt)
	if err != nil {
		return QPResult[T]{}, errors.New("control: KKT factorization failed")
	}

	x := mat.ZeroVec[T](n)
	if s.WarmX != nil && len(s.WarmX) == n {
		x = s.WarmX.Clone()
	}
	z := s.A.MulVec(x)
	for i := 0; i < m; i++ {
		z[i] = scalar.Clamp(z[i], s.L[i], s.U[i])
	}
	y := mat.ZeroVec[T](m)
	rhs := mat.ZeroVec[T](n + m)

	res := QPResult[T]{}
	for it := 0; it < s.MaxIter; it++ {
		res.Iterations = it + 1
		// RHS: [σ·x − q ; z − y/ρ]
		for i := 0; i < n; i++ {
			rhs[i] = sigma.Mul(x[i]).Sub(s.Q[i])
		}
		for i := 0; i < m; i++ {
			rhs[n+i] = z[i].Sub(rhoInv[i].Mul(y[i]))
		}
		sol := ldlt.Solve(rhs)
		xt := sol[:n]
		nu := sol[n:]
		// ẑ = z + (ν − y)/ρ
		zt := make(mat.Vec[T], m)
		for i := 0; i < m; i++ {
			zt[i] = z[i].Add(rhoInv[i].Mul(nu[i].Sub(y[i])))
		}
		// Relaxed updates with projection onto [l, u].
		xNew := make(mat.Vec[T], n)
		for i := 0; i < n; i++ {
			xNew[i] = alpha.Mul(xt[i]).Add(oneMinusAlpha.Mul(x[i]))
		}
		zPrev := z.Clone()
		zNew := make(mat.Vec[T], m)
		for i := 0; i < m; i++ {
			v := alpha.Mul(zt[i]).Add(oneMinusAlpha.Mul(z[i])).Add(rhoInv[i].Mul(y[i]))
			zNew[i] = scalar.Clamp(v, s.L[i], s.U[i])
			y[i] = y[i].Add(rho[i].Mul(alpha.Mul(zt[i]).Add(oneMinusAlpha.Mul(z[i])).Sub(zNew[i])))
		}
		x = xNew
		z = zNew

		// Residuals: primal |A·x − z|∞, dual ρ·|A ᵀ(z − zprev)|∞ proxy.
		ax := s.A.MulVec(x)
		primal := 0.0
		for i := 0; i < m; i++ {
			if d := ax[i].Sub(z[i]).Abs().Float(); d > primal {
				primal = d
			}
		}
		dual := 0.0
		dzr := z.Sub(zPrev)
		for i := 0; i < m; i++ {
			dzr[i] = dzr[i].Mul(rho[i])
		}
		dz := s.A.Transpose().MulVec(dzr)
		for i := 0; i < n; i++ {
			if d := dz[i].Abs().Float(); d > dual {
				dual = d
			}
		}
		res.PrimalRes, res.DualRes = primal, dual
		if primal < s.EpsAbs && dual < s.EpsAbs {
			break
		}
	}
	res.Z = x
	return res, nil
}
