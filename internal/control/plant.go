package control

import (
	"repro/internal/geom"
	"repro/internal/imu"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// LinearPlant simulates a discrete linear system x' = A·x + B·u (+ w),
// the closed-loop substrate for the fly-lqr and MPC tests and examples.
type LinearPlant[T scalar.Real[T]] struct {
	A, B mat.Mat[T]
	X    mat.Vec[T]
	// W is an optional constant disturbance added each step.
	W mat.Vec[T]
}

// NewLinearPlant builds a plant from float64 model rows.
func NewLinearPlant[T scalar.Real[T]](like T, a, b [][]float64, x0 []float64) *LinearPlant[T] {
	return &LinearPlant[T]{
		A: mat.FromFloats(like, a),
		B: mat.FromFloats(like, b),
		X: mat.VecFromFloats(like, x0),
	}
}

// Step advances the plant by one control period.
func (p *LinearPlant[T]) Step(u mat.Vec[T]) {
	p.X = p.A.MulVec(p.X).Add(p.B.MulVec(u))
	if p.W != nil {
		p.X = p.X.Add(p.W)
	}
}

// RigidBody simulates a small flapping-wing rigid body under thrust
// along body z and body moments — the bee-geom test substrate.
type RigidBody[T scalar.Real[T]] struct {
	Mass T
	J    mat.Mat[T]
	Q    geom.Quat[T] // attitude body->world
	W    mat.Vec[T]   // body rates
	P    mat.Vec[T]   // world position
	V    mat.Vec[T]   // world velocity
}

// NewRigidBody builds a hovering body at the origin.
func NewRigidBody[T scalar.Real[T]](like T, mass float64, inertia [3]float64) *RigidBody[T] {
	j := mat.Zeros[T](3, 3)
	for i := 0; i < 3; i++ {
		j.Set(i, i, like.FromFloat(inertia[i]))
	}
	zero := scalar.Zero(like.FromFloat(0))
	return &RigidBody[T]{
		Mass: like.FromFloat(mass),
		J:    j,
		Q:    geom.IdentityQuat(like.FromFloat(1)),
		W:    mat.Vec[T]{zero, zero, zero},
		P:    mat.Vec[T]{zero, zero, zero},
		V:    mat.Vec[T]{zero, zero, zero},
	}
}

// State exposes the body as the geometric controller's input.
func (b *RigidBody[T]) State() GeomState[T] {
	return GeomState[T]{R: b.Q.RotationMatrix(), Omega: b.W, P: b.P, V: b.V}
}

// Step integrates the dynamics for dt under (thrust, moment).
func (b *RigidBody[T]) Step(thrust T, moment mat.Vec[T], dt T) {
	like := b.Mass
	g := like.FromFloat(imu.Gravity)
	zero := scalar.Zero(like)

	r := b.Q.RotationMatrix()
	// Translational: a = (thrust·R·e3)/m − g·e3.
	fz := r.Col(2).Scale(thrust)
	acc := fz.Scale(scalar.One(like).Div(b.Mass))
	acc[2] = acc[2].Sub(g)
	b.V = b.V.Add(acc.Scale(dt))
	b.P = b.P.Add(b.V.Scale(dt))

	// Rotational: J·ω̇ = M − ω × J·ω.
	jw := b.J.MulVec(b.W)
	wdot := moment.Sub(b.W.Cross(jw))
	jinv, err := mat.Inverse(b.J)
	if err == nil {
		wdot = jinv.MulVec(wdot)
	}
	b.W = b.W.Add(wdot.Scale(dt))
	b.Q = b.Q.Integrate(b.W, dt)
	_ = zero
}
