package control

import (
	"repro/internal/imu"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// SMAC is the bee-smac kernel: the sliding-mode adaptive controller of
// Chirarattananon et al. [11, 12] for flapping-wing takeoff/hover. Each
// controlled axis (altitude, roll, pitch) runs a sliding surface
// s = ė + λ·e with a saturated switching term and an adaptive
// feedforward that learns slowly varying model errors (lift offsets,
// torque biases) online.
type SMAC[T scalar.Real[T]] struct {
	Lambda T // surface slope
	Eta    T // switching gain
	Phi    T // boundary-layer width
	Gamma  T // adaptation rate
	Mass   T

	// Adaptive parameter estimates, one per axis: [altitude, roll,
	// pitch] feedforward corrections.
	Theta mat.Vec[T]
}

// SMACState is the reduced hover state the controller consumes.
type SMACState[T scalar.Real[T]] struct {
	Z, VZ         T // altitude and climb rate
	Roll, RollD   T // roll angle and rate
	Pitch, PitchD T // pitch angle and rate
}

// SMACRef is the reference (hover setpoint or slow trajectory).
type SMACRef[T scalar.Real[T]] struct {
	Z, VZ         T
	Roll, RollD   T
	Pitch, PitchD T
}

// SMACOutput is the command triple.
type SMACOutput[T scalar.Real[T]] struct {
	Thrust     T
	RollMoment T
	PitchMom   T
}

// NewSMAC builds the controller with gains in like's format.
func NewSMAC[T scalar.Real[T]](like T, mass float64) *SMAC[T] {
	zero := scalar.Zero(like.FromFloat(0))
	return &SMAC[T]{
		Lambda: like.FromFloat(6),
		Eta:    like.FromFloat(2.5),
		Phi:    like.FromFloat(0.3),
		Gamma:  like.FromFloat(0.8),
		Mass:   like.FromFloat(mass),
		Theta:  mat.Vec[T]{zero, zero, zero},
	}
}

// sat is the boundary-layer saturation of the switching term.
func sat[T scalar.Real[T]](s, phi T) T {
	r := s.Div(phi)
	one := scalar.One(phi)
	return scalar.Clamp(r, one.Neg(), one)
}

// Update advances the adaptation by dt and returns the commands — the
// measured kernel.
func (c *SMAC[T]) Update(st SMACState[T], ref SMACRef[T], dt T) SMACOutput[T] {
	g := c.Mass.FromFloat(imu.Gravity)

	axis := func(e, ed T, idx int) (u T) {
		// Sliding surface and control law:
		// u = θ̂ − η·sat(s/φ) − λ·ė  (per-axis normalized form)
		s := ed.Add(c.Lambda.Mul(e))
		u = c.Theta[idx].Sub(c.Eta.Mul(sat(s, c.Phi))).Sub(c.Lambda.Mul(ed))
		// Adaptation: θ̂̇ = −γ·s (inside the boundary layer only, to
		// avoid winding up on the switching term).
		if s.Abs().Less(c.Phi) {
			c.Theta[idx] = c.Theta[idx].Sub(c.Gamma.Mul(s).Mul(dt))
		}
		return u
	}

	out := SMACOutput[T]{}
	uz := axis(st.Z.Sub(ref.Z), st.VZ.Sub(ref.VZ), 0)
	out.Thrust = c.Mass.Mul(g.Add(uz))
	out.RollMoment = axis(st.Roll.Sub(ref.Roll), st.RollD.Sub(ref.RollD), 1)
	out.PitchMom = axis(st.Pitch.Sub(ref.Pitch), st.PitchD.Sub(ref.PitchD), 2)
	return out
}
