package control

import (
	"repro/internal/mat"
	"repro/internal/scalar"
)

// TinyMPC is the fly-tiny-mpc kernel: the ADMM model-predictive
// controller of Nguyen et al. [48], which caches the infinite-horizon
// LQR solution offline (K∞, P∞, (R+BᵀP∞B)⁻¹, (A−BK∞)ᵀ) so the online
// iteration reduces to Riccati-structured backward/forward passes plus
// slack projection onto the input box.
//
// The paper notes the dense start-up products can exceed the M4's stack
// when the horizon grows; here the caches are built at construction
// (the "offline" phase), and Solve is the measured online kernel.
type TinyMPC[T scalar.Real[T]] struct {
	N    int // horizon length
	n, m int

	a, b    mat.Mat[T]
	kinf    mat.Mat[T] // m×n
	pinf    mat.Mat[T] // n×n
	quuInv  mat.Mat[T] // m×m: (R + BᵀP∞B)⁻¹
	amBKt   mat.Mat[T] // n×n: (A − B·K∞)ᵀ
	q, r    mat.Mat[T] // stage costs
	umin    mat.Vec[T]
	umax    mat.Vec[T]
	rho     T
	maxIter int
	tol     float64

	// Working storage, preallocated (no dynamic allocation per solve).
	x, u, z, y []mat.Vec[T]
	p, qlin    []mat.Vec[T]
	rlin       []mat.Vec[T]
}

// TinyMPCConfig parameterizes the solver.
type TinyMPCConfig struct {
	Horizon  int
	Rho      float64
	MaxIters int
	Tol      float64
	UMin     []float64
	UMax     []float64
}

// DefaultTinyMPCConfig matches the 10-step-horizon configuration of
// Case Study #3.
func DefaultTinyMPCConfig() TinyMPCConfig {
	return TinyMPCConfig{
		Horizon: 10, Rho: 1.0, MaxIters: 50, Tol: 1e-5,
		UMin: []float64{-2, -2}, UMax: []float64{2, 2},
	}
}

// NewTinyMPC builds the controller for the given discrete model and
// stage costs (float64 rows), caching the LQR solution in like's format.
func NewTinyMPC[T scalar.Real[T]](like T, a, b, q, r [][]float64, cfg TinyMPCConfig) (*TinyMPC[T], error) {
	type F = scalar.F64
	fa := mat.FromFloats(F(0), a)
	fb := mat.FromFloats(F(0), b)
	fq := mat.FromFloats(F(0), q)
	fr := mat.FromFloats(F(0), r)
	// P∞ from the converged Riccati recursion: rebuild it.
	p := fq.Clone()
	for it := 0; it < 1000; it++ {
		btp := fb.Transpose().Mul(p)
		s := btp.Mul(fb).Add(fr)
		sinv, err := mat.Inverse(s)
		if err != nil {
			return nil, err
		}
		k := sinv.Mul(btp).Mul(fa)
		pNew := fq.Add(fa.Transpose().Mul(p).Mul(fa.Sub(fb.Mul(k))))
		if pNew.Sub(p).MaxAbs().Float() < 1e-12 {
			p = pNew
			break
		}
		p = pNew
	}
	// ADMM augments R with ρ on the input block.
	n := fa.Rows()
	m := fb.Cols()
	rAug := fr.Clone()
	for i := 0; i < m; i++ {
		rAug.Set(i, i, rAug.At(i, i).Add(F(cfg.Rho)))
	}
	btp := fb.Transpose().Mul(p)
	quu := btp.Mul(fb).Add(rAug)
	quuInv, err := mat.Inverse(quu)
	if err != nil {
		return nil, err
	}
	kinf := quuInv.Mul(btp).Mul(fa)
	amBK := fa.Sub(fb.Mul(kinf))

	t := &TinyMPC[T]{
		N: cfg.Horizon, n: n, m: m,
		a:       mat.FromFloats(like, a),
		b:       mat.FromFloats(like, b),
		kinf:    mat.FromFloats(like, kinf.Floats()),
		pinf:    mat.FromFloats(like, p.Floats()),
		quuInv:  mat.FromFloats(like, quuInv.Floats()),
		amBKt:   mat.FromFloats(like, amBK.Transpose().Floats()),
		q:       mat.FromFloats(like, q),
		r:       mat.FromFloats(like, r),
		umin:    mat.VecFromFloats(like, cfg.UMin),
		umax:    mat.VecFromFloats(like, cfg.UMax),
		rho:     like.FromFloat(cfg.Rho),
		maxIter: cfg.MaxIters,
		tol:     cfg.Tol,
	}
	t.x = allocVecs[T](cfg.Horizon+1, n)
	t.u = allocVecs[T](cfg.Horizon, m)
	t.z = allocVecs[T](cfg.Horizon, m)
	t.y = allocVecs[T](cfg.Horizon, m)
	t.p = allocVecs[T](cfg.Horizon+1, n)
	t.qlin = allocVecs[T](cfg.Horizon+1, n)
	t.rlin = allocVecs[T](cfg.Horizon, m)
	return t, nil
}

func allocVecs[T scalar.Real[T]](k, dim int) []mat.Vec[T] {
	out := make([]mat.Vec[T], k)
	for i := range out {
		out[i] = make(mat.Vec[T], dim)
	}
	return out
}

// Solve runs the ADMM iteration from state x0 toward reference xref and
// returns the first control move (receding horizon).
func (t *TinyMPC[T]) Solve(x0, xref mat.Vec[T]) (mat.Vec[T], int) {
	like := x0[0]
	zero := scalar.Zero(like)

	// Reset duals and slacks.
	for k := 0; k < t.N; k++ {
		for j := 0; j < t.m; j++ {
			t.z[k][j] = zero
			t.y[k][j] = zero
		}
	}
	// Linear state cost tracks the reference: q_k = -Q·xref.
	qlinRef := t.q.MulVec(xref).Neg()

	iters := 0
	for it := 0; it < t.maxIter; it++ {
		iters++
		// Linear input cost from slack/dual: r_k = -ρ·(z_k - y_k).
		for k := 0; k < t.N; k++ {
			for j := 0; j < t.m; j++ {
				t.rlin[k][j] = t.rho.Mul(t.z[k][j].Sub(t.y[k][j])).Neg()
			}
			copy(t.qlin[k], qlinRef)
		}
		copy(t.qlin[t.N], qlinRef)

		// Backward pass: p_N = q_N; d_k folded into u during forward.
		copy(t.p[t.N], t.qlin[t.N])
		for k := t.N - 1; k >= 0; k-- {
			// p_k = q_k + (A-BK)ᵀ·p_{k+1} − K∞ᵀ·r_k
			kp := t.amBKt.MulVec(t.p[k+1])
			kr := t.kinf.Transpose().MulVec(t.rlin[k])
			pk := t.qlin[k].Add(kp).Sub(kr)
			copy(t.p[k], pk)
		}
		// Forward pass.
		copy(t.x[0], x0)
		for k := 0; k < t.N; k++ {
			// d_k = Quu⁻¹·(Bᵀ·p_{k+1} + r_k)
			d := t.quuInv.MulVec(t.b.Transpose().MulVec(t.p[k+1]).Add(t.rlin[k]))
			uk := t.kinf.MulVec(t.x[k]).Add(d).Neg()
			copy(t.u[k], uk)
			xn := t.a.MulVec(t.x[k]).Add(t.b.MulVec(uk))
			copy(t.x[k+1], xn)
		}
		// Slack projection and dual update; track both the primal
		// residual (u − z) and the dual residual (z − z_prev): the
		// unconstrained case has zero primal residual immediately while
		// the ρ-biased input still needs dual iterations to converge.
		maxResid := 0.0
		for k := 0; k < t.N; k++ {
			for j := 0; j < t.m; j++ {
				v := t.u[k][j].Add(t.y[k][j])
				zNew := scalar.Clamp(v, t.umin[j], t.umax[j])
				resid := t.u[k][j].Sub(zNew)
				t.y[k][j] = t.y[k][j].Add(resid)
				if r := resid.Abs().Float(); r > maxResid {
					maxResid = r
				}
				if d := zNew.Sub(t.z[k][j]).Abs().Float(); d > maxResid {
					maxResid = d
				}
				t.z[k][j] = zNew
			}
		}
		if maxResid < t.tol {
			break
		}
	}
	// First projected input is the applied command.
	out := make(mat.Vec[T], t.m)
	copy(out, t.z[0])
	return out, iters
}
