package control

import (
	"repro/internal/mat"
	"repro/internal/scalar"
)

// BeeMPC is the bee-mpc kernel: a linear MPC solved as one general
// sparse QP per step with the OSQP-style ADMM solver [17]. The decision
// vector stacks states and inputs over the horizon; dynamics enter as
// equality constraints, inputs as box constraints. The KKT system this
// produces (≈(n+m)·N + n rows) is why bee-mpc dominates the control
// kernels' latency column in Table IV.
type BeeMPC[T scalar.Real[T]] struct {
	N    int
	n, m int

	a, b    mat.Mat[T]
	like    T
	umin    []float64
	umax    []float64
	qC      [][]float64
	rC      [][]float64
	pT      [][]float64 // terminal cost P∞ from the DARE
	kinf    [][]float64 // LQR gain for the warm start
	maxIter int
}

// BeeMPCConfig parameterizes the controller.
type BeeMPCConfig struct {
	Horizon int
	UMin    []float64
	UMax    []float64
	MaxIter int
}

// DefaultBeeMPCConfig mirrors the flapping-flight controller scale.
func DefaultBeeMPCConfig() BeeMPCConfig {
	return BeeMPCConfig{Horizon: 10, UMin: []float64{-2, -2}, UMax: []float64{2, 2}, MaxIter: 100}
}

// NewBeeMPC builds the controller for the given discrete model. A
// terminal cost P∞ (the DARE solution) closes the short horizon, as any
// practical MPC must.
func NewBeeMPC[T scalar.Real[T]](like T, a, b, q, r [][]float64, cfg BeeMPCConfig) *BeeMPC[T] {
	out := &BeeMPC[T]{
		N: cfg.Horizon,
		n: len(a), m: len(b[0]),
		a:    mat.FromFloats(like, a),
		b:    mat.FromFloats(like, b),
		like: like,
		umin: cfg.UMin, umax: cfg.UMax,
		qC: q, rC: r,
		maxIter: cfg.MaxIter,
	}
	if k, p, err := solveDARE(a, b, q, r); err == nil {
		out.pT = p.Floats()
		out.kinf = k.Floats()
	} else {
		out.pT = q
	}
	return out
}

// lqrRollout seeds the ADMM with the clamped infinite-horizon LQR
// trajectory — the standard MPC warm start, without which the
// operator-splitting iteration needs thousands of steps on this poorly
// scaled problem.
func (c *BeeMPC[T]) lqrRollout(x0 mat.Vec[T]) mat.Vec[T] {
	n, m, N := c.n, c.m, c.N
	like := c.like
	warm := mat.ZeroVec[T](n*N + m*N)
	if c.kinf == nil {
		return warm
	}
	kmat := mat.FromFloats(like, c.kinf)
	x := x0.Clone()
	for k := 0; k < N; k++ {
		u := kmat.MulVec(x).Neg()
		for j := 0; j < m; j++ {
			u[j] = scalar.Clamp(u[j], like.FromFloat(c.umin[j]), like.FromFloat(c.umax[j]))
		}
		x = c.a.MulVec(x).Add(c.b.MulVec(u))
		for i := 0; i < n; i++ {
			warm[k*n+i] = x[i]
		}
		for j := 0; j < m; j++ {
			warm[n*N+k*m+j] = u[j]
		}
	}
	return warm
}

// Solve builds and solves the stacked QP from state x0 toward xref,
// returning the first input and the ADMM iteration count.
func (c *BeeMPC[T]) Solve(x0, xref mat.Vec[T]) (mat.Vec[T], int, error) {
	n, m, N := c.n, c.m, c.N
	like := c.like
	// Decision z = [x1..xN, u0..u(N-1)]; dim:
	nx := n * N
	nu := m * N
	dim := nx + nu

	// Cost: block-diagonal Q per state, R per input; linear term tracks
	// the reference.
	p := mat.Zeros[T](dim, dim)
	qv := mat.ZeroVec[T](dim)
	for k := 0; k < N; k++ {
		// Terminal state block carries P∞ instead of Q.
		cost := c.qC
		if k == N-1 {
			cost = c.pT
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.Set(k*n+i, k*n+j, like.FromFloat(cost[i][j]))
			}
		}
		for i := 0; i < n; i++ {
			var acc T
			for j := 0; j < n; j++ {
				acc = acc.Add(like.FromFloat(cost[i][j]).Mul(xref[j]))
			}
			qv[k*n+i] = acc.Neg()
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				p.Set(nx+k*m+i, nx+k*m+j, like.FromFloat(c.rC[i][j]))
			}
		}
	}

	// Constraints: dynamics equalities x_{k+1} = A·x_k + B·u_k (with
	// x_0 fixed), then input boxes.
	rows := n*N + m*N
	amat := mat.Zeros[T](rows, dim)
	l := mat.ZeroVec[T](rows)
	u := mat.ZeroVec[T](rows)
	one := scalar.One(like.FromFloat(1))
	for k := 0; k < N; k++ {
		// Row block for x_{k+1} − A·x_k − B·u_k = 0 (k=0 uses x0).
		for i := 0; i < n; i++ {
			row := k*n + i
			amat.Set(row, k*n+i, one)
			if k > 0 {
				for j := 0; j < n; j++ {
					amat.Set(row, (k-1)*n+j, c.a.At(i, j).Neg())
				}
			}
			for j := 0; j < m; j++ {
				amat.Set(row, nx+k*m+j, c.b.At(i, j).Neg())
			}
			var rhs T
			if k == 0 {
				for j := 0; j < n; j++ {
					rhs = rhs.Add(c.a.At(i, j).Mul(x0[j]))
				}
			}
			l[row] = rhs
			u[row] = rhs
		}
	}
	for k := 0; k < N; k++ {
		for j := 0; j < m; j++ {
			row := n*N + k*m + j
			amat.Set(row, nx+k*m+j, one)
			l[row] = like.FromFloat(c.umin[j])
			u[row] = like.FromFloat(c.umax[j])
		}
	}

	// Objective normalization (a one-step Ruiz-style equilibration): the
	// terminal P∞ dwarfs R, which stalls ADMM; scaling (P, q) by the
	// inverse of the largest diagonal leaves the argmin unchanged and
	// restores the step-size balance.
	maxDiag := 1.0
	for i := 0; i < dim; i++ {
		if d := p.At(i, i).Abs().Float(); d > maxDiag {
			maxDiag = d
		}
	}
	scale := like.FromFloat(1 / maxDiag)
	p = p.Scale(scale)
	qv = qv.Scale(scale)

	solver := NewQP(p, qv, amat, l, u)
	solver.MaxIter = c.maxIter
	solver.WarmX = c.lqrRollout(x0)
	res, err := solver.Solve()
	if err != nil {
		return nil, 0, err
	}
	out := make(mat.Vec[T], m)
	copy(out, res.Z[nx:nx+m])
	return out, res.Iterations, nil
}
