package control

import (
	"repro/internal/geom"
	"repro/internal/imu"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// GeomCtrl is the bee-geom kernel: the SE(3) geometric tracking
// controller of Lee, Leok & McClamroch [42], as applied to flapping-wing
// vehicles by McGill et al. [46]. Given the vehicle state and a
// desired trajectory point, it produces total thrust and body moments.
type GeomCtrl[T scalar.Real[T]] struct {
	KP, KV, KR, KW T // position / velocity / attitude / rate gains
	Mass           T
	J              mat.Mat[T] // inertia
}

// GeomState is the vehicle's rigid-body state.
type GeomState[T scalar.Real[T]] struct {
	R     mat.Mat[T] // attitude, body->world
	Omega mat.Vec[T] // body angular rate
	P     mat.Vec[T] // world position
	V     mat.Vec[T] // world velocity
}

// GeomRef is the desired trajectory point.
type GeomRef[T scalar.Real[T]] struct {
	P   mat.Vec[T] // desired position
	V   mat.Vec[T] // desired velocity
	A   mat.Vec[T] // desired acceleration
	Yaw T          // desired heading
}

// NewGeomCtrl builds the controller with gains scaled to the vehicle's
// mass and inertia: a ~1.5 Hz position loop and a ~60 Hz attitude loop
// (ζ = 0.9 both), the bandwidth separation flapping-wing vehicles run
// with. Unscaled gains on milligram inertias produce closed-loop
// rotational bandwidths far beyond any realizable control rate.
func NewGeomCtrl[T scalar.Real[T]](like T, mass float64, inertia [3]float64) *GeomCtrl[T] {
	j := mat.Zeros[T](3, 3)
	jAvg := 0.0
	for i := 0; i < 3; i++ {
		j.Set(i, i, like.FromFloat(inertia[i]))
		jAvg += inertia[i] / 3
	}
	const (
		posW = 2 * 3.141592653589793 * 1.5
		attW = 2 * 3.141592653589793 * 60
		zeta = 0.9
	)
	return &GeomCtrl[T]{
		KP:   like.FromFloat(mass * posW * posW),
		KV:   like.FromFloat(2 * zeta * mass * posW),
		KR:   like.FromFloat(jAvg * attW * attW),
		KW:   like.FromFloat(2 * zeta * jAvg * attW),
		Mass: like.FromFloat(mass),
		J:    j,
	}
}

// Update computes (thrust, body moment) for the current state and
// reference — the measured kernel.
func (c *GeomCtrl[T]) Update(s GeomState[T], ref GeomRef[T]) (thrust T, moment mat.Vec[T]) {
	like := c.Mass
	g := like.FromFloat(imu.Gravity)
	zero := scalar.Zero(like)
	e3 := mat.Vec[T]{zero, zero, scalar.One(like)}

	// Position and velocity errors.
	ep := s.P.Sub(ref.P)
	ev := s.V.Sub(ref.V)

	// Desired force: f_des = -kp·ep - kv·ev + m·g·e3 + m·a_d.
	fdes := ep.Scale(c.KP.Neg()).
		Add(ev.Scale(c.KV.Neg())).
		Add(e3.Scale(c.Mass.Mul(g))).
		Add(ref.A.Scale(c.Mass))

	// Thrust is the projection onto the current body z axis.
	bz := s.R.Col(2)
	thrust = fdes.Dot(bz)

	// Desired attitude: b3 along f_des, b1 from the desired yaw.
	b3 := fdes.Normalized()
	b1c := mat.Vec[T]{scalar.Cos(ref.Yaw), scalar.Sin(ref.Yaw), zero}
	b2 := b3.Cross(b1c)
	if b2.Norm().IsZero() {
		// Degenerate heading; fall back to the world x axis.
		b1c = mat.Vec[T]{scalar.One(like), zero, zero}
		b2 = b3.Cross(b1c)
	}
	b2 = b2.Normalized()
	b1 := b2.Cross(b3)
	rd := mat.Zeros[T](3, 3)
	rd.SetCol(0, b1)
	rd.SetCol(1, b2)
	rd.SetCol(2, b3)

	// Attitude error: e_R = ½·vee(Rdᵀ·R − Rᵀ·Rd).
	half := like.FromFloat(0.5)
	er := geom.Vee(rd.Transpose().Mul(s.R).Sub(s.R.Transpose().Mul(rd))).Scale(half)
	// Rate error (desired rate taken as zero for hover-class refs).
	ew := s.Omega

	// M = -kR·e_R - kΩ·e_Ω + Ω × J·Ω.
	moment = er.Scale(c.KR.Neg()).
		Add(ew.Scale(c.KW.Neg())).
		Add(s.Omega.Cross(c.J.MulVec(s.Omega)))
	return thrust, moment
}
