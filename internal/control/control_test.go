package control_test

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/imu"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/scalar"
)

type F = scalar.F64

const dt = 0.002

func vecF(xs ...float64) mat.Vec[F] { return mat.VecFromFloats(F(0), xs) }

func TestLQRStabilizesFlyModel(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	lqr, err := control.NewLQR(F(0), a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	plant := control.NewLinearPlant(F(0), a, b, []float64{0.3, 0, 0.2, -0.4})
	xref := vecF(0, 0, 0, 0)
	for i := 0; i < 3000; i++ {
		u := lqr.Update(plant.X, xref)
		plant.Step(u)
	}
	for i, v := range plant.X.Floats() {
		if math.Abs(v) > 1e-3 {
			t.Fatalf("state[%d] = %g after 6s; LQR failed to stabilize", i, v)
		}
	}
}

func TestLQRUpdateIsCheap(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	lqr, err := control.NewLQR(F(0), a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	x := vecF(0.1, 0, 0, 0)
	xref := vecF(0, 0, 0, 0)
	c := profile.Collect(func() { lqr.Update(x, xref) })
	// A 2×4 gain multiply: tiny (Table IV shows ~1µs).
	if c.Total() > 300 {
		t.Fatalf("LQR update cost %d ops; should be tiny", c.Total())
	}
}

func TestTinyMPCMatchesLQRUnconstrained(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	lqr, err := control.NewLQR(F(0), a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := control.DefaultTinyMPCConfig()
	cfg.UMin = []float64{-100, -100} // constraints never active
	cfg.UMax = []float64{100, 100}
	mpc, err := control.NewTinyMPC(F(0), a, b, q, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := vecF(0.2, 0, 0.1, -0.1)
	xref := vecF(0, 0, 0, 0)
	uL := lqr.Update(x, xref).Floats()
	uM, _ := mpc.Solve(x, xref)
	um := uM.Floats()
	for i := range uL {
		if math.Abs(uL[i]-um[i]) > 0.25*math.Max(1, math.Abs(uL[i])) {
			t.Fatalf("unconstrained MPC u[%d]=%g far from LQR %g", i, um[i], uL[i])
		}
	}
}

func TestTinyMPCRespectsInputBounds(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	cfg := control.DefaultTinyMPCConfig()
	cfg.UMax = []float64{0.5, 0.5}
	cfg.UMin = []float64{-0.5, -0.5}
	mpc, err := control.NewTinyMPC(F(0), a, b, q, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Large initial error would demand u far beyond the box.
	x := vecF(2, 0, 1.5, -2)
	u, iters := mpc.Solve(x, vecF(0, 0, 0, 0))
	if iters < 1 {
		t.Fatal("no iterations")
	}
	for i, v := range u.Floats() {
		if v > 0.5001 || v < -0.5001 {
			t.Fatalf("u[%d] = %g violates the box", i, v)
		}
	}
}

func TestTinyMPCStabilizesClosedLoop(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	mpc, err := control.NewTinyMPC(F(0), a, b, q, r, control.DefaultTinyMPCConfig())
	if err != nil {
		t.Fatal(err)
	}
	plant := control.NewLinearPlant(F(0), a, b, []float64{0.3, 0, 0.2, -0.3})
	xref := vecF(0, 0, 0, 0)
	for i := 0; i < 2500; i++ {
		u, _ := mpc.Solve(plant.X, xref)
		plant.Step(u)
	}
	for i, v := range plant.X.Floats() {
		if math.Abs(v) > 5e-3 {
			t.Fatalf("state[%d] = %g; TinyMPC failed to stabilize", i, v)
		}
	}
}

func TestQPSolvesBoxConstrainedProblem(t *testing.T) {
	// min ½(z1² + z2²) - z1 - 2·z2 s.t. 0 <= z <= 0.8
	// Unconstrained optimum (1, 2) clips to (0.8, 0.8).
	p := mat.FromFloats(F(0), [][]float64{{1, 0}, {0, 1}})
	q := vecF(-1, -2)
	a := mat.FromFloats(F(0), [][]float64{{1, 0}, {0, 1}})
	l := vecF(0, 0)
	u := vecF(0.8, 0.8)
	qp := control.NewQP(p, q, a, l, u)
	res, err := qp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	z := res.Z.Floats()
	if math.Abs(z[0]-0.8) > 0.02 || math.Abs(z[1]-0.8) > 0.02 {
		t.Fatalf("QP solution %v, want (0.8, 0.8)", z)
	}
}

func TestQPEqualityConstraint(t *testing.T) {
	// min ½|z|² s.t. z1 + z2 = 1 -> (0.5, 0.5).
	p := mat.FromFloats(F(0), [][]float64{{1, 0}, {0, 1}})
	q := vecF(0, 0)
	a := mat.FromFloats(F(0), [][]float64{{1, 1}})
	l := vecF(1)
	u := vecF(1)
	qp := control.NewQP(p, q, a, l, u)
	res, err := qp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	z := res.Z.Floats()
	if math.Abs(z[0]-0.5) > 0.02 || math.Abs(z[1]-0.5) > 0.02 {
		t.Fatalf("QP solution %v, want (0.5, 0.5)", z)
	}
}

func TestBeeMPCStabilizes(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	mpc := control.NewBeeMPC(F(0), a, b, q, r, control.DefaultBeeMPCConfig())
	plant := control.NewLinearPlant(F(0), a, b, []float64{0.3, 0, 0.1, -0.2})
	xref := vecF(0, 0, 0, 0)
	// bee-mpc is expensive; run at a lower control rate.
	for i := 0; i < 300; i++ {
		u, _, err := mpc.Solve(plant.X, xref)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			plant.Step(u)
		}
	}
	for i, v := range plant.X.Floats() {
		if math.Abs(v) > 0.05 {
			t.Fatalf("state[%d] = %g; bee-mpc failed to stabilize", i, v)
		}
	}
}

// bee-mpc must dwarf fly-tiny-mpc in per-solve cost (Table IV: 8K µs vs
// 168 µs on the M4).
func TestBeeMPCCostsFarMoreThanTinyMPC(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	tiny, err := control.NewTinyMPC(F(0), a, b, q, r, control.DefaultTinyMPCConfig())
	if err != nil {
		t.Fatal(err)
	}
	bee := control.NewBeeMPC(F(0), a, b, q, r, control.DefaultBeeMPCConfig())
	x := vecF(0.5, 0, 0.3, -0.2)
	xref := vecF(0, 0, 0, 0)
	ct := profile.Collect(func() { tiny.Solve(x, xref) })
	cb := profile.Collect(func() {
		if _, _, err := bee.Solve(x, xref); err != nil {
			t.Error(err)
		}
	})
	if cb.Total() < 10*ct.Total() {
		t.Fatalf("bee-mpc ops %d < 10x tiny-mpc ops %d", cb.Total(), ct.Total())
	}
}

func TestGeomCtrlHoldsHover(t *testing.T) {
	mass := 0.0008 // 0.8 g — insect scale
	inertia := [3]float64{1.5e-9, 1.5e-9, 0.5e-9}
	ctrl := control.NewGeomCtrl(F(0), mass, inertia)
	body := control.NewRigidBody(F(0), mass, inertia)
	// Start displaced and tilted.
	body.P = vecF(0.05, -0.03, 0.02)
	ref := control.GeomRef[F]{
		P: vecF(0, 0, 0), V: vecF(0, 0, 0), A: vecF(0, 0, 0), Yaw: F(0),
	}
	h := F(0.0005)
	for i := 0; i < 20000; i++ {
		thrust, moment := ctrl.Update(body.State(), ref)
		body.Step(thrust, moment, h)
	}
	if d := body.P.Norm().Float(); d > 0.01 {
		t.Fatalf("position error %g m after 10 s of geometric control", d)
	}
	if w := body.W.Norm().Float(); w > 0.5 {
		t.Fatalf("residual body rate %g rad/s", w)
	}
}

func TestGeomCtrlThrustNearWeightAtHover(t *testing.T) {
	mass := 0.0008
	ctrl := control.NewGeomCtrl(F(0), mass, [3]float64{1.5e-9, 1.5e-9, 0.5e-9})
	body := control.NewRigidBody(F(0), mass, [3]float64{1.5e-9, 1.5e-9, 0.5e-9})
	ref := control.GeomRef[F]{P: vecF(0, 0, 0), V: vecF(0, 0, 0), A: vecF(0, 0, 0), Yaw: F(0)}
	thrust, _ := ctrl.Update(body.State(), ref)
	want := mass * imu.Gravity
	if math.Abs(thrust.Float()-want) > 0.1*want {
		t.Fatalf("hover thrust %g, want ~%g", thrust.Float(), want)
	}
}

func TestSMACConvergesWithUnknownOffset(t *testing.T) {
	// Altitude plant with an unknown lift deficit the adaptation must
	// learn: z̈ = u_norm + d, d = -0.8 (units of normalized accel).
	ctrl := control.NewSMAC(F(0), 0.0008)
	z, vz := 0.2, 0.0
	d := -0.8
	hdt := 0.002
	ref := control.SMACRef[F]{}
	var lateErr float64
	n := 0
	for i := 0; i < 15000; i++ {
		st := control.SMACState[F]{Z: F(z), VZ: F(vz)}
		out := ctrl.Update(st, ref, F(hdt))
		// Normalized vertical acceleration from the thrust command.
		uNorm := out.Thrust.Float()/(0.0008) - imu.Gravity
		vz += (uNorm + d) * hdt
		z += vz * hdt
		if i > 10000 {
			lateErr += math.Abs(z)
			n++
		}
	}
	if avg := lateErr / float64(n); avg > 0.02 {
		t.Fatalf("altitude error %g m with constant disturbance; adaptation failed", avg)
	}
	// The adaptive parameter should have learned roughly the deficit.
	if th := ctrl.Theta[0].Float(); math.Abs(th-0.8) > 0.4 {
		t.Fatalf("adapted θ[0] = %g, want ≈ 0.8", th)
	}
}

func TestSMACRespondsToAttitudeError(t *testing.T) {
	ctrl := control.NewSMAC(F(0), 0.0008)
	st := control.SMACState[F]{Roll: F(0.2), Pitch: F(-0.1)}
	out := ctrl.Update(st, control.SMACRef[F]{}, F(0.002))
	if out.RollMoment.Float() >= 0 {
		t.Error("positive roll error should command negative roll moment")
	}
	if out.PitchMom.Float() <= 0 {
		t.Error("negative pitch error should command positive pitch moment")
	}
}

func TestControlKernelsFloat32(t *testing.T) {
	a, b, q, r := control.FlyModel(dt)
	lqr, err := control.NewLQR(scalar.F32(0), a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	plant := control.NewLinearPlant(scalar.F32(0), a, b, []float64{0.2, 0, 0.1, -0.2})
	xref := mat.VecFromFloats(scalar.F32(0), []float64{0, 0, 0, 0})
	for i := 0; i < 3000; i++ {
		plant.Step(lqr.Update(plant.X, xref))
	}
	for i, v := range plant.X.Floats() {
		if math.Abs(v) > 5e-3 {
			t.Fatalf("f32 LQR state[%d] = %g", i, v)
		}
	}
}
