package scalar_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/profile"
	"repro/internal/scalar"
)

// Compile-time interface checks: all three scalar families satisfy Real.
var (
	_ scalar.Real[scalar.F32] = scalar.F32(0)
	_ scalar.Real[scalar.F64] = scalar.F64(0)
	_ scalar.Real[fixed.Num]  = fixed.Num{}
)

func TestF32Arithmetic(t *testing.T) {
	a, b := scalar.F32(6), scalar.F32(1.5)
	if got := a.Add(b); got != 7.5 {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != 4.5 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != 9 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Div(b); got != 4 {
		t.Errorf("Div = %v", got)
	}
	if got := a.Neg(); got != -6 {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Neg().Abs(); got != 6 {
		t.Errorf("Abs = %v", got)
	}
	if got := scalar.F32(9).Sqrt(); got != 3 {
		t.Errorf("Sqrt = %v", got)
	}
}

func TestF64Arithmetic(t *testing.T) {
	a, b := scalar.F64(6), scalar.F64(1.5)
	if got := a.Mul(b); got != 9 {
		t.Errorf("Mul = %v", got)
	}
	if got := scalar.F64(2).Sqrt().Float(); math.Abs(got-math.Sqrt2) > 1e-15 {
		t.Errorf("Sqrt = %v", got)
	}
	if !b.Less(a) || a.Less(b) {
		t.Error("Less wrong")
	}
	if !a.LessEq(a) {
		t.Error("LessEq wrong")
	}
	if !scalar.F64(0).IsZero() || scalar.F64(1).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestProfilingHooks(t *testing.T) {
	c := profile.Collect(func() {
		a := scalar.F32(2)
		_ = a.Add(a).Mul(a).Sub(a).Div(a) // 4 F ops
		_ = a.Less(a)                     // 1 B op
	})
	if c.F != 4 {
		t.Errorf("F = %d, want 4", c.F)
	}
	if c.B != 1 {
		t.Errorf("B = %d, want 1", c.B)
	}
	cFixed := profile.Collect(func() {
		a := fixed.New(2, 16)
		_ = a.Mul(a) // 2 I ops (mul + shift)
		_ = a.Add(a) // 1 I op
	})
	if cFixed.I != 3 {
		t.Errorf("fixed I = %d, want 3", cFixed.I)
	}
	if cFixed.F != 0 {
		t.Errorf("fixed F = %d, want 0", cFixed.F)
	}
}

func TestConstHelpers(t *testing.T) {
	fx := fixed.New(0, 24)
	two := scalar.C(fx, 2)
	if two.FracBits() != 24 || math.Abs(two.Float()-2) > 1e-6 {
		t.Errorf("C(fixed, 2) = %v", two)
	}
	if !scalar.Zero(scalar.F64(5)).IsZero() {
		t.Error("Zero not zero")
	}
	if scalar.One(scalar.F32(0)).Float() != 1 {
		t.Error("One not one")
	}
}

func TestSliceConversions(t *testing.T) {
	xs := []float64{1, 2.5, -3}
	ts := scalar.Slice(scalar.F64(0), xs)
	back := scalar.Floats(ts)
	for i := range xs {
		if back[i] != xs[i] {
			t.Fatalf("round trip [%d] = %v", i, back[i])
		}
	}
}

func TestMinMaxClamp(t *testing.T) {
	a, b := scalar.F64(1), scalar.F64(2)
	if scalar.Max(a, b) != b || scalar.Min(a, b) != a {
		t.Error("Min/Max wrong")
	}
	if scalar.Clamp(scalar.F64(5), a, b) != b {
		t.Error("Clamp high wrong")
	}
	if scalar.Clamp(scalar.F64(0), a, b) != a {
		t.Error("Clamp low wrong")
	}
	if scalar.Clamp(scalar.F64(1.5), a, b) != 1.5 {
		t.Error("Clamp mid wrong")
	}
}

func TestTranscendentals(t *testing.T) {
	x := scalar.F64(0.5)
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"Sin", scalar.Sin(x).Float(), math.Sin(0.5)},
		{"Cos", scalar.Cos(x).Float(), math.Cos(0.5)},
		{"Tan", scalar.Tan(x).Float(), math.Tan(0.5)},
		{"Asin", scalar.Asin(x).Float(), math.Asin(0.5)},
		{"Acos", scalar.Acos(x).Float(), math.Acos(0.5)},
		{"Exp", scalar.Exp(x).Float(), math.Exp(0.5)},
		{"Log", scalar.Log(x).Float(), math.Log(0.5)},
		{"Atan2", scalar.Atan2(scalar.F64(1), scalar.F64(1)).Float(), math.Pi / 4},
		{"Pow", scalar.Pow(scalar.F64(2), scalar.F64(10)).Float(), 1024},
		{"Hypot", scalar.Hypot(scalar.F64(3), scalar.F64(4)).Float(), 5},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestAsinAcosClampOutOfRange(t *testing.T) {
	if got := scalar.Asin(scalar.F64(1.5)).Float(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("Asin(1.5) = %v", got)
	}
	if got := scalar.Acos(scalar.F64(-2)).Float(); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("Acos(-2) = %v", got)
	}
}

func TestTranscendentalCostModel(t *testing.T) {
	c := profile.Collect(func() {
		_ = scalar.Sin(scalar.F32(1))
	})
	if c.F < 10 {
		t.Errorf("libm call charged only %d F ops; expected a modeled polynomial cost", c.F)
	}
}

// Property: generic arithmetic over F64 agrees with native float64.
func TestPropGenericMatchesNative(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		a, b := scalar.F64(x), scalar.F64(y)
		return a.Add(b).Float() == x+y &&
			a.Sub(b).Float() == x-y &&
			a.Mul(b).Float() == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed-point generic kernels agree with float64 within
// quantization error for well-scaled inputs. This is the foundation the
// whole precision-sweep case study rests on.
func TestPropFixedTracksFloat(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		vx, vy := math.Mod(x, 8), math.Mod(y, 8)
		a, b := fixed.New(vx, 24), fixed.New(vy, 24)
		sum := a.Add(b).Float()
		prod := a.Mul(b).Float()
		return math.Abs(sum-(vx+vy)) < 1e-5 && math.Abs(prod-vx*vy) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
