package scalar

import (
	"repro/internal/fixed"
	"repro/internal/profile"
)

// OpCosts is the per-operation instruction-mix price of one scalar
// implementation: exactly what each hooked Real method charges the
// profiler per call. The bulk fast paths in internal/mat use these
// tables to charge whole inner loops analytically — N calls of an op
// cost N times its entry — so bulk accounting and per-op hooks cannot
// disagree without a differential test catching it.
type OpCosts struct {
	Add  profile.Counts
	Sub  profile.Counts
	Mul  profile.Counts
	Div  profile.Counts
	Neg  profile.Counts
	Abs  profile.Counts
	Sqrt profile.Counts
	// Cmp is the price of Less/LessEq (one branch/compare for every
	// built-in scalar type).
	Cmp profile.Counts
}

// FloatOpCosts prices F32 and F64: every arithmetic method is one F op
// (the MCU model charges double-precision penalties downstream, not
// here), comparisons are one branch.
var FloatOpCosts = OpCosts{
	Add:  profile.Counts{F: 1},
	Sub:  profile.Counts{F: 1},
	Mul:  profile.Counts{F: 1},
	Div:  profile.Counts{F: 1},
	Neg:  profile.Counts{F: 1},
	Abs:  profile.Counts{F: 1},
	Sqrt: profile.Counts{F: 1},
	Cmp:  profile.Counts{B: 1},
}

// FixedOpCosts prices fixed.Num, built from the same Cost constants its
// hooked methods charge.
var FixedOpCosts = OpCosts{
	Add:  profile.Counts{I: fixed.CostAdd},
	Sub:  profile.Counts{I: fixed.CostSub},
	Mul:  profile.Counts{I: fixed.CostMul},
	Div:  profile.Counts{I: fixed.CostDiv},
	Neg:  profile.Counts{I: fixed.CostNeg},
	Abs:  profile.Counts{I: fixed.CostAbs},
	Sqrt: profile.Counts{I: fixed.CostSqrt},
	Cmp:  profile.Counts{B: 1},
}

// OpCostsOf returns the cost table for T. ok is false for scalar types
// outside the built-in family (custom Real implementations), which have
// no bulk fast path and keep the per-op hooked accounting.
func OpCostsOf[T Real[T]]() (c OpCosts, ok bool) {
	var z T
	switch any(z).(type) {
	case F32, F64:
		return FloatOpCosts, true
	case fixed.Num:
		return FixedOpCosts, true
	}
	return OpCosts{}, false
}

// ScaleCounts returns cost repeated n times — the aggregate charge of n
// identical operations.
func ScaleCounts(cost profile.Counts, n uint64) profile.Counts {
	return profile.Counts{F: cost.F * n, I: cost.I * n, M: cost.M * n, B: cost.B * n}
}
