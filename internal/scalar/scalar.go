// Package scalar defines the generic numeric type family every EntoBench
// kernel is parameterized over, mirroring the paper's C++ template design
// in which each kernel switches between float, double, and fixed-point
// arithmetic at compile time.
//
// The Real constraint is satisfied by three implementations:
//
//   - F32 (this package): single-precision; counts as F ops.
//   - F64 (this package): double-precision; counts as F ops (the MCU cost
//     model charges extra cycles for doubles on SP-FPU cores).
//   - fixed.Num: Q-format fixed point; counts as I ops.
//
// Because fixed.Num carries its Q-format in the value, generic kernels
// must derive constants from an already-formatted sample via FromFloat —
// the C helper makes that idiom read naturally:
//
//	two := scalar.C(x, 2.0) // 2.0 in whatever format/precision x carries
package scalar

import (
	"math"

	"repro/internal/fixed"
	"repro/internal/profile"
)

// Real is the scalar constraint shared by every kernel. It is the method
// set of a closed real-number field plus the square root, ordering, and
// float conversion kernels need. All arithmetic methods record their
// operation class with the profiler.
type Real[T any] interface {
	Add(T) T
	Sub(T) T
	Mul(T) T
	Div(T) T
	Neg() T
	Abs() T
	Sqrt() T
	Less(T) bool
	LessEq(T) bool
	IsZero() bool
	Float() float64
	// FromFloat constructs the given value carrying the receiver's
	// format (Q-format for fixed point; a no-op discriminator for
	// floats). Kernels use it to materialize constants.
	FromFloat(float64) T
}

// F32 is IEEE-754 single precision with profiling hooks.
type F32 float32

// F64 is IEEE-754 double precision with profiling hooks.
type F64 float64

// --- F32 ---

// Add returns a+b.
func (a F32) Add(b F32) F32 { profile.AddF(1); return a + b }

// Sub returns a-b.
func (a F32) Sub(b F32) F32 { profile.AddF(1); return a - b }

// Mul returns a*b.
func (a F32) Mul(b F32) F32 { profile.AddF(1); return a * b }

// Div returns a/b.
func (a F32) Div(b F32) F32 { profile.AddF(1); return a / b }

// Neg returns -a.
func (a F32) Neg() F32 { profile.AddF(1); return -a }

// Abs returns |a|.
func (a F32) Abs() F32 {
	profile.AddF(1)
	if a < 0 {
		return -a
	}
	return a
}

// Sqrt returns √a. Cost modeled as one F op: Cortex-M FPUs provide VSQRT.
func (a F32) Sqrt() F32 { profile.AddF(1); return F32(math.Sqrt(float64(a))) }

// Less reports a < b.
func (a F32) Less(b F32) bool { profile.AddB(1); return a < b }

// LessEq reports a <= b.
func (a F32) LessEq(b F32) bool { profile.AddB(1); return a <= b }

// IsZero reports a == 0.
func (a F32) IsZero() bool { return a == 0 }

// Float widens to float64.
func (a F32) Float() float64 { return float64(a) }

// FromFloat narrows x to single precision.
func (F32) FromFloat(x float64) F32 { return F32(x) }

// --- F64 ---

// Add returns a+b.
func (a F64) Add(b F64) F64 { profile.AddF(1); return a + b }

// Sub returns a-b.
func (a F64) Sub(b F64) F64 { profile.AddF(1); return a - b }

// Mul returns a*b.
func (a F64) Mul(b F64) F64 { profile.AddF(1); return a * b }

// Div returns a/b.
func (a F64) Div(b F64) F64 { profile.AddF(1); return a / b }

// Neg returns -a.
func (a F64) Neg() F64 { profile.AddF(1); return -a }

// Abs returns |a|.
func (a F64) Abs() F64 {
	profile.AddF(1)
	if a < 0 {
		return -a
	}
	return a
}

// Sqrt returns √a.
func (a F64) Sqrt() F64 { profile.AddF(1); return F64(math.Sqrt(float64(a))) }

// Less reports a < b.
func (a F64) Less(b F64) bool { profile.AddB(1); return a < b }

// LessEq reports a <= b.
func (a F64) LessEq(b F64) bool { profile.AddB(1); return a <= b }

// IsZero reports a == 0.
func (a F64) IsZero() bool { return a == 0 }

// Float returns a as float64.
func (a F64) Float() float64 { return float64(a) }

// FromFloat wraps x.
func (F64) FromFloat(x float64) F64 { return F64(x) }

// --- generic helpers ---

// C ("constant") materializes v in the format carried by like.
func C[T Real[T]](like T, v float64) T { return like.FromFloat(v) }

// Zero returns 0 in like's format.
func Zero[T Real[T]](like T) T { return like.FromFloat(0) }

// One returns 1 in like's format.
func One[T Real[T]](like T) T { return like.FromFloat(1) }

// Slice converts a float64 slice into T, all in like's format.
func Slice[T Real[T]](like T, xs []float64) []T {
	out := make([]T, len(xs))
	for i, x := range xs {
		out[i] = like.FromFloat(x)
	}
	return out
}

// Floats converts a T slice back to float64.
func Floats[T Real[T]](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x.Float()
	}
	return out
}

// Max returns the larger of a and b.
func Max[T Real[T]](a, b T) T {
	if a.Less(b) {
		return b
	}
	return a
}

// Min returns the smaller of a and b.
func Min[T Real[T]](a, b T) T {
	if b.Less(a) {
		return b
	}
	return a
}

// Clamp limits x to [lo, hi].
func Clamp[T Real[T]](x, lo, hi T) T {
	if x.Less(lo) {
		return lo
	}
	if hi.Less(x) {
		return hi
	}
	return x
}

// Hypot returns sqrt(a²+b²) without undue overflow for floats; for fixed
// point the plain formula is used, as it would be on an MCU.
func Hypot[T Real[T]](a, b T) T {
	return a.Mul(a).Add(b.Mul(b)).Sqrt()
}

// libmCost is the modeled op count of a transcendental library call on a
// Cortex-M class core (polynomial approximations of 10-30 flops).
const libmCost = 20

// chargeLibm records a transcendental call: float kernels burn F ops,
// fixed-point kernels run CORDIC/polynomial integer routines and burn I
// ops (somewhat more of them, matching the shift-heavy fixed idiom).
func chargeLibm[T Real[T]](like T, calls uint64) {
	if _, isFixed := any(like).(fixed.Num); isFixed {
		profile.AddI(calls * libmCost * 3 / 2)
		return
	}
	profile.AddF(calls * libmCost)
}

// Sin returns sin(x). Float kernels round-trip through the host libm
// and charge a modeled polynomial cost; fixed-point kernels run the
// genuine integer-only CORDIC of the fixed package, exactly as an
// FPU-less build would.
func Sin[T Real[T]](x T) T {
	if fx, ok := any(x).(fixed.Num); ok {
		return any(fx.Sin()).(T)
	}
	chargeLibm(x, 1)
	return x.FromFloat(math.Sin(x.Float()))
}

// Cos returns cos(x); see Sin for the fixed-point path.
func Cos[T Real[T]](x T) T {
	if fx, ok := any(x).(fixed.Num); ok {
		return any(fx.Cos()).(T)
	}
	chargeLibm(x, 1)
	return x.FromFloat(math.Cos(x.Float()))
}

// Tan returns tan(x).
func Tan[T Real[T]](x T) T {
	chargeLibm(x, 1)
	return x.FromFloat(math.Tan(x.Float()))
}

// Atan2 returns atan2(y, x); fixed point uses CORDIC vectoring mode.
func Atan2[T Real[T]](y, x T) T {
	if fy, ok := any(y).(fixed.Num); ok {
		fx := any(x).(fixed.Num)
		return any(fixed.Atan2Fixed(fy, fx)).(T)
	}
	chargeLibm(x, 1)
	return x.FromFloat(math.Atan2(y.Float(), x.Float()))
}

// Asin returns asin(x), clamping the argument into [-1, 1] first as MCU
// quaternion code must.
func Asin[T Real[T]](x T) T {
	chargeLibm(x, 1)
	v := x.Float()
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return x.FromFloat(math.Asin(v))
}

// Acos returns acos(x) with the same clamping as Asin.
func Acos[T Real[T]](x T) T {
	chargeLibm(x, 1)
	v := x.Float()
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return x.FromFloat(math.Acos(v))
}

// Exp returns e^x.
func Exp[T Real[T]](x T) T {
	chargeLibm(x, 1)
	return x.FromFloat(math.Exp(x.Float()))
}

// Log returns ln(x).
func Log[T Real[T]](x T) T {
	chargeLibm(x, 1)
	return x.FromFloat(math.Log(x.Float()))
}

// Pow returns x^y.
func Pow[T Real[T]](x, y T) T {
	chargeLibm(x, 2)
	return x.FromFloat(math.Pow(x.Float(), y.Float()))
}
