// Package obs is the observability layer of the characterization
// engine: named process-level counters, goroutine-safe span tracing
// with a Chrome trace_event exporter, and a terminal progress line for
// long sweeps.
//
// The package exists to make the sweep engine watchable without
// perturbing it. Everything is allocation-conscious and off by default:
// counters are single atomic adds; span recording is gated behind one
// atomic load (callers check TraceEnabled before computing timestamps
// or argument lists, so a disabled trace costs nothing on the hot
// path); the progress line is an explicit opt-in object.
//
// Every span and counter name used anywhere in the repo is declared in
// this package (see names.go) and documented in docs/observability.md;
// a sync test enforces that the two lists match exactly.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing process-level metric. Create
// counters once, at package init, with NewCounter; increments are a
// single atomic add and safe from any goroutine.
type Counter struct {
	name string
	v    atomic.Uint64
}

var counterRegistry struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounter registers a counter under a canonical name from
// names.go. It panics on a duplicate or undeclared name — both are
// programming errors that would silently skew docs/observability.md.
func NewCounter(name string) *Counter {
	if !knownCounterName(name) {
		panic(fmt.Sprintf("obs: counter %q is not declared in names.go", name))
	}
	counterRegistry.mu.Lock()
	defer counterRegistry.mu.Unlock()
	if counterRegistry.m == nil {
		counterRegistry.m = make(map[string]*Counter)
	}
	if _, ok := counterRegistry.m[name]; ok {
		panic(fmt.Sprintf("obs: counter %q registered twice", name))
	}
	c := &Counter{name: name}
	counterRegistry.m[name] = c
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Dec subtracts one. It exists for the few gauge-valued counters
// (queue depths) whose current level, not cumulative total, is the
// observable; monotone counters must never call it.
func (c *Counter) Dec() { c.v.Add(^uint64(0)) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counters snapshots every registered counter. Only counters whose
// owning package has been imported appear; the full canonical name set
// is AllCounters.
func Counters() map[string]uint64 {
	counterRegistry.mu.Lock()
	defer counterRegistry.mu.Unlock()
	out := make(map[string]uint64, len(counterRegistry.m))
	for name, c := range counterRegistry.m {
		out[name] = c.Value()
	}
	return out
}

// RegisteredCounterNames lists the registered counters, sorted.
func RegisteredCounterNames() []string {
	counterRegistry.mu.Lock()
	defer counterRegistry.mu.Unlock()
	out := make([]string, 0, len(counterRegistry.m))
	for name := range counterRegistry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResetCounters zeroes every registered counter (test hook; the
// registry itself is append-only for the life of the process).
func ResetCounters() {
	counterRegistry.mu.Lock()
	defer counterRegistry.mu.Unlock()
	for _, c := range counterRegistry.m {
		c.v.Store(0)
	}
}
