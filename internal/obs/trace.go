package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing. One process-global collector, gated by an atomic flag:
// instrumented code asks TraceEnabled first and skips clock reads and
// argument construction entirely when tracing is off, so the sweep's
// hot path pays one atomic load. Spans are complete events — recorded
// once, at their end — which keeps the collector a mutex-guarded append
// and needs no per-goroutine state.

// Arg is one key/value annotation on a span (kernel name, arch, …).
type Arg struct{ Key, Val string }

// Span is one completed timed region. Times are nanoseconds relative to
// the StartTrace call, so exported traces start at t=0.
type Span struct {
	Name    string
	StartNS int64
	DurNS   int64
	// TID is the logical thread lane the span renders on in a trace
	// viewer: 0 for the sweep coordinator, 1..N for pool workers.
	TID  int
	Args []Arg
}

var (
	traceOn atomic.Bool
	traceMu sync.Mutex
	trace   *Trace
)

// Trace is a finished span collection, ready for export.
type Trace struct {
	start time.Time
	Spans []Span
}

// TraceEnabled reports whether a trace is being collected. Instrumented
// code must check it before doing any per-span work.
func TraceEnabled() bool { return traceOn.Load() }

// StartTrace begins collecting spans into a fresh process-global trace.
// Starting while a trace is active discards the earlier spans.
func StartTrace() {
	traceMu.Lock()
	trace = &Trace{start: time.Now()}
	traceMu.Unlock()
	traceOn.Store(true)
}

// StopTrace ends collection and returns the finished trace, sorted by
// start time (ties by lane then name) so export order is deterministic.
// It returns nil if no trace was active.
func StopTrace() *Trace {
	traceOn.Store(false)
	traceMu.Lock()
	t := trace
	trace = nil
	traceMu.Unlock()
	if t == nil {
		return nil
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		a, b := t.Spans[i], t.Spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	return t
}

// RecordSpan appends one completed span to the active trace; it is a
// no-op when tracing is off (but callers should gate on TraceEnabled to
// avoid building the arguments at all).
func RecordSpan(name string, start, end time.Time, tid int, args ...Arg) {
	if !traceOn.Load() {
		return
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	if trace == nil {
		return
	}
	trace.Spans = append(trace.Spans, Span{
		Name:    name,
		StartNS: start.Sub(trace.start).Nanoseconds(),
		DurNS:   end.Sub(start).Nanoseconds(),
		TID:     tid,
		Args:    args,
	})
}

// chromeEvent is one trace_event record; see the Trace Event Format
// spec (the format chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the trace in Chrome trace_event JSON (object
// form, complete "X" events plus thread-name metadata), loadable by
// chrome://tracing and Perfetto.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	const pid = 1
	lanes := map[int]bool{}
	events := make([]chromeEvent, 0, len(t.Spans)+4)
	for _, s := range t.Spans {
		lanes[s.TID] = true
		var args map[string]string
		if len(s.Args) > 0 {
			args = make(map[string]string, len(s.Args))
			for _, a := range s.Args {
				args[a.Key] = a.Val
			}
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "sweep",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  pid,
			TID:  s.TID,
			Args: args,
		})
	}
	tids := make([]int, 0, len(lanes))
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	meta := make([]chromeEvent, 0, len(tids))
	for _, tid := range tids {
		name := "coordinator"
		if tid > 0 {
			name = "worker " + strconv.Itoa(tid)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"})
}
