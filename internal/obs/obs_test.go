package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The canonical counters are registered by the packages that own them
// (harness, profile, report), which the external docsync test pulls
// into this test binary. White-box tests therefore exercise Counter
// mechanics on directly constructed values and registry behaviour on
// the already-registered set.

func TestCounterMechanics(t *testing.T) {
	c := &Counter{name: "scratch"}
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("after Inc+Add(41): %d", c.Value())
	}
	if c.Name() != "scratch" {
		t.Fatalf("Name() = %q", c.Name())
	}
}

func TestRegistryHoldsAllCanonicalCounters(t *testing.T) {
	got := map[string]bool{}
	for _, name := range RegisteredCounterNames() {
		got[name] = true
	}
	for _, name := range AllCounters {
		if !got[name] {
			t.Errorf("canonical counter %q not registered (owning package not linked or constant unused)", name)
		}
	}
}

func TestCountersSnapshotAndReset(t *testing.T) {
	counterRegistry.mu.Lock()
	c := counterRegistry.m[CounterHarnessRuns]
	counterRegistry.mu.Unlock()
	if c == nil {
		t.Fatal("harness.runs not registered")
	}
	c.Add(7)
	if Counters()[CounterHarnessRuns] == 0 {
		t.Fatal("snapshot missed the increment")
	}
	ResetCounters()
	if v := Counters()[CounterHarnessRuns]; v != 0 {
		t.Fatalf("after reset: %d", v)
	}
}

func TestNewCounterRejectsUnknownAndDuplicate(t *testing.T) {
	mustPanic := func(name, why string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("NewCounter(%q) did not panic (%s)", name, why)
			}
		}()
		NewCounter(name)
	}
	mustPanic("not.a.declared.counter", "undeclared name")
	mustPanic(CounterHarnessRuns, "duplicate registration")
}

func TestTraceRecordsAndSorts(t *testing.T) {
	StartTrace()
	base := time.Now()
	// Record out of order; StopTrace must sort by start.
	RecordSpan("b", base.Add(2*time.Millisecond), base.Add(3*time.Millisecond), 2)
	RecordSpan("a", base, base.Add(time.Millisecond), 1, Arg{Key: "kernel", Val: "madgwick"})
	tr := StopTrace()
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Spans[0].Name != "a" || tr.Spans[1].Name != "b" {
		t.Fatalf("not sorted by start: %+v", tr.Spans)
	}
	if tr.Spans[0].DurNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("dur = %d", tr.Spans[0].DurNS)
	}
	if TraceEnabled() {
		t.Fatal("tracing still enabled after StopTrace")
	}
}

func TestRecordSpanDisabledIsNoOp(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("trace unexpectedly active")
	}
	RecordSpan("ghost", time.Now(), time.Now(), 0)
	StartTrace()
	tr := StopTrace()
	if len(tr.Spans) != 0 {
		t.Fatalf("disabled RecordSpan leaked a span: %+v", tr.Spans)
	}
}

func TestStopTraceWithoutStart(t *testing.T) {
	if tr := StopTrace(); tr != nil {
		t.Fatalf("StopTrace without StartTrace = %+v", tr)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	StartTrace()
	base := time.Now()
	RecordSpan(SpanSweepCell, base, base.Add(5*time.Millisecond), 1,
		Arg{Key: "kernel", Val: "madgwick"}, Arg{Key: "arch", Val: "M4"})
	RecordSpan(SpanSweep, base, base.Add(6*time.Millisecond), 0)
	tr := StopTrace()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var metas, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "thread_name" {
				t.Errorf("metadata event %q", e.Name)
			}
		case "X":
			complete++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Name == SpanSweepCell {
			if e.Args["kernel"] != "madgwick" || e.Args["arch"] != "M4" {
				t.Errorf("cell args = %v", e.Args)
			}
			if e.Dur < 4999 || e.Dur > 5001 { // microseconds
				t.Errorf("cell dur = %v µs, want ~5000", e.Dur)
			}
		}
	}
	if metas != 2 || complete != 2 { // lanes 0 and 1 named, two spans
		t.Fatalf("events: %d metadata, %d complete; want 2 and 2", metas, complete)
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep")
	p.Update(1, 0, 4)
	p.Update(2, 0, 4) // inside the rate-limit window: dropped
	p.Update(4, 0, 4) // final update always renders
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "\r[sweep] 1/4 cells (25%)") {
		t.Fatalf("first update missing: %q", out)
	}
	if strings.Contains(out, "2/4") {
		t.Fatalf("rate-limited update rendered: %q", out)
	}
	if !strings.Contains(out, "4/4 cells (100%)") {
		t.Fatalf("final update missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Done() did not terminate the line: %q", out)
	}
	before := buf.Len()
	p.Update(5, 0, 5) // after Done: ignored
	if buf.Len() != before {
		t.Fatal("update after Done wrote output")
	}
}

// A sweep with skipped cells (fail-fast or cancellation) must say so:
// the percentage counts only executed cells and the skip count renders
// explicitly, so 1 done + 3 skipped never reads as a finished sweep.
func TestProgressLineRendersSkips(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep")
	p.Update(1, 3, 4) // done+skipped == total: final, renders despite rate limit
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "1/4 cells (25%, 3 skipped)") {
		t.Fatalf("skip rendering missing: %q", out)
	}
	if strings.Contains(out, "100%") {
		t.Fatalf("skipped cells counted as done: %q", out)
	}
}

func TestProgressNeverRenderedStaysSilent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "idle")
	p.Done()
	if buf.Len() != 0 {
		t.Fatalf("Done on silent progress wrote %q", buf.String())
	}
}
