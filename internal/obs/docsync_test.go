package obs_test

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	// Importing report links every package that registers counters
	// (report itself, and core → harness → profile), so the registry
	// reflects the full production set.
	_ "repro/internal/report"
	// server owns the server.* counters.
	_ "repro/internal/server"
)

// TestObservabilityDocMatchesCode pins docs/observability.md to the
// code, in both directions: every span and counter the doc tables name
// must exist in obs (names.go), every name in names.go must be
// documented, and every canonical counter must actually be registered
// by its owning package.
func TestObservabilityDocMatchesCode(t *testing.T) {
	data, err := os.ReadFile("../../docs/observability.md")
	if err != nil {
		t.Fatal(err)
	}
	docSpans := tableNames(t, string(data), "## Spans")
	docCounters := tableNames(t, string(data), "## Counters")

	if got, want := sorted(docSpans), sorted(obs.AllSpans); !equal(got, want) {
		t.Errorf("doc spans %v != code spans %v", got, want)
	}
	if got, want := sorted(docCounters), sorted(obs.AllCounters); !equal(got, want) {
		t.Errorf("doc counters %v != code counters %v", got, want)
	}

	registered := map[string]bool{}
	for _, name := range obs.RegisteredCounterNames() {
		registered[name] = true
	}
	for _, name := range obs.AllCounters {
		if !registered[name] {
			t.Errorf("counter %q is declared and documented but never registered by any package", name)
		}
	}
}

// tableNames extracts the first backticked token of each table row in
// the markdown section starting at heading (up to the next heading).
func tableNames(t *testing.T, doc, heading string) []string {
	t.Helper()
	i := strings.Index(doc, heading)
	if i < 0 {
		t.Fatalf("docs/observability.md lost its %q section", heading)
	}
	section := doc[i+len(heading):]
	if j := strings.Index(section, "\n## "); j >= 0 {
		section = section[:j]
	}
	row := regexp.MustCompile("(?m)^\\| `([^`]+)` \\|")
	var names []string
	for _, m := range row.FindAllStringSubmatch(section, -1) {
		names = append(names, m[1])
	}
	if len(names) == 0 {
		t.Fatalf("no table rows found under %q", heading)
	}
	return names
}

func sorted(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
