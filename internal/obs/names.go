package obs

// Canonical span and counter names. This file is the single source of
// truth for the observable surface: NewCounter refuses names missing
// from AllCounters, and the docs-sync test asserts that
// docs/observability.md documents exactly these names.

// Span names emitted by the sweep engine.
const (
	// SpanSweep covers one whole CharacterizeSuite call, coordinator
	// goroutine (tid 0), from job construction to record assembly.
	SpanSweep = "sweep"
	// SpanSweepStatic is one per-kernel static-proxy job.
	SpanSweepStatic = "sweep.static"
	// SpanSweepCell is one (kernel, arch, cache) measurement cell.
	SpanSweepCell = "sweep.cell"
)

// Counter names.
const (
	// CounterSweepCacheHit counts calls served by the memoized
	// process-level sweep (report.RunCharacterization and friends).
	CounterSweepCacheHit = "sweep.cache.hit"
	// CounterSweepCacheMiss counts cache-filling sweep runs.
	CounterSweepCacheMiss = "sweep.cache.miss"
	// CounterProfileSessions counts goroutine-scoped profiling sessions
	// created (profile.ensureSession).
	CounterProfileSessions = "profile.sessions.created"
	// CounterHarnessRuns counts full harness measurement runs
	// (harness.Run calls).
	CounterHarnessRuns = "harness.runs"
	// CounterHarnessHostReps counts kernel Solve invocations the host
	// actually executed inside ROIs (profiled + validation reps; the
	// analytically scaled reps are not executed and not counted).
	CounterHarnessHostReps = "harness.reps.host"
	// CounterSweepCellsFailed counts sweep jobs that ended in any error:
	// plain failures, recovered panics, and watchdog timeouts.
	CounterSweepCellsFailed = "sweep.cells_failed"
	// CounterSweepPanicsRecovered counts kernel panics the sweep
	// recovered and converted into per-cell errors.
	CounterSweepPanicsRecovered = "sweep.panics_recovered"
	// CounterSweepCellsTimedOut counts jobs abandoned by the per-cell
	// watchdog (SweepOptions.CellTimeout).
	CounterSweepCellsTimedOut = "sweep.cells_timed_out"
)

// AllSpans is every span name the repo can emit, in docs order.
var AllSpans = []string{SpanSweep, SpanSweepStatic, SpanSweepCell}

// AllCounters is every counter name the repo can register, in docs
// order.
var AllCounters = []string{
	CounterSweepCacheHit,
	CounterSweepCacheMiss,
	CounterSweepCellsFailed,
	CounterSweepPanicsRecovered,
	CounterSweepCellsTimedOut,
	CounterProfileSessions,
	CounterHarnessRuns,
	CounterHarnessHostReps,
}

func knownCounterName(name string) bool {
	for _, n := range AllCounters {
		if n == name {
			return true
		}
	}
	return false
}
