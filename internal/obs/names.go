package obs

// Canonical span and counter names. This file is the single source of
// truth for the observable surface: NewCounter refuses names missing
// from AllCounters, and the docs-sync test asserts that
// docs/observability.md documents exactly these names.

// Span names emitted by the sweep engine.
const (
	// SpanSweep covers one whole CharacterizeSuite call, coordinator
	// goroutine (tid 0), from job construction to record assembly.
	SpanSweep = "sweep"
	// SpanSweepStatic is one per-kernel static-proxy job.
	SpanSweepStatic = "sweep.static"
	// SpanSweepCell is one (kernel, arch, cache) measurement cell.
	SpanSweepCell = "sweep.cell"
)

// Counter names.
const (
	// CounterSweepCacheHit counts queries served from a completed entry
	// of the keyed sweep cache (report.RunCharacterization and friends,
	// and every entobenchd sweep request).
	CounterSweepCacheHit = "sweep.cache.hit"
	// CounterSweepCacheMiss counts cache-filling sweep runs — queries
	// whose key had no completed or in-flight entry.
	CounterSweepCacheMiss = "sweep.cache.miss"
	// CounterSweepCacheCoalesced counts queries that joined an
	// identical in-flight sweep instead of starting their own
	// (singleflight coalescing in the keyed sweep cache).
	CounterSweepCacheCoalesced = "sweep.cache.coalesced"
	// CounterSweepCacheEvicted counts completed cache entries dropped
	// by the capacity bound (report.SetSweepCacheCapacity).
	CounterSweepCacheEvicted = "sweep.cache.evicted"
	// CounterServerRequests counts HTTP requests the entobenchd handler
	// served, across all routes.
	CounterServerRequests = "server.requests"
	// CounterServerSSEClients counts SSE progress streams opened
	// (GET /v1/sweep/{id}/events).
	CounterServerSSEClients = "server.sse_clients"
	// CounterServerShedTotal counts sweep requests the admission
	// controller refused under load: synchronous submissions answered
	// 429 and queued async jobs evicted to make room (answered 503 on
	// poll). Every shed carries Retry-After (docs/server.md).
	CounterServerShedTotal = "server.shed_total"
	// CounterServerQueueDepth is gauge-valued: the current number of
	// admitted-but-waiting async sweep jobs in the bounded admission
	// queue (incremented on enqueue, decremented on dispatch or
	// eviction). Exported as a Prometheus gauge.
	CounterServerQueueDepth = "server.queue_depth"
	// CounterProfileSessions counts goroutine-scoped profiling sessions
	// created (profile.ensureSession).
	CounterProfileSessions = "profile.sessions.created"
	// CounterHarnessRuns counts full harness measurement runs
	// (harness.Run calls).
	CounterHarnessRuns = "harness.runs"
	// CounterHarnessHostReps counts kernel Solve invocations the host
	// actually executed inside ROIs (profiled + validation reps; the
	// analytically scaled reps are not executed and not counted).
	CounterHarnessHostReps = "harness.reps.host"
	// CounterSweepCellsFailed counts sweep jobs that ended in any error:
	// plain failures, recovered panics, and watchdog timeouts.
	CounterSweepCellsFailed = "sweep.cells_failed"
	// CounterSweepPanicsRecovered counts kernel panics the sweep
	// recovered and converted into per-cell errors.
	CounterSweepPanicsRecovered = "sweep.panics_recovered"
	// CounterSweepCellsTimedOut counts jobs abandoned by the per-cell
	// watchdog (SweepOptions.CellTimeout).
	CounterSweepCellsTimedOut = "sweep.cells_timed_out"
	// CounterSweepCellsCached counts sweep jobs served from the
	// persistent cell cache (SweepOptions.CellCache) instead of being
	// computed.
	CounterSweepCellsCached = "sweep.cells_cached"
	// CounterSweepCellsComputed counts sweep jobs the engine actually
	// executed — everything not loaded from the cell cache and not
	// skipped, including jobs that then failed.
	CounterSweepCellsComputed = "sweep.cells_computed"
	// CounterCellstoreCorruptDiscarded counts on-disk cell records the
	// store discarded on read because they failed an integrity check
	// (truncation, bit flips, wrong version); each discard heals into a
	// recompute, never an error.
	CounterCellstoreCorruptDiscarded = "cellstore.corrupt_discarded"
	// CounterCellstoreGCEvicted counts on-disk cell records the
	// byte-size quota's LRU garbage collector removed
	// (cellstore.Store.SetQuota / entobenchd -cachequota).
	CounterCellstoreGCEvicted = "cellstore.gc_evicted"
	// CounterCellstoreDegraded counts transitions of a cell store into
	// read-only degraded mode after a persistent write failure (disk
	// full, dead directory). A degraded store keeps serving warm cells
	// and probes its way back to writable; /healthz surfaces the state.
	CounterCellstoreDegraded = "cellstore.degraded"
)

// AllSpans is every span name the repo can emit, in docs order.
var AllSpans = []string{SpanSweep, SpanSweepStatic, SpanSweepCell}

// AllCounters is every counter name the repo can register, in docs
// order.
var AllCounters = []string{
	CounterSweepCacheHit,
	CounterSweepCacheMiss,
	CounterSweepCacheCoalesced,
	CounterSweepCacheEvicted,
	CounterSweepCellsFailed,
	CounterSweepPanicsRecovered,
	CounterSweepCellsTimedOut,
	CounterSweepCellsCached,
	CounterSweepCellsComputed,
	CounterCellstoreCorruptDiscarded,
	CounterCellstoreGCEvicted,
	CounterCellstoreDegraded,
	CounterProfileSessions,
	CounterHarnessRuns,
	CounterHarnessHostReps,
	CounterServerRequests,
	CounterServerSSEClients,
	CounterServerShedTotal,
	CounterServerQueueDepth,
}

func knownCounterName(name string) bool {
	for _, n := range AllCounters {
		if n == name {
			return true
		}
	}
	return false
}
