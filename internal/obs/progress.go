package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a single live status line for a long-running sweep:
// carriage-return rewrites of "[label] done/total cells (NN%) Xs", rate
// limited so a fast sweep does not flood the terminal. It is safe to
// call from the pool workers directly; updates serialize internally.
//
// The line writes to its own writer (normally stderr) precisely so the
// machine-readable output on stdout — tables, JSON — stays byte-exact
// whether or not a human is watching.
type Progress struct {
	w     io.Writer
	label string

	mu      sync.Mutex
	start   time.Time
	last    time.Time
	lastLen int
	done    bool
}

// minProgressInterval is the floor between two line rewrites; the final
// (done == total) update always renders.
const minProgressInterval = 50 * time.Millisecond

// NewProgress starts a progress line labeled label on w.
func NewProgress(w io.Writer, label string) *Progress {
	return &Progress{w: w, label: label, start: time.Now()}
}

// Update reports that done of total work units have executed and
// skipped more were abandoned (fail-fast or cancellation) without
// running. Its signature matches core.SweepOptions.Progress so a
// *Progress can be wired straight into the sweep engine. The percentage
// counts only executed work — skipped cells never masquerade as done —
// and a non-zero skip count renders explicitly.
func (p *Progress) Update(done, skipped, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	now := time.Now()
	if done+skipped < total && now.Sub(p.last) < minProgressInterval {
		return
	}
	p.last = now
	pct := 0
	if total > 0 {
		pct = 100 * done / total
	}
	skip := ""
	if skipped > 0 {
		skip = fmt.Sprintf(", %d skipped", skipped)
	}
	line := fmt.Sprintf("[%s] %d/%d cells (%d%%%s) %.1fs", p.label, done, total, pct, skip, now.Sub(p.start).Seconds())
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
}

// Done terminates the line with a newline. Further updates are ignored;
// calling Done on a line that never rendered writes nothing.
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	if p.lastLen > 0 {
		fmt.Fprintln(p.w)
	}
}
