package pose

import (
	"math"
	"math/rand"

	"repro/internal/scalar"
)

// LocalOpt selects the local-optimization mode of LO-RANSAC.
type LocalOpt int

// Local optimization modes (compile-time configurable in the paper's
// C++; a constructor parameter here).
const (
	LONone      LocalOpt = iota // plain RANSAC
	LOLinear                    // re-fit with the linear solver on inliers
	LONonlinear                 // Gauss-Newton refinement on inliers
)

// RansacConfig parameterizes the robust estimators.
type RansacConfig struct {
	MaxIters    int     // hard iteration cap
	Threshold   float64 // inlier residual threshold (normalized units)
	Confidence  float64 // early-exit confidence (e.g. 0.99)
	LocalOpt    LocalOpt
	FinalPolish bool  // nonlinear polish on the final inlier set
	Seed        int64 // deterministic sampling
}

// DefaultRansacConfig matches Case Study #4's setup: 25% outliers,
// 0.5 px noise scale, 99% confidence.
func DefaultRansacConfig() RansacConfig {
	return RansacConfig{
		MaxIters:    1000,
		Threshold:   3e-3,
		Confidence:  0.99,
		LocalOpt:    LONonlinear,
		FinalPolish: true,
		Seed:        1,
	}
}

// RansacStats reports what the robust loop did — the quantities Fig 5d-f
// plots.
type RansacStats struct {
	Iterations int // minimal-solver samples drawn
	LORuns     int // local optimizations triggered
	Inliers    int // final inlier count
}

// RelSolver produces relative-pose candidates from a minimal (or larger)
// sample.
type RelSolver[T scalar.Real[T]] func([]RelCorrespondence[T]) ([]Pose[T], error)

// AbsSolver produces absolute-pose candidates from a sample.
type AbsSolver[T scalar.Real[T]] func([]AbsCorrespondence[T]) ([]Pose[T], error)

// adaptiveIters returns the RANSAC iteration bound for the observed
// inlier ratio.
func adaptiveIters(confidence float64, inlierRatio float64, sampleSize, cap int) int {
	if inlierRatio <= 0 {
		return cap
	}
	if inlierRatio >= 1 {
		return 1
	}
	w := math.Pow(inlierRatio, float64(sampleSize))
	if w <= 1e-12 {
		return cap
	}
	k := math.Log(1-confidence) / math.Log(1-w)
	if k < 1 {
		return 1
	}
	if k > float64(cap) {
		return cap
	}
	return int(math.Ceil(k))
}

// sampleIndices draws k distinct indices from [0, n).
func sampleIndices(rng *rand.Rand, n, k int) []int {
	idx := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(idx) < k {
		i := rng.Intn(n)
		if !used[i] {
			used[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

// RelLoRansac robustly estimates relative pose with LO-RANSAC [15]:
// minimal samples drive the hypothesize-and-verify loop, and each new
// best hypothesis triggers local optimization over its inliers. The
// kernel behind rel-lo-ransac.
func RelLoRansac[T scalar.Real[T]](corrs []RelCorrespondence[T], solver RelSolver[T], sampleSize int, cfg RansacConfig) (Pose[T], []int, RansacStats, error) {
	n := len(corrs)
	if n < sampleSize {
		return Pose[T]{}, nil, RansacStats{}, ErrDegenerate
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	like := corrs[0].U1[0]
	thresh := like.FromFloat(cfg.Threshold)

	score := func(p Pose[T]) []int {
		e := EssentialFromPose(p)
		var in []int
		for i, c := range corrs {
			if SampsonErr(e, c).LessEq(thresh) {
				in = append(in, i)
			}
		}
		return in
	}
	gather := func(idx []int) []RelCorrespondence[T] {
		out := make([]RelCorrespondence[T], len(idx))
		for i, j := range idx {
			out[i] = corrs[j]
		}
		return out
	}

	var best Pose[T]
	var bestIn []int
	stats := RansacStats{}
	maxIters := cfg.MaxIters
	for it := 0; it < maxIters; it++ {
		stats.Iterations++
		sample := gather(sampleIndices(rng, n, sampleSize))
		cands, err := solver(sample)
		if err != nil {
			continue
		}
		for _, cand := range cands {
			in := score(cand)
			if len(in) <= len(bestIn) {
				continue
			}
			best, bestIn = cand, in
			// Local optimization on the new best.
			if cfg.LocalOpt != LONone && len(in) >= 8 {
				stats.LORuns++
				var lo Pose[T]
				var ok bool
				switch cfg.LocalOpt {
				case LOLinear:
					if p, err := EightPoint(gather(in)); err == nil {
						lo, ok = p, true
					}
				default:
					lo, ok = RefineRelPose(cand, gather(in), 5), true
				}
				if ok {
					if loIn := score(lo); len(loIn) >= len(bestIn) {
						best, bestIn = lo, loIn
					}
				}
			}
			maxIters = min(cfg.MaxIters, adaptiveIters(cfg.Confidence, float64(len(bestIn))/float64(n), sampleSize, cfg.MaxIters))
		}
	}
	if len(bestIn) < sampleSize {
		return Pose[T]{}, nil, stats, ErrDegenerate
	}
	if cfg.FinalPolish && len(bestIn) >= 8 {
		polished := RefineRelPose(best, gather(bestIn), 10)
		if pin := score(polished); len(pin) >= len(bestIn) {
			best, bestIn = polished, pin
		}
	}
	stats.Inliers = len(bestIn)
	return best, bestIn, stats, nil
}

// AbsLoRansac robustly estimates absolute pose with LO-RANSAC over a
// minimal absolute solver (p3p by default) — the abs-lo-ransac kernel.
func AbsLoRansac[T scalar.Real[T]](corrs []AbsCorrespondence[T], solver AbsSolver[T], sampleSize int, cfg RansacConfig) (Pose[T], []int, RansacStats, error) {
	n := len(corrs)
	if n < sampleSize {
		return Pose[T]{}, nil, RansacStats{}, ErrDegenerate
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	like := corrs[0].U[0]
	thresh := like.FromFloat(cfg.Threshold)

	score := func(p Pose[T]) []int {
		var in []int
		for i, c := range corrs {
			if ReprojectErr(p, c).LessEq(thresh) {
				in = append(in, i)
			}
		}
		return in
	}
	gather := func(idx []int) []AbsCorrespondence[T] {
		out := make([]AbsCorrespondence[T], len(idx))
		for i, j := range idx {
			out[i] = corrs[j]
		}
		return out
	}

	var best Pose[T]
	var bestIn []int
	stats := RansacStats{}
	maxIters := cfg.MaxIters
	for it := 0; it < maxIters; it++ {
		stats.Iterations++
		sample := gather(sampleIndices(rng, n, sampleSize))
		cands, err := solver(sample)
		if err != nil {
			continue
		}
		for _, cand := range cands {
			in := score(cand)
			if len(in) <= len(bestIn) {
				continue
			}
			best, bestIn = cand, in
			if cfg.LocalOpt != LONone && len(in) >= 6 {
				stats.LORuns++
				var lo Pose[T]
				var ok bool
				switch cfg.LocalOpt {
				case LOLinear:
					if p, err := DLT(gather(in)); err == nil {
						lo, ok = p, true
					}
				default:
					lo, ok = RefineAbsPose(cand, gather(in), 5), true
				}
				if ok {
					if loIn := score(lo); len(loIn) >= len(bestIn) {
						best, bestIn = lo, loIn
					}
				}
			}
			maxIters = min(cfg.MaxIters, adaptiveIters(cfg.Confidence, float64(len(bestIn))/float64(n), sampleSize, cfg.MaxIters))
		}
	}
	if len(bestIn) < sampleSize {
		return Pose[T]{}, nil, stats, ErrDegenerate
	}
	if cfg.FinalPolish && len(bestIn) >= 6 {
		polished := RefineAbsPose(best, gather(bestIn), 10)
		if pin := score(polished); len(pin) >= len(bestIn) {
			best, bestIn = polished, pin
		}
	}
	stats.Inliers = len(bestIn)
	return best, bestIn, stats, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
