package pose

import (
	"repro/internal/mat"
	"repro/internal/scalar"
)

// PoseFromPlanarHomography recovers (R, t) from a calibrated homography
// of a *known* world plane z = 0 — the way [51]'s mm-scale vision system
// turns its LED-array homography into an absolute pose. For world points
// X = (x, y, 0), projection gives x_img ~ [r1 r2 t]·(x, y, 1)ᵀ, so the
// homography's columns are the first two rotation columns and the
// translation, up to one common scale fixed by |r1| = 1 and the sign by
// positive depth.
func PoseFromPlanarHomography[T scalar.Real[T]](h mat.Mat[T]) (Pose[T], error) {
	if h.Rows() != 3 || h.Cols() != 3 {
		return Pose[T]{}, ErrDegenerate
	}
	c1 := h.Col(0)
	c2 := h.Col(1)
	c3 := h.Col(2)
	n1 := c1.Norm()
	n2 := c2.Norm()
	if n1.IsZero() || n2.IsZero() {
		return Pose[T]{}, ErrDegenerate
	}
	one := scalar.One(n1)
	two := n1.FromFloat(2)
	// Common scale: the average of the two column norms (they are equal
	// for an exact homography; noise splits them).
	inv := two.Div(n1.Add(n2))
	r1 := c1.Scale(inv)
	r2 := c2.Scale(inv)
	t := c3.Scale(inv)
	// Positive depth: the plane must sit in front of the camera.
	if t[2].Less(scalar.Zero(one)) {
		r1 = r1.Neg()
		r2 = r2.Neg()
		t = t.Neg()
	}
	r3 := r1.Cross(r2)
	r := mat.Zeros[T](3, 3)
	r.SetCol(0, r1)
	r.SetCol(1, r2)
	r.SetCol(2, r3)
	// Orthonormalize: noise leaves r1·r2 ≠ 0; project to SO(3).
	rr := projectRotation(r)
	return Pose[T]{R: rr, T: t}, nil
}
