// Package pose implements the geometric pose-estimation kernels of the
// suite: minimal and linear absolute-pose solvers (p3p, up2p, dlt, and
// the gold-standard refinement), minimal and linear relative-pose solvers
// (5pt, 8pt, and the prior-aware up2pt, up3pt, u3pt), homography
// estimation, and the LO-RANSAC robust wrapper that Case Study #4 builds
// on.
//
// Conventions: cameras are calibrated (normalized image coordinates);
// a pose maps world/first-camera coordinates into the (second) camera
// frame, x_cam = R·X + t. Relative poses are defined so that x2 ~ R·x1
// + t up to scale along the bearing.
package pose

import (
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// Pose is a rigid transform (R, t).
type Pose[T scalar.Real[T]] struct {
	R mat.Mat[T] // 3×3 rotation
	T mat.Vec[T] // translation
}

// IdentityPose returns the identity transform in like's format.
func IdentityPose[T scalar.Real[T]](like T) Pose[T] {
	one := like.FromFloat(1)
	z := like.FromFloat(0)
	return Pose[T]{R: mat.Identity(3, one), T: mat.Vec[T]{z, z, z}}
}

// Apply maps a world point into the camera frame.
func (p Pose[T]) Apply(x mat.Vec[T]) mat.Vec[T] { return p.R.MulVec(x).Add(p.T) }

// RotationErrDeg returns the rotation angle between p and q in degrees.
func (p Pose[T]) RotationErrDeg(q Pose[T]) float64 { return geom.RotationAngleDeg(p.R, q.R) }

// TranslationDirErrDeg returns the angle between the translation
// directions in degrees — the scale-free metric for relative pose.
func (p Pose[T]) TranslationDirErrDeg(q Pose[T]) float64 {
	a := p.T.Normalized().Floats()
	b := q.T.Normalized().Floats()
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	deg := acosDeg(dot)
	// Relative translation is defined up to sign for some solvers.
	if deg > 90 {
		deg = 180 - deg
	}
	return deg
}

func acosDeg(c float64) float64 {
	// Small local helper to avoid importing math in the generic core.
	return scalar.Acos(scalar.F64(c)).Float() * 180 / 3.141592653589793
}

// AbsCorrespondence pairs a 3D world point with its normalized image
// observation (bearing with unit z).
type AbsCorrespondence[T scalar.Real[T]] struct {
	X mat.Vec[T] // 3D world point
	U mat.Vec[T] // normalized image point (u, v)
}

// RelCorrespondence pairs normalized image observations of the same 3D
// point in two views.
type RelCorrespondence[T scalar.Real[T]] struct {
	U1 mat.Vec[T] // view 1 (u, v)
	U2 mat.Vec[T] // view 2 (u, v)
}

// bearing lifts a normalized image point to a unit bearing vector.
func bearing[T scalar.Real[T]](u mat.Vec[T]) mat.Vec[T] {
	one := scalar.One(u[0])
	return mat.Vec[T]{u[0], u[1], one}.Normalized()
}

// homog lifts a normalized image point to homogeneous (u, v, 1).
func homog[T scalar.Real[T]](u mat.Vec[T]) mat.Vec[T] {
	return mat.Vec[T]{u[0], u[1], scalar.One(u[0])}
}

// ReprojectErr returns the reprojection error of pose p on correspondence
// c in normalized image units; points behind the camera return a large
// sentinel value.
func ReprojectErr[T scalar.Real[T]](p Pose[T], c AbsCorrespondence[T]) T {
	xc := p.Apply(c.X)
	big := scalar.C(xc[2], 1e6)
	if xc[2].LessEq(scalar.C(xc[2], 1e-9)) {
		return big
	}
	du := xc[0].Div(xc[2]).Sub(c.U[0])
	dv := xc[1].Div(xc[2]).Sub(c.U[1])
	return scalar.Hypot(du, dv)
}

// EssentialFromPose returns E = [t]×·R.
func EssentialFromPose[T scalar.Real[T]](p Pose[T]) mat.Mat[T] {
	return geom.Hat(p.T).Mul(p.R)
}

// EpipolarResidual returns |x2ᵀ·E·x1| for a correspondence — the
// algebraic epipolar error.
func EpipolarResidual[T scalar.Real[T]](e mat.Mat[T], c RelCorrespondence[T]) T {
	x1 := homog(c.U1)
	x2 := homog(c.U2)
	return x2.Dot(e.MulVec(x1)).Abs()
}

// SampsonErr returns the first-order geometric (Sampson) epipolar error
// for a correspondence under essential matrix e.
func SampsonErr[T scalar.Real[T]](e mat.Mat[T], c RelCorrespondence[T]) T {
	x1 := homog(c.U1)
	x2 := homog(c.U2)
	ex1 := e.MulVec(x1)
	etx2 := e.Transpose().MulVec(x2)
	num := x2.Dot(ex1)
	den := ex1[0].Mul(ex1[0]).Add(ex1[1].Mul(ex1[1])).
		Add(etx2[0].Mul(etx2[0])).Add(etx2[1].Mul(etx2[1]))
	if den.IsZero() {
		return num.Abs()
	}
	return num.Mul(num).Div(den).Sqrt()
}

// DecomposeEssential extracts the four (R, t) candidates from an
// essential matrix and selects the one with the most points passing the
// cheirality (positive depth) test.
func DecomposeEssential[T scalar.Real[T]](e mat.Mat[T], corrs []RelCorrespondence[T]) (Pose[T], bool) {
	like := e.At(0, 0)
	one := scalar.One(like.FromFloat(1))
	res := mat.SVD(e)
	u, v := res.U, res.V
	// Enforce proper rotations.
	if mat.Det3(u).Float() < 0 {
		u = u.Scale(one.Neg())
	}
	if mat.Det3(v).Float() < 0 {
		v = v.Scale(one.Neg())
	}
	w := mat.Zeros[T](3, 3)
	w.Set(0, 1, one.Neg())
	w.Set(1, 0, one)
	w.Set(2, 2, one)

	r1 := u.Mul(w).Mul(v.Transpose())
	r2 := u.Mul(w.Transpose()).Mul(v.Transpose())
	t := u.Col(2)

	best := -1
	var bestPose Pose[T]
	for _, cand := range []Pose[T]{
		{R: r1, T: t}, {R: r1, T: t.Neg()},
		{R: r2, T: t}, {R: r2, T: t.Neg()},
	} {
		n := 0
		for _, c := range corrs {
			if cheiralityOK(cand, c) {
				n++
			}
		}
		if n > best {
			best = n
			bestPose = cand
		}
	}
	if best <= 0 {
		return bestPose, false
	}
	return bestPose, true
}

// cheiralityOK triangulates c under pose p (midpoint method) and checks
// positive depth in both views.
func cheiralityOK[T scalar.Real[T]](p Pose[T], c RelCorrespondence[T]) bool {
	z1, z2, ok := TriangulateDepths(p, c)
	if !ok {
		return false
	}
	zero := scalar.Zero(z1)
	return zero.Less(z1) && zero.Less(z2)
}

// TriangulateDepths solves z2·x2 = z1·R·x1 + t for the two depths by
// least squares on the 3 equations.
func TriangulateDepths[T scalar.Real[T]](p Pose[T], c RelCorrespondence[T]) (z1, z2 T, ok bool) {
	x1 := homog(c.U1)
	x2 := homog(c.U2)
	rx1 := p.R.MulVec(x1)
	// [rx1, -x2]·(z1, z2)ᵀ = -t
	a := mat.Zeros[T](3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, rx1[i])
		a.Set(i, 1, x2[i].Neg())
	}
	sol, err := mat.LeastSquares(a, p.T.Neg())
	if err != nil {
		var zero T
		return zero, zero, false
	}
	return sol[0], sol[1], true
}
