package pose_test

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pose"
	"repro/internal/scalar"
)

// Degeneracy and failure-injection coverage for the pose solvers: the
// robust wrapper must survive pathological samples without panicking,
// and every solver must reject inputs it cannot handle.

func TestEightPointCollinearPoints(t *testing.T) {
	// All correspondences on one image line — rank-deficient design.
	var corrs []pose.RelCorrespondence[F]
	for i := 0; i < 10; i++ {
		u := float64(i) * 0.05
		corrs = append(corrs, relCorr(u, 0.1, u+0.01, 0.1))
	}
	// Must not panic; either errors or returns something finite.
	est, err := pose.EightPoint(corrs)
	if err == nil {
		for _, row := range est.R.Floats() {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatal("NaN in rotation from degenerate input")
				}
			}
		}
	}
}

func TestFivePointDuplicatePoints(t *testing.T) {
	c := relCorr(0.1, 0.2, 0.12, 0.19)
	corrs := []pose.RelCorrespondence[F]{c, c, c, c, c}
	// Degenerate: all equations identical. Must not panic.
	if _, err := pose.FivePoint(corrs); err == nil {
		t.Log("5pt returned candidates on a degenerate sample (acceptable)")
	}
}

func TestP3PBehindCamera(t *testing.T) {
	// Points with negative depth yield no admissible (positive) root.
	corrs := []pose.AbsCorrespondence[F]{
		absCorr(0, 0, -3, 0.0, 0.0),
		absCorr(0.5, 0, -3, 0.17, 0.0),
		absCorr(0, 0.5, -3, 0.0, 0.17),
	}
	// Must not panic; candidates, if any, will fail validation upstream.
	_, _ = pose.P3P(corrs)
}

func TestUP2PIdenticalPoints(t *testing.T) {
	c := absCorr(0.1, 0.2, 3, 0.03, 0.07)
	if _, err := pose.UP2P([]pose.AbsCorrespondence[F]{c, c}); err == nil {
		t.Log("up2p solved a duplicate-point sample (degenerate but finite)")
	}
}

func TestRansacAllOutliers(t *testing.T) {
	// Pure noise: the loop must terminate and report failure or a
	// small consensus, never hang.
	p := dataset.GenRelProblem(dataset.PoseGenConfig{
		N: 40, PixelNoise: 0.5, OutlierRatio: 1.0, Upright: true, Seed: 13,
	})
	cfg := pose.DefaultRansacConfig()
	cfg.MaxIters = 200
	_, inliers, stats, err := pose.RelLoRansac(p.Corrs, pose.U3PT[F], 3, cfg)
	if err == nil && len(inliers) > 30 {
		t.Fatalf("found %d inliers in pure noise", len(inliers))
	}
	if stats.Iterations > 200 {
		t.Fatalf("iteration cap violated: %d", stats.Iterations)
	}
}

func TestRansacTooFewPoints(t *testing.T) {
	p := dataset.GenRelProblem(dataset.PoseGenConfig{N: 2, Upright: true, Seed: 1})
	if _, _, _, err := pose.RelLoRansac(p.Corrs, pose.U3PT[F], 3, pose.DefaultRansacConfig()); err == nil {
		t.Fatal("RANSAC accepted fewer points than the sample size")
	}
}

func TestSampsonErrZeroForExactCorrespondence(t *testing.T) {
	p := dataset.GenRelProblem(dataset.PoseGenConfig{N: 6, Seed: 2})
	e := pose.EssentialFromPose(dataset.TruthAs(F(0), p.Truth))
	for _, c := range p.Corrs {
		if v := pose.SampsonErr(e, c).Float(); v > 1e-6 {
			t.Fatalf("Sampson error %g on exact correspondence", v)
		}
	}
}

func TestTriangulateDepthsSigns(t *testing.T) {
	p := dataset.GenRelProblem(dataset.PoseGenConfig{N: 10, Seed: 5})
	truth := dataset.TruthAs(F(0), p.Truth)
	// Scale the unit-translation pose to the generator's baseline so
	// depths are metric.
	scaled := pose.Pose[F]{R: truth.R, T: truth.T.Scale(F(0.3))}
	for i, c := range p.Corrs {
		z1, z2, ok := pose.TriangulateDepths(scaled, c)
		if !ok {
			t.Fatalf("corr %d: triangulation failed", i)
		}
		if z1.Float() <= 0 || z2.Float() <= 0 {
			t.Fatalf("corr %d: non-positive depths %g, %g", i, z1.Float(), z2.Float())
		}
		// The generator puts points at z in [2, 6] in view 1.
		if z1.Float() < 1 || z1.Float() > 8 {
			t.Fatalf("corr %d: implausible depth %g", i, z1.Float())
		}
	}
}

func TestRefineAbsPoseImprovesPerturbedInit(t *testing.T) {
	p := dataset.GenAbsProblem(dataset.PoseGenConfig{N: 12, PixelNoise: 0.2, Seed: 8})
	corrs := dataset.ConvertAbs(scalar.F64(0), p)
	// Perturb the truth and refine back.
	init := dataset.TruthAs(scalar.F64(0), p.Truth)
	init.T = init.T.Add(mat.VecFromFloats(scalar.F64(0), []float64{0.05, -0.04, 0.06}))
	before := dataset.TranslationAbsErr(init, p.Truth)
	refined := pose.RefineAbsPose(init, corrs, 10)
	after := dataset.TranslationAbsErr(refined, p.Truth)
	if after >= before {
		t.Fatalf("refinement did not improve translation: %.4f -> %.4f", before, after)
	}
	if after > 0.01 {
		t.Fatalf("refined translation error %.4f", after)
	}
}

func TestHomographyOfPureRotation(t *testing.T) {
	// Pure rotation: every correspondence fits H = R regardless of depth.
	rot := dataset.GenRelProblem(dataset.PoseGenConfig{N: 1, Upright: true, Seed: 4}).Truth.R
	var corrs []pose.RelCorrespondence[F]
	pts := [][3]float64{{0.1, 0.2, 3}, {-0.2, 0.1, 4}, {0.3, -0.2, 2}, {-0.1, -0.3, 5}, {0.25, 0.15, 3.5}}
	for _, pt := range pts {
		x1 := mat.VecFromFloats(F(0), pt[:])
		x2f := mat.FromFloats(F(0), rot.Floats()).MulVec(x1)
		corrs = append(corrs, relCorr(
			pt[0]/pt[2], pt[1]/pt[2],
			x2f[0].Float()/x2f[2].Float(), x2f[1].Float()/x2f[2].Float()))
	}
	h, err := pose.Homography(corrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corrs {
		if e := pose.HomographyTransferErr(h, c).Float(); e > 1e-8 {
			t.Fatalf("corr %d transfer error %g under pure rotation", i, e)
		}
	}
}
