package pose

import (
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// The prior-aware solvers assume the camera frames have been pre-rotated
// with the IMU's gravity estimate so that gravity lies along the y axis;
// the remaining unknown rotation is a yaw R_y(θ). With the Weierstrass
// substitution q = tan(θ/2),
//
//	(1+q²)·R_y(θ) = M0 + q·M1 + q²·M2
//
// with constant integer matrices M0..M2 — the algebraic structure all
// four solvers share.
func yawBasis[T scalar.Real[T]](like T) (m0, m1, m2 mat.Mat[T]) {
	one := scalar.One(like)
	two := like.FromFloat(2)
	zero := scalar.Zero(like)
	m0 = mat.Identity(3, one)
	m1 = mat.Zeros[T](3, 3)
	m1.Set(0, 2, two)
	m1.Set(2, 0, two.Neg())
	m2 = mat.Zeros[T](3, 3)
	m2.Set(0, 0, one.Neg())
	m2.Set(1, 1, one)
	m2.Set(2, 2, one.Neg())
	_ = zero
	return m0, m1, m2
}

// yawRotation builds R_y(θ) from q = tan(θ/2).
func yawRotation[T scalar.Real[T]](q T) mat.Mat[T] {
	one := scalar.One(q)
	two := q.FromFloat(2)
	den := one.Add(q.Mul(q))
	c := one.Sub(q.Mul(q)).Div(den)
	s := two.Mul(q).Div(den)
	zero := scalar.Zero(q)
	return mat.New(3, 3, []T{
		c, zero, s,
		zero, one, zero,
		s.Neg(), zero, c,
	})
}

// UP2P solves absolute pose from 2 points with known vertical direction
// (Kukelova et al. [40]): the unknown yaw and translation satisfy four
// linear-in-t equations whose elimination leaves a single quadratic in
// q — up to two solutions, orders of magnitude cheaper than a full P3P
// or DLT.
func UP2P[T scalar.Real[T]](corrs []AbsCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 2 {
		return nil, ErrDegenerate
	}
	like := corrs[0].U[0]
	one := scalar.One(like)
	m0, m1, m2 := yawBasis(like)

	// Rows 0 and 1 of [h]× for h = (u, v, 1):
	// row0 = (0, -1, v), row1 = (1, 0, -u).
	// System: A·s + g0 + g1·q + g2·q² = 0 with s = (1+q²)·t.
	a := mat.Zeros[T](4, 3)
	g0 := make(mat.Vec[T], 4)
	g1 := make(mat.Vec[T], 4)
	g2 := make(mat.Vec[T], 4)
	for i := 0; i < 2; i++ {
		u, v := corrs[i].U[0], corrs[i].U[1]
		x := corrs[i].X
		hx := geom.Hat(mat.Vec[T]{u, v, one})
		w0 := hx.MulVec(m0.MulVec(x))
		w1 := hx.MulVec(m1.MulVec(x))
		w2 := hx.MulVec(m2.MulVec(x))
		for r := 0; r < 2; r++ {
			row := 2*i + r
			for c := 0; c < 3; c++ {
				a.Set(row, c, hx.At(r, c))
			}
			g0[row] = w0[r]
			g1[row] = w1[r]
			g2[row] = w2[r]
		}
	}

	// Solve s(q) = -A₃⁻¹·(g0..g2) from the first three rows.
	a3 := a.Submatrix(0, 0, 3, 3)
	inv, err := mat.Inverse(a3)
	if err != nil {
		return nil, ErrDegenerate
	}
	s0 := inv.MulVec(mat.Vec[T]{g0[0], g0[1], g0[2]}).Neg()
	s1 := inv.MulVec(mat.Vec[T]{g1[0], g1[1], g1[2]}).Neg()
	s2 := inv.MulVec(mat.Vec[T]{g2[0], g2[1], g2[2]}).Neg()

	// Substitute into the fourth row: quadratic in q.
	a4 := a.Row(3)
	c0 := a4.Dot(s0).Add(g0[3])
	c1 := a4.Dot(s1).Add(g1[3])
	c2 := a4.Dot(s2).Add(g2[3])

	roots := mat.SolveQuadratic(c2, c1, c0)
	var out []Pose[T]
	for _, q := range roots {
		den := one.Add(q.Mul(q))
		s := s0.Add(s1.Scale(q)).Add(s2.Scale(q.Mul(q)))
		t := s.Scale(one.Div(den))
		out = append(out, Pose[T]{R: yawRotation(q), T: t})
	}
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}

// U3PT solves relative pose from 3 points with known gravity (upright
// two-view geometry, Ding et al. [20]): the three epipolar constraints
// form W(q)·t = 0 with W quadratic in q, and det W(q) = 0 yields a
// degree-6 polynomial whose real roots enumerate the candidate yaws.
func U3PT[T scalar.Real[T]](corrs []RelCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 3 {
		return nil, ErrDegenerate
	}
	like := corrs[0].U1[0]
	m0, m1, m2 := yawBasis(like)

	// wᵢ(q) = x2ᵢ × (R(q)·x1ᵢ), a vector quadratic in q.
	var w [3][3]mat.Poly[T] // w[i][axis] is a degree-2 polynomial
	for i := 0; i < 3; i++ {
		x1 := homog(corrs[i].U1)
		x2 := homog(corrs[i].U2)
		v0 := x2.Cross(m0.MulVec(x1))
		v1 := x2.Cross(m1.MulVec(x1))
		v2 := x2.Cross(m2.MulVec(x1))
		for ax := 0; ax < 3; ax++ {
			w[i][ax] = mat.Poly[T]{v0[ax], v1[ax], v2[ax]}
		}
	}

	// det W(q) by cofactor expansion with polynomial arithmetic.
	det := w[0][0].MulPoly(w[1][1].MulPoly(w[2][2]).SubPoly(w[1][2].MulPoly(w[2][1]))).
		SubPoly(w[0][1].MulPoly(w[1][0].MulPoly(w[2][2]).SubPoly(w[1][2].MulPoly(w[2][0]))))
	det = det.AddPoly(w[0][2].MulPoly(w[1][0].MulPoly(w[2][1]).SubPoly(w[1][1].MulPoly(w[2][0]))))

	roots := det.RealRoots()
	var out []Pose[T]
	for _, q := range roots {
		// t spans the null space of W(q): cross two rows.
		row0 := mat.Vec[T]{w[0][0].Eval(q), w[0][1].Eval(q), w[0][2].Eval(q)}
		row1 := mat.Vec[T]{w[1][0].Eval(q), w[1][1].Eval(q), w[1][2].Eval(q)}
		t := row0.Cross(row1)
		if t.Norm().IsZero() {
			row2 := mat.Vec[T]{w[2][0].Eval(q), w[2][1].Eval(q), w[2][2].Eval(q)}
			t = row0.Cross(row2)
		}
		if t.Norm().IsZero() {
			continue
		}
		t = t.Normalized()
		r := yawRotation(q)
		// Resolve the translation sign by cheirality.
		pPos := Pose[T]{R: r, T: t}
		pNeg := Pose[T]{R: r, T: t.Neg()}
		if countCheiral(pPos, corrs) >= countCheiral(pNeg, corrs) {
			out = append(out, pPos)
		} else {
			out = append(out, pNeg)
		}
	}
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}

func countCheiral[T scalar.Real[T]](p Pose[T], corrs []RelCorrespondence[T]) int {
	n := 0
	for _, c := range corrs {
		if cheiralityOK(p, c) {
			n++
		}
	}
	return n
}

// planarRow returns the linear epipolar coefficients for one
// correspondence under the planar-upright parameterization
// e = (tz, tz·c + tx·s, tz·s − tx·c, tx):
//
//	x2ᵀ·E·x1 = −e1·u2·v1 + e2·v2·u1 + e3·v2 + e4·v1 = 0.
func planarRow[T scalar.Real[T]](c RelCorrespondence[T]) mat.Vec[T] {
	u1, v1 := c.U1[0], c.U1[1]
	u2, v2 := c.U2[0], c.U2[1]
	return mat.Vec[T]{u2.Neg().Mul(v1), v2.Mul(u1), v2, v1}
}

// planarQuadForm evaluates the consistency form q(a,b) = a1·b1 + a4·b4 −
// a2·b2 − a3·b3 whose vanishing encodes tx² + tz² = e2² + e3².
func planarQuadForm[T scalar.Real[T]](a, b mat.Vec[T]) T {
	return a[0].Mul(b[0]).Add(a[3].Mul(b[3])).Sub(a[1].Mul(b[1])).Sub(a[2].Mul(b[2]))
}

// posesFromPlanarVector converts an e-vector into (R, t) candidates,
// resolving sign by cheirality.
func posesFromPlanarVector[T scalar.Real[T]](e mat.Vec[T], corrs []RelCorrespondence[T]) []Pose[T] {
	tz, e2, e3, tx := e[0], e[1], e[2], e[3]
	den := tz.Mul(tz).Add(tx.Mul(tx))
	if den.IsZero() {
		return nil
	}
	inv := scalar.One(den).Div(den)
	c := tz.Mul(e2).Sub(tx.Mul(e3)).Mul(inv)
	s := tx.Mul(e2).Add(tz.Mul(e3)).Mul(inv)
	// Normalize (c, s) to the unit circle (noise breaks it slightly).
	cn := scalar.Hypot(c, s)
	if cn.IsZero() {
		return nil
	}
	c = c.Div(cn)
	s = s.Div(cn)
	zero := scalar.Zero(c)
	one := scalar.One(c)
	r := mat.New(3, 3, []T{
		c, zero, s,
		zero, one, zero,
		s.Neg(), zero, c,
	})
	t := mat.Vec[T]{tx, zero, tz}.Normalized()
	pPos := Pose[T]{R: r, T: t}
	pNeg := Pose[T]{R: r, T: t.Neg()}
	if countCheiral(pPos, corrs) >= countCheiral(pNeg, corrs) {
		return []Pose[T]{pPos}
	}
	return []Pose[T]{pNeg}
}

// UP2PT solves relative pose from 2 points under planar motion with
// known gravity (Choi & Kim [13]): two linear equations leave a 2-D null
// space, and the unit-circle consistency constraint picks up to two
// solutions via one quadratic.
func UP2PT[T scalar.Real[T]](corrs []RelCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 2 {
		return nil, ErrDegenerate
	}
	a := mat.Zeros[T](2, 4)
	a.SetRow(0, planarRow(corrs[0]))
	a.SetRow(1, planarRow(corrs[1]))

	// Null space basis: the two right-singular directions with the
	// smallest singular values.
	ns := mat.NullSpace(a, 2)
	n1, n2 := ns[0], ns[1]

	q11 := planarQuadForm(n1, n1)
	q12 := planarQuadForm(n1, n2)
	q22 := planarQuadForm(n2, n2)

	// α²·q11 + 2αβ·q12 + β²·q22 = 0; fix β = 1 (and handle β = 0).
	two := q12.FromFloat(2)
	roots := mat.SolveQuadratic(q11, two.Mul(q12), q22)
	var out []Pose[T]
	for _, alpha := range roots {
		e := n1.Scale(alpha).Add(n2)
		out = append(out, posesFromPlanarVector(e, corrs)...)
	}
	if q11.IsZero() { // β = 0 solution: e = n1
		out = append(out, posesFromPlanarVector(n1, corrs)...)
	}
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}

// UP3PT solves relative pose from n >= 3 points under planar motion with
// known gravity, linearly: the null vector of the n×4 design matrix
// (least-squares for n > 3), with the unit-circle constraint enforced by
// normalization. The paper classifies it with the linear solvers — its
// cost scales with n through the SVD.
func UP3PT[T scalar.Real[T]](corrs []RelCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 3 {
		return nil, ErrDegenerate
	}
	a := mat.Zeros[T](len(corrs), 4)
	for i, c := range corrs {
		a.SetRow(i, planarRow(c))
	}
	e := mat.NullVector(a)
	out := posesFromPlanarVector(e, corrs)
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}
