package pose

import (
	"repro/internal/mat"
	"repro/internal/scalar"
)

// Monomial indices for polynomials in (x, y, z) of total degree <= 3,
// ordered degree-3 block first so Gauss-Jordan elimination leaves the
// quotient-ring basis in the trailing ten columns.
const (
	mX3 = iota
	mX2Y
	mX2Z
	mXY2
	mXYZ
	mXZ2
	mY3
	mY2Z
	mYZ2
	mZ3
	mX2
	mXY
	mXZ
	mY2
	mYZ
	mZ2
	mX
	mY
	mZ
	m1
	numMon
)

// monExp maps monomial index to (x, y, z) exponents.
var monExp = [numMon][3]int{
	{3, 0, 0}, {2, 1, 0}, {2, 0, 1}, {1, 2, 0}, {1, 1, 1}, {1, 0, 2},
	{0, 3, 0}, {0, 2, 1}, {0, 1, 2}, {0, 0, 3},
	{2, 0, 0}, {1, 1, 0}, {1, 0, 1}, {0, 2, 0}, {0, 1, 1}, {0, 0, 2},
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0, 0, 0},
}

// monIdx is the inverse of monExp.
var monIdx = func() map[[3]int]int {
	m := make(map[[3]int]int, numMon)
	for i, e := range monExp {
		m[e] = i
	}
	return m
}()

// poly3 is a dense polynomial over the 20 monomials.
type poly3[T scalar.Real[T]] []T

func newPoly3[T scalar.Real[T]]() poly3[T] { return make(poly3[T], numMon) }

func (p poly3[T]) add(q poly3[T]) poly3[T] {
	out := newPoly3[T]()
	for i := range out {
		out[i] = p[i].Add(q[i])
	}
	return out
}

func (p poly3[T]) sub(q poly3[T]) poly3[T] {
	out := newPoly3[T]()
	for i := range out {
		out[i] = p[i].Sub(q[i])
	}
	return out
}

// mul multiplies two polynomials whose total degree sum stays <= 3.
func (p poly3[T]) mul(q poly3[T]) poly3[T] {
	out := newPoly3[T]()
	for i := range p {
		if p[i].IsZero() {
			continue
		}
		for j := range q {
			if q[j].IsZero() {
				continue
			}
			e := [3]int{
				monExp[i][0] + monExp[j][0],
				monExp[i][1] + monExp[j][1],
				monExp[i][2] + monExp[j][2],
			}
			k, ok := monIdx[e]
			if !ok {
				panic("pose: polynomial degree overflow in 5pt expansion")
			}
			out[k] = out[k].Add(p[i].Mul(q[j]))
		}
	}
	return out
}

// FivePoint solves relative pose from 5 correspondences with the
// Nistér/Stewénius essential-matrix method: the 4-dimensional null space
// of the epipolar design matrix parameterizes E = x·X + y·Y + z·Z + W;
// the determinant and trace constraints give ten cubics; Gauss-Jordan
// reduction of the 10×20 coefficient matrix yields the action matrix of
// multiplication by x in the quotient ring, whose eigenvectors enumerate
// up to ten real solutions. Every candidate must then be validated — the
// cost structure Case Study #4 contrasts against the upright solvers.
func FivePoint[T scalar.Real[T]](corrs []RelCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 5 {
		return nil, ErrDegenerate
	}
	like := corrs[0].U1[0]
	one := scalar.One(like)

	// Epipolar design matrix (5×9, or n×9 when overdetermined).
	n := len(corrs)
	a := mat.Zeros[T](n, 9)
	for i := 0; i < n; i++ {
		x1 := homog(corrs[i].U1)
		x2 := homog(corrs[i].U2)
		a.Set(i, 0, x2[0].Mul(x1[0]))
		a.Set(i, 1, x2[0].Mul(x1[1]))
		a.Set(i, 2, x2[0])
		a.Set(i, 3, x2[1].Mul(x1[0]))
		a.Set(i, 4, x2[1].Mul(x1[1]))
		a.Set(i, 5, x2[1])
		a.Set(i, 6, x1[0])
		a.Set(i, 7, x1[1])
		a.Set(i, 8, one)
	}
	// Null-space basis: the four right-singular directions with the
	// smallest singular values.
	ns := mat.NullSpace(a, 4)
	var basis [4]mat.Vec[T]
	for k := 0; k < 4; k++ {
		basis[k] = ns[3-k] // larger singular values first, W last
	}

	// E entries as degree-1 polynomials in (x, y, z):
	// e_rc = X_rc·x + Y_rc·y + Z_rc·z + W_rc.
	var e [3][3]poly3[T]
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			p := newPoly3[T]()
			p[mX] = basis[0][3*r+c]
			p[mY] = basis[1][3*r+c]
			p[mZ] = basis[2][3*r+c]
			p[m1] = basis[3][3*r+c]
			e[r][c] = p
		}
	}

	// Constraint 1: det(E) = 0.
	det := e[0][0].mul(e[1][1].mul(e[2][2]).sub(e[1][2].mul(e[2][1]))).
		sub(e[0][1].mul(e[1][0].mul(e[2][2]).sub(e[1][2].mul(e[2][0])))).
		add(e[0][2].mul(e[1][0].mul(e[2][1]).sub(e[1][1].mul(e[2][0]))))

	// Constraints 2-10: 2·E·Eᵀ·E − tr(E·Eᵀ)·E = 0.
	var eet [3][3]poly3[T]
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			acc := newPoly3[T]()
			for k := 0; k < 3; k++ {
				acc = acc.add(e[r][k].mul(e[c][k]))
			}
			eet[r][c] = acc
		}
	}
	tr := eet[0][0].add(eet[1][1]).add(eet[2][2])
	two := newPoly3[T]()
	two[m1] = like.FromFloat(2)

	rows := make([]poly3[T], 0, 10)
	rows = append(rows, det)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			acc := newPoly3[T]()
			for k := 0; k < 3; k++ {
				acc = acc.add(eet[r][k].mul(e[k][c]))
			}
			rows = append(rows, two.mul(acc).sub(tr.mul(e[r][c])))
		}
	}

	// 10×20 coefficient matrix; Gauss-Jordan the degree-3 block to I.
	g := mat.Zeros[T](10, numMon)
	for i, p := range rows {
		for j := 0; j < numMon; j++ {
			g.Set(i, j, p[j])
		}
	}
	if !gaussJordan10(g) {
		return nil, ErrDegenerate
	}

	// Action matrix A with rows = images of basis monomials under
	// multiplication by x, expressed in the basis
	// [x², xy, xz, y², yz, z², x, y, z, 1]. A is the transpose of the
	// multiplication operator, so its right eigenvectors are evaluation
	// vectors at the solutions.
	action := mat.Zeros[T](10, 10)
	// x·(basis monomial i) for i = 0..9.
	xTimes := [10]int{mX3, mX2Y, mX2Z, mXY2, mXYZ, mXZ2, mX2, mXY, mXZ, mX}
	for i := 0; i < 10; i++ {
		prod := xTimes[i]
		if prod < 10 {
			// Degree-3 monomial: substitute its reduction row
			// (monomial = -Σ g[prod][10+j]·basis_j).
			for j := 0; j < 10; j++ {
				action.Set(i, j, g.At(prod, 10+j).Neg())
			}
		} else {
			// Already a basis monomial.
			action.Set(i, prod-10, one)
		}
	}

	eig := mat.HessenbergEigen(mat.Hessenberg(action))
	eps := mat.EpsOf(like)
	var maxMag T
	for i := range eig.Re {
		maxMag = scalar.Max(maxMag, scalar.Max(eig.Re[i].Abs(), eig.Im[i].Abs()))
	}
	imTol := eps.Mul(like.FromFloat(1e6)).Mul(scalar.Max(maxMag, one))

	var out []Pose[T]
	id := mat.Identity(10, one)
	seen := map[int]bool{}
	for i := range eig.Re {
		if !eig.Im[i].Abs().LessEq(imTol) {
			continue
		}
		lambda := eig.Re[i]
		// Deduplicate numerically equal eigenvalues.
		key := int(lambda.Float() * 1e7)
		if seen[key] {
			continue
		}
		seen[key] = true
		shifted := action.Sub(id.Scale(lambda))
		v := mat.NullVector(shifted)
		if v[9].Abs().LessEq(scalar.C(one, 1e-10)) {
			continue
		}
		inv := one.Div(v[9])
		x := v[6].Mul(inv)
		y := v[7].Mul(inv)
		z := v[8].Mul(inv)

		ev := make(mat.Vec[T], 9)
		for j := 0; j < 9; j++ {
			ev[j] = basis[0][j].Mul(x).Add(basis[1][j].Mul(y)).Add(basis[2][j].Mul(z)).Add(basis[3][j])
		}
		em := mat.New(3, 3, ev)
		// Validate the candidate against all correspondences before
		// paying for decomposition.
		var resid T
		for _, c := range corrs {
			resid = resid.Add(SampsonErr(em, c))
		}
		nf := like.FromFloat(float64(len(corrs)))
		if scalar.C(one, 0.1).Less(resid.Div(nf).Div(scalar.Max(em.FrobNorm(), one))) {
			continue
		}
		if p, ok := DecomposeEssential(em, corrs); ok {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}

// gaussJordan10 reduces the first 10 columns of a 10×20 matrix to the
// identity with partial pivoting; returns false on rank deficiency.
func gaussJordan10[T scalar.Real[T]](g mat.Mat[T]) bool {
	n := 10
	cols := g.Cols()
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		best := g.At(col, col).Abs()
		for r := col + 1; r < n; r++ {
			v := g.At(r, col).Abs()
			if best.Less(v) {
				best, p = v, r
			}
		}
		if best.IsZero() {
			return false
		}
		g.SwapRows(p, col)
		inv := scalar.One(best).Div(g.At(col, col))
		for j := col; j < cols; j++ {
			g.Set(col, j, g.At(col, j).Mul(inv))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := g.At(r, col)
			if f.IsZero() {
				continue
			}
			for j := col; j < cols; j++ {
				g.Set(r, j, g.At(r, j).Sub(f.Mul(g.At(col, j))))
			}
		}
	}
	return true
}
