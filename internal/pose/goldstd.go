package pose

import (
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/scalar"
)

// RefineAbsPose runs iters Gauss-Newton steps on the reprojection error
// over (R, t), with the rotation updated through the so(3) exponential.
// This is the nonlinear half of the absolute-pose gold standard.
func RefineAbsPose[T scalar.Real[T]](init Pose[T], corrs []AbsCorrespondence[T], iters int) Pose[T] {
	p := Pose[T]{R: init.R.Clone(), T: init.T.Clone()}
	like := p.T[0]
	one := scalar.One(like.FromFloat(1))
	lm := like.FromFloat(1e-9)

	for it := 0; it < iters; it++ {
		n := len(corrs)
		j := mat.Zeros[T](2*n, 6)
		r := make(mat.Vec[T], 2*n)
		for i, c := range corrs {
			pc := p.Apply(c.X)
			z := pc[2]
			if z.Abs().LessEq(scalar.C(z, 1e-9)) {
				continue
			}
			invZ := one.Div(z)
			u := pc[0].Mul(invZ)
			v := pc[1].Mul(invZ)
			r[2*i] = u.Sub(c.U[0])
			r[2*i+1] = v.Sub(c.U[1])

			// d(proj)/d(pc).
			// du = [1/z, 0, -x/z²], dv = [0, 1/z, -y/z²].
			dud := mat.Vec[T]{invZ, scalar.Zero(z), u.Neg().Mul(invZ)}
			dvd := mat.Vec[T]{scalar.Zero(z), invZ, v.Neg().Mul(invZ)}
			// d(pc)/dω = -[R·X]× (left-multiplied update exp(ω)·R),
			// d(pc)/dt = I.
			rx := p.R.MulVec(c.X)
			hat := geom.Hat(rx)
			for col := 0; col < 3; col++ {
				var su, sv T
				for k := 0; k < 3; k++ {
					su = su.Sub(dud[k].Mul(hat.At(k, col)))
					sv = sv.Sub(dvd[k].Mul(hat.At(k, col)))
				}
				j.Set(2*i, col, su)
				j.Set(2*i+1, col, sv)
				j.Set(2*i, 3+col, dud[col])
				j.Set(2*i+1, 3+col, dvd[col])
			}
		}
		jt := j.Transpose()
		normal := jt.Mul(j)
		for d := 0; d < 6; d++ {
			normal.Set(d, d, normal.At(d, d).Add(lm))
		}
		rhs := jt.MulVec(r).Neg()
		delta, err := mat.Solve(normal, rhs)
		if err != nil {
			break
		}
		omega := mat.Vec[T]{delta[0], delta[1], delta[2]}
		p.R = geom.ExpSO3(omega).Mul(p.R)
		p.T = p.T.Add(mat.Vec[T]{delta[3], delta[4], delta[5]})
		if delta.Norm().Float() < 1e-12 {
			break
		}
	}
	return p
}

// AbsGoldStandard is the absolute-pose gold standard: DLT initialization
// followed by Gauss-Newton reprojection refinement — the absgoldstd
// kernel of the suite.
func AbsGoldStandard[T scalar.Real[T]](corrs []AbsCorrespondence[T]) (Pose[T], error) {
	init, err := DLT(corrs)
	if err != nil {
		return Pose[T]{}, err
	}
	return RefineAbsPose(init, corrs, 10), nil
}

// RefineRelPose runs damped Gauss-Newton on the Sampson error over
// (R, t) with numerically differentiated Jacobians, renormalizing the
// translation each step to fix the scale gauge. This is the nonlinear
// half of the relative-pose gold standard and the local-optimization
// step inside rel-lo-ransac.
func RefineRelPose[T scalar.Real[T]](init Pose[T], corrs []RelCorrespondence[T], iters int) Pose[T] {
	p := Pose[T]{R: init.R.Clone(), T: init.T.Normalized()}
	like := p.T[0]
	one := scalar.One(like.FromFloat(1))
	h := like.FromFloat(1e-6)
	lm := like.FromFloat(1e-8)

	residuals := func(q Pose[T]) mat.Vec[T] {
		e := EssentialFromPose(q)
		r := make(mat.Vec[T], len(corrs))
		for i, c := range corrs {
			r[i] = SampsonErr(e, c)
		}
		return r
	}
	perturb := func(q Pose[T], k int, step T) Pose[T] {
		out := Pose[T]{R: q.R, T: q.T.Clone()}
		if k < 3 {
			omega := mat.ZeroVec[T](3)
			for i := range omega {
				omega[i] = scalar.Zero(step)
			}
			omega[k] = step
			out.R = geom.ExpSO3(omega).Mul(q.R)
		} else {
			out.T[k-3] = out.T[k-3].Add(step)
			out.T = out.T.Normalized()
		}
		return out
	}

	for it := 0; it < iters; it++ {
		r0 := residuals(p)
		n := len(corrs)
		j := mat.Zeros[T](n, 6)
		for k := 0; k < 6; k++ {
			rp := residuals(perturb(p, k, h))
			rmPose := perturb(p, k, h.Neg())
			rm := residuals(rmPose)
			invH := one.Div(h.Mul(like.FromFloat(2)))
			for i := 0; i < n; i++ {
				j.Set(i, k, rp[i].Sub(rm[i]).Mul(invH))
			}
		}
		jt := j.Transpose()
		normal := jt.Mul(j)
		for d := 0; d < 6; d++ {
			normal.Set(d, d, normal.At(d, d).Add(lm.Add(normal.At(d, d).Abs().Mul(like.FromFloat(1e-6)))))
		}
		rhs := jt.MulVec(r0).Neg()
		delta, err := mat.Solve(normal, rhs)
		if err != nil {
			break
		}
		omega := mat.Vec[T]{delta[0], delta[1], delta[2]}
		cand := Pose[T]{
			R: geom.ExpSO3(omega).Mul(p.R),
			T: p.T.Add(mat.Vec[T]{delta[3], delta[4], delta[5]}).Normalized(),
		}
		// Accept only improving steps (simple LM-style guard).
		if residuals(cand).NormSq().Less(r0.NormSq()) {
			p = cand
		} else {
			break
		}
		if delta.Norm().Float() < 1e-12 {
			break
		}
	}
	return p
}

// RelGoldStandard is the relative-pose gold standard: normalized 8-point
// initialization followed by Sampson-error refinement — the relgoldstd
// kernel of the suite.
func RelGoldStandard[T scalar.Real[T]](corrs []RelCorrespondence[T]) (Pose[T], error) {
	init, err := EightPoint(corrs)
	if err != nil {
		return Pose[T]{}, err
	}
	return RefineRelPose(init, corrs, 10), nil
}
