package pose

import (
	"repro/internal/mat"
	"repro/internal/scalar"
)

// P3P solves absolute pose from 3 points via the classical
// law-of-cosines reduction (Grunert's system): with depth ratios
// u = s2/s1 and v = s3/s1 the three equations
//
//	s1²·(u² − 2u·cosγ + 1)        = c²   (points 1-2)
//	s1²·(v² − 2v·cosβ + 1)        = b²   (points 1-3)
//	s1²·(u² + v² − 2uv·cosα)      = a²   (points 2-3)
//
// eliminate to u(v) = N(v)/D(v) (linear over linear) and one quartic in
// v, assembled here by explicit polynomial arithmetic rather than
// transcribed closed-form coefficients. Each admissible root yields the
// three depths, and a closed-form three-point absolute orientation
// recovers (R, t). Up to four solutions.
func P3P[T scalar.Real[T]](corrs []AbsCorrespondence[T]) ([]Pose[T], error) {
	if len(corrs) < 3 {
		return nil, ErrDegenerate
	}
	like := corrs[0].U[0]
	one := scalar.One(like)
	two := like.FromFloat(2)

	p1, p2, p3 := corrs[0].X, corrs[1].X, corrs[2].X
	f1 := bearing(corrs[0].U)
	f2 := bearing(corrs[1].U)
	f3 := bearing(corrs[2].U)

	a := p2.Sub(p3).Norm() // opposite α (between bearings 2,3)
	b := p1.Sub(p3).Norm() // opposite β (bearings 1,3)
	c := p1.Sub(p2).Norm() // opposite γ (bearings 1,2)
	if a.IsZero() || b.IsZero() || c.IsZero() {
		return nil, ErrDegenerate
	}
	cosA := f2.Dot(f3)
	cosB := f1.Dot(f3)
	cosC := f1.Dot(f2)

	a2 := a.Mul(a)
	b2 := b.Mul(b)
	c2 := c.Mul(c)
	k := c2.Div(b2)
	m := a2.Div(b2)

	zero := scalar.Zero(one)
	// B(v) = v² − 2v·cosβ + 1.
	bPoly := mat.Poly[T]{one, two.Neg().Mul(cosB), one}
	// N(v) = v² + (k−m)·B(v) − 1.
	nPoly := mat.Poly[T]{zero, zero, one}.
		AddPoly(bPoly.ScalePoly(k.Sub(m))).
		AddPoly(mat.Poly[T]{one.Neg()})
	// D(v) = 2·(v·cosα − cosγ).
	dPoly := mat.Poly[T]{two.Neg().Mul(cosC), two.Mul(cosA)}
	// Quartic: N² − 2·cosγ·N·D + (1 − k·B)·D² = 0.
	quartic := nPoly.MulPoly(nPoly).
		SubPoly(nPoly.MulPoly(dPoly).ScalePoly(two.Mul(cosC))).
		AddPoly(mat.Poly[T]{one}.SubPoly(bPoly.ScalePoly(k)).MulPoly(dPoly.MulPoly(dPoly)))

	roots := quartic.RealRoots()
	var out []Pose[T]
	for _, v := range roots {
		if v.LessEq(zero) {
			continue
		}
		den := dPoly.Eval(v)
		if den.Abs().LessEq(scalar.C(one, 1e-12)) {
			continue
		}
		u := nPoly.Eval(v).Div(den)
		if u.LessEq(zero) {
			continue
		}
		// Depths from the 1-3 equation.
		bv := bPoly.Eval(v)
		if bv.LessEq(zero) {
			continue
		}
		s1 := b2.Div(bv).Sqrt()
		s2 := u.Mul(s1)
		s3 := v.Mul(s1)
		// Validate against the 2-3 equation (rejects spurious roots).
		lhs := s1.Mul(s1).Mul(u.Mul(u).Add(v.Mul(v)).Sub(two.Mul(u).Mul(v).Mul(cosA)))
		resid := lhs.Sub(a2).Abs()
		tol := scalar.C(one, 1e-5).Mul(scalar.Max(a2, one))
		if tol.Less(resid) {
			continue
		}
		q1 := f1.Scale(s1)
		q2 := f2.Scale(s2)
		q3 := f3.Scale(s3)
		if pose, ok := absOrient3(p1, p2, p3, q1, q2, q3); ok {
			out = append(out, pose)
		}
	}
	if len(out) == 0 {
		return nil, ErrDegenerate
	}
	return out, nil
}

// absOrient3 finds the rigid transform mapping world points (p1..p3)
// onto camera points (q1..q3) by aligning the orthonormal triads of the
// two triangles — the closed-form three-point absolute orientation.
func absOrient3[T scalar.Real[T]](p1, p2, p3, q1, q2, q3 mat.Vec[T]) (Pose[T], bool) {
	bw, okW := triad(p2.Sub(p1), p3.Sub(p1))
	bc, okC := triad(q2.Sub(q1), q3.Sub(q1))
	if !okW || !okC {
		return Pose[T]{}, false
	}
	r := bc.Mul(bw.Transpose())
	t := q1.Sub(r.MulVec(p1))
	return Pose[T]{R: r, T: t}, true
}

// triad builds an orthonormal basis matrix whose columns derive from the
// two given (non-parallel) vectors.
func triad[T scalar.Real[T]](v1, v2 mat.Vec[T]) (mat.Mat[T], bool) {
	e1 := v1.Normalized()
	e3 := v1.Cross(v2)
	if e3.Norm().IsZero() {
		return mat.Mat[T]{}, false
	}
	e3 = e3.Normalized()
	e2 := e3.Cross(e1)
	m := mat.Zeros[T](3, 3)
	m.SetCol(0, e1)
	m.SetCol(1, e2)
	m.SetCol(2, e3)
	return m, true
}

// BestAbsPose selects the candidate with the lowest total reprojection
// error over the given correspondences.
func BestAbsPose[T scalar.Real[T]](cands []Pose[T], corrs []AbsCorrespondence[T]) (Pose[T], bool) {
	if len(cands) == 0 {
		return Pose[T]{}, false
	}
	best := 0
	var bestErr T
	for i, p := range cands {
		var sum T
		for _, c := range corrs {
			sum = sum.Add(ReprojectErr(p, c))
		}
		if i == 0 || sum.Less(bestErr) {
			best, bestErr = i, sum
		}
	}
	return cands[best], true
}

// BestRelPose selects the candidate with the lowest total Sampson error.
func BestRelPose[T scalar.Real[T]](cands []Pose[T], corrs []RelCorrespondence[T]) (Pose[T], bool) {
	if len(cands) == 0 {
		return Pose[T]{}, false
	}
	best := 0
	var bestErr T
	for i, p := range cands {
		e := EssentialFromPose(p)
		var sum T
		for _, c := range corrs {
			sum = sum.Add(SampsonErr(e, c))
		}
		if i == 0 || sum.Less(bestErr) {
			best, bestErr = i, sum
		}
	}
	return cands[best], true
}
